(* Benchmark harness: regenerates every table of the paper's evaluation
   plus the numeric claims of the modelling sections, then times the
   pipeline stages with Bechamel.

   Environment knobs:
     GSINO_BENCH_SCALE    instance scale (default 0.05; paper size = 1.0)
     GSINO_BENCH_SEED     seed (default 7)
     GSINO_BENCH_CIRCUITS comma-separated subset (default: all six)

   Sections:
     table1 / table2 / table3   — the paper's Tables 1-3 (paper values in
                                  brackets)
     violations_zero            — §4's "no crosstalk violations" claim +
                                  Phase III statistics
     lsk_fidelity               — §2.2: LSK rank-correlates with SPICE
                                  noise; noise grows ~linearly with length
     formula3                   — §3.1: Formula (3) accuracy vs min-area
                                  SINO
     timings                    — Bechamel micro-benchmarks per pipeline
                                  stage (§5: ID routing dominates) *)
open Gsino
module Generator = Eda_netlist.Generator
module Keff = Eda_sino.Keff
module Estimate = Eda_sino.Estimate
module Table_builder = Eda_lsk.Table_builder
module Metrics = Eda_obs.Metrics

let getenv_f name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let getenv_i name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let scale = getenv_f "GSINO_BENCH_SCALE" 0.05
let seed = getenv_i "GSINO_BENCH_SEED" 7

let profiles =
  match Sys.getenv_opt "GSINO_BENCH_CIRCUITS" with
  | None -> Generator.all_ibm
  | Some s ->
      String.split_on_char ',' s
      |> List.map (fun name ->
             match Generator.find_ibm (String.trim name) with
             | Some p -> p
             | None -> failwith ("unknown circuit " ^ name))

let section name = Format.printf "@.=== %s ===@." name

(* ------------------------- Tables 1-3 ------------------------------ *)

(* Per-stage wall time accumulated by the Flow instrumentation — the
   same numbers a --metrics run exports, so the bench and the CLI can
   never disagree about where the time went. *)
let stage_seconds snap phase =
  match Metrics.find ~labels:[ ("phase", phase) ] snap "flow.phase_seconds" with
  | Some (Metrics.Gauge s) -> s
  | Some (Metrics.Counter _ | Metrics.Histogram _) | None -> 0.0

let print_stage_durations () =
  let snap = Metrics.snapshot () in
  let route = stage_seconds snap "route"
  and sino = stage_seconds snap "sino"
  and refine = stage_seconds snap "refine" in
  Format.printf
    "  stage seconds (Metrics snapshot, %d flow runs): route %.1f | sino %.1f \
     | refine %.1f | total %.1f@."
    (Metrics.counter_total snap "flow.runs")
    route sino refine
    (route +. sino +. refine)

let run_tables () =
  Format.printf
    "GSINO reproduction benchmark: scale %.2f, seed %d, %d circuits@." scale
    seed (List.length profiles);
  let suite = Report.run_suite ~profiles ~scale ~seed () in
  section "table1 (crosstalk-violating nets in ID+NO)";
  Format.printf "%a" Report.table1 suite;
  section "table2 (average wire length, ID+NO vs GSINO)";
  Format.printf "%a" Report.table2 suite;
  section "table3 (routing area, ID+NO vs iSINO vs GSINO)";
  Format.printf "%a" Report.table3 suite;
  section "violations_zero (GSINO/iSINO eliminate all violations)";
  Format.printf "%a" Report.violations_summary suite;
  section "phase timing per circuit";
  Format.printf "%a" Report.timing_summary suite;
  print_stage_durations ()

(* -------------------- V1: LSK model fidelity ------------------------ *)

let coupled_drive () =
  let e = Table_builder.default_electrical in
  {
    Eda_circuit.Coupled_line.rd = e.Table_builder.rd;
    cl = e.Table_builder.cl;
    vdd = e.Table_builder.vdd;
    t_delay = e.Table_builder.t_delay;
    t_rise = e.Table_builder.t_rise;
  }

let run_lsk_fidelity () =
  section "lsk_fidelity (LSK vs simulated noise, paper 2.2)";
  let keff = Keff.default in
  let pts =
    Table_builder.samples ~seed:11 ~configs:12
      ~lengths_m:[ 0.25e-3; 0.5e-3; 1e-3; 2e-3; 3e-3 ]
      ~keff Table_builder.default_electrical
  in
  let arr = Array.of_list pts in
  let n = Array.length arr in
  let conc = ref 0 and disc = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let li, vi = arr.(i) and lj, vj = arr.(j) in
      let dl = compare li lj and dv = compare vi vj in
      if dl <> 0 && dv <> 0 then if dl = dv then incr conc else incr disc
    done
  done;
  Format.printf
    "  %d simulated SINO configurations; Kendall tau(LSK, noise) = %.2f \
     (paper: 'high fidelity')@."
    n
    (float_of_int (!conc - !disc) /. float_of_int (max 1 (!conc + !disc)));
  let spec l =
    Table_builder.spec_of Table_builder.default_electrical ~keff ~length_m:l
  in
  let drive = coupled_drive () in
  Format.printf "  noise vs length, single adjacent aggressor:@.";
  List.iter
    (fun l ->
      let v =
        Eda_circuit.Coupled_line.worst_victim_noise (spec l) drive
          [| Eda_circuit.Coupled_line.Aggressor; Eda_circuit.Coupled_line.Victim |]
      in
      Format.printf "    %4.2f mm -> %.3f V@." (l *. 1e3) v)
    [ 0.25e-3; 0.5e-3; 1e-3; 2e-3; 3e-3 ]

(* -------------------- V2: Formula (3) accuracy ---------------------- *)

let run_formula3 () =
  section "formula3 (shield-count estimate vs min-area SINO, paper 3.1)";
  List.iter
    (fun kth ->
      let kth_of _ = kth in
      let c = Estimate.fit ~trials:200 ~seed:31 ~kth_of () in
      let q = Estimate.accuracy ~trials:120 ~seed:32 ~kth_of c in
      Format.printf
        "  Kth=%.2f: MAE %.2f shields; rel err (>=5 shields) %.1f%%; aggregate \
         %.1f%% (paper: <=10%%)@."
        kth q.Estimate.mean_abs_err
        (q.Estimate.rel_err_large *. 100.)
        (q.Estimate.aggregate_err *. 100.))
    [ 0.5; 0.8; 1.2 ]

(* ------------- V4: SINO delay claim (via [12], cited in §4) --------- *)

let run_delay_claim () =
  section "sino_delay (shielded wires are faster per unit length)";
  let keff = Keff.default in
  let drive = coupled_drive () in
  let delay len roles =
    match
      Eda_circuit.Coupled_line.rise_delay
        (Table_builder.spec_of Table_builder.default_electrical ~keff ~length_m:len)
        drive roles ~wire:1
    with
    | Some d -> d *. 1e12
    | None -> nan
  in
  let open Eda_circuit.Coupled_line in
  Format.printf
    "  50%%-Vdd delay (ps) of a rising wire: opposing vs shielded vs quiet \
     neighbours@.";
  List.iter
    (fun len ->
      Format.printf
        "    %4.2f mm: [O A O] %.1f | [S A S] %.1f | [Q A Q] %.1f@."
        (len *. 1e3)
        (delay len [| Opposing; Aggressor; Opposing |])
        (delay len [| Shield; Aggressor; Shield |])
        (delay len [| Quiet; Aggressor; Quiet |]))
    [ 0.5e-3; 1e-3; 2e-3 ];
  Format.printf
    "  (the paper argues GSINO's wire-length penalty is offset because SINO \
     wires@.   never see simultaneous opposing switching)@."

(* ---------------- Ablations: router and budgeting ------------------- *)

let run_ablations () =
  section "ablation: router (iterative deletion vs negotiated congestion)";
  let tech = Tech.default in
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:(Float.min scale 0.05)
      ~seed Generator.ibm01
  in
  let sens = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate:0.30 in
  List.iter
    (fun (name, router) ->
      let config kind =
        { Flow.Config.default with Flow.Config.kind; router; seed }
      in
      let t0 = Sys.time () in
      let grid, base = Flow.prepare ~config:(config Flow.Id_no) tech nl in
      let prep_s = Sys.time () -. t0 in
      let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity:sens nl in
      let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity:sens nl in
      let _, _, a0 = idno.Flow.area and _, _, a1 = gsino.Flow.area in
      Format.printf
        "  %-22s routing %5.2fs | base WL %4.0fum | GSINO area %+5.2f%% | resid %d@."
        name prep_s idno.Flow.avg_wl_um
        (100. *. (a1 -. a0) /. a0)
        (Flow.violation_count gsino))
    [ ("iterative-deletion", Flow.Iterative_deletion); ("negotiated", Flow.Negotiated) ];
  section "ablation: budgeting (uniform Manhattan vs route-aware)";
  let grid, base = Flow.prepare tech nl in
  List.iter
    (fun (name, budgeting) ->
      let config kind =
        { Flow.Config.default with Flow.Config.kind; budgeting; seed }
      in
      let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity:sens nl in
      let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity:sens nl in
      let _, _, a0 = idno.Flow.area and _, _, a1 = gsino.Flow.area in
      let p1 =
        match gsino.Flow.refine_stats with
        | Some s -> s.Refine.pass1_nets_fixed
        | None -> 0
      in
      Format.printf
        "  %-12s GSINO shields %5d | area %+5.2f%% | phase3 pass1 fixes %3d | resid %d@."
        name gsino.Flow.shields
        (100. *. (a1 -. a0) /. a0)
        p1
        (Flow.violation_count gsino))
    [ ("uniform", Flow.Uniform); ("route-aware", Flow.Route_aware) ]

(* --- V5: counter-measure comparison (shield vs spacing vs diff) ----- *)

let run_countermeasures () =
  section "countermeasures (one extra track spent three ways, paper 1)";
  let keff = Keff.default in
  let drive = coupled_drive () in
  let spec =
    Table_builder.spec_of Table_builder.default_electrical ~keff ~length_m:1e-3
  in
  let open Eda_circuit.Coupled_line in
  let v_bare = worst_victim_noise spec drive [| Aggressor; Victim |] in
  let v_space = worst_victim_noise spec drive [| Aggressor; Quiet; Victim |] in
  let v_shield = worst_victim_noise spec drive [| Aggressor; Shield; Victim |] in
  let v_diff =
    differential_noise spec drive [| Aggressor; Victim; Victim |] ~plus:1 ~minus:2
  in
  Format.printf
    "  1 mm victim, adjacent aggressor:@.    \    unprotected           %.3f V@.    \    + spacer track        %.3f V@.    \    + shield track        %.3f V@.    \    + differential return %.3f V (receiver sees v+ - v-)@."
    v_bare v_space v_shield v_diff;
  Format.printf
    "  (shielding and differential signaling both beat plain spacing — the@.    \   §1 landscape SINO lives in; SINO automates the shield variant)@."

(* -------------- Ablation: SINO solver quality (greedy vs SA) -------- *)

let run_solver_ablation () =
  section "ablation: min-area SINO solver (greedy heuristic vs +annealing)";
  let rng = Eda_util.Rng.create 123 in
  let module I = Eda_sino.Instance in
  let module L = Eda_sino.Layout in
  let module S = Eda_sino.Solver in
  let total_g = ref 0 and total_a = ref 0 and trials = 30 in
  for _ = 1 to trials do
    let n = Eda_util.Rng.int_in rng 8 36 in
    let inst_seed = Eda_util.Rng.int rng 100000 in
    let rate = 0.2 +. Eda_util.Rng.float rng 0.5 in
    let inst =
      I.make
        ~nets:(Array.init n (fun i -> i))
        ~kth:(Array.init n (fun _ -> 0.2 +. Eda_util.Rng.float rng 1.0))
        ~sensitive:(fun i j ->
          i <> j && Eda_util.Rng.pair_hash ~seed:inst_seed i j < rate)
    in
    let greedy = S.min_area (Eda_util.Rng.split rng) inst in
    let annealed =
      S.anneal
        ~schedule:{ S.Anneal.default with S.Anneal.moves = 3000 }
        (Eda_util.Rng.split rng) inst greedy
    in
    total_g := !total_g + L.num_shields greedy;
    total_a := !total_a + L.num_shields annealed
  done;
  Format.printf
    "  %d random instances: greedy %d shields total, +annealing %d (%.1f%% fewer)@."
    trials !total_g !total_a
    (100. *. float_of_int (!total_g - !total_a) /. float_of_int (max 1 !total_g));
  Format.printf
    "  (the greedy construct-and-repair heuristic is what Phases II/III run;@.    \   the gap to a slower annealer bounds what better SINO could buy)@."

(* ------------- parallel execution: jobs=1 vs jobs=N ----------------- *)

(* The Eda_exec claim: Phase II (per-panel SINO) and Phase III (noise
   scans) speed up with worker domains while producing identical routing
   results.  Wall-clock comes from the flow's own phase timers; the
   gauges land in BENCH_METRICS.json so the speedup is tracked across
   commits like every other bench number. *)
let run_parallel_speedup () =
  (* on a single-core machine extra domains only oversubscribe; measure
     the pool overhead there (expect ~1.0x) and the speedup elsewhere *)
  let jobs_n = max 2 (Eda_exec.default_jobs ()) in
  section
    (Printf.sprintf "parallel (Eda_exec): phases II+III, 1 vs %d domains%s"
       jobs_n
       (if Domain.recommended_domain_count () = 1 then
          " (single core: overhead check only)"
        else ""));
  let tech = Tech.default in
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um
      ~scale:(Float.max scale 0.05) ~seed Generator.ibm01
  in
  let sens = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate:0.30 in
  let config jobs = { Flow.Config.default with Flow.Config.seed; jobs } in
  let grid, _ = Flow.prepare ~config:(config 1) tech nl in
  let phase23 jobs =
    let r = Flow.run ~grid (config jobs) tech ~sensitivity:sens nl in
    let s = r.Flow.sino_s +. r.Flow.refine_s in
    Metrics.set
      (Metrics.gauge
         ~labels:[ ("jobs", string_of_int jobs) ]
         "bench.phase23_seconds")
      s;
    (r, s)
  in
  let r1, s1 = phase23 1 in
  let rn, sn = phase23 jobs_n in
  let speedup = if sn > 0. then s1 /. sn else 0. in
  Metrics.set (Metrics.gauge "bench.phase23_speedup") speedup;
  let same =
    r1.Flow.shields = rn.Flow.shields
    && Float.equal r1.Flow.total_wl_um rn.Flow.total_wl_um
    && r1.Flow.violations = rn.Flow.violations
  in
  Format.printf
    "  phase II+III: %.2fs @ 1 domain | %.2fs @ %d domains | speedup %.2fx | \
     results %s@."
    s1 sn jobs_n speedup
    (if same then "identical" else "DIFFER (determinism bug!)")

(* ------------- panel cache: hit rate and output identity ------------- *)

(* The ROADMAP acceptance number: run the flow twice against one shared
   on-disk panel store and report the cumulative hit rate.  Run 1 is
   cold (only in-run duplicate panels hit); run 2 replays entirely from
   the store, so the two-run rate sits well above the 0.25 floor.  The
   solver derives every solution from panel content alone, so all three
   result summaries (cache off, cold, warm) must be byte-identical —
   the cache is an accelerator, never an oracle. *)
let run_panel_cache () =
  section "panel cache (Eda_sino.Cache): hit rate over a shared store";
  let tech = Tech.default in
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um
      ~scale:(Float.max scale 0.05) ~seed Generator.ibm01
  in
  let sens = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate:0.30 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gsino_bench_cache.%d" (Unix.getpid ()))
  in
  let config cache cache_dir =
    { Flow.Config.default with Flow.Config.seed; cache; cache_dir }
  in
  let grid, _ = Flow.prepare ~config:(config false None) tech nl in
  let timed cfg =
    let t0 = Unix.gettimeofday () in
    let r = Flow.run ~grid cfg tech ~sensitivity:sens nl in
    ((r.Flow.shields, r.Flow.total_wl_um, r.Flow.violations, r.Flow.area),
     Unix.gettimeofday () -. t0)
  in
  let cache_counters () =
    let snap = Metrics.snapshot () in
    ( Metrics.counter_total snap "sino.cache_hits",
      Metrics.counter_total snap "sino.cache_misses" )
  in
  let off, t_off = timed (config false None) in
  let h0, m0 = cache_counters () in
  let cold, t_cold = timed (config true (Some dir)) in
  let warm, t_warm = timed (config true (Some dir)) in
  let h1, m1 = cache_counters () in
  let hits = h1 - h0 and misses = m1 - m0 in
  let rate =
    if hits + misses > 0 then float_of_int hits /. float_of_int (hits + misses)
    else 0.0
  in
  Metrics.set (Metrics.gauge "bench.cache_hit_rate") rate;
  let identical = off = cold && cold = warm in
  Format.printf
    "  two runs, one store: %d hits / %d misses | hit rate %.2f (floor 0.25)@."
    hits misses rate;
  Format.printf
    "  flow seconds: %.2f cache off | %.2f cold | %.2f warm | results %s@."
    t_off t_cold t_warm
    (if identical then "byte-identical" else "DIFFER (cache corrupts output!)");
  (try
     Sys.remove (Filename.concat dir "panels.v1");
     Sys.rmdir dir
   with Sys_error _ -> ());
  assert identical;
  assert (rate >= 0.25)

(* ------------------------- audit cost ------------------------------- *)

let run_audit_cost () =
  section "audit (Eda_analyze): static pre-pass cost vs route phase";
  let tech = Tech.default in
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um
      ~scale:(Float.max scale 0.05) ~seed Generator.ibm01
  in
  let sens = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate:0.30 in
  let config = { Flow.Config.default with Flow.Config.seed } in
  let grid, _ = Flow.prepare ~config tech nl in
  let r = Flow.run ~grid config tech ~sensitivity:sens nl in
  let acfg = Flow.analyze_config tech in
  (* several repetitions so the measurement is not clock-granularity *)
  let reps = 5 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Eda_analyze.Analyze.run acfg ~grid ~sensitivity:sens nl)
  done;
  let audit_ms = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int reps in
  Metrics.set (Metrics.gauge "bench.audit_ms") audit_ms;
  let route_ms = r.Flow.route_s *. 1000.0 in
  let pct = if route_ms > 0.0 then 100.0 *. audit_ms /. route_ms else 0.0 in
  Format.printf
    "  audit %.2f ms | route phase %.0f ms | audit = %.2f%% of route \
     (budget 5%%)@."
    audit_ms route_ms pct;
  (* the audit must stay a rounding error next to routing — if this
     trips, the analyzer grew a super-linear pass *)
  assert (audit_ms < 0.05 *. route_ms)

(* ------------------------ attribution journal ----------------------- *)

let run_journal_overhead () =
  let module Journal = Eda_obs.Journal in
  let module Trace = Eda_obs.Trace in
  let module Prof = Eda_obs.Prof in
  section
    "journal (Eda_obs.Journal): attribution overhead, reconciliation, \
     panel recurrence";
  let tech = Tech.default in
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um
      ~scale:(Float.max scale 0.05) ~seed Generator.ibm01
  in
  let sens = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate:0.30 in
  let config = { Flow.Config.default with Flow.Config.seed } in
  let grid, _ = Flow.prepare ~config tech nl in
  let run_once () =
    let t0 = Unix.gettimeofday () in
    ignore (Flow.run ~grid config tech ~sensitivity:sens nl);
    Unix.gettimeofday () -. t0
  in
  (* warm-up, then interleaved best-of-three per mode: the overhead
     budget is percent-level, below single-run clock noise, and heap
     growth across iterations would otherwise bias whichever mode runs
     last *)
  ignore (run_once ());
  let t_off = ref infinity and t_on = ref infinity in
  for _ = 1 to 3 do
    Journal.disable ();
    t_off := Float.min !t_off (run_once ());
    Journal.enable ();
    Journal.clear ();
    t_on := Float.min !t_on (run_once ());
    Journal.clear ()
  done;
  let t_off = !t_off and t_on = !t_on in
  let overhead_pct = 100.0 *. ((t_on -. t_off) /. t_off) in
  Metrics.set (Metrics.gauge "bench.journal_overhead_pct") overhead_pct;
  Format.printf
    "  flow %.2fs journal off | %.2fs on | overhead %+.2f%% (budget 3%%)@."
    t_off t_on overhead_pct;
  (* reconciliation: the journal's per-panel attribution must add up to
     the profiler's phase2.panels span — same work, two instruments *)
  Journal.enable ();
  Journal.clear ();
  Trace.enable ();
  ignore (run_once ());
  let evs = Journal.events () in
  let span_us =
    match
      List.find_opt (fun p -> p.Prof.name = "phase2.panels") (Prof.current ())
    with
    | Some p -> p.Prof.total_us
    | None -> 0.0
  in
  Trace.disable ();
  let panel_us =
    List.fold_left
      (fun acc (e : Journal.event) ->
        if e.Journal.ev = "panel.solve" then
          acc +. Option.value (Journal.data_value e "time_us") ~default:0.0
        else acc)
      0.0 evs
  in
  let reconcile_pct =
    if span_us > 0.0 then 100.0 *. Float.abs (span_us -. panel_us) /. span_us
    else 0.0
  in
  Metrics.set (Metrics.gauge "bench.journal_reconcile_pct") reconcile_pct;
  Format.printf
    "  phase2.panels span %.1f ms | sum of panel.solve events %.1f ms | gap \
     %.2f%% (budget 5%%)@."
    (span_us /. 1e3) (panel_us /. 1e3) reconcile_pct;
  (* duplicate-panel recurrence from the journal's view: the share of
     panel events carrying an already-seen signature — the work the
     Eda_sino.Cache absorbs (its realized hit rate is measured directly
     in the panel_cache section above) *)
  let panel_evs =
    List.filter
      (fun (e : Journal.event) ->
        e.Journal.ev = "panel.solve" || e.Journal.ev = "panel.resolve")
      evs
  in
  let rows = Journal.Agg.by_dim "sig" panel_evs in
  let total = List.length panel_evs and uniq = List.length rows in
  Format.printf
    "  panel signatures: %d events, %d unique, %d duplicates (%.1f%% \
     cacheable)@."
    total uniq (total - uniq)
    (if total > 0 then
       100.0 *. float_of_int (total - uniq) /. float_of_int total
     else 0.0);
  let snap = Metrics.snapshot () in
  Format.printf
    "  process recurrence counters: sino.panel_sig_unique %d | \
     sino.panel_sig_dups %d@."
    (Metrics.counter_total snap "sino.panel_sig_unique")
    (Metrics.counter_total snap "sino.panel_sig_dups");
  (* machine-readable counterpart for `gsino_explain` drill-down in CI *)
  let journal_file =
    match Sys.getenv_opt "GSINO_BENCH_JOURNAL" with
    | Some f -> f
    | None -> "BENCH_JOURNAL.jsonl"
  in
  if journal_file <> "" then begin
    Journal.write_file journal_file evs;
    Format.printf "  journal blob: %s (%d events)@." journal_file
      (List.length evs)
  end;
  Journal.disable ();
  (* attribution must stay a rounding error on the flow it explains *)
  assert (overhead_pct < 3.0);
  assert (span_us <= 0.0 || reconcile_pct < 5.0)

(* ----------------------- Bechamel timings --------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let tech = Tech.default in
  (* small shared fixtures so each sample is milliseconds *)
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:3
      Generator.ibm01
  in
  let grid, base = Flow.prepare tech nl in
  let sens = Eda_netlist.Sensitivity.make ~seed:5 ~rate:0.30 in
  let fcfg kind = { Flow.Config.default with Flow.Config.kind; seed = 1 } in
  let lsk_model = Tech.lsk_model tech in
  let inst =
    Eda_sino.Instance.make
      ~nets:(Array.init 24 (fun i -> i))
      ~kth:(Array.make 24 0.6)
      ~sensitive:(fun i j -> i <> j && Eda_util.Rng.pair_hash ~seed:9 i j < 0.4)
  in
  let pins =
    Array.init 5 (fun i -> Eda_geom.Point.make (7 * i mod 13) (11 * i mod 17))
  in
  let spec =
    Table_builder.spec_of Table_builder.default_electrical ~keff:tech.Tech.keff
      ~length_m:1e-3
  in
  let drive = coupled_drive () in
  [
    (* Table 1 pipeline: conventional routing + NO + violation count *)
    Test.make ~name:"table1:id_no-flow"
      (Staged.stage (fun () ->
           ignore (Flow.run ~grid ~base (fcfg Flow.Id_no) tech ~sensitivity:sens nl)));
    (* Tables 2 and 3, GSINO column: the full three-phase flow *)
    Test.make ~name:"table2+3:gsino-flow"
      (Staged.stage (fun () ->
           ignore (Flow.run ~grid (fcfg Flow.Gsino) tech ~sensitivity:sens nl)));
    (* Table 3, iSINO column *)
    Test.make ~name:"table3:isino-flow"
      (Staged.stage (fun () ->
           ignore (Flow.run ~grid ~base (fcfg Flow.Isino) tech ~sensitivity:sens nl)));
    (* stage ablations *)
    Test.make ~name:"stage:id-routing"
      (Staged.stage (fun () -> ignore (Flow.base_routes tech grid nl)));
    Test.make ~name:"stage:sino-region-24nets"
      (Staged.stage (fun () ->
           ignore (Eda_sino.Solver.min_area (Eda_util.Rng.create 4) inst)));
    Test.make ~name:"stage:rsmt-5pins"
      (Staged.stage (fun () -> ignore (Eda_steiner.Rsmt.length pins)));
    Test.make ~name:"stage:lsk-lookup"
      (Staged.stage (fun () -> ignore (Eda_lsk.Lsk.noise lsk_model ~lsk:500.0)));
    Test.make ~name:"stage:coupled-line-spice"
      (Staged.stage (fun () ->
           ignore
             (Eda_circuit.Coupled_line.worst_victim_noise spec drive
                [|
                  Eda_circuit.Coupled_line.Aggressor;
                  Eda_circuit.Coupled_line.Victim;
                  Eda_circuit.Coupled_line.Shield;
                  Eda_circuit.Coupled_line.Aggressor;
                |])));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  section "timings (Bechamel, monotonic clock per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let tbl = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              Format.printf "  %-28s %10.3f ms/run@." name (est /. 1e6)
          | Some [] | None -> Format.printf "  %-28s (no estimate)@." name)
        tbl)
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ]) (bechamel_tests ()))

let () =
  run_tables ();
  run_lsk_fidelity ();
  run_formula3 ();
  run_delay_claim ();
  run_countermeasures ();
  run_ablations ();
  run_solver_ablation ();
  run_parallel_speedup ();
  run_panel_cache ();
  run_audit_cost ();
  run_journal_overhead ();
  run_bechamel ();
  section "timings (per-stage totals across the whole benchmark)";
  print_stage_durations ();
  (* machine-readable counterpart: the whole registry as
     gsino-metrics-v1 JSON, for trajectory tracking across commits *)
  let metrics_file =
    match Sys.getenv_opt "GSINO_BENCH_METRICS" with
    | Some f -> f
    | None -> "BENCH_METRICS.json"
  in
  let snapshot = Metrics.snapshot () in
  Metrics.write_json metrics_file snapshot;
  Format.printf "metrics blob: %s@." metrics_file;
  (* trajectory across commits: the same snapshot, appended as one JSONL
     record per bench run; summarize with `gsino_diff --history` *)
  let history_file =
    match Sys.getenv_opt "GSINO_BENCH_HISTORY" with
    | Some f -> f
    | None -> "BENCH_HISTORY.jsonl"
  in
  if history_file <> "" then begin
    let module Json = Eda_obs.Json in
    let record =
      Json.Obj
        [
          ("schema", Json.Str "gsino-bench-history-v1");
          ("ts", Json.Int (int_of_float (Unix.time ())));
          ("scale", Json.Float scale);
          ("seed", Json.Int seed);
          ("circuits", Json.Int (List.length profiles));
          ("snapshot", Metrics.to_json snapshot);
        ]
    in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history_file in
    output_string oc (Json.to_string record);
    output_char oc '\n';
    close_out oc;
    Format.printf "history: appended to %s (disable: GSINO_BENCH_HISTORY=)@."
      history_file
  end;
  Format.printf "@.done.@."
