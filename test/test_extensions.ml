(* Tests for the extensions beyond the paper's core: the negotiated-
   congestion router, route-aware budgeting, netlist serialization, the
   congestion map, and the delay measurements backing the SINO-delay
   claim. *)
module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Io = Eda_netlist.Io
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Route = Eda_grid.Route
module Usage = Eda_grid.Usage
module Coupled_line = Eda_circuit.Coupled_line
module Table_builder = Eda_lsk.Table_builder
open Gsino

let p = Point.make
let tech = Tech.default

let tiny =
  lazy
    (Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7
       Generator.ibm01)

(* ------------------- negotiated-congestion router ------------------ *)

let test_nc_routes_connect () =
  let nl = Lazy.force tiny in
  let grid = Tech.grid_for tech nl in
  let routes = Nc_router.route ~grid ~netlist:nl () in
  Alcotest.(check int) "route per net" (Netlist.num_nets nl) (Array.length routes);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "net %d connected" i) true
        (Route.connects grid r (Net.pins nl.Netlist.nets.(i))))
    routes

let test_nc_deterministic () =
  let nl = Lazy.force tiny in
  let grid = Tech.grid_for tech nl in
  let r1 = Nc_router.route ~grid ~netlist:nl () in
  let r2 = Nc_router.route ~grid ~netlist:nl () in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "same edges" true (Route.edges r = Route.edges r2.(i)))
    r1

let test_nc_resolves_congestion () =
  (* 8 identical crossings, capacity 3 per region: negotiation must use
     at least two rows *)
  let g = Grid.make ~w:2 ~h:4 ~hcap:3 ~vcap:8 in
  let nets =
    Array.init 8 (fun id -> Net.make ~id ~source:(p 0 1) ~sinks:[| p 1 1 |])
  in
  let nl = Netlist.make ~name:"chan" ~grid_w:2 ~grid_h:4 ~gcell_um:50.0 nets in
  let routes = Nc_router.route ~grid:g ~netlist:nl () in
  let u = Usage.of_routes g ~gcell_um:50.0 (Array.to_list routes) in
  Alcotest.(check int) "no overflow left" 0 (Usage.total_overflow u)

let test_nc_short_when_uncongested () =
  (* a lone 2-pin net takes a shortest (Manhattan) route *)
  let g = Grid.make ~w:8 ~h:8 ~hcap:10 ~vcap:10 in
  let nets = [| Net.make ~id:0 ~source:(p 1 1) ~sinks:[| p 5 4 |] |] in
  let nl = Netlist.make ~name:"one" ~grid_w:8 ~grid_h:8 ~gcell_um:50.0 nets in
  let routes = Nc_router.route ~grid:g ~netlist:nl () in
  Alcotest.(check int) "manhattan length" 7 (Route.num_edges routes.(0))

let test_nc_in_flow () =
  let nl = Lazy.force tiny in
  let config kind =
    { Flow.Config.default with
      Flow.Config.kind;
      router = Flow.Negotiated;
      seed = 3;
    }
  in
  let grid, base = Flow.prepare ~config:(config Flow.Gsino) tech nl in
  let sens = Sensitivity.make ~seed:11 ~rate:0.30 in
  let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity:sens nl in
  let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity:sens nl in
  Alcotest.(check int) "gsino violation-free with nc router" 0
    (Flow.violation_count gsino);
  Alcotest.(check bool) "idno has violations" true (Flow.violation_count idno > 0)

(* ----------------------- route-aware budgeting --------------------- *)

let test_route_aware_tightens_detours () =
  let g = Grid.make ~w:8 ~h:8 ~hcap:10 ~vcap:10 in
  let nets = [| Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 3 0 |] |] in
  let nl = Netlist.make ~name:"d" ~grid_w:8 ~grid_h:8 ~gcell_um:100.0 nets in
  (* a detoured route: down, across, up = 5 edges instead of 3 *)
  let detour =
    Route.of_edges g ~net:0
      [
        Grid.edge_id g (p 0 0) Dir.V;
        Grid.edge_id g (p 0 1) Dir.H;
        Grid.edge_id g (p 1 1) Dir.H;
        Grid.edge_id g (p 2 1) Dir.H;
        Grid.edge_id g (p 3 0) Dir.V;
      ]
  in
  let lsk = Tech.lsk_model tech in
  let uniform = Budget.uniform ~lsk ~noise_v:0.15 ~gcell_um:100.0 nl in
  let aware =
    Budget.route_aware ~lsk ~noise_v:0.15 ~gcell_um:100.0 ~grid:g
      ~routes:[| detour |] nl
  in
  Alcotest.(check (float 1e-9)) "uniform uses manhattan (3)"
    (uniform.Budget.lsk_budget /. 300.0)
    (Budget.kth uniform 0);
  Alcotest.(check (float 1e-9)) "route-aware uses path (5)"
    (aware.Budget.lsk_budget /. 500.0)
    (Budget.kth aware 0);
  Alcotest.(check bool) "detour tightens" true
    (Budget.kth aware 0 < Budget.kth uniform 0)

let test_route_aware_flow_zero_pass1 () =
  (* with bounds from realized lengths, Phase III pass 1 has little or
     nothing to repair *)
  let nl = Lazy.force tiny in
  let grid, base = Flow.prepare tech nl in
  let sens = Sensitivity.make ~seed:11 ~rate:0.30 in
  let gsino =
    Flow.run ~grid ~base
      { Flow.Config.default with
        Flow.Config.kind = Flow.Gsino;
        budgeting = Flow.Route_aware;
        seed = 3;
      }
      tech ~sensitivity:sens nl
  in
  Alcotest.(check int) "violation-free" 0 (Flow.violation_count gsino);
  match gsino.Flow.refine_stats with
  | None -> Alcotest.fail "stats expected"
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "pass1 fixes %d <= 2" s.Refine.pass1_nets_fixed)
        true
        (s.Refine.pass1_nets_fixed <= 2)

(* --------------------------- netlist IO ---------------------------- *)

let test_io_roundtrip () =
  let nl = Lazy.force tiny in
  let nl' = Io.of_string (Io.to_string nl) in
  Alcotest.(check string) "name" nl.Netlist.name nl'.Netlist.name;
  Alcotest.(check int) "grid w" nl.Netlist.grid_w nl'.Netlist.grid_w;
  Alcotest.(check int) "grid h" nl.Netlist.grid_h nl'.Netlist.grid_h;
  Alcotest.(check (float 1e-9)) "gcell" nl.Netlist.gcell_um nl'.Netlist.gcell_um;
  Alcotest.(check int) "net count" (Netlist.num_nets nl) (Netlist.num_nets nl');
  Array.iteri
    (fun i n ->
      Alcotest.(check bool) "same pins" true
        (Net.pins n = Net.pins nl'.Netlist.nets.(i)))
    nl.Netlist.nets

let test_io_file_roundtrip () =
  let nl = Lazy.force tiny in
  let path = Filename.temp_file "gsino" ".netlist" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path nl;
      let nl' = Io.load path in
      Alcotest.(check int) "net count" (Netlist.num_nets nl) (Netlist.num_nets nl'))

let test_io_rejects_garbage () =
  let bad input =
    try
      ignore (Io.of_string input);
      false
    with
    | Eda_guard.Error.Error (Eda_guard.Error.Parse _) -> true
    | Failure _ | Invalid_argument _ -> true
  in
  Alcotest.(check bool) "missing magic" true (bad "name x\ngrid 2 2 10\n");
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "bad grid" true
    (bad "gsino-netlist v1\nname x\ngrid two 2 10\nnet 0 0 0 1 1\n");
  Alcotest.(check bool) "odd sink coords" true
    (bad "gsino-netlist v1\nname x\ngrid 4 4 10\nnet 0 0 0 1\n");
  Alcotest.(check bool) "off-grid pin" true
    (bad "gsino-netlist v1\nname x\ngrid 2 2 10\nnet 0 0 0 9 9\n");
  Alcotest.(check bool) "unknown record" true
    (bad "gsino-netlist v1\nname x\ngrid 2 2 10\nwat 1 2 3\n")

let test_io_comments_and_blanks () =
  let nl =
    Io.of_string
      "gsino-netlist v1\n# a comment\n\nname demo\ngrid 4 4 25\n\nnet 0 0 0 3 3\n"
  in
  Alcotest.(check string) "name" "demo" nl.Netlist.name;
  Alcotest.(check int) "one net" 1 (Netlist.num_nets nl)

(* -------------------------- congestion map ------------------------- *)

let test_congestion_map_glyphs () =
  let g = Grid.make ~w:3 ~h:2 ~hcap:4 ~vcap:4 in
  let u = Usage.create g ~gcell_um:50.0 in
  Usage.set_shields u (Grid.region_id g (p 0 0)) Dir.H 2;
  Usage.set_shields u (Grid.region_id g (p 1 0)) Dir.H 6;
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Congestion_map.render fmt u;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "overflow glyph present" true (String.contains out '!');
  Alcotest.(check bool) "mid-range glyph present" true (String.contains out '=');
  (* 2 directions x (header + 2 rows) *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "line count" 6 (List.length lines)

(* ------------------------- delay measurements ---------------------- *)

let drive () =
  let e = Table_builder.default_electrical in
  {
    Coupled_line.rd = e.Table_builder.rd;
    cl = e.Table_builder.cl;
    vdd = e.Table_builder.vdd;
    t_delay = e.Table_builder.t_delay;
    t_rise = e.Table_builder.t_rise;
  }

let spec () =
  Table_builder.spec_of Table_builder.default_electrical
    ~keff:Eda_sino.Keff.default ~length_m:1e-3

let delay roles =
  match Coupled_line.rise_delay (spec ()) (drive ()) roles ~wire:1 with
  | Some d -> d
  | None -> Alcotest.fail "wire never reached 50% Vdd"

let test_crossing_time () =
  let c = Eda_circuit.Mna.create () in
  let a = Eda_circuit.Mna.node c and b = Eda_circuit.Mna.node c in
  ignore
    (Eda_circuit.Mna.vsource c a Eda_circuit.Mna.ground
       (Eda_circuit.Waveform.Ramp { v0 = 0.; v1 = 1.; t_delay = 0.; t_rise = 1e-12 }));
  Eda_circuit.Mna.resistor c a b 1000.0;
  Eda_circuit.Mna.capacitor c b Eda_circuit.Mna.ground 1e-12;
  let r = Eda_circuit.Transient.run c ~dt:2e-12 ~t_end:5e-9 ~probes:[ b ] in
  (* RC 50% crossing at tau ln 2 *)
  (match Eda_circuit.Transient.crossing_time r 0 ~level:0.5 with
  | None -> Alcotest.fail "no crossing"
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "t=%.3gns ~ tau ln2" (t *. 1e9))
        true
        (Float.abs (t -. (1e-9 *. log 2.)) < 2e-11));
  Alcotest.(check bool) "never reaches 2.0" true
    (Eda_circuit.Transient.crossing_time r 0 ~level:2.0 = None)

let test_opposing_neighbours_slow_the_wire () =
  let open Coupled_line in
  let d_opp = delay [| Opposing; Aggressor; Opposing |] in
  let d_shield = delay [| Shield; Aggressor; Shield |] in
  let d_same = delay [| Aggressor; Aggressor; Aggressor |] in
  (* the [12] claim: a shielded (SINO) wire is faster than one whose
     neighbours switch opposingly, because no neighbour switches against it *)
  Alcotest.(check bool) "shielded faster than opposing" true (d_shield < d_opp);
  Alcotest.(check bool) "same-direction fastest" true (d_same <= d_shield +. 1e-15)

let test_opposing_symmetric_noise () =
  let open Coupled_line in
  (* a falling aggressor injects the mirror image of a rising one: the
     victim's |peak| must match to a few percent (linear network) *)
  let v_rise =
    worst_victim_noise (spec ()) (drive ()) [| Aggressor; Victim; Quiet |]
  in
  let v_fall =
    worst_victim_noise (spec ()) (drive ()) [| Opposing; Victim; Quiet |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "|noise| symmetric (%.4f vs %.4f)" v_rise v_fall)
    true
    (Float.abs (v_rise -. v_fall) < 0.02 *. v_rise)

let test_differential_rejects_common_mode () =
  let open Coupled_line in
  (* the differential receiver's noise is far below the single-ended one *)
  let v_single =
    worst_victim_noise (spec ()) (drive ()) [| Aggressor; Victim; Quiet |]
  in
  let v_diff =
    differential_noise (spec ()) (drive ())
      [| Aggressor; Victim; Victim |] ~plus:1 ~minus:2
  in
  Alcotest.(check bool)
    (Printf.sprintf "differential %.4f < single-ended %.4f" v_diff v_single)
    true (v_diff < v_single);
  Alcotest.check_raises "plus must be a victim"
    (Invalid_argument
       "Coupled_line.differential_noise: plus/minus must be distinct victims")
    (fun () ->
      ignore
        (differential_noise (spec ()) (drive ())
           [| Aggressor; Victim; Victim |] ~plus:0 ~minus:1))

let test_combined_variants () =
  (* negotiated router + route-aware budgeting together still deliver the
     paper's guarantee *)
  let nl = Lazy.force tiny in
  let config kind =
    { Flow.Config.default with
      Flow.Config.kind;
      router = Flow.Negotiated;
      budgeting = Flow.Route_aware;
      seed = 3;
    }
  in
  let grid, base = Flow.prepare ~config:(config Flow.Gsino) tech nl in
  let sens = Sensitivity.make ~seed:11 ~rate:0.50 in
  let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity:sens nl in
  let isino = Flow.run ~grid ~base (config Flow.Isino) tech ~sensitivity:sens nl in
  Alcotest.(check int) "gsino clean" 0 (Flow.violation_count gsino);
  Alcotest.(check int) "isino clean" 0 (Flow.violation_count isino)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"both routers connect random netlists" ~count:12
      (pair (int_range 1 10_000) (int_range 10 60))
      (fun (seed, n_nets) ->
        let nl =
          Generator.uniform ~name:"q" ~grid_w:7 ~grid_h:6 ~n_nets
            ~mean_span:2.5 ~seed
        in
        let grid = Grid.make ~w:7 ~h:6 ~hcap:8 ~vcap:8 in
        let ok routes =
          Array.for_all
            (fun r ->
              Route.connects grid r
                (Net.pins nl.Netlist.nets.(Route.net r))
              && Route.is_tree grid r)
            routes
        in
        ok (Nc_router.route ~grid ~netlist:nl ())
        && ok (Id_router.route ~grid ~netlist:nl ()));
    Test.make ~name:"io roundtrip on random netlists" ~count:20
      (int_range 1 10_000)
      (fun seed ->
        let nl =
          Generator.uniform ~name:"rt" ~grid_w:9 ~grid_h:9 ~n_nets:25
            ~mean_span:3.0 ~seed
        in
        let nl' = Io.of_string (Io.to_string nl) in
        Array.for_all2
          (fun a b -> Net.pins a = Net.pins b)
          nl.Netlist.nets nl'.Netlist.nets);
  ]

let suites =
  [
    ( "ext.nc_router",
      [
        Alcotest.test_case "routes connect" `Slow test_nc_routes_connect;
        Alcotest.test_case "deterministic" `Slow test_nc_deterministic;
        Alcotest.test_case "resolves congestion" `Quick test_nc_resolves_congestion;
        Alcotest.test_case "short when uncongested" `Quick test_nc_short_when_uncongested;
        Alcotest.test_case "works in flow" `Slow test_nc_in_flow;
      ] );
    ( "ext.budgeting",
      [
        Alcotest.test_case "route-aware tightens detours" `Quick
          test_route_aware_tightens_detours;
        Alcotest.test_case "route-aware leaves pass1 idle" `Slow
          test_route_aware_flow_zero_pass1;
      ] );
    ( "ext.io",
      [
        Alcotest.test_case "string roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
        Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
      ] );
    ( "ext.combined",
      [ Alcotest.test_case "nc + route-aware flows" `Slow test_combined_variants ] );
    ("ext.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ( "ext.congestion_map",
      [ Alcotest.test_case "glyphs" `Quick test_congestion_map_glyphs ] );
    ( "ext.delay",
      [
        Alcotest.test_case "crossing time" `Quick test_crossing_time;
        Alcotest.test_case "opposing neighbours slow the wire" `Slow
          test_opposing_neighbours_slow_the_wire;
        Alcotest.test_case "opposing noise symmetric" `Slow test_opposing_symmetric_noise;
        Alcotest.test_case "differential rejects common mode" `Slow
          test_differential_rejects_common_mode;
      ] );
  ]
