(* Unit and property tests for Eda_util: rng, stats, matrix, lintable,
   heap, union-find. *)
module Rng = Eda_util.Rng
module Stats = Eda_util.Stats
module Matrix = Eda_util.Matrix
module Lintable = Eda_util.Lintable
module Heap = Eda_util.Heap
module Union_find = Eda_util.Union_find

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------------------------- Rng ---------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Rng.bits64 child <> Rng.bits64 a)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "int 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 4 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-3) 5 in
    Alcotest.(check bool) "-3 <= v <= 5" true (v >= -3 && v <= 5)
  done

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bool_bias () =
  let r = Rng.create 6 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p(true) ~ 0.3" true (Float.abs (p -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create 8 in
  let n = 20_000 in
  let s = ref 0.0 in
  for _ = 1 to n do
    s := !s +. Rng.exponential r ~mean:4.0
  done;
  let m = !s /. float_of_int n in
  Alcotest.(check bool) "mean ~ 4" true (Float.abs (m -. 4.0) < 0.15)

let test_rng_gaussian_moments () =
  let r = Rng.create 9 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian r ~mu:1.5 ~sigma:2.0) in
  Alcotest.(check bool) "mean ~ 1.5" true (Float.abs (Stats.mean samples -. 1.5) < 0.08);
  Alcotest.(check bool) "stdev ~ 2" true (Float.abs (Stats.stdev samples -. 2.0) < 0.08)

let test_rng_geometric () =
  let r = Rng.create 10 in
  Alcotest.(check int) "p=1 always 0" 0 (Rng.geometric r 1.0);
  let n = 20_000 in
  let s = ref 0 in
  for _ = 1 to n do
    s := !s + Rng.geometric r 0.5
  done;
  let m = float_of_int !s /. float_of_int n in
  (* mean of geometric(0.5) counting failures = (1-p)/p = 1 *)
  Alcotest.(check bool) "mean ~ 1" true (Float.abs (m -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_choose () =
  let r = Rng.create 12 in
  for _ = 1 to 100 do
    let v = Rng.choose r [| 1; 2; 3 |] in
    Alcotest.(check bool) "chosen from array" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty array rejected"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose r [||]))

let test_pair_hash_symmetric () =
  for i = 0 to 30 do
    for j = 0 to 30 do
      check_float "symmetric"
        (Rng.pair_hash ~seed:5 i j)
        (Rng.pair_hash ~seed:5 j i)
    done
  done

let test_pair_hash_seed_sensitivity () =
  Alcotest.(check bool) "seed changes hash" true
    (Rng.pair_hash ~seed:1 3 4 <> Rng.pair_hash ~seed:2 3 4)

let test_pair_hash_uniform () =
  let n = 300 in
  let hits = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      if Rng.pair_hash ~seed:99 i j < 0.3 then incr hits
    done
  done;
  let p = float_of_int !hits /. float_of_int !total in
  Alcotest.(check bool) "fraction ~ 0.3" true (Float.abs (p -. 0.3) < 0.01)

(* ---------------------------- Stats -------------------------------- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_stdev () =
  check_float ~eps:1e-9 "stdev" (sqrt 1.25) (Stats.stdev [| 1.; 2.; 3.; 4. |])

let test_stats_minmax () =
  check_float "min" (-2.) (Stats.minimum [| 3.; -2.; 7. |]);
  check_float "max" 7. (Stats.maximum [| 3.; -2.; 7. |])

let test_stats_sum_kahan () =
  let a = Array.make 10_000 0.1 in
  check_float ~eps:1e-9 "kahan sum" 1000.0 (Stats.sum a)

let test_stats_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p50" 3.0 (Stats.percentile a 50.0);
  check_float "p100" 5.0 (Stats.percentile a 100.0);
  check_float "p25" 2.0 (Stats.percentile a 25.0)

let test_stats_percentile_unsorted () =
  check_float "unsorted input" 3.0 (Stats.percentile [| 5.; 1.; 3.; 2.; 4. |] 50.0)

let test_stats_empty_rejected () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_ratio_pct () =
  check_float "+10%" 10.0 (Stats.ratio_pct 110.0 100.0);
  check_float "-25%" (-25.0) (Stats.ratio_pct 75.0 100.0)

let test_stats_r_squared () =
  let actual = [| 1.; 2.; 3.; 4. |] in
  check_float "perfect fit" 1.0 (Stats.r_squared ~actual ~predicted:actual);
  let bad = [| 2.5; 2.5; 2.5; 2.5 |] in
  check_float "mean-only fit" 0.0 (Stats.r_squared ~actual ~predicted:bad)

let test_stats_max_rel_err () =
  check_float "10% worst" 0.1
    (Stats.max_rel_err ~actual:[| 10.; 100. |] [| 11.; 100. |])

let test_stats_mean_int () = check_float "mean_int" 2.0 (Stats.mean_int [| 1; 2; 3 |])

let test_stats_quantile_int () =
  Alcotest.(check int) "median" 3 (Stats.quantile_int [| 5; 1; 3; 2; 4 |] 0.5);
  Alcotest.(check int) "q0 is min" 1 (Stats.quantile_int [| 5; 1; 3 |] 0.0);
  Alcotest.(check int) "q1 is max" 5 (Stats.quantile_int [| 5; 1; 3 |] 1.0);
  Alcotest.(check int) "singleton" 7 (Stats.quantile_int [| 7 |] 0.9)

let test_stats_quantile_int_empty () =
  (* regression: an empty sample (zero-region grid) must yield 0, not
     index a.(-1) *)
  Alcotest.(check int) "empty is 0" 0 (Stats.quantile_int [||] 0.9)

(* ---------------------------- Matrix ------------------------------- *)

let test_matrix_identity_mul () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let i = Matrix.identity 2 in
  let p = Matrix.mul a i in
  check_float "a*i = a (0,1)" 2.0 (Matrix.get p 0 1);
  check_float "a*i = a (1,0)" 3.0 (Matrix.get p 1 0)

let test_matrix_mul_known () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let p = Matrix.mul a b in
  check_float "(0,0)" 19.0 (Matrix.get p 0 0);
  check_float "(0,1)" 22.0 (Matrix.get p 0 1);
  check_float "(1,0)" 43.0 (Matrix.get p 1 0);
  check_float "(1,1)" 50.0 (Matrix.get p 1 1)

let test_matrix_transpose () =
  let a = Matrix.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows t);
  Alcotest.(check int) "cols" 2 (Matrix.cols t);
  check_float "(2,1)" 6.0 (Matrix.get t 2 1)

let test_matrix_mulv () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let y = Matrix.mulv a [| 1.; 1. |] in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 7.0 y.(1)

let test_matrix_solve_known () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Matrix.solve a [| 5.; 10. |] in
  check_float ~eps:1e-9 "x" 1.0 x.(0);
  check_float ~eps:1e-9 "y" 3.0 x.(1)

let test_matrix_solve_pivoting () =
  (* leading zero forces a row swap *)
  let a = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Matrix.solve a [| 2.; 3. |] in
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_matrix_singular () =
  (* row 1 = 2 * row 0: rank deficient.  The typed exception must carry
     the dimension and the vanishing pivot so a user can tell "bad
     input" from "numerical bad luck"; its registered printer keeps the
     historical one-line message. *)
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Matrix.solve a [| 1.; 1. |] with
  | _ -> Alcotest.fail "singular matrix accepted"
  | exception (Matrix.Singular { n; column; pivot } as exn) ->
      Alcotest.(check int) "dimension" 2 n;
      Alcotest.(check int) "offending column" 1 column;
      Alcotest.(check (float 1e-13)) "vanishing pivot" 0.0 pivot;
      let msg = Printexc.to_string exn in
      Alcotest.(check bool)
        "printer names lu_factor" true
        (contains ~sub:"Matrix.lu_factor: singular matrix" msg);
      Alcotest.(check bool) "printer names dimension" true
        (contains ~sub:"n=2" msg)

let test_matrix_lu_reuse () =
  let a = Matrix.of_rows [| [| 4.; 1. |]; [| 1.; 3. |] |] in
  let lu = Matrix.lu_factor a in
  let x1 = Matrix.lu_solve lu [| 5.; 4. |] in
  let x2 = Matrix.lu_solve lu [| 9.; 7. |] in
  let y1 = Matrix.mulv a x1 and y2 = Matrix.mulv a x2 in
  check_float ~eps:1e-9 "solve1" 5.0 y1.(0);
  check_float ~eps:1e-9 "solve2" 7.0 y2.(1)

let test_matrix_least_squares_exact () =
  (* y = 2x + 1 through 3 exact points *)
  let a = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 1. |]; [| 2.; 1. |] |] in
  let c = Matrix.least_squares a [| 1.; 3.; 5. |] in
  check_float ~eps:1e-5 "slope" 2.0 c.(0);
  check_float ~eps:1e-5 "intercept" 1.0 c.(1)

let test_matrix_least_squares_noisy () =
  let a = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 1. |]; [| 2.; 1. |]; [| 3.; 1. |] |] in
  (* symmetric noise around y = x: best slope 1, intercept ~0.05 *)
  let c = Matrix.least_squares a [| 0.1; 1.0; 2.0; 3.1 |] in
  Alcotest.(check bool) "slope near 1" true (Float.abs (c.(0) -. 1.0) < 0.05)

let test_matrix_cholesky_pd () =
  let a = Matrix.of_rows [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  match Matrix.cholesky a with
  | None -> Alcotest.fail "PD matrix rejected"
  | Some l ->
      let lt = Matrix.transpose l in
      let p = Matrix.mul l lt in
      check_float ~eps:1e-9 "L*L' = A" 2.0 (Matrix.get p 0 1)

let test_matrix_cholesky_not_pd () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.(check bool) "indefinite rejected" true (Matrix.cholesky a = None)

let test_matrix_bounds () =
  let a = Matrix.create 2 2 in
  Alcotest.check_raises "oob get" (Invalid_argument "Matrix.get: index out of bounds")
    (fun () -> ignore (Matrix.get a 2 0))

(* ---------------------------- Lintable ----------------------------- *)

let test_lintable_eval () =
  let t = Lintable.of_points [ (0., 0.); (10., 100.) ] in
  check_float "interp" 50.0 (Lintable.eval t 5.0);
  check_float "clamp lo" 0.0 (Lintable.eval t (-1.0));
  check_float "clamp hi" 100.0 (Lintable.eval t 11.0)

let test_lintable_unsorted_input () =
  let t = Lintable.of_points [ (10., 100.); (0., 0.) ] in
  check_float "sorted internally" 50.0 (Lintable.eval t 5.0)

let test_lintable_duplicate_merge () =
  let t = Lintable.of_points [ (0., 0.); (5., 10.); (5., 20.); (10., 30.) ] in
  check_float "duplicates averaged" 15.0 (Lintable.eval t 5.0)

let test_lintable_too_few () =
  Alcotest.check_raises "one point rejected"
    (Invalid_argument "Lintable.of_points: need at least 2 distinct abscissae")
    (fun () -> ignore (Lintable.of_points [ (1., 1.); (1., 2.) ]))

let test_lintable_isotonic () =
  let t = Lintable.of_points [ (0., 0.); (1., 5.); (2., 3.); (3., 10.) ] in
  let iso = Lintable.isotonic t in
  let e = Lintable.entries iso in
  for i = 0 to Array.length e - 2 do
    Alcotest.(check bool) "non-decreasing" true (snd e.(i) <= snd e.(i + 1))
  done;
  (* PAV pools 5 and 3 to 4 *)
  check_float "pooled value" 4.0 (snd e.(1));
  check_float "pooled value" 4.0 (snd e.(2))

let test_lintable_isotonic_keeps_monotone () =
  let pts = [ (0., 0.); (1., 1.); (2., 4.); (3., 9.) ] in
  let t = Lintable.of_points pts in
  let iso = Lintable.isotonic t in
  List.iter (fun (x, y) -> check_float "unchanged" y (Lintable.eval iso x)) pts

let test_lintable_resample () =
  let t = Lintable.of_points [ (0., 0.); (10., 10.) ] in
  let r = Lintable.resample t 11 in
  Alcotest.(check int) "size" 11 (Lintable.size r);
  check_float "same function" 3.0 (Lintable.eval r 3.0)

let test_lintable_inverse () =
  let t = Lintable.of_points [ (0., 0.); (10., 100.) ] in
  check_float "inverse" 5.0 (Lintable.inverse t 50.0);
  check_float "inverse clamp lo" 0.0 (Lintable.inverse t (-5.0));
  check_float "inverse clamp hi" 10.0 (Lintable.inverse t 200.0)

let test_lintable_roundtrip () =
  let t = Lintable.of_points [ (0., 0.); (4., 8.); (10., 20.) ] in
  List.iter
    (fun x -> check_float ~eps:1e-9 "inverse(eval(x)) = x" x (Lintable.inverse t (Lintable.eval t x)))
    [ 1.0; 3.0; 7.0 ]

(* ---------------------------- Heap --------------------------------- *)

let test_heap_pop_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 3.; 1.; 4.; 1.5; 9.; 2.6 ];
  let rec drain acc = if Heap.is_empty h then List.rev acc else drain (fst (Heap.pop_max h) :: acc) in
  Alcotest.(check (list (float 1e-9))) "descending order" [ 9.; 4.; 3.; 2.6; 1.5; 1. ] (drain [])

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop_max h))

let test_heap_peek () =
  let h = Heap.create () in
  Heap.push h 2.0 "a";
  Heap.push h 5.0 "b";
  Alcotest.(check string) "peek max" "b" (snd (Heap.peek_max h));
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

let test_heap_duplicates () =
  let h = Heap.create () in
  Heap.push h 1.0 "x";
  Heap.push h 1.0 "y";
  ignore (Heap.pop_max h);
  ignore (Heap.pop_max h);
  Alcotest.(check bool) "both popped" true (Heap.is_empty h)

let test_heap_growth () =
  let h = Heap.create () in
  for i = 1 to 1000 do
    Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "all stored" 1000 (Heap.length h);
  Alcotest.(check int) "max is 1000" 1000 (snd (Heap.pop_max h))

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 1;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* ---------------------------- Union-find --------------------------- *)

let test_uf_basic () =
  let u = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count u);
  Alcotest.(check bool) "union works" true (Union_find.union u 0 1);
  Alcotest.(check bool) "re-union is no-op" false (Union_find.union u 0 1);
  Alcotest.(check bool) "same" true (Union_find.same u 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same u 0 2);
  Alcotest.(check int) "sets after union" 4 (Union_find.count u)

let test_uf_transitive () =
  let u = Union_find.create 6 in
  ignore (Union_find.union u 0 1);
  ignore (Union_find.union u 1 2);
  ignore (Union_find.union u 3 4);
  Alcotest.(check bool) "0~2 transitively" true (Union_find.same u 0 2);
  Alcotest.(check bool) "0!~3" false (Union_find.same u 0 3);
  ignore (Union_find.union u 2 3);
  Alcotest.(check bool) "now 0~4" true (Union_find.same u 0 4)

(* ---------------------------- QCheck props ------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"heap pops every pushed key in descending order" ~count:100
      (list (float_bound_inclusive 1000.0))
      (fun keys ->
        let h = Heap.create () in
        List.iter (fun k -> Heap.push h k ()) keys;
        let rec drain acc =
          if Heap.is_empty h then List.rev acc
          else drain (fst (Heap.pop_max h) :: acc)
        in
        drain [] = List.sort (fun a b -> compare b a) keys);
    Test.make ~name:"isotonic output is monotone" ~count:100
      (list_of_size (Gen.int_range 2 30) (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
      (fun pts ->
        assume (List.length (List.sort_uniq compare (List.map fst pts)) >= 2);
        let t = Lintable.isotonic (Lintable.of_points pts) in
        let e = Lintable.entries t in
        let ok = ref true in
        for i = 0 to Array.length e - 2 do
          if snd e.(i) > snd e.(i + 1) +. 1e-9 then ok := false
        done;
        !ok);
    Test.make ~name:"lu_solve solves Ax=b" ~count:100
      (list_of_size (Gen.return 9) (float_range (-10.) 10.))
      (fun vals ->
        let a = Matrix.create 3 3 in
        List.iteri (fun i v -> Matrix.set a (i / 3) (i mod 3) v) vals;
        (* make it diagonally dominant so it is well-conditioned *)
        for i = 0 to 2 do
          Matrix.add_to a i i 50.0
        done;
        let b = [| 1.0; -2.0; 3.0 |] in
        let x = Matrix.solve a b in
        let y = Matrix.mulv a x in
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) y b);
    Test.make ~name:"pair_hash is in [0,1)" ~count:500
      (pair small_nat small_nat)
      (fun (i, j) ->
        let v = Rng.pair_hash ~seed:7 i j in
        v >= 0.0 && v < 1.0);
  ]

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
        Alcotest.test_case "int_in range" `Quick test_rng_int_in;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "geometric" `Quick test_rng_geometric;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "choose" `Quick test_rng_choose;
        Alcotest.test_case "pair_hash symmetric" `Quick test_pair_hash_symmetric;
        Alcotest.test_case "pair_hash seeded" `Quick test_pair_hash_seed_sensitivity;
        Alcotest.test_case "pair_hash uniform" `Quick test_pair_hash_uniform;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "stdev" `Quick test_stats_stdev;
        Alcotest.test_case "min/max" `Quick test_stats_minmax;
        Alcotest.test_case "kahan sum" `Quick test_stats_sum_kahan;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentile unsorted" `Quick test_stats_percentile_unsorted;
        Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
        Alcotest.test_case "ratio_pct" `Quick test_stats_ratio_pct;
        Alcotest.test_case "r_squared" `Quick test_stats_r_squared;
        Alcotest.test_case "max_rel_err" `Quick test_stats_max_rel_err;
        Alcotest.test_case "mean_int" `Quick test_stats_mean_int;
        Alcotest.test_case "quantile_int" `Quick test_stats_quantile_int;
        Alcotest.test_case "quantile_int empty" `Quick test_stats_quantile_int_empty;
      ] );
    ( "util.matrix",
      [
        Alcotest.test_case "identity mul" `Quick test_matrix_identity_mul;
        Alcotest.test_case "mul known" `Quick test_matrix_mul_known;
        Alcotest.test_case "transpose" `Quick test_matrix_transpose;
        Alcotest.test_case "mulv" `Quick test_matrix_mulv;
        Alcotest.test_case "solve known" `Quick test_matrix_solve_known;
        Alcotest.test_case "solve pivoting" `Quick test_matrix_solve_pivoting;
        Alcotest.test_case "singular rejected" `Quick test_matrix_singular;
        Alcotest.test_case "lu reuse" `Quick test_matrix_lu_reuse;
        Alcotest.test_case "least squares exact" `Quick test_matrix_least_squares_exact;
        Alcotest.test_case "least squares noisy" `Quick test_matrix_least_squares_noisy;
        Alcotest.test_case "cholesky PD" `Quick test_matrix_cholesky_pd;
        Alcotest.test_case "cholesky not PD" `Quick test_matrix_cholesky_not_pd;
        Alcotest.test_case "bounds checked" `Quick test_matrix_bounds;
      ] );
    ( "util.lintable",
      [
        Alcotest.test_case "eval" `Quick test_lintable_eval;
        Alcotest.test_case "unsorted input" `Quick test_lintable_unsorted_input;
        Alcotest.test_case "duplicate merge" `Quick test_lintable_duplicate_merge;
        Alcotest.test_case "too few points" `Quick test_lintable_too_few;
        Alcotest.test_case "isotonic pools violators" `Quick test_lintable_isotonic;
        Alcotest.test_case "isotonic keeps monotone" `Quick test_lintable_isotonic_keeps_monotone;
        Alcotest.test_case "resample" `Quick test_lintable_resample;
        Alcotest.test_case "inverse" `Quick test_lintable_inverse;
        Alcotest.test_case "inverse roundtrip" `Quick test_lintable_roundtrip;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "pop order" `Quick test_heap_pop_order;
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "peek" `Quick test_heap_peek;
        Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        Alcotest.test_case "growth" `Quick test_heap_growth;
        Alcotest.test_case "clear" `Quick test_heap_clear;
      ] );
    ( "util.union_find",
      [
        Alcotest.test_case "basic" `Quick test_uf_basic;
        Alcotest.test_case "transitive" `Quick test_uf_transitive;
      ] );
    ("util.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
