(* Tests for Eda_netlist: nets, sensitivity model, benchmark generator. *)
module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Generator = Eda_netlist.Generator

let p = Point.make

let two_pin id a b = Net.make ~id ~source:a ~sinks:[| b |]

let test_net_make () =
  let n = Net.make ~id:3 ~source:(p 0 0) ~sinks:[| p 1 2; p 3 0 |] in
  Alcotest.(check int) "pins" 3 (Net.num_pins n);
  Alcotest.check_raises "no sinks" (Invalid_argument "Net.make: net needs a sink")
    (fun () -> ignore (Net.make ~id:0 ~source:(p 0 0) ~sinks:[||]))

let test_net_bbox_hpwl () =
  let n = Net.make ~id:0 ~source:(p 2 3) ~sinks:[| p 5 1; p 0 4 |] in
  Alcotest.(check int) "hpwl" (5 + 3) (Net.hpwl n);
  Alcotest.(check bool) "bbox" true
    (Eda_geom.Rect.equal (Net.bbox n) (Eda_geom.Rect.make 0 1 5 4))

let test_net_manhattan_to_sink () =
  let n = Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 3 4; p 1 0 |] in
  Alcotest.(check int) "sink 0" 7 (Net.manhattan_to_sink n 0);
  Alcotest.(check int) "sink 1" 1 (Net.manhattan_to_sink n 1);
  Alcotest.check_raises "bad sink"
    (Invalid_argument "Net.manhattan_to_sink: no such sink") (fun () ->
      ignore (Net.manhattan_to_sink n 2))

let test_netlist_validate () =
  let nets = [| two_pin 0 (p 0 0) (p 1 1); two_pin 1 (p 2 2) (p 3 3) |] in
  let nl = Netlist.make ~name:"t" ~grid_w:4 ~grid_h:4 ~gcell_um:10.0 nets in
  Netlist.validate nl;
  let bad = [| two_pin 0 (p 0 0) (p 9 0) |] in
  let nl2 = Netlist.make ~name:"bad" ~grid_w:4 ~grid_h:4 ~gcell_um:10.0 bad in
  Alcotest.(check bool) "off-grid pin detected" true
    (try
       Netlist.validate nl2;
       false
     with Invalid_argument _ -> true)

let test_netlist_id_mismatch () =
  let nets = [| two_pin 5 (p 0 0) (p 1 1) |] in
  let nl = Netlist.make ~name:"t" ~grid_w:4 ~grid_h:4 ~gcell_um:10.0 nets in
  Alcotest.(check bool) "id mismatch detected" true
    (try
       Netlist.validate nl;
       false
     with Invalid_argument _ -> true)

let test_netlist_hpwl_um () =
  let nets = [| two_pin 0 (p 0 0) (p 2 1) |] in
  let nl = Netlist.make ~name:"t" ~grid_w:4 ~grid_h:4 ~gcell_um:10.0 nets in
  Alcotest.(check (float 1e-9)) "total hpwl um" 30.0 (Netlist.total_hpwl_um nl);
  Alcotest.(check (float 1e-9)) "mean hpwl um" 30.0 (Netlist.mean_hpwl_um nl)

let test_sensitivity_symmetric () =
  let s = Sensitivity.make ~seed:3 ~rate:0.4 in
  for i = 0 to 40 do
    for j = 0 to 40 do
      Alcotest.(check bool) "symmetric" (Sensitivity.sensitive s i j)
        (Sensitivity.sensitive s j i)
    done
  done

let test_sensitivity_diagonal () =
  let s = Sensitivity.make ~seed:3 ~rate:1.0 in
  Alcotest.(check bool) "never self-sensitive" false (Sensitivity.sensitive s 7 7)

let test_sensitivity_extremes () =
  let s0 = Sensitivity.make ~seed:3 ~rate:0.0 in
  let s1 = Sensitivity.make ~seed:3 ~rate:1.0 in
  for i = 0 to 20 do
    for j = i + 1 to 20 do
      Alcotest.(check bool) "rate 0" false (Sensitivity.sensitive s0 i j);
      Alcotest.(check bool) "rate 1" true (Sensitivity.sensitive s1 i j)
    done
  done

let test_sensitivity_rate_empirical () =
  let s = Sensitivity.make ~seed:12 ~rate:0.3 in
  let hits = ref 0 and total = ref 0 in
  for i = 0 to 200 do
    for j = i + 1 to 200 do
      incr total;
      if Sensitivity.sensitive s i j then incr hits
    done
  done;
  let r = float_of_int !hits /. float_of_int !total in
  Alcotest.(check bool) "empirical rate ~ 0.3" true (Float.abs (r -. 0.3) < 0.02)

let test_sensitivity_bad_rate () =
  Alcotest.check_raises "rate > 1" (Invalid_argument "Sensitivity.make: bad rate")
    (fun () -> ignore (Sensitivity.make ~seed:0 ~rate:1.5))

let test_segment_sensitivity () =
  let s = Sensitivity.make ~seed:3 ~rate:1.0 in
  Alcotest.(check (float 1e-9)) "all sensitive" 1.0
    (Sensitivity.segment_sensitivity s ~net:0 ~neighbours:[| 0; 1; 2; 3 |]);
  Alcotest.(check (float 1e-9)) "alone" 0.0
    (Sensitivity.segment_sensitivity s ~net:0 ~neighbours:[| 0 |]);
  let s0 = Sensitivity.make ~seed:3 ~rate:0.0 in
  Alcotest.(check (float 1e-9)) "none sensitive" 0.0
    (Sensitivity.segment_sensitivity s0 ~net:0 ~neighbours:[| 0; 1; 2 |])

let test_segment_sensitivity_edge_cases () =
  let s = Sensitivity.make ~seed:3 ~rate:1.0 in
  (* empty region: no neighbours at all, not even the net itself *)
  Alcotest.(check (float 1e-9)) "empty region" 0.0
    (Sensitivity.segment_sensitivity s ~net:0 ~neighbours:[||]);
  (* the net need not appear in [neighbours]; every entry then counts *)
  Alcotest.(check (float 1e-9)) "net absent from region" 1.0
    (Sensitivity.segment_sensitivity s ~net:9 ~neighbours:[| 1; 2 |]);
  (* duplicate self entries never count as neighbours *)
  Alcotest.(check (float 1e-9)) "only self entries" 0.0
    (Sensitivity.segment_sensitivity s ~net:4 ~neighbours:[| 4; 4; 4 |]);
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Sensitivity.make: bad rate") (fun () ->
      ignore (Sensitivity.make ~seed:0 ~rate:(-0.1)))

let test_generator_profiles () =
  Alcotest.(check int) "six circuits" 6 (List.length Generator.all_ibm);
  Alcotest.(check bool) "lookup" true (Generator.find_ibm "ibm03" = Some Generator.ibm03);
  Alcotest.(check bool) "unknown" true (Generator.find_ibm "ibm99" = None)

let test_generator_determinism () =
  let a = Generator.generate ~scale:0.02 ~seed:5 Generator.ibm01 in
  let b = Generator.generate ~scale:0.02 ~seed:5 Generator.ibm01 in
  Alcotest.(check int) "same net count" (Netlist.num_nets a) (Netlist.num_nets b);
  Array.iteri
    (fun i n ->
      Alcotest.(check bool) "same pins" true
        (Net.pins n = Net.pins b.Netlist.nets.(i)))
    a.Netlist.nets

let test_generator_seed_changes () =
  let a = Generator.generate ~scale:0.02 ~seed:5 Generator.ibm01 in
  let b = Generator.generate ~scale:0.02 ~seed:6 Generator.ibm01 in
  Alcotest.(check bool) "different placement" true
    (Array.exists2
       (fun m n -> Net.pins m <> Net.pins n)
       a.Netlist.nets b.Netlist.nets)

let test_generator_valid_and_scaled () =
  List.iter
    (fun scale ->
      let nl = Generator.generate ~scale ~seed:1 Generator.ibm02 in
      Netlist.validate nl;
      let expect = int_of_float (Float.round (float_of_int Generator.ibm02.Generator.n_nets *. scale)) in
      Alcotest.(check int) "net count scales" expect (Netlist.num_nets nl))
    [ 0.01; 0.03 ]

let test_generator_physical_invariance () =
  (* chip µm dims and target net lengths do not depend on scale *)
  let a = Generator.generate ~scale:0.01 ~seed:2 Generator.ibm01 in
  let b = Generator.generate ~scale:0.04 ~seed:2 Generator.ibm01 in
  let chip nl = float_of_int nl.Netlist.grid_w *. nl.Netlist.gcell_um in
  Alcotest.(check bool) "chip width stable within a gcell" true
    (Float.abs (chip a -. chip b) < 2.0 *. a.Netlist.gcell_um)

let test_generator_mean_length () =
  let nl = Generator.generate ~scale:0.15 ~seed:3 Generator.ibm05 in
  let m = Netlist.mean_hpwl_um nl in
  let target = Generator.ibm05.Generator.avg_wl_um in
  (* HPWL underestimates routed length; accept a generous band *)
  Alcotest.(check bool)
    (Printf.sprintf "mean HPWL %.0f within 40%% of %.0f" m target)
    true
    (m > 0.6 *. target && m < 1.4 *. target)

let test_generator_heavy_tail () =
  let nl = Generator.generate ~scale:0.15 ~seed:3 Generator.ibm05 in
  let lengths =
    Array.map (fun n -> float_of_int (Net.hpwl n)) nl.Netlist.nets
  in
  let median = Eda_util.Stats.percentile lengths 50.0 in
  let p95 = Eda_util.Stats.percentile lengths 95.0 in
  Alcotest.(check bool) "lognormal-like tail (p95 > 3x median)" true
    (p95 > 3.0 *. median)

let test_generator_uniform () =
  let nl =
    Generator.uniform ~name:"u" ~grid_w:10 ~grid_h:8 ~n_nets:50 ~mean_span:3.0 ~seed:4
  in
  Netlist.validate nl;
  Alcotest.(check int) "count" 50 (Netlist.num_nets nl);
  Array.iter
    (fun n -> Alcotest.(check int) "2-pin" 2 (Net.num_pins n))
    nl.Netlist.nets

let test_generator_bad_scale () =
  Alcotest.check_raises "scale 0 rejected"
    (Invalid_argument "Generator.generate: scale in (0,1]") (fun () ->
      ignore (Generator.generate ~scale:0.0 ~seed:1 Generator.ibm01))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"generated pins always on grid" ~count:20
      (pair (int_range 1 1000) (int_range 1 3))
      (fun (seed, pidx) ->
        let profile = List.nth Generator.all_ibm pidx in
        let nl = Generator.generate ~scale:0.01 ~seed profile in
        try
          Netlist.validate nl;
          true
        with Invalid_argument _ -> false);
    Test.make ~name:"sensitivity is stable across calls" ~count:100
      (triple (int_range 0 100) (int_range 0 100) (int_range 0 1000))
      (fun (i, j, seed) ->
        let s = Sensitivity.make ~seed ~rate:0.5 in
        Sensitivity.sensitive s i j = Sensitivity.sensitive s i j);
  ]

let suites =
  [
    ( "netlist.net",
      [
        Alcotest.test_case "make" `Quick test_net_make;
        Alcotest.test_case "bbox/hpwl" `Quick test_net_bbox_hpwl;
        Alcotest.test_case "manhattan_to_sink" `Quick test_net_manhattan_to_sink;
      ] );
    ( "netlist.netlist",
      [
        Alcotest.test_case "validate" `Quick test_netlist_validate;
        Alcotest.test_case "id mismatch" `Quick test_netlist_id_mismatch;
        Alcotest.test_case "hpwl um" `Quick test_netlist_hpwl_um;
      ] );
    ( "netlist.sensitivity",
      [
        Alcotest.test_case "symmetric" `Quick test_sensitivity_symmetric;
        Alcotest.test_case "diagonal" `Quick test_sensitivity_diagonal;
        Alcotest.test_case "extremes" `Quick test_sensitivity_extremes;
        Alcotest.test_case "empirical rate" `Quick test_sensitivity_rate_empirical;
        Alcotest.test_case "bad rate" `Quick test_sensitivity_bad_rate;
        Alcotest.test_case "segment sensitivity" `Quick test_segment_sensitivity;
        Alcotest.test_case "segment sensitivity edge cases" `Quick
          test_segment_sensitivity_edge_cases;
      ] );
    ( "netlist.generator",
      [
        Alcotest.test_case "profiles" `Quick test_generator_profiles;
        Alcotest.test_case "determinism" `Quick test_generator_determinism;
        Alcotest.test_case "seed changes" `Quick test_generator_seed_changes;
        Alcotest.test_case "valid and scaled" `Quick test_generator_valid_and_scaled;
        Alcotest.test_case "physical invariance" `Quick test_generator_physical_invariance;
        Alcotest.test_case "mean length" `Quick test_generator_mean_length;
        Alcotest.test_case "heavy tail" `Quick test_generator_heavy_tail;
        Alcotest.test_case "uniform" `Quick test_generator_uniform;
        Alcotest.test_case "bad scale" `Quick test_generator_bad_scale;
      ] );
    ("netlist.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
