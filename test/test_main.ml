(* Aggregates every module's alcotest suites into one runner. *)
let () =
  Alcotest.run "gsino"
    (List.concat
       [
         Test_util.suites;
         Test_geom.suites;
         Test_netlist.suites;
         Test_grid.suites;
         Test_steiner.suites;
         Test_circuit.suites;
         Test_sino.suites;
         Test_lsk.suites;
         Test_gsino.suites;
         Test_check.suites;
         Test_analyze.suites;
         Test_guard.suites;
         Test_extensions.suites;
         Test_refine.suites;
         Test_obs.suites;
         Test_diff.suites;
         Test_journal.suites;
         Test_reportviz.suites;
         Test_exec.suites;
        Test_cache.suites;
         Test_serve.suites;
       ])
