(* Tests for Eda_guard — the typed failure taxonomy, cooperative
   deadlines, the deterministic fault-injection harness — and for the
   resilience wiring that rides on it: the netlist parse-error corpus,
   the Phase2 retry/fallback ladder, worker-crash recovery and the
   deadline-degraded end-to-end flow. *)
module Error = Eda_guard.Error
module Deadline = Eda_guard.Deadline
module Fault = Eda_guard.Fault
module Matrix = Eda_util.Matrix
module Point = Eda_geom.Point
module Io = Eda_netlist.Io
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Route = Eda_grid.Route
module Diag = Eda_check.Diag
open Gsino

let p = Point.make

(* ----------------------------- taxonomy ----------------------------- *)

let samples =
  [
    ( Error.Parse { file = None; line = 3; token = "wat"; msg = "bad" },
      "parse-error", 20, 2 );
    (Error.Unreachable { net = 4; region = 9 }, "unreachable-grid", 17, 2);
    ( Error.Infeasible { region = 2; dir = "H"; nets = 5; retries = 2 },
      "infeasible-region", 18, 3 );
    ( Error.Singular_matrix { n = 3; column = 1; pivot = 0.0 },
      "singular-matrix", 21, 5 );
    (Error.Deadline { phase = "route"; budget_ms = 10 }, "deadline-exceeded", 19, 4);
    (Error.Worker_crash { site = "exec.worker"; msg = "boom" }, "worker-crash", 22, 5);
    ( Error.Nonfinite { site = "matrix.lu"; what = "unknown 0" },
      "nonfinite-value", 23, 5 );
    ( Error.Frame { what = "oversized"; detail = "70000000 > 1024" },
      "bad-frame", 30, 2 );
    (Error.Overload { reason = "queue-full"; depth = 16 }, "overloaded", 31, 6);
    (Error.Io { site = "write"; msg = "Broken pipe" }, "io-error", 32, 7);
  ]

let test_error_mappings () =
  List.iter
    (fun (e, cls, gsl, code) ->
      Alcotest.(check string) (cls ^ " class") cls (Error.class_name e);
      Alcotest.(check int) (cls ^ " gsl") gsl (Error.gsl_code e);
      Alcotest.(check int) (cls ^ " exit") code (Error.exit_code e);
      Alcotest.(check bool)
        (cls ^ " message non-empty")
        true
        (String.length (Error.to_string e) > 0))
    samples;
  let gsls = List.map (fun (e, _, _, _) -> Error.gsl_code e) samples in
  Alcotest.(check int) "gsl codes distinct" (List.length samples)
    (List.length (List.sort_uniq compare gsls))

let test_error_of_exn () =
  (match Error.of_exn (Matrix.Singular { n = 2; column = 0; pivot = 1e-20 }) with
  | Some (Error.Singular_matrix { n; column; _ }) ->
      Alcotest.(check int) "n" 2 n;
      Alcotest.(check int) "column" 0 column
  | Some _ | None -> Alcotest.fail "Matrix.Singular not folded in");
  let e = Error.Deadline { phase = "sino"; budget_ms = 5 } in
  (match Error.of_exn (Error.Error e) with
  | Some e' -> Alcotest.(check bool) "identity" true (e = e')
  | None -> Alcotest.fail "Error.Error not folded in");
  (* a vanished peer folds into the Io class (exit 7), whichever layer
     reports it: raw Unix writes or stdio channels *)
  (match Error.of_exn (Unix.Unix_error (Unix.EPIPE, "write", "")) with
  | Some (Error.Io { site; _ }) -> Alcotest.(check string) "epipe site" "write" site
  | Some _ | None -> Alcotest.fail "EPIPE not folded into Io");
  (match Error.of_exn (Unix.Unix_error (Unix.ECONNRESET, "recv", "")) with
  | Some (Error.Io _) -> ()
  | Some _ | None -> Alcotest.fail "ECONNRESET not folded into Io");
  (match Error.of_exn (Sys_error "out.txt: Broken pipe") with
  | Some (Error.Io _) -> ()
  | Some _ | None -> Alcotest.fail "stdio broken pipe not folded into Io");
  Alcotest.(check bool) "other unix errors unmapped" true
    (Error.of_exn (Unix.Unix_error (Unix.ENOENT, "open", "f")) = None);
  Alcotest.(check bool) "other sys errors unmapped" true
    (Error.of_exn (Sys_error "f: No such file or directory") = None);
  Alcotest.(check bool) "foreign exn unmapped" true
    (Error.of_exn (Failure "x") = None)

let test_error_printer () =
  let s =
    Printexc.to_string
      (Error.Error (Error.Parse { file = Some "f"; line = 7; token = "t"; msg = "m" }))
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "registered printer names the class" true
    (contains "parse-error")

(* ----------------------------- deadline ----------------------------- *)

let test_deadline_none () =
  Alcotest.(check bool) "never expires" false (Deadline.expired Deadline.none);
  Alcotest.(check int) "no budget" 0 (Deadline.budget_ms Deadline.none);
  Deadline.mark Deadline.none ~phase:"route";
  Alcotest.(check (list string)) "mark is a no-op" [] (Deadline.hits Deadline.none);
  Alcotest.(check bool) "non-positive budget = none" false
    (Deadline.expired (Deadline.start ~budget_ms:0))

let test_deadline_expires_and_marks () =
  let d = Deadline.start ~budget_ms:1 in
  Unix.sleepf 0.005;
  Alcotest.(check bool) "expired after budget" true (Deadline.expired d);
  Alcotest.(check bool) "check reports expiry" true (Deadline.check d ~phase:"route");
  Deadline.mark d ~phase:"route";
  Deadline.mark d ~phase:"sino";
  Alcotest.(check (list string)) "marks dedup, keep order" [ "route"; "sino" ]
    (Deadline.hits d);
  Alcotest.(check int) "budget recorded" 1 (Deadline.budget_ms d);
  match Deadline.error d ~phase:"sino" with
  | Error.Deadline { phase; budget_ms } ->
      Alcotest.(check string) "error phase" "sino" phase;
      Alcotest.(check int) "error budget" 1 budget_ms
  | e -> Alcotest.fail ("wrong error class: " ^ Error.class_name e)

let test_deadline_not_expired () =
  let d = Deadline.start ~budget_ms:60_000 in
  Alcotest.(check bool) "fresh budget live" false (Deadline.expired d);
  Alcotest.(check bool) "check does not mark" false (Deadline.check d ~phase:"route");
  Alcotest.(check (list string)) "no hits" [] (Deadline.hits d)

let test_deadline_remaining_boundary () =
  (* a live budget reports a positive remainder bounded by the budget *)
  let d = Deadline.start ~budget_ms:60_000 in
  (match Deadline.remaining_ms d with
  | Some r ->
      Alcotest.(check bool) "remainder positive" true (r > 0);
      Alcotest.(check bool) "remainder bounded" true (r <= 60_000)
  | None -> Alcotest.fail "budgeted deadline reports no remainder");
  (* at and after expiry the remainder clamps to exactly 0, never
     negative — callers size buffers and sleeps from it *)
  let e = Deadline.start ~budget_ms:1 in
  Unix.sleepf 0.01;
  Alcotest.(check (option int)) "expired remainder clamps to 0" (Some 0)
    (Deadline.remaining_ms e);
  Unix.sleepf 0.01;
  Alcotest.(check (option int)) "stays 0 long after expiry" (Some 0)
    (Deadline.remaining_ms e);
  Alcotest.(check (option int)) "no deadline, no remainder" None
    (Deadline.remaining_ms Deadline.none)

let test_deadline_cancellable () =
  (* cancel-only: no time budget, never expires on its own *)
  let d = Deadline.cancellable () in
  Alcotest.(check bool) "fresh cancellable live" false (Deadline.expired d);
  Alcotest.(check bool) "not cancelled yet" false (Deadline.cancelled d);
  Alcotest.(check (option int)) "cancel-only has no remainder" None
    (Deadline.remaining_ms d);
  Deadline.cancel d;
  Alcotest.(check bool) "cancelled" true (Deadline.cancelled d);
  Alcotest.(check bool) "cancel expires" true (Deadline.expired d);
  Alcotest.(check (option int)) "cancelled remainder is 0" (Some 0)
    (Deadline.remaining_ms d);
  (* with a budget: cancellation wins even with time left on the clock *)
  let b = Deadline.cancellable ~budget_ms:60_000 () in
  Alcotest.(check bool) "budgeted cancellable live" false (Deadline.expired b);
  (match Deadline.remaining_ms b with
  | Some r -> Alcotest.(check bool) "budget remainder positive" true (r > 0)
  | None -> Alcotest.fail "budgeted cancellable reports no remainder");
  Deadline.cancel b;
  Alcotest.(check bool) "cancel overrides live budget" true (Deadline.expired b);
  Alcotest.(check (option int)) "overridden remainder is 0" (Some 0)
    (Deadline.remaining_ms b);
  (* cancelling the null deadline is a no-op, not a crash *)
  Deadline.cancel Deadline.none;
  Alcotest.(check bool) "none stays unexpired" false
    (Deadline.expired Deadline.none)

let test_deadline_concurrent_marks () =
  (* the serve daemon's request domains mark one deadline from several
     domains at once (flow phases + the drain timer); marks must stay
     deduplicated and ordered without tearing *)
  let d = Deadline.cancellable () in
  Deadline.cancel d;
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to 100 do
              Deadline.mark d ~phase:(Printf.sprintf "phase%d" i);
              ignore (Deadline.check d ~phase:(Printf.sprintf "phase%d" i))
            done))
  in
  List.iter Domain.join domains;
  let hits = Deadline.hits d in
  Alcotest.(check int) "one hit per phase" 4 (List.length hits);
  List.iteri
    (fun i _ ->
      let p = Printf.sprintf "phase%d" i in
      Alcotest.(check bool) (p ^ " recorded") true (List.mem p hits))
    hits

(* ------------------------------ faults ------------------------------ *)

(* Every fault test must leave the global table clean: the suite shares
   one process. *)
let with_faults specs f =
  Fault.set specs;
  Fun.protect ~finally:Fault.clear f

let test_fault_parse () =
  (match Fault.parse "phase2.solve=raise@0.5#42, matrix.lu=nan" with
  | Ok [ a; b ] ->
      Alcotest.(check string) "site a" "phase2.solve" a.Fault.site;
      Alcotest.(check bool) "mode a" true (a.Fault.mode = Fault.Raise);
      Alcotest.(check (float 1e-9)) "prob a" 0.5 a.Fault.prob;
      Alcotest.(check int) "seed a" 42 a.Fault.seed;
      Alcotest.(check string) "site b" "matrix.lu" b.Fault.site;
      Alcotest.(check bool) "mode b" true (b.Fault.mode = Fault.Corrupt);
      Alcotest.(check (float 1e-9)) "prob b defaults" 1.0 b.Fault.prob
  | Ok _ -> Alcotest.fail "wrong spec count"
  | Error m -> Alcotest.fail m);
  (match Fault.parse "io.load=delay:25" with
  | Ok [ s ] -> Alcotest.(check bool) "delay mode" true (s.Fault.mode = Fault.Delay 25)
  | Ok _ | Error _ -> Alcotest.fail "delay spec rejected");
  let rejected s =
    match Fault.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "no equals" true (rejected "phase2.solve");
  Alcotest.(check bool) "unknown mode" true (rejected "a=explode");
  Alcotest.(check bool) "bad prob" true (rejected "a=raise@1.5");
  Alcotest.(check bool) "bad seed" true (rejected "a=raise#xyz");
  Alcotest.(check bool) "bad delay" true (rejected "a=delay:-3")

let test_fault_point_raise () =
  with_faults [ { Fault.site = "t.site"; mode = Fault.Raise; prob = 1.0; seed = 1 } ]
  @@ fun () ->
  Alcotest.(check bool) "active" true (Fault.active ());
  Alcotest.(check (list string)) "sites" [ "t.site" ] (Fault.sites ());
  (match Fault.point "t.site" with
  | () -> Alcotest.fail "installed fault did not fire"
  | exception Error.Error (Error.Worker_crash { site; _ }) ->
      Alcotest.(check string) "names the site" "t.site" site);
  Fault.point "other.site" (* un-faulted sites stay inert *)

let test_fault_determinism () =
  let draw () =
    with_faults
      [ { Fault.site = "t.coin"; mode = Fault.Raise; prob = 0.5; seed = 99 } ]
    @@ fun () ->
    List.init 32 (fun _ ->
        match Fault.point "t.coin" with
        | () -> false
        | exception Error.Error (Error.Worker_crash _) -> true)
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list bool)) "same seed, same injection sequence" a b;
  Alcotest.(check bool) "some fire" true (List.mem true a);
  Alcotest.(check bool) "some pass" true (List.mem false a)

let test_fault_corrupt () =
  with_faults [ { Fault.site = "t.val"; mode = Fault.Corrupt; prob = 1.0; seed = 1 } ]
  @@ fun () ->
  Alcotest.(check bool) "corrupts to nan" true
    (Float.is_nan (Fault.corrupt "t.val" 3.14));
  Alcotest.(check (float 0.0)) "other site untouched" 2.0 (Fault.corrupt "t.other" 2.0);
  (* a nan fault never raises at a point site *)
  Fault.point "t.val"

let test_fault_clear () =
  Fault.set [ { Fault.site = "t.site"; mode = Fault.Raise; prob = 1.0; seed = 1 } ];
  Fault.clear ();
  Alcotest.(check bool) "inactive" false (Fault.active ());
  Fault.point "t.site" (* must be inert again *)

(* ------------------------- parse-error corpus ------------------------ *)

let parse_err input =
  match Io.of_string input with
  | _ -> None
  | exception Error.Error ((Error.Parse _) as e) -> Some e

let check_parse name input ~line ~msg_has =
  match parse_err input with
  | None -> Alcotest.fail (name ^ ": malformed input accepted")
  | Some (Error.Parse { line = l; msg; _ }) ->
      Alcotest.(check int) (name ^ ": line") line l;
      let contains sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S in %S" name msg_has msg)
        true (contains msg_has msg)
  | Some _ -> Alcotest.fail (name ^ ": wrong error class")

let test_io_truncated_header () =
  check_parse "empty" "" ~line:1 ~msg_has:"empty input";
  check_parse "magic only" "gsino-netlist v1\n" ~line:1 ~msg_has:"missing name";
  check_parse "no grid" "gsino-netlist v1\nname x\n" ~line:2
    ~msg_has:"missing grid";
  check_parse "wrong magic" "name x\ngrid 2 2 10\n" ~line:1
    ~msg_has:"missing magic"

let test_io_pin_outside_grid () =
  check_parse "sink off grid"
    "gsino-netlist v1\nname x\ngrid 2 2 10\nnet 0 0 0 9 9\n" ~line:4
    ~msg_has:"outside 2x2 grid";
  match parse_err "gsino-netlist v1\nname x\ngrid 2 2 10\nnet 0 0 0 9 9\n" with
  | Some (Error.Parse { token; _ }) ->
      Alcotest.(check string) "token is the offending pin" "9 9" token
  | _ -> Alcotest.fail "no parse error"

let test_io_duplicate_net_ids () =
  check_parse "duplicate id"
    "gsino-netlist v1\nname x\ngrid 4 4 10\nnet 0 0 0 1 1\nnet 0 2 2 3 3\n"
    ~line:5 ~msg_has:"duplicate net id";
  check_parse "non-consecutive ids"
    "gsino-netlist v1\nname x\ngrid 4 4 10\nnet 0 0 0 1 1\nnet 2 2 2 3 3\n"
    ~line:5 ~msg_has:"non-consecutive net ids (expected 1)"

let test_io_absurd_counts () =
  check_parse "absurd grid"
    "gsino-netlist v1\nname x\ngrid 9999999 9999999 10\nnet 0 0 0 1 1\n"
    ~line:3 ~msg_has:"absurd grid dimensions";
  check_parse "absurd net id"
    "gsino-netlist v1\nname x\ngrid 4 4 10\nnet 99999999 0 0 1 1\n" ~line:4
    ~msg_has:"absurd net id";
  check_parse "negative net id"
    "gsino-netlist v1\nname x\ngrid 4 4 10\nnet -1 0 0 1 1\n" ~line:4
    ~msg_has:"negative net id";
  check_parse "net without sinks"
    "gsino-netlist v1\nname x\ngrid 4 4 10\nnet 0 0 0\n" ~line:4
    ~msg_has:"net without sinks";
  check_parse "odd sink coordinates"
    "gsino-netlist v1\nname x\ngrid 4 4 10\nnet 0 0 0 1\n" ~line:4
    ~msg_has:"odd number of sink coordinates"

let test_io_load_carries_filename () =
  let path = Filename.temp_file "gsino_guard" ".netlist" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "gsino-netlist v1\nname x\ngrid 2 2 10\nnet 0 0 0 9 9\n";
      close_out oc;
      match Io.load path with
      | _ -> Alcotest.fail "malformed file accepted"
      | exception Error.Error (Error.Parse { file; line; _ }) ->
          Alcotest.(check (option string)) "file recorded" (Some path) file;
          Alcotest.(check int) "line recorded" 4 line)

(* ----------------------- Phase2 retry / fallback --------------------- *)

let tech = Tech.default

(* Two fully-sensitive nets sharing every region of a 1-row channel.
   Forcing infeasibility geometrically is impossible — spreading nets
   beyond the Keff window always reaches K = 0 — so the impossible
   bound is a negative Kth, which no non-negative coupling can meet. *)
let tight () =
  let grid = Grid.make ~w:4 ~h:1 ~hcap:8 ~vcap:8 in
  let nets =
    [|
      Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 2 0 |];
      Net.make ~id:1 ~source:(p 0 0) ~sinks:[| p 2 0 |];
    |]
  in
  let nl = Netlist.make ~name:"tight" ~grid_w:4 ~grid_h:1 ~gcell_um:50.0 nets in
  let e x = Grid.edge_id grid (p x 0) Dir.H in
  let routes =
    [|
      Route.of_edges grid ~net:0 [ e 0; e 1 ];
      Route.of_edges grid ~net:1 [ e 0; e 1 ];
    |]
  in
  (grid, nl, routes, Sensitivity.make ~seed:1 ~rate:1.0)

let solve_tight ~kth ~on_infeasible () =
  let grid, nl, routes, sens = tight () in
  Phase2.solve ~grid ~netlist:nl ~routes ~kth ~sensitivity:sens
    ~keff:tech.Tech.keff ~mode:Phase2.Min_area ~seed:3 ~retries:2
    ~on_infeasible ()

let test_phase2_degrade_fallback () =
  let p2 = solve_tight ~kth:(fun _ -> -1.0) ~on_infeasible:Error.Degrade () in
  let degraded = Phase2.degraded_panels p2 in
  Alcotest.(check bool) "panels degraded" true (degraded <> []);
  Alcotest.(check bool) "still infeasible" true (Phase2.infeasible_panels p2 <> []);
  List.iter
    (fun key ->
      Alcotest.(check bool) "feasible accessor agrees" false (Phase2.feasible p2 key))
    (Phase2.infeasible_panels p2);
  (* the conservative fallback interleaves a shield between every pair *)
  Alcotest.(check bool) "fallback inserted shields" true (Phase2.total_shields p2 > 0)

let test_phase2_fail_policy () =
  match solve_tight ~kth:(fun _ -> -1.0) ~on_infeasible:Error.Fail () with
  | _ -> Alcotest.fail "infeasible instance accepted under Fail"
  | exception Error.Error (Error.Infeasible { retries; nets; _ }) ->
      Alcotest.(check int) "after the full retry ladder" 2 retries;
      Alcotest.(check int) "names the panel width" 2 nets

let test_phase2_feasible_not_degraded () =
  (* generous bounds: attempt 0 succeeds, nothing degrades, no retry *)
  let p2 = solve_tight ~kth:(fun _ -> 1e6) ~on_infeasible:Error.Fail () in
  Alcotest.(check (list (pair int string)))
    "no degraded panels" []
    (List.map (fun (r, d) -> (r, Dir.to_string d)) (Phase2.degraded_panels p2));
  Alcotest.(check bool) "no infeasible panels" true
    (Phase2.infeasible_panels p2 = [])

let test_phase2_injected_crash_degrades () =
  with_faults
    [ { Fault.site = "phase2.solve"; mode = Fault.Raise; prob = 1.0; seed = 7 } ]
  @@ fun () ->
  let p2 = solve_tight ~kth:(fun _ -> 1e6) ~on_infeasible:Error.Degrade () in
  Alcotest.(check bool) "every panel fell back" true
    (Phase2.degraded_panels p2 <> [])

let test_phase2_injected_crash_fail_policy () =
  with_faults
    [ { Fault.site = "phase2.solve"; mode = Fault.Raise; prob = 1.0; seed = 7 } ]
  @@ fun () ->
  match solve_tight ~kth:(fun _ -> 1e6) ~on_infeasible:Error.Fail () with
  | _ -> Alcotest.fail "all-crash panel accepted under Fail"
  | exception Error.Error (Error.Worker_crash { site; _ }) ->
      Alcotest.(check string) "typed crash surfaces" "phase2.solve" site

(* ------------------------- worker-crash drain ------------------------ *)

let test_exec_worker_injection () =
  with_faults
    [ { Fault.site = "exec.worker"; mode = Fault.Raise; prob = 1.0; seed = 5 } ]
  @@ fun () ->
  Eda_exec.with_pool ~jobs:2 @@ fun pool ->
  (match Eda_exec.parallel_map ~pool 64 (fun i -> i * i) with
  | _ -> Alcotest.fail "injected worker crash swallowed"
  | exception Error.Error (Error.Worker_crash { site; _ }) ->
      Alcotest.(check string) "typed crash re-raised" "exec.worker" site);
  (* the pool must stay usable after the drain *)
  Fault.clear ();
  let a = Eda_exec.parallel_map ~pool 8 (fun i -> i + 1) in
  Alcotest.(check (array int)) "pool alive afterwards"
    [| 1; 2; 3; 4; 5; 6; 7; 8 |] a

(* ------------------------ matrix / transient ------------------------- *)

let test_transient_nan_guard () =
  with_faults
    [ { Fault.site = "matrix.lu"; mode = Fault.Corrupt; prob = 1.0; seed = 3 } ]
  @@ fun () ->
  let module Mna = Eda_circuit.Mna in
  let module Waveform = Eda_circuit.Waveform in
  let c = Mna.create () in
  let a = Mna.node c and b = Mna.node c in
  ignore
    (Mna.vsource c a Mna.ground
       (Waveform.Ramp { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 1e-12 }));
  Mna.resistor c a b 1000.0;
  Mna.capacitor c b Mna.ground 1e-12;
  match Eda_circuit.Transient.run c ~dt:2e-12 ~t_end:1e-10 ~probes:[ b ] with
  | _ -> Alcotest.fail "corrupted solve accepted"
  | exception Error.Error (Error.Nonfinite { site; _ }) ->
      Alcotest.(check string) "guard names the kernel" "matrix.lu" site

(* --------------------------- flow deadline --------------------------- *)

let test_flow_deadline_degrades () =
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7
      Generator.ibm01
  in
  let sens = Sensitivity.make ~seed:11 ~rate:0.30 in
  let config = { Flow.Config.default with Flow.Config.deadline_ms = 1; seed = 3 } in
  let r = Flow.run config tech ~sensitivity:sens nl in
  Alcotest.(check bool) "a phase was truncated" true (r.Flow.deadline_hits <> []);
  Alcotest.(check bool) "result reports degraded" true (Flow.degraded r);
  let diags = Flow.check ~tech r in
  Alcotest.(check bool) "GSL0019 emitted" true
    (List.exists (fun d -> d.Diag.code = 19) diags);
  Alcotest.(check bool) "degradation is never an Error" false
    (List.exists
       (fun d -> d.Diag.severity = Diag.Error && (d.Diag.code = 18 || d.Diag.code = 19))
       diags);
  let s = Format.asprintf "%a" Flow.pp_summary r in
  Alcotest.(check bool) "summary flags the deadline" true
    (let sub = "DEADLINE[" in
     let n = String.length s and m = String.length sub in
     let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
     go 0)

let test_flow_no_deadline_identical () =
  (* deadline_ms = 0 must be the pre-guard flow bit-for-bit: same routes,
     same shields, no hits, no degraded panels *)
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7
      Generator.ibm01
  in
  let sens = Sensitivity.make ~seed:11 ~rate:0.30 in
  let run () =
    Flow.run { Flow.Config.default with Flow.Config.seed = 3 } tech
      ~sensitivity:sens nl
  in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "no deadline hits" [] a.Flow.deadline_hits;
  Alcotest.(check bool) "not degraded" false (Flow.degraded a);
  Alcotest.(check int) "shields repeat" a.Flow.shields b.Flow.shields;
  Alcotest.(check bool) "routes repeat" true
    (Array.for_all2
       (fun x y -> Route.edges x = Route.edges y)
       a.Flow.routes b.Flow.routes)

let suites =
  [
    ( "guard.error",
      [
        Alcotest.test_case "class/gsl/exit mappings" `Quick test_error_mappings;
        Alcotest.test_case "of_exn folding" `Quick test_error_of_exn;
        Alcotest.test_case "exception printer" `Quick test_error_printer;
      ] );
    ( "guard.deadline",
      [
        Alcotest.test_case "none" `Quick test_deadline_none;
        Alcotest.test_case "expires and marks" `Quick test_deadline_expires_and_marks;
        Alcotest.test_case "live budget" `Quick test_deadline_not_expired;
        Alcotest.test_case "remaining_ms boundary" `Quick
          test_deadline_remaining_boundary;
        Alcotest.test_case "cancellable semantics" `Quick
          test_deadline_cancellable;
        Alcotest.test_case "concurrent marks" `Quick
          test_deadline_concurrent_marks;
      ] );
    ( "guard.fault",
      [
        Alcotest.test_case "spec parsing" `Quick test_fault_parse;
        Alcotest.test_case "point raises typed" `Quick test_fault_point_raise;
        Alcotest.test_case "seeded determinism" `Quick test_fault_determinism;
        Alcotest.test_case "value corruption" `Quick test_fault_corrupt;
        Alcotest.test_case "clear disarms" `Quick test_fault_clear;
      ] );
    ( "guard.parse",
      [
        Alcotest.test_case "truncated header" `Quick test_io_truncated_header;
        Alcotest.test_case "pin outside grid" `Quick test_io_pin_outside_grid;
        Alcotest.test_case "duplicate net ids" `Quick test_io_duplicate_net_ids;
        Alcotest.test_case "absurd counts" `Quick test_io_absurd_counts;
        Alcotest.test_case "load carries filename" `Quick test_io_load_carries_filename;
      ] );
    ( "guard.phase2",
      [
        Alcotest.test_case "degrade installs fallback" `Quick
          test_phase2_degrade_fallback;
        Alcotest.test_case "fail raises typed" `Quick test_phase2_fail_policy;
        Alcotest.test_case "feasible panels untouched" `Quick
          test_phase2_feasible_not_degraded;
        Alcotest.test_case "injected crash degrades" `Quick
          test_phase2_injected_crash_degrades;
        Alcotest.test_case "injected crash under Fail" `Quick
          test_phase2_injected_crash_fail_policy;
      ] );
    ( "guard.recovery",
      [
        Alcotest.test_case "exec.worker injection" `Quick test_exec_worker_injection;
        Alcotest.test_case "transient nan guard" `Quick test_transient_nan_guard;
      ] );
    ( "guard.flow",
      [
        Alcotest.test_case "deadline degrades gracefully" `Slow
          test_flow_deadline_degrades;
        Alcotest.test_case "no deadline = identical" `Slow
          test_flow_no_deadline_identical;
      ] );
  ]
