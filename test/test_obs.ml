(* Tests for Eda_obs: metrics registry arithmetic, span tracing
   invariants, JSON round-trips, and the disabled-mode no-op paths. *)
module Json = Eda_obs.Json
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
let check_float ?eps msg a b = Alcotest.(check bool) msg true (feq ?eps a b)

(* Every test starts from a clean registry/trace; registrations are
   process-global and the whole binary shares them. *)
let fresh () =
  Metrics.reset ();
  Trace.disable ()

(* ---------------------------- Json --------------------------------- *)

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip equal" true (roundtrip j = j)

let test_json_nonfinite_is_null () =
  (* Chrome's importer rejects NaN/Infinity literals *)
  Alcotest.(check bool)
    "nan -> null" true
    (roundtrip (Json.List [ Json.Float Float.nan; Json.Float Float.infinity ])
    = Json.List [ Json.Null; Json.Null ])

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "flase");
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "two values" true (bad "1 2");
  Alcotest.(check bool) "two lists" true (bad "[1] []");
  Alcotest.(check bool) "second object" true (bad "{\"a\":1}{\"b\":2}")

let test_json_unicode_escape () =
  match Json.of_string "\"a\\u00e9b\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8" "a\xc3\xa9b" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape did not parse to Str"

let test_json_surrogate_pair () =
  (* U+1F600 as a surrogate pair -> one 4-byte UTF-8 code point *)
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "astral" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair did not parse");
  (* a lone high surrogate keeps its own 3-byte encoding *)
  match Json.of_string "\"\\ud83dx\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "lone surrogate" "\xed\xa0\xbdx" s
  | Ok _ | Error _ -> Alcotest.fail "lone surrogate did not parse"

let test_json_bad_unicode_escape () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "non-hex digit" true (bad "\"\\u12g4\"");
  (* int_of_string liberties like underscores or 0x must not leak in *)
  Alcotest.(check bool) "underscore" true (bad "\"\\u1_23\"");
  Alcotest.(check bool) "0x prefix" true (bad "\"\\u0x12\"");
  Alcotest.(check bool) "too short" true (bad "\"\\u12\"")

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "hit" true (Json.member "a" j = Some (Json.Int 1));
  Alcotest.(check bool) "miss" true (Json.member "b" j = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" Json.Null = None)

(* --------------------------- Metrics ------------------------------- *)

let test_counter_arithmetic () =
  fresh ();
  let c = Metrics.counter "t.counter" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.counter_value c);
  (* registration is idempotent: same name -> same cell *)
  Metrics.incr (Metrics.counter "t.counter");
  Alcotest.(check int) "same instrument" 43 (Metrics.counter_value c)

let test_gauge_set_accum () =
  fresh ();
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  Metrics.accum g 0.5;
  check_float "set + accum" 3.0 (Metrics.gauge_value g)

let test_labels_distinguish () =
  fresh ();
  let h = Metrics.counter ~labels:[ ("dir", "H") ] "t.panels" in
  let v = Metrics.counter ~labels:[ ("dir", "V") ] "t.panels" in
  Metrics.add h 3;
  Metrics.incr v;
  Alcotest.(check int) "H" 3 (Metrics.counter_value h);
  Alcotest.(check int) "V" 1 (Metrics.counter_value v);
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "total across labels" 4
    (Metrics.counter_total snap "t.panels")

let test_kind_mismatch_rejected () =
  fresh ();
  ignore (Metrics.counter "t.kind");
  Alcotest.(check bool)
    "gauge under a counter name" true
    (match Metrics.gauge "t.kind" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_histogram_summary () =
  fresh ();
  let h = Metrics.histogram "t.hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 1024.0 ];
  let s = Metrics.histogram_summary h in
  Alcotest.(check int) "count" 4 s.Metrics.count;
  check_float "sum" 1030.0 s.Metrics.sum;
  check_float "min" 1.0 s.Metrics.min;
  check_float "max" 1024.0 s.Metrics.max;
  check_float "mean" 257.5 (Metrics.histogram_mean s);
  (* 1.0 lands in [1,2); 2.0 and 3.0 in [2,4): one bucket holds 2 *)
  Alcotest.(check bool)
    "log2 bucketing" true
    (List.exists (fun (_, n) -> n = 2) s.Metrics.buckets)

let test_snapshot_find_and_merge () =
  fresh ();
  let c = Metrics.counter "t.c" in
  let g = Metrics.gauge "t.g" in
  let h = Metrics.histogram "t.h" in
  Metrics.add c 5;
  Metrics.set g 1.0;
  Metrics.observe h 8.0;
  let a = Metrics.snapshot () in
  Metrics.add c 2;
  Metrics.set g 9.0;
  Metrics.observe h 8.0;
  let b = Metrics.snapshot () in
  let m = Metrics.merge a b in
  (match Metrics.find m "t.c" with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "counters add" 12 n
  | Some (Metrics.Gauge _ | Metrics.Histogram _) | None ->
      Alcotest.fail "t.c missing or wrong kind");
  (match Metrics.find m "t.g" with
  | Some (Metrics.Gauge v) -> check_float "gauge right-wins" 9.0 v
  | Some (Metrics.Counter _ | Metrics.Histogram _) | None ->
      Alcotest.fail "t.g missing or wrong kind");
  match Metrics.find m "t.h" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "histograms add" 3 s.Metrics.count
  | Some (Metrics.Counter _ | Metrics.Gauge _) | None ->
      Alcotest.fail "t.h missing or wrong kind"

let test_metrics_json_parses () =
  fresh ();
  Metrics.add (Metrics.counter "t.c") 7;
  Metrics.observe (Metrics.histogram ~labels:[ ("phase", "x") ] "t.h") 3.0;
  let j = Metrics.to_json (Metrics.snapshot ()) in
  let j' = roundtrip j in
  (match Json.member "schema" j' with
  | Some (Json.Str s) -> Alcotest.(check string) "schema" "gsino-metrics-v1" s
  | Some _ | None -> Alcotest.fail "schema field missing");
  match Json.member "metrics" j' with
  | Some (Json.List (_ :: _)) -> ()
  | Some _ | None -> Alcotest.fail "metrics array missing or empty"

(* ---------------------------- Trace -------------------------------- *)

let test_span_nesting () =
  fresh ();
  Trace.enable ();
  let r =
    Trace.span "outer" (fun () ->
        Alcotest.(check int) "depth inside outer" 1 (Trace.depth ());
        Trace.span "inner" (fun () ->
            Alcotest.(check int) "depth inside inner" 2 (Trace.depth ());
            17))
  in
  Alcotest.(check int) "result threaded" 17 r;
  Alcotest.(check int) "depth back to 0" 0 (Trace.depth ());
  let evs = Trace.events () in
  Alcotest.(check int) "2 B + 2 E" 4 (List.length evs);
  let b = List.filter (fun e -> e.Trace.ph = Trace.B) evs in
  let e = List.filter (fun e -> e.Trace.ph = Trace.E) evs in
  Alcotest.(check int) "balanced" (List.length b) (List.length e);
  (* timestamps non-decreasing, oldest first *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && mono rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone ts" true (mono evs);
  Trace.disable ()

let test_span_closes_on_raise () =
  fresh ();
  Trace.enable ();
  (try Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "depth restored" 0 (Trace.depth ());
  let evs = Trace.events () in
  Alcotest.(check bool)
    "end event emitted" true
    (List.exists (fun e -> e.Trace.ph = Trace.E) evs);
  Trace.disable ()

let test_ring_capacity_and_dropped () =
  fresh ();
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "i%d" i)
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "capacity bounds buffer" 4 (List.length evs);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped ());
  (* the survivors are the newest, oldest first *)
  Alcotest.(check (list string))
    "newest kept" [ "i7"; "i8"; "i9"; "i10" ]
    (List.map (fun e -> e.Trace.name) evs);
  Trace.disable ()

let test_dropped_spans_counter () =
  fresh ();
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "d%d" i)
  done;
  (* every ring overwrite also shows up in the exported metrics *)
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter mirrors dropped ()" (Trace.dropped ())
    (Metrics.counter_total snap "trace.dropped_spans");
  Alcotest.(check int) "six overwrites" 6
    (Metrics.counter_total snap "trace.dropped_spans");
  Trace.disable ()

let test_dropped_spans_zero_without_wrap () =
  fresh ();
  Trace.enable ();
  Trace.instant "one";
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "registered at zero" 0
    (Metrics.counter_total snap "trace.dropped_spans");
  Alcotest.(check bool)
    "series present even when zero" true
    (Metrics.find snap "trace.dropped_spans" <> None);
  Trace.disable ()

let test_disabled_is_noop () =
  fresh ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.span "ghost" (fun () -> 5) in
  Trace.instant "ghost2";
  Alcotest.(check int) "thunk still runs" 5 r;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  let r2, dt = Trace.timed_span "ghost3" (fun () -> 6) in
  Alcotest.(check int) "timed thunk runs" 6 r2;
  Alcotest.(check bool) "duration still measured" true (dt >= 0.0)

let test_chrome_json_parses () =
  fresh ();
  Trace.enable ();
  Trace.span_args "phase:route" [ ("nets", "12") ] (fun () ->
      Trace.instant ~args:[ ("iter", "1") ] "tick");
  let j = roundtrip (Trace.to_chrome_json ()) in
  (match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      Alcotest.(check int) "B + i + E" 3 (List.length evs);
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with
            | Some (Json.Str p) -> Some p
            | Some _ | None -> None)
          evs
      in
      Alcotest.(check (list string)) "phase letters" [ "B"; "i"; "E" ] phases
  | Some _ | None -> Alcotest.fail "traceEvents missing");
  Trace.disable ()

(* ----------------------------- Log --------------------------------- *)

let test_log_levels () =
  let saved = Log.current_level () in
  Log.set_level (Log.Level Log.Warn);
  Alcotest.(check bool) "warn visible" true (Log.would_log Log.Warn);
  Alcotest.(check bool) "error visible" true (Log.would_log Log.Error);
  Alcotest.(check bool) "info hidden" false (Log.would_log Log.Info);
  Log.set_level Log.Quiet;
  Alcotest.(check bool) "quiet hides errors" false (Log.would_log Log.Error);
  Log.set_level saved

let test_log_level_of_string () =
  Alcotest.(check bool)
    "debug parses" true
    (Log.level_of_string "debug" = Ok (Log.Level Log.Debug));
  Alcotest.(check bool)
    "quiet parses" true
    (Log.level_of_string "quiet" = Ok Log.Quiet);
  Alcotest.(check bool)
    "junk rejected" true
    (match Log.level_of_string "loud" with Ok _ -> false | Error _ -> true)

let test_log_jsonl_sink () =
  let saved = Log.current_level () in
  let path = Filename.temp_file "gsino_log" ".jsonl" in
  let oc = open_out path in
  Log.set_sink (Log.Jsonl oc);
  Log.set_level (Log.Level Log.Info);
  Log.info ~fields:[ ("net", "3") ] "routed %d nets" 7;
  Log.debug "below threshold, discarded";
  close_out oc;
  Log.set_sink (Log.Human Format.err_formatter);
  Log.set_level saved;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match Json.of_string line with
  | Error msg -> Alcotest.failf "JSONL line unparseable: %s" msg
  | Ok j -> (
      (match Json.member "msg" j with
      | Some (Json.Str m) -> Alcotest.(check string) "msg" "routed 7 nets" m
      | Some _ | None -> Alcotest.fail "msg field missing");
      match Json.member "level" j with
      | Some (Json.Str l) -> Alcotest.(check string) "level" "info" l
      | Some _ | None -> Alcotest.fail "level field missing")

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite -> null" `Quick test_json_nonfinite_is_null;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pair;
        Alcotest.test_case "bad unicode escapes" `Quick
          test_json_bad_unicode_escape;
        Alcotest.test_case "member" `Quick test_json_member;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
        Alcotest.test_case "gauge set/accum" `Quick test_gauge_set_accum;
        Alcotest.test_case "labels distinguish" `Quick test_labels_distinguish;
        Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
        Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
        Alcotest.test_case "snapshot find/merge" `Quick
          test_snapshot_find_and_merge;
        Alcotest.test_case "json export parses" `Quick test_metrics_json_parses;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise;
        Alcotest.test_case "ring capacity" `Quick test_ring_capacity_and_dropped;
        Alcotest.test_case "dropped_spans counter" `Quick
          test_dropped_spans_counter;
        Alcotest.test_case "dropped_spans zero" `Quick
          test_dropped_spans_zero_without_wrap;
        Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
        Alcotest.test_case "chrome json parses" `Quick test_chrome_json_parses;
      ] );
    ( "obs.log",
      [
        Alcotest.test_case "levels" `Quick test_log_levels;
        Alcotest.test_case "level_of_string" `Quick test_log_level_of_string;
        Alcotest.test_case "jsonl sink" `Quick test_log_jsonl_sink;
      ] );
  ]
