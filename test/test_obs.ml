(* Tests for Eda_obs: metrics registry arithmetic, span tracing
   invariants, JSON round-trips, and the disabled-mode no-op paths. *)
module Json = Eda_obs.Json
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
let check_float ?eps msg a b = Alcotest.(check bool) msg true (feq ?eps a b)

(* Every test starts from a clean registry/trace; registrations are
   process-global and the whole binary shares them. *)
let fresh () =
  Metrics.reset ();
  Trace.disable ()

(* ---------------------------- Json --------------------------------- *)

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip equal" true (roundtrip j = j)

let test_json_nonfinite_is_null () =
  (* Chrome's importer rejects NaN/Infinity literals *)
  Alcotest.(check bool)
    "nan -> null" true
    (roundtrip (Json.List [ Json.Float Float.nan; Json.Float Float.infinity ])
    = Json.List [ Json.Null; Json.Null ])

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "flase");
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "two values" true (bad "1 2");
  Alcotest.(check bool) "two lists" true (bad "[1] []");
  Alcotest.(check bool) "second object" true (bad "{\"a\":1}{\"b\":2}")

let test_json_unicode_escape () =
  match Json.of_string "\"a\\u00e9b\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8" "a\xc3\xa9b" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape did not parse to Str"

let test_json_surrogate_pair () =
  (* U+1F600 as a surrogate pair -> one 4-byte UTF-8 code point *)
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "astral" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair did not parse");
  (* a lone high surrogate keeps its own 3-byte encoding *)
  match Json.of_string "\"\\ud83dx\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "lone surrogate" "\xed\xa0\xbdx" s
  | Ok _ | Error _ -> Alcotest.fail "lone surrogate did not parse"

let test_json_bad_unicode_escape () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "non-hex digit" true (bad "\"\\u12g4\"");
  (* int_of_string liberties like underscores or 0x must not leak in *)
  Alcotest.(check bool) "underscore" true (bad "\"\\u1_23\"");
  Alcotest.(check bool) "0x prefix" true (bad "\"\\u0x12\"");
  Alcotest.(check bool) "too short" true (bad "\"\\u12\"")

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "hit" true (Json.member "a" j = Some (Json.Int 1));
  Alcotest.(check bool) "miss" true (Json.member "b" j = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" Json.Null = None)

(* --------------------------- Metrics ------------------------------- *)

let test_counter_arithmetic () =
  fresh ();
  let c = Metrics.counter "t.counter" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.counter_value c);
  (* registration is idempotent: same name -> same cell *)
  Metrics.incr (Metrics.counter "t.counter");
  Alcotest.(check int) "same instrument" 43 (Metrics.counter_value c)

let test_gauge_set_accum () =
  fresh ();
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  Metrics.accum g 0.5;
  check_float "set + accum" 3.0 (Metrics.gauge_value g)

let test_labels_distinguish () =
  fresh ();
  let h = Metrics.counter ~labels:[ ("dir", "H") ] "t.panels" in
  let v = Metrics.counter ~labels:[ ("dir", "V") ] "t.panels" in
  Metrics.add h 3;
  Metrics.incr v;
  Alcotest.(check int) "H" 3 (Metrics.counter_value h);
  Alcotest.(check int) "V" 1 (Metrics.counter_value v);
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "total across labels" 4
    (Metrics.counter_total snap "t.panels")

let test_kind_mismatch_rejected () =
  fresh ();
  ignore (Metrics.counter "t.kind");
  Alcotest.(check bool)
    "gauge under a counter name" true
    (match Metrics.gauge "t.kind" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_histogram_summary () =
  fresh ();
  let h = Metrics.histogram "t.hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 1024.0 ];
  let s = Metrics.histogram_summary h in
  Alcotest.(check int) "count" 4 s.Metrics.count;
  check_float "sum" 1030.0 s.Metrics.sum;
  check_float "min" 1.0 s.Metrics.min;
  check_float "max" 1024.0 s.Metrics.max;
  check_float "mean" 257.5 (Metrics.histogram_mean s);
  (* 1.0 lands in [1,2); 2.0 and 3.0 in [2,4): one bucket holds 2 *)
  Alcotest.(check bool)
    "log2 bucketing" true
    (List.exists (fun (_, n) -> n = 2) s.Metrics.buckets)

let test_snapshot_find_and_merge () =
  fresh ();
  let c = Metrics.counter "t.c" in
  let g = Metrics.gauge "t.g" in
  let h = Metrics.histogram "t.h" in
  Metrics.add c 5;
  Metrics.set g 1.0;
  Metrics.observe h 8.0;
  let a = Metrics.snapshot () in
  Metrics.add c 2;
  Metrics.set g 9.0;
  Metrics.observe h 8.0;
  let b = Metrics.snapshot () in
  let m = Metrics.merge a b in
  (match Metrics.find m "t.c" with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "counters add" 12 n
  | Some (Metrics.Gauge _ | Metrics.Histogram _) | None ->
      Alcotest.fail "t.c missing or wrong kind");
  (match Metrics.find m "t.g" with
  | Some (Metrics.Gauge v) -> check_float "gauge right-wins" 9.0 v
  | Some (Metrics.Counter _ | Metrics.Histogram _) | None ->
      Alcotest.fail "t.g missing or wrong kind");
  match Metrics.find m "t.h" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "histograms add" 3 s.Metrics.count
  | Some (Metrics.Counter _ | Metrics.Gauge _) | None ->
      Alcotest.fail "t.h missing or wrong kind"

let test_metrics_json_parses () =
  fresh ();
  Metrics.add (Metrics.counter "t.c") 7;
  Metrics.observe (Metrics.histogram ~labels:[ ("phase", "x") ] "t.h") 3.0;
  let j = Metrics.to_json (Metrics.snapshot ()) in
  let j' = roundtrip j in
  (match Json.member "schema" j' with
  | Some (Json.Str s) -> Alcotest.(check string) "schema" "gsino-metrics-v1" s
  | Some _ | None -> Alcotest.fail "schema field missing");
  match Json.member "metrics" j' with
  | Some (Json.List (_ :: _)) -> ()
  | Some _ | None -> Alcotest.fail "metrics array missing or empty"

(* ---------------------------- Trace -------------------------------- *)

let test_span_nesting () =
  fresh ();
  Trace.enable ();
  let r =
    Trace.span "outer" (fun () ->
        Alcotest.(check int) "depth inside outer" 1 (Trace.depth ());
        Trace.span "inner" (fun () ->
            Alcotest.(check int) "depth inside inner" 2 (Trace.depth ());
            17))
  in
  Alcotest.(check int) "result threaded" 17 r;
  Alcotest.(check int) "depth back to 0" 0 (Trace.depth ());
  let evs = Trace.events () in
  Alcotest.(check int) "2 B + 2 E" 4 (List.length evs);
  let b = List.filter (fun e -> e.Trace.ph = Trace.B) evs in
  let e = List.filter (fun e -> e.Trace.ph = Trace.E) evs in
  Alcotest.(check int) "balanced" (List.length b) (List.length e);
  (* timestamps non-decreasing, oldest first *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && mono rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone ts" true (mono evs);
  Trace.disable ()

let test_span_closes_on_raise () =
  fresh ();
  Trace.enable ();
  (try Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "depth restored" 0 (Trace.depth ());
  let evs = Trace.events () in
  Alcotest.(check bool)
    "end event emitted" true
    (List.exists (fun e -> e.Trace.ph = Trace.E) evs);
  Trace.disable ()

let test_ring_capacity_and_dropped () =
  fresh ();
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "i%d" i)
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "capacity bounds buffer" 4 (List.length evs);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped ());
  (* the survivors are the newest, oldest first *)
  Alcotest.(check (list string))
    "newest kept" [ "i7"; "i8"; "i9"; "i10" ]
    (List.map (fun e -> e.Trace.name) evs);
  Trace.disable ()

let test_dropped_spans_counter () =
  fresh ();
  Trace.enable ~capacity:4 ();
  (* 5 spans = 10 events through a 4-slot ring: 6 events evicted, of
     which 3 are B events — 3 spans lost their begin *)
  for i = 1 to 5 do
    Trace.span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "raw evicted events" 6 (Trace.dropped ());
  Alcotest.(check int) "spans lost" 3 (Trace.dropped_spans ());
  (* the span count (not the raw event count) is what the exported
     metrics mirror *)
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter mirrors dropped_spans ()"
    (Trace.dropped_spans ())
    (Metrics.counter_total snap "trace.dropped_spans");
  Trace.disable ()

let test_instants_are_not_dropped_spans () =
  fresh ();
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "d%d" i)
  done;
  (* instants evicted from the ring orphan nothing: no span was lost *)
  Alcotest.(check int) "raw evicted events" 6 (Trace.dropped ());
  Alcotest.(check int) "no spans lost" 0 (Trace.dropped_spans ());
  Alcotest.(check int) "counter stays 0" 0
    (Metrics.counter_total (Metrics.snapshot ()) "trace.dropped_spans");
  Trace.disable ()

let test_paired_events_drop_orphans () =
  fresh ();
  Trace.enable ~capacity:3 ();
  (* stream B1 E1 ... B5 E5; the 3 survivors are E4 B5 E5 — E4's begin
     was evicted, so the pair-safe view must drop it *)
  for i = 1 to 5 do
    Trace.span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "raw view keeps orphan" 3
    (List.length (Trace.events ()));
  let paired = Trace.paired_events () in
  Alcotest.(check (list string))
    "orphan E filtered" [ "s5"; "s5" ]
    (List.map (fun e -> e.Trace.name) paired);
  Alcotest.(check bool)
    "B before E" true
    (match paired with
    | [ b; e ] -> b.Trace.ph = Trace.B && e.Trace.ph = Trace.E
    | _ -> false);
  (* the chrome export uses the pair-safe view and reports the loss *)
  let j = Trace.to_chrome_json () in
  (match Json.member "traceEvents" j with
  | Some (Json.List evs) -> Alcotest.(check int) "export pair-safe" 2 (List.length evs)
  | Some _ | None -> Alcotest.fail "traceEvents missing");
  (match Json.member "otherData" j with
  | Some other -> (
      match Json.member "droppedSpans" other with
      | Some (Json.Int n) -> Alcotest.(check int) "droppedSpans exported" 4 n
      | Some _ | None -> Alcotest.fail "droppedSpans missing")
  | None -> Alcotest.fail "otherData missing");
  Trace.disable ()

let test_unclosed_span_kept_in_paired () =
  fresh ();
  Trace.enable ();
  Trace.span "outer" (fun () ->
      Trace.instant "inside";
      (* snapshot taken while the span is still open: its pending B is a
         running span and must be kept — only orphaned Es are dropped *)
      Alcotest.(check int) "open B kept" 2
        (List.length (Trace.paired_events ())));
  Alcotest.(check int) "balanced afterwards" 3
    (List.length (Trace.paired_events ()));
  Trace.disable ()

let test_clock_monotone () =
  let a = Eda_obs.Clock.now_ns () in
  let b = Eda_obs.Clock.now_ns () in
  Alcotest.(check bool) "ns non-decreasing" true (Int64.compare a b <= 0);
  let t0 = Eda_obs.Clock.now_s () in
  Alcotest.(check bool) "seconds positive" true (t0 > 0.0);
  Alcotest.(check bool) "elapsed non-negative" true (Eda_obs.Clock.elapsed_s t0 >= 0.0)

let test_dropped_spans_zero_without_wrap () =
  fresh ();
  Trace.enable ();
  Trace.instant "one";
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "registered at zero" 0
    (Metrics.counter_total snap "trace.dropped_spans");
  Alcotest.(check bool)
    "series present even when zero" true
    (Metrics.find snap "trace.dropped_spans" <> None);
  Trace.disable ()

let test_disabled_is_noop () =
  fresh ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.span "ghost" (fun () -> 5) in
  Trace.instant "ghost2";
  Alcotest.(check int) "thunk still runs" 5 r;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  let r2, dt = Trace.timed_span "ghost3" (fun () -> 6) in
  Alcotest.(check int) "timed thunk runs" 6 r2;
  Alcotest.(check bool) "duration still measured" true (dt >= 0.0)

let test_chrome_json_parses () =
  fresh ();
  Trace.enable ();
  Trace.span_args "phase:route" [ ("nets", "12") ] (fun () ->
      Trace.instant ~args:[ ("iter", "1") ] "tick");
  let j = roundtrip (Trace.to_chrome_json ()) in
  (match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      Alcotest.(check int) "B + i + E" 3 (List.length evs);
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with
            | Some (Json.Str p) -> Some p
            | Some _ | None -> None)
          evs
      in
      Alcotest.(check (list string)) "phase letters" [ "B"; "i"; "E" ] phases
  | Some _ | None -> Alcotest.fail "traceEvents missing");
  Trace.disable ()

(* ----------------------------- Prof -------------------------------- *)

module Prof = Eda_obs.Prof

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ev name ph ts_us = { Trace.name; ph; ts_us; args = [] }

let test_prof_self_vs_total () =
  (* outer spans [0,100], inner [10,30]: inner's 20us are attributed to
     inner's self time and deducted from outer's *)
  let evs =
    [
      ev "outer" Trace.B 0.0;
      ev "inner" Trace.B 10.0;
      ev "inner" Trace.E 30.0;
      ev "outer" Trace.E 100.0;
    ]
  in
  match Prof.of_events evs with
  | [ o; i ] ->
      Alcotest.(check string) "largest self first" "outer" o.Prof.name;
      Alcotest.(check int) "outer calls" 1 o.Prof.calls;
      check_float "outer total" 100.0 o.Prof.total_us;
      check_float "outer self = total - child" 80.0 o.Prof.self_us;
      Alcotest.(check string) "inner second" "inner" i.Prof.name;
      check_float "inner total" 20.0 i.Prof.total_us;
      check_float "leaf self = total" 20.0 i.Prof.self_us
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_prof_percentiles () =
  (* 20 calls with durations 1..20us: p95 is the 19th order statistic *)
  let evs =
    List.concat
      (List.init 20 (fun i ->
           let i = i + 1 in
           let t = 100.0 *. float_of_int i in
           [ ev "s" Trace.B t; ev "s" Trace.E (t +. float_of_int i) ]))
  in
  match Prof.of_events evs with
  | [ r ] ->
      Alcotest.(check int) "calls" 20 r.Prof.calls;
      check_float "total = 1+..+20" 210.0 r.Prof.total_us;
      check_float "p95 exact" 19.0 r.Prof.p95_us;
      check_float "max" 20.0 r.Prof.max_us
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_prof_ignores_orphans_and_open () =
  (* an orphaned E (begin evicted), an unclosed B (span still running)
     and an instant must all contribute nothing *)
  let evs =
    [
      ev "orphan" Trace.E 5.0;
      ev "a" Trace.B 10.0;
      ev "a" Trace.E 20.0;
      ev "note" Trace.I 25.0;
      ev "open" Trace.B 30.0;
    ]
  in
  match Prof.of_events evs with
  | [ r ] ->
      Alcotest.(check string) "only the closed span" "a" r.Prof.name;
      check_float "its duration" 10.0 r.Prof.total_us
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_prof_top_share () =
  (* three sequential spans with self 80/15/5us *)
  let evs =
    [
      ev "a" Trace.B 0.0;
      ev "a" Trace.E 80.0;
      ev "b" Trace.B 100.0;
      ev "b" Trace.E 115.0;
      ev "c" Trace.B 200.0;
      ev "c" Trace.E 205.0;
    ]
  in
  let rows = Prof.of_events evs in
  check_float "top 1 covers 80%" 0.80 (Prof.top_share 1 rows);
  check_float "top 2 covers 95%" 0.95 (Prof.top_share 2 rows);
  check_float "top n covers all" 1.0 (Prof.top_share 10 rows);
  check_float "empty profile covers trivially" 1.0 (Prof.top_share 10 [])

let test_prof_json_and_metrics () =
  fresh ();
  let rows = Prof.of_events [ ev "x" Trace.B 0.0; ev "x" Trace.E 50.0 ] in
  let j = roundtrip (Prof.to_json rows) in
  (match Json.member "schema" j with
  | Some (Json.Str s) -> Alcotest.(check string) "schema" "gsino-profile-v1" s
  | Some _ | None -> Alcotest.fail "schema missing");
  (* whole-valued floats may round-trip through JSON as ints *)
  let num = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | Some (Json.Null | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _)
    | None ->
        None
  in
  (match num (Json.member "total_us" j) with
  | Some t -> check_float "total_us" 50.0 t
  | None -> Alcotest.fail "total_us missing");
  (match Json.member "spans" j with
  | Some (Json.List [ span ]) -> (
      match num (Json.member "self_us" span) with
      | Some s -> check_float "span self_us" 50.0 s
      | None -> Alcotest.fail "self_us missing")
  | Some _ | None -> Alcotest.fail "spans shape");
  Prof.export_metrics rows;
  let snap = Metrics.snapshot () in
  let labels = [ ("span", "x") ] in
  (match Metrics.find ~labels snap "prof.self_us" with
  | Some (Metrics.Gauge v) -> check_float "prof.self_us gauge" 50.0 v
  | Some (Metrics.Counter _ | Metrics.Histogram _) | None ->
      Alcotest.fail "prof.self_us gauge missing");
  match Metrics.find ~labels snap "prof.calls" with
  | Some (Metrics.Gauge v) -> check_float "prof.calls gauge" 1.0 v
  | Some (Metrics.Counter _ | Metrics.Histogram _) | None ->
      Alcotest.fail "prof.calls gauge missing"

let test_prof_current_and_text () =
  fresh ();
  Alcotest.(check int) "empty when disabled" 0 (List.length (Prof.current ()));
  Trace.enable ();
  Trace.span "phase:demo" (fun () -> Trace.span "leaf" (fun () -> ()));
  let rows = Prof.current () in
  Alcotest.(check int) "both spans profiled" 2 (List.length rows);
  let txt = Prof.to_text rows in
  Alcotest.(check bool) "table names outer" true (contains ~sub:"phase:demo" txt);
  Alcotest.(check bool) "table names leaf" true (contains ~sub:"leaf" txt);
  Trace.disable ()

(* --------------------------- Progress ------------------------------- *)

module Progress = Eda_obs.Progress

let test_progress_heartbeat () =
  let lines = ref [] in
  Progress.enable ~interval_ms:1 ~emit:(fun l -> lines := l :: !lines) ();
  Alcotest.(check bool) "enabled" true (Progress.enabled ());
  Progress.set_deadline (fun () -> Some 1500);
  Progress.phase "route";
  (* a phase transition emits immediately, rate limit notwithstanding *)
  Alcotest.(check int) "phase line emitted" 1 (List.length !lines);
  let first = List.hd !lines in
  Alcotest.(check bool) "phase named" true
    (contains ~sub:"[gsino] phase=route" first);
  Alcotest.(check bool) "deadline column" true (contains ~sub:"left=1.5s" first);
  (* outwait the 1ms rate limit on the monotonic clock, then tick past
     the clock-read stride: the heartbeat must fire again with items *)
  let t0 = Eda_obs.Clock.now_s () in
  while Eda_obs.Clock.elapsed_s t0 < 0.002 do
    ()
  done;
  for i = 1 to 130 do
    Progress.tick ~items_total:10 ~items_done:i ()
  done;
  Alcotest.(check bool) "tick line emitted" true (List.length !lines >= 2);
  Alcotest.(check bool) "items rendered" true
    (contains ~sub:"/10 (" (List.hd !lines));
  Progress.disable ();
  Alcotest.(check bool) "disabled" false (Progress.enabled ())

let test_progress_single_writer () =
  let lines = ref [] in
  Progress.enable ~interval_ms:1 ~emit:(fun l -> lines := l :: !lines) ();
  (* ticks and phase changes from worker domains are ignored: the
     emitter belongs to the enabling (coordinator) domain *)
  let d =
    Domain.spawn (fun () ->
        Progress.phase "worker";
        Progress.tick ~items_done:1 ())
  in
  Domain.join d;
  Alcotest.(check int) "off-domain ignored" 0 (List.length !lines);
  Progress.disable ();
  Progress.phase "after";
  Progress.tick ~items_done:1 ();
  Alcotest.(check int) "disabled is a no-op" 0 (List.length !lines)

(* ---------------------------- Gcstat -------------------------------- *)

let test_gcstat_phase () =
  fresh ();
  let r =
    Eda_obs.Gcstat.phase "t" (fun () ->
        (* many small blocks: large arrays go straight to the major heap
           and would leave the minor-words delta at zero *)
        let acc = ref [] in
        for i = 1 to 1000 do
          acc := (i, i) :: !acc
        done;
        ignore (Sys.opaque_identity !acc);
        42)
  in
  Alcotest.(check int) "value returned" 42 r;
  let labels = [ ("phase", "t") ] in
  let snap = Metrics.snapshot () in
  (match Metrics.find ~labels snap "gc.minor_words" with
  | Some (Metrics.Gauge v) ->
      Alcotest.(check bool) "allocation attributed" true (v > 0.0)
  | Some (Metrics.Counter _ | Metrics.Histogram _) | None ->
      Alcotest.fail "gc.minor_words gauge missing");
  Alcotest.(check bool) "heap words recorded" true
    (Metrics.find ~labels snap "gc.heap_words" <> None);
  Alcotest.(check bool) "collections recorded" true
    (Metrics.find ~labels snap "gc.minor_collections" <> None);
  (* the delta is recorded even when the phase body raises *)
  (try Eda_obs.Gcstat.phase "exc" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check bool) "recorded on raise" true
    (Metrics.find ~labels:[ ("phase", "exc") ] (Metrics.snapshot ())
       "gc.minor_words"
    <> None)

(* ----------------------------- Log --------------------------------- *)

let test_log_levels () =
  let saved = Log.current_level () in
  Log.set_level (Log.Level Log.Warn);
  Alcotest.(check bool) "warn visible" true (Log.would_log Log.Warn);
  Alcotest.(check bool) "error visible" true (Log.would_log Log.Error);
  Alcotest.(check bool) "info hidden" false (Log.would_log Log.Info);
  Log.set_level Log.Quiet;
  Alcotest.(check bool) "quiet hides errors" false (Log.would_log Log.Error);
  Log.set_level saved

let test_log_level_of_string () =
  Alcotest.(check bool)
    "debug parses" true
    (Log.level_of_string "debug" = Ok (Log.Level Log.Debug));
  Alcotest.(check bool)
    "quiet parses" true
    (Log.level_of_string "quiet" = Ok Log.Quiet);
  Alcotest.(check bool)
    "junk rejected" true
    (match Log.level_of_string "loud" with Ok _ -> false | Error _ -> true)

let test_log_jsonl_sink () =
  let saved = Log.current_level () in
  let path = Filename.temp_file "gsino_log" ".jsonl" in
  let oc = open_out path in
  Log.set_sink (Log.Jsonl oc);
  Log.set_level (Log.Level Log.Info);
  Log.info ~fields:[ ("net", "3") ] "routed %d nets" 7;
  Log.debug "below threshold, discarded";
  close_out oc;
  Log.set_sink (Log.Human Format.err_formatter);
  Log.set_level saved;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match Json.of_string line with
  | Error msg -> Alcotest.failf "JSONL line unparseable: %s" msg
  | Ok j -> (
      (match Json.member "msg" j with
      | Some (Json.Str m) -> Alcotest.(check string) "msg" "routed 7 nets" m
      | Some _ | None -> Alcotest.fail "msg field missing");
      match Json.member "level" j with
      | Some (Json.Str l) -> Alcotest.(check string) "level" "info" l
      | Some _ | None -> Alcotest.fail "level field missing")

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite -> null" `Quick test_json_nonfinite_is_null;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pair;
        Alcotest.test_case "bad unicode escapes" `Quick
          test_json_bad_unicode_escape;
        Alcotest.test_case "member" `Quick test_json_member;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
        Alcotest.test_case "gauge set/accum" `Quick test_gauge_set_accum;
        Alcotest.test_case "labels distinguish" `Quick test_labels_distinguish;
        Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
        Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
        Alcotest.test_case "snapshot find/merge" `Quick
          test_snapshot_find_and_merge;
        Alcotest.test_case "json export parses" `Quick test_metrics_json_parses;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise;
        Alcotest.test_case "ring capacity" `Quick test_ring_capacity_and_dropped;
        Alcotest.test_case "dropped_spans counter" `Quick
          test_dropped_spans_counter;
        Alcotest.test_case "instants not dropped spans" `Quick
          test_instants_are_not_dropped_spans;
        Alcotest.test_case "paired drops orphans" `Quick
          test_paired_events_drop_orphans;
        Alcotest.test_case "paired keeps open spans" `Quick
          test_unclosed_span_kept_in_paired;
        Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
        Alcotest.test_case "dropped_spans zero" `Quick
          test_dropped_spans_zero_without_wrap;
        Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
        Alcotest.test_case "chrome json parses" `Quick test_chrome_json_parses;
      ] );
    ( "obs.prof",
      [
        Alcotest.test_case "self vs total" `Quick test_prof_self_vs_total;
        Alcotest.test_case "percentiles" `Quick test_prof_percentiles;
        Alcotest.test_case "orphans and open spans" `Quick
          test_prof_ignores_orphans_and_open;
        Alcotest.test_case "top_share" `Quick test_prof_top_share;
        Alcotest.test_case "json + metrics export" `Quick
          test_prof_json_and_metrics;
        Alcotest.test_case "current + text table" `Quick
          test_prof_current_and_text;
      ] );
    ( "obs.progress",
      [
        Alcotest.test_case "heartbeat" `Quick test_progress_heartbeat;
        Alcotest.test_case "single writer" `Quick test_progress_single_writer;
      ] );
    ( "obs.gcstat",
      [ Alcotest.test_case "phase deltas" `Quick test_gcstat_phase ] );
    ( "obs.log",
      [
        Alcotest.test_case "levels" `Quick test_log_levels;
        Alcotest.test_case "level_of_string" `Quick test_log_level_of_string;
        Alcotest.test_case "jsonl sink" `Quick test_log_jsonl_sink;
      ] );
  ]
