(* Tests for Eda_check: the Diag formatting contract and one corrupted
   fixture per Checker rule, plus end-to-end lint of the seeded flows. *)
module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Route = Eda_grid.Route
module Usage = Eda_grid.Usage
module Lintable = Eda_util.Lintable
module Diag = Eda_check.Diag
module Checker = Eda_check.Checker
open Gsino

let p = Point.make

(* ------------------------------ Diag ------------------------------- *)

let test_diag_code_string () =
  Alcotest.(check string) "padded" "GSL0005" (Diag.code_string 5);
  Alcotest.(check string) "wide" "GSL1234" (Diag.code_string 1234)

let test_diag_make_rejects_bad_code () =
  let oor = Invalid_argument "Diag.make: code out of range" in
  Alcotest.check_raises "code 0" oor (fun () ->
      ignore (Diag.make ~code:0 Diag.Error "x"));
  Alcotest.check_raises "code 10000" oor (fun () ->
      ignore (Diag.make ~code:10000 Diag.Error "x"))

let test_diag_to_line () =
  Alcotest.(check string) "global" "GSL0001 E - boom"
    (Diag.to_line (Diag.make ~code:1 Diag.Error "boom"));
  Alcotest.(check string) "net" "GSL0008 E net=12 bad budget"
    (Diag.to_line (Diag.make ~code:8 Diag.Error ~locus:(Diag.Net 12) "bad budget"));
  Alcotest.(check string) "region" "GSL0005 W region=17/H over capacity"
    (Diag.to_line
       (Diag.make ~code:5 Diag.Warning
          ~locus:(Diag.Region (17, Dir.H))
          "over capacity"))

let test_diag_one_line () =
  (* newlines in messages must not break the one-diagnostic-per-line
     contract relied on by CI greps *)
  let d = Diag.make ~code:3 Diag.Info "multi\nline\rmessage" in
  Alcotest.(check bool) "no newline" false (String.contains (Diag.to_line d) '\n');
  Alcotest.(check string) "spaces instead" "multi line message" d.Diag.message

let test_diag_pp () =
  Alcotest.(check string) "pretty region"
    "warning[GSL0005] region 17/V: over capacity"
    (Format.asprintf "%a" Diag.pp
       (Diag.make ~code:5 Diag.Warning ~locus:(Diag.Region (17, Dir.V)) "over capacity"));
  Alcotest.(check string) "pretty global" "error[GSL0009] bad bound"
    (Format.asprintf "%a" Diag.pp (Diag.make ~code:9 Diag.Error "bad bound"))

let test_diag_sort () =
  let w5 = Diag.make ~code:5 Diag.Warning "w" in
  let e9 = Diag.make ~code:9 Diag.Error "e" in
  let e2a = Diag.make ~code:2 Diag.Error ~locus:(Diag.Net 3) "a" in
  let e2b = Diag.make ~code:2 Diag.Error ~locus:(Diag.Net 1) "b" in
  Alcotest.(check (list string)) "errors first, then code, then locus"
    [ "b"; "a"; "e"; "w" ]
    (List.map (fun d -> d.Diag.message) (Diag.sort [ w5; e9; e2a; e2b ]))

let test_diag_counts () =
  let ds =
    [
      Diag.make ~code:1 Diag.Error "a";
      Diag.make ~code:2 Diag.Error "b";
      Diag.make ~code:5 Diag.Warning "c";
    ]
  in
  Alcotest.(check int) "errors" 2 (Diag.count Diag.Error ds);
  Alcotest.(check int) "info" 0 (Diag.count Diag.Info ds);
  Alcotest.(check bool) "has errors" true (Diag.has_errors ds);
  Alcotest.(check bool) "warnings only" false
    (Diag.has_errors [ Diag.make ~code:5 Diag.Warning "c" ]);
  Alcotest.(check string) "summary" "2 errors, 1 warning, 0 info"
    (Format.asprintf "%a" Diag.pp_summary ds)

(* --------------------------- Checker fixture ------------------------ *)

(* A tiny hand-built solution every rule accepts: two nets with straight
   horizontal routes on a 4x2 grid, uniform Kth partitioned from a
   1000-LSK budget, one zero-shield panel per occupied (region, dir). *)
let base () =
  let grid = Grid.make ~w:4 ~h:2 ~hcap:4 ~vcap:4 in
  let gcell_um = 100.0 in
  let nets =
    [|
      Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 2 0 |];
      Net.make ~id:1 ~source:(p 0 1) ~sinks:[| p 1 1 |];
    |]
  in
  let netlist = Netlist.make ~name:"fix" ~grid_w:4 ~grid_h:2 ~gcell_um nets in
  let routes =
    [|
      Route.of_edges grid ~net:0
        [ Grid.edge_id grid (p 0 0) Dir.H; Grid.edge_id grid (p 1 0) Dir.H ];
      Route.of_edges grid ~net:1 [ Grid.edge_id grid (p 0 1) Dir.H ];
    |]
  in
  let usage = Usage.of_routes grid ~gcell_um (Array.to_list routes) in
  let panels =
    List.concat
      (List.mapi
         (fun i r ->
           List.map
             (fun (region, dir) ->
               {
                 Checker.region;
                 dir;
                 shields = 0;
                 nets = [| i |];
                 feasible = true;
                 degraded = false;
               })
             (Route.occupied grid r))
         (Array.to_list routes))
  in
  {
    Checker.netlist;
    grid;
    routes;
    lsk_budget = 1000.0;
    (* manhattan source-sink distances are 2 and 1 gcells *)
    kth = [| 5.0; 10.0 |];
    lsk_table = Lintable.of_points [ (0.0, 0.0); (1000.0, 0.2) ];
    sensitive = (fun _ _ -> false);
    usage;
    panels;
    total_shields = 0;
    violations = [];
    bound_v = 0.15;
    metrics = [ ("total_wl_um", 300.0) ];
    deadline_phases = [];
    keff = Eda_sino.Keff.default;
  }

let codes sol = List.map (fun d -> d.Diag.code) (Checker.run sol)

let fires name code sol =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s" name (Diag.code_string code))
    true
    (List.mem code (codes sol))

let test_clean_fixture () =
  Alcotest.(check (list int)) "no findings" [] (codes (base ()))

let test_rule_codes_unique () =
  Alcotest.(check (list int)) "codes 1..16 + 18..19 + 28, one rule each"
    (List.init 16 (fun i -> i + 1) @ [ 18; 19; 28 ])
    (List.sort compare (List.map (fun (c, _, _) -> c) Checker.rules))

let test_gsl0001_off_grid_route () =
  let sol = base () in
  (* valid on a bigger grid, so the edge id passes Route.of_edges but
     exceeds the solution grid's 10 edges *)
  let big = Grid.make ~w:10 ~h:10 ~hcap:4 ~vcap:4 in
  let rogue = Route.of_edges big ~net:0 [ Grid.num_edges big - 1 ] in
  let routes = Array.copy sol.Checker.routes in
  routes.(0) <- rogue;
  fires "off-grid edge id" 1 { sol with Checker.routes }

let test_gsl0002_disconnected_route () =
  let sol = base () in
  let routes = Array.copy sol.Checker.routes in
  (* drop the second hop: the route no longer reaches sink (2,0) *)
  routes.(0) <-
    Route.of_edges sol.Checker.grid ~net:0
      [ Grid.edge_id sol.Checker.grid (p 0 0) Dir.H ];
  fires "missing edge to sink" 2 { sol with Checker.routes }

let test_gsl0003_cyclic_route () =
  let sol = base () in
  let g = sol.Checker.grid in
  let routes = Array.copy sol.Checker.routes in
  routes.(0) <-
    Route.of_edges g ~net:0
      [
        Grid.edge_id g (p 0 0) Dir.H;
        Grid.edge_id g (p 0 1) Dir.H;
        Grid.edge_id g (p 0 0) Dir.V;
        Grid.edge_id g (p 1 0) Dir.V;
      ];
  fires "square cycle" 3 { sol with Checker.routes }

let test_gsl0004_route_count () =
  let sol = base () in
  fires "missing route" 4
    { sol with Checker.routes = [| sol.Checker.routes.(0) |] }

let test_gsl0004_wrong_owner () =
  let sol = base () in
  let routes = Array.copy sol.Checker.routes in
  routes.(0) <-
    Route.of_edges sol.Checker.grid ~net:1
      (Array.to_list (Route.edges sol.Checker.routes.(0)));
  fires "slot belongs to other net" 4 { sol with Checker.routes }

let test_gsl0005_over_capacity_is_warning () =
  let sol = base () in
  let usage = Usage.copy sol.Checker.usage in
  let r00 = Grid.region_id sol.Checker.grid (p 0 0) in
  Usage.set_shields usage r00 Dir.H 10;
  let sol =
    {
      sol with
      Checker.usage;
      total_shields = 10;
      (* keep shield accounting consistent so only the capacity rule fires *)
      panels =
        {
          Checker.region = r00;
          dir = Dir.H;
          shields = 10;
          nets = [| 0 |];
          feasible = true;
          degraded = false;
        }
        :: sol.Checker.panels;
    }
  in
  let diags = Checker.run sol in
  Alcotest.(check bool) "GSL0005 fires" true
    (List.exists (fun d -> d.Diag.code = 5) diags);
  Alcotest.(check bool) "overflow is a warning, not an error" false
    (Diag.has_errors diags)

let test_gsl0006_usage_mismatch () =
  let sol = base () in
  let usage = Usage.copy sol.Checker.usage in
  (* phantom double-accounting of net 1's track *)
  Usage.add_route usage sol.Checker.routes.(1);
  fires "net-track recount differs" 6 { sol with Checker.usage }

let test_gsl0007_shield_mismatch () =
  let sol = base () in
  let panels =
    match sol.Checker.panels with
    | first :: rest -> { first with Checker.shields = 2 } :: rest
    | [] -> assert false
  in
  fires "panel shields not in usage" 7 { sol with Checker.panels }

let test_gsl0008_budget_partition () =
  let sol = base () in
  (* 10 * 2 gcells * 100um = 2000, not the 1000 budget *)
  fires "kth does not recover budget" 8
    { sol with Checker.kth = [| 10.0; 10.0 |] }

let test_gsl0009_bad_kth () =
  let sol = base () in
  fires "negative bound" 9 { sol with Checker.kth = [| -1.0; 10.0 |] };
  fires "nan bound" 9 { sol with Checker.kth = [| Float.nan; 10.0 |] };
  fires "wrong length" 9 { sol with Checker.kth = [| 5.0 |] }

let test_gsl0010_sensitivity () =
  let sol = base () in
  fires "asymmetric" 10
    { sol with Checker.sensitive = (fun i j -> i = 0 && j = 1) };
  fires "self-sensitive" 10 { sol with Checker.sensitive = (fun i j -> i = j) }

let test_gsl0011_lsk_table () =
  let sol = base () in
  fires "decreasing noise" 11
    {
      sol with
      Checker.lsk_table =
        Lintable.of_points [ (0.0, 0.5); (10.0, 0.2); (20.0, 0.1) ];
    }

let test_gsl0012_bad_metric () =
  let sol = base () in
  fires "nan metric" 12 { sol with Checker.metrics = [ ("area_um2", Float.nan) ] };
  fires "negative metric" 12
    { sol with Checker.metrics = [ ("total_wl_um", -1.0) ] };
  fires "negative violation noise" 12
    { sol with Checker.violations = [ (0, -0.2) ] }

let test_gsl0013_panel_coverage () =
  let sol = base () in
  (* drop net 0's panels: its occupied regions lose SINO coverage *)
  let dropped =
    List.filter (fun pl -> pl.Checker.nets <> [| 0 |]) sol.Checker.panels
  in
  fires "uncovered region" 13 { sol with Checker.panels = dropped };
  let misattributed =
    List.map (fun pl -> { pl with Checker.nets = [| 1 |] }) sol.Checker.panels
  in
  fires "panel without crossing net" 13 { sol with Checker.panels = misattributed }

let test_gsl0014_infeasible_panel () =
  let sol = base () in
  let panels =
    match sol.Checker.panels with
    | first :: rest -> { first with Checker.feasible = false } :: rest
    | [] -> assert false
  in
  let diags = Checker.run { sol with Checker.panels } in
  Alcotest.(check bool) "GSL0014 fires" true
    (List.exists (fun d -> d.Diag.code = 14) diags);
  Alcotest.(check bool) "infeasibility is a warning" false (Diag.has_errors diags)

let test_gsl0018_degraded_panel () =
  let sol = base () in
  let panels =
    match sol.Checker.panels with
    | first :: rest -> { first with Checker.degraded = true } :: rest
    | [] -> assert false
  in
  let diags = Checker.run { sol with Checker.panels } in
  Alcotest.(check bool) "GSL0018 fires" true
    (List.exists (fun d -> d.Diag.code = 18) diags);
  Alcotest.(check bool) "degradation is a warning" false (Diag.has_errors diags)

let test_gsl0028_shield_lower_bound () =
  (* both nets in one feasible panel, mutually sensitive: the clique
     forces a shield between them, so claiming 0 shields is an error *)
  let corrupt shields =
    let sol = base () in
    let p =
      match sol.Checker.panels with p :: _ -> p | [] -> assert false
    in
    {
      sol with
      Checker.sensitive = (fun i j -> i <> j);
      panels = [ { p with Checker.nets = [| 0; 1 |]; shields } ];
    }
  in
  let diags = Checker.run (corrupt 0) in
  Alcotest.(check bool) "GSL0028 fires" true
    (List.exists (fun d -> d.Diag.code = 28) diags);
  Alcotest.(check bool) "shield shortfall is an error" true
    (Diag.has_errors
       (List.filter (fun d -> d.Diag.code = 28) diags));
  let ok = Checker.run (corrupt 1) in
  Alcotest.(check bool) "satisfied bound is silent" false
    (List.exists (fun d -> d.Diag.code = 28) ok)

let test_gsl0019_deadline () =
  let diags =
    Checker.run { (base ()) with Checker.deadline_phases = [ "route"; "sino" ] }
  in
  let hits = List.filter (fun d -> d.Diag.code = 19) diags in
  Alcotest.(check int) "one GSL0019 finding" 1 (List.length hits);
  Alcotest.(check bool) "names the phases" true
    (match hits with
    | [ d ] ->
        let m = d.Diag.message in
        let has s =
          let ls, lm = (String.length s, String.length m) in
          let rec go i = i + ls <= lm && (String.sub m i ls = s || go (i + 1)) in
          go 0
        in
        has "route" && has "sino"
    | _ -> false);
  Alcotest.(check bool) "deadline is a warning" false (Diag.has_errors diags)

let test_gsl0015_residual_violation () =
  let sol = { (base ()) with Checker.violations = [ (0, 0.3) ] } in
  let diags = Checker.run sol in
  Alcotest.(check bool) "GSL0015 fires" true
    (List.exists (fun d -> d.Diag.code = 15) diags);
  Alcotest.(check bool) "residual violation is a warning" false
    (Diag.has_errors diags)

let test_gsl0016_malformed_netlist () =
  let sol = base () in
  let nets id0 sink0 =
    [|
      Net.make ~id:id0 ~source:(p 0 0) ~sinks:[| sink0 |];
      Net.make ~id:1 ~source:(p 0 1) ~sinks:[| p 1 1 |];
    |]
  in
  fires "net id mismatch" 16
    {
      sol with
      Checker.netlist =
        Netlist.make ~name:"fix" ~grid_w:4 ~grid_h:2 ~gcell_um:100.0
          (nets 5 (p 2 0));
    };
  fires "pin off grid" 16
    {
      sol with
      Checker.netlist =
        Netlist.make ~name:"fix" ~grid_w:4 ~grid_h:2 ~gcell_um:100.0
          (nets 0 (p 9 9));
    };
  fires "grid dims disagree" 16
    {
      sol with
      Checker.netlist =
        Netlist.make ~name:"fix" ~grid_w:5 ~grid_h:2 ~gcell_um:100.0
          (nets 0 (p 2 0));
    }

(* --------------------------- Flow integration ----------------------- *)

let tech = Tech.default

(* The seeded flows must lint clean of Error-severity findings: the flow
   maintains every invariant by construction, so an Error here is a bug
   in either the flow or the checker. *)
let flow_diags =
  lazy
    (let nl =
       Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7
         Generator.ibm01
     in
     let grid, base = Flow.prepare tech nl in
     let sens = Sensitivity.make ~seed:11 ~rate:0.30 in
     List.map
       (fun kind ->
         let base = if kind = Flow.Gsino then None else Some base in
         let config = { Flow.Config.default with Flow.Config.kind; seed = 3 } in
         let r = Flow.run ~grid ?base config tech ~sensitivity:sens nl in
         (kind, Flow.check ~tech r))
       [ Flow.Id_no; Flow.Isino; Flow.Gsino ])

let test_flow_lint_error_free () =
  List.iter
    (fun (kind, diags) ->
      Alcotest.(check bool)
        (Flow.kind_name kind ^ " has no Error diagnostics")
        false (Diag.has_errors diags))
    (Lazy.force flow_diags)

let test_flow_lint_known_warnings_only () =
  (* the at-capacity regime legitimately overflows (GSL0005); infeasible
     panels (GSL0014) and residual violations (GSL0015) are expected for
     the unrefined ID+NO baseline only *)
  List.iter
    (fun (kind, diags) ->
      let allowed = if kind = Flow.Id_no then [ 5; 14; 15 ] else [ 5 ] in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s allowed" (Flow.kind_name kind)
               (Diag.to_line d))
            true
            (List.mem d.Diag.code allowed))
        diags)
    (Lazy.force flow_diags)

let suites =
  [
    ( "check.diag",
      [
        Alcotest.test_case "code string" `Quick test_diag_code_string;
        Alcotest.test_case "code range" `Quick test_diag_make_rejects_bad_code;
        Alcotest.test_case "to_line" `Quick test_diag_to_line;
        Alcotest.test_case "one line" `Quick test_diag_one_line;
        Alcotest.test_case "pp" `Quick test_diag_pp;
        Alcotest.test_case "sort" `Quick test_diag_sort;
        Alcotest.test_case "counts" `Quick test_diag_counts;
      ] );
    ( "check.rules",
      [
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "codes unique" `Quick test_rule_codes_unique;
        Alcotest.test_case "GSL0001 off-grid route" `Quick test_gsl0001_off_grid_route;
        Alcotest.test_case "GSL0002 disconnected" `Quick test_gsl0002_disconnected_route;
        Alcotest.test_case "GSL0003 cycle" `Quick test_gsl0003_cyclic_route;
        Alcotest.test_case "GSL0004 route count" `Quick test_gsl0004_route_count;
        Alcotest.test_case "GSL0004 wrong owner" `Quick test_gsl0004_wrong_owner;
        Alcotest.test_case "GSL0005 over capacity" `Quick
          test_gsl0005_over_capacity_is_warning;
        Alcotest.test_case "GSL0006 usage mismatch" `Quick test_gsl0006_usage_mismatch;
        Alcotest.test_case "GSL0007 shield mismatch" `Quick test_gsl0007_shield_mismatch;
        Alcotest.test_case "GSL0008 budget partition" `Quick test_gsl0008_budget_partition;
        Alcotest.test_case "GSL0009 bad kth" `Quick test_gsl0009_bad_kth;
        Alcotest.test_case "GSL0010 sensitivity" `Quick test_gsl0010_sensitivity;
        Alcotest.test_case "GSL0011 lsk table" `Quick test_gsl0011_lsk_table;
        Alcotest.test_case "GSL0012 bad metric" `Quick test_gsl0012_bad_metric;
        Alcotest.test_case "GSL0013 panel coverage" `Quick test_gsl0013_panel_coverage;
        Alcotest.test_case "GSL0014 infeasible panel" `Quick test_gsl0014_infeasible_panel;
        Alcotest.test_case "GSL0015 residual violation" `Quick
          test_gsl0015_residual_violation;
        Alcotest.test_case "GSL0016 malformed netlist" `Quick
          test_gsl0016_malformed_netlist;
        Alcotest.test_case "GSL0018 degraded panel" `Quick
          test_gsl0018_degraded_panel;
        Alcotest.test_case "GSL0019 deadline" `Quick test_gsl0019_deadline;
        Alcotest.test_case "GSL0028 shield lower bound" `Quick
          test_gsl0028_shield_lower_bound;
      ] );
    ( "check.flow",
      [
        Alcotest.test_case "seeded flows error-free" `Slow test_flow_lint_error_free;
        Alcotest.test_case "only expected warnings" `Slow
          test_flow_lint_known_warnings_only;
      ] );
  ]
