(* Tests for Eda_sino: Keff surrogate, instances, layouts, the SINO
   solvers and the Formula-(3) estimator. *)
module Rng = Eda_util.Rng
module Keff = Eda_sino.Keff
module Instance = Eda_sino.Instance
module Layout = Eda_sino.Layout
module Solver = Eda_sino.Solver
module Estimate = Eda_sino.Estimate

let k = Keff.default

let all_sensitive i j = i <> j
let none_sensitive _ _ = false

let mk_inst ?(sensitive = all_sensitive) ~kth n =
  Instance.make ~nets:(Array.init n (fun i -> i)) ~kth:(Array.make n kth) ~sensitive

let test_keff_decay () =
  let c d = Keff.pair_coupling k ~dist:d ~shields_between:0 in
  Alcotest.(check (float 1e-12)) "d=1 is k1" k.Keff.k1 (c 1);
  Alcotest.(check (float 1e-12)) "geometric decay" (k.Keff.k1 ** 2.0) (c 2);
  Alcotest.(check bool) "monotone" true (c 1 > c 2 && c 2 > c 3);
  Alcotest.(check (float 1e-12)) "beyond window" 0.0 (c (k.Keff.window + 1))

let test_keff_shield_block () =
  let c n = Keff.pair_coupling k ~dist:3 ~shields_between:n in
  Alcotest.(check (float 1e-12)) "one shield" (c 0 *. k.Keff.shield_block) (c 1);
  Alcotest.(check (float 1e-12)) "two shields" (c 0 *. (k.Keff.shield_block ** 2.0)) (c 2)

let test_keff_validation () =
  Alcotest.check_raises "dist 0" (Invalid_argument "Keff.pair_coupling: dist >= 1")
    (fun () -> ignore (Keff.pair_coupling k ~dist:0 ~shields_between:0));
  Alcotest.check_raises "negative shields"
    (Invalid_argument "Keff.pair_coupling: negative shields") (fun () ->
      ignore (Keff.pair_coupling k ~dist:1 ~shields_between:(-1)))

let test_keff_max_feasible () =
  let expect = ref 0.0 in
  for d = 1 to k.Keff.window do
    expect := !expect +. (k.Keff.k1 ** float_of_int d)
  done;
  Alcotest.(check (float 1e-12)) "2 sum k1^d" (2.0 *. !expect) (Keff.max_feasible_k k)

let test_instance_basics () =
  let inst = mk_inst ~kth:1.0 4 in
  Alcotest.(check int) "size" 4 (Instance.size inst);
  Alcotest.(check int) "net id" 2 (Instance.net_id inst 2);
  Alcotest.(check (float 1e-12)) "kth" 1.0 (Instance.kth inst 1);
  Alcotest.(check bool) "sens" true (Instance.sens inst 0 1);
  Alcotest.(check bool) "diag" false (Instance.sens inst 2 2);
  Alcotest.(check (float 1e-12)) "S_i all sensitive" 1.0 (Instance.sensitivity inst 0)

let test_instance_with_kth () =
  let inst = mk_inst ~kth:1.0 3 in
  let inst2 = Instance.with_kth inst 1 0.2 in
  Alcotest.(check (float 1e-12)) "updated" 0.2 (Instance.kth inst2 1);
  Alcotest.(check (float 1e-12)) "original untouched" 1.0 (Instance.kth inst 1);
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Instance.with_kth: bound must be positive") (fun () ->
      ignore (Instance.with_kth inst 1 0.0))

let test_instance_sensitivity_fraction () =
  (* net 0 sensitive only to net 1, out of 3 others *)
  let sens i j = (i = 0 && j = 1) || (i = 1 && j = 0) in
  let inst = mk_inst ~sensitive:sens ~kth:1.0 4 in
  Alcotest.(check (float 1e-9)) "1 of 3" (1.0 /. 3.0) (Instance.sensitivity inst 0);
  Alcotest.(check (float 1e-9)) "net 2 isolated" 0.0 (Instance.sensitivity inst 2)

let layout_of inst slots = Layout.make inst slots

let test_layout_validation () =
  let inst = mk_inst ~kth:1.0 2 in
  Alcotest.(check bool) "missing net rejected" true
    (try
       ignore (layout_of inst [| Layout.Net 0; Layout.Shield |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (layout_of inst [| Layout.Net 0; Layout.Net 0; Layout.Net 1 |]);
       false
     with Invalid_argument _ -> true)

let test_layout_k_hand_computed () =
  (* nets 0-1-2 adjacent, all sensitive: K(1) = 2*k1; K(0) = k1 + k1^2 *)
  let inst = mk_inst ~kth:10.0 3 in
  let l = layout_of inst [| Layout.Net 0; Layout.Net 1; Layout.Net 2 |] in
  Alcotest.(check (float 1e-12)) "middle" (2.0 *. k.Keff.k1) (Layout.k_of l k 1);
  Alcotest.(check (float 1e-12)) "edge" (k.Keff.k1 +. (k.Keff.k1 ** 2.0)) (Layout.k_of l k 0)

let test_layout_k_with_shield () =
  (* 0 | S | 1 : dist 2, one shield *)
  let inst = mk_inst ~kth:10.0 2 in
  let l = layout_of inst [| Layout.Net 0; Layout.Shield; Layout.Net 1 |] in
  let expect = (k.Keff.k1 ** 2.0) *. k.Keff.shield_block in
  Alcotest.(check (float 1e-12)) "shielded pair" expect (Layout.k_of l k 0);
  Alcotest.(check int) "one shield" 1 (Layout.num_shields l)

let test_layout_k_nonsensitive_ignored () =
  let inst = mk_inst ~sensitive:none_sensitive ~kth:10.0 3 in
  let l = layout_of inst [| Layout.Net 0; Layout.Net 1; Layout.Net 2 |] in
  Alcotest.(check (float 1e-12)) "no sensitive, no coupling" 0.0 (Layout.k_of l k 1)

let test_layout_cap_violations () =
  let inst = mk_inst ~kth:10.0 3 in
  let packed = layout_of inst [| Layout.Net 0; Layout.Net 1; Layout.Net 2 |] in
  Alcotest.(check int) "two adjacent sensitive pairs" 2 (Layout.cap_violations packed);
  let shielded =
    layout_of inst [| Layout.Net 0; Layout.Shield; Layout.Net 1; Layout.Shield; Layout.Net 2 |]
  in
  Alcotest.(check int) "shields clear capacitive" 0 (Layout.cap_violations shielded)

let test_layout_k_violations () =
  let inst = mk_inst ~kth:0.1 2 in
  let l = layout_of inst [| Layout.Net 0; Layout.Net 1 |] in
  Alcotest.(check int) "both violate" 2 (List.length (Layout.k_violations l k));
  Alcotest.(check bool) "not feasible" false (Layout.feasible l k)

let test_layout_edits () =
  let inst = mk_inst ~kth:10.0 2 in
  let l = layout_of inst [| Layout.Net 0; Layout.Net 1 |] in
  let l2 = Layout.insert_shield l 1 in
  Alcotest.(check int) "tracks" 3 (Layout.num_tracks l2);
  Alcotest.(check int) "positions shifted" 2 (Layout.position l2 1);
  let l3 = Layout.remove_shield l2 1 in
  Alcotest.(check int) "back to 2" 2 (Layout.num_tracks l3);
  Alcotest.check_raises "removing a net"
    (Invalid_argument "Layout.remove_shield: track holds a net") (fun () ->
      ignore (Layout.remove_shield l2 0));
  let l4 = Layout.swap l 0 1 in
  Alcotest.(check int) "swapped" 1 (Layout.position l4 0)

let test_order_only_no_shields () =
  let rng = Rng.create 1 in
  let inst = mk_inst ~kth:1.0 10 in
  let l = Solver.order_only rng inst in
  Alcotest.(check int) "no shields" 0 (Layout.num_shields l);
  Alcotest.(check int) "exactly n tracks" 10 (Layout.num_tracks l)

let test_order_only_avoids_adjacency () =
  (* bipartite-ish sensitivity: evens sensitive to evens — a conflict-free
     ordering exists and greedy+swap should find few violations *)
  let sens i j = i <> j && i mod 2 = 0 && j mod 2 = 0 in
  let inst = mk_inst ~sensitive:sens ~kth:10.0 8 in
  let l = Solver.order_only (Rng.create 2) inst in
  Alcotest.(check int) "no adjacent sensitive pairs" 0 (Layout.cap_violations l)

let test_min_area_loose_bounds () =
  (* no sensitivity and loose K: zero shields *)
  let inst = mk_inst ~sensitive:none_sensitive ~kth:5.0 12 in
  let l = Solver.min_area (Rng.create 3) inst in
  Alcotest.(check int) "no shields needed" 0 (Layout.num_shields l);
  Alcotest.(check bool) "feasible" true (Layout.feasible l k)

let test_min_area_capacitive () =
  (* all sensitive, loose K: shields must separate every adjacent pair *)
  let inst = mk_inst ~kth:5.0 4 in
  let l = Solver.min_area (Rng.create 4) inst in
  Alcotest.(check int) "capacitive-free" 0 (Layout.cap_violations l);
  Alcotest.(check bool) "feasible" true (Layout.feasible l k);
  Alcotest.(check int) "needs n-1 shields" 3 (Layout.num_shields l)

let test_min_area_inductive () =
  (* tight-ish K forces extra shields beyond capacitive needs *)
  let inst = mk_inst ~kth:0.25 8 in
  let l = Solver.min_area (Rng.create 5) inst in
  Alcotest.(check bool) "feasible" true (Layout.feasible l k);
  Alcotest.(check bool) "uses shields" true (Layout.num_shields l >= 7)

let test_min_area_empty_and_single () =
  let empty = mk_inst ~kth:1.0 0 in
  Alcotest.(check int) "empty" 0 (Layout.num_tracks (Solver.min_area (Rng.create 6) empty));
  let single = mk_inst ~kth:1.0 1 in
  let l = Solver.min_area (Rng.create 6) single in
  Alcotest.(check int) "single net, one track" 1 (Layout.num_tracks l);
  Alcotest.(check bool) "feasible" true (Layout.feasible l k)

let test_min_area_feasible_random () =
  (* the solver should reach feasibility across random instances *)
  let rng = Rng.create 7 in
  for trial = 1 to 25 do
    let n = Rng.int_in rng 2 30 in
    let rate = 0.2 +. Rng.float rng 0.5 in
    let seed = Rng.int rng 100000 in
    let kth = Array.init n (fun _ -> 0.15 +. Rng.float rng 1.5) in
    let inst =
      Instance.make ~nets:(Array.init n (fun i -> i)) ~kth
        ~sensitive:(fun i j -> i <> j && Rng.pair_hash ~seed i j < rate)
    in
    let l = Solver.min_area (Rng.split rng) inst in
    Alcotest.(check bool) (Printf.sprintf "trial %d feasible" trial) true
      (Layout.feasible l k)
  done

let test_repair_after_tightening () =
  (* regression for the windowed-scoring bug: repair must re-establish
     feasibility when one net's bound is tightened *)
  let rng = Rng.create 8 in
  let n = 24 in
  let inst =
    Instance.make ~nets:(Array.init n (fun i -> i)) ~kth:(Array.make n 2.0)
      ~sensitive:(fun i j -> i <> j && Rng.pair_hash ~seed:55 i j < 0.5)
  in
  let l0 = Solver.min_area rng inst in
  Alcotest.(check bool) "initial feasible" true (Layout.feasible l0 k);
  let inst2 = Instance.with_kth inst 7 0.08 in
  let l1 = Solver.repair ~params:k inst2 l0 in
  Alcotest.(check bool) "repair feasible" true (Layout.feasible l1 k);
  Alcotest.(check bool) "net 7 now under bound" true (Layout.k_of l1 k 7 <= 0.08 +. 1e-9)

let test_repair_relaxation_removes () =
  (* relaxing all bounds lets repair drop the inductive (non-capacitive)
     shields: kth 0.05 forces double shielding, kth 5.0 needs only the
     n-1 capacitive separators *)
  let inst = mk_inst ~kth:0.05 6 in
  let tight = Solver.min_area (Rng.create 9) inst in
  let relaxed_inst =
    Array.fold_left (fun acc i -> Instance.with_kth acc i 5.0) inst
      (Array.init 6 (fun i -> i))
  in
  let relaxed = Solver.repair ~params:k relaxed_inst tight in
  Alcotest.(check bool) "shields reduced" true
    (Layout.num_shields relaxed < Layout.num_shields tight);
  Alcotest.(check bool) "still capacitive-free" true (Layout.cap_violations relaxed = 0)

let test_anneal_improves_or_keeps () =
  let rng = Rng.create 11 in
  for trial = 1 to 8 do
    let n = Rng.int_in rng 6 20 in
    let seed = Rng.int rng 100000 in
    let inst =
      Instance.make ~nets:(Array.init n (fun i -> i))
        ~kth:(Array.init n (fun _ -> 0.2 +. Rng.float rng 1.0))
        ~sensitive:(fun i j -> i <> j && Rng.pair_hash ~seed i j < 0.5)
    in
    let greedy = Solver.min_area (Rng.split rng) inst in
    let annealed =
      Solver.anneal
        ~schedule:{ Solver.Anneal.default with Solver.Anneal.moves = 1500 }
        (Rng.split rng) inst greedy
    in
    Alcotest.(check bool) (Printf.sprintf "trial %d no worse" trial) true
      (Layout.num_shields annealed <= Layout.num_shields greedy);
    Alcotest.(check bool) (Printf.sprintf "trial %d stays feasible" trial) true
      ((not (Layout.feasible greedy k)) || Layout.feasible annealed k)
  done

let test_anneal_trivial () =
  let single = mk_inst ~kth:1.0 1 in
  let l = Solver.min_area (Rng.create 1) single in
  let l' = Solver.anneal (Rng.create 2) single l in
  Alcotest.(check int) "single net unchanged" 1 (Layout.num_tracks l')

let test_shields_needed () =
  let inst = mk_inst ~sensitive:none_sensitive ~kth:5.0 5 in
  Alcotest.(check int) "zero for easy" 0 (Solver.shields_needed (Rng.create 10) inst)

let test_estimate_features () =
  let f = Estimate.features ~nns:4 ~s:[| 0.5; 0.5; 1.0; 0.0 |] in
  Alcotest.(check (float 1e-12)) "sum s2" 1.5 f.(0);
  Alcotest.(check (float 1e-12)) "sum s2 / n" 0.375 f.(1);
  Alcotest.(check (float 1e-12)) "sum s" 2.0 f.(2);
  Alcotest.(check (float 1e-12)) "sum s / n" 0.5 f.(3);
  Alcotest.(check (float 1e-12)) "n" 4.0 f.(4);
  Alcotest.(check (float 1e-12)) "const" 1.0 f.(5)

let test_estimate_predict_clamped () =
  let c = { Estimate.a1 = 0.; a2 = 0.; a3 = 0.; a4 = 0.; a5 = 0.; a6 = -5.0 } in
  Alcotest.(check (float 1e-12)) "clamped at 0" 0.0
    (Estimate.predict c ~nns:3 ~s:[| 0.1; 0.1; 0.1 |])

let test_estimate_fit_quality () =
  (* the paper's Formula (3) regime: fixed Kth, shields ~ density; the
     aggregate estimate should be within ~10-15% like the tech report *)
  let kth_of _ = 0.8 in
  let c = Estimate.fit ~trials:160 ~seed:21 ~kth_of () in
  let q = Estimate.accuracy ~trials:100 ~seed:22 ~kth_of c in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate err %.1f%% <= 15%%" (q.Estimate.aggregate_err *. 100.))
    true
    (q.Estimate.aggregate_err <= 0.15);
  Alcotest.(check bool)
    (Printf.sprintf "MAE %.2f <= 2.5 shields" q.Estimate.mean_abs_err)
    true (q.Estimate.mean_abs_err <= 2.5)

let test_estimate_monotone_in_density () =
  let c = Lazy.force Estimate.default in
  let lo = Estimate.predict_uniform c ~nns:30 ~rate:0.2 in
  let hi = Estimate.predict_uniform c ~nns:30 ~rate:0.7 in
  Alcotest.(check bool) "more sensitivity, more shields" true (hi >= lo)

let test_signature_shape () =
  let inst = mk_inst ~kth:1.0 4 in
  let sg = Instance.signature inst in
  Alcotest.(check int) "16 hex chars" 16 (String.length sg);
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' | 'a' .. 'f' -> ()
      | _ -> Alcotest.failf "non-hex char %c in %s" c sg)
    sg;
  Alcotest.(check string) "deterministic" sg
    (Instance.signature (mk_inst ~kth:1.0 4));
  Alcotest.(check bool) "size matters" false
    (sg = Instance.signature (mk_inst ~kth:1.0 5))

let qcheck_tests =
  let open QCheck in
  (* symmetric pseudo-random sensitivity on global net ids *)
  let sym_sens seed p i j =
    i <> j && Rng.pair_hash ~seed (min i j) (max i j) < p
  in
  [
    Test.make ~name:"panel signature is permutation invariant" ~count:60
      (pair (int_range 1 16) (int_range 0 10_000))
      (fun (n, seed) ->
        let kth = Array.init n (fun i -> 0.1 +. (2.0 *. Rng.pair_hash ~seed i i)) in
        let sensitive = sym_sens (seed lxor 0x5e5e) 0.5 in
        let inst =
          Instance.make ~nets:(Array.init n (fun i -> i)) ~kth ~sensitive
        in
        let perm = Array.init n (fun i -> i) in
        Rng.shuffle (Rng.create (seed + 1)) perm;
        let inst' =
          Instance.make
            ~nets:(Array.map (fun s -> s) perm)
            ~kth:(Array.map (fun s -> kth.(s)) perm)
            ~sensitive
        in
        Instance.signature inst = Instance.signature inst');
    Test.make ~name:"flipping one sensitivity pair changes the signature"
      ~count:60
      (pair (int_range 2 12) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Rng.create seed in
        let a = Rng.int rng n in
        let b = (a + 1 + Rng.int rng (n - 1)) mod n in
        let base = sym_sens seed 0.5 in
        let flipped i j =
          if (i = a && j = b) || (i = b && j = a) then not (base i j)
          else base i j
        in
        let mk s =
          Instance.make ~nets:(Array.init n (fun i -> i))
            ~kth:(Array.make n 1.0) ~sensitive:s
        in
        Instance.signature (mk base) <> Instance.signature (mk flipped));
    Test.make ~name:"doubling one net's Kth changes the signature" ~count:60
      (pair (int_range 1 12) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Rng.create seed in
        let v = Rng.int rng n in
        let kth = Array.init n (fun i -> 0.2 +. Rng.pair_hash ~seed i i) in
        let sensitive = sym_sens (seed lxor 3) 0.5 in
        let nets = Array.init n (fun i -> i) in
        let kth2 = Array.copy kth in
        kth2.(v) <- kth2.(v) *. 2.0;
        Instance.signature (Instance.make ~nets ~kth ~sensitive)
        <> Instance.signature (Instance.make ~nets ~kth:kth2 ~sensitive));
    Test.make ~name:"min_area layouts are capacitive-crosstalk free" ~count:30
      (pair (int_range 2 20) (int_range 0 10_000))
      (fun (n, seed) ->
        let inst =
          Instance.make ~nets:(Array.init n (fun i -> i))
            ~kth:(Array.make n 1.0)
            ~sensitive:(fun i j -> i <> j && Rng.pair_hash ~seed i j < 0.4)
        in
        let l = Solver.min_area (Rng.create seed) inst in
        Layout.cap_violations l = 0);
    Test.make ~name:"inserting a shield never increases any K" ~count:30
      (pair (int_range 2 12) (int_range 0 10_000))
      (fun (n, seed) ->
        let inst =
          Instance.make ~nets:(Array.init n (fun i -> i))
            ~kth:(Array.make n 1.0)
            ~sensitive:(fun i j -> i <> j && Rng.pair_hash ~seed i j < 0.6)
        in
        let l = Solver.order_only (Rng.create seed) inst in
        let pos = seed mod (Layout.num_tracks l + 1) in
        let l2 = Layout.insert_shield l pos in
        let ok = ref true in
        for i = 0 to n - 1 do
          if Layout.k_of l2 k i > Layout.k_of l k i +. 1e-9 then ok := false
        done;
        !ok);
  ]

let suites =
  [
    ( "sino.keff",
      [
        Alcotest.test_case "decay" `Quick test_keff_decay;
        Alcotest.test_case "shield block" `Quick test_keff_shield_block;
        Alcotest.test_case "validation" `Quick test_keff_validation;
        Alcotest.test_case "max feasible" `Quick test_keff_max_feasible;
      ] );
    ( "sino.instance",
      [
        Alcotest.test_case "basics" `Quick test_instance_basics;
        Alcotest.test_case "with_kth" `Quick test_instance_with_kth;
        Alcotest.test_case "sensitivity fraction" `Quick test_instance_sensitivity_fraction;
        Alcotest.test_case "signature shape" `Quick test_signature_shape;
      ] );
    ( "sino.layout",
      [
        Alcotest.test_case "validation" `Quick test_layout_validation;
        Alcotest.test_case "K hand computed" `Quick test_layout_k_hand_computed;
        Alcotest.test_case "K with shield" `Quick test_layout_k_with_shield;
        Alcotest.test_case "non-sensitive ignored" `Quick test_layout_k_nonsensitive_ignored;
        Alcotest.test_case "capacitive violations" `Quick test_layout_cap_violations;
        Alcotest.test_case "K violations" `Quick test_layout_k_violations;
        Alcotest.test_case "edits" `Quick test_layout_edits;
      ] );
    ( "sino.solver",
      [
        Alcotest.test_case "order_only shape" `Quick test_order_only_no_shields;
        Alcotest.test_case "order_only adjacency" `Quick test_order_only_avoids_adjacency;
        Alcotest.test_case "min_area loose" `Quick test_min_area_loose_bounds;
        Alcotest.test_case "min_area capacitive" `Quick test_min_area_capacitive;
        Alcotest.test_case "min_area inductive" `Quick test_min_area_inductive;
        Alcotest.test_case "empty and single" `Quick test_min_area_empty_and_single;
        Alcotest.test_case "random feasibility" `Quick test_min_area_feasible_random;
        Alcotest.test_case "repair after tightening" `Quick test_repair_after_tightening;
        Alcotest.test_case "repair after relaxation" `Quick test_repair_relaxation_removes;
        Alcotest.test_case "anneal improves or keeps" `Slow test_anneal_improves_or_keeps;
        Alcotest.test_case "anneal trivial" `Quick test_anneal_trivial;
        Alcotest.test_case "shields_needed" `Quick test_shields_needed;
      ] );
    ( "sino.estimate",
      [
        Alcotest.test_case "features" `Quick test_estimate_features;
        Alcotest.test_case "predict clamped" `Quick test_estimate_predict_clamped;
        Alcotest.test_case "fit quality" `Slow test_estimate_fit_quality;
        Alcotest.test_case "monotone in density" `Slow test_estimate_monotone_in_density;
      ] );
    ("sino.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
