(* Tests for the Eda_exec domain pool: sequential-bypass semantics,
   ordered reduction, exception propagation, pool reuse, the
   Metrics.absorb sharding contract, and the headline guarantee — a
   GSINO flow at jobs = 4 produces exactly the routing solution and
   metric series of jobs = 1. *)
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Metrics = Eda_obs.Metrics
open Gsino

(* ------------------------- pool mechanics --------------------------- *)

let test_default_jobs_bounds () =
  let j = Eda_exec.default_jobs () in
  Alcotest.(check bool) "at least 1" true (j >= 1);
  Alcotest.(check bool) "capped at 8" true (j <= 8);
  Alcotest.(check int) "cap 1 forces sequential" 1 (Eda_exec.default_jobs ~cap:1 ());
  Alcotest.(check int) "jobs recorded" 3 (Eda_exec.jobs (Eda_exec.with_pool ~jobs:3 Fun.id))

let test_map_matches_sequential () =
  let f i = (i * 37) mod 101 in
  let expect = Array.init 1000 f in
  Eda_exec.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check bool) "parallel_map = Array.init" true
    (Eda_exec.parallel_map ~pool 1000 f = expect);
  Alcotest.(check bool) "tiny chunk too" true
    (Eda_exec.parallel_map ~pool ~chunk:1 1000 f = expect);
  Alcotest.(check bool) "no pool = Array.init" true
    (Eda_exec.parallel_map 1000 f = expect)

let test_empty_and_small_ranges () =
  Eda_exec.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check int) "empty map" 0
    (Array.length (Eda_exec.parallel_map ~pool 0 (fun i -> i)));
  Eda_exec.parallel_iter ~pool 0 (fun _ -> Alcotest.fail "body on empty range");
  (* fewer items than domains *)
  Alcotest.(check bool) "n=2 over 4 domains" true
    (Eda_exec.parallel_map ~pool 2 string_of_int = [| "0"; "1" |])

let test_iter_covers_every_index () =
  let n = 777 in
  let hits = Array.make n 0 in
  (* each slot is written by exactly one iteration: no lock needed *)
  Eda_exec.with_pool ~jobs:4 (fun pool ->
      Eda_exec.parallel_iter ~pool n (fun i -> hits.(i) <- hits.(i) + 1));
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

let test_map_array () =
  let arr = Array.init 64 (fun i -> 64 - i) in
  Eda_exec.with_pool ~jobs:2 @@ fun pool ->
  Alcotest.(check bool) "map_array in order" true
    (Eda_exec.map_array ~pool string_of_int arr = Array.map string_of_int arr)

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Eda_exec.with_pool ~jobs:4 @@ fun pool ->
  (try
     ignore
       (Eda_exec.parallel_map ~pool 200 (fun i ->
            if i = 137 then raise (Boom i) else i));
     Alcotest.fail "expected Boom"
   with Boom i -> Alcotest.(check int) "the raising index" 137 i);
  (* the failed section drained; the same pool keeps working *)
  let a = Eda_exec.parallel_map ~pool 50 (fun i -> i * i) in
  Alcotest.(check int) "pool reusable after exception" (49 * 49) a.(49)

let test_pool_reuse_many_sections () =
  Eda_exec.with_pool ~jobs:3 @@ fun pool ->
  for round = 1 to 20 do
    let a = Eda_exec.parallel_map ~pool 100 (fun i -> i + round) in
    Alcotest.(check int)
      (Printf.sprintf "round %d" round)
      (99 + round) a.(99)
  done;
  Eda_exec.shutdown pool;
  Eda_exec.shutdown pool (* idempotent *)

let test_nested_section_degrades () =
  (* a section entered while one is running must not deadlock *)
  Eda_exec.with_pool ~jobs:2 @@ fun pool ->
  let a =
    Eda_exec.parallel_map ~pool 8 (fun i ->
        Array.fold_left ( + ) 0 (Eda_exec.parallel_map ~pool 4 (fun j -> i + j)))
  in
  Alcotest.(check int) "nested result" (4 * 7 + 6) a.(7)

(* --------------------- Metrics sharding contract -------------------- *)

let test_absorb_roundtrip () =
  let c = Metrics.counter "test_exec.absorb_c" in
  let g = Metrics.gauge "test_exec.absorb_g" in
  let h = Metrics.histogram "test_exec.absorb_h" in
  Metrics.add c 5;
  Metrics.set g 2.5;
  Metrics.observe h 3.0;
  let c0 = Metrics.counter_value c and g0 = Metrics.gauge_value g in
  let n0 = (Metrics.histogram_summary h).Metrics.count in
  let shard = Metrics.snapshot () in
  (* absorbing a shard adds counters/histograms and accumulates gauges *)
  Metrics.absorb shard;
  Alcotest.(check int) "counter added" (2 * c0) (Metrics.counter_value c);
  Alcotest.(check (float 1e-9)) "gauge accumulated" (2.0 *. g0)
    (Metrics.gauge_value g);
  Alcotest.(check int) "histogram count added" (2 * n0)
    (Metrics.histogram_summary h).Metrics.count

let test_worker_metrics_folded_in () =
  (* counts recorded inside worker domains must land in the caller's
     registry once the section ends, independent of jobs *)
  let count jobs =
    let c =
      Metrics.counter
        ~labels:[ ("jobs", string_of_int jobs) ]
        "test_exec.folded"
    in
    Eda_exec.with_pool ~jobs (fun pool ->
        Eda_exec.parallel_iter ~pool 500 (fun _ -> Metrics.incr c));
    Metrics.counter_value c
  in
  Alcotest.(check int) "sequential count" 500 (count 1);
  Alcotest.(check int) "parallel count" 500 (count 4)

let test_pool_observability_series () =
  Metrics.reset ();
  Eda_exec.with_pool ~jobs:4 (fun pool ->
      ignore (Eda_exec.parallel_map ~pool 2000 (fun i -> i * i)));
  let snap = Metrics.snapshot () in
  let busy =
    List.filter
      (fun (n, _, _) -> n = "exec.domain_busy_ns")
      (Metrics.entries snap)
  in
  Alcotest.(check bool) "per-domain busy exported" true (busy <> []);
  let total_busy =
    List.fold_left
      (fun s (_, labels, v) ->
        Alcotest.(check bool) "domain label present" true
          (List.mem_assoc "domain" labels);
        match v with
        | Metrics.Counter c ->
            Alcotest.(check bool) "busy non-negative" true (c >= 0);
            s + c
        | Metrics.Gauge _ | Metrics.Histogram _ ->
            Alcotest.fail "busy_ns should be a counter")
      0 busy
  in
  Alcotest.(check bool) "some domain did work" true (total_busy > 0);
  Alcotest.(check bool) "sections counted" true
    (Metrics.counter_total snap "exec.sections" > 0);
  Alcotest.(check bool) "steal series exported" true
    (List.exists (fun (n, _, _) -> n = "exec.steals") (Metrics.entries snap));
  match Metrics.find snap "exec.imbalance" with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check bool) "imbalance observed" true (h.Metrics.count >= 1)
  | Some (Metrics.Counter _ | Metrics.Gauge _) | None ->
      Alcotest.fail "exec.imbalance histogram missing"

(* -------------------- end-to-end determinism ------------------------ *)

let tech = Tech.default

(* exec.* series are expected to differ (they describe the pool itself);
   gc.* deltas depend on what the coordinator domain happened to
   allocate; flow.phase_seconds is wall-clock; sino.cache_* hit/miss
   counts depend on which domain reaches a duplicate panel first (the
   solutions themselves are schedule-independent — DESIGN §10).
   Everything else must match — the same volatile-prefix set
   bench/regression_policy.json excludes. *)
let comparable snap =
  List.filter
    (fun (name, _, _) ->
      name <> "flow.phase_seconds"
      && (not (String.starts_with ~prefix:"exec." name))
      && (not (String.starts_with ~prefix:"gc." name))
      && not (String.starts_with ~prefix:"sino.cache_" name))
    (Metrics.entries snap)

let gsino_with ~jobs =
  let nl =
    Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7
      Generator.ibm01
  in
  let config =
    { Flow.Config.default with Flow.Config.kind = Flow.Gsino; seed = 5; jobs }
  in
  let grid, _ = Flow.prepare ~config tech nl in
  let sens = Sensitivity.make ~seed:11 ~rate:0.30 in
  Metrics.reset ();
  let r = Flow.run ~grid config tech ~sensitivity:sens nl in
  (r, comparable (Metrics.snapshot ()))

let test_flow_jobs_deterministic () =
  let r1, m1 = gsino_with ~jobs:1 in
  let r4, m4 = gsino_with ~jobs:4 in
  Alcotest.(check bool) "identical routes" true (r1.Flow.routes = r4.Flow.routes);
  Alcotest.(check int) "identical shields" r1.Flow.shields r4.Flow.shields;
  Alcotest.(check bool) "identical violations" true
    (r1.Flow.violations = r4.Flow.violations);
  Alcotest.(check (float 1e-9)) "identical wire length" r1.Flow.total_wl_um
    r4.Flow.total_wl_um;
  Alcotest.(check int) "same metric series count" (List.length m1)
    (List.length m4);
  List.iter2
    (fun (n1, l1, v1) (n2, l2, v2) ->
      Alcotest.(check string) "series name" n1 n2;
      Alcotest.(check bool) (n1 ^ " labels equal") true (l1 = l2);
      Alcotest.(check bool) (n1 ^ " value equal") true (v1 = v2))
    m1 m4

let suites =
  [
    ( "exec.pool",
      [
        Alcotest.test_case "default_jobs bounds" `Quick test_default_jobs_bounds;
        Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
        Alcotest.test_case "empty and small ranges" `Quick test_empty_and_small_ranges;
        Alcotest.test_case "iter covers every index" `Quick test_iter_covers_every_index;
        Alcotest.test_case "map_array" `Quick test_map_array;
        Alcotest.test_case "exception propagates, pool survives" `Quick
          test_exception_propagates_and_pool_survives;
        Alcotest.test_case "pool reuse over many sections" `Quick
          test_pool_reuse_many_sections;
        Alcotest.test_case "nested section degrades" `Quick test_nested_section_degrades;
      ] );
    ( "exec.metrics",
      [
        Alcotest.test_case "absorb round-trip" `Quick test_absorb_roundtrip;
        Alcotest.test_case "worker metrics folded in" `Quick
          test_worker_metrics_folded_in;
        Alcotest.test_case "pool observability series" `Quick
          test_pool_observability_series;
      ] );
    ( "exec.determinism",
      [
        Alcotest.test_case "gsino flow jobs=4 = jobs=1" `Slow
          test_flow_jobs_deterministic;
      ] );
  ]
