(* Tests for the pre-route static analyzer (Eda_analyze) and the clique
   shield lower bound (Eda_sino.Bound).

   The load-bearing property is soundness: the bound must never exceed
   the shield count of any feasible layout, and a clean audit must never
   reject an instance a flow can actually solve.  Both are checked
   against the real solver, not against a model of it. *)
module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Rng = Eda_util.Rng
module Keff = Eda_sino.Keff
module Instance = Eda_sino.Instance
module Layout = Eda_sino.Layout
module Solver = Eda_sino.Solver
module Bound = Eda_sino.Bound
module Diag = Eda_check.Diag
module Analyze = Eda_analyze.Analyze
open Gsino

let inst ?(kth = 1.0) ?(sensitive = fun i j -> i <> j) n =
  Instance.make ~nets:(Array.init n Fun.id) ~kth:(Array.make n kth) ~sensitive

let config () = Flow.analyze_config Tech.default

(* ------------------------------ Bound ------------------------------- *)

let test_clique_of_independent_nets () =
  let i = inst ~sensitive:(fun _ _ -> false) 6 in
  Alcotest.(check int) "clique size" 1 (Array.length (Bound.greedy_clique i));
  Alcotest.(check int) "no shields forced" 0 (Bound.shield_lower_bound i)

let test_clique_trivial_instances () =
  Alcotest.(check int) "empty instance" 0
    (Array.length (Bound.greedy_clique (inst 0)));
  Alcotest.(check int) "single net" 1
    (Array.length (Bound.greedy_clique (inst 1)));
  Alcotest.(check int) "empty bound" 0 (Bound.shield_lower_bound (inst 0));
  Alcotest.(check int) "single bound" 0 (Bound.shield_lower_bound (inst 1))

let test_full_clique_bound () =
  (* pure clique, loose bounds: every one of the k-1 gaps needs a shield
     because there are no non-clique nets to fill them *)
  for k = 2 to 8 do
    let i = inst k in
    Alcotest.(check int) "greedy finds the full clique" k
      (Array.length (Bound.greedy_clique i));
    Alcotest.(check int)
      (Printf.sprintf "pure clique of %d forces %d shields" k (k - 1))
      (k - 1) (Bound.shield_lower_bound i)
  done

let test_bound_discounts_fillers () =
  (* clique of 4 among 6 nets, loose bounds: the 2 non-clique nets can
     fill 2 of the 3 gaps (q = 1), leaving 1 forced shield *)
  let sensitive i j = i <> j && i < 4 && j < 4 in
  let i = inst ~sensitive 6 in
  Alcotest.(check int) "one forced shield" 1 (Bound.shield_lower_bound i)

let test_bound_tight_kth_widens_gaps () =
  (* same clique, but bounds so tight a shield-free gap must be wide:
     each non-clique net no longer plugs a gap on its own *)
  let sensitive i j = i <> j && i < 4 && j < 4 in
  let i = inst ~kth:0.01 ~sensitive 6 in
  Alcotest.(check int) "tight bounds force all three gaps" 3
    (Bound.shield_lower_bound i)

let test_one_shield_threshold () =
  let p = Keff.default in
  Alcotest.(check (float 1e-12)) "k1^2 * sb"
    (p.Keff.k1 *. p.Keff.k1 *. p.Keff.shield_block)
    (Bound.one_shield_threshold p)

(* Soundness sweep: on random instances the bound must never exceed the
   shields of a feasible min_area layout — the bound claims to hold for
   EVERY feasible layout, so one counterexample kills it. *)
let test_bound_sound_vs_min_area () =
  let rng = Rng.create 42 in
  let checked = ref 0 in
  for _ = 1 to 120 do
    let n = Rng.int_in rng 2 16 in
    let rate = 0.3 +. Rng.float rng 0.7 in
    let seed = Rng.int rng 100000 in
    let kth = Array.init n (fun _ -> 0.02 +. Rng.float rng 1.2) in
    let i =
      Instance.make ~nets:(Array.init n Fun.id) ~kth
        ~sensitive:(fun a b -> a <> b && Rng.pair_hash ~seed a b < rate)
    in
    let l = Solver.min_area (Rng.split rng) i in
    if Layout.feasible l Keff.default then begin
      incr checked;
      let lb = Bound.shield_lower_bound i in
      Alcotest.(check bool)
        (Printf.sprintf "bound %d <= solver shields %d (n=%d seed=%d)" lb
           (Layout.num_shields l) n seed)
        true
        (lb <= Layout.num_shields l)
    end
  done;
  Alcotest.(check bool) "sweep exercised feasible layouts" true (!checked > 50)

(* ----------------------------- Analyze ------------------------------ *)

let line_netlist ?(name = "line") ~w ~nets () =
  Netlist.make ~name ~grid_w:w ~grid_h:1 ~gcell_um:2000.0
    (Array.init nets (fun id ->
         Net.make ~id
           ~source:{ Point.x = 0; y = 0 }
           ~sinks:[| { Point.x = w - 1; y = 0 } |]))

let infeasible_setup () =
  let netlist = line_netlist ~w:8 ~nets:12 () in
  let grid = Grid.make ~w:8 ~h:1 ~hcap:6 ~vcap:6 in
  let sensitivity = Sensitivity.make ~seed:1 ~rate:1.0 in
  (netlist, grid, sensitivity)

let codes t = List.map (fun d -> d.Diag.code) t.Analyze.findings

let test_cut_overflow_detected () =
  let netlist, grid, sensitivity = infeasible_setup () in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check bool) "GSL0024 fires" true (List.mem 24 (codes t));
  Alcotest.(check int) "every interior cut overflows" 7
    (List.length
       (List.filter
          (fun c -> c.Analyze.forced > c.Analyze.capacity)
          t.Analyze.cuts));
  Alcotest.(check bool) "audit has errors" true (Analyze.has_errors t)

let test_cut_overflow_silent_when_fits () =
  let netlist = line_netlist ~w:8 ~nets:4 () in
  let grid = Grid.make ~w:8 ~h:1 ~hcap:12 ~vcap:12 in
  let sensitivity = Sensitivity.make ~seed:1 ~rate:0.0 in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check (list int)) "no findings" [] (codes t)

let test_unmeetable_kth_detected () =
  (* rate 1.0 on long nets: every net's Kth lands below the one-shield
     floor k1^2*sb, so even the fully-shielded layout provably fails *)
  let netlist, grid, sensitivity = infeasible_setup () in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check bool) "GSL0026 fires" true (List.mem 26 (codes t));
  Alcotest.(check bool) "GSL0025 pressure warning fires" true
    (List.mem 25 (codes t));
  Alcotest.(check bool) "clique covers the panel" true
    (List.for_all
       (fun p -> Array.length p.Analyze.clique = Array.length p.Analyze.nets)
       t.Analyze.panels)

let test_panel_shield_lb_positive () =
  let netlist, grid, sensitivity = infeasible_setup () in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check bool) "panels exist on a 1-row grid" true
    (t.Analyze.panels <> []);
  Alcotest.(check bool) "clique forces shields in every panel" true
    (List.for_all (fun p -> p.Analyze.shield_lb > 0) t.Analyze.panels);
  Alcotest.(check bool) "summary total positive" true
    (Analyze.shield_lb_total t > 0)

let test_demand_map_mass () =
  (* RUDY conserves mass: summed H demand = summed horizontal spans *)
  let netlist = line_netlist ~w:8 ~nets:5 () in
  let grid = Grid.make ~w:8 ~h:1 ~hcap:12 ~vcap:12 in
  let sensitivity = Sensitivity.make ~seed:1 ~rate:0.0 in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  let total = Array.fold_left ( +. ) 0.0 (Analyze.demand t Dir.H) in
  (* 5 nets x 8 columns of bounding box each *)
  Alcotest.(check (float 1e-9)) "H demand mass" 40.0 total;
  Alcotest.(check (float 1e-9)) "no V demand for flat nets" 0.0
    (Array.fold_left ( +. ) 0.0 (Analyze.demand t Dir.V));
  Alcotest.(check (float 1e-6)) "peak pct = demand / cap" (5.0 /. 12.0 *. 100.0)
    (Analyze.peak_demand_pct t)

let test_graph_structure () =
  let netlist, grid, sensitivity = infeasible_setup () in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  let g = t.Analyze.graph in
  Alcotest.(check int) "nodes" 12 g.Analyze.nodes;
  Alcotest.(check int) "complete graph edges" 66 g.Analyze.edges;
  Alcotest.(check int) "one component" 1 g.Analyze.components;
  Alcotest.(check int) "max degree" 11 g.Analyze.max_degree;
  Alcotest.(check int) "greedy clique finds all" 12 g.Analyze.max_clique;
  Alcotest.(check int) "degree histogram" 12 g.Analyze.degree_hist.(11)

let test_empty_netlist () =
  let netlist =
    Netlist.make ~name:"empty" ~grid_w:4 ~grid_h:4 ~gcell_um:100.0 [||]
  in
  let grid = Grid.make ~w:4 ~h:4 ~hcap:4 ~vcap:4 in
  let sensitivity = Sensitivity.make ~seed:1 ~rate:0.5 in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check (list int)) "no findings" [] (codes t);
  Alcotest.(check (float 1e-9)) "no demand" 0.0 (Analyze.peak_demand_pct t)

let test_generated_circuit_clean () =
  (* the audit must not cry wolf on the instances the seeded flows route *)
  let tech = Tech.default in
  let netlist =
    Eda_netlist.Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02
      ~seed:7 Eda_netlist.Generator.ibm01
  in
  let grid = Tech.grid_for tech netlist in
  let sensitivity = Sensitivity.make ~seed:(7 lxor 0xbeef) ~rate:0.30 in
  let t = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check bool) "no provable infeasibility" false (Analyze.has_errors t)

let test_audit_deterministic () =
  let netlist, grid, sensitivity = infeasible_setup () in
  let t1 = Analyze.run (config ()) ~grid ~sensitivity netlist in
  let t2 = Analyze.run (config ()) ~grid ~sensitivity netlist in
  Alcotest.(check (list string)) "identical findings"
    (List.map Diag.to_line t1.Analyze.findings)
    (List.map Diag.to_line t2.Analyze.findings)

(* --------------------------- Flow pre-pass -------------------------- *)

let test_flow_audit_fail_fast () =
  let netlist, grid, sensitivity = infeasible_setup () in
  let cfg =
    {
      Flow.Config.default with
      Flow.Config.audit = true;
      on_infeasible = Eda_guard.Error.Fail;
    }
  in
  match Flow.run ~grid cfg Tech.default ~sensitivity netlist with
  | _ -> Alcotest.fail "expected Infeasible before routing"
  | exception Eda_guard.Error.Error (Eda_guard.Error.Infeasible { retries; _ })
    ->
      Alcotest.(check int) "pre-route: zero retries spent" 0 retries

let test_flow_audit_degrade_continues () =
  let netlist, grid, sensitivity = infeasible_setup () in
  let cfg =
    {
      Flow.Config.default with
      Flow.Config.audit = true;
      on_infeasible = Eda_guard.Error.Degrade;
    }
  in
  let r = Flow.run ~grid cfg Tech.default ~sensitivity netlist in
  Alcotest.(check int) "all nets still routed" 12 (Array.length r.Flow.routes)

let test_flow_audit_clean_instance_unaffected () =
  (* audit on a healthy instance must not change the result *)
  let tech = Tech.default in
  let netlist =
    Eda_netlist.Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02
      ~seed:7 Eda_netlist.Generator.ibm01
  in
  let sensitivity = Sensitivity.make ~seed:(7 lxor 0xbeef) ~rate:0.30 in
  let base_cfg = Flow.Config.default in
  let grid, base = Flow.prepare ~config:base_cfg tech netlist in
  let run cfg = Flow.run ~grid ~base cfg tech ~sensitivity netlist in
  let plain = run base_cfg in
  let audited =
    run
      {
        base_cfg with
        Flow.Config.audit = true;
        on_infeasible = Eda_guard.Error.Fail;
      }
  in
  Alcotest.(check int) "same shields" plain.Flow.shields audited.Flow.shields;
  Alcotest.(check (float 1e-9)) "same wirelength" plain.Flow.total_wl_um
    audited.Flow.total_wl_um

let suites =
  [
    ( "analyze.bound",
      [
        Alcotest.test_case "independent nets" `Quick
          test_clique_of_independent_nets;
        Alcotest.test_case "trivial instances" `Quick
          test_clique_trivial_instances;
        Alcotest.test_case "full clique k-1" `Quick test_full_clique_bound;
        Alcotest.test_case "fillers discount" `Quick test_bound_discounts_fillers;
        Alcotest.test_case "tight kth widens gaps" `Quick
          test_bound_tight_kth_widens_gaps;
        Alcotest.test_case "one-shield threshold" `Quick
          test_one_shield_threshold;
        Alcotest.test_case "sound vs min_area sweep" `Slow
          test_bound_sound_vs_min_area;
      ] );
    ( "analyze.audit",
      [
        Alcotest.test_case "cut overflow" `Quick test_cut_overflow_detected;
        Alcotest.test_case "fits silently" `Quick
          test_cut_overflow_silent_when_fits;
        Alcotest.test_case "unmeetable kth" `Quick test_unmeetable_kth_detected;
        Alcotest.test_case "panel shield lb" `Quick test_panel_shield_lb_positive;
        Alcotest.test_case "demand map mass" `Quick test_demand_map_mass;
        Alcotest.test_case "graph structure" `Quick test_graph_structure;
        Alcotest.test_case "empty netlist" `Quick test_empty_netlist;
        Alcotest.test_case "generated circuit clean" `Slow
          test_generated_circuit_clean;
        Alcotest.test_case "deterministic" `Quick test_audit_deterministic;
      ] );
    ( "analyze.flow",
      [
        Alcotest.test_case "fail-fast on infeasible" `Quick
          test_flow_audit_fail_fast;
        Alcotest.test_case "degrade continues" `Quick
          test_flow_audit_degrade_continues;
        Alcotest.test_case "clean instance unaffected" `Slow
          test_flow_audit_clean_instance_unaffected;
      ] );
  ]
