(* Tests for Eda_reportviz: SVG escaping, heatmap geometry, chart rows,
   and the HTML/text run reports over a tiny seeded flow. *)
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Metrics = Eda_obs.Metrics
module Svg = Eda_reportviz.Svg
module Heatmap = Eda_reportviz.Heatmap
module Chart = Eda_reportviz.Chart
module Run_report = Eda_reportviz.Run_report
open Gsino

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let count_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go acc i =
    if n = 0 || i + n > m then acc
    else go (if String.sub s i n = sub then acc + 1 else acc) (i + 1)
  in
  go 0 0

let tech = Tech.default

(* shared tiny seeded GSINO flow; metrics registry reset first so the
   snapshot the reports consume belongs to this run alone *)
let fixture =
  lazy
    (Metrics.reset ();
     let nl =
       Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7
         Generator.ibm01
     in
     let grid, _base = Flow.prepare tech nl in
     let sensitivity = Sensitivity.make ~seed:11 ~rate:0.30 in
     let r =
       Flow.run ~grid
         { Flow.Config.default with Flow.Config.kind = Flow.Gsino; seed = 7 }
         tech ~sensitivity nl
     in
     (r, Metrics.snapshot ()))

(* ------------------------------ Svg --------------------------------- *)

let test_svg_escape () =
  Alcotest.(check string)
    "specials" "&amp;&lt;&gt;&quot;&#39;" (Svg.escape "&<>\"'");
  Alcotest.(check string) "plain untouched" "abc 123" (Svg.escape "abc 123")

let test_svg_builders () =
  let r =
    Svg.rect ~x:1.0 ~y:2.0 ~w:3.0 ~h:4.0
      ~attrs:[ ("fill", "#fff") ]
      ~tooltip:"a<b" ()
  in
  Alcotest.(check bool) "tooltip escaped" true
    (contains ~sub:"<title>a&lt;b</title>" r);
  Alcotest.(check bool) "attrs rendered" true (contains ~sub:"fill=\"#fff\"" r);
  let s = Svg.svg ~w:10 ~h:20 [ "<g/>" ] in
  Alcotest.(check bool) "namespace" true
    (contains ~sub:"xmlns=\"http://www.w3.org/2000/svg\"" s);
  Alcotest.(check bool) "viewBox" true (contains ~sub:"viewBox=\"0 0 10 20\"" s)

(* ----------------------------- Heatmap ------------------------------ *)

let test_heatmap_cell_count () =
  let r, _ = Lazy.force fixture in
  let grid = r.Flow.grid in
  let svg = Heatmap.render ~mode:Heatmap.Utilization r.Flow.usage Dir.H in
  let cells = Grid.width grid * Grid.height grid in
  (* one rect per region plus the handful of legend swatches *)
  let rects = count_sub ~sub:"<rect" svg in
  Alcotest.(check bool)
    (Printf.sprintf "%d rects for %d cells" rects cells)
    true
    (rects >= cells && rects <= cells + 12);
  Alcotest.(check bool) "tooltips present" true
    (count_sub ~sub:"<title>" svg >= cells)

let test_heatmap_over_capacity_marked () =
  let r, _ = Lazy.force fixture in
  let over_somewhere =
    List.exists
      (fun d ->
        List.exists Congestion_map.over_capacity
          (Congestion_map.cells r.Flow.usage d))
      Dir.all
  in
  (* capacities are clamped to the demand quantile, so the tiny fixture
     always has hot regions; guard the assumption explicitly *)
  Alcotest.(check bool) "fixture has over-capacity regions" true over_somewhere;
  let svgs =
    List.map
      (fun d -> Heatmap.render ~mode:Heatmap.Utilization r.Flow.usage d)
      Dir.all
  in
  Alcotest.(check bool) "status red + spelled-out tooltip" true
    (List.exists (fun s -> contains ~sub:"OVER CAPACITY" s) svgs);
  Alcotest.(check bool) "legend explains the red" true
    (List.for_all (fun s -> contains ~sub:"over capacity" s) svgs)

let test_heatmap_shields_mode () =
  let r, _ = Lazy.force fixture in
  let svg = Heatmap.render ~mode:Heatmap.Shields r.Flow.usage Dir.H in
  Alcotest.(check bool) "legend in shield units" true
    (contains ~sub:"shields" svg);
  (* shields mode never uses the reserved status red as a ramp color *)
  Alcotest.(check bool) "no status red" false (contains ~sub:"#e34948" svg)

(* ------------------------------ Chart ------------------------------- *)

let test_chart_bars () =
  let svg = Chart.bars [ ("alpha", 10.0); ("beta", 5.0) ] in
  Alcotest.(check bool) "labels present" true (contains ~sub:"alpha" svg);
  Alcotest.(check int) "two bars two labels two values" 2
    (count_sub ~sub:"<rect" svg);
  let empty = Chart.bars [] in
  Alcotest.(check bool) "empty input renders" true (contains ~sub:"<svg" empty)

let test_chart_linear_bins () =
  let rows = Chart.linear_bins ~bins:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "bin count" 4 (List.length rows);
  Alcotest.(check (float 1e-9)) "all samples binned" 5.0
    (List.fold_left (fun acc (_, c) -> acc +. c) 0.0 rows);
  Alcotest.(check int) "empty input" 0 (List.length (Chart.linear_bins [||]))

(* ---------------------------- Run_report ---------------------------- *)

let test_html_report_sections () =
  let r, snapshot = Lazy.force fixture in
  let html = Run_report.html ~tech ~title:"t" ~snapshot r in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" sub) true
        (contains ~sub html))
    [
      "<!DOCTYPE html>";
      "<svg";
      "color-scheme: light";
      "Phase timings";
      "Noise margin audit";
      "Crosstalk budget";
      "Metrics appendix";
      "flow.phase_seconds";
    ]

let test_html_report_top_offenders_gated () =
  let module Journal = Eda_obs.Journal in
  let r, snapshot = Lazy.force fixture in
  (* without a journal the section must be absent entirely *)
  Journal.disable ();
  let html = Run_report.html ~tech ~snapshot r in
  Alcotest.(check bool) "absent when not journaling" false
    (contains ~sub:"Top offenders" html);
  Journal.enable ();
  Fun.protect ~finally:Journal.disable @@ fun () ->
  Journal.record "net.route" [ ("net", "42") ]
    ~data:[ ("pops", 7.0); ("reweights", 3.0); ("deletions", 1.0) ]
    ~outcome:"routed";
  Journal.record "panel.solve"
    [ ("region", "5"); ("dir", "H"); ("sig", "00aa"); ("members", "42") ]
    ~data:[ ("time_us", 120.0); ("nets", 1.0); ("shields", 2.0) ]
    ~outcome:"feasible";
  let html = Run_report.html ~tech ~snapshot r in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" sub) true
        (contains ~sub html))
    [
      "Top offenders";
      "Nets by route churn";
      "Panels by SINO time";
      ">42<";
      ">5/H<";
    ]

let test_html_report_self_contained () =
  let r, snapshot = Lazy.force fixture in
  let html = Run_report.html ~tech ~snapshot r in
  (* no external fetches: no script/link/img tags, no src= attributes;
     the only URL is the SVG xmlns namespace identifier *)
  Alcotest.(check bool) "no <script" false (contains ~sub:"<script" html);
  Alcotest.(check bool) "no <link" false (contains ~sub:"<link" html);
  Alcotest.(check bool) "no <img" false (contains ~sub:"<img" html);
  Alcotest.(check bool) "no src=" false (contains ~sub:"src=" html);
  Alcotest.(check int) "only xmlns urls"
    (count_sub ~sub:"http" html)
    (count_sub ~sub:"xmlns=\"http://www.w3.org/2000/svg\"" html)

let test_html_report_heatmaps_per_dir () =
  let r, snapshot = Lazy.force fixture in
  let html = Run_report.html ~tech ~snapshot r in
  (* utilization + shields per direction *)
  Alcotest.(check int) "four heatmaps + charts" 4
    (count_sub ~sub:"<figure><figcaption>Track utilization" html
    + count_sub ~sub:"<figure><figcaption>Shield tracks" html)

let test_text_report () =
  let r, snapshot = Lazy.force fixture in
  let txt = Run_report.text ~tech ~snapshot r in
  Alcotest.(check bool) "summary line" true (contains ~sub:"GSINO on" txt);
  Alcotest.(check bool) "congestion map" true (contains ~sub:"H tracks" txt);
  Alcotest.(check bool) "noise audit" true
    (contains ~sub:"Noise margin audit" txt);
  Alcotest.(check bool) "metrics" true (contains ~sub:"Per-phase metrics" txt);
  Alcotest.(check bool) "no html leaked" false (contains ~sub:"<svg" txt)

let test_write_html () =
  let r, snapshot = Lazy.force fixture in
  let path = Filename.temp_file "gsino_report" ".html" in
  Run_report.write_html ~tech ~snapshot path r;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (n > 1000)

let suites =
  [
    ( "reportviz",
      [
        Alcotest.test_case "svg escape" `Quick test_svg_escape;
        Alcotest.test_case "svg builders" `Quick test_svg_builders;
        Alcotest.test_case "heatmap cells" `Quick test_heatmap_cell_count;
        Alcotest.test_case "heatmap over-capacity" `Quick
          test_heatmap_over_capacity_marked;
        Alcotest.test_case "heatmap shields" `Quick test_heatmap_shields_mode;
        Alcotest.test_case "chart bars" `Quick test_chart_bars;
        Alcotest.test_case "chart linear bins" `Quick test_chart_linear_bins;
        Alcotest.test_case "html sections" `Quick test_html_report_sections;
        Alcotest.test_case "top offenders journal-gated" `Quick
          test_html_report_top_offenders_gated;
        Alcotest.test_case "html self-contained" `Quick
          test_html_report_self_contained;
        Alcotest.test_case "html heatmaps per dir" `Quick
          test_html_report_heatmaps_per_dir;
        Alcotest.test_case "text report" `Quick test_text_report;
        Alcotest.test_case "write_html" `Quick test_write_html;
      ] );
  ]
