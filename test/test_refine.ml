(* Focused tests of Phase III local refinement: violation elimination,
   congestion recovery, bookkeeping consistency and idempotence. *)
module Netlist = Eda_netlist.Netlist
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage
module Layout = Eda_sino.Layout
open Gsino

let tech = Tech.default

(* a setup dense enough (rate 0.5) to force pass-1 work *)
let setup =
  lazy
    (let nl =
       Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:19
         Generator.ibm04
     in
     let grid, base = Flow.prepare tech nl in
     let sens = Sensitivity.make ~seed:23 ~rate:0.50 in
     let lsk_model = Tech.lsk_model tech in
     let budget =
       Budget.uniform ~lsk:lsk_model ~noise_v:tech.Tech.noise_bound_v
         ~gcell_um:nl.Netlist.gcell_um nl
     in
     let phase2 =
       Phase2.solve ~grid ~netlist:nl ~routes:base ~kth:(Budget.kth budget)
         ~sensitivity:sens ~keff:tech.Tech.keff ~mode:Phase2.Min_area ~seed:3 ()
     in
     let usage =
       Usage.of_routes grid ~gcell_um:nl.Netlist.gcell_um (Array.to_list base)
     in
     Phase2.apply_shields usage phase2;
     let pre_violations =
       Noise.violations ~grid ~gcell_um:nl.Netlist.gcell_um ~phase2 ~lsk_model
         ~netlist:nl ~routes:base ~bound_v:tech.Tech.noise_bound_v ()
     in
     let stats =
       Refine.run ~grid ~netlist:nl ~routes:base ~phase2 ~usage ~lsk_model
         ~bound_v:tech.Tech.noise_bound_v ()
     in
     (nl, grid, base, phase2, usage, pre_violations, stats))

let test_pass1_eliminates () =
  let _, _, _, _, _, pre, stats = Lazy.force setup in
  Alcotest.(check bool) "there was work to do" true (List.length pre > 0);
  Alcotest.(check int) "no residual violations" 0 stats.Refine.residual_violations;
  Alcotest.(check bool) "pass1 did the fixing" true
    (stats.Refine.pass1_nets_fixed > 0)

let test_post_violations_zero () =
  let nl, grid, base, phase2, _, _, _ = Lazy.force setup in
  let lsk_model = Tech.lsk_model tech in
  let v =
    Noise.violations ~grid ~gcell_um:nl.Netlist.gcell_um ~phase2 ~lsk_model
      ~netlist:nl ~routes:base ~bound_v:tech.Tech.noise_bound_v ()
  in
  Alcotest.(check int) "recomputed violations also zero" 0 (List.length v)

let test_usage_sync () =
  (* after refinement, the usage accounting must match the phase2 store *)
  let _, _, _, phase2, usage, _, _ = Lazy.force setup in
  Phase2.iter phase2 (fun (r, d) s ->
      Alcotest.(check int)
        (Printf.sprintf "region %d %s shields in sync" r (Dir.to_string d))
        (Layout.num_shields s.Phase2.layout)
        (Usage.nss usage r d))

let test_layouts_still_capacitive_free () =
  let _, _, _, phase2, _, _, _ = Lazy.force setup in
  Phase2.iter phase2 (fun _ s ->
      Alcotest.(check int) "no adjacent sensitive pairs" 0
        (Layout.cap_violations s.Phase2.layout))

let test_idempotent () =
  (* a second refinement round finds nothing to fix *)
  let nl, grid, base, phase2, usage, _, _ = Lazy.force setup in
  let lsk_model = Tech.lsk_model tech in
  let stats2 =
    Refine.run ~grid ~netlist:nl ~routes:base ~phase2 ~usage ~lsk_model
      ~bound_v:tech.Tech.noise_bound_v ()
  in
  Alcotest.(check int) "no new fixes" 0 stats2.Refine.pass1_nets_fixed;
  Alcotest.(check int) "still zero residual" 0 stats2.Refine.residual_violations

let test_stats_printable () =
  let _, _, _, _, _, _, stats = Lazy.force setup in
  let s = Format.asprintf "%a" Refine.pp_stats stats in
  Alcotest.(check bool) "non-empty rendering" true (String.length s > 20)

let suites =
  [
    ( "gsino.refine",
      [
        Alcotest.test_case "pass1 eliminates violations" `Slow test_pass1_eliminates;
        Alcotest.test_case "post violations zero" `Slow test_post_violations_zero;
        Alcotest.test_case "usage stays in sync" `Slow test_usage_sync;
        Alcotest.test_case "layouts capacitive-free" `Slow test_layouts_still_capacitive_free;
        Alcotest.test_case "idempotent" `Slow test_idempotent;
        Alcotest.test_case "stats printable" `Slow test_stats_printable;
      ] );
  ]
