(* The routing daemon: protocol codecs, per-request fault isolation
   (malformed/oversized frames, injected faults, disconnects, expired
   deadlines each degrade only their own request), bounded admission
   backpressure, concurrent-request result identity and graceful
   drain. *)
open Gsino
module Server = Eda_serve.Server
module Client = Eda_serve.Client
module Protocol = Eda_serve.Protocol
module Error = Eda_guard.Error
module Fault = Eda_guard.Fault
module Generator = Eda_netlist.Generator
module Io = Eda_netlist.Io

(* ---------------- fixtures ---------------- *)

let netlist_text =
  lazy
    (let tech = Tech.default in
     let profile =
       match Generator.find_ibm "ibm01" with
       | Some p -> p
       | None -> Alcotest.fail "ibm01 profile missing"
     in
     Io.to_string
       (Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.01 ~seed:3
          profile))

let route_request ?(deadline_ms = 0) ?(artifacts = []) () =
  Protocol.Route
    {
      netlist = Lazy.force netlist_text;
      options =
        { Protocol.default_options with Protocol.deadline_ms; artifacts };
    }

let tmpdir () =
  let d = Filename.temp_file "gsino_serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let with_server ?(workers = 1) ?(jobs = 1) ?(queue_bound = 4)
    ?(max_frame = Protocol.max_frame_default) ?(request_deadline_ms = 0)
    ?(drain_ms = 0) ?cache_dir f =
  let dir = tmpdir () in
  let socket = Filename.concat dir "s.sock" in
  let t =
    Server.start
      {
        Server.socket;
        workers;
        jobs;
        queue_bound;
        max_frame;
        request_deadline_ms;
        drain_ms;
        read_timeout_s = 2.0;
        cache_dir;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.drain t;
      Server.wait t;
      (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()))
    (fun () -> f ~socket t)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let write_raw fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "raw write complete" (String.length s) n

(* read the server's framed response off a raw connection *)
let read_response fd =
  match Protocol.read_frame ~timeout_s:30.0 fd with
  | Protocol.Frame payload -> (
      match Protocol.response_of_string payload with
      | Ok r -> r
      | Error e -> Alcotest.fail ("undecodable response: " ^ Error.to_string e))
  | Protocol.Eof -> Alcotest.fail "eof instead of a response frame"
  | Protocol.Reject e -> Alcotest.fail ("reject reading response: " ^ Error.to_string e)

let expect_err ~gsl ~exit_code what = function
  | Protocol.Err { gsl = g; exit_code = ec; _ } ->
      Alcotest.(check int) (what ^ " gsl") gsl g;
      Alcotest.(check int) (what ^ " exit") exit_code ec
  | Protocol.Pong | Protocol.Stats_reply _ | Protocol.Result _ ->
      Alcotest.fail (what ^ ": expected an error response")

(* (status, summary, findings, artifacts) *)
let expect_result what = function
  | Protocol.Result { status; summary; findings; artifacts } ->
      (status, summary, findings, artifacts)
  | Protocol.Err { gsl; message; _ } ->
      Alcotest.fail
        (Printf.sprintf "%s: unexpected error GSL%04d %s" what gsl message)
  | Protocol.Pong | Protocol.Stats_reply _ ->
      Alcotest.fail (what ^ ": expected a result response")

let ping_ok ~socket what =
  match Client.request ~timeout_s:10.0 socket Protocol.Ping with
  | Protocol.Pong -> ()
  | Protocol.Err { message; _ } ->
      Alcotest.fail (what ^ ": ping errored: " ^ message)
  | Protocol.Stats_reply _ | Protocol.Result _ ->
      Alcotest.fail (what ^ ": ping got a non-pong")

(* ---------------- protocol codecs ---------------- *)

let test_codec_roundtrip () =
  let reqs =
    [
      Protocol.Ping;
      Protocol.Stats;
      route_request ~deadline_ms:250
        ~artifacts:[ Protocol.Report; Protocol.Metrics ] ();
    ]
  in
  List.iter
    (fun req ->
      let s = Eda_obs.Json.to_string (Protocol.request_to_json req) in
      match Protocol.request_of_string s with
      | Ok req' ->
          Alcotest.(check bool) "request round-trips" true (req = req')
      | Error e -> Alcotest.fail (Error.to_string e))
    reqs;
  let resps =
    [
      Protocol.Pong;
      Protocol.Result
        {
          status = "ok";
          summary = "s";
          findings = [ "GSL0005 W - x" ];
          artifacts = [ ("report", "text\nwith\nlines") ];
        };
      Protocol.error_response
        (Error.Overload { reason = "queue-full"; depth = 4 });
    ]
  in
  List.iter
    (fun resp ->
      let s = Eda_obs.Json.to_string (Protocol.response_to_json resp) in
      match Protocol.response_of_string s with
      | Ok resp' ->
          Alcotest.(check bool) "response round-trips" true (resp = resp')
      | Error e -> Alcotest.fail (Error.to_string e))
    resps

let test_codec_rejects () =
  let bad =
    [
      "not json at all";
      {|{"schema":"gsino-serve-v0","kind":"ping"}|};
      {|{"schema":"gsino-serve-v1","kind":"launch-missiles"}|};
      {|{"schema":"gsino-serve-v1","kind":"route","netlist":"x","options":{"typo":1}}|};
    ]
  in
  List.iter
    (fun s ->
      match Protocol.request_of_string s with
      | Ok _ -> Alcotest.fail ("decoded garbage: " ^ s)
      | Error e ->
          Alcotest.(check int) "frame-class gsl" 30 (Error.gsl_code e))
    bad

(* ---------------- liveness ---------------- *)

let test_ping_stats () =
  with_server @@ fun ~socket t ->
  ping_ok ~socket "fresh daemon";
  (match Client.request ~timeout_s:10.0 socket Protocol.Stats with
  | Protocol.Stats_reply s ->
      Alcotest.(check int) "workers" 1 s.Protocol.workers;
      Alcotest.(check bool) "not draining" false s.Protocol.draining;
      Alcotest.(check int) "nothing active" 0 s.Protocol.active
  | Protocol.Pong | Protocol.Result _ | Protocol.Err _ ->
      Alcotest.fail "stats: wrong response kind");
  Alcotest.(check bool) "server-side stats agree" false
    (Server.stats t).Protocol.draining

let test_drain_unlinks_socket () =
  let dir = tmpdir () in
  let socket = Filename.concat dir "s.sock" in
  let t = Server.start { Server.default_config with Server.socket } in
  ping_ok ~socket "before drain";
  Server.drain t;
  Server.wait t;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ())

(* ---------------- frame robustness ---------------- *)

let test_malformed_frames () =
  with_server @@ fun ~socket _t ->
  (* truncated header: two bytes then EOF *)
  let fd = raw_connect socket in
  write_raw fd "xy";
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  expect_err ~gsl:30 ~exit_code:2 "truncated header" (read_response fd);
  Unix.close fd;
  ping_ok ~socket "after truncated header";
  (* truncated body: header promises 100 bytes, 10 arrive *)
  let fd = raw_connect socket in
  write_raw fd "\x00\x00\x00\x64helloooooo";
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  expect_err ~gsl:30 ~exit_code:2 "truncated body" (read_response fd);
  Unix.close fd;
  ping_ok ~socket "after truncated body";
  (* syntactically valid frame, garbage payload *)
  let fd = raw_connect socket in
  Protocol.write_frame fd "this is not json";
  expect_err ~gsl:30 ~exit_code:2 "garbage payload" (read_response fd);
  Unix.close fd;
  ping_ok ~socket "after garbage payload"

let test_oversized_frame () =
  with_server ~max_frame:1024 @@ fun ~socket _t ->
  let fd = raw_connect socket in
  (* announce 1 MiB: must be rejected from the header alone *)
  write_raw fd "\x00\x10\x00\x00";
  expect_err ~gsl:30 ~exit_code:2 "oversized" (read_response fd);
  Unix.close fd;
  ping_ok ~socket "after oversized frame"

(* ---------------- routing ---------------- *)

let volatile_prefixes = [ "exec."; "gc."; "prof."; "sino.cache_"; "serve." ]

let stable_metric_entries artifact =
  match Eda_obs.Json.of_string artifact with
  | Error msg -> Alcotest.fail ("metrics artifact not json: " ^ msg)
  | Ok j -> (
      match Eda_obs.Metrics.of_json j with
      | Error msg -> Alcotest.fail ("metrics artifact not v1: " ^ msg)
      | Ok snap ->
          List.filter
            (fun (name, _, _) ->
              name <> "flow.phase_seconds"
              && not
                   (List.exists
                      (fun p -> String.starts_with ~prefix:p name)
                      volatile_prefixes))
            (Eda_obs.Metrics.entries snap))

let test_route_identity_concurrent () =
  with_server ~workers:2 @@ fun ~socket _t ->
  let req = route_request ~artifacts:[ Protocol.Metrics ] () in
  let results = Array.make 4 None in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun i ->
            results.(i) <- Some (Client.request ~timeout_s:120.0 socket req))
          i)
  in
  List.iter Thread.join threads;
  let rs =
    Array.to_list results
    |> List.map (function
         | Some r -> expect_result "concurrent route" r
         | None -> Alcotest.fail "client thread produced nothing")
  in
  let status0, _, findings0, artifacts0 = List.hd rs in
  Alcotest.(check bool) "some findings listed" true
    (List.length findings0 > 0);
  List.iteri
    (fun i (status, _, findings, artifacts) ->
      Alcotest.(check bool)
        (Printf.sprintf "findings %d identical" i)
        true (findings = findings0);
      Alcotest.(check string) (Printf.sprintf "status %d" i) status0 status;
      (* metrics artifacts agree modulo the documented volatile series *)
      match (artifacts, artifacts0) with
      | [ (_, m) ], [ (_, m0) ] ->
          Alcotest.(check bool)
            (Printf.sprintf "stable metrics %d identical" i)
            true
            (stable_metric_entries m = stable_metric_entries m0)
      | _, _ -> Alcotest.fail "expected exactly the metrics artifact")
    rs

let test_request_deadline_degrades () =
  with_server @@ fun ~socket _t ->
  let status, _, _, _ =
    expect_result "deadline route"
      (Client.request ~timeout_s:120.0 socket (route_request ~deadline_ms:1 ()))
  in
  Alcotest.(check string) "degraded status" "degraded" status;
  (* the daemon survives a fully degraded request *)
  ping_ok ~socket "after expired deadline"

let test_injected_fault_isolated () =
  with_server @@ fun ~socket _t ->
  Fault.set
    [ { Fault.site = "serve.request"; mode = Fault.Raise; prob = 1.0; seed = 1 } ];
  Fun.protect ~finally:Fault.clear (fun () ->
      expect_err ~gsl:22 ~exit_code:5 "injected fault"
        (Client.request ~timeout_s:120.0 socket (route_request ())));
  (* fault cleared: the same request now routes; the daemon never died *)
  let status, _, _, _ =
    expect_result "after fault"
      (Client.request ~timeout_s:120.0 socket (route_request ()))
  in
  Alcotest.(check bool) "routes after injected fault" true
    (status = "ok" || status = "degraded")

let test_disconnect_cancels_request () =
  with_server @@ fun ~socket t ->
  let fd = raw_connect socket in
  Protocol.send_request fd (route_request ());
  (* vanish before the response: the monitor must cancel the request *)
  Unix.close fd;
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec settle () =
    let s = Server.stats t in
    if s.Protocol.active = 0 && s.Protocol.queue_depth = 0
       && s.Protocol.disconnects + s.Protocol.served + s.Protocol.errors > 0
    then s
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "request never settled after client disconnect"
    else begin
      Thread.delay 0.05;
      settle ()
    end
  in
  let s = settle () in
  Alcotest.(check int) "counted as disconnect" 1 s.Protocol.disconnects;
  ping_ok ~socket "after mid-request disconnect"

let test_backpressure_queue_full () =
  with_server ~workers:1 ~queue_bound:1 @@ fun ~socket _t ->
  (* hold the single worker busy deterministically *)
  Fault.set
    [
      {
        Fault.site = "serve.request";
        mode = Fault.Delay 700;
        prob = 1.0;
        seed = 1;
      };
    ];
  Fun.protect ~finally:Fault.clear @@ fun () ->
  let a = raw_connect socket in
  Protocol.send_request a (route_request ());
  Thread.delay 0.25 (* worker picks A up and sits in the injected delay *);
  let b = raw_connect socket in
  Protocol.send_request b (route_request ());
  Thread.delay 0.1 (* B is queued; the one queue slot is now full *);
  expect_err ~gsl:31 ~exit_code:6 "queue-full reject"
    (Client.request ~timeout_s:10.0 socket (route_request ()));
  ignore (expect_result "held request A" (read_response a));
  ignore (expect_result "queued request B" (read_response b));
  Unix.close a;
  Unix.close b

let test_draining_rejects_new_work () =
  with_server @@ fun ~socket t ->
  Server.drain t;
  (* the accept loop notices within its 0.25 s poll; until the listener
     closes, new route requests get the typed "draining" reject *)
  match Client.request ~timeout_s:10.0 socket (route_request ()) with
  | Protocol.Err { gsl; _ } ->
      Alcotest.(check int) "overload gsl" 31 gsl
  | Protocol.Pong | Protocol.Stats_reply _ | Protocol.Result _ ->
      Alcotest.fail "draining daemon accepted new work"
  | exception Error.Error (Error.Io _) ->
      (* listener already closed: equally acceptable — no new work *)
      ()

let suites =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "codec round-trips" `Quick test_codec_roundtrip;
        Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "ping and stats" `Quick test_ping_stats;
        Alcotest.test_case "drain unlinks socket" `Quick test_drain_unlinks_socket;
        Alcotest.test_case "malformed frames isolated" `Quick test_malformed_frames;
        Alcotest.test_case "oversized frame isolated" `Quick test_oversized_frame;
        Alcotest.test_case "draining rejects new work" `Quick
          test_draining_rejects_new_work;
      ] );
    ( "serve.requests",
      [
        Alcotest.test_case "concurrent identity" `Slow
          test_route_identity_concurrent;
        Alcotest.test_case "deadline degrades request" `Slow
          test_request_deadline_degrades;
        Alcotest.test_case "injected fault isolated" `Slow
          test_injected_fault_isolated;
        Alcotest.test_case "disconnect cancels request" `Slow
          test_disconnect_cancels_request;
        Alcotest.test_case "queue-full backpressure" `Slow
          test_backpressure_queue_full;
      ] );
  ]
