(* Content-addressed panel cache: LRU mechanics, verified lookups, the
   solver's canonical remapping (cache-on ≡ cache-off, DESIGN §10), the
   on-disk gsino-panelcache-v1 store, and the annealer's acceptance
   telemetry. *)
open Eda_sino
module Rng = Eda_util.Rng
module Metrics = Eda_obs.Metrics

let k = Keff.default

(* default: no sensitivities, so the shield lower bound is 0 and the
   synthetic zero-shield entries below pass the find cross-check *)
let mk_inst ?(kth = 1.0) ?(sensitive = fun _ _ -> false) n =
  Instance.make
    ~nets:(Array.init n (fun i -> i))
    ~kth:(Array.make n kth) ~sensitive

let sym_sens seed p i j = i <> j && Rng.pair_hash ~seed (min i j) (max i j) < p

let effort0 =
  {
    Cache.instances = 1;
    inserted = 0;
    removed = 0;
    swaps = 0;
    repairs = 0;
    retries = 0;
  }

(* slots arrays must be valid solutions (each net exactly once) or the
   permutation check in find/save would reject them *)
let ident_slots n = Array.init n (fun i -> i)

let find c ~key ~inst = Cache.find c ~params:k ~key ~inst ()

(* ---------------- LRU mechanics ---------------- *)

let test_hit_miss () =
  let c = Cache.create () in
  let inst = mk_inst 3 in
  Alcotest.(check bool) "empty misses" true (find c ~key:"a" ~inst = None);
  Cache.store c ~key:"a" ~inst { Cache.slots = ident_slots 3; effort = effort0 };
  (match find c ~key:"a" ~inst with
  | Some v -> Alcotest.(check bool) "slots round-trip" true (v.Cache.slots = ident_slots 3)
  | None -> Alcotest.fail "stored entry not found");
  Alcotest.(check bool) "other key misses" true (find c ~key:"b" ~inst = None);
  Alcotest.(check int) "length" 1 (Cache.length c)

let test_content_verification () =
  (* same key, different content: the WL signature is not a perfect
     canonical form, so a colliding key must miss, not lie *)
  let c = Cache.create () in
  let inst = mk_inst 3 in
  let other = mk_inst ~kth:2.0 3 in
  Cache.store c ~key:"a" ~inst { Cache.slots = ident_slots 3; effort = effort0 };
  Alcotest.(check bool) "content mismatch misses" true
    (find c ~key:"a" ~inst:other = None)

let test_eviction () =
  let c = Cache.create ~capacity:2 () in
  let inst n = mk_inst n in
  let store key n =
    Cache.store c ~key ~inst:(inst n)
      { Cache.slots = ident_slots n; effort = effort0 }
  in
  store "a" 2;
  store "b" 3;
  (* touch "a" so "b" is the LRU entry *)
  ignore (find c ~key:"a" ~inst:(inst 2));
  store "c" 4;
  Alcotest.(check int) "capacity bound" 2 (Cache.length c);
  Alcotest.(check bool) "LRU evicted" true (find c ~key:"b" ~inst:(inst 3) = None);
  Alcotest.(check bool) "recently-used kept" true
    (find c ~key:"a" ~inst:(inst 2) <> None)

let test_admit () =
  let c = Cache.create () in
  let inst = mk_inst 3 in
  Cache.store c ~key:"a" ~inst
    { Cache.slots = ident_slots 3; effort = { effort0 with Cache.retries = 2 } };
  let admit_le n v = v.Cache.effort.Cache.retries <= n in
  Alcotest.(check bool) "beyond budget misses" true
    (Cache.find c ~params:k ~key:"a" ~inst ~admit:(admit_le 1) () = None);
  Alcotest.(check bool) "entry survives the refusal" true
    (Cache.find c ~params:k ~key:"a" ~inst ~admit:(admit_le 2) () <> None)

let test_bound_reject () =
  (* a fully sensitive clique needs shields; an entry claiming zero
     beats the sound lower bound and must be dropped as corrupt *)
  let n = 6 in
  let inst = mk_inst ~kth:0.05 ~sensitive:(fun i j -> i <> j) n in
  Alcotest.(check bool) "premise: bound is positive" true
    (Bound.shield_lower_bound ~params:k inst > 0);
  let c = Cache.create () in
  Cache.store c ~key:"a" ~inst { Cache.slots = ident_slots n; effort = effort0 };
  Alcotest.(check bool) "bound-beating entry rejected" true
    (find c ~key:"a" ~inst = None);
  Alcotest.(check int) "and dropped" 0 (Cache.length c)

(* ---------------- solver integration ---------------- *)

let test_solve_dispositions () =
  let inst = mk_inst ~sensitive:(sym_sens 3 0.5) 8 in
  let req = Solver.request ~seed:42 () in
  let cache = Cache.create () in
  let s1 = Solver.solve ~cache req inst in
  Alcotest.(check bool) "first solve stored" true
    (s1.Solver.cache = Some Solver.Stored);
  let s2 = Solver.solve ~cache req inst in
  Alcotest.(check bool) "second solve hits" true (s2.Solver.cache = Some Solver.Hit);
  Alcotest.(check int) "hit consumes no attempts" 0 s2.Solver.attempts;
  Alcotest.(check bool) "identical layouts" true
    (Layout.slots s1.Solver.layout = Layout.slots s2.Solver.layout);
  let s3 = Solver.solve req inst in
  Alcotest.(check bool) "no cache, no disposition" true (s3.Solver.cache = None);
  Alcotest.(check bool) "cache-off layout byte-identical" true
    (Layout.slots s1.Solver.layout = Layout.slots s3.Solver.layout)

let test_order_only_not_cached () =
  let inst = mk_inst 5 in
  let cache = Cache.create () in
  let req = Solver.request ~mode:Solver.Order_only ~seed:1 () in
  let s = Solver.solve ~cache req inst in
  Alcotest.(check bool) "order-only bypasses the cache" true
    (s.Solver.cache = None);
  Alcotest.(check int) "nothing stored" 0 (Cache.length cache)

(* ---------------- on-disk store ---------------- *)

let tmpdir () = Filename.temp_file "gsino_cache" "" |> fun f ->
  Sys.remove f;
  f

let test_disk_roundtrip () =
  let dir = tmpdir () in
  let cache = Cache.create () in
  let solve c inst = Solver.solve ?cache:c (Solver.request ~seed:9 ()) inst in
  let insts =
    List.init 4 (fun i -> mk_inst ~sensitive:(sym_sens (i + 1) 0.5) (6 + i))
  in
  let fresh = List.map (fun i -> solve (Some cache) i) insts in
  Cache.save cache dir;
  let loaded = Cache.load dir in
  Alcotest.(check int) "entry count survives" (Cache.length cache)
    (Cache.length loaded);
  List.iter2
    (fun inst s0 ->
      let s = solve (Some loaded) inst in
      Alcotest.(check bool) "loaded entry hits" true
        (s.Solver.cache = Some Solver.Hit);
      Alcotest.(check bool) "layout identical across processes" true
        (Layout.slots s.Solver.layout = Layout.slots s0.Solver.layout))
    insts fresh;
  (* second save over the same dir is fine (atomic replace) *)
  Cache.save loaded dir

let test_disk_corruption () =
  let write dir lines =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir "panels.v1") in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let empty_after lines =
    let dir = tmpdir () in
    write dir lines;
    Cache.length (Cache.load dir) = 0
  in
  Alcotest.(check bool) "missing dir loads empty" true
    (Cache.length (Cache.load (tmpdir ())) = 0);
  Alcotest.(check bool) "bad header loads empty" true
    (empty_after [ "not-a-panel-cache"; "key a" ]);
  Alcotest.(check bool) "truncated entry loads empty" true
    (empty_after [ "gsino-panelcache-v1"; "key a"; "n 2" ]);
  Alcotest.(check bool) "bad slot permutation loads empty" true
    (empty_after
       [
         "gsino-panelcache-v1";
         "key a";
         "n 2";
         "kth 3ff0000000000000 3ff0000000000000";
         "sens 01 10";
         "slots 0 0";
         "effort 1 0 0 0 0 0";
         "end";
       ])

let test_disk_concurrent_writers () =
  (* several serve workers (or daemon instances) flushing the same
     directory at once: every save publishes via a writer-unique tmp
     name + atomic rename, so a load at any point sees one complete
     store — never a torn or half-renamed file *)
  let dir = tmpdir () in
  let cache_for seed n =
    let c = Cache.create () in
    for i = 0 to n - 1 do
      let inst = mk_inst ~sensitive:(sym_sens (seed + i) 0.5) (4 + (i mod 5)) in
      ignore (Solver.solve ~cache:c (Solver.request ~seed:(seed + i) ()) inst)
    done;
    c
  in
  let caches = List.init 4 (fun w -> cache_for (100 * (w + 1)) 6) in
  let writers =
    List.map
      (fun c -> Domain.spawn (fun () -> for _ = 1 to 5 do Cache.save c dir done))
      caches
  in
  (* interleave loads with the racing writers: must never raise and
     never observe a partial store (load treats corrupt as empty, so a
     non-empty result proves the file was complete) *)
  for _ = 1 to 10 do
    ignore (Cache.load dir)
  done;
  List.iter Domain.join writers;
  let loaded = Cache.load dir in
  Alcotest.(check bool) "last published store is complete" true
    (List.exists (fun c -> Cache.length c = Cache.length loaded) caches);
  Alcotest.(check bool) "winner is one of the writers" true
    (Cache.length loaded > 0);
  (* no tmp litter: every pid/seq-suffixed staging file was renamed or
     cleaned up *)
  let litter =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "no tmp files left behind" [] litter

(* ---------------- annealer telemetry ---------------- *)

let test_acceptance_ratio_gauge () =
  let inst = mk_inst ~sensitive:(sym_sens 7 0.5) 10 in
  let l = Solver.min_area (Rng.create 3) inst in
  let _ = Solver.anneal (Rng.create 4) inst l in
  let r = Metrics.gauge_value (Metrics.gauge "sino.acceptance_ratio") in
  Alcotest.(check bool) "ratio in [0,1]" true (r >= 0.0 && r <= 1.0)

(* ---------------- properties ---------------- *)

let qcheck_tests =
  let open QCheck in
  [
    (* the tentpole property: a permuted copy of a cached panel hits,
       and the remapped solution is byte-identical to solving the
       permuted panel from scratch with no cache — on top of being
       feasible and GSL0028-clean (never below the shield bound) *)
    Test.make ~name:"permuted panels hit and remap correctly" ~count:40
      (pair (int_range 2 14) (int_range 0 10_000))
      (fun (n, seed) ->
        let kth = Array.init n (fun i -> 0.3 +. Rng.pair_hash ~seed i i) in
        let sensitive = sym_sens (seed lxor 0xc5) 0.5 in
        let inst =
          Instance.make ~nets:(Array.init n (fun i -> i)) ~kth ~sensitive
        in
        let perm = Array.init n (fun i -> i) in
        Rng.shuffle (Rng.create (seed + 1)) perm;
        let inst' =
          Instance.make ~nets:(Array.copy perm)
            ~kth:(Array.map (fun s -> kth.(s)) perm)
            ~sensitive
        in
        let req = Solver.request ~seed:11 () in
        let cache = Cache.create () in
        let first = Solver.solve ~cache req inst in
        let hit = Solver.solve ~cache req inst' in
        let direct = Solver.solve req inst' in
        Layout.slots hit.Solver.layout = Layout.slots direct.Solver.layout
        && ((not first.Solver.acceptable) || hit.Solver.cache = Some Solver.Hit)
        && (not hit.Solver.acceptable
           || Layout.cap_violations hit.Solver.layout = 0
              && Layout.num_shields hit.Solver.layout
                 >= Bound.shield_lower_bound ~params:k inst'));
    Test.make ~name:"canonicalize is a relabeling of the same panel" ~count:60
      (pair (int_range 1 14) (int_range 0 10_000))
      (fun (n, seed) ->
        let inst =
          Instance.make ~nets:(Array.init n (fun i -> i))
            ~kth:(Array.init n (fun i -> 0.2 +. Rng.pair_hash ~seed i i))
            ~sensitive:(sym_sens seed 0.5)
        in
        let c = Instance.canonicalize inst in
        let ok = ref (Instance.size c.Instance.inst = n) in
        for a = 0 to n - 1 do
          if
            Instance.kth c.Instance.inst a
            <> Instance.kth inst c.Instance.perm.(a)
          then ok := false;
          for b = 0 to n - 1 do
            if
              Instance.sens c.Instance.inst a b
              <> Instance.sens inst c.Instance.perm.(a) c.Instance.perm.(b)
            then ok := false
          done
        done;
        !ok && c.Instance.signature = Instance.signature inst);
  ]

let suites =
  [
    ( "cache.lru",
      [
        Alcotest.test_case "hit and miss" `Quick test_hit_miss;
        Alcotest.test_case "content verification" `Quick test_content_verification;
        Alcotest.test_case "eviction order" `Quick test_eviction;
        Alcotest.test_case "admit predicate" `Quick test_admit;
        Alcotest.test_case "bound cross-check" `Quick test_bound_reject;
      ] );
    ( "cache.solver",
      [
        Alcotest.test_case "dispositions and byte-identity" `Quick
          test_solve_dispositions;
        Alcotest.test_case "order-only bypass" `Quick test_order_only_not_cached;
        Alcotest.test_case "acceptance ratio gauge" `Quick
          test_acceptance_ratio_gauge;
      ] );
    ( "cache.disk",
      [
        Alcotest.test_case "round trip" `Quick test_disk_roundtrip;
        Alcotest.test_case "corruption tolerated" `Quick test_disk_corruption;
        Alcotest.test_case "concurrent writers race safely" `Quick
          test_disk_concurrent_writers;
      ] );
    ("cache.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
