(* Unit tests for Eda_obs.Journal: recording gate, dim/data key
   normalisation, the worker drain -> coordinator absorb contract, the
   canonical (ev, dim) export sort, JSONL round-trip with the schema
   header, loader error reporting, and the Agg folds gsino_explain is
   built on. *)
module Journal = Eda_obs.Journal

let with_journal f =
  Journal.disable ();
  Journal.enable ();
  Fun.protect ~finally:Journal.disable f

let ev_t : Journal.event Alcotest.testable =
  Alcotest.testable
    (fun fmt (e : Journal.event) ->
      Format.fprintf fmt "%s dim=[%s] data=[%s] outcome=%s" e.Journal.ev
        (String.concat ";"
           (List.map (fun (k, v) -> k ^ "=" ^ v) e.Journal.dim))
        (String.concat ";"
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%g" k v)
              e.Journal.data))
        (Option.value e.Journal.outcome ~default:"-"))
    ( = )

let test_disabled_is_noop () =
  Journal.disable ();
  Journal.record "net.route" [ ("net", "1") ];
  Alcotest.(check bool) "off" false (Journal.enabled ());
  Alcotest.(check (list ev_t)) "nothing buffered" [] (Journal.events ())

let test_record_normalises_keys () =
  with_journal @@ fun () ->
  Journal.record "panel.solve"
    [ ("sig", "ab"); ("dir", "H"); ("region", "3") ]
    ~data:[ ("time_us", 5.0); ("nets", 2.0) ]
    ~outcome:"feasible";
  match Journal.events () with
  | [ e ] ->
      Alcotest.(check (list (pair string string)))
        "dim sorted"
        [ ("dir", "H"); ("region", "3"); ("sig", "ab") ]
        e.Journal.dim;
      Alcotest.(check (list string))
        "data sorted" [ "nets"; "time_us" ]
        (List.map fst e.Journal.data);
      Alcotest.(check (option string))
        "outcome" (Some "feasible") e.Journal.outcome
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_duplicate_dim_key_rejected () =
  with_journal @@ fun () ->
  Alcotest.check_raises "dup dim"
    (Invalid_argument "Journal: duplicate dim key") (fun () ->
      Journal.record "x" [ ("net", "1"); ("net", "2") ])

let test_canonical_sort () =
  with_journal @@ fun () ->
  Journal.record "net.route" [ ("net", "9") ];
  Journal.record "net.budget" [ ("net", "2") ];
  Journal.record "net.budget" [ ("net", "1") ];
  Alcotest.(check (list string))
    "sorted by (ev, dim)"
    [ "net.budget/1"; "net.budget/2"; "net.route/9" ]
    (List.map
       (fun (e : Journal.event) ->
         e.Journal.ev ^ "/" ^ Option.get (Journal.dim_value e "net"))
       (Journal.events ()))

let test_drain_absorb_round_trip () =
  with_journal @@ fun () ->
  Journal.record "a" [ ("k", "1") ];
  let shard = Journal.drain () in
  Alcotest.(check int) "drained" 1 (List.length shard);
  Alcotest.(check (list ev_t)) "buffer cleared" [] (Journal.events ());
  Journal.record "a" [ ("k", "2") ];
  Journal.absorb shard;
  (* export is canonical regardless of which shard arrived first *)
  Alcotest.(check (list string))
    "absorbed + sorted" [ "1"; "2" ]
    (List.map
       (fun (e : Journal.event) -> Option.get (Journal.dim_value e "k"))
       (Journal.events ()))

let test_jsonl_round_trip () =
  with_journal @@ fun () ->
  Journal.record "panel.solve"
    [ ("region", "3"); ("dir", "V"); ("sig", "00ff") ]
    ~data:[ ("time_us", 12.5); ("nets", 4.0) ]
    ~outcome:"feasible";
  Journal.record "net.route" [ ("net", "7") ] ~data:[ ("pops", 3.0) ];
  let evs = Journal.events () in
  let path = Filename.temp_file "journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Journal.write_file path evs;
      match Journal.load path with
      | Ok loaded -> Alcotest.(check (list ev_t)) "round trip" evs loaded
      | Error e -> Alcotest.fail e)

let load_string contents =
  let path = Filename.temp_file "journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc contents);
      Journal.load path)

let check_load_error what needle contents =
  match load_string contents with
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      if not (contains msg needle) then
        Alcotest.failf "%s: error %S does not mention %S" what msg needle

let test_loader_errors () =
  check_load_error "empty" "empty journal" "";
  check_load_error "no header" "missing schema header" "{\"ev\":\"x\"}\n";
  check_load_error "wrong schema" "unsupported schema"
    "{\"schema\":\"gsino-journal-v0\"}\n";
  check_load_error "bad line" "line 2"
    "{\"schema\":\"gsino-journal-v1\"}\nnot json\n";
  check_load_error "missing ev" "missing field ev"
    "{\"schema\":\"gsino-journal-v1\"}\n{\"dim\":{}}\n";
  match
    load_string
      "{\"schema\":\"gsino-journal-v1\"}\n\n{\"ev\":\"a\",\"data\":{\"n\":2}}\n"
  with
  | Ok [ e ] ->
      (* blank lines skipped; integer payloads accepted as floats *)
      Alcotest.(check (option (float 0.0))) "int datum" (Some 2.0)
        (Journal.data_value e "n")
  | Ok evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)
  | Error e -> Alcotest.fail e

let mk ev net ?outcome data =
  { Journal.ev; dim = [ ("net", net) ]; data; outcome }

let test_agg_by_dim () =
  let evs =
    [
      mk "net.route" "1" [ ("pops", 2.0) ] ~outcome:"routed";
      mk "net.route" "1" [ ("pops", 3.0); ("reweights", 1.0) ] ~outcome:"routed";
      mk "net.route" "2" [ ("pops", 1.0) ] ~outcome:"empty";
      { Journal.ev = "other"; dim = []; data = []; outcome = None };
    ]
  in
  match Journal.Agg.by_dim "net" evs with
  | [ a; b ] ->
      Alcotest.(check string) "first key" "1" a.Journal.Agg.key;
      Alcotest.(check int) "count" 2 a.Journal.Agg.count;
      Alcotest.(check (float 1e-9)) "summed" 5.0 (Journal.Agg.datum a "pops");
      Alcotest.(check (float 1e-9)) "absent datum" 0.0
        (Journal.Agg.datum b "reweights");
      Alcotest.(check (list (pair string int)))
        "outcomes" [ ("routed", 2) ] a.Journal.Agg.outcomes
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_agg_top () =
  let evs =
    [
      mk "net.route" "a" [ ("pops", 1.0) ];
      mk "net.route" "b" [ ("pops", 9.0) ];
      mk "net.route" "c" [ ("pops", 9.0) ];
      mk "net.route" "d" [ ("pops", 4.0) ];
    ]
  in
  let rows = Journal.Agg.by_dim "net" evs in
  Alcotest.(check (list string))
    "desc with key tiebreak" [ "b"; "c"; "d" ]
    (List.map
       (fun r -> r.Journal.Agg.key)
       (Journal.Agg.top ~by:"pops" ~k:3 rows))

let test_filter_dim () =
  let evs =
    [ mk "net.route" "1" []; mk "net.route" "2" []; mk "net.refine" "1" [] ]
  in
  Alcotest.(check int) "filtered" 2
    (List.length (Journal.filter_dim ~key:"net" ~value:"1" evs));
  Alcotest.(check (option string)) "missing key" None
    (Journal.dim_value { Journal.ev = "x"; dim = []; data = []; outcome = None } "net")

let suites =
  [
    ( "journal.record",
      [
        Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
        Alcotest.test_case "key normalisation" `Quick
          test_record_normalises_keys;
        Alcotest.test_case "duplicate key rejected" `Quick
          test_duplicate_dim_key_rejected;
        Alcotest.test_case "canonical sort" `Quick test_canonical_sort;
        Alcotest.test_case "drain/absorb" `Quick test_drain_absorb_round_trip;
      ] );
    ( "journal.io",
      [
        Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
        Alcotest.test_case "loader errors" `Quick test_loader_errors;
      ] );
    ( "journal.agg",
      [
        Alcotest.test_case "by_dim" `Quick test_agg_by_dim;
        Alcotest.test_case "top" `Quick test_agg_top;
        Alcotest.test_case "filter_dim" `Quick test_filter_dim;
      ] );
  ]
