(* Tests for the core Gsino library: budgeting, the ID router, per-region
   SINO application, noise evaluation, Phase III refinement and the
   end-to-end flows. *)
module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Route = Eda_grid.Route
module Usage = Eda_grid.Usage
module Keff = Eda_sino.Keff
module Layout = Eda_sino.Layout
module Instance = Eda_sino.Instance
open Gsino

let p = Point.make
let tech = Tech.default
let lsk_model = lazy (Tech.lsk_model tech)

(* shared tiny benchmark circuit: a scaled ibm01 *)
let tiny =
  lazy
    (let nl = Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.02 ~seed:7 Generator.ibm01 in
     let grid, base = Flow.prepare tech nl in
     (nl, grid, base))

let sens30 = Sensitivity.make ~seed:11 ~rate:0.30

(* ----------------------------- Budget ------------------------------ *)

let test_budget_two_pin () =
  let nets = [| Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 3 4 |] |] in
  let nl = Netlist.make ~name:"b" ~grid_w:8 ~grid_h:8 ~gcell_um:100.0 nets in
  let m = Lazy.force lsk_model in
  let b = Budget.uniform ~lsk:m ~noise_v:0.15 ~gcell_um:100.0 nl in
  Alcotest.(check (float 1e-9)) "kth = budget / (7 gcells * 100um)"
    (b.Budget.lsk_budget /. 700.0) (Budget.kth b 0)

let test_budget_min_over_sinks () =
  let nets =
    [| Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 1 0; p 5 5 |] |]
  in
  let nl = Netlist.make ~name:"b" ~grid_w:8 ~grid_h:8 ~gcell_um:100.0 nets in
  let m = Lazy.force lsk_model in
  let b = Budget.uniform ~lsk:m ~noise_v:0.15 ~gcell_um:100.0 nl in
  (* farthest sink (distance 10 gcells) governs *)
  Alcotest.(check (float 1e-9)) "min over sinks"
    (b.Budget.lsk_budget /. 1000.0) (Budget.kth b 0)

let test_budget_sampler () =
  let nl, _, _ = Lazy.force tiny in
  let m = Lazy.force lsk_model in
  let b = Budget.uniform ~lsk:m ~noise_v:0.15 ~gcell_um:nl.Netlist.gcell_um nl in
  let rng = Eda_util.Rng.create 3 in
  for _ = 1 to 50 do
    let v = Budget.sample_kth b rng in
    Alcotest.(check bool) "sampled from the budget values" true
      (Array.exists (fun x -> x = v) b.Budget.kth)
  done

let test_budget_tighter_for_longer () =
  let nets =
    [|
      Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 2 0 |];
      Net.make ~id:1 ~source:(p 0 0) ~sinks:[| p 7 7 |];
    |]
  in
  let nl = Netlist.make ~name:"b" ~grid_w:8 ~grid_h:8 ~gcell_um:100.0 nets in
  let m = Lazy.force lsk_model in
  let b = Budget.uniform ~lsk:m ~noise_v:0.15 ~gcell_um:100.0 nl in
  Alcotest.(check bool) "longer net gets tighter bound" true
    (Budget.kth b 1 < Budget.kth b 0)

(* -------------------------- shield demand -------------------------- *)

let test_shield_demand () =
  let k = Keff.default in
  let kbar = 0.3 *. Keff.max_feasible_k k in
  Alcotest.(check (float 1e-12)) "loose bound, no demand" 0.0
    (Id_router.shield_demand ~keff:k ~rate:0.3 (kbar *. 1.1));
  let d_tight = Id_router.shield_demand ~keff:k ~rate:0.3 (kbar /. 10.0) in
  let d_mild = Id_router.shield_demand ~keff:k ~rate:0.3 (kbar /. 2.0) in
  Alcotest.(check bool) "tighter bound, more demand" true (d_tight > d_mild);
  Alcotest.(check bool) "demand bounded" true (d_tight <= 6.0);
  Alcotest.check_raises "bad kth"
    (Invalid_argument "Id_router.shield_demand: non-positive kth") (fun () ->
      ignore (Id_router.shield_demand ~keff:k ~rate:0.3 0.0))

(* --------------------------- ID router ----------------------------- *)

let test_steiner_route_connects () =
  let g = Grid.make ~w:8 ~h:8 ~hcap:10 ~vcap:10 in
  let net = Net.make ~id:0 ~source:(p 1 1) ~sinks:[| p 6 2; p 3 6 |] in
  let r = Id_router.steiner_route g net in
  Alcotest.(check bool) "connects all pins" true (Route.connects g r (Net.pins net));
  Alcotest.(check bool) "is a tree" true (Route.is_tree g r)

let test_router_routes_all () =
  let nl, grid, base = Lazy.force tiny in
  Alcotest.(check int) "route per net" (Netlist.num_nets nl) (Array.length base);
  Array.iteri
    (fun i r ->
      let net = nl.Netlist.nets.(i) in
      Alcotest.(check int) "route belongs to its net" i (Route.net r);
      Alcotest.(check bool) (Printf.sprintf "net %d connected" i) true
        (Route.connects grid r (Net.pins net));
      Alcotest.(check bool) (Printf.sprintf "net %d tree" i) true (Route.is_tree grid r))
    base

let test_router_deterministic () =
  let nl, grid, _ = Lazy.force tiny in
  let r1 = Flow.base_routes tech grid nl in
  let r2 = Flow.base_routes tech grid nl in
  Array.iteri
    (fun i r -> Alcotest.(check bool) "same edges" true (Route.edges r = Route.edges r2.(i)))
    r1

let test_router_stays_near_bbox () =
  let nl, grid, base = Lazy.force tiny in
  Array.iteri
    (fun i r ->
      let bbox =
        Eda_geom.Rect.clip
          (Eda_geom.Rect.expand (Net.bbox nl.Netlist.nets.(i)) 1)
          ~within:(Eda_geom.Rect.make 0 0 (Grid.width grid - 1) (Grid.height grid - 1))
      in
      Array.iter
        (fun e ->
          let a, b = Grid.edge_ends grid e in
          Alcotest.(check bool) "edge inside expanded bbox" true
            (Eda_geom.Rect.contains bbox a && Eda_geom.Rect.contains bbox b))
        (Route.edges r))
    base

let test_router_big_net_fallback () =
  let g = Grid.make ~w:10 ~h:10 ~hcap:10 ~vcap:10 in
  let nets =
    [| Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 9 9 |] |]
  in
  let nl = Netlist.make ~name:"big" ~grid_w:10 ~grid_h:10 ~gcell_um:50.0 nets in
  (* threshold 4 forces the direct-RSMT path *)
  let routes = Id_router.route ~grid:g ~netlist:nl ~big_net_threshold:4 () in
  Alcotest.(check bool) "fallback still connects" true
    (Route.connects g routes.(0) (Net.pins nets.(0)));
  Alcotest.(check int) "L-route length" 18 (Route.num_edges routes.(0))

let test_router_congestion_balancing () =
  (* many identical nets across a 1-wide channel with two rows available:
     the router must not put every net in the same row *)
  let g = Grid.make ~w:2 ~h:4 ~hcap:3 ~vcap:8 in
  let nets =
    Array.init 8 (fun id -> Net.make ~id ~source:(p 0 1) ~sinks:[| p 1 1 |])
  in
  let nl = Netlist.make ~name:"chan" ~grid_w:2 ~grid_h:4 ~gcell_um:50.0 nets in
  let routes = Id_router.route ~grid:g ~netlist:nl () in
  let u = Usage.of_routes g ~gcell_um:50.0 (Array.to_list routes) in
  (* all 8 nets cross from column 0 to column 1; capacity per region is 3,
     so at least two rows must be used *)
  let rows_used = ref 0 in
  for y = 0 to 3 do
    if Usage.nns u (Grid.region_id g (p 0 y)) Dir.H > 0 then incr rows_used
  done;
  Alcotest.(check bool) "spread over >= 2 rows" true (!rows_used >= 2)

(* ------------------------------ Phase 2 ---------------------------- *)

let phase2_of ?(mode = Phase2.Min_area) rate =
  let nl, grid, base = Lazy.force tiny in
  let m = Lazy.force lsk_model in
  let b = Budget.uniform ~lsk:m ~noise_v:0.15 ~gcell_um:nl.Netlist.gcell_um nl in
  let sens = Sensitivity.make ~seed:11 ~rate in
  ( nl,
    grid,
    base,
    b,
    Phase2.solve ~grid ~netlist:nl ~routes:base ~kth:(Budget.kth b)
      ~sensitivity:sens ~keff:tech.Tech.keff ~mode ~seed:3 () )

let test_phase2_covers_occupied () =
  let _, grid, base, _, p2 = phase2_of 0.30 in
  Array.iter
    (fun r ->
      List.iter
        (fun key ->
          match Phase2.find p2 key with
          | None -> Alcotest.fail "occupied region without solution"
          | Some s ->
              Alcotest.(check bool) "net in instance" true
                (Hashtbl.mem s.Phase2.k (Route.net r)))
        (Route.occupied grid r))
    base

let test_phase2_layouts_feasible () =
  let _, _, _, _, p2 = phase2_of 0.30 in
  let infeasible = ref 0 and total = ref 0 in
  Phase2.iter p2 (fun _ s ->
      incr total;
      if not (Layout.feasible s.Phase2.layout tech.Tech.keff) then incr infeasible);
  Alcotest.(check bool) "instances exist" true (!total > 0);
  Alcotest.(check int) "all min-area layouts feasible" 0 !infeasible

let test_phase2_order_only_no_shields () =
  let _, _, _, _, p2 = phase2_of ~mode:Phase2.Order_only 0.30 in
  Alcotest.(check int) "NO adds no shields" 0 (Phase2.total_shields p2)

let test_phase2_k_matches_layout () =
  let _, _, _, _, p2 = phase2_of 0.30 in
  Phase2.iter p2 (fun key s ->
      Array.iteri
        (fun li ki ->
          let gid = Instance.net_id s.Phase2.inst li in
          Alcotest.(check (float 1e-9)) "stored K matches layout" ki
            (Phase2.k_of p2 ~net:gid key))
        (Layout.k_all s.Phase2.layout tech.Tech.keff))

let test_phase2_regions_of_net () =
  let _, grid, base, _, p2 = phase2_of 0.30 in
  Array.iter
    (fun r ->
      let keys = Phase2.regions_of_net p2 (Route.net r) in
      List.iter
        (fun key ->
          Alcotest.(check bool) "membership consistent" true (List.mem key keys))
        (Route.occupied grid r))
    base

(* ------------------------------ Noise ------------------------------ *)

let test_noise_hand_computed () =
  (* single net, straight 2-edge horizontal route; uniform K from a
     one-net instance is 0 (no aggressors), so LSK = 0 *)
  let g = Grid.make ~w:4 ~h:1 ~hcap:4 ~vcap:4 in
  let nets = [| Net.make ~id:0 ~source:(p 0 0) ~sinks:[| p 2 0 |] |] in
  let nl = Netlist.make ~name:"n" ~grid_w:4 ~grid_h:1 ~gcell_um:100.0 nets in
  let routes =
    [| Route.of_edges g ~net:0 [ Grid.edge_id g (p 0 0) Dir.H; Grid.edge_id g (p 1 0) Dir.H ] |]
  in
  let m = Lazy.force lsk_model in
  let b = Budget.uniform ~lsk:m ~noise_v:0.15 ~gcell_um:100.0 nl in
  let p2 =
    Phase2.solve ~grid:g ~netlist:nl ~routes ~kth:(Budget.kth b)
      ~sensitivity:(Sensitivity.make ~seed:1 ~rate:1.0) ~keff:tech.Tech.keff
      ~mode:Phase2.Min_area ~seed:1 ()
  in
  let lsk =
    Noise.sink_lsk ~grid:g ~gcell_um:100.0 ~phase2:p2 routes.(0)
      ~source:(p 0 0) ~sink:(p 2 0)
  in
  Alcotest.(check (float 1e-9)) "lone net has zero LSK" 0.0 lsk;
  let violations =
    Noise.violations ~grid:g ~gcell_um:100.0 ~phase2:p2 ~lsk_model:m ~netlist:nl
      ~routes ~bound_v:0.15 ()
  in
  Alcotest.(check int) "no violations" 0 (List.length violations)

let test_noise_violations_sorted () =
  let nl, grid, base, _, p2 = phase2_of ~mode:Phase2.Order_only 0.50 in
  let m = Lazy.force lsk_model in
  let v =
    Noise.violations ~grid ~gcell_um:nl.Netlist.gcell_um ~phase2:p2 ~lsk_model:m
      ~netlist:nl ~routes:base ~bound_v:0.15 ()
  in
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "worst first" true (sorted v);
  List.iter
    (fun (_, noise) ->
      Alcotest.(check bool) "all above bound" true (noise > 0.15))
    v

(* ------------------------------ Flows ------------------------------ *)

let flows =
  lazy
    (let nl, grid, base = Lazy.force tiny in
     let config kind = { Flow.Config.default with Flow.Config.kind; seed = 3 } in
     let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity:sens30 nl in
     let isino = Flow.run ~grid ~base (config Flow.Isino) tech ~sensitivity:sens30 nl in
     let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity:sens30 nl in
     (nl, idno, isino, gsino))

let test_flow_idno_shape () =
  let _, idno, _, _ = Lazy.force flows in
  Alcotest.(check bool) "no refinement" true (idno.Flow.refine_stats = None);
  Alcotest.(check int) "no shields" 0 idno.Flow.shields;
  Alcotest.(check bool) "positive wire length" true (idno.Flow.avg_wl_um > 0.0)

let test_flow_sino_eliminates_violations () =
  let _, _, isino, gsino = Lazy.force flows in
  Alcotest.(check int) "iSINO violation-free" 0 (Flow.violation_count isino);
  Alcotest.(check int) "GSINO violation-free" 0 (Flow.violation_count gsino)

let test_flow_baselines_share_routes () =
  let _, idno, isino, _ = Lazy.force flows in
  Alcotest.(check (float 1e-9)) "identical wire length" idno.Flow.avg_wl_um
    isino.Flow.avg_wl_um

let test_flow_area_ordering () =
  let _, idno, isino, gsino = Lazy.force flows in
  let area r = match r.Flow.area with _, _, a -> a in
  Alcotest.(check bool) "iSINO area >= ID+NO (shields only add)" true
    (area isino >= area idno -. 1e-6);
  Alcotest.(check bool) "GSINO area >= ID+NO" true (area gsino >= area idno -. 1e-6)

let test_flow_violation_pct () =
  let _, idno, _, _ = Lazy.force flows in
  let pct = Flow.violation_pct idno in
  Alcotest.(check bool) "pct consistent with count" true
    (Float.abs
       (pct
       -. 100.0
          *. float_of_int (Flow.violation_count idno)
          /. float_of_int (Netlist.num_nets idno.Flow.netlist))
    < 1e-9)

let test_flow_refine_stats () =
  let _, _, isino, gsino = Lazy.force flows in
  List.iter
    (fun r ->
      match r.Flow.refine_stats with
      | None -> Alcotest.fail "refined flow must report stats"
      | Some s ->
          Alcotest.(check int) "no residual violations" 0 s.Refine.residual_violations)
    [ isino; gsino ]

let test_flow_kind_names () =
  Alcotest.(check string) "ID+NO" "ID+NO" (Flow.kind_name Flow.Id_no);
  Alcotest.(check string) "iSINO" "iSINO" (Flow.kind_name Flow.Isino);
  Alcotest.(check string) "GSINO" "GSINO" (Flow.kind_name Flow.Gsino)

let test_prepare_no_overflow_for_base () =
  let nl, grid, base = Lazy.force tiny in
  let u = Usage.of_routes grid ~gcell_um:nl.Netlist.gcell_um (Array.to_list base) in
  (* capacities were clamped at the q=0.90 regional demand: only the top
     decile of regions may overflow, and only mildly *)
  let over = ref 0 and regions = Grid.num_regions grid in
  for r = 0 to regions - 1 do
    List.iter (fun d -> if Usage.overflow u r d > 0 then incr over) Dir.all
  done;
  Alcotest.(check bool)
    (Printf.sprintf "overflowing region-dirs %d <= 20%%" !over)
    true
    (float_of_int !over <= 0.2 *. float_of_int (2 * regions))

(* ------------------------------ Report ----------------------------- *)

let test_paper_reference_values () =
  Alcotest.(check (option (float 1e-9))) "ibm01@30" (Some 14.60)
    (Report.Paper.violations "ibm01" 0.30);
  Alcotest.(check (option (float 1e-9))) "ibm05@50" (Some 24.07)
    (Report.Paper.violations "ibm05" 0.50);
  Alcotest.(check (option (float 1e-9))) "ibm02 wl" (Some 724.)
    (Report.Paper.avg_wl "ibm02");
  Alcotest.(check (option (float 1e-9))) "ibm03 wl overhead @50" (Some 16.38)
    (Report.Paper.wl_overhead "ibm03" 0.50);
  Alcotest.(check (option (float 1e-9))) "ibm04 isino area @30" (Some 16.78)
    (Report.Paper.area_overhead "ibm04" 0.30 `Isino);
  Alcotest.(check (option (float 1e-9))) "ibm06 gsino area @50" (Some 11.00)
    (Report.Paper.area_overhead "ibm06" 0.50 `Gsino);
  Alcotest.(check (option (float 1e-9))) "unknown circuit" None
    (Report.Paper.violations "ibm42" 0.30);
  Alcotest.(check (option (float 1e-9))) "unknown rate" None
    (Report.Paper.violations "ibm01" 0.42)

let test_report_runs_and_prints () =
  let suite =
    Report.run_suite ~profiles:[ Generator.ibm01 ] ~rates:[ 0.30 ] ~scale:0.02
      ~seed:7 ()
  in
  Alcotest.(check int) "one run" 1 (List.length suite.Report.runs);
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.table1 fmt suite;
  Report.table2 fmt suite;
  Report.table3 fmt suite;
  Report.violations_summary fmt suite;
  Report.timing_summary fmt suite;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions circuit" true
    (String.length out > 0 && contains "ibm01" out && contains "GSINO" out)

(* --------------------------- extra coverage ------------------------ *)

let test_weights_gamma_matters () =
  (* with the overflow term disabled, the router packs the shortest rows
     and overflows; with gamma = 50 it balances *)
  let g = Grid.make ~w:2 ~h:4 ~hcap:3 ~vcap:8 in
  let nets =
    Array.init 9 (fun id -> Net.make ~id ~source:(p 0 1) ~sinks:[| p 1 1 |])
  in
  let nl = Netlist.make ~name:"gam" ~grid_w:2 ~grid_h:4 ~gcell_um:50.0 nets in
  let overflow weights =
    let routes = Id_router.route ~grid:g ~netlist:nl ~weights () in
    Usage.total_overflow
      (Usage.of_routes g ~gcell_um:50.0 (Array.to_list routes))
  in
  let balanced = overflow { Id_router.alpha = 2.; beta = 1.; gamma = 50. } in
  let greedy_wl = overflow { Id_router.alpha = 2.; beta = 0.; gamma = 0. } in
  Alcotest.(check bool)
    (Printf.sprintf "gamma reduces overflow (%d <= %d)" balanced greedy_wl)
    true
    (balanced <= greedy_wl)

let test_prepare_cap_quantile () =
  let nl, _, _ = Lazy.force tiny in
  let g_tight, _ =
    Flow.prepare
      ~config:{ Flow.Config.default with Flow.Config.cap_quantile = 0.5 }
      tech nl
  in
  let g_loose, _ =
    Flow.prepare
      ~config:{ Flow.Config.default with Flow.Config.cap_quantile = 1.0 }
      tech nl
  in
  let cap g d = Grid.cap g (p 0 0) d in
  Alcotest.(check bool) "lower quantile, tighter caps" true
    (cap g_tight Dir.H <= cap g_loose Dir.H
    && cap g_tight Dir.V <= cap g_loose Dir.V)

let test_demand_quantile () =
  let grid = Grid.make ~w:2 ~h:1 ~hcap:8 ~vcap:8 in
  let route = Route.of_edges grid ~net:0 [ Grid.edge_id grid (p 0 0) Dir.H ] in
  let usage = Usage.of_routes grid ~gcell_um:100.0 [ route ] in
  (* both regions hold one H track, no V tracks *)
  Alcotest.(check int) "H demand" 1 (Flow.demand_quantile usage grid 0.9 Dir.H);
  Alcotest.(check int) "V demand" 0 (Flow.demand_quantile usage grid 0.9 Dir.V)

let test_lsk_model_cached () =
  let m1 = Tech.lsk_model Tech.default in
  let m2 = Tech.lsk_model Tech.default in
  Alcotest.(check bool) "same table object" true (m1 == m2)

let test_report_run_circuit_shares_setup () =
  let runs =
    Report.run_circuit ~scale:0.02 ~seed:7 Generator.ibm01 [ 0.30; 0.50 ]
  in
  Alcotest.(check int) "two runs" 2 (List.length runs);
  match runs with
  | [ a; b ] ->
      (* both rates share the identical base routing *)
      Alcotest.(check (float 1e-9)) "same base WL" a.Report.idno.Flow.avg_wl_um
        b.Report.idno.Flow.avg_wl_um;
      Alcotest.(check bool) "violations grow with rate" true
        (Flow.violation_count b.Report.idno >= Flow.violation_count a.Report.idno)
  | _ -> Alcotest.fail "expected two runs"

let suites =
  [
    ( "gsino.budget",
      [
        Alcotest.test_case "two-pin kth" `Quick test_budget_two_pin;
        Alcotest.test_case "min over sinks" `Quick test_budget_min_over_sinks;
        Alcotest.test_case "sampler" `Quick test_budget_sampler;
        Alcotest.test_case "tighter for longer" `Quick test_budget_tighter_for_longer;
      ] );
    ( "gsino.shield_demand",
      [ Alcotest.test_case "monotone and bounded" `Quick test_shield_demand ] );
    ( "gsino.id_router",
      [
        Alcotest.test_case "steiner route connects" `Quick test_steiner_route_connects;
        Alcotest.test_case "routes all nets" `Slow test_router_routes_all;
        Alcotest.test_case "deterministic" `Slow test_router_deterministic;
        Alcotest.test_case "stays near bbox" `Slow test_router_stays_near_bbox;
        Alcotest.test_case "big-net fallback" `Quick test_router_big_net_fallback;
        Alcotest.test_case "congestion balancing" `Quick test_router_congestion_balancing;
      ] );
    ( "gsino.phase2",
      [
        Alcotest.test_case "covers occupied regions" `Slow test_phase2_covers_occupied;
        Alcotest.test_case "layouts feasible" `Slow test_phase2_layouts_feasible;
        Alcotest.test_case "order-only adds no shields" `Slow test_phase2_order_only_no_shields;
        Alcotest.test_case "k matches layout" `Slow test_phase2_k_matches_layout;
        Alcotest.test_case "regions_of_net" `Slow test_phase2_regions_of_net;
      ] );
    ( "gsino.noise",
      [
        Alcotest.test_case "hand computed" `Slow test_noise_hand_computed;
        Alcotest.test_case "violations sorted" `Slow test_noise_violations_sorted;
      ] );
    ( "gsino.flow",
      [
        Alcotest.test_case "ID+NO shape" `Slow test_flow_idno_shape;
        Alcotest.test_case "SINO flows eliminate violations" `Slow
          test_flow_sino_eliminates_violations;
        Alcotest.test_case "baselines share routes" `Slow test_flow_baselines_share_routes;
        Alcotest.test_case "area ordering" `Slow test_flow_area_ordering;
        Alcotest.test_case "violation pct" `Slow test_flow_violation_pct;
        Alcotest.test_case "refine stats" `Slow test_flow_refine_stats;
        Alcotest.test_case "kind names" `Quick test_flow_kind_names;
        Alcotest.test_case "prepare keeps base overflow low" `Slow
          test_prepare_no_overflow_for_base;
      ] );
    ( "gsino.coverage",
      [
        Alcotest.test_case "gamma matters" `Quick test_weights_gamma_matters;
        Alcotest.test_case "prepare cap quantile" `Slow test_prepare_cap_quantile;
        Alcotest.test_case "demand quantile" `Quick test_demand_quantile;
        Alcotest.test_case "lsk model cached" `Slow test_lsk_model_cached;
        Alcotest.test_case "run_circuit shares setup" `Slow
          test_report_run_circuit_shares_setup;
      ] );
    ( "gsino.report",
      [
        Alcotest.test_case "paper reference values" `Quick test_paper_reference_values;
        Alcotest.test_case "suite runs and prints" `Slow test_report_runs_and_prints;
      ] );
  ]
