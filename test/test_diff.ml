(* Tests for Eda_obs.Diff and the metrics JSON import path it rides on:
   snapshot round-trips through gsino-metrics-v1, histogram quantiles,
   diff classification, and the regression-policy gate. *)
module Json = Eda_obs.Json
module Metrics = Eda_obs.Metrics
module Diff = Eda_obs.Diff

let fresh () =
  Metrics.reset ();
  Eda_obs.Trace.disable ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let of_json_exn j =
  match Metrics.of_json j with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_json: %s" msg

let policy_of_string s =
  match Json.of_string s with
  | Error msg -> Alcotest.failf "policy json: %s" msg
  | Ok j -> (
      match Diff.policy_of_json j with
      | Ok p -> p
      | Error msg -> Alcotest.failf "policy_of_json: %s" msg)

(* ------------------------- snapshot import -------------------------- *)

let test_snapshot_json_roundtrip () =
  fresh ();
  Metrics.add (Metrics.counter "t.c") 7;
  Metrics.add (Metrics.counter ~labels:[ ("kind", "GSINO") ] "t.c") 3;
  Metrics.set (Metrics.gauge "t.g") 2.5;
  let h = Metrics.histogram ~labels:[ ("phase", "x") ] "t.h" in
  List.iter (Metrics.observe h) [ 0.4; 3.0; 3.5; 700.0 ];
  let snap = Metrics.snapshot () in
  let snap' = of_json_exn (Metrics.to_json snap) in
  Alcotest.(check bool)
    "of_json (to_json s) = s" true
    (Metrics.entries snap = Metrics.entries snap')

let test_empty_histogram_roundtrip () =
  fresh ();
  ignore (Metrics.histogram "t.empty");
  let snap = Metrics.snapshot () in
  let snap' = of_json_exn (Metrics.to_json snap) in
  (* min/max are non-finite when empty; the JSON encodes them as null *)
  Alcotest.(check bool)
    "empty histogram survives" true
    (Metrics.entries snap = Metrics.entries snap')

let test_of_json_rejects () =
  let bad s =
    match Json.of_string s with
    | Error _ -> true
    | Ok j -> (
        match Metrics.of_json j with Ok _ -> false | Error _ -> true)
  in
  Alcotest.(check bool) "wrong schema" true
    (bad "{\"schema\":\"nope\",\"metrics\":[]}");
  Alcotest.(check bool) "missing metrics" true
    (bad "{\"schema\":\"gsino-metrics-v1\"}");
  Alcotest.(check bool) "bad kind" true
    (bad
       "{\"schema\":\"gsino-metrics-v1\",\"metrics\":[{\"name\":\"x\",\"labels\":{},\"kind\":\"meter\",\"value\":1}]}");
  Alcotest.(check bool) "bad bucket le" true
    (bad
       "{\"schema\":\"gsino-metrics-v1\",\"metrics\":[{\"name\":\"x\",\"labels\":{},\"kind\":\"histogram\",\"count\":1,\"sum\":3.0,\"min\":3.0,\"max\":3.0,\"buckets\":[{\"le\":3.0,\"count\":1}]}]}")

(* --------------------------- quantiles ------------------------------ *)

let test_quantile () =
  fresh ();
  let h = Metrics.histogram "t.q" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let s = Metrics.histogram_summary h in
  let q p = Metrics.quantile s p in
  Alcotest.(check bool) "p0 = min" true (q 0.0 = 1.0);
  Alcotest.(check bool) "p100 = max" true (q 1.0 = 100.0);
  (* log2 buckets: interior quantiles are right within a factor of 2 *)
  Alcotest.(check bool) "p50 in [25,100]" true (q 0.5 >= 25.0 && q 0.5 <= 100.0);
  Alcotest.(check bool) "p95 in [47,100]" true (q 0.95 >= 47.0 && q 0.95 <= 100.0);
  Alcotest.(check bool) "monotone" true (q 0.5 <= q 0.95 && q 0.95 <= q 0.99);
  let empty = Metrics.histogram_summary (Metrics.histogram "t.q.empty") in
  Alcotest.(check bool) "empty -> 0" true (Metrics.quantile empty 0.5 = 0.0)

(* ------------------------------ diff -------------------------------- *)

(* Build a snapshot via the JSON import, not the global registry —
   registrations survive Metrics.reset, so registry-built snapshots can
   never *lack* a series another test registered. *)
let snap_json entries =
  let metric (name, labels, v) =
    Json.Obj
      [
        ("name", Json.Str name);
        ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels));
        ("kind", Json.Str "counter");
        ("value", Json.Int v);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "gsino-metrics-v1");
      ("metrics", Json.List (List.map metric entries));
    ]

let snap_of entries = of_json_exn (snap_json entries)

let test_diff_classification () =
  let before = snap_of [ ("a", [], 1); ("b", [], 2); ("c", [], 3) ] in
  let after = snap_of [ ("b", [], 2); ("c", [], 9); ("d", [], 4) ] in
  let entries = Diff.diff before after in
  let change name =
    match List.find_opt (fun e -> e.Diff.name = name) entries with
    | Some e -> e.Diff.change
    | None -> Alcotest.failf "series %s missing from diff" name
  in
  (match change "a" with
  | Diff.Removed s -> Alcotest.(check bool) "removed value" true (s.Diff.value = 1.0)
  | Diff.Added _ | Diff.Changed _ | Diff.Unchanged _ ->
      Alcotest.fail "a should be Removed");
  (match change "b" with
  | Diff.Unchanged _ -> ()
  | Diff.Added _ | Diff.Removed _ | Diff.Changed _ ->
      Alcotest.fail "b should be Unchanged");
  (match change "c" with
  | Diff.Changed { before = b; after = a; _ } ->
      Alcotest.(check bool) "delta" true (b = 3.0 && a = 9.0)
  | Diff.Added _ | Diff.Removed _ | Diff.Unchanged _ ->
      Alcotest.fail "c should be Changed");
  (match change "d" with
  | Diff.Added s -> Alcotest.(check bool) "added value" true (s.Diff.value = 4.0)
  | Diff.Removed _ | Diff.Changed _ | Diff.Unchanged _ ->
      Alcotest.fail "d should be Added");
  Alcotest.(check int) "changed count" 3
    (List.length (List.filter Diff.changed entries))

let test_diff_labels_align () =
  let before = snap_of [ ("m", [ ("kind", "A") ], 1); ("m", [ ("kind", "B") ], 2) ] in
  let after = snap_of [ ("m", [ ("kind", "A") ], 1); ("m", [ ("kind", "B") ], 5) ] in
  let entries = Diff.diff before after in
  Alcotest.(check int) "two series" 2 (List.length entries);
  Alcotest.(check int) "only B drifted" 1
    (List.length (List.filter Diff.changed entries))

(* ----------------------------- policy ------------------------------- *)

let gate policy before after = Diff.check policy (Diff.diff before after)

let test_policy_parse () =
  let p =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"tolerances\":[{\"metric\":\"m\",\"max_abs\":2,\"direction\":\"both\"},{\"metric\":\"n\",\"max_rel\":0.05}]}"
  in
  Alcotest.(check int) "two tolerances" 2 (List.length p.Diff.tolerances);
  (match p.Diff.tolerances with
  | [ t1; t2 ] ->
      Alcotest.(check bool) "m abs" true (t1.Diff.max_abs = Some 2.0);
      Alcotest.(check bool) "m dir" true (t1.Diff.direction = Diff.Any_change);
      Alcotest.(check bool) "n rel" true (t2.Diff.max_rel = Some 0.05);
      Alcotest.(check bool) "n dir defaults up" true (t2.Diff.direction = Diff.Up)
  | _ -> Alcotest.fail "tolerance list shape");
  match Json.of_string "{\"schema\":\"gsino-diff-policy-v1\"}" with
  | Error msg -> Alcotest.failf "setup: %s" msg
  | Ok j -> (
      match Diff.policy_of_json j with
      | Ok _ -> Alcotest.fail "missing tolerances accepted"
      | Error _ -> ())

let test_policy_within_tolerance () =
  let p =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"tolerances\":[{\"metric\":\"m\",\"max_abs\":2}]}"
  in
  let before = snap_of [ ("m", [], 10) ] in
  let after = snap_of [ ("m", [], 12) ] in
  Alcotest.(check int) "within abs" 0 (List.length (gate p before after));
  let worse = snap_of [ ("m", [], 13) ] in
  Alcotest.(check int) "beyond abs" 1 (List.length (gate p before worse))

let test_policy_direction_up_allows_improvement () =
  let p =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"tolerances\":[{\"metric\":\"m\",\"max_abs\":0}]}"
  in
  let before = snap_of [ ("m", [], 10) ] in
  let better = snap_of [ ("m", [], 2) ] in
  Alcotest.(check int) "drop is not a breach" 0
    (List.length (gate p before better));
  let worse = snap_of [ ("m", [], 11) ] in
  Alcotest.(check int) "rise is" 1 (List.length (gate p before worse))

let test_policy_rel_tolerance () =
  let p =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"tolerances\":[{\"metric\":\"m\",\"max_rel\":0.10}]}"
  in
  let before = snap_of [ ("m", [], 100) ] in
  Alcotest.(check int) "9% ok" 0
    (List.length (gate p before (snap_of [ ("m", [], 109) ])));
  Alcotest.(check int) "11% breach" 1
    (List.length (gate p before (snap_of [ ("m", [], 111) ])))

let test_policy_added_removed_absent_breach () =
  let p =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"tolerances\":[{\"metric\":\"m\",\"max_abs\":100}]}"
  in
  let with_m = snap_of [ ("m", [], 1); ("x", [], 1) ] in
  let without_m = snap_of [ ("x", [], 1) ] in
  Alcotest.(check int) "guarded series removed" 1
    (List.length (gate p with_m without_m));
  Alcotest.(check int) "guarded series added" 1
    (List.length (gate p without_m with_m));
  (* a guarded metric in neither snapshot means the policy is stale *)
  match gate p without_m without_m with
  | [ b ] -> Alcotest.(check bool) "absent flagged" true (b.Diff.entry = None)
  | l -> Alcotest.failf "expected 1 absent-breach, got %d" (List.length l)

let test_pp_entry_renders () =
  let before = snap_of [ ("m", [ ("kind", "A") ], 3) ] in
  let after = snap_of [ ("m", [ ("kind", "A") ], 5) ] in
  match Diff.diff before after with
  | [ e ] ->
      let s = Format.asprintf "%a" Diff.pp_entry e in
      Alcotest.(check bool) "series name" true (contains ~sub:"m{kind=A}" s)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

(* ----------------------------- exclude ------------------------------ *)

let test_policy_exclude_parse_and_filter () =
  let p =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"exclude\":[\"prof.\",\"gc.\"],\"tolerances\":[{\"metric\":\"m\",\"max_abs\":0}]}"
  in
  Alcotest.(check (list string)) "prefixes kept in order" [ "prof."; "gc." ]
    p.Diff.exclude;
  Alcotest.(check bool) "prefix matches" true (Diff.excluded p "prof.self_us");
  Alcotest.(check bool) "other names pass" false
    (Diff.excluded p "flow.violations");
  Alcotest.(check bool) "prefix, not substring" false
    (Diff.excluded p "xprof.self_us");
  (* excluded series vanish from the diff before rendering and gating:
     a wild prof.* drift must not trip the m guard *)
  let before =
    snap_of [ ("m", [], 1); ("prof.self_us", [], 10); ("gc.minor_words", [], 5) ]
  in
  let after = snap_of [ ("m", [], 1); ("prof.self_us", [], 9999) ] in
  let entries = Diff.apply_exclude p (Diff.diff before after) in
  Alcotest.(check (list string)) "only the guarded series left" [ "m" ]
    (List.map (fun e -> e.Diff.name) entries);
  Alcotest.(check int) "gate unaffected by volatile drift" 0
    (List.length (Diff.check p entries));
  (* a policy without the key parses to no excludes *)
  let p0 =
    policy_of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"tolerances\":[{\"metric\":\"m\"}]}"
  in
  Alcotest.(check (list string)) "default empty" [] p0.Diff.exclude;
  (* non-string members are rejected *)
  match
    Json.of_string
      "{\"schema\":\"gsino-diff-policy-v1\",\"exclude\":[1],\"tolerances\":[]}"
  with
  | Error msg -> Alcotest.failf "setup: %s" msg
  | Ok j -> (
      match Diff.policy_of_json j with
      | Ok _ -> Alcotest.fail "numeric exclude accepted"
      | Error _ -> ())

(* ----------------------------- history ------------------------------ *)

let history_file lines =
  let path = Filename.temp_file "gsino_hist" ".jsonl" in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  path

let history_line ts metrics =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "gsino-bench-history-v1");
         ("ts", Json.Int ts);
         ("scale", Json.Float 0.1);
         ("seed", Json.Int 7);
         ("snapshot", snap_json metrics);
       ])

let test_history_load_and_trends () =
  let path =
    history_file
      [
        history_line 1000 [ ("m", [], 1); ("once", [], 3) ];
        "";
        (* blank lines are skipped *)
        history_line 2000
          [ ("m", [ ("kind", "A") ], 2); ("m", [ ("kind", "B") ], 3) ];
        history_line 4600 [ ("m", [], 9) ];
      ]
  in
  (match Diff.History.load path with
  | Error msg -> Alcotest.failf "load: %s" msg
  | Ok entries ->
      Alcotest.(check int) "three snapshots" 3 (List.length entries);
      (match entries with
      | e :: _ ->
          Alcotest.(check bool) "ts" true (e.Diff.History.ts = 1000.0);
          Alcotest.(check bool) "meta carries scale/seed" true
            (List.mem ("scale", "0.1") e.Diff.History.meta
            && List.mem ("seed", "7") e.Diff.History.meta)
      | [] -> Alcotest.fail "no entries");
      let trends = Diff.History.trends entries in
      (match List.find_opt (fun t -> t.Diff.History.name = "m") trends with
      | Some t ->
          Alcotest.(check int) "m in all three" 3 t.Diff.History.n;
          (* the middle snapshot's two label sets sum to one scalar *)
          Alcotest.(check bool) "envelope" true
            (t.Diff.History.first = 1.0 && t.Diff.History.last = 9.0
           && t.Diff.History.lo = 1.0 && t.Diff.History.hi = 9.0)
      | None -> Alcotest.fail "trend for m missing");
      match List.find_opt (fun t -> t.Diff.History.name = "once") trends with
      | Some t ->
          Alcotest.(check int) "sparse series counted once" 1 t.Diff.History.n
      | None -> Alcotest.fail "trend for once missing");
  Sys.remove path

let test_history_single_snapshot () =
  (* bench's very first run appends exactly one snapshot: --history must
     render first/last and an "n/a" drift, never +0.0%, NaN or a
     division by zero *)
  let path = history_file [ history_line 1000 [ ("m", [], 5) ] ] in
  (match Diff.History.load path with
  | Error msg -> Alcotest.failf "load: %s" msg
  | Ok entries ->
      let trends = Diff.History.trends entries in
      let t = List.find (fun t -> t.Diff.History.name = "m") trends in
      Alcotest.(check int) "one snapshot" 1 t.Diff.History.n;
      let line = Format.asprintf "%a" Diff.History.pp_trend t in
      Alcotest.(check bool) "drift renders n/a" true (contains ~sub:"n/a" line);
      Alcotest.(check bool) "no percentage printed" false
        (contains ~sub:"%" line));
  Sys.remove path;
  (* a non-finite series start must not leak NaN% into the drift column *)
  let t =
    {
      Diff.History.name = "x";
      n = 3;
      first = Float.nan;
      last = 2.0;
      lo = 1.0;
      hi = 2.0;
    }
  in
  let line = Format.asprintf "%a" Diff.History.pp_trend t in
  Alcotest.(check bool) "nan first renders n/a" true (contains ~sub:"n/a" line);
  Alcotest.(check bool) "nan first prints no percentage" false
    (contains ~sub:"%" line)

let test_history_rejects_malformed () =
  let path =
    history_file [ history_line 1000 [ ("m", [], 1) ]; "{not json" ]
  in
  (match Diff.History.load path with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (contains ~sub:":2:" msg));
  Sys.remove path;
  let path2 = history_file [ "{\"schema\":\"gsino-bench-history-v1\"}" ] in
  (match Diff.History.load path2 with
  | Ok _ -> Alcotest.fail "entry without ts/snapshot accepted"
  | Error _ -> ());
  Sys.remove path2;
  match Diff.History.load "/nonexistent/gsino_history.jsonl" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

let suites =
  [
    ( "obs.diff",
      [
        Alcotest.test_case "snapshot json roundtrip" `Quick
          test_snapshot_json_roundtrip;
        Alcotest.test_case "empty histogram roundtrip" `Quick
          test_empty_histogram_roundtrip;
        Alcotest.test_case "of_json rejects" `Quick test_of_json_rejects;
        Alcotest.test_case "quantile" `Quick test_quantile;
        Alcotest.test_case "classification" `Quick test_diff_classification;
        Alcotest.test_case "labels align" `Quick test_diff_labels_align;
        Alcotest.test_case "policy parse" `Quick test_policy_parse;
        Alcotest.test_case "abs tolerance" `Quick test_policy_within_tolerance;
        Alcotest.test_case "up allows improvement" `Quick
          test_policy_direction_up_allows_improvement;
        Alcotest.test_case "rel tolerance" `Quick test_policy_rel_tolerance;
        Alcotest.test_case "added/removed/absent breach" `Quick
          test_policy_added_removed_absent_breach;
        Alcotest.test_case "pp_entry" `Quick test_pp_entry_renders;
        Alcotest.test_case "exclude prefixes" `Quick
          test_policy_exclude_parse_and_filter;
        Alcotest.test_case "history load + trends" `Quick
          test_history_load_and_trends;
        Alcotest.test_case "history single snapshot" `Quick
          test_history_single_snapshot;
        Alcotest.test_case "history rejects malformed" `Quick
          test_history_rejects_malformed;
      ] );
  ]
