#!/usr/bin/env bash
# Serve-daemon contract test: the robustness claims reachable from the
# command line.
#
# - daemon starts, ping/stats/route round-trip, exit codes mirror the
#   batch drivers (0 ok, 1 findings, 5 injected internal, 7 client i/o)
# - an injected serve.request fault (GSINO_FAULTS) comes back as a
#   framed GSL0022 error on that request only — the daemon answers the
#   next well-formed request
# - a request deadline degrades the request (batch-compatible exit 1
#   with GSL findings), daemon unaffected
# - a malformed raw frame gets a typed GSL0030 reject, daemon unaffected
# - SIGTERM drains gracefully: exit 0, no orphaned socket file, the
#   daemon-lifetime serve.* metrics flushed
#
# Every check also asserts no uncaught exception leaked (no OCaml
# "Fatal error" banner / backtrace on stderr).
set -u

SERVE=$(realpath "$1")

work=$(mktemp -d)
cd "$work"

DAEMON_PID=""
FAULT_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  [ -n "$FAULT_PID" ] && kill -9 "$FAULT_PID" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

failures=0

expect() {
  local want="$1" desc="$2"
  shift 3
  "$@" >stdout.log 2>stderr.log
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $desc: exit $got, expected $want"
    sed 's/^/  stderr: /' stderr.log
    failures=$((failures + 1))
  elif grep -qE "Fatal error|Raised at|Raised by" stderr.log; then
    echo "FAIL $desc: uncaught exception reached the CLI"
    sed 's/^/  stderr: /' stderr.log
    failures=$((failures + 1))
  else
    echo "ok   $desc (exit $got)"
  fi
}

expect_stderr() {
  local pat
  for pat in "$@"; do
    if ! grep -q -- "$pat" stderr.log; then
      echo "FAIL stderr missing '$pat'"
      sed 's/^/  stderr: /' stderr.log
      failures=$((failures + 1))
    fi
  done
}

wait_socket() {
  local sock="$1" i
  for i in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    sleep 0.1
  done
  echo "FAIL daemon never bound $sock"
  failures=$((failures + 1))
  return 1
}

base=(-c ibm01 -s 0.02 --seed 7)

# ---- main daemon ----
"$SERVE" daemon --socket main.sock -w 2 -j 1 --panel-cache pc \
  --metrics daemon-metrics.json -q &
DAEMON_PID=$!
wait_socket main.sock

expect 0 "ping" -- "$SERVE" ping --socket main.sock
expect 0 "stats" -- "$SERVE" stats --socket main.sock
expect 0 "route ok" -- "$SERVE" route --socket main.sock "${base[@]}" -k gsino
grep -q "gsino_serve: ok:" stdout.log || {
  echo "FAIL route: no summary line"; failures=$((failures + 1)); }

# deadline expiry degrades this request only: batch-compatible exit 1
# (Error-severity GSL findings on the degraded result), daemon alive
expect 1 "deadline-degraded route" -- \
  "$SERVE" route --socket main.sock "${base[@]}" -k gsino --deadline 1
expect 0 "ping after degraded request" -- "$SERVE" ping --socket main.sock

# malformed raw frame: typed GSL0030 reject, daemon keeps serving
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' >raw.out
import socket, struct
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect("main.sock")
s.sendall(struct.pack(">I", 16) + b"this is not json")
buf = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
print(buf[4:].decode("utf-8", "replace"))
EOF
  if grep -q '"gsl": *30' raw.out || grep -q '"gsl":30' raw.out; then
    echo "ok   malformed frame gets framed GSL0030 reject"
  else
    echo "FAIL malformed frame: no framed GSL0030 reject"
    sed 's/^/  raw: /' raw.out
    failures=$((failures + 1))
  fi
  expect 0 "ping after malformed frame" -- "$SERVE" ping --socket main.sock
fi

# ---- fault-injected daemon: the serve.request fault-matrix row ----
env GSINO_FAULTS="serve.request=raise#7" \
  "$SERVE" daemon --socket fault.sock -w 1 -j 1 -q &
FAULT_PID=$!
wait_socket fault.sock

expect 5 "injected serve.request fault is framed" -- \
  "$SERVE" route --socket fault.sock "${base[@]}" -k gsino
expect_stderr "GSL0022"
expect 0 "daemon still serves after injected fault" -- \
  "$SERVE" ping --socket fault.sock
expect 5 "fault still isolated on a second request" -- \
  "$SERVE" route --socket fault.sock "${base[@]}" -k gsino

kill -TERM "$FAULT_PID"
wait "$FAULT_PID"
code=$?
FAULT_PID=""
if [ "$code" -ne 0 ]; then
  echo "FAIL fault daemon drain: exit $code"
  failures=$((failures + 1))
else
  echo "ok   fault daemon drains clean (exit 0)"
fi

# ---- client i/o failure: unreachable daemon is a typed exit 7 ----
expect 7 "unreachable daemon" -- "$SERVE" ping --socket no-such.sock
expect_stderr "GSL0032"

# ---- graceful drain: SIGTERM, exit 0, no orphaned socket ----
expect 0 "stats before drain" -- "$SERVE" stats --socket main.sock
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
code=$?
DAEMON_PID=""
if [ "$code" -ne 0 ]; then
  echo "FAIL SIGTERM drain: daemon exit $code"
  failures=$((failures + 1))
else
  echo "ok   SIGTERM drain exits 0"
fi
if [ -e main.sock ]; then
  echo "FAIL drain left an orphaned socket"
  failures=$((failures + 1))
else
  echo "ok   drained daemon unlinked its socket"
fi
if grep -q "serve.served" daemon-metrics.json; then
  echo "ok   daemon-lifetime serve.* metrics flushed"
else
  echo "FAIL daemon metrics missing serve.* series"
  failures=$((failures + 1))
fi
if [ -f pc/panels.v1 ]; then
  echo "ok   drain flushed the on-disk panel cache"
else
  echo "FAIL drain did not flush the panel cache"
  failures=$((failures + 1))
fi

if [ "$failures" -gt 0 ]; then
  echo "$failures serve check(s) failed"
  exit 1
fi
echo "all serve checks passed"
