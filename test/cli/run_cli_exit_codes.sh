#!/usr/bin/env bash
# CLI exit-code contract test for the five gsino drivers.
#
# Exercises every failure class reachable from a command line and
# asserts the documented exit status (see README "Failure modes &
# degradation"): 0 ok/degraded, 1 findings or regression breach,
# 2 usage or input error, 5 internal (injected worker crash GSL0022,
# non-finite value GSL0023).  Classes that no CLI path can reach —
# infeasible under Fail (3) and a hard deadline error (4) — have their
# mapping covered in test/test_guard.ml.
#
# Every invocation also checks that no uncaught exception leaked: a
# typed failure prints exactly one GSL-coded line, never an OCaml
# "Fatal error" banner or a backtrace.
set -u

RUN=$(realpath "$1")
LINT=$(realpath "$2")
DIFF=$(realpath "$3")
POLICY=$(realpath "$4")
BASELINE=$(realpath "$5")
AUDIT=$(realpath "$6")
FIXTURE=$(realpath "$7")
EXPLAIN=$(realpath "$8")

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work"

failures=0

# expect CODE DESC -- cmd args...
expect() {
  local want="$1" desc="$2"
  shift 3
  "$@" >stdout.log 2>stderr.log
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $desc: exit $got, expected $want"
    sed 's/^/  stderr: /' stderr.log
    failures=$((failures + 1))
  elif grep -qE "Fatal error|Raised at|Raised by" stderr.log; then
    echo "FAIL $desc: uncaught exception reached the CLI"
    sed 's/^/  stderr: /' stderr.log
    failures=$((failures + 1))
  else
    echo "ok   $desc (exit $got)"
  fi
}

# stderr of the last expect must contain every given pattern
expect_stderr() {
  local pat
  for pat in "$@"; do
    if ! grep -q -- "$pat" stderr.log; then
      echo "FAIL stderr missing '$pat'"
      sed 's/^/  stderr: /' stderr.log
      failures=$((failures + 1))
    fi
  done
}

# stdout of the last expect must contain every given pattern
expect_stdout() {
  local pat
  for pat in "$@"; do
    if ! grep -q "$pat" stdout.log; then
      echo "FAIL stdout missing '$pat'"
      sed 's/^/  stdout: /' stdout.log
      failures=$((failures + 1))
    fi
  done
}

# a metric series must exist in a snapshot file
expect_metric() {
  local file="$1" name="$2"
  if ! grep -q "\"$name\"" "$file"; then
    echo "FAIL $file: missing metric $name"
    failures=$((failures + 1))
  fi
}

base=(-c ibm01 -s 0.02 --seed 7 -q)

# ---- exit 0: clean runs ----
expect 0 "gsino_run clean" -- "$RUN" run "${base[@]}" --jobs 1 \
  --metrics clean.json
expect 0 "gsino_lint clean" -- "$LINT" "${base[@]}"
expect 0 "gsino_audit clean" -- "$AUDIT" "${base[@]}" --metrics audit.json
expect_metric audit.json "analyze.runs"
expect_metric audit.json "analyze.cut_overflows"
expect_metric audit.json "analyze.findings"
# the flow's pre-route audit pass is an exit-0 no-op on a healthy instance
expect 0 "gsino_run --audit clean" -- "$RUN" run "${base[@]}" --jobs 1 --audit

# ---- exit 2: usage / input errors ----
printf 'gsino-netlist v1\nname bad\ngrid 4 4 10\nnet 0 0 0 9 9\n' >bad.nl
expect 2 "gsino_run parse error (GSL0020)" -- "$RUN" run -q --netlist bad.nl
expect_stderr "GSL0020" "line 4" "9 9"
expect 2 "gsino_lint parse error (GSL0020)" -- "$LINT" -q --netlist bad.nl
expect_stderr "GSL0020"
expect 2 "gsino_audit parse error (GSL0020)" -- "$AUDIT" -q --netlist bad.nl
expect_stderr "GSL0020"
expect 2 "malformed GSINO_FAULTS spec" -- \
  env GSINO_FAULTS="bogus" "$RUN" run "${base[@]}"
expect_stderr "GSINO_FAULTS"
expect 2 "gsino_diff missing snapshot" -- "$DIFF" missing.json clean.json
# two artifact sinks may not both claim stdout: one coded usage error,
# exit 2, before any work starts
expect 2 "conflicting stdout sinks (GSL0029)" -- \
  "$RUN" run "${base[@]}" --metrics - --trace -
expect_stderr "GSL0029" "--trace" "--metrics"
expect 2 "conflicting stdout sinks journal+report (GSL0029)" -- \
  "$RUN" run "${base[@]}" --journal - --report -
expect_stderr "GSL0029" "--journal" "--report"

# ---- journal + explain round trip ----
expect 0 "gsino_run --journal" -- "$RUN" run "${base[@]}" --jobs 2 \
  --journal j.jsonl
if [ ! -s j.jsonl ]; then
  echo "FAIL --journal wrote no events"
  failures=$((failures + 1))
fi
expect 0 "gsino_explain default views" -- "$EXPLAIN" j.jsonl --top 3
expect_stdout "net.route" "panel.solve" "Top 3 nets by route churn" \
  "Panel signatures"
expect 0 "gsino_explain --by-signature" -- "$EXPLAIN" j.jsonl --by-signature
expect_stdout "unique"
expect 0 "gsino_explain --net provenance" -- "$EXPLAIN" j.jsonl --net 0
expect_stdout "Provenance of net 0" "net.budget" "net.route"
expect 2 "gsino_explain missing journal" -- "$EXPLAIN" missing.jsonl
printf '{"schema":"gsino-journal-v0"}\n' >old.jsonl
expect 2 "gsino_explain unsupported schema" -- "$EXPLAIN" old.jsonl
expect_stderr "unsupported schema"

# ---- exit 5: injected internal failures (GSL0022) ----
printf 'gsino-netlist v1\nname tiny\ngrid 4 4 10\nnet 0 0 0 1 1\n' >tiny.nl
expect 5 "io.load fault" -- \
  env GSINO_FAULTS="io.load=raise#123" "$RUN" run -q --netlist tiny.nl
expect_stderr "GSL0022" "io.load"
expect 5 "exec.worker fault (--jobs 2)" -- \
  env GSINO_FAULTS="exec.worker=raise#123" "$RUN" run "${base[@]}" --jobs 2
expect_stderr "GSL0022" "exec.worker"
expect 5 "refine.resolve fault" -- \
  env GSINO_FAULTS="refine.resolve=raise#123" "$RUN" run "${base[@]}" --jobs 1 \
  --metrics crash.json
expect_stderr "GSL0022" "refine.resolve"
# a crashed run must still flush its --metrics artifact for triage
expect_metric crash.json "guard.injected"
# the LSK table build simulates circuits: a corrupted LU solve is caught
# at the source as the typed non-finite error (GSL0023), not as garbage
# noise values downstream
expect 5 "matrix.lu NaN corruption" -- \
  env GSINO_FAULTS="matrix.lu=nan" "$RUN" run "${base[@]}" --jobs 1
expect_stderr "GSL0023" "matrix.lu"

# ---- exit 0 degraded: retry ladder falls back, lint tags GSL0018 ----
expect 0 "phase2.solve fault degrades" -- \
  env GSINO_FAULTS="phase2.solve=raise#123" "$RUN" run "${base[@]}" --jobs 1 \
  --metrics degraded.json
expect_metric degraded.json "guard.retries"
expect_metric degraded.json "guard.fallbacks"
env GSINO_FAULTS="phase2.solve=raise#123" \
  "$LINT" "${base[@]}" --max-print 0 >lint.out 2>/dev/null
if ! grep -q "GSL0018" lint.out; then
  echo "FAIL degraded lint: no GSL0018 finding"
  failures=$((failures + 1))
else
  echo "ok   degraded lint emits GSL0018"
fi

# ---- exit 0 degraded: deadline expiry keeps best-so-far ----
expect 0 "deadline run degrades (within 2x wall budget)" -- \
  timeout 10 "$RUN" run "${base[@]}" --jobs 1 --deadline 1 \
  --metrics deadline.json
expect_metric deadline.json "guard.deadline_hits"

# ---- exit 1: findings / regression breach ----
# provably infeasible fixture: over-capacity cuts (GSL0024) and Kth
# bounds unmeetable even fully shielded (GSL0026), proven before routing
expect 1 "gsino_audit infeasible fixture" -- \
  "$AUDIT" --netlist "$FIXTURE" --rate 1.0 --hcap 6 --vcap 6 -q
expect_stdout "GSL0024" "GSL0026"
expect 0 "gsino_diff identical snapshots" -- "$DIFF" clean.json clean.json
expect 1 "gsino_diff policy breach" -- \
  "$DIFF" --policy "$POLICY" "$BASELINE" deadline.json

if [ "$failures" -gt 0 ]; then
  echo "$failures CLI exit-code check(s) failed"
  exit 1
fi
echo "all CLI exit-code checks passed"
