(* Quickstart: route a small synthetic IBM circuit with the three flows
   of the paper and compare them.

   Run with:  dune exec examples/quickstart.exe *)
open Gsino

let () =
  (* 1. a placed netlist: ibm01 scaled to 3% of its net count, with the
     chip dimensions and net-length profile of the real circuit *)
  let tech = Tech.default in
  let netlist =
    Eda_netlist.Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.03
      ~seed:42 Eda_netlist.Generator.ibm01
  in
  Format.printf "circuit: %a@." Eda_netlist.Netlist.pp_summary netlist;

  (* 2. the shared experimental setup: conventional routing fixes the
     track capacities (the placement exactly fits ID+NO) *)
  let grid, base = Flow.prepare tech netlist in
  Format.printf "routing fabric: %a@." Eda_grid.Grid.pp grid;

  (* 3. the paper's random sensitivity model at rate 30% *)
  let sensitivity = Eda_netlist.Sensitivity.make ~seed:7 ~rate:0.30 in

  (* 4. run ID+NO (conventional), iSINO (post-hoc shielding) and GSINO
     (the paper's three-phase crosstalk-aware flow) *)
  let config kind = { Flow.Config.default with Flow.Config.kind; seed = 1 } in
  let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity netlist in
  let isino = Flow.run ~grid ~base (config Flow.Isino) tech ~sensitivity netlist in
  let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity netlist in

  Format.printf "@.%a@.%a@.%a@." Flow.pp_summary idno Flow.pp_summary isino
    Flow.pp_summary gsino;

  (* 5. the headline: conventional routing violates the 0.15V RLC noise
     bound on a sizable fraction of nets; SINO-based flows eliminate all
     violations, GSINO with less routing-area overhead *)
  let area r = match r.Flow.area with _, _, a -> a in
  Format.printf
    "@.ID+NO violates the noise bound on %d nets (%.1f%%).@\n\
     iSINO: 0 expected violations, area overhead %+.1f%%.@\n\
     GSINO: 0 expected violations, area overhead %+.1f%%.@."
    (Flow.violation_count idno) (Flow.violation_pct idno)
    (100. *. (area isino -. area idno) /. area idno)
    (100. *. (area gsino -. area idno) /. area idno)
