(* Budget sweep: how does the noise constraint level trade off against
   shielding area?  Sweeps the per-sink bound from 0.10V to 0.20V (the
   range the paper's LSK table covers) and runs the GSINO flow at each —
   the "alternative crosstalk budgeting" exploration §5 proposes.

   Run with:  dune exec examples/budget_sweep.exe *)
open Gsino

let () =
  let base_tech = Tech.default in
  let netlist =
    Eda_netlist.Generator.generate ~gcell_um:base_tech.Tech.gcell_um ~scale:0.025
      ~seed:13 Eda_netlist.Generator.ibm02
  in
  Format.printf "circuit: %a@.@." Eda_netlist.Netlist.pp_summary netlist;
  let sensitivity = Eda_netlist.Sensitivity.make ~seed:4 ~rate:0.30 in
  let grid, routes = Flow.prepare base_tech netlist in
  let lsk_model = Tech.lsk_model base_tech in

  (* baseline for overhead computation *)
  let config kind = { Flow.Config.default with Flow.Config.kind; seed = 1 } in
  let idno =
    Flow.run ~grid ~base:routes (config Flow.Id_no) base_tech ~sensitivity netlist
  in
  let _, _, base_area = idno.Flow.area in

  Format.printf "bound    LSK-budget  violations(ID+NO)  GSINO-shields  area-overhead@.";
  List.iter
    (fun bound_v ->
      let tech = { base_tech with Tech.noise_bound_v = bound_v } in
      let budget_lsk = Eda_lsk.Lsk.lsk_bound lsk_model ~noise:bound_v in
      let idno_b = Flow.run ~grid ~base:routes (config Flow.Id_no) tech ~sensitivity netlist in
      let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity netlist in
      let _, _, a = gsino.Flow.area in
      Format.printf "%.2fV   %7.0f      %5d (%5.2f%%)      %6d       %+6.2f%%  (residual %d)@."
        bound_v budget_lsk
        (Flow.violation_count idno_b) (Flow.violation_pct idno_b)
        gsino.Flow.shields
        (100. *. (a -. base_area) /. base_area)
        (Flow.violation_count gsino))
    [ 0.10; 0.125; 0.15; 0.175; 0.20 ];
  Format.printf
    "@.A tighter bound squeezes more nets under the LSK budget: more ID+NO@.\
     violations, more shields, more area.  The paper's operating point is 0.15V.@."
