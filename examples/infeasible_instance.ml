(* Infeasible instance: build a routing problem the static analyzer can
   prove unroutable before any router runs, and show the proof.

   Two independent infeasibilities are planted:

   - capacity: twelve full-width nets on a single-row grid must all
     cross every column boundary, but each region only offers six
     horizontal tracks (GSL0024 — a counting argument that holds for
     any routing);
   - crosstalk: all pairs are mutually sensitive and the nets are long,
     so the uniform Phase-I partition hands every net a Kth below
     k1^2 * shield_block — the coupling it would receive from its
     nearest aggressor even in a fully shielded layout (GSL0026).

   Run with:  dune exec examples/infeasible_instance.exe *)
open Gsino
module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Diag = Eda_check.Diag
module Analyze = Eda_analyze.Analyze

let () =
  let tech = Tech.default in
  let w = 16 and nets = 12 and hcap = 6 in
  let netlist =
    Netlist.make ~name:"infeasible-demo" ~grid_w:w ~grid_h:1 ~gcell_um:2000.0
      (Array.init nets (fun id ->
           Net.make ~id
             ~source:{ Point.x = 0; y = 0 }
             ~sinks:[| { Point.x = w - 1; y = 0 } |]))
  in
  let grid = Grid.make ~w ~h:1 ~hcap ~vcap:hcap in
  let sensitivity = Sensitivity.make ~seed:1 ~rate:1.0 in
  let t = Analyze.run (Flow.analyze_config tech) ~grid ~sensitivity netlist in

  Format.printf "%a@." Netlist.pp_summary netlist;
  Format.printf "%a@.@." Grid.pp grid;
  Format.printf "%a@.@." Analyze.pp_summary t;

  (* one representative finding per code, then the tally *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if not (Hashtbl.mem seen d.Diag.code) then begin
        Hashtbl.add seen d.Diag.code ();
        Format.printf "%s@." (Diag.to_line d)
      end)
    t.Analyze.findings;
  Format.printf "@.%d findings total; every error above is a proof — no@."
    (List.length t.Analyze.findings);
  Format.printf "router, ordering or shielding heuristic can satisfy this@.";
  Format.printf "instance.  The flow's --audit pre-pass rejects it before@.";
  Format.printf "Phase I under the Fail policy.@."
