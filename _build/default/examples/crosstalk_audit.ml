(* Crosstalk audit: take a conventionally routed design and report its
   RLC noise exposure net by net — the analysis a signal-integrity team
   would run before deciding whether shield-aware routing is needed.

   Run with:  dune exec examples/crosstalk_audit.exe *)
open Gsino
module Netlist = Eda_netlist.Netlist
module Net = Eda_netlist.Net

let () =
  let tech = Tech.default in
  let netlist =
    Eda_netlist.Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale:0.03
      ~seed:5 Eda_netlist.Generator.ibm03
  in
  let grid, routes = Flow.prepare tech netlist in
  let sensitivity = Eda_netlist.Sensitivity.make ~seed:9 ~rate:0.40 in
  let lsk_model = Tech.lsk_model tech in
  let gcell_um = netlist.Netlist.gcell_um in

  (* order the nets within each region (net ordering only — what a router
     without shield support can do) and evaluate every net's noise *)
  let budget =
    Budget.uniform ~lsk:lsk_model ~noise_v:tech.Tech.noise_bound_v ~gcell_um netlist
  in
  let phase2 =
    Phase2.solve ~grid ~netlist ~routes ~kth:(Budget.kth budget) ~sensitivity
      ~keff:tech.Tech.keff ~mode:Phase2.Order_only ~seed:3 ()
  in
  let noise_of i =
    snd
      (Noise.net_worst ~grid ~gcell_um ~phase2 ~lsk_model
         ~net:netlist.Netlist.nets.(i) routes.(i))
  in
  let noises = Array.init (Netlist.num_nets netlist) noise_of in

  (* histogram of noise in 25mV bins *)
  Format.printf "circuit: %a@." Netlist.pp_summary netlist;
  Format.printf "per-sink noise bound: %.2fV (%.0f%% of Vdd)@.@."
    tech.Tech.noise_bound_v
    (100. *. tech.Tech.noise_bound_v /. 1.05);
  let bins = 10 in
  let bin_w = 0.025 in
  let hist = Array.make bins 0 in
  Array.iter
    (fun v ->
      let b = min (bins - 1) (int_of_float (v /. bin_w)) in
      hist.(b) <- hist.(b) + 1)
    noises;
  Format.printf "noise histogram (conventionally routed, net ordering only):@.";
  Array.iteri
    (fun b n ->
      let lo = float_of_int b *. bin_w in
      let marker = if lo >= tech.Tech.noise_bound_v then " <- violating" else "" in
      Format.printf "  %.3f-%.3fV %5d %s%s@." lo (lo +. bin_w) n
        (String.make (min 60 (n / 2)) '#')
        marker)
    hist;

  (* the ten worst offenders, with the route properties that make them bad *)
  let ranked =
    Array.to_list (Array.mapi (fun i v -> (i, v)) noises)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  Format.printf "@.worst nets:@.";
  Format.printf "  net    noise   length(um)  sinks  Kth-budget@.";
  List.iteri
    (fun rank (i, v) ->
      if rank < 10 then
        Format.printf "  %-5d  %.3fV  %8.0f    %d      %.3f@." i v
          (Eda_grid.Route.length_um routes.(i) ~gcell_um)
          (Array.length netlist.Netlist.nets.(i).Net.sinks)
          (Budget.kth budget i))
    ranked;
  let violating = List.length (List.filter (fun (_, v) -> v > tech.Tech.noise_bound_v) ranked) in
  Format.printf
    "@.%d of %d nets (%.1f%%) exceed the bound — the long-net tail the paper's@.\
     GSINO flow exists to fix (compare examples/quickstart.ml).@."
    violating (Netlist.num_nets netlist)
    (100. *. float_of_int violating /. float_of_int (Netlist.num_nets netlist))
