(* Shielding study: a single routing region under the microscope.

   Reproduces, at small scale, the studies behind the paper's model
   components: the SPICE-calibrated LSK table (§2.2), min-area SINO
   shield counts versus sensitivity, and the Formula-(3) closed-form
   estimate that the GSINO router uses to reserve shielding area.

   Run with:  dune exec examples/shielding_study.exe *)
module Rng = Eda_util.Rng
module Keff = Eda_sino.Keff
module Instance = Eda_sino.Instance
module Layout = Eda_sino.Layout
module Solver = Eda_sino.Solver
module Estimate = Eda_sino.Estimate
module Table_builder = Eda_lsk.Table_builder
module Lsk = Eda_lsk.Lsk

let () =
  (* 1. the LSK -> noise table, built by simulating coupled RLC buses *)
  Format.printf "building the LSK table from circuit simulations...@.";
  let model = Lazy.force Table_builder.default in
  Format.printf "%a@.@." Lsk.pp model;
  Format.printf "selected entries (LSK in um*K -> predicted noise):@.";
  List.iter
    (fun lsk -> Format.printf "  LSK %5.0f -> %.3f V@." lsk (Lsk.noise model ~lsk))
    [ 100.; 250.; 500.; 750.; 1000.; 1500. ];
  Format.printf "  0.15 V bound -> LSK budget %.0f um*K@.@."
    (Lsk.lsk_bound model ~noise:0.15);

  (* 2. min-area SINO on one region: shields vs sensitivity rate *)
  let keff = Keff.default in
  let solve_region ~n ~rate ~kth ~seed =
    let inst =
      Instance.make
        ~nets:(Array.init n (fun i -> i))
        ~kth:(Array.make n kth)
        ~sensitive:(fun i j -> i <> j && Rng.pair_hash ~seed i j < rate)
    in
    let layout = Solver.min_area ~params:keff (Rng.create seed) inst in
    (inst, layout)
  in
  Format.printf "min-area SINO in a 24-net region (Kth = 0.8 for every net):@.";
  Format.printf "  rate   shields  tracks  capacitive-free  K-feasible@.";
  List.iter
    (fun rate ->
      let _, layout = solve_region ~n:24 ~rate ~kth:0.8 ~seed:17 in
      Format.printf "  %3.0f%%   %4d     %4d       %b             %b@."
        (rate *. 100.)
        (Layout.num_shields layout)
        (Layout.num_tracks layout)
        (Layout.cap_violations layout = 0)
        (Layout.k_violations layout keff = []))
    [ 0.1; 0.3; 0.5; 0.7 ];

  (* 3. one concrete layout, drawn *)
  let _, layout = solve_region ~n:12 ~rate:0.5 ~kth:0.6 ~seed:23 in
  Format.printf "@.a solved 12-net region at rate 50%% (S = shield):@.  %a@.@."
    Layout.pp layout;

  (* 4. Formula (3): fit, then compare against fresh solver runs *)
  Format.printf "fitting Formula (3) coefficients against the solver...@.";
  let kth_of _ = 0.8 in
  let coeffs = Estimate.fit ~params:keff ~trials:200 ~seed:31 ~kth_of () in
  Format.printf "  %a@." Estimate.pp coeffs;
  let q = Estimate.accuracy ~params:keff ~trials:120 ~seed:32 ~kth_of coeffs in
  Format.printf
    "  accuracy: mean |err| %.2f shields; aggregate error %.1f%% (paper: <=10%%)@."
    q.Estimate.mean_abs_err
    (q.Estimate.aggregate_err *. 100.);
  Format.printf "  prediction at rate 40%%:@.";
  List.iter
    (fun n ->
      Format.printf "    Nns=%2d -> Nss ~ %.1f@." n
        (Estimate.predict_uniform coeffs ~nns:n ~rate:0.4))
    [ 8; 16; 24; 32; 40 ]
