examples/quickstart.mli:
