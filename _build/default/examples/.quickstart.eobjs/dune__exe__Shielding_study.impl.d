examples/shielding_study.ml: Array Eda_lsk Eda_sino Eda_util Format Lazy List
