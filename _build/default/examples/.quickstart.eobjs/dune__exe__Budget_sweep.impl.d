examples/budget_sweep.ml: Eda_lsk Eda_netlist Flow Format Gsino List Tech
