examples/shielding_study.mli:
