examples/quickstart.ml: Eda_grid Eda_netlist Flow Format Gsino Tech
