examples/crosstalk_audit.ml: Array Budget Eda_grid Eda_netlist Flow Format Gsino List Noise Phase2 String Tech
