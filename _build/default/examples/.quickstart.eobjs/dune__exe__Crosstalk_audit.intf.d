examples/crosstalk_audit.mli:
