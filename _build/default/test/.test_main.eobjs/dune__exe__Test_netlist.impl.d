test/test_netlist.ml: Alcotest Array Eda_geom Eda_netlist Eda_util Float List Printf QCheck QCheck_alcotest Test
