test/test_geom.ml: Alcotest Eda_geom Gen List QCheck QCheck_alcotest Test
