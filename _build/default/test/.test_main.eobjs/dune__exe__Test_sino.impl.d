test/test_sino.ml: Alcotest Array Eda_sino Eda_util Lazy List Printf QCheck QCheck_alcotest Test
