test/test_main.ml: Alcotest List Test_circuit Test_extensions Test_geom Test_grid Test_gsino Test_lsk Test_netlist Test_refine Test_sino Test_steiner Test_util
