test/test_gsino.ml: Alcotest Array Budget Buffer Eda_geom Eda_grid Eda_netlist Eda_sino Eda_util Float Flow Format Gsino Hashtbl Id_router Lazy List Noise Phase2 Printf Refine Report String Tech
