test/test_lsk.ml: Alcotest Array Eda_circuit Eda_lsk Eda_sino Eda_util Lazy List Printf
