test/test_circuit.ml: Alcotest Eda_circuit Eda_lsk Eda_sino Eda_util Float List Printf
