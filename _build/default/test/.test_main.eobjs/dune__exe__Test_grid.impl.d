test/test_grid.ml: Alcotest Eda_geom Eda_grid Eda_netlist Gen List QCheck QCheck_alcotest Test
