test/test_steiner.ml: Alcotest Array Eda_geom Eda_steiner Eda_util Gen Hashtbl List QCheck QCheck_alcotest Test
