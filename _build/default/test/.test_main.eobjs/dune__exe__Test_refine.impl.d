test/test_refine.ml: Alcotest Array Budget Eda_grid Eda_netlist Eda_sino Flow Format Gsino Lazy List Noise Phase2 Printf Refine String Tech
