(* Tests for Eda_lsk: the LSK model, table building from circuit
   simulation, and the fidelity claims of §2.2. *)
module Lsk = Eda_lsk.Lsk
module Table_builder = Eda_lsk.Table_builder
module Lintable = Eda_util.Lintable
module Keff = Eda_sino.Keff
module Coupled_line = Eda_circuit.Coupled_line

(* a small, fast model for tests: fewer configs and lengths *)
let small_model =
  lazy
    (Table_builder.build ~seed:5 ~entries:40 ~configs:6
       ~lengths_m:[ 0.5e-3; 1e-3; 2e-3 ]
       Table_builder.default_electrical)

let test_lsk_value () =
  Alcotest.(check (float 1e-12)) "sum of l*k" 170.0
    (Lsk.value [ (100.0, 0.5); (200.0, 0.6) ]);
  Alcotest.(check (float 1e-12)) "empty" 0.0 (Lsk.value []);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Lsk.value: negative term") (fun () ->
      ignore (Lsk.value [ (-1.0, 0.5) ]))

let test_table_monotone () =
  let m = Lazy.force small_model in
  let e = Lintable.entries m.Lsk.table in
  for i = 0 to Array.length e - 2 do
    Alcotest.(check bool) "noise non-decreasing in LSK" true
      (snd e.(i) <= snd e.(i + 1) +. 1e-12)
  done

let test_table_origin () =
  let m = Lazy.force small_model in
  Alcotest.(check (float 1e-6)) "zero LSK, zero noise" 0.0 (Lsk.noise m ~lsk:0.0)

let test_noise_bound_roundtrip () =
  let m = Lazy.force small_model in
  let bound = Lsk.lsk_bound m ~noise:0.15 in
  Alcotest.(check bool) "bound positive" true (bound > 0.0);
  Alcotest.(check bool) "noise at bound <= 0.151" true (Lsk.noise m ~lsk:bound <= 0.151);
  Alcotest.(check bool) "just past the bound violates" true
    (Lsk.violates m ~lsk:(bound *. 1.25) ~bound_v:0.15
    || Lsk.noise m ~lsk:(bound *. 1.25) >= 0.149)

let test_violates () =
  let m = Lazy.force small_model in
  Alcotest.(check bool) "tiny LSK passes" false (Lsk.violates m ~lsk:1.0 ~bound_v:0.15)

let test_victim_keff_hand () =
  let open Coupled_line in
  let kp = Keff.default in
  (* A V: single aggressor at d=1 *)
  Alcotest.(check (float 1e-12)) "adjacent" kp.Keff.k1
    (Table_builder.victim_keff ~keff:kp [| Aggressor; Victim |] 1);
  (* A S V: d=2, one shield *)
  Alcotest.(check (float 1e-12)) "shielded"
    ((kp.Keff.k1 ** 2.0) *. kp.Keff.shield_block)
    (Table_builder.victim_keff ~keff:kp [| Aggressor; Shield; Victim |] 2);
  (* quiet wires add distance but no coupling *)
  Alcotest.(check (float 1e-12)) "quiet between"
    (kp.Keff.k1 ** 2.0)
    (Table_builder.victim_keff ~keff:kp [| Aggressor; Quiet; Victim |] 2);
  Alcotest.check_raises "not a victim"
    (Invalid_argument "Table_builder.victim_keff: not a victim") (fun () ->
      ignore (Table_builder.victim_keff ~keff:kp [| Aggressor; Victim |] 0))

let test_samples_structure () =
  let keff = Keff.default in
  let pts =
    Table_builder.samples ~seed:3 ~configs:4 ~lengths_m:[ 1e-3 ] ~keff
      Table_builder.default_electrical
  in
  Alcotest.(check int) "one sample per config-length" 4 (List.length pts);
  List.iter
    (fun (lsk, v) ->
      Alcotest.(check bool) "lsk >= 0" true (lsk >= 0.0);
      Alcotest.(check bool) "0 <= v < vdd" true (v >= 0.0 && v < 1.05))
    pts

(* The §2.2 fidelity claim: higher LSK -> higher simulated noise, i.e.
   strong rank correlation between the Keff-model LSK and SPICE noise. *)
let test_lsk_fidelity_rank_correlation () =
  let keff = Keff.default in
  let pts =
    Table_builder.samples ~seed:11 ~configs:10 ~lengths_m:[ 0.5e-3; 1e-3; 2e-3 ]
      ~keff Table_builder.default_electrical
  in
  let arr = Array.of_list pts in
  let n = Array.length arr in
  let concordant = ref 0 and discordant = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let li, vi = arr.(i) and lj, vj = arr.(j) in
      let dl = compare li lj and dv = compare vi vj in
      if dl <> 0 && dv <> 0 then
        if dl = dv then incr concordant else incr discordant
    done
  done;
  let tau =
    float_of_int (!concordant - !discordant)
    /. float_of_int (max 1 (!concordant + !discordant))
  in
  Alcotest.(check bool) (Printf.sprintf "Kendall tau %.2f >= 0.6" tau) true (tau >= 0.6)

(* The §2.2 linearity claim: noise roughly linear in length at fixed
   configuration, within the operating range. *)
let test_noise_linear_in_length () =
  let keff = Keff.default in
  let e = Table_builder.default_electrical in
  let drive =
    {
      Coupled_line.rd = e.Table_builder.rd;
      cl = e.Table_builder.cl;
      vdd = e.Table_builder.vdd;
      t_delay = e.Table_builder.t_delay;
      t_rise = e.Table_builder.t_rise;
    }
  in
  let noise len =
    Coupled_line.worst_victim_noise
      (Table_builder.spec_of e ~keff ~length_m:len)
      drive
      [| Coupled_line.Aggressor; Coupled_line.Victim |]
  in
  let v1 = noise 0.25e-3 and v2 = noise 0.5e-3 and v3 = noise 1.0e-3 in
  let r12 = v2 /. v1 and r23 = v3 /. v2 in
  (* increasing, roughly linear low on the curve, saturating later *)
  Alcotest.(check bool)
    (Printf.sprintf "0.25->0.5mm scales by %.2f (in [1.2, 2.5])" r12)
    true
    (r12 > 1.2 && r12 < 2.5);
  Alcotest.(check bool)
    (Printf.sprintf "0.5->1mm still increases, sublinearly (%.2f)" r23)
    true
    (r23 > 1.05 && r23 <= r12 +. 0.2)

let test_default_model_range () =
  (* the shared default model covers the paper's 0.10-0.20V band *)
  let m = Lazy.force Table_builder.default in
  let lo = Lsk.lsk_bound m ~noise:0.10 and hi = Lsk.lsk_bound m ~noise:0.20 in
  Alcotest.(check bool) "0.10V reachable" true (lo > 0.0);
  Alcotest.(check bool) "band ordered" true (hi > lo);
  Alcotest.(check int) "100 entries" 100 (Lintable.size m.Lsk.table)

let suites =
  [
    ( "lsk.model",
      [
        Alcotest.test_case "value" `Quick test_lsk_value;
        Alcotest.test_case "table monotone" `Slow test_table_monotone;
        Alcotest.test_case "table origin" `Slow test_table_origin;
        Alcotest.test_case "bound roundtrip" `Slow test_noise_bound_roundtrip;
        Alcotest.test_case "violates" `Slow test_violates;
      ] );
    ( "lsk.table_builder",
      [
        Alcotest.test_case "victim keff hand values" `Quick test_victim_keff_hand;
        Alcotest.test_case "samples structure" `Slow test_samples_structure;
        Alcotest.test_case "LSK fidelity (rank corr)" `Slow test_lsk_fidelity_rank_correlation;
        Alcotest.test_case "noise ~ linear in length" `Slow test_noise_linear_in_length;
        Alcotest.test_case "default model range" `Slow test_default_model_range;
      ] );
  ]
