(* Tests for Eda_grid: grid indexing, routes, usage accounting and the
   paper's area metric. *)
module Point = Eda_geom.Point
module Rect = Eda_geom.Rect
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Route = Eda_grid.Route
module Usage = Eda_grid.Usage

let p = Point.make
let g44 () = Grid.make ~w:4 ~h:4 ~hcap:10 ~vcap:10

let test_dir () =
  Alcotest.(check bool) "flip H" true (Dir.equal (Dir.flip Dir.H) Dir.V);
  Alcotest.(check bool) "flip V" true (Dir.equal (Dir.flip Dir.V) Dir.H);
  Alcotest.(check string) "names" "H" (Dir.to_string Dir.H)

let test_grid_region_roundtrip () =
  let g = g44 () in
  for r = 0 to Grid.num_regions g - 1 do
    Alcotest.(check int) "roundtrip" r (Grid.region_id g (Grid.region_pt g r))
  done;
  Alcotest.check_raises "oob" (Invalid_argument "Grid.region_id: out of bounds")
    (fun () -> ignore (Grid.region_id g (p 4 0)))

let test_grid_edge_roundtrip () =
  let g = g44 () in
  Alcotest.(check int) "edge count" (12 + 12) (Grid.num_edges g);
  for e = 0 to Grid.num_edges g - 1 do
    let a, b = Grid.edge_ends g e in
    let d = Grid.edge_dir g e in
    Alcotest.(check int) "roundtrip" e (Grid.edge_id g a d);
    (match d with
    | Dir.H -> Alcotest.(check bool) "H adjacency" true (b.Point.x = a.Point.x + 1 && b.Point.y = a.Point.y)
    | Dir.V -> Alcotest.(check bool) "V adjacency" true (b.Point.y = a.Point.y + 1 && b.Point.x = a.Point.x))
  done

let test_grid_edge_bounds () =
  let g = g44 () in
  Alcotest.check_raises "H off east edge"
    (Invalid_argument "Grid.edge_id: H edge out of bounds") (fun () ->
      ignore (Grid.edge_id g (p 3 0) Dir.H));
  Alcotest.check_raises "V off north edge"
    (Invalid_argument "Grid.edge_id: V edge out of bounds") (fun () ->
      ignore (Grid.edge_id g (p 0 3) Dir.V))

let test_grid_edges_within () =
  let g = g44 () in
  (* 2x2 block: 2 H edges + 2 V edges *)
  let es = Grid.edges_within g (Rect.make 0 0 1 1) in
  Alcotest.(check int) "2x2 block" 4 (List.length es);
  (* full grid *)
  Alcotest.(check int) "full grid" (Grid.num_edges g)
    (List.length (Grid.edges_within g (Rect.make 0 0 3 3)));
  (* single region has no internal edges *)
  Alcotest.(check int) "single region" 0
    (List.length (Grid.edges_within g (Rect.make 2 2 2 2)));
  (* out-of-grid rect clipped *)
  Alcotest.(check int) "clipped" 4
    (List.length (Grid.edges_within g (Rect.make (-5) (-5) 1 1)))

let test_grid_incident () =
  let g = g44 () in
  Alcotest.(check int) "corner" 2 (List.length (Grid.incident_edges g (p 0 0)));
  Alcotest.(check int) "edge" 3 (List.length (Grid.incident_edges g (p 1 0)));
  Alcotest.(check int) "center" 4 (List.length (Grid.incident_edges g (p 1 1)))

let test_grid_auto () =
  let nl =
    Eda_netlist.Generator.uniform ~name:"u" ~grid_w:8 ~grid_h:8 ~n_nets:200
      ~mean_span:3.0 ~seed:9
  in
  let g = Grid.auto ~util_target:0.6 nl in
  Alcotest.(check int) "width" 8 (Grid.width g);
  Alcotest.(check bool) "caps at least the floor" true (Grid.cap g (p 0 0) Dir.H >= 12)

(* a 2-hop L route on the 4x4 grid: (0,0)-(1,0)-(1,1) *)
let l_route g =
  Route.of_edges g ~net:7
    [ Grid.edge_id g (p 0 0) Dir.H; Grid.edge_id g (p 1 0) Dir.V ]

let test_route_basics () =
  let g = g44 () in
  let r = l_route g in
  Alcotest.(check int) "net id" 7 (Route.net r);
  Alcotest.(check int) "edges" 2 (Route.num_edges r);
  Alcotest.(check (float 1e-9)) "length gcells" 2.0 (Route.length_gcells r);
  Alcotest.(check (float 1e-9)) "length um" 120.0 (Route.length_um r ~gcell_um:60.0)

let test_route_dedup () =
  let g = g44 () in
  let e = Grid.edge_id g (p 0 0) Dir.H in
  let r = Route.of_edges g ~net:0 [ e; e; e ] in
  Alcotest.(check int) "dedup" 1 (Route.num_edges r)

let test_route_segments () =
  let g = g44 () in
  let r = l_route g in
  (* H edge (0,0)-(1,0): half gcell of H in regions 0 and 1 *)
  let segs_h = Route.segments g r Dir.H in
  Alcotest.(check int) "two H regions" 2 (List.length segs_h);
  List.iter (fun (_, l) -> Alcotest.(check (float 1e-9)) "half gcell" 0.5 l) segs_h;
  let segs_v = Route.segments g r Dir.V in
  Alcotest.(check int) "two V regions" 2 (List.length segs_v)

let test_route_segments_through () =
  let g = g44 () in
  (* straight 2-edge H route through region (1,0): full gcell there *)
  let r =
    Route.of_edges g ~net:0
      [ Grid.edge_id g (p 0 0) Dir.H; Grid.edge_id g (p 1 0) Dir.H ]
  in
  let mid = Grid.region_id g (p 1 0) in
  let l = List.assoc mid (Route.segments g r Dir.H) in
  Alcotest.(check (float 1e-9)) "through length 1 gcell" 1.0 l

let test_route_occupied () =
  let g = g44 () in
  let r = l_route g in
  Alcotest.(check int) "4 track uses" 4 (List.length (Route.occupied g r))

let test_route_connects () =
  let g = g44 () in
  let r = l_route g in
  Alcotest.(check bool) "connects endpoints" true (Route.connects g r [ p 0 0; p 1 1 ]);
  Alcotest.(check bool) "does not connect stranger" false
    (Route.connects g r [ p 0 0; p 3 3 ]);
  let empty = Route.of_edges g ~net:0 [] in
  Alcotest.(check bool) "same-region pins trivially connected" true
    (Route.connects g empty [ p 2 2; p 2 2 ])

let test_route_is_tree () =
  let g = g44 () in
  Alcotest.(check bool) "L is a tree" true (Route.is_tree g (l_route g));
  let cycle =
    Route.of_edges g ~net:0
      [
        Grid.edge_id g (p 0 0) Dir.H;
        Grid.edge_id g (p 1 0) Dir.V;
        Grid.edge_id g (p 0 1) Dir.H;
        Grid.edge_id g (p 0 0) Dir.V;
      ]
  in
  Alcotest.(check bool) "square is not a tree" false (Route.is_tree g cycle)

let test_route_path () =
  let g = g44 () in
  let r = l_route g in
  Alcotest.(check int) "path length" 2
    (Route.path_length g r ~source:(p 0 0) ~sink:(p 1 1));
  Alcotest.(check int) "trivial path" 0
    (Route.path_length g r ~source:(p 0 0) ~sink:(p 0 0));
  let edges = Route.path_edges g r ~source:(p 0 0) ~sink:(p 1 1) in
  Alcotest.(check int) "two path edges" 2 (List.length edges);
  Alcotest.check_raises "unreachable" Not_found (fun () ->
      ignore (Route.path_length g r ~source:(p 0 0) ~sink:(p 3 3)))

let test_route_path_branch () =
  let g = g44 () in
  (* T shape: (0,0)-(1,0)-(2,0) with branch (1,0)-(1,1) *)
  let r =
    Route.of_edges g ~net:0
      [
        Grid.edge_id g (p 0 0) Dir.H;
        Grid.edge_id g (p 1 0) Dir.H;
        Grid.edge_id g (p 1 0) Dir.V;
      ]
  in
  (* path (0,0)->(2,0) must not include the branch edge *)
  let edges = Route.path_edges g r ~source:(p 0 0) ~sink:(p 2 0) in
  Alcotest.(check int) "branch excluded" 2 (List.length edges)

let test_usage_accounting () =
  let g = g44 () in
  let u = Usage.create g ~gcell_um:60.0 in
  let r = l_route g in
  Usage.add_route u r;
  Alcotest.(check int) "nns H region 0" 1 (Usage.nns u (Grid.region_id g (p 0 0)) Dir.H);
  Alcotest.(check int) "nns V region (1,1)" 1 (Usage.nns u (Grid.region_id g (p 1 1)) Dir.V);
  Alcotest.(check int) "untouched region" 0 (Usage.nns u (Grid.region_id g (p 3 3)) Dir.H);
  Usage.remove_route u r;
  Alcotest.(check int) "removed" 0 (Usage.nns u (Grid.region_id g (p 0 0)) Dir.H)

let test_usage_shields_overflow () =
  let g = Grid.make ~w:2 ~h:2 ~hcap:2 ~vcap:2 in
  let u = Usage.create g ~gcell_um:50.0 in
  let r0 = Grid.region_id g (p 0 0) in
  Usage.set_shields u r0 Dir.H 5;
  Alcotest.(check int) "nss" 5 (Usage.nss u r0 Dir.H);
  Alcotest.(check int) "used" 5 (Usage.used u r0 Dir.H);
  Alcotest.(check int) "overflow" 3 (Usage.overflow u r0 Dir.H);
  Alcotest.(check int) "total overflow" 3 (Usage.total_overflow u);
  Alcotest.(check int) "total shields" 5 (Usage.total_shields u);
  Alcotest.(check (float 1e-9)) "utilization" 2.5 (Usage.utilization u r0 Dir.H);
  Alcotest.(check bool) "most congested" true (Usage.most_congested u = (r0, Dir.H));
  Alcotest.check_raises "negative shields"
    (Invalid_argument "Usage.set_shields: negative") (fun () ->
      Usage.set_shields u r0 Dir.H (-1))

let test_usage_area_nominal () =
  let g = Grid.make ~w:3 ~h:2 ~hcap:4 ~vcap:4 in
  let u = Usage.create g ~gcell_um:100.0 in
  let row, col, area = Usage.expanded_area u in
  Alcotest.(check (float 1e-6)) "row = 3 gcells" 300.0 row;
  Alcotest.(check (float 1e-6)) "col = 2 gcells" 200.0 col;
  Alcotest.(check (float 1e-3)) "area" 60000.0 area

let test_usage_area_expansion () =
  let g = Grid.make ~w:3 ~h:2 ~hcap:4 ~vcap:4 in
  let u = Usage.create g ~gcell_um:100.0 in
  (* 8 vertical tracks in one region of capacity 4: region width doubles *)
  Usage.set_shields u (Grid.region_id g (p 1 0)) Dir.V 8;
  let row, col, _ = Usage.expanded_area u in
  Alcotest.(check (float 1e-6)) "row grows by one gcell" 400.0 row;
  Alcotest.(check (float 1e-6)) "col unchanged (V usage)" 200.0 col;
  (* horizontal usage stretches region height -> column length *)
  Usage.set_shields u (Grid.region_id g (p 1 0)) Dir.H 6;
  let _, col2, _ = Usage.expanded_area u in
  Alcotest.(check (float 1e-6)) "col grows by half gcell" 250.0 col2

let test_usage_copy () =
  let g = g44 () in
  let u = Usage.create g ~gcell_um:60.0 in
  Usage.set_shields u 0 Dir.H 2;
  let u2 = Usage.copy u in
  Usage.set_shields u2 0 Dir.H 9;
  Alcotest.(check int) "copy is independent" 2 (Usage.nss u 0 Dir.H)

let test_usage_of_routes () =
  let g = g44 () in
  let r1 = l_route g in
  let r2 = Route.of_edges g ~net:8 [ Grid.edge_id g (p 0 0) Dir.H ] in
  let u = Usage.of_routes g ~gcell_um:60.0 [ r1; r2 ] in
  Alcotest.(check int) "stacked tracks" 2 (Usage.nns u (Grid.region_id g (p 0 0)) Dir.H)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"edge ends are adjacent and in-bounds" ~count:200
      (int_range 0 ((4 - 1) * 4 * 2 - 1))
      (fun e ->
        let g = g44 () in
        if e >= Grid.num_edges g then true
        else begin
          let a, b = Grid.edge_ends g e in
          Grid.in_bounds g a && Grid.in_bounds g b && Point.manhattan a b = 1
        end);
    Test.make ~name:"occupied matches segments" ~count:100
      (make (Gen.list_size (Gen.int_range 1 8) (Gen.int_range 0 23)))
      (fun edges ->
        let g = g44 () in
        let r = Route.of_edges g ~net:0 edges in
        let occ = List.length (Route.occupied g r) in
        let segs =
          List.length (Route.segments g r Dir.H) + List.length (Route.segments g r Dir.V)
        in
        occ = segs);
  ]

let suites =
  [
    ( "grid.grid",
      [
        Alcotest.test_case "dir" `Quick test_dir;
        Alcotest.test_case "region roundtrip" `Quick test_grid_region_roundtrip;
        Alcotest.test_case "edge roundtrip" `Quick test_grid_edge_roundtrip;
        Alcotest.test_case "edge bounds" `Quick test_grid_edge_bounds;
        Alcotest.test_case "edges_within" `Quick test_grid_edges_within;
        Alcotest.test_case "incident edges" `Quick test_grid_incident;
        Alcotest.test_case "auto capacities" `Quick test_grid_auto;
      ] );
    ( "grid.route",
      [
        Alcotest.test_case "basics" `Quick test_route_basics;
        Alcotest.test_case "dedup" `Quick test_route_dedup;
        Alcotest.test_case "segments" `Quick test_route_segments;
        Alcotest.test_case "segments through" `Quick test_route_segments_through;
        Alcotest.test_case "occupied" `Quick test_route_occupied;
        Alcotest.test_case "connects" `Quick test_route_connects;
        Alcotest.test_case "is_tree" `Quick test_route_is_tree;
        Alcotest.test_case "path" `Quick test_route_path;
        Alcotest.test_case "path avoids branch" `Quick test_route_path_branch;
      ] );
    ( "grid.usage",
      [
        Alcotest.test_case "accounting" `Quick test_usage_accounting;
        Alcotest.test_case "shields and overflow" `Quick test_usage_shields_overflow;
        Alcotest.test_case "nominal area" `Quick test_usage_area_nominal;
        Alcotest.test_case "area expansion" `Quick test_usage_area_expansion;
        Alcotest.test_case "copy" `Quick test_usage_copy;
        Alcotest.test_case "of_routes" `Quick test_usage_of_routes;
      ] );
    ("grid.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
