(* Tests for Eda_circuit: waveforms, MNA transient physics, coupled
   lines.  Analytic RC/RLC references validate the integrator. *)
module Waveform = Eda_circuit.Waveform
module Mna = Eda_circuit.Mna
module Transient = Eda_circuit.Transient
module Coupled_line = Eda_circuit.Coupled_line

let test_waveform_dc () =
  Alcotest.(check (float 1e-12)) "dc" 3.3 (Waveform.value (Waveform.Dc 3.3) 1.0);
  Alcotest.(check (float 1e-12)) "initial" 3.3 (Waveform.initial (Waveform.Dc 3.3))

let test_waveform_ramp () =
  let w = Waveform.Ramp { v0 = 0.0; v1 = 2.0; t_delay = 1.0; t_rise = 2.0 } in
  Alcotest.(check (float 1e-12)) "before" 0.0 (Waveform.value w 0.5);
  Alcotest.(check (float 1e-12)) "at delay" 0.0 (Waveform.value w 1.0);
  Alcotest.(check (float 1e-12)) "mid ramp" 1.0 (Waveform.value w 2.0);
  Alcotest.(check (float 1e-12)) "after" 2.0 (Waveform.value w 5.0)

let step v1 = Waveform.Ramp { v0 = 0.0; v1; t_delay = 0.0; t_rise = 1e-12 }

(* R=1k, C=1pF: v(t) = 1 - exp(-t/tau), tau = 1 ns *)
let test_rc_step_response () =
  let c = Mna.create () in
  let a = Mna.node c and b = Mna.node c in
  ignore (Mna.vsource c a Mna.ground (step 1.0));
  Mna.resistor c a b 1000.0;
  Mna.capacitor c b Mna.ground 1e-12;
  let r = Transient.run c ~dt:2e-12 ~t_end:5e-9 ~probes:[ b ] in
  List.iter
    (fun t_ns ->
      let expect = 1.0 -. exp (-.t_ns) in
      let got = Transient.value_at r 0 (t_ns *. 1e-9) in
      Alcotest.(check (float 2e-3))
        (Printf.sprintf "v(%.1f tau)" t_ns)
        expect got)
    [ 0.5; 1.0; 2.0; 3.0 ]

(* series RLC, underdamped: peak overshoot = 1 + exp(-pi*zeta/sqrt(1-zeta^2)) *)
let test_rlc_overshoot () =
  let r_ohm = 10.0 and l = 1e-9 and cap = 1e-12 in
  let c = Mna.create () in
  let a = Mna.node c and b = Mna.node c and d = Mna.node c in
  ignore (Mna.vsource c a Mna.ground (step 1.0));
  Mna.resistor c a b r_ohm;
  ignore (Mna.inductor c b d l);
  Mna.capacitor c d Mna.ground cap;
  let r = Transient.run c ~dt:5e-13 ~t_end:2e-9 ~probes:[ d ] in
  let zeta = r_ohm /. 2.0 *. sqrt (cap /. l) in
  let expect = 1.0 +. exp (-.Float.pi *. zeta /. sqrt (1.0 -. (zeta *. zeta))) in
  Alcotest.(check (float 0.02)) "overshoot" expect (Transient.peak_abs r 0);
  Alcotest.(check (float 0.01)) "settles to 1" 1.0 (Transient.value_at r 0 2e-9)

let test_resistive_divider () =
  let c = Mna.create () in
  let a = Mna.node c and b = Mna.node c in
  ignore (Mna.vsource c a Mna.ground (step 2.0));
  Mna.resistor c a b 1000.0;
  Mna.resistor c b Mna.ground 3000.0;
  let r = Transient.run c ~dt:1e-12 ~t_end:1e-10 ~probes:[ b ] in
  Alcotest.(check (float 1e-6)) "3/4 of source" 1.5 (Transient.value_at r 0 1e-10)

(* ideal transformer-ish: two coupled inductors, secondary open via big R;
   induced voltage ratio ~ k for equal inductances *)
let test_mutual_coupling () =
  let build k =
    let c = Mna.create () in
    let a = Mna.node c and b = Mna.node c in
    ignore (Mna.vsource c a Mna.ground
        (Waveform.Ramp { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 1e-9 }));
    let i1 = Mna.inductor c a Mna.ground 1e-9 in
    (* secondary loop with load *)
    let i2 = Mna.inductor c b Mna.ground 1e-9 in
    Mna.resistor c b Mna.ground 1e6;
    if k > 0.0 then Mna.mutual c i1 i2 k;
    let r = Transient.run c ~dt:1e-12 ~t_end:5e-10 ~probes:[ b ] in
    Transient.peak_abs r 0
  in
  let v_half = build 0.5 and v_quarter = build 0.25 and v_zero = build 0.0 in
  Alcotest.(check bool) "coupling induces voltage" true (v_half > 1e-3);
  Alcotest.(check bool) "higher k, higher induction" true (v_half > v_quarter);
  Alcotest.(check (float 1e-9)) "no coupling, no voltage" 0.0 v_zero

let test_transient_validation () =
  let c = Mna.create () in
  let a = Mna.node c in
  ignore (Mna.vsource c a Mna.ground (Waveform.Dc 1.0));
  Mna.resistor c a Mna.ground 100.0;
  Alcotest.check_raises "nonzero initial source"
    (Invalid_argument "Transient.run: sources must start at 0") (fun () ->
      ignore (Transient.run c ~dt:1e-12 ~t_end:1e-10 ~probes:[ a ]));
  let c2 = Mna.create () in
  let b = Mna.node c2 in
  ignore (Mna.vsource c2 b Mna.ground (step 1.0));
  Mna.resistor c2 b Mna.ground 10.0;
  Alcotest.check_raises "no probes"
    (Invalid_argument "Transient.run: no probes") (fun () ->
      ignore (Transient.run c2 ~dt:1e-12 ~t_end:1e-10 ~probes:[]))

let test_mna_validation () =
  let c = Mna.create () in
  let a = Mna.node c in
  Alcotest.check_raises "bad resistance"
    (Invalid_argument "Mna.resistor: non-positive resistance") (fun () ->
      Mna.resistor c a Mna.ground 0.0);
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Mna.resistor: unknown node") (fun () ->
      Mna.resistor c 99 Mna.ground 10.0);
  let i = Mna.inductor c a Mna.ground 1e-9 in
  Alcotest.check_raises "self mutual"
    (Invalid_argument "Mna.mutual: bad inductor indices") (fun () ->
      Mna.mutual c i i 0.5)

let default_spec length_m =
  let e = Eda_lsk.Table_builder.default_electrical in
  Eda_lsk.Table_builder.spec_of e ~keff:Eda_sino.Keff.default ~length_m

let default_drive () =
  let e = Eda_lsk.Table_builder.default_electrical in
  {
    Coupled_line.rd = e.Eda_lsk.Table_builder.rd;
    cl = e.Eda_lsk.Table_builder.cl;
    vdd = e.Eda_lsk.Table_builder.vdd;
    t_delay = e.Eda_lsk.Table_builder.t_delay;
    t_rise = e.Eda_lsk.Table_builder.t_rise;
  }

let noise roles length_m =
  Coupled_line.worst_victim_noise (default_spec length_m) (default_drive ()) roles

let test_coupled_line_inductance_pd () =
  let spec = default_spec 1e-3 in
  let c, _ = Coupled_line.build spec (default_drive ())
      [| Coupled_line.Aggressor; Coupled_line.Victim; Coupled_line.Quiet;
         Coupled_line.Shield; Coupled_line.Aggressor |]
  in
  let l = Mna.inductance_matrix c in
  Alcotest.(check bool) "PD inductance matrix" true
    (Eda_util.Matrix.cholesky l <> None)

let test_coupled_line_shield_blocks () =
  let open Coupled_line in
  let v_adj = noise [| Aggressor; Victim |] 1e-3 in
  let v_quiet = noise [| Aggressor; Quiet; Victim |] 1e-3 in
  let v_shield = noise [| Aggressor; Shield; Victim |] 1e-3 in
  Alcotest.(check bool) "noticeable adjacent noise" true (v_adj > 0.05);
  Alcotest.(check bool) "distance helps" true (v_quiet < v_adj);
  Alcotest.(check bool) "shield beats distance" true (v_shield < 0.75 *. v_quiet)

let test_coupled_line_length_monotone () =
  let open Coupled_line in
  let roles = [| Aggressor; Victim |] in
  let v1 = noise roles 0.5e-3 and v2 = noise roles 1e-3 and v3 = noise roles 2e-3 in
  Alcotest.(check bool) "longer, noisier (0.5->1mm)" true (v2 > v1);
  Alcotest.(check bool) "longer, noisier (1->2mm)" true (v3 > v2)

let test_coupled_line_aggressors_add () =
  let open Coupled_line in
  let v1 = noise [| Aggressor; Victim; Quiet |] 1e-3 in
  let v2 = noise [| Aggressor; Victim; Aggressor |] 1e-3 in
  Alcotest.(check bool) "two aggressors worse" true (v2 > 1.3 *. v1)

let test_coupled_line_victim_list () =
  let open Coupled_line in
  let spec = default_spec 1e-3 in
  let vs = victim_noise spec (default_drive ()) [| Victim; Aggressor; Victim |] in
  Alcotest.(check int) "both victims probed" 2 (List.length vs);
  Alcotest.(check bool) "victim indices" true (List.mem_assoc 0 vs && List.mem_assoc 2 vs);
  Alcotest.check_raises "no victim"
    (Invalid_argument "Coupled_line.victim_noise: no victim wire") (fun () ->
      ignore (victim_noise spec (default_drive ()) [| Aggressor; Quiet |]))

let test_coupled_line_quiet_victim_low () =
  let open Coupled_line in
  (* all wires quiet: victim sees (almost) nothing *)
  let v = noise [| Quiet; Victim; Quiet |] 1e-3 in
  Alcotest.(check bool) "quiet bus is quiet" true (v < 1e-6)

let suites =
  [
    ( "circuit.waveform",
      [
        Alcotest.test_case "dc" `Quick test_waveform_dc;
        Alcotest.test_case "ramp" `Quick test_waveform_ramp;
      ] );
    ( "circuit.transient",
      [
        Alcotest.test_case "RC analytic" `Quick test_rc_step_response;
        Alcotest.test_case "RLC overshoot analytic" `Quick test_rlc_overshoot;
        Alcotest.test_case "resistive divider" `Quick test_resistive_divider;
        Alcotest.test_case "mutual coupling" `Quick test_mutual_coupling;
        Alcotest.test_case "transient validation" `Quick test_transient_validation;
        Alcotest.test_case "mna validation" `Quick test_mna_validation;
      ] );
    ( "circuit.coupled_line",
      [
        Alcotest.test_case "inductance PD" `Quick test_coupled_line_inductance_pd;
        Alcotest.test_case "shield blocks coupling" `Quick test_coupled_line_shield_blocks;
        Alcotest.test_case "noise grows with length" `Quick test_coupled_line_length_monotone;
        Alcotest.test_case "aggressors add" `Quick test_coupled_line_aggressors_add;
        Alcotest.test_case "victim list" `Quick test_coupled_line_victim_list;
        Alcotest.test_case "quiet bus" `Quick test_coupled_line_quiet_victim_low;
      ] );
  ]
