(* Tests for Eda_steiner: rectilinear MST and Steiner estimates. *)
module Point = Eda_geom.Point
module Rmst = Eda_steiner.Rmst
module Rsmt = Eda_steiner.Rsmt

let p = Point.make

let test_rmst_trivial () =
  Alcotest.(check int) "empty" 0 (Rmst.length [||]);
  Alcotest.(check int) "single" 0 (Rmst.length [| p 3 3 |]);
  Alcotest.(check (list (pair int int))) "no edges" [] (Rmst.tree [| p 0 0 |])

let test_rmst_two_points () =
  Alcotest.(check int) "manhattan" 7 (Rmst.length [| p 0 0; p 3 4 |]);
  Alcotest.(check int) "one edge" 1 (List.length (Rmst.tree [| p 0 0; p 3 4 |]))

let test_rmst_collinear () =
  Alcotest.(check int) "chain" 10 (Rmst.length [| p 0 0; p 4 0; p 10 0; p 7 0 |])

let test_rmst_square () =
  (* unit square: MST = 3 edges of length 1 *)
  Alcotest.(check int) "square" 3 (Rmst.length [| p 0 0; p 1 0; p 0 1; p 1 1 |])

let test_rmst_tree_spans () =
  let pts = [| p 0 0; p 5 2; p 3 7; p 8 8; p 1 4 |] in
  let edges = Rmst.tree pts in
  Alcotest.(check int) "n-1 edges" (Array.length pts - 1) (List.length edges);
  let uf = Eda_util.Union_find.create (Array.length pts) in
  List.iter (fun (i, j) -> ignore (Eda_util.Union_find.union uf i j)) edges;
  Alcotest.(check int) "spanning" 1 (Eda_util.Union_find.count uf)

let test_rsmt_two_points () =
  Alcotest.(check int) "2 pins = manhattan" 7 (Rsmt.length [| p 0 0; p 3 4 |])

let test_rsmt_three_pins_hpwl () =
  (* for 3 pins the RSMT is the bbox half-perimeter (median star) *)
  let pts = [| p 0 0; p 4 1; p 2 5 |] in
  Alcotest.(check int) "3-pin star" (4 + 5) (Rsmt.length pts);
  Alcotest.(check bool) "steiner point used" true (Rsmt.steiner_points pts <> [])

let test_rsmt_plus_sign () =
  (* N/S/E/W cross: RMST = 3 * 2 = 6; one Steiner point at center gives 4 *)
  let pts = [| p 1 0; p 1 2; p 0 1; p 2 1 |] in
  Alcotest.(check int) "rmst 6" 6 (Rmst.length pts);
  Alcotest.(check int) "rsmt 4" 4 (Rsmt.length pts)

let test_rsmt_never_worse () =
  let rng = Eda_util.Rng.create 42 in
  for _ = 1 to 50 do
    let k = Eda_util.Rng.int_in rng 2 7 in
    let pts =
      Array.init k (fun _ ->
          p (Eda_util.Rng.int rng 20) (Eda_util.Rng.int rng 20))
    in
    Alcotest.(check bool) "rsmt <= rmst" true (Rsmt.length pts <= Rmst.length pts)
  done

let test_rsmt_duplicates () =
  Alcotest.(check int) "dup pins collapse" 7 (Rsmt.length [| p 0 0; p 0 0; p 3 4 |])

let test_rsmt_edges_connect () =
  let pts = [| p 0 0; p 4 1; p 2 5; p 6 6 |] in
  let edges = Rsmt.rectilinear_edges pts in
  (* every tree edge is a point pair; the union must connect all pins *)
  let key q = (q.Point.x, q.Point.y) in
  let ids = Hashtbl.create 16 in
  let intern q =
    match Hashtbl.find_opt ids (key q) with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.add ids (key q) i;
        i
  in
  let pairs = List.map (fun (a, b) -> (intern a, intern b)) edges in
  let uf = Eda_util.Union_find.create (Hashtbl.length ids) in
  List.iter (fun (a, b) -> ignore (Eda_util.Union_find.union uf a b)) pairs;
  Array.iter
    (fun q ->
      Alcotest.(check bool) "pin in tree" true (Hashtbl.mem ids (key q)))
    pts;
  Alcotest.(check int) "connected" 1 (Eda_util.Union_find.count uf)

let test_rsmt_lower_bound () =
  (* RSMT >= bbox half-perimeter always *)
  let rng = Eda_util.Rng.create 7 in
  for _ = 1 to 50 do
    let k = Eda_util.Rng.int_in rng 2 6 in
    let pts =
      Array.init k (fun _ ->
          p (Eda_util.Rng.int rng 15) (Eda_util.Rng.int rng 15))
    in
    let hp = Eda_geom.Rect.half_perimeter (Eda_geom.Rect.of_points (Array.to_list pts)) in
    Alcotest.(check bool) "rsmt >= hpwl" true (Rsmt.length pts >= hp)
  done

let qcheck_tests =
  let open QCheck in
  let pt = Gen.map2 Point.make (Gen.int_range 0 30) (Gen.int_range 0 30) in
  [
    Test.make ~name:"rsmt between hpwl and rmst" ~count:150
      (make (Gen.array_size (Gen.int_range 2 8) pt))
      (fun pts ->
        let hp =
          Eda_geom.Rect.half_perimeter (Eda_geom.Rect.of_points (Array.to_list pts))
        in
        let s = Rsmt.length pts in
        hp <= s && s <= Rmst.length pts);
  ]

let suites =
  [
    ( "steiner.rmst",
      [
        Alcotest.test_case "trivial" `Quick test_rmst_trivial;
        Alcotest.test_case "two points" `Quick test_rmst_two_points;
        Alcotest.test_case "collinear" `Quick test_rmst_collinear;
        Alcotest.test_case "square" `Quick test_rmst_square;
        Alcotest.test_case "tree spans" `Quick test_rmst_tree_spans;
      ] );
    ( "steiner.rsmt",
      [
        Alcotest.test_case "two points" `Quick test_rsmt_two_points;
        Alcotest.test_case "3-pin star" `Quick test_rsmt_three_pins_hpwl;
        Alcotest.test_case "plus sign" `Quick test_rsmt_plus_sign;
        Alcotest.test_case "never worse than rmst" `Quick test_rsmt_never_worse;
        Alcotest.test_case "duplicate pins" `Quick test_rsmt_duplicates;
        Alcotest.test_case "edges connect pins" `Quick test_rsmt_edges_connect;
        Alcotest.test_case "lower bound" `Quick test_rsmt_lower_bound;
      ] );
    ("steiner.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
