(* Tests for Eda_geom: points and rectangles. *)
module Point = Eda_geom.Point
module Rect = Eda_geom.Rect

let p = Point.make

let test_point_manhattan () =
  Alcotest.(check int) "3+4" 7 (Point.manhattan (p 0 0) (p 3 4));
  Alcotest.(check int) "symmetric" 7 (Point.manhattan (p 3 4) (p 0 0));
  Alcotest.(check int) "self" 0 (Point.manhattan (p 5 5) (p 5 5));
  Alcotest.(check int) "negative coords" 10 (Point.manhattan (p (-2) (-3)) (p 3 2))

let test_point_arith () =
  Alcotest.(check bool) "add" true (Point.equal (Point.add (p 1 2) (p 3 4)) (p 4 6));
  Alcotest.(check bool) "sub" true (Point.equal (Point.sub (p 5 5) (p 2 3)) (p 3 2))

let test_point_compare () =
  Alcotest.(check bool) "x major" true (Point.compare (p 1 9) (p 2 0) < 0);
  Alcotest.(check bool) "y minor" true (Point.compare (p 1 1) (p 1 2) < 0);
  Alcotest.(check int) "equal" 0 (Point.compare (p 3 3) (p 3 3))

let test_point_clamp () =
  let lo = p 0 0 and hi = p 9 9 in
  Alcotest.(check bool) "inside unchanged" true
    (Point.equal (Point.clamp (p 5 5) ~lo ~hi) (p 5 5));
  Alcotest.(check bool) "clamped below" true
    (Point.equal (Point.clamp (p (-3) 4) ~lo ~hi) (p 0 4));
  Alcotest.(check bool) "clamped above" true
    (Point.equal (Point.clamp (p 12 15) ~lo ~hi) (p 9 9))

let test_rect_make_normalizes () =
  let r = Rect.make 5 6 1 2 in
  Alcotest.(check bool) "normalized" true (Rect.equal r (Rect.make 1 2 5 6))

let test_rect_of_points () =
  let r = Rect.of_points [ p 3 1; p 0 4; p 2 2 ] in
  Alcotest.(check bool) "bbox" true (Rect.equal r (Rect.make 0 1 3 4));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Rect.of_points: empty list") (fun () ->
      ignore (Rect.of_points []))

let test_rect_dims () =
  let r = Rect.make 1 1 4 6 in
  Alcotest.(check int) "width" 4 (Rect.width r);
  Alcotest.(check int) "height" 6 (Rect.height r);
  Alcotest.(check int) "cells" 24 (Rect.cells r);
  Alcotest.(check int) "hpwl" 8 (Rect.half_perimeter r)

let test_rect_contains () =
  let r = Rect.make 0 0 3 3 in
  Alcotest.(check bool) "inside" true (Rect.contains r (p 2 2));
  Alcotest.(check bool) "corner" true (Rect.contains r (p 3 3));
  Alcotest.(check bool) "outside" false (Rect.contains r (p 4 0))

let test_rect_expand () =
  let r = Rect.expand (Rect.make 2 2 4 4) 1 in
  Alcotest.(check bool) "expanded" true (Rect.equal r (Rect.make 1 1 5 5));
  let shrunk = Rect.expand (Rect.make 0 0 4 4) (-1) in
  Alcotest.(check bool) "shrunk" true (Rect.equal shrunk (Rect.make 1 1 3 3));
  Alcotest.check_raises "collapse rejected"
    (Invalid_argument "Rect.expand: rectangle collapsed") (fun () ->
      ignore (Rect.expand (Rect.make 0 0 1 1) (-2)))

let test_rect_intersect () =
  let a = Rect.make 0 0 4 4 and b = Rect.make 2 2 6 6 in
  (match Rect.intersect a b with
  | None -> Alcotest.fail "should overlap"
  | Some r -> Alcotest.(check bool) "overlap" true (Rect.equal r (Rect.make 2 2 4 4)));
  Alcotest.(check bool) "disjoint" true
    (Rect.intersect (Rect.make 0 0 1 1) (Rect.make 3 3 4 4) = None);
  (* touching at a corner: inclusive bounds overlap in one cell *)
  match Rect.intersect (Rect.make 0 0 2 2) (Rect.make 2 2 4 4) with
  | Some r -> Alcotest.(check int) "single cell" 1 (Rect.cells r)
  | None -> Alcotest.fail "inclusive corner should intersect"

let test_rect_clip () =
  let r = Rect.clip (Rect.make (-2) (-2) 3 3) ~within:(Rect.make 0 0 9 9) in
  Alcotest.(check bool) "clipped" true (Rect.equal r (Rect.make 0 0 3 3));
  Alcotest.check_raises "disjoint clip"
    (Invalid_argument "Rect.clip: disjoint rectangles") (fun () ->
      ignore (Rect.clip (Rect.make 20 20 30 30) ~within:(Rect.make 0 0 9 9)))

let test_rect_iter () =
  let r = Rect.make 1 1 3 2 in
  let count = ref 0 in
  Rect.iter r (fun q ->
      incr count;
      Alcotest.(check bool) "iterated point inside" true (Rect.contains r q));
  Alcotest.(check int) "visits all cells" (Rect.cells r) !count

let qcheck_tests =
  let open QCheck in
  let coord = Gen.int_range (-50) 50 in
  let point_gen = Gen.map2 Point.make coord coord in
  let point_arb = make point_gen in
  [
    Test.make ~name:"manhattan triangle inequality" ~count:300
      (triple point_arb point_arb point_arb)
      (fun (a, b, c) ->
        Point.manhattan a c <= Point.manhattan a b + Point.manhattan b c);
    Test.make ~name:"bbox contains its points" ~count:300
      (list_of_size (Gen.int_range 1 10) point_arb)
      (fun pts ->
        let r = Rect.of_points pts in
        List.for_all (Rect.contains r) pts);
    Test.make ~name:"intersect commutes" ~count:300
      (pair (pair point_arb point_arb) (pair point_arb point_arb))
      (fun ((a1, a2), (b1, b2)) ->
        let ra = Rect.of_points [ a1; a2 ] and rb = Rect.of_points [ b1; b2 ] in
        Rect.intersect ra rb = Rect.intersect rb ra);
  ]

let suites =
  [
    ( "geom.point",
      [
        Alcotest.test_case "manhattan" `Quick test_point_manhattan;
        Alcotest.test_case "arith" `Quick test_point_arith;
        Alcotest.test_case "compare" `Quick test_point_compare;
        Alcotest.test_case "clamp" `Quick test_point_clamp;
      ] );
    ( "geom.rect",
      [
        Alcotest.test_case "make normalizes" `Quick test_rect_make_normalizes;
        Alcotest.test_case "of_points" `Quick test_rect_of_points;
        Alcotest.test_case "dimensions" `Quick test_rect_dims;
        Alcotest.test_case "contains" `Quick test_rect_contains;
        Alcotest.test_case "expand" `Quick test_rect_expand;
        Alcotest.test_case "intersect" `Quick test_rect_intersect;
        Alcotest.test_case "clip" `Quick test_rect_clip;
        Alcotest.test_case "iter" `Quick test_rect_iter;
      ] );
    ("geom.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
