(** Integer lattice points.  Coordinates are in layout database units
    (micrometres for physical positions, region indices for grid
    positions — both are plain ints). *)

type t = { x : int; y : int }

val make : int -> int -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** [manhattan a b] is the L1 distance — the paper's source–sink distance
    [L_e] used for crosstalk budgeting. *)
val manhattan : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t

(** [clamp p ~lo ~hi] clamps both coordinates into the inclusive box. *)
val clamp : t -> lo:t -> hi:t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
