lib/geom/rect.mli: Format Point
