lib/geom/rect.ml: Format List Point
