type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make xa ya xb yb =
  { x0 = min xa xb; y0 = min ya yb; x1 = max xa xb; y1 = max ya yb }

let of_points = function
  | [] -> invalid_arg "Rect.of_points: empty list"
  | p :: rest ->
      let open Point in
      List.fold_left
        (fun r q ->
          {
            x0 = min r.x0 q.x;
            y0 = min r.y0 q.y;
            x1 = max r.x1 q.x;
            y1 = max r.y1 q.y;
          })
        { x0 = p.x; y0 = p.y; x1 = p.x; y1 = p.y }
        rest

let width r = r.x1 - r.x0 + 1
let height r = r.y1 - r.y0 + 1
let cells r = width r * height r
let half_perimeter r = r.x1 - r.x0 + (r.y1 - r.y0)
let contains r (p : Point.t) = p.x >= r.x0 && p.x <= r.x1 && p.y >= r.y0 && p.y <= r.y1

let expand r n =
  if width r + (2 * n) <= 0 || height r + (2 * n) <= 0 then
    invalid_arg "Rect.expand: rectangle collapsed";
  { x0 = r.x0 - n; y0 = r.y0 - n; x1 = r.x1 + n; y1 = r.y1 + n }

let intersect a b =
  let x0 = max a.x0 b.x0 and y0 = max a.y0 b.y0 in
  let x1 = min a.x1 b.x1 and y1 = min a.y1 b.y1 in
  if x0 > x1 || y0 > y1 then None else Some { x0; y0; x1; y1 }

let clip r ~within =
  match intersect r within with
  | Some r' -> r'
  | None -> invalid_arg "Rect.clip: disjoint rectangles"

let iter r f =
  for y = r.y0 to r.y1 do
    for x = r.x0 to r.x1 do
      f (Point.make x y)
    done
  done

let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1
let pp fmt r = Format.fprintf fmt "[%d,%d..%d,%d]" r.x0 r.y0 r.x1 r.y1
