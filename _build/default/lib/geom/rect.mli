(** Axis-aligned integer rectangles (inclusive bounds), used for net
    bounding boxes and routing-region extents. *)

type t = { x0 : int; y0 : int; x1 : int; y1 : int }

(** [make x0 y0 x1 y1] normalizes corner order. *)
val make : int -> int -> int -> int -> t

(** [of_points pts] is the bounding box of a non-empty point list. *)
val of_points : Point.t list -> t

val width : t -> int (** number of columns spanned (inclusive) *)

val height : t -> int (** number of rows spanned (inclusive) *)

(** [cells r] is [width * height] — the number of lattice cells inside. *)
val cells : t -> int

(** [half_perimeter r] is the HPWL lower bound on a net's wire length. *)
val half_perimeter : t -> int

val contains : t -> Point.t -> bool

(** [expand r n] grows all four sides by [n] (may be negative). *)
val expand : t -> int -> t

(** [intersect a b] is the overlapping rectangle, if any. *)
val intersect : t -> t -> t option

(** [clip r ~within] intersects, raising [Invalid_argument] if disjoint. *)
val clip : t -> within:t -> t

(** [iter r f] calls [f p] for every lattice point inside, row-major. *)
val iter : t -> (Point.t -> unit) -> unit

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
