(** The length-scaled Keff (LSK) model, paper §2.2.

    For a routed net i,

      LSK_i = Σ_j l_j · K_i^j        (Equation 1)

    where K_i^j is the net's total inductive coupling inside region R_j
    (from its SINO layout) and l_j its wire length there (µm).  A lookup
    table built from circuit simulations then converts LSK to an RLC
    crosstalk noise voltage; the inverse lookup converts the noise
    constraint into an LSK budget for Phase I. *)

type t = {
  table : Eda_util.Lintable.t;  (** LSK (µm·K) → noise (V), non-decreasing *)
  keff : Eda_sino.Keff.params;  (** Keff parameters the table was built with *)
}

(** [value segments] sums [l_um · k] over [(l_um, k)] pairs (Equation 1). *)
val value : (float * float) list -> float

(** [noise t ~lsk] — predicted crosstalk voltage. *)
val noise : t -> lsk:float -> float

(** [lsk_bound t ~noise] — the largest LSK whose predicted noise stays
    within [noise]; this is the budget uniform partitioning divides by the
    source–sink Manhattan distance. *)
val lsk_bound : t -> noise:float -> float

(** [violates t ~lsk ~bound_v] — does the predicted noise exceed
    [bound_v]? *)
val violates : t -> lsk:float -> bound_v:float -> bool

val pp : Format.formatter -> t -> unit
