(** Builds the LSK → noise-voltage lookup table the way the paper does
    (§2.2): generate SINO-style layouts of a single routing region, compute
    each victim's LSK value with the Keff model, measure the corresponding
    crosstalk voltage with (our) SPICE on the equivalent coupled RLC bus,
    and tabulate.  Isotonic regression smooths simulation noise so the
    inverse lookup (voltage → LSK budget) is well defined. *)

(** Electrical/technology parameters of a global wire and its drivers —
    representative ITRS 0.10 µm values by default (Vdd 1.05 V, 3 GHz
    clocking ⇒ 30 ps edges). *)
type electrical = {
  r_per_m : float;
  l_per_m : float;
  c_per_m : float;
  cc_per_m : float;
  rd : float;
  cl : float;
  vdd : float;
  t_rise : float;
  t_delay : float;
  segments : int;  (** ladder segments per wire in simulation *)
}

val default_electrical : electrical

(** [spec_of e ~keff ~length_m] is the coupled-line spec with the Keff
    model's [k1] as the adjacent inductive coupling — the formula and the
    simulator share one geometry by construction. *)
val spec_of :
  electrical -> keff:Eda_sino.Keff.params -> length_m:float -> Eda_circuit.Coupled_line.spec

(** [victim_keff ~keff roles victim] evaluates the Keff surrogate on a
    bus role assignment (aggressors are the sensitive neighbours). *)
val victim_keff :
  keff:Eda_sino.Keff.params ->
  Eda_circuit.Coupled_line.wire_role array ->
  int ->
  float

(** [samples ?seed ?configs ?lengths_m ~keff e] runs the simulation sweep
    and returns raw [(lsk_um, noise_v)] points. *)
val samples :
  ?seed:int ->
  ?configs:int ->
  ?lengths_m:float list ->
  keff:Eda_sino.Keff.params ->
  electrical ->
  (float * float) list

(** [build ?seed ?entries ?configs ?lengths_m ?keff e] — the complete
    model; [entries] defaults to the paper's 100. *)
val build :
  ?seed:int ->
  ?entries:int ->
  ?configs:int ->
  ?lengths_m:float list ->
  ?keff:Eda_sino.Keff.params ->
  electrical ->
  Lsk.t

(** A lazily built default model (default electrical parameters, default
    Keff, seed 42) shared by examples, tests and benches. *)
val default : Lsk.t Lazy.t
