module Lintable = Eda_util.Lintable

type t = { table : Lintable.t; keff : Eda_sino.Keff.params }

let value segments =
  List.fold_left
    (fun acc (l_um, k) ->
      if l_um < 0.0 || k < 0.0 then invalid_arg "Lsk.value: negative term";
      acc +. (l_um *. k))
    0.0 segments

let noise t ~lsk = Lintable.eval t.table lsk
let lsk_bound t ~noise = Lintable.inverse t.table noise
let violates t ~lsk ~bound_v = noise t ~lsk > bound_v +. 1e-12

let pp fmt t =
  Format.fprintf fmt "lsk-model(%d entries, LSK %.0f..%.0f -> %.3f..%.3fV)"
    (Lintable.size t.table) (Lintable.x_min t.table) (Lintable.x_max t.table)
    (Lintable.eval t.table (Lintable.x_min t.table))
    (Lintable.eval t.table (Lintable.x_max t.table))
