module Rng = Eda_util.Rng
module Lintable = Eda_util.Lintable
module Keff = Eda_sino.Keff
module Coupled_line = Eda_circuit.Coupled_line

type electrical = {
  r_per_m : float;
  l_per_m : float;
  c_per_m : float;
  cc_per_m : float;
  rd : float;
  cl : float;
  vdd : float;
  t_rise : float;
  t_delay : float;
  segments : int;
}

let default_electrical =
  {
    r_per_m = 30e3; (* 30 ohm/mm: wide global wire *)
    l_per_m = 6e-7; (* 0.6 nH/mm *)
    c_per_m = 2e-10; (* 0.20 pF/mm to ground *)
    cc_per_m = 1e-10; (* 0.10 pF/mm to each adjacent track *)
    rd = 30.0;
    cl = 5e-14;
    vdd = 1.05;
    t_rise = 20e-12; (* aggressive 3 GHz edge *)
    t_delay = 20e-12;
    segments = 8;
  }

let spec_of e ~keff ~length_m =
  {
    Coupled_line.length_m;
    segments = e.segments;
    r_per_m = e.r_per_m;
    l_per_m = e.l_per_m;
    c_per_m = e.c_per_m;
    cc_per_m = e.cc_per_m;
    k_adjacent = keff.Keff.k1;
  }

let drive_of e =
  {
    Coupled_line.rd = e.rd;
    cl = e.cl;
    vdd = e.vdd;
    t_delay = e.t_delay;
    t_rise = e.t_rise;
  }

let victim_keff ~keff roles victim =
  let n = Array.length roles in
  if victim < 0 || victim >= n || roles.(victim) <> Coupled_line.Victim then
    invalid_arg "Table_builder.victim_keff: not a victim";
  let total = ref 0.0 in
  let walk step =
    let shields = ref 0 and dist = ref 1 and q = ref (victim + step) in
    while !q >= 0 && !q < n && !dist <= keff.Keff.window do
      (match roles.(!q) with
      | Coupled_line.Shield -> incr shields
      | Coupled_line.Aggressor | Coupled_line.Opposing ->
          total := !total +. Keff.pair_coupling keff ~dist:!dist ~shields_between:!shields
      | Coupled_line.Victim | Coupled_line.Quiet -> ());
      q := !q + step;
      incr dist
    done
  in
  walk 1;
  walk (-1);
  !total

(* One random single-region SINO-style layout: a handful of wires around a
   victim, some switching (sensitive aggressors), some quiet, some
   shields — mirroring what min-area SINO solutions look like. *)
let random_roles rng =
  let n = Rng.int_in rng 3 8 in
  let victim = Rng.int rng n in
  Array.init n (fun i ->
      if i = victim then Coupled_line.Victim
      else begin
        let u = Rng.float rng 1.0 in
        if u < 0.50 then Coupled_line.Aggressor
        else if u < 0.72 then Coupled_line.Shield
        else Coupled_line.Quiet
      end)

let find_victim roles =
  let v = ref (-1) in
  Array.iteri (fun i r -> if r = Coupled_line.Victim && !v < 0 then v := i) roles;
  !v

let samples ?(seed = 42) ?(configs = 14)
    ?(lengths_m = [ 0.25e-3; 0.5e-3; 0.75e-3; 1.0e-3; 1.5e-3; 2.0e-3; 3.0e-3 ])
    ~keff e =
  let rng = Rng.create seed in
  let drive = drive_of e in
  let configurations =
    (* always include the canonical extremes so the table brackets well *)
    [ [| Coupled_line.Aggressor; Coupled_line.Victim |];
      [| Coupled_line.Aggressor; Coupled_line.Victim; Coupled_line.Aggressor |];
      [| Coupled_line.Aggressor; Coupled_line.Shield; Coupled_line.Victim |] ]
    @ List.init (max 0 (configs - 3)) (fun _ -> random_roles rng)
  in
  List.concat_map
    (fun roles ->
      let victim = find_victim roles in
      let k = victim_keff ~keff roles victim in
      List.map
        (fun length_m ->
          let spec = spec_of e ~keff ~length_m in
          let noise =
            List.assoc victim (Coupled_line.victim_noise spec drive roles)
          in
          let lsk = k *. (length_m *. 1e6) in
          (lsk, noise))
        lengths_m)
    configurations

let build ?(seed = 42) ?(entries = 100) ?configs ?lengths_m
    ?(keff = Keff.default) e =
  let pts = samples ~seed ?configs ?lengths_m ~keff e in
  (* anchor the origin: zero coupling or zero length gives zero noise *)
  let pts = (0.0, 0.0) :: pts in
  let table = Lintable.resample (Lintable.isotonic (Lintable.of_points pts)) entries in
  { Lsk.table; keff }

let default = lazy (build default_electrical)
