lib/lsk/table_builder.mli: Eda_circuit Eda_sino Lazy Lsk
