lib/lsk/lsk.mli: Eda_sino Eda_util Format
