lib/lsk/table_builder.ml: Array Eda_circuit Eda_sino Eda_util List Lsk
