lib/lsk/lsk.ml: Eda_sino Eda_util Format List
