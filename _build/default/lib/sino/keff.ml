type params = { k1 : float; shield_block : float; window : int }

let default = { k1 = 0.55; shield_block = 0.25; window = 8 }

let pair_coupling p ~dist ~shields_between =
  if dist < 1 then invalid_arg "Keff.pair_coupling: dist >= 1";
  if shields_between < 0 then invalid_arg "Keff.pair_coupling: negative shields";
  if dist > p.window then 0.0
  else (p.k1 ** float_of_int dist) *. (p.shield_block ** float_of_int shields_between)

let max_feasible_k p =
  (* 2 * sum_{d=1..window} k1^d *)
  let s = ref 0.0 in
  for d = 1 to p.window do
    s := !s +. (p.k1 ** float_of_int d)
  done;
  2.0 *. !s
