(** Formula (3): the closed-form estimate of the number of shields the
    min-area SINO solution needs in a region, as a function of the number
    of net segments [Nns] and their sensitivities [S_i]:

      Nss ≈ a1·ΣS² + a2·(ΣS²)/N + a3·ΣS + a4·(ΣS)/N + a5·N + a6

    The paper takes the coefficients from its tech report [7]; we re-fit
    them with the same methodology — least squares against min-area SINO
    solutions over a sweep of instance sizes and sensitivity profiles —
    and verify the ~10 % accuracy claim in the test suite.  The ID
    router's weight (Formula 2) uses this estimate to reserve and minimize
    shielding area during routing. *)

type coeffs = { a1 : float; a2 : float; a3 : float; a4 : float; a5 : float; a6 : float }

(** [features ~nns ~s] is the 6-vector of regressors. *)
val features : nns:int -> s:float array -> float array

(** [predict c ~nns ~s] — never negative (clamped). *)
val predict : coeffs -> nns:int -> s:float array -> float

(** [predict_uniform c ~nns ~rate] specializes to S_i = rate for all nets —
    the expectation under the paper's random sensitivity model, used in the
    routing loop where exact per-region memberships are too fluid. *)
val predict_uniform : coeffs -> nns:int -> rate:float -> float

(** [fit ?params ?trials ?seed ~kth_of ()] generates random instances
    (sizes 2–80, sensitivity rates 0.1–0.8), solves min-area SINO on each,
    and returns the least-squares coefficients.  [kth_of rng] samples the
    per-net K bound; use the distribution your budgeting produces. *)
val fit :
  ?params:Keff.params ->
  ?trials:int ->
  ?seed:int ->
  kth_of:(Eda_util.Rng.t -> float) ->
  unit ->
  coeffs

(** Prediction quality of {!fit} against fresh solver runs. *)
type quality = {
  mean_abs_err : float;  (** shields, all instances *)
  rel_err_large : float;  (** mean relative error, instances with ≥ 5 shields *)
  aggregate_err : float;  (** |Σpred − Σactual| / Σactual — the paper's
                              "estimates differ by at most 10 %" regime *)
}

(** [accuracy ?params ?trials ?seed ~kth_of coeffs] replays fresh random
    instances and scores the prediction against the solver. *)
val accuracy :
  ?params:Keff.params ->
  ?trials:int ->
  ?seed:int ->
  kth_of:(Eda_util.Rng.t -> float) ->
  coeffs ->
  quality

(** [default_kth_sampler rng] — lognormal around the K budgets uniform
    crosstalk partitioning typically yields (median ≈ 0.7). *)
val default_kth_sampler : Eda_util.Rng.t -> float

(** Coefficients fit once (lazily) with the default samplers and seed. *)
val default : coeffs Lazy.t

val pp : Format.formatter -> coeffs -> unit
