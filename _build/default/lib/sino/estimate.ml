module Rng = Eda_util.Rng
module Matrix = Eda_util.Matrix

type coeffs = { a1 : float; a2 : float; a3 : float; a4 : float; a5 : float; a6 : float }

let features ~nns ~s =
  if Array.length s <> nns then invalid_arg "Estimate.features: length mismatch";
  let n = float_of_int nns in
  let sum = Array.fold_left ( +. ) 0.0 s in
  let sum2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 s in
  [| sum2; sum2 /. Float.max 1.0 n; sum; sum /. Float.max 1.0 n; n; 1.0 |]

let predict c ~nns ~s =
  let f = features ~nns ~s in
  let v =
    (c.a1 *. f.(0)) +. (c.a2 *. f.(1)) +. (c.a3 *. f.(2)) +. (c.a4 *. f.(3))
    +. (c.a5 *. f.(4)) +. c.a6
  in
  Float.max 0.0 v

let predict_uniform c ~nns ~rate =
  predict c ~nns ~s:(Array.make nns rate)

let default_kth_sampler rng =
  let v = exp (Rng.gaussian rng ~mu:(log 0.7) ~sigma:0.5) in
  Float.min 2.5 (Float.max 0.15 v)

let random_instance rng ~kth_of =
  let nns = Rng.int_in rng 2 80 in
  let rate = 0.1 +. Rng.float rng 0.7 in
  let pair_seed = Rng.int rng 1_000_000 in
  let nets = Array.init nns (fun i -> i) in
  let kth = Array.init nns (fun _ -> kth_of rng) in
  let sensitive i j = i <> j && Rng.pair_hash ~seed:pair_seed i j < rate in
  Instance.make ~nets ~kth ~sensitive

let sample_set ?(params = Keff.default) ~trials ~seed ~kth_of () =
  let rng = Rng.create seed in
  List.init trials (fun _ ->
      let inst = random_instance rng ~kth_of in
      let nss = Solver.shields_needed ~params (Rng.split rng) inst in
      (inst, nss))

let fit ?(params = Keff.default) ?(trials = 240) ?(seed = 2002) ~kth_of () =
  let samples = sample_set ~params ~trials ~seed ~kth_of () in
  let rows =
    List.map
      (fun (inst, _) ->
        features ~nns:(Instance.size inst) ~s:(Instance.sensitivities inst))
      samples
  in
  let b = Array.of_list (List.map (fun (_, nss) -> float_of_int nss) samples) in
  let x = Matrix.least_squares (Matrix.of_rows (Array.of_list rows)) b in
  { a1 = x.(0); a2 = x.(1); a3 = x.(2); a4 = x.(3); a5 = x.(4); a6 = x.(5) }

type quality = {
  mean_abs_err : float;
  rel_err_large : float;
  aggregate_err : float;
}

let accuracy ?(params = Keff.default) ?(trials = 120) ?(seed = 7177) ~kth_of c =
  let samples = sample_set ~params ~trials ~seed ~kth_of () in
  let abs_errs = ref [] and rel_errs = ref [] in
  let sum_pred = ref 0.0 and sum_act = ref 0.0 in
  List.iter
    (fun (inst, nss) ->
      let pred =
        predict c ~nns:(Instance.size inst) ~s:(Instance.sensitivities inst)
      in
      let err = Float.abs (pred -. float_of_int nss) in
      abs_errs := err :: !abs_errs;
      sum_pred := !sum_pred +. pred;
      sum_act := !sum_act +. float_of_int nss;
      if nss >= 5 then rel_errs := (err /. float_of_int nss) :: !rel_errs)
    samples;
  let mean l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  {
    mean_abs_err = mean !abs_errs;
    rel_err_large = mean !rel_errs;
    aggregate_err =
      (if !sum_act = 0.0 then 0.0 else Float.abs (!sum_pred -. !sum_act) /. !sum_act);
  }

let default =
  lazy (fit ~kth_of:default_kth_sampler ())

let pp fmt c =
  Format.fprintf fmt
    "Nss ~ %.3f*SS2 %+.3f*SS2/N %+.3f*SS %+.3f*SS/N %+.3f*N %+.3f"
    c.a1 c.a2 c.a3 c.a4 c.a5 c.a6
