lib/sino/estimate.mli: Eda_util Format Keff Lazy
