lib/sino/solver.ml: Array Eda_util Instance Keff Layout List Option
