lib/sino/instance.mli: Format
