lib/sino/solver.mli: Eda_util Instance Keff Layout
