lib/sino/instance.ml: Array Format
