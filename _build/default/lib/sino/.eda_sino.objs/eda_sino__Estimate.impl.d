lib/sino/estimate.ml: Array Eda_util Float Format Instance Keff List Solver
