lib/sino/keff.mli:
