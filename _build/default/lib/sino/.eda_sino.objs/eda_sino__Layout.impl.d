lib/sino/layout.ml: Array Format Instance Keff Printf
