lib/sino/keff.ml:
