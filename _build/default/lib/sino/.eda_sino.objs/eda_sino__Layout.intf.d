lib/sino/layout.mli: Format Instance Keff
