(** A SINO layout: the assignment of an instance's net segments (and
    inserted shields) to an ordered sequence of tracks, plus the metrics
    that define feasibility:

    - capacitive crosstalk freedom — no two sensitive nets on adjacent
      tracks (§2.1);
    - inductive bound — K_i ≤ Kth_i for every net, with K_i from the
      {!Keff} model. *)

type slot = Net of int  (** local net index *) | Shield

type t

(** [make inst slots] checks every local net appears exactly once. *)
val make : Instance.t -> slot array -> t

val instance : t -> Instance.t
val slots : t -> slot array
val num_tracks : t -> int
val num_shields : t -> int

(** [position t i] — track index of local net [i]. *)
val position : t -> int -> int

(** [k_of t p i] — K_i of local net [i] under Keff parameters [p]. *)
val k_of : t -> Keff.params -> int -> float

(** [k_all t p] — every net's K. *)
val k_all : t -> Keff.params -> float array

(** Number of adjacent sensitive pairs (capacitive violations). *)
val cap_violations : t -> int

(** Nets with K_i > Kth_i under [p]. *)
val k_violations : t -> Keff.params -> int list

val feasible : t -> Keff.params -> bool

(** [insert_shield t pos] inserts a shield before track [pos]
    (0 ≤ pos ≤ num_tracks). *)
val insert_shield : t -> int -> t

(** [remove_shield t pos] removes the shield at track [pos]; raises
    [Invalid_argument] if that track is a net. *)
val remove_shield : t -> int -> t

(** [swap t a b] exchanges the contents of tracks [a] and [b]. *)
val swap : t -> int -> int -> t

val pp : Format.formatter -> t -> unit
