(** The Keff inductive-coupling model (He/Lepak ISPD'00 [4] as used in
    §2.2), in the surrogate form documented in DESIGN.md §2.

    The coupling coefficient between two signal wires at track distance
    [d] with [n] shields strictly between them is

      K(d, n) = k1^d · shield_block^n

    - [k1^d] is the AR(1) decay of inductive coupling with separation —
      the same profile the circuit-level simulator uses, so the formula
      and the "SPICE" ground truth agree by construction at n = 0;
    - each intervening shield provides a closer return path and damps the
      residual coupling by [shield_block] (calibrated against
      {!Eda_circuit.Coupled_line}: a grounded shield leaves ≈ 25 % of the
      distance-predicted noise of a d = 2 pair).

    The total coupling K_i of net i is the sum of K over all *sensitive*
    aggressors (§2.1); non-sensitive neighbours do not malfunction the
    victim and are excluded, exactly as in the paper. *)

type params = {
  k1 : float;  (** adjacent-track coupling, 0 ≤ k1 < 1 *)
  shield_block : float;  (** per-shield damping, 0 < shield_block ≤ 1 *)
  window : int;  (** neighbours beyond this distance are ignored *)
}

val default : params

(** [pair_coupling p ~dist ~shields_between] is K(d, n); 0 beyond the
    window.  Requires [dist >= 1]. *)
val pair_coupling : params -> dist:int -> shields_between:int -> float

(** [max_feasible_k p] = 2·Σ_{d≥1} k1^d — an upper bound on any K_i in an
    unshielded layout; useful for normalizing budgets. *)
val max_feasible_k : params -> float
