type t = { nets : int array; kth : float array; sens : bool array array }

let make ~nets ~kth ~sensitive =
  let n = Array.length nets in
  if Array.length kth <> n then invalid_arg "Instance.make: kth length mismatch";
  let sens =
    Array.init n (fun i ->
        Array.init n (fun j -> i <> j && sensitive nets.(i) nets.(j)))
  in
  (* enforce symmetry defensively: model sensitivity is mutual (§2.1) *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = sens.(i).(j) || sens.(j).(i) in
      sens.(i).(j) <- v;
      sens.(j).(i) <- v
    done
  done;
  { nets; kth; sens }

let size t = Array.length t.nets

let net_id t i = t.nets.(i)
let kth t i = t.kth.(i)

let with_kth t i v =
  if v <= 0.0 then invalid_arg "Instance.with_kth: bound must be positive";
  let kth = Array.copy t.kth in
  kth.(i) <- v;
  { t with kth }

let sens t i j = t.sens.(i).(j)

let sensitivity t i =
  let n = size t in
  if n <= 1 then 0.0
  else begin
    let cnt = ref 0 in
    for j = 0 to n - 1 do
      if t.sens.(i).(j) then incr cnt
    done;
    float_of_int !cnt /. float_of_int (n - 1)
  end

let sensitivities t = Array.init (size t) (sensitivity t)

let pp fmt t =
  Format.fprintf fmt "sino-instance(%d nets, mean S=%.2f)" (size t)
    (if size t = 0 then 0.0
     else
       Array.fold_left ( +. ) 0.0 (sensitivities t) /. float_of_int (size t))
