type t = { parent : int array; rank : int array; mutable sets : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then false
  else begin
    let ri, rj = if t.rank.(ri) < t.rank.(rj) then (rj, ri) else (ri, rj) in
    t.parent.(rj) <- ri;
    if t.rank.(ri) = t.rank.(rj) then t.rank.(ri) <- t.rank.(ri) + 1;
    t.sets <- t.sets - 1;
    true
  end

let same t i j = find t i = find t j
let count t = t.sets
