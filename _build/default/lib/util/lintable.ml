type t = { xs : float array; ys : float array }

let of_points pts =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pts in
  (* merge duplicate abscissae by averaging *)
  let rec merge acc = function
    | [] -> List.rev acc
    | (x, y) :: rest ->
        let same, rest' = List.partition (fun (x', _) -> x' = x) rest in
        let ys = y :: List.map snd same in
        let avg = List.fold_left ( +. ) 0.0 ys /. float_of_int (List.length ys) in
        merge ((x, avg) :: acc) rest'
  in
  let merged = merge [] sorted in
  if List.length merged < 2 then
    invalid_arg "Lintable.of_points: need at least 2 distinct abscissae";
  let xs = Array.of_list (List.map fst merged) in
  let ys = Array.of_list (List.map snd merged) in
  { xs; ys }

let size t = Array.length t.xs
let x_min t = t.xs.(0)
let x_max t = t.xs.(size t - 1)
let entries t = Array.init (size t) (fun i -> (t.xs.(i), t.ys.(i)))

let isotonic t =
  (* Pool-adjacent-violators for a non-decreasing fit, uniform weights. *)
  let n = size t in
  let level = Array.copy t.ys in
  let weight = Array.make n 1.0 in
  let len = ref 0 in
  (* blocks stored compacted in level.(0 .. !len-1) with sizes in weight *)
  for i = 0 to n - 1 do
    level.(!len) <- t.ys.(i);
    weight.(!len) <- 1.0;
    incr len;
    while !len > 1 && level.(!len - 2) > level.(!len - 1) do
      let w = weight.(!len - 2) +. weight.(!len - 1) in
      let v =
        ((level.(!len - 2) *. weight.(!len - 2))
        +. (level.(!len - 1) *. weight.(!len - 1)))
        /. w
      in
      level.(!len - 2) <- v;
      weight.(!len - 2) <- w;
      decr len
    done
  done;
  let ys = Array.make n 0.0 in
  let idx = ref 0 in
  for b = 0 to !len - 1 do
    let cnt = int_of_float weight.(b) in
    for _ = 1 to cnt do
      ys.(!idx) <- level.(b);
      incr idx
    done
  done;
  { xs = Array.copy t.xs; ys }

let eval t x =
  let n = size t in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    (* binary search for the bracketing segment *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = t.xs.(!lo) and x1 = t.xs.(!hi) in
    let y0 = t.ys.(!lo) and y1 = t.ys.(!hi) in
    y0 +. ((x -. x0) /. (x1 -. x0) *. (y1 -. y0))
  end

let resample t n =
  if n < 2 then invalid_arg "Lintable.resample: need n >= 2";
  let lo = x_min t and hi = x_max t in
  let xs =
    Array.init n (fun i ->
        lo +. (float_of_int i /. float_of_int (n - 1) *. (hi -. lo)))
  in
  { xs; ys = Array.map (eval t) xs }

let inverse t y =
  let n = size t in
  if y <= t.ys.(0) then t.xs.(0)
  else if y >= t.ys.(n - 1) then t.xs.(n - 1)
  else begin
    let i = ref 0 in
    while t.ys.(!i + 1) < y do
      incr i
    done;
    let y0 = t.ys.(!i) and y1 = t.ys.(!i + 1) in
    let x0 = t.xs.(!i) and x1 = t.xs.(!i + 1) in
    if y1 = y0 then x0 else x0 +. ((y -. y0) /. (y1 -. y0) *. (x1 -. x0))
  end

let pp fmt t =
  Array.iteri
    (fun i x -> Format.fprintf fmt "%g\t%g@\n" x t.ys.(i))
    t.xs
