lib/util/heap.mli:
