lib/util/rng.mli:
