lib/util/lintable.ml: Array Format List
