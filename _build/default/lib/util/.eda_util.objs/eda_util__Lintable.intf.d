lib/util/lintable.mli: Format
