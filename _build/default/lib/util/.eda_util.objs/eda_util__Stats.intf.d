lib/util/stats.mli:
