type 'a t = {
  mutable keys : float array;
  mutable vals : 'a array;
  mutable n : int;
}

let create () = { keys = Array.make 16 0.0; vals = [||]; n = 0 }
let length h = h.n
let is_empty h = h.n = 0

let grow h v =
  let cap = Array.length h.keys in
  if h.n >= cap then begin
    let keys' = Array.make (2 * cap) 0.0 in
    Array.blit h.keys 0 keys' 0 h.n;
    h.keys <- keys';
    let vals' = Array.make (2 * cap) v in
    Array.blit h.vals 0 vals' 0 h.n;
    h.vals <- vals'
  end
  else if Array.length h.vals = 0 then h.vals <- Array.make cap v

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(parent) < h.keys.(i) then begin
      swap h parent i;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.n && h.keys.(l) > h.keys.(!best) then best := l;
  if r < h.n && h.keys.(r) > h.keys.(!best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let push h key v =
  grow h v;
  h.keys.(h.n) <- key;
  h.vals.(h.n) <- v;
  h.n <- h.n + 1;
  sift_up h (h.n - 1)

let peek_max h =
  if h.n = 0 then raise Not_found;
  (h.keys.(0), h.vals.(0))

let pop_max h =
  if h.n = 0 then raise Not_found;
  let top = (h.keys.(0), h.vals.(0)) in
  h.n <- h.n - 1;
  if h.n > 0 then begin
    h.keys.(0) <- h.keys.(h.n);
    h.vals.(0) <- h.vals.(h.n);
    sift_down h 0
  end;
  top

let clear h = h.n <- 0
