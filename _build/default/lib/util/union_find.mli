(** Disjoint-set forest with path compression and union by rank.  Used by
    the rectilinear MST (Kruskal variant) and connectivity checks. *)

type t

(** [create n] builds [n] singleton sets labelled [0 .. n-1]. *)
val create : int -> t

(** [find t i] is the canonical representative of [i]'s set. *)
val find : t -> int -> int

(** [union t i j] merges the two sets; returns [true] if they were
    previously distinct. *)
val union : t -> int -> int -> bool

(** [same t i j] tests whether [i] and [j] are in the same set. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int
