(** Monotone piecewise-linear lookup tables.

    The LSK model maps an LSK value to a crosstalk voltage through a table
    built from circuit simulations (paper §2.2: 100 entries covering
    0.10–0.20 V).  This module provides construction from noisy samples
    (with isotonic smoothing), forward evaluation, and inverse lookup. *)

type t

(** [of_points pts] builds a table from [(x, y)] samples.  Points are sorted
    by [x]; duplicate [x] values are averaged.  Raises [Invalid_argument] on
    fewer than 2 distinct abscissae. *)
val of_points : (float * float) list -> t

(** [isotonic t] returns a copy whose [y] values are replaced by their
    non-decreasing isotonic regression (pool-adjacent-violators), so that
    the inverse lookup is well defined even for noisy simulation data. *)
val isotonic : t -> t

(** [resample t n] re-tabulates to [n] equally spaced abscissae spanning the
    original range. *)
val resample : t -> int -> t

(** [eval t x] evaluates with linear interpolation, clamping outside the
    tabulated range. *)
val eval : t -> float -> float

(** [inverse t y] finds the smallest [x] with [eval t x >= y] by linear
    interpolation; clamps to the table range.  Requires a non-decreasing
    table (apply {!isotonic} first if unsure). *)
val inverse : t -> float -> float

(** Tabulated abscissa range. *)
val x_min : t -> float

val x_max : t -> float

(** Number of entries. *)
val size : t -> int

(** Raw entries, ascending in [x]. *)
val entries : t -> (float * float) array

val pp : Format.formatter -> t -> unit
