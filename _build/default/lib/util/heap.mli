(** Growable binary max-heap keyed by float priority.

    The iterative-deletion router needs "pop the globally heaviest edge"
    with keys that only ever decrease; the intended protocol is the lazy
    one: on pop, the caller recomputes the current key and re-inserts if
    stale.  Duplicates of the same payload are therefore allowed. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [length h] is the number of stored entries (including stale ones). *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h key v] inserts [v] with priority [key]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_max h] removes and returns the entry with the largest key.
    Raises [Not_found] when empty. *)
val pop_max : 'a t -> float * 'a

(** [peek_max h] returns the max entry without removing it. *)
val peek_max : 'a t -> float * 'a

val clear : 'a t -> unit
