(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the library takes an explicit [Rng.t] so
    that benchmark circuits, SINO solutions and LSK tables are reproducible
    run to run.  The generator is the splitmix64 sequence, which has a
    one-word state, passes BigCrush, and splits cleanly. *)

type t

(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent child
    generator; used to give each net / region / trial its own stream. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if
    [n <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in : t -> int -> int -> int

(** [float t x] is uniform in [\[0, x)]. *)
val float : t -> float -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** [exponential t ~mean] samples an exponential variate. *)
val exponential : t -> mean:float -> float

(** [gaussian t ~mu ~sigma] samples a normal variate (Box–Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [geometric t p] is the number of Bernoulli(p) failures before the first
    success (support {0, 1, ...}).  Requires [0 < p <= 1]. *)
val geometric : t -> float -> int

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly random element of the non-empty array [a]. *)
val choose : t -> 'a array -> 'a

(** [pair_hash ~seed i j] is a stateless uniform float in [\[0,1)] that is a
    pure function of the unordered pair [{i,j}] and [seed].  Used to realize
    the paper's random symmetric sensitivity matrix in O(1) space. *)
val pair_hash : seed:int -> int -> int -> float
