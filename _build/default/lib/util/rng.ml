type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: mixes a 64-bit value to full avalanche. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let pair_hash ~seed i j =
  let lo = min i j and hi = max i j in
  let h =
    mix64
      (Int64.add
         (mix64 (Int64.add (Int64.of_int seed) (Int64.of_int lo)))
         (Int64.of_int hi))
  in
  let v = Int64.to_float (Int64.shift_right_logical h 11) in
  v /. 9007199254740992.0
