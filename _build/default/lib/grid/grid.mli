(** The routing-region grid (paper §2.1): the two over-the-cell layers are
    cut by pre-routed power/ground wires into a [w]×[h] array of regions.
    Region [R(x,y)] offers [hcap] horizontal and [vcap] vertical tracks; a
    track holds a segment of either a signal net or a shield.  P/G wires
    are assumed wide enough that regions do not couple (§2.1), which is why
    crosstalk can be handled region by region.

    Regions are indexed [0 .. w*h-1] row-major; the boundaries between
    adjacent regions form the global-routing edges, indexed densely so the
    router can use plain arrays. *)

type t

(** [make ~w ~h ~hcap ~vcap] builds a grid with uniform capacities. *)
val make : w:int -> h:int -> hcap:int -> vcap:int -> t

(** [auto ~util_target netlist] derives uniform capacities from the
    netlist's expected track demand so that average per-region utilization
    is about [util_target] (the paper's circuits are routable with margin;
    this plays the role of the technology's fixed track count). *)
val auto : util_target:float -> Eda_netlist.Netlist.t -> t

val width : t -> int
val height : t -> int
val num_regions : t -> int
val num_edges : t -> int

(** Capacity of a region in a direction. *)
val cap : t -> Eda_geom.Point.t -> Dir.t -> int

(** Region/point conversions. *)
val region_id : t -> Eda_geom.Point.t -> int

val region_pt : t -> int -> Eda_geom.Point.t
val in_bounds : t -> Eda_geom.Point.t -> bool

(** Edge accessors.  An edge joins two adjacent regions; its direction is
    [H] for east–west neighbours and [V] for north–south. *)
val edge_id : t -> Eda_geom.Point.t -> Dir.t -> int
(** [edge_id g p d] is the edge leaving [p] eastwards ([H]) or northwards
    ([V]).  Raises [Invalid_argument] if it would leave the grid. *)

val edge_ends : t -> int -> Eda_geom.Point.t * Eda_geom.Point.t
val edge_dir : t -> int -> Dir.t

(** [edges_within g rect] lists all edge ids with both endpoints inside
    [rect] (clipped to the grid). *)
val edges_within : t -> Eda_geom.Rect.t -> int list

(** [incident_edges g p] lists the 2–4 edges touching region [p]. *)
val incident_edges : t -> Eda_geom.Point.t -> int list

val pp : Format.formatter -> t -> unit
