(** A global route for one net: a set of region-graph edges forming a tree
    that connects all the net's pin regions.

    Track accounting follows the paper's model: a net that has any segment
    of direction [d] inside region [R] occupies exactly one [d]-track of
    [R]; the segment's *length* inside [R] (needed by the LSK model) is
    half a gcell per incident edge (an edge runs center-to-center across
    the shared boundary). *)

type t

(** [of_edges grid ~net edges] builds a route; edge ids must be valid.
    Duplicates are removed. *)
val of_edges : Grid.t -> net:int -> int list -> t

val net : t -> int
val edges : t -> int array
val num_edges : t -> int

(** Total wire length in gcell units (1 edge = 1 gcell pitch). *)
val length_gcells : t -> float

(** Total wire length in µm given the region pitch. *)
val length_um : t -> gcell_um:float -> float

(** [segments grid t dir] lists [(region_id, length_gcells)] for every
    region where the net uses a [dir] track. *)
val segments : Grid.t -> t -> Dir.t -> (int * float) list

(** [occupied grid t] lists [(region_id, dir)] pairs, deduplicated. *)
val occupied : Grid.t -> t -> (int * Dir.t) list

(** [connects grid t pins] — do the route edges (plus shared regions) link
    all pin regions together? A pin-only net in a single region with no
    edges is connected by definition. *)
val connects : Grid.t -> t -> Eda_geom.Point.t list -> bool

(** [is_tree grid t] — the edge set is acyclic (|E| = |touched regions| -
    #components). *)
val is_tree : Grid.t -> t -> bool

(** [path_edges grid t ~source ~sink] is the unique tree path (edge ids)
    from [source]'s region to [sink]'s region — what the per-sink LSK sum
    walks.  Empty when the two share a region.  Raises [Not_found] if the
    route does not connect them. *)
val path_edges :
  Grid.t -> t -> source:Eda_geom.Point.t -> sink:Eda_geom.Point.t -> int list

(** [path_length grid t ~source ~sink] = [List.length (path_edges ...)] in
    gcells.  Raises [Not_found] if the route does not connect them. *)
val path_length : Grid.t -> t -> source:Eda_geom.Point.t -> sink:Eda_geom.Point.t -> int

val pp : Format.formatter -> t -> unit
