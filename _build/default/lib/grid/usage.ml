open Eda_geom

type t = {
  grid : Grid.t;
  gcell_um : float;
  nns_h : int array;
  nns_v : int array;
  nss_h : int array;
  nss_v : int array;
}

let create grid ~gcell_um =
  let n = Grid.num_regions grid in
  {
    grid;
    gcell_um;
    nns_h = Array.make n 0;
    nns_v = Array.make n 0;
    nss_h = Array.make n 0;
    nss_v = Array.make n 0;
  }

let grid t = t.grid
let gcell_um t = t.gcell_um

let nns_array t = function Dir.H -> t.nns_h | Dir.V -> t.nns_v
let nss_array t = function Dir.H -> t.nss_h | Dir.V -> t.nss_v

let bump t route delta =
  List.iter
    (fun (r, dir) ->
      let a = nns_array t dir in
      a.(r) <- a.(r) + delta;
      if a.(r) < 0 then invalid_arg "Usage: negative occupancy")
    (Route.occupied t.grid route)

let add_route t route = bump t route 1
let remove_route t route = bump t route (-1)

let of_routes grid ~gcell_um routes =
  let t = create grid ~gcell_um in
  List.iter (add_route t) routes;
  t

let set_shields t r dir count =
  if count < 0 then invalid_arg "Usage.set_shields: negative";
  (nss_array t dir).(r) <- count

let nns t r dir = (nns_array t dir).(r)
let nss t r dir = (nss_array t dir).(r)
let used t r dir = nns t r dir + nss t r dir

let capacity t r dir = Grid.cap t.grid (Grid.region_pt t.grid r) dir

let utilization t r dir =
  float_of_int (used t r dir) /. float_of_int (capacity t r dir)

let overflow t r dir = max 0 (used t r dir - capacity t r dir)

let fold_regions t f init =
  let acc = ref init in
  for r = 0 to Grid.num_regions t.grid - 1 do
    List.iter (fun dir -> acc := f !acc r dir) Dir.all
  done;
  !acc

let total_overflow t = fold_regions t (fun acc r d -> acc + overflow t r d) 0
let total_shields t = fold_regions t (fun acc r d -> acc + nss t r d) 0

let expanded_area t =
  let w = Grid.width t.grid and h = Grid.height t.grid in
  let region_extent r dir =
    (* Vertical tracks are laid side by side horizontally: V usage governs
       width, H usage governs height. *)
    let use = used t r dir and cap = capacity t r dir in
    t.gcell_um *. Float.max 1.0 (float_of_int use /. float_of_int cap)
  in
  let max_row = ref 0.0 in
  for y = 0 to h - 1 do
    let len = ref 0.0 in
    for x = 0 to w - 1 do
      let r = Grid.region_id t.grid (Point.make x y) in
      len := !len +. region_extent r Dir.V
    done;
    max_row := Float.max !max_row !len
  done;
  let max_col = ref 0.0 in
  for x = 0 to w - 1 do
    let len = ref 0.0 in
    for y = 0 to h - 1 do
      let r = Grid.region_id t.grid (Point.make x y) in
      len := !len +. region_extent r Dir.H
    done;
    max_col := Float.max !max_col !len
  done;
  (!max_row, !max_col, !max_row *. !max_col)

let most_congested t =
  let best, _ =
    fold_regions t
      (fun ((_, bu) as best) r d ->
        let u = utilization t r d in
        if u > bu then ((r, d), u) else best)
      ((0, Dir.H), -1.0)
  in
  best

let copy t =
  {
    t with
    nns_h = Array.copy t.nns_h;
    nns_v = Array.copy t.nns_v;
    nss_h = Array.copy t.nss_h;
    nss_v = Array.copy t.nss_v;
  }

let pp fmt t =
  let row, col, area = expanded_area t in
  Format.fprintf fmt
    "usage: overflow=%d shields=%d area=%.0fx%.0f=%.3gum2" (total_overflow t)
    (total_shields t) row col area
