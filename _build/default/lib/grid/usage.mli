(** Track accounting over the whole chip: per region and direction, how
    many tracks are taken by net segments ([nns]) and by shields ([nss]),
    plus the paper's congestion and routing-area metrics.

    Area model: a region's track pitch is [gcell / cap], so a region at or
    under capacity keeps its nominal footprint; shields or overflow beyond
    capacity stretch it.  The paper's Table 3 metric — "the product of the
    maximum row and column lengths" — is [max_r Σ_c width(c,r)] ×
    [max_c Σ_r height(c,r)]. *)

type t

val create : Grid.t -> gcell_um:float -> t
val grid : t -> Grid.t
val gcell_um : t -> float

(** [add_route u route] adds one track per occupied (region, dir) of the
    route; [remove_route] undoes it. *)
val add_route : t -> Route.t -> unit

val remove_route : t -> Route.t -> unit

(** [of_routes grid ~gcell_um routes] accounts a full routing solution. *)
val of_routes : Grid.t -> gcell_um:float -> Route.t list -> t

(** Shield tracks are set per (region, dir) from the SINO solutions. *)
val set_shields : t -> int -> Dir.t -> int -> unit

val nns : t -> int -> Dir.t -> int
val nss : t -> int -> Dir.t -> int

(** [used u r d] = nns + nss. *)
val used : t -> int -> Dir.t -> int

(** [utilization u r d] = used / capacity. *)
val utilization : t -> int -> Dir.t -> float

(** [overflow u r d] = max 0 (used - capacity). *)
val overflow : t -> int -> Dir.t -> int

val total_overflow : t -> int
val total_shields : t -> int

(** Routing area metrics in µm: [(max_row_len, max_col_len, area)]. *)
val expanded_area : t -> float * float * float

(** [most_congested u] is the (region, dir) with the highest utilization. *)
val most_congested : t -> int * Dir.t

(** [copy u] deep-copies the accounting (Phase III trials mutate it). *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
