type t = H | V

let equal a b = match (a, b) with H, H | V, V -> true | H, V | V, H -> false
let flip = function H -> V | V -> H
let to_string = function H -> "H" | V -> "V"
let pp fmt d = Format.pp_print_string fmt (to_string d)
let all = [ H; V ]
