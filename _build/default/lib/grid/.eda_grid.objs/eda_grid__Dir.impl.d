lib/grid/dir.ml: Format
