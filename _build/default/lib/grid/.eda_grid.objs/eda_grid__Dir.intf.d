lib/grid/dir.mli: Format
