lib/grid/usage.ml: Array Dir Eda_geom Float Format Grid List Point Route
