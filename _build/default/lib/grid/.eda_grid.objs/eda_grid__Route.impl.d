lib/grid/route.ml: Array Dir Eda_util Format Grid Hashtbl List Option Queue
