lib/grid/grid.mli: Dir Eda_geom Eda_netlist Format
