lib/grid/route.mli: Dir Eda_geom Format Grid
