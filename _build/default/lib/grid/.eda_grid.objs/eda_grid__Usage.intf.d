lib/grid/usage.mli: Dir Format Grid Route
