lib/grid/grid.ml: Array Dir Eda_geom Eda_netlist Float Format Net Netlist Point Rect
