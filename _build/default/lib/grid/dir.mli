(** Routing direction.  The paper assumes one horizontal and one vertical
    over-the-cell layer; every track, segment and SINO instance belongs to
    exactly one direction. *)

type t = H | V

val equal : t -> t -> bool
val flip : t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list
