open Eda_geom

type t = { w : int; h : int; hcap : int array; vcap : int array }

let make ~w ~h ~hcap ~vcap =
  if w < 1 || h < 1 then invalid_arg "Grid.make: empty grid";
  if hcap < 1 || vcap < 1 then invalid_arg "Grid.make: empty capacity";
  { w; h; hcap = Array.make (w * h) hcap; vcap = Array.make (w * h) vcap }

let width g = g.w
let height g = g.h
let num_regions g = g.w * g.h
let num_h_edges g = (g.w - 1) * g.h
let num_edges g = num_h_edges g + (g.w * (g.h - 1))
let in_bounds g (p : Point.t) = p.x >= 0 && p.x < g.w && p.y >= 0 && p.y < g.h

let region_id g (p : Point.t) =
  if not (in_bounds g p) then invalid_arg "Grid.region_id: out of bounds";
  (p.y * g.w) + p.x

let region_pt g r =
  if r < 0 || r >= num_regions g then invalid_arg "Grid.region_pt: bad id";
  Point.make (r mod g.w) (r / g.w)

let cap g p = function
  | Dir.H -> g.hcap.(region_id g p)
  | Dir.V -> g.vcap.(region_id g p)

let edge_id g (p : Point.t) dir =
  match dir with
  | Dir.H ->
      if p.x < 0 || p.x >= g.w - 1 || p.y < 0 || p.y >= g.h then
        invalid_arg "Grid.edge_id: H edge out of bounds";
      (p.y * (g.w - 1)) + p.x
  | Dir.V ->
      if p.x < 0 || p.x >= g.w || p.y < 0 || p.y >= g.h - 1 then
        invalid_arg "Grid.edge_id: V edge out of bounds";
      num_h_edges g + (p.y * g.w) + p.x

let edge_dir g e =
  if e < 0 || e >= num_edges g then invalid_arg "Grid.edge_dir: bad id";
  if e < num_h_edges g then Dir.H else Dir.V

let edge_ends g e =
  match edge_dir g e with
  | Dir.H ->
      let y = e / (g.w - 1) and x = e mod (g.w - 1) in
      (Point.make x y, Point.make (x + 1) y)
  | Dir.V ->
      let e' = e - num_h_edges g in
      let y = e' / g.w and x = e' mod g.w in
      (Point.make x y, Point.make x (y + 1))

let edges_within g rect =
  match Rect.intersect rect (Rect.make 0 0 (g.w - 1) (g.h - 1)) with
  | None -> []
  | Some r ->
      let acc = ref [] in
      for y = r.Rect.y1 downto r.Rect.y0 do
        for x = r.Rect.x1 downto r.Rect.x0 do
          if x < r.Rect.x1 then acc := edge_id g (Point.make x y) Dir.H :: !acc;
          if y < r.Rect.y1 then acc := edge_id g (Point.make x y) Dir.V :: !acc
        done
      done;
      !acc

let incident_edges g (p : Point.t) =
  let acc = ref [] in
  if p.x > 0 then acc := edge_id g (Point.make (p.x - 1) p.y) Dir.H :: !acc;
  if p.x < g.w - 1 then acc := edge_id g p Dir.H :: !acc;
  if p.y > 0 then acc := edge_id g (Point.make p.x (p.y - 1)) Dir.V :: !acc;
  if p.y < g.h - 1 then acc := edge_id g p Dir.V :: !acc;
  !acc

let auto ~util_target nl =
  if util_target <= 0.0 || util_target > 1.0 then
    invalid_arg "Grid.auto: util_target in (0,1]";
  let open Eda_netlist in
  let w = nl.Netlist.grid_w and h = nl.Netlist.grid_h in
  (* Expected per-direction track-region occupancies if every net were
     routed on its bounding box: a net spanning dx columns occupies a
     horizontal track in about dx+1 regions. *)
  let occ_h = ref 0.0 and occ_v = ref 0.0 in
  Array.iter
    (fun n ->
      let b = Net.bbox n in
      if Rect.width b > 1 then occ_h := !occ_h +. float_of_int (Rect.width b);
      if Rect.height b > 1 then occ_v := !occ_v +. float_of_int (Rect.height b))
    nl.Netlist.nets;
  let regions = float_of_int (w * h) in
  let derive occ =
    max 12 (int_of_float (Float.ceil (occ /. regions /. util_target)))
  in
  { w; h; hcap = Array.make (w * h) (derive !occ_h); vcap = Array.make (w * h) (derive !occ_v) }

let pp fmt g =
  Format.fprintf fmt "grid %dx%d (hcap=%d vcap=%d)" g.w g.h g.hcap.(0) g.vcap.(0)
