module Union_find = Eda_util.Union_find

type t = { net : int; edges : int array }

let of_edges grid ~net edges =
  let tbl = Hashtbl.create (List.length edges) in
  List.iter
    (fun e ->
      if e < 0 || e >= Grid.num_edges grid then
        invalid_arg "Route.of_edges: bad edge id";
      Hashtbl.replace tbl e ())
    edges;
  let arr = Array.of_seq (Hashtbl.to_seq_keys tbl) in
  Array.sort compare arr;
  { net; edges = arr }

let net t = t.net
let edges t = t.edges
let num_edges t = Array.length t.edges
let length_gcells t = float_of_int (num_edges t)
let length_um t ~gcell_um = length_gcells t *. gcell_um

let segments grid t dir =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      if Dir.equal (Grid.edge_dir grid e) dir then begin
        let a, b = Grid.edge_ends grid e in
        List.iter
          (fun p ->
            let r = Grid.region_id grid p in
            let cur = Option.value (Hashtbl.find_opt tbl r) ~default:0.0 in
            Hashtbl.replace tbl r (cur +. 0.5))
          [ a; b ]
      end)
    t.edges;
  List.sort compare (List.of_seq (Hashtbl.to_seq tbl))

let occupied grid t =
  List.concat_map
    (fun dir -> List.map (fun (r, _) -> (r, dir)) (segments grid t dir))
    Dir.all

(* Union-find over the regions touched by the route plus the pin regions. *)
let components grid t pins =
  let ids = Hashtbl.create 32 in
  let intern r =
    match Hashtbl.find_opt ids r with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.add ids r i;
        i
  in
  let pairs =
    Array.to_list t.edges
    |> List.map (fun e ->
           let a, b = Grid.edge_ends grid e in
           (intern (Grid.region_id grid a), intern (Grid.region_id grid b)))
  in
  let pin_ids = List.map (fun p -> intern (Grid.region_id grid p)) pins in
  let uf = Union_find.create (Hashtbl.length ids) in
  List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
  (uf, pin_ids, Hashtbl.length ids)

let connects grid t pins =
  match pins with
  | [] -> true
  | first :: rest ->
      let uf, pin_ids, _ = components grid t (first :: rest) in
      let canon = List.hd pin_ids in
      List.for_all (fun i -> Union_find.same uf canon i) pin_ids

let is_tree grid t =
  let uf, _, n = components grid t [] in
  (* acyclic iff every union succeeded: edges = n - components *)
  Array.length t.edges = n - Union_find.count uf

let path_edges grid t ~source ~sink =
  let src = Grid.region_id grid source and dst = Grid.region_id grid sink in
  if src = dst then []
  else begin
    (* BFS over route edges, tracking the arriving edge for backtracking *)
    let adj = Hashtbl.create 32 in
    let add a b e =
      Hashtbl.replace adj a ((b, e) :: Option.value (Hashtbl.find_opt adj a) ~default:[])
    in
    Array.iter
      (fun e ->
        let a, b = Grid.edge_ends grid e in
        let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
        add ra rb e;
        add rb ra e)
      t.edges;
    let via = Hashtbl.create 32 in
    (* region -> (previous region, edge) *)
    Hashtbl.add via src (src, -1);
    let q = Queue.create () in
    Queue.add src q;
    (try
       while not (Queue.is_empty q) do
         let r = Queue.take q in
         if r = dst then raise Exit;
         List.iter
           (fun (nb, e) ->
             if not (Hashtbl.mem via nb) then begin
               Hashtbl.add via nb (r, e);
               Queue.add nb q
             end)
           (Option.value (Hashtbl.find_opt adj r) ~default:[])
       done
     with Exit -> ());
    if not (Hashtbl.mem via dst) then raise Not_found;
    let rec back r acc =
      let prev, e = Hashtbl.find via r in
      if e = -1 then acc else back prev (e :: acc)
    in
    back dst []
  end

let path_length grid t ~source ~sink =
  List.length (path_edges grid t ~source ~sink)

let pp fmt t =
  Format.fprintf fmt "route(net=%d, %d edges)" t.net (num_edges t)
