open Eda_geom

let tree pts =
  let n = Array.length pts in
  if n < 2 then []
  else begin
    let in_tree = Array.make n false in
    let dist = Array.make n max_int in
    let parent = Array.make n (-1) in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      dist.(j) <- Point.manhattan pts.(0) pts.(j);
      parent.(j) <- 0
    done;
    let edges = ref [] in
    for _ = 1 to n - 1 do
      (* pick the closest out-of-tree vertex *)
      let best = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!best = -1 || dist.(j) < dist.(!best)) then
          best := j
      done;
      let b = !best in
      in_tree.(b) <- true;
      edges := (parent.(b), b) :: !edges;
      for j = 0 to n - 1 do
        if not in_tree.(j) then begin
          let d = Point.manhattan pts.(b) pts.(j) in
          if d < dist.(j) then begin
            dist.(j) <- d;
            parent.(j) <- b
          end
        end
      done
    done;
    !edges
  end

let length pts =
  List.fold_left
    (fun acc (i, j) -> acc + Point.manhattan pts.(i) pts.(j))
    0 (tree pts)
