open Eda_geom

(* Hanan grid candidates: all (x, y) crossings of pin coordinates that are
   not already pins. *)
let hanan_candidates pts =
  let xs = List.sort_uniq compare (Array.to_list (Array.map (fun p -> p.Point.x) pts)) in
  let ys = List.sort_uniq compare (Array.to_list (Array.map (fun p -> p.Point.y) pts)) in
  let pinset = Hashtbl.create (Array.length pts) in
  Array.iter (fun p -> Hashtbl.replace pinset (p.Point.x, p.Point.y) ()) pts;
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y -> if Hashtbl.mem pinset (x, y) then None else Some (Point.make x y))
        ys)
    xs

(* Iterated 1-Steiner: greedily add the Hanan point that shrinks the MST
   most; stop when no candidate helps.  Degree-<=2 Steiner points are
   useless in an MST, so at most (#pins - 2) additions happen. *)
let iterated_one_steiner pts =
  let max_extra = max 0 (Array.length pts - 2) in
  let rec go current added n_added =
    if n_added >= max_extra then (current, added)
    else begin
      let base = Rmst.length current in
      let candidates = hanan_candidates current in
      let best =
        List.fold_left
          (fun best cand ->
            let trial = Array.append current [| cand |] in
            let len = Rmst.length trial in
            match best with
            | Some (_, blen) when blen <= len -> best
            | _ when len < base -> Some (cand, len)
            | best -> best)
          None candidates
      in
      match best with
      | None -> (current, added)
      | Some (cand, _) ->
          go (Array.append current [| cand |]) (cand :: added) (n_added + 1)
    end
  in
  go pts [] 0

let dedup pts =
  let seen = Hashtbl.create (Array.length pts) in
  Array.of_list
    (Array.fold_right
       (fun p acc ->
         let key = (p.Point.x, p.Point.y) in
         if Hashtbl.mem seen key then acc
         else begin
           Hashtbl.add seen key ();
           p :: acc
         end)
       pts [])

(* Iterated 1-Steiner is O(k^5); beyond this fanout fall back to the MST. *)
let exact_threshold = 10

let with_steiner pts =
  let pts = dedup pts in
  if Array.length pts <= 2 then (pts, [])
  else if Array.length pts > exact_threshold then (pts, [])
  else iterated_one_steiner pts

let length pts =
  let all, _ = with_steiner pts in
  Rmst.length all

let steiner_points pts =
  let _, added = with_steiner pts in
  added

let rectilinear_edges pts =
  let all, _ = with_steiner pts in
  List.map (fun (i, j) -> (all.(i), all.(j))) (Rmst.tree all)
