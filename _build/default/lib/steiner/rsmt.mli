(** Rectilinear Steiner minimum tree estimation.

    The paper normalizes the ID router's wire-length term by "the estimated
    wire length of the RSMT for the current net" (§3.1).  Exact RSMT is
    NP-hard; we use the classic iterated 1-Steiner heuristic on the Hanan
    grid, which is exact for up to 3 pins and within a few percent for the
    small fanouts global nets have. *)

(** [length pts] is the heuristic RSMT length.  For one point it is 0. *)
val length : Eda_geom.Point.t array -> int

(** [steiner_points pts] are the Hanan points the heuristic chose. *)
val steiner_points : Eda_geom.Point.t array -> Eda_geom.Point.t list

(** [rectilinear_edges pts] is the tree over pins plus chosen Steiner
    points, as point pairs, suitable for conversion to L-shaped grid
    routes. *)
val rectilinear_edges :
  Eda_geom.Point.t array -> (Eda_geom.Point.t * Eda_geom.Point.t) list
