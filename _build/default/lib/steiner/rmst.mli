(** Rectilinear minimum spanning tree over pin locations (Prim, O(k²)) —
    the building block for the RSMT estimate used by the ID router's
    normalized wire-length term. *)

(** [tree pts] is the MST edge list as index pairs into [pts].
    Empty for fewer than 2 points. *)
val tree : Eda_geom.Point.t array -> (int * int) list

(** [length pts] is the MST total Manhattan length. *)
val length : Eda_geom.Point.t array -> int
