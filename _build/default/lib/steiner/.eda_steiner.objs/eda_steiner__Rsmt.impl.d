lib/steiner/rsmt.ml: Array Eda_geom Hashtbl List Point Rmst
