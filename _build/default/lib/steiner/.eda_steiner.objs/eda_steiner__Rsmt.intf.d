lib/steiner/rsmt.mli: Eda_geom
