lib/steiner/rmst.mli: Eda_geom
