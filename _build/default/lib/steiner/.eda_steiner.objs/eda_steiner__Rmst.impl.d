lib/steiner/rmst.ml: Array Eda_geom List Point
