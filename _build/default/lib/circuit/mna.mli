(** Linear circuit builder for modified nodal analysis.

    Supports the element set needed to model coupled RLC interconnect:
    resistors, capacitors, self inductors, mutual inductive coupling
    (specified as a coupling coefficient, SPICE's [K] element), and
    independent voltage sources with time-varying waveforms.

    Node 0 is ground.  Fresh nodes come from {!node}. *)

type node = int

val ground : node

type t

val create : unit -> t

(** [node c] allocates a fresh node. *)
val node : t -> node

val num_nodes : t -> int
(** Highest allocated node id (ground excluded). *)

val num_inductors : t -> int
val num_vsources : t -> int

(** [resistor c a b r] — requires [r > 0]. *)
val resistor : t -> node -> node -> float -> unit

(** [capacitor c a b cap] — requires [cap > 0]. *)
val capacitor : t -> node -> node -> float -> unit

(** [inductor c a b l] returns the inductor's index for use in {!mutual};
    requires [l > 0]. *)
val inductor : t -> node -> node -> float -> int

(** [mutual c i j k] couples inductors [i] and [j] with coefficient
    [k] (|k| < 1): M = k·√(LᵢLⱼ). *)
val mutual : t -> int -> int -> float -> unit

(** [vsource c a b w] adds an independent source ([a] is +). *)
val vsource : t -> node -> node -> Waveform.t -> int

(** [inductance_matrix c] is the full (symmetric) inductance matrix
    including mutual terms; its positive definiteness is a physical
    sanity check ({!Eda_util.Matrix.cholesky}). *)
val inductance_matrix : t -> Eda_util.Matrix.t

(** Internal description consumed by {!Transient}; exposed read-only. *)
type element =
  | R of node * node * float
  | C of node * node * float
  | L of node * node * float * int  (** a, b, L, index *)
  | K of int * int * float
  | V of node * node * Waveform.t * int  (** a, b, waveform, index *)

val elements : t -> element list
(** In insertion order. *)
