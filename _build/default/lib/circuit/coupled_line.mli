(** Coupled RLC transmission-line bus — the structure whose SPICE
    simulation calibrates the LSK table (paper §2.2).

    [n] parallel wires on adjacent tracks are discretized into RLC ladder
    segments.  Inductive coupling between tracks at distance [d] uses the
    AR(1) profile k(d) = k_adjacent^d, which keeps the inductance matrix
    positive definite for any bus width.  Capacitive coupling is
    nearest-neighbour.  A shield is a wire grounded at both ends through a
    small via resistance; its induced current provides the close return
    path that suppresses long-range inductive coupling — no ad-hoc damping
    factor is applied. *)

type wire_role =
  | Victim  (** quiet, driven low; we probe its far end *)
  | Aggressor  (** switches 0 → Vdd *)
  | Opposing
      (** switches Vdd → 0 simultaneously — the worst case for a rising
          neighbour's delay.  Modelled as a 0 → −Vdd ramp: in a linear
          network whose DC transfer from one wire's driver to another
          wire's nodes is zero, this produces exactly the falling edge's
          effect on every other wire while keeping the simulator's
          at-rest initial condition valid. *)
  | Quiet  (** quiet non-victim signal wire *)
  | Shield  (** grounded at both ends *)

type spec = {
  length_m : float;  (** line length *)
  segments : int;  (** ladder segments per wire (≥ 1) *)
  r_per_m : float;
  l_per_m : float;
  c_per_m : float;  (** ground capacitance *)
  cc_per_m : float;  (** adjacent-track coupling capacitance *)
  k_adjacent : float;  (** inductive coupling coefficient at distance 1 *)
}

type drive = {
  rd : float;  (** driver resistance *)
  cl : float;  (** receiver load capacitance *)
  vdd : float;
  t_delay : float;  (** aggressor switching instant *)
  t_rise : float;
}

(** [build spec drive roles] constructs the circuit; returns it along with
    the far-end node of every wire (ground for shields' probe is their own
    far node, which stays near 0V). *)
val build : spec -> drive -> wire_role array -> Mna.t * Mna.node array

(** [victim_noise spec drive roles] runs a transient (default
    [dt = t_rise/10], [t_end = t_delay + 20·t_rise]) and returns
    [(wire_index, peak |V|)] for every [Victim].  *)
val victim_noise :
  ?dt:float -> ?t_end:float -> spec -> drive -> wire_role array -> (int * float) list

(** [worst_victim_noise] is the max over victims; raises
    [Invalid_argument] when no wire is a victim. *)
val worst_victim_noise :
  ?dt:float -> ?t_end:float -> spec -> drive -> wire_role array -> float

(** [differential_noise spec drive roles ~plus ~minus] — peak |v(plus) −
    v(minus)| at the far ends of a quiet differential pair (both must be
    [Victim] wires).  What a differential receiver sees: common-mode
    coupling cancels, so this quantifies the alternative crosstalk
    counter-measure the paper's introduction cites (differential
    signaling [6]) against shielding at equal track cost. *)
val differential_noise :
  ?dt:float ->
  ?t_end:float ->
  spec ->
  drive ->
  wire_role array ->
  plus:int ->
  minus:int ->
  float

(** [rise_delay spec drive roles ~wire] — 50 %-Vdd delay of the rising
    [Aggressor] at index [wire], measured at its far end from the
    switching instant; [None] if it never reaches 50 % within the
    simulated window.  Used to verify that shielded wires are faster per
    unit length than wires whose neighbours switch opposingly (the [12]
    claim §4 leans on). *)
val rise_delay :
  ?dt:float ->
  ?t_end:float ->
  spec ->
  drive ->
  wire_role array ->
  wire:int ->
  float option
