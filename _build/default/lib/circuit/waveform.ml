type t =
  | Dc of float
  | Ramp of { v0 : float; v1 : float; t_delay : float; t_rise : float }

let value w t =
  match w with
  | Dc v -> v
  | Ramp { v0; v1; t_delay; t_rise } ->
      if t <= t_delay then v0
      else if t >= t_delay +. t_rise then v1
      else v0 +. ((v1 -. v0) *. (t -. t_delay) /. t_rise)

let initial w = value w 0.0

let pp fmt = function
  | Dc v -> Format.fprintf fmt "dc(%g)" v
  | Ramp { v0; v1; t_delay; t_rise } ->
      Format.fprintf fmt "ramp(%g->%g @%g rise %g)" v0 v1 t_delay t_rise
