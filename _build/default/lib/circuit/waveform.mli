(** Independent-source waveforms.  All sources used to build the LSK table
    are zero at t = 0, so the quiescent initial state of the transient
    solver (everything at rest) is exact. *)

type t =
  | Dc of float  (** constant value *)
  | Ramp of { v0 : float; v1 : float; t_delay : float; t_rise : float }
      (** [v0] until [t_delay], linear to [v1] over [t_rise], then [v1] —
          the switching-aggressor stimulus *)

(** [value w t] evaluates the waveform. *)
val value : t -> float -> float

(** [initial w] is [value w 0.]. *)
val initial : t -> float

val pp : Format.formatter -> t -> unit
