(** Fixed-step trapezoidal transient analysis of an {!Mna} circuit.

    The system matrix is constant for a fixed step, so it is LU-factored
    once and each timestep is a single back-substitution — the standard
    linear-circuit fast path.  The circuit is assumed at rest at t = 0
    (all waveforms must start at 0; checked). *)

type result = {
  times : float array;
  data : float array array;  (** [data.(p).(k)] = probe [p] at [times.(k)] *)
}

(** [run c ~dt ~t_end ~probes] simulates from 0 to [t_end].
    Raises [Invalid_argument] on a non-positive step, an empty probe list,
    or a source that is non-zero at t = 0. *)
val run : Mna.t -> dt:float -> t_end:float -> probes:Mna.node list -> result

(** [peak_abs r p] is max_k |data.(p).(k)| — the crosstalk noise metric. *)
val peak_abs : result -> int -> float

(** [value_at r p t] linearly interpolates probe [p] at time [t]. *)
val value_at : result -> int -> float -> float

(** [crossing_time r p ~level] — the first time probe [p] reaches
    [level] from below (linear interpolation between samples); [None] if
    it never does.  The 50 %-Vdd delay probe. *)
val crossing_time : result -> int -> level:float -> float option

val num_steps : result -> int
