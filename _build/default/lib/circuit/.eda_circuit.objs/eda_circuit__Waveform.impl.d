lib/circuit/waveform.ml: Format
