lib/circuit/mna.mli: Eda_util Waveform
