lib/circuit/transient.ml: Array Eda_util Float List Mna Waveform
