lib/circuit/coupled_line.ml: Array Float List Mna Option Seq Transient Waveform
