lib/circuit/coupled_line.mli: Mna
