lib/circuit/transient.mli: Mna
