lib/circuit/mna.ml: Array Eda_util Float List Waveform
