type t = {
  electrical : Eda_lsk.Table_builder.electrical;
  keff : Eda_sino.Keff.params;
  noise_bound_v : float;
  gcell_um : float;
  util_target : float;
  alpha : float;
  beta : float;
  gamma : float;
}

let default =
  {
    (* electrical values are calibrated so the 0.15 V bound puts the
       paper's 14–24 % of nets over it (see EXPERIMENTS.md) *)
    electrical = Eda_lsk.Table_builder.default_electrical;
    keff = Eda_sino.Keff.default;
    noise_bound_v = 0.15;
    gcell_um = 30.0;
    util_target = 0.65;
    alpha = 2.0;
    beta = 1.0;
    gamma = 50.0;
  }

let cache : (t, Eda_lsk.Lsk.t) Hashtbl.t = Hashtbl.create 4

let lsk_model t =
  if t.electrical = default.electrical && t.keff = default.keff then
    Lazy.force Eda_lsk.Table_builder.default
  else begin
    match Hashtbl.find_opt cache t with
    | Some m -> m
    | None ->
        let m = Eda_lsk.Table_builder.build ~keff:t.keff t.electrical in
        Hashtbl.add cache t m;
        m
  end

let grid_for t netlist = Eda_grid.Grid.auto ~util_target:t.util_target netlist
