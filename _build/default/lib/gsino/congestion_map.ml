module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage

let ramp = " .:-=+*#%@"

let glyph u =
  if u > 1.0 +. 1e-9 then '!'
  else begin
    let n = String.length ramp in
    let i = int_of_float (Float.round (u *. float_of_int (n - 1))) in
    ramp.[max 0 (min (n - 1) i)]
  end

let render_dir fmt usage dir =
  let grid = Usage.grid usage in
  Format.fprintf fmt "%s tracks (utilization; '!' = over capacity):@\n"
    (Dir.to_string dir);
  for y = Grid.height grid - 1 downto 0 do
    Format.fprintf fmt "  ";
    for x = 0 to Grid.width grid - 1 do
      let r = Grid.region_id grid (Eda_geom.Point.make x y) in
      Format.fprintf fmt "%c" (glyph (Usage.utilization usage r dir))
    done;
    Format.fprintf fmt "@\n"
  done

let render fmt usage =
  List.iter (render_dir fmt usage) Dir.all
