lib/gsino/report.mli: Eda_netlist Flow Format Tech
