lib/gsino/nc_router.mli: Eda_grid Eda_netlist Id_router
