lib/gsino/noise.mli: Eda_geom Eda_grid Eda_lsk Eda_netlist Phase2
