lib/gsino/tech.mli: Eda_grid Eda_lsk Eda_netlist Eda_sino
