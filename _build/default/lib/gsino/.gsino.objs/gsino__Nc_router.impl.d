lib/gsino/nc_router.ml: Array Eda_grid Eda_netlist Eda_sino Eda_steiner Eda_util Float Hashtbl Id_router List
