lib/gsino/flow.ml: Array Budget Eda_grid Eda_netlist Eda_sino Float Format Id_router List Nc_router Noise Phase2 Refine Sys Tech
