lib/gsino/congestion_map.mli: Eda_grid Format
