lib/gsino/report.ml: Eda_netlist Float Flow Format Hashtbl List Option Printf Refine Tech
