lib/gsino/budget.mli: Eda_grid Eda_lsk Eda_netlist Eda_util Format
