lib/gsino/noise.ml: Array Eda_grid Eda_lsk Eda_netlist List Phase2
