lib/gsino/tech.ml: Eda_grid Eda_lsk Eda_sino Hashtbl Lazy
