lib/gsino/congestion_map.ml: Eda_geom Eda_grid Float Format List String
