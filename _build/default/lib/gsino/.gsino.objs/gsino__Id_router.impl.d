lib/gsino/id_router.ml: Array Eda_geom Eda_grid Eda_netlist Eda_sino Eda_steiner Eda_util Float Hashtbl List Option Point Queue Rect
