lib/gsino/flow.mli: Budget Eda_grid Eda_netlist Format Phase2 Refine Tech
