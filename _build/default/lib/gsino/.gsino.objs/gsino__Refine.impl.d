lib/gsino/refine.ml: Array Eda_grid Eda_lsk Eda_netlist Eda_sino Eda_util Float Format Hashtbl List Noise Phase2
