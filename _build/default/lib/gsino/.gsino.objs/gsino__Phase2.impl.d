lib/gsino/phase2.ml: Array Eda_grid Eda_netlist Eda_sino Eda_util Hashtbl List Option
