lib/gsino/phase2.mli: Eda_grid Eda_netlist Eda_sino Eda_util Hashtbl
