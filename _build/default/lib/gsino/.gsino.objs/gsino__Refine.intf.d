lib/gsino/refine.mli: Eda_grid Eda_lsk Eda_netlist Format Phase2
