lib/gsino/budget.ml: Array Eda_geom Eda_grid Eda_lsk Eda_netlist Eda_util Format Net Netlist
