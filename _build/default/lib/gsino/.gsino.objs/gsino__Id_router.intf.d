lib/gsino/id_router.mli: Eda_grid Eda_netlist Eda_sino
