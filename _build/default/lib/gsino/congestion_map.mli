(** ASCII congestion heat maps — the quick visual check of where track
    demand (and shield demand) concentrates.  One character per region;
    rows are printed north to south. *)

(** [render fmt usage] draws one map per direction.  The glyph ramp is
    [" .:-=+*#%@"], linear in utilization up to 1.0; regions above
    capacity show as ['!'].  *)
val render : Format.formatter -> Eda_grid.Usage.t -> unit

(** [render_dir fmt usage dir] draws a single direction's map. *)
val render_dir : Format.formatter -> Eda_grid.Usage.t -> Eda_grid.Dir.t -> unit
