(** Phase I crosstalk-bound partitioning (§3.1).

    The sink noise constraint is mapped to an LSK budget through the table
    (inverse lookup), then divided uniformly along the source–sink path:
    every net segment on the path to sink j gets

      Kth = LSK_budget / L_e,ij

    with [L_e,ij] the source–sink Manhattan distance.  A segment shared by
    several sink paths takes the minimum of their bounds; before routing
    the tree is unknown, so we conservatively apply that minimum — i.e.
    the farthest sink's bound — to the whole net (exact for the 1-sink
    nets that dominate the benchmarks; see DESIGN.md). *)

type t = {
  lsk_budget : float;  (** LSK value allowed by the noise constraint *)
  kth : float array;  (** per-net inductive bound (µm-uniform) *)
}

(** [uniform ~lsk ~noise_v ~gcell_um netlist] computes the Phase I
    budget.  Distances shorter than one gcell are clamped to one gcell so
    bounds stay finite. *)
val uniform :
  lsk:Eda_lsk.Lsk.t ->
  noise_v:float ->
  gcell_um:float ->
  Eda_netlist.Netlist.t ->
  t

(** [route_aware ~lsk ~noise_v ~gcell_um ~grid ~routes netlist] — the §5
    "alternative crosstalk budgeting": divide each sink's LSK budget by
    the *actual routed* path length instead of the Manhattan estimate.
    Detoured nets get correspondingly tighter per-region bounds up front,
    so Phase II already accounts for them and Phase III's pass 1 has
    (almost) nothing left to fix — at the cost of needing the routes
    first.  The bench's budgeting ablation quantifies the trade. *)
val route_aware :
  lsk:Eda_lsk.Lsk.t ->
  noise_v:float ->
  gcell_um:float ->
  grid:Eda_grid.Grid.t ->
  routes:Eda_grid.Route.t array ->
  Eda_netlist.Netlist.t ->
  t

(** [kth t net] — the bound for net [net]. *)
val kth : t -> int -> float

(** [sample_kth t rng] draws from the empirical Kth distribution — used to
    fit Formula (3) coefficients in the regime this budget creates. *)
val sample_kth : t -> Eda_util.Rng.t -> float

val pp : Format.formatter -> t -> unit
