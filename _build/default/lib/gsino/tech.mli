(** Technology and flow parameters: the paper's experimental setup
    (§4) — ITRS 0.10 µm, Vdd = 1.05 V, 3 GHz clock, crosstalk constraint
    0.15 V at every sink, ID weight constants α = 2, β = 1, γ = 50. *)

type t = {
  electrical : Eda_lsk.Table_builder.electrical;
  keff : Eda_sino.Keff.params;
  noise_bound_v : float;  (** per-sink RLC crosstalk constraint *)
  gcell_um : float;  (** routing-region pitch *)
  util_target : float;  (** average utilization the track capacities allow *)
  alpha : float;
  beta : float;
  gamma : float;
}

val default : t

(** [lsk_model t] — the LSK → noise table for this technology.  The
    default technology shares the lazily built
    {!Eda_lsk.Table_builder.default}; other technologies trigger a fresh
    simulation sweep (cached per [t]). *)
val lsk_model : t -> Eda_lsk.Lsk.t

(** [grid_for t netlist] — capacities per {!Eda_grid.Grid.auto} at this
    technology's utilization target. *)
val grid_for : t -> Eda_netlist.Netlist.t -> Eda_grid.Grid.t
