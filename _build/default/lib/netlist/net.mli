(** A signal net: one source pin and one or more sink pins, placed on the
    routing-region grid (pin coordinates are gcell indices). *)

type t = { id : int; source : Eda_geom.Point.t; sinks : Eda_geom.Point.t array }

(** [make ~id ~source ~sinks] checks that there is at least one sink. *)
val make : id:int -> source:Eda_geom.Point.t -> sinks:Eda_geom.Point.t array -> t

(** All pins, source first. *)
val pins : t -> Eda_geom.Point.t list

val num_pins : t -> int

(** Bounding box of all pins. *)
val bbox : t -> Eda_geom.Rect.t

(** Half-perimeter wire length lower bound, in gcell units. *)
val hpwl : t -> int

(** [manhattan_to_sink t k] is the source→sink-[k] Manhattan distance
    (the paper's [L_e,ij] used for crosstalk budgeting). *)
val manhattan_to_sink : t -> int -> int

val pp : Format.formatter -> t -> unit
