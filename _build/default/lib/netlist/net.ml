open Eda_geom

type t = { id : int; source : Point.t; sinks : Point.t array }

let make ~id ~source ~sinks =
  if Array.length sinks = 0 then invalid_arg "Net.make: net needs a sink";
  { id; source; sinks }

let pins t = t.source :: Array.to_list t.sinks
let num_pins t = 1 + Array.length t.sinks
let bbox t = Rect.of_points (pins t)
let hpwl t = Rect.half_perimeter (bbox t)

let manhattan_to_sink t k =
  if k < 0 || k >= Array.length t.sinks then
    invalid_arg "Net.manhattan_to_sink: no such sink";
  Point.manhattan t.source t.sinks.(k)

let pp fmt t =
  Format.fprintf fmt "net%d src=%a sinks=[%a]" t.id Point.pp t.source
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";")
       Point.pp)
    (Array.to_list t.sinks)
