type t = { seed : int; rate : float }

let make ~seed ~rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Sensitivity.make: bad rate";
  { seed; rate }

let rate t = t.rate
let seed t = t.seed

let sensitive t i j =
  i <> j && Eda_util.Rng.pair_hash ~seed:t.seed i j < t.rate

let segment_sensitivity t ~net ~neighbours =
  let others = ref 0 and sens = ref 0 in
  Array.iter
    (fun j ->
      if j <> net then begin
        incr others;
        if sensitive t net j then incr sens
      end)
    neighbours;
  if !others = 0 then 0.0 else float_of_int !sens /. float_of_int !others

let pp fmt t = Format.fprintf fmt "sensitivity(rate=%.2f,seed=%d)" t.rate t.seed
