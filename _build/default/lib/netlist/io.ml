open Eda_geom

let magic = "gsino-netlist v1"

let to_string nl =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "name %s\n" nl.Netlist.name);
  Buffer.add_string b
    (Printf.sprintf "grid %d %d %.17g\n" nl.Netlist.grid_w nl.Netlist.grid_h
       nl.Netlist.gcell_um);
  Array.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "net %d %d %d" n.Net.id n.Net.source.Point.x
           n.Net.source.Point.y);
      Array.iter
        (fun s -> Buffer.add_string b (Printf.sprintf " %d %d" s.Point.x s.Point.y))
        n.Net.sinks;
      Buffer.add_char b '\n')
    nl.Netlist.nets;
  Buffer.contents b

let fail lineno msg = failwith (Printf.sprintf "Io.of_string: line %d: %s" lineno msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let content =
    List.mapi (fun idx raw -> (idx + 1, String.trim raw)) lines
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  (match content with
  | (_, first) :: _ when first = magic -> ()
  | (lineno, _) :: _ -> fail lineno "missing magic header"
  | [] -> failwith "Io.of_string: empty input");
  let name = ref None and dims = ref None in
  let nets = ref [] in
  let parse_int lineno what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno ("bad " ^ what ^ ": " ^ s)
  in
  List.iter
    (fun (lineno, line) ->
      if line <> magic then
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | "name" :: rest -> name := Some (String.concat " " rest)
        | [ "grid"; w; h; g ] -> (
            match float_of_string_opt g with
            | Some gc ->
                dims :=
                  Some (parse_int lineno "grid width" w, parse_int lineno "grid height" h, gc)
            | None -> fail lineno "bad grid record")
        | "net" :: id :: sx :: sy :: sinks ->
            let id = parse_int lineno "net id" id in
            let source =
              Point.make (parse_int lineno "x" sx) (parse_int lineno "y" sy)
            in
            let rec pair acc = function
              | [] -> List.rev acc
              | x :: y :: rest ->
                  pair
                    (Point.make (parse_int lineno "x" x) (parse_int lineno "y" y) :: acc)
                    rest
              | [ _ ] -> fail lineno "odd number of sink coordinates"
            in
            let sinks = Array.of_list (pair [] sinks) in
            if Array.length sinks = 0 then fail lineno "net without sinks";
            nets := Net.make ~id ~source ~sinks :: !nets
        | _ -> fail lineno ("unrecognized record: " ^ line))
    content;
  match (!name, !dims) with
  | None, _ -> failwith "Io.of_string: missing name record"
  | _, None -> failwith "Io.of_string: missing grid record"
  | Some name, Some (grid_w, grid_h, gcell_um) ->
      let nets =
        List.sort (fun a b -> compare a.Net.id b.Net.id) !nets |> Array.of_list
      in
      let nl = Netlist.make ~name ~grid_w ~grid_h ~gcell_um nets in
      Netlist.validate nl;
      nl

let save path nl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
