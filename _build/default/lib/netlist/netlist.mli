(** A placed design at global-routing abstraction: a routing-region grid
    plus signal nets with pins assigned to regions. *)

type t = {
  name : string;
  grid_w : int;  (** number of region columns *)
  grid_h : int;  (** number of region rows *)
  gcell_um : float;  (** nominal region pitch in micrometres *)
  nets : Net.t array;
}

val make :
  name:string -> grid_w:int -> grid_h:int -> gcell_um:float -> Net.t array -> t

val num_nets : t -> int

(** Grid extent as a rectangle of region indices. *)
val bounds : t -> Eda_geom.Rect.t

(** [total_hpwl_um t] is the summed half-perimeter lower bound in µm. *)
val total_hpwl_um : t -> float

(** [mean_hpwl_um t] averaged over nets. *)
val mean_hpwl_um : t -> float

(** [validate t] raises [Invalid_argument] if any pin lies outside the grid
    or any net id mismatches its index. *)
val validate : t -> unit

val pp_summary : Format.formatter -> t -> unit
