lib/netlist/io.mli: Netlist
