lib/netlist/sensitivity.ml: Array Eda_util Format
