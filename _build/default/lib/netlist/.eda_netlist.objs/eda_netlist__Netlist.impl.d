lib/netlist/netlist.ml: Array Eda_geom Format List Net Point Rect
