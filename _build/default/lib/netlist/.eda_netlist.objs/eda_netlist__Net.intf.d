lib/netlist/net.mli: Eda_geom Format
