lib/netlist/generator.ml: Array Eda_geom Eda_util Float Format Hashtbl List Net Netlist Point
