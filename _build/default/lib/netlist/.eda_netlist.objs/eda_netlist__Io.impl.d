lib/netlist/io.ml: Array Buffer Eda_geom Fun List Net Netlist Point Printf String
