lib/netlist/sensitivity.mli: Format
