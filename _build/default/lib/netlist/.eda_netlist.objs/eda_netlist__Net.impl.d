lib/netlist/net.ml: Array Eda_geom Format Point Rect
