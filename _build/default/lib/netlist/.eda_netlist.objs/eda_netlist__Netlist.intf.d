lib/netlist/netlist.mli: Eda_geom Format Net
