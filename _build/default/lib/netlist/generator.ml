open Eda_geom
module Rng = Eda_util.Rng

type profile = {
  name : string;
  chip_w_um : float;
  chip_h_um : float;
  n_nets : int;
  avg_wl_um : float;
  route_overhead : float;
}

(* Net counts are back-derived from Table 1 (violating nets / percentage);
   chip dimensions are the ID+NO rows of Table 3; average wire lengths are
   the ID+NO columns of Table 2. *)
let ibm01 =
  { name = "ibm01"; chip_w_um = 1533.; chip_h_um = 1824.; n_nets = 13062; avg_wl_um = 639.; route_overhead = 1.08 }

let ibm02 =
  { name = "ibm02"; chip_w_um = 3004.; chip_h_um = 3995.; n_nets = 19289; avg_wl_um = 724.; route_overhead = 1.33 }

let ibm03 =
  { name = "ibm03"; chip_w_um = 3178.; chip_h_um = 3852.; n_nets = 26101; avg_wl_um = 647.; route_overhead = 1.31 }

let ibm04 =
  { name = "ibm04"; chip_w_um = 3861.; chip_h_um = 3910.; n_nets = 31322; avg_wl_um = 748.; route_overhead = 1.33 }

let ibm05 =
  { name = "ibm05"; chip_w_um = 9837.; chip_h_um = 7286.; n_nets = 29646; avg_wl_um = 695.; route_overhead = 1.50 }

let ibm06 =
  { name = "ibm06"; chip_w_um = 5002.; chip_h_um = 3795.; n_nets = 34398; avg_wl_um = 769.; route_overhead = 1.43 }

let all_ibm = [ ibm01; ibm02; ibm03; ibm04; ibm05; ibm06 ]
let find_ibm name = List.find_opt (fun p -> p.name = name) all_ibm

(* Signed displacement with exponential magnitude; at least |v| >= 0. *)
let signed_exp rng ~mean =
  let mag = int_of_float (Float.round (Rng.exponential rng ~mean)) in
  if Rng.bool rng 0.5 then mag else -mag

(* Net reach is lognormal (sigma ~1.1): the median net is much shorter
   than the mean and a long tail of chip-crossing nets exists — the
   length profile real placed netlists show, and the population whose
   tail the crosstalk budget squeezes. *)
let reach_sigma = 1.1

let signed_lognormal rng ~mean =
  let mu = log mean -. (reach_sigma *. reach_sigma /. 2.0) in
  let mag =
    int_of_float (Float.round (exp (Rng.gaussian rng ~mu ~sigma:reach_sigma)))
  in
  if Rng.bool rng 0.5 then mag else -mag

let sink_count rng = min 4 (1 + Rng.geometric rng 0.65)

let place_sinks rng ~grid_w ~grid_h ~source ~k ~span =
  (* Per-sink displacement shrinks with fanout so the Steiner-tree length
     stays near the 2-pin target; exponent tuned against Rsmt.length. *)
  let per_axis = span /. 2.0 /. Float.of_int k ** 0.6 in
  let lo = Point.make 0 0 and hi = Point.make (grid_w - 1) (grid_h - 1) in
  Array.init k (fun _ ->
      let dx = ref (signed_lognormal rng ~mean:per_axis) in
      let dy = ref (signed_lognormal rng ~mean:per_axis) in
      if !dx = 0 && !dy = 0 then
        if Rng.bool rng 0.5 then dx := if Rng.bool rng 0.5 then 1 else -1
        else dy := if Rng.bool rng 0.5 then 1 else -1;
      Point.clamp (Point.add source (Point.make !dx !dy)) ~lo ~hi)

let generate ?(gcell_um = 60.0) ?(scale = 1.0) ~seed profile =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Generator.generate: scale in (0,1]";
  (* The region pitch grows as the region count shrinks, so chip dimensions
     and physical net lengths stay at their full-size µm values — the noise
     physics and the paper's µm metrics are preserved at any scale. *)
  let gcell_um = gcell_um /. sqrt scale in
  let dim um = max 4 (int_of_float (Float.round (um /. gcell_um))) in
  let grid_w = dim profile.chip_w_um and grid_h = dim profile.chip_h_um in
  let n_nets = max 8 (int_of_float (Float.round (float_of_int profile.n_nets *. scale))) in
  let span = profile.avg_wl_um /. profile.route_overhead /. gcell_um in
  let rng = Rng.create (seed lxor Hashtbl.hash profile.name) in
  let nets =
    Array.init n_nets (fun id ->
        let source =
          Point.make (Rng.int rng grid_w) (Rng.int rng grid_h)
        in
        let k = sink_count rng in
        let sinks = place_sinks rng ~grid_w ~grid_h ~source ~k ~span in
        Net.make ~id ~source ~sinks)
  in
  let name =
    if scale = 1.0 then profile.name
    else Format.asprintf "%s@%.2f" profile.name scale
  in
  Netlist.make ~name ~grid_w ~grid_h ~gcell_um nets

let uniform ~name ~grid_w ~grid_h ~n_nets ~mean_span ~seed =
  let rng = Rng.create seed in
  let lo = Point.make 0 0 and hi = Point.make (grid_w - 1) (grid_h - 1) in
  let nets =
    Array.init n_nets (fun id ->
        let source = Point.make (Rng.int rng grid_w) (Rng.int rng grid_h) in
        let dx = ref (signed_exp rng ~mean:(mean_span /. 2.0)) in
        let dy = ref (signed_exp rng ~mean:(mean_span /. 2.0)) in
        if !dx = 0 && !dy = 0 then dx := 1;
        let sink = Point.clamp (Point.add source (Point.make !dx !dy)) ~lo ~hi in
        let sink =
          if Point.equal sink source then
            Point.clamp (Point.add source (Point.make (-1) 0)) ~lo ~hi
          else sink
        in
        Net.make ~id ~source ~sinks:[| sink |])
  in
  Netlist.make ~name ~grid_w ~grid_h ~gcell_um:60.0 nets
