open Eda_geom

type t = {
  name : string;
  grid_w : int;
  grid_h : int;
  gcell_um : float;
  nets : Net.t array;
}

let make ~name ~grid_w ~grid_h ~gcell_um nets =
  if grid_w <= 0 || grid_h <= 0 then invalid_arg "Netlist.make: empty grid";
  if gcell_um <= 0.0 then invalid_arg "Netlist.make: non-positive gcell";
  { name; grid_w; grid_h; gcell_um; nets }

let num_nets t = Array.length t.nets
let bounds t = Rect.make 0 0 (t.grid_w - 1) (t.grid_h - 1)

let total_hpwl_um t =
  Array.fold_left
    (fun acc n -> acc +. (float_of_int (Net.hpwl n) *. t.gcell_um))
    0.0 t.nets

let mean_hpwl_um t =
  if num_nets t = 0 then 0.0 else total_hpwl_um t /. float_of_int (num_nets t)

let validate t =
  let b = bounds t in
  Array.iteri
    (fun i n ->
      if n.Net.id <> i then invalid_arg "Netlist.validate: id/index mismatch";
      List.iter
        (fun p ->
          if not (Rect.contains b p) then
            invalid_arg
              (Format.asprintf "Netlist.validate: pin %a of net %d off-grid"
                 Point.pp p i))
        (Net.pins n))
    t.nets

let pp_summary fmt t =
  Format.fprintf fmt "%s: %dx%d regions @ %.0fum, %d nets, mean HPWL %.0fum"
    t.name t.grid_w t.grid_h t.gcell_um (num_nets t) (mean_hpwl_um t)
