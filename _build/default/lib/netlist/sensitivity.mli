(** The paper's random symmetric sensitivity model (§4): with sensitivity
    rate [s], each signal net is sensitive to a random fraction [s] of the
    other nets; sensitivity is symmetric (aggressor/victim of each other).

    Realized as a pure hash of the unordered net-id pair, so the full n²
    matrix never materializes and lookups are O(1). *)

type t

(** [make ~seed ~rate] with [0. <= rate <= 1.]. *)
val make : seed:int -> rate:float -> t

val rate : t -> float
val seed : t -> int

(** [sensitive t i j] — are nets [i] and [j] sensitive to each other?
    Always false for [i = j]. *)
val sensitive : t -> int -> int -> bool

(** [segment_sensitivity t ~net ~neighbours] is the paper's [S_i] for a net
    segment sharing a region with [neighbours]: the fraction of the other
    segments in the region that are sensitive to [net].  Zero when the
    segment is alone. *)
val segment_sensitivity : t -> net:int -> neighbours:int array -> float

val pp : Format.formatter -> t -> unit
