(** Plain-text netlist serialization, so externally produced placements
    can run through the flows and generated benchmarks can be archived.

    Format (one record per line, [#] comments ignored):

    {v
    gsino-netlist v1
    name <string>
    grid <w> <h> <gcell_um>
    net <id> <src_x> <src_y> <sink_x> <sink_y> [<sink_x> <sink_y> ...]
    v}

    Net ids must be consecutive from 0 and pins inside the grid
    (checked on load with {!Netlist.validate}). *)

(** [to_string nl] / [of_string s] — serialization round-trip. *)
val to_string : Netlist.t -> string

(** [of_string s] raises [Failure] with a line-numbered message on
    malformed input. *)
val of_string : string -> Netlist.t

(** [save path nl] / [load path] — file convenience wrappers. *)
val save : string -> Netlist.t -> unit

val load : string -> Netlist.t
