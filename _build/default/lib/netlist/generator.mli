(** Synthetic benchmark generator standing in for the ISPD'98/IBM circuits
    placed by DRAGON (see DESIGN.md §2 for the substitution rationale).

    Each profile carries the published chip dimensions (Table 3, ID+NO
    row), the signal-net count back-derived from Table 1's percentages, and
    the ID+NO average wire length from Table 2 as the locality target.
    [generate] reproduces those statistics at an arbitrary [scale]: net
    count scales by [scale], chip area by [scale] (dimensions by its square
    root), so per-region densities — and therefore the paper's percentage
    results — are preserved. *)

type profile = {
  name : string;
  chip_w_um : float;  (** placement width, µm (Table 3 ID+NO) *)
  chip_h_um : float;  (** placement height, µm *)
  n_nets : int;  (** signal nets (derived from Table 1) *)
  avg_wl_um : float;  (** ID+NO average wire length target (Table 2) *)
  route_overhead : float;
      (** measured ratio of routed tree length to the generator's raw
          pin-spread target (Steiner overhead, multi-sink fanout, and how
          much of the lognormal tail the chip boundary clips — larger
          chips clip less); the generator divides the spread by this so
          the *routed* average lands on [avg_wl_um] *)
}

(** The six circuits evaluated in the paper. *)
val ibm01 : profile

val ibm02 : profile
val ibm03 : profile
val ibm04 : profile
val ibm05 : profile
val ibm06 : profile

val all_ibm : profile list

(** [find_ibm "ibm03"] looks a profile up by name. *)
val find_ibm : string -> profile option

(** [generate ?gcell_um ?scale ~seed profile] synthesizes a placed netlist.

    - [gcell_um] (default 60.) is the routing-region pitch;
    - [scale] (default 1.0) scales net count linearly and chip dimensions by
      [sqrt scale]; must be in (0, 1].

    Sink counts follow 1 + Geometric(0.65) capped at 4; sink displacements
    are two-sided exponentials calibrated so the expected Steiner length
    matches [avg_wl_um]. *)
val generate : ?gcell_um:float -> ?scale:float -> seed:int -> profile -> Netlist.t

(** [uniform ~name ~grid_w ~grid_h ~n_nets ~mean_span ~seed] is a plain
    generator for unit tests: sources uniform, single sink at an
    exponential displacement with mean [mean_span] gcells. *)
val uniform :
  name:string ->
  grid_w:int ->
  grid_h:int ->
  n_nets:int ->
  mean_span:float ->
  seed:int ->
  Netlist.t
