(* gsino_serve — the routing daemon and its thin client.

   `gsino_serve daemon` runs the fault-isolated routing service on a
   Unix-domain socket (gsino-serve-v1 framed protocol): concurrent
   request domains, bounded admission queue, per-request deadlines,
   graceful SIGTERM/SIGINT drain.  `route`/`ping`/`stats` are the
   client: `route` builds the same netlist the batch drivers would,
   sends it, and writes the returned artifacts to the standard sink
   flags — so `gsino_serve route` is a drop-in for `gsino_lint` with
   the computation happening in the daemon.

   Exit codes mirror the batch drivers (see cli_common): a framed error
   response exits with the code the batch CLI would have used; client
   i/o failures (daemon unreachable, mid-read disconnect) exit 7. *)
open Cmdliner
open Gsino
module C = Cli_common
module Server = Eda_serve.Server
module Client = Eda_serve.Client
module Protocol = Eda_serve.Protocol
module Io = Eda_netlist.Io
module Error = Eda_guard.Error
module Diag = Eda_check.Diag
module Log = Eda_obs.Log

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  let env = Cmd.Env.info "GSINO_SERVE_SOCKET" ~doc:"Default for $(b,--socket)." in
  Arg.(value & opt string "gsino.sock" & info [ "socket" ] ~docv:"PATH" ~env ~doc)

let apply_verbosity ~verbose ~quiet =
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug)

(* ---------------- daemon ---------------- *)

let workers_arg =
  let doc = "Concurrent request domains (each serves one request at a time)." in
  Arg.(value & opt int Server.default_config.Server.workers
     & info [ "w"; "workers" ] ~docv:"N" ~doc)

let queue_bound_arg =
  let doc =
    "Admission queue bound: requests beyond $(docv) queued-but-unstarted \
     are rejected with a typed 'overloaded' error (GSL0031) instead of \
     queueing without bound."
  in
  Arg.(value & opt int Server.default_config.Server.queue_bound
     & info [ "queue-bound" ] ~docv:"N" ~doc)

let max_frame_arg =
  let doc = "Largest request frame accepted, in bytes." in
  Arg.(value & opt int Protocol.max_frame_default
     & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let request_deadline_arg =
  let doc =
    "Cap every request's wall-clock budget at $(docv) milliseconds \
     (0 = requests choose their own).  Expiry degrades the request to \
     its best-so-far result, exactly like the batch $(b,--deadline)."
  in
  Arg.(value & opt int 0 & info [ "request-deadline" ] ~docv:"MS" ~doc)

let drain_ms_arg =
  let doc =
    "On SIGTERM/SIGINT, grace period before in-flight requests are \
     deadline-cancelled (they finish degraded); 0 waits for natural \
     completion."
  in
  Arg.(value & opt int 0 & info [ "drain-ms" ] ~docv:"MS" ~doc)

let read_timeout_arg =
  let doc = "Per-wait stall bound while reading a request frame, seconds." in
  Arg.(value & opt float Server.default_config.Server.read_timeout_s
     & info [ "read-timeout" ] ~docv:"S" ~doc)

let daemon socket workers jobs queue_bound max_frame request_deadline drain_ms
    read_timeout panel_cache sinks progress verbose quiet =
  ignore (C.claim_stdout ~prog:"gsino_serve" sinks);
  C.with_obs ~prog:"gsino_serve" ~progress ~sinks ~verbose ~quiet @@ fun () ->
  let _, cache_dir = panel_cache in
  Server.run
    {
      Server.socket;
      workers;
      jobs;
      queue_bound;
      max_frame;
      request_deadline_ms = request_deadline;
      drain_ms;
      read_timeout_s = read_timeout;
      cache_dir;
    };
  C.exit_ok

let daemon_cmd =
  let doc = "Run the routing daemon (drains gracefully on SIGTERM/SIGINT)" in
  Cmd.v
    (Cmd.info "daemon" ~doc)
    Term.(
      const daemon $ socket_arg $ workers_arg $ C.jobs_arg $ queue_bound_arg
      $ max_frame_arg $ request_deadline_arg $ drain_ms_arg $ read_timeout_arg
      $ C.panel_cache_term
      $ C.Sinks.(term [ Metrics ])
      $ C.progress_arg $ C.verbose_arg $ C.quiet_arg)

(* ---------------- client: route ---------------- *)

let kind_arg =
  let doc = "Flow to run remotely: 'id-no', 'isino' or 'gsino'." in
  Arg.(value
     & opt
         (enum
            [ ("id-no", Flow.Id_no); ("isino", Flow.Isino); ("gsino", Flow.Gsino) ])
         Flow.Gsino
     & info [ "k"; "kind" ] ~docv:"KIND" ~doc)

let timeout_arg =
  let doc = "Give up waiting for the daemon's response after $(docv) seconds \
             (0 = wait forever)." in
  Arg.(value & opt float 0.0 & info [ "timeout" ] ~docv:"S" ~doc)

let netlist_file_arg =
  C.netlist_file_arg
    ~doc:"Route FILE (gsino-netlist v1) instead of a generated circuit."

let write_artifact ~claimed sink contents =
  match sink with
  | None -> ()
  | Some "-" ->
      ignore claimed;
      print_string contents
  | Some file ->
      let oc = open_out file in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc contents)

let finding_is_error line =
  match String.split_on_char ' ' line with
  | _code :: sev :: _ -> sev = "E"
  | _ :: [] | [] -> false

let report_remote_error ~pretty (gsl, exit_code, message) =
  let d = Diag.make ~code:gsl Diag.Error message in
  if pretty then Format.eprintf "%a@." Diag.pp d
  else prerr_endline (Diag.to_line d);
  exit exit_code

let route socket timeout circuit scale seed rate router budgeting kind deadline
    netlist_file pretty sinks verbose quiet =
  let claimed = C.claim_stdout ~prog:"gsino_serve" sinks in
  let out = C.out_formatter ~claimed in
  apply_verbosity ~verbose ~quiet;
  C.guard_exceptions ~pretty @@ fun () ->
  let tech = Tech.default in
  let netlist = C.netlist_of tech ~circuit ~scale ~seed netlist_file in
  let artifacts =
    List.filter_map
      (fun (kind, art) ->
        match C.Sinks.get sinks kind with Some _ -> Some art | None -> None)
      [
        (C.Sinks.Report, Protocol.Report);
        (C.Sinks.Metrics, Protocol.Metrics);
        (C.Sinks.Journal, Protocol.Journal);
        (C.Sinks.Trace, Protocol.Trace);
      ]
  in
  let options =
    {
      Protocol.kind;
      router;
      budgeting;
      seed;
      rate;
      deadline_ms = deadline;
      artifacts;
    }
  in
  let timeout_s = if timeout > 0.0 then Some timeout else None in
  let response =
    Client.request ?timeout_s socket
      (Protocol.Route { netlist = Io.to_string netlist; options })
  in
  match response with
  | Protocol.Result { status; summary; findings; artifacts } ->
      (* response artifacts go straight to their sinks: they are the
         daemon's bytes, not this process's registries, so they must not
         pass through the with_obs flush *)
      List.iter
        (fun (name, contents) ->
          let sink =
            match Protocol.artifact_of_name name with
            | Some Protocol.Report -> C.Sinks.get sinks C.Sinks.Report
            | Some Protocol.Metrics -> C.Sinks.get sinks C.Sinks.Metrics
            | Some Protocol.Journal -> C.Sinks.get sinks C.Sinks.Journal
            | Some Protocol.Trace -> C.Sinks.get sinks C.Sinks.Trace
            | None -> None
          in
          write_artifact ~claimed sink contents)
        artifacts;
      List.iter (fun line -> Format.fprintf out "%s@." line) findings;
      Format.fprintf out "gsino_serve: %s: %s@." status summary;
      if List.exists finding_is_error findings then C.exit_findings
      else C.exit_ok
  | Protocol.Err { gsl; exit_code; message; cls = _ } ->
      report_remote_error ~pretty (gsl, exit_code, message)
  | Protocol.Pong | Protocol.Stats_reply _ ->
      report_remote_error ~pretty
        (22, C.exit_internal, "unexpected response kind to a route request")

let route_cmd =
  let doc = "Route one netlist via the daemon (batch-CLI-compatible output)" in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(
      const route $ socket_arg $ timeout_arg $ C.circuit_arg
      $ C.scale_arg ~default:0.02 () $ C.seed_arg $ C.rate_arg $ C.router_arg
      $ C.budgeting_arg $ kind_arg $ C.deadline_arg $ netlist_file_arg
      $ Arg.(value & flag & info [ "pretty" ] ~doc:"Human-readable diagnostics.")
      $ C.Sinks.(term [ Trace; Metrics; Journal; Report ])
      $ C.verbose_arg $ C.quiet_arg)

(* ---------------- client: ping / stats ---------------- *)

let ping socket timeout verbose quiet =
  apply_verbosity ~verbose ~quiet;
  C.guard_exceptions @@ fun () ->
  let timeout_s = if timeout > 0.0 then Some timeout else None in
  match Client.request ?timeout_s socket Protocol.Ping with
  | Protocol.Pong ->
      print_endline "pong";
      C.exit_ok
  | Protocol.Err { gsl; exit_code; message; cls = _ } ->
      report_remote_error ~pretty:false (gsl, exit_code, message)
  | Protocol.Stats_reply _ | Protocol.Result _ ->
      report_remote_error ~pretty:false
        (22, C.exit_internal, "unexpected response kind to a ping")

let ping_cmd =
  let doc = "Liveness-probe the daemon" in
  Cmd.v
    (Cmd.info "ping" ~doc)
    Term.(const ping $ socket_arg $ timeout_arg $ C.verbose_arg $ C.quiet_arg)

let print_stats (s : Protocol.stats) =
  Printf.printf "uptime_s: %.1f\n" s.Protocol.uptime_s;
  Printf.printf "served: %d\n" s.Protocol.served;
  Printf.printf "errors: %d\n" s.Protocol.errors;
  Printf.printf "disconnects: %d\n" s.Protocol.disconnects;
  List.iter
    (fun (reason, n) -> Printf.printf "rejected{%s}: %d\n" reason n)
    s.Protocol.rejected;
  Printf.printf "queue_depth: %d\n" s.Protocol.queue_depth;
  Printf.printf "active: %d\n" s.Protocol.active;
  Printf.printf "workers: %d\n" s.Protocol.workers;
  Printf.printf "jobs: %d\n" s.Protocol.jobs;
  Printf.printf "cache_len: %d\n" s.Protocol.cache_len;
  Printf.printf "draining: %b\n" s.Protocol.draining

let stats socket timeout json verbose quiet =
  apply_verbosity ~verbose ~quiet;
  C.guard_exceptions @@ fun () ->
  let timeout_s = if timeout > 0.0 then Some timeout else None in
  match Client.request ?timeout_s socket Protocol.Stats with
  | Protocol.Stats_reply s ->
      (if json then
         print_endline
           (Eda_obs.Json.to_string
              (Protocol.response_to_json (Protocol.Stats_reply s)))
       else print_stats s);
      C.exit_ok
  | Protocol.Err { gsl; exit_code; message; cls = _ } ->
      report_remote_error ~pretty:false (gsl, exit_code, message)
  | Protocol.Pong | Protocol.Result _ ->
      report_remote_error ~pretty:false
        (22, C.exit_internal, "unexpected response kind to a stats request")

let stats_cmd =
  let doc = "Print the daemon's health counters" in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(
      const stats $ socket_arg $ timeout_arg
      $ Arg.(value & flag & info [ "json" ] ~doc:"Raw gsino-serve-v1 JSON.")
      $ C.verbose_arg $ C.quiet_arg)

let cmd =
  let doc = "Routing as a service: daemon and thin client" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The daemon serves concurrent GSINO routing requests over a \
         Unix-domain socket with per-request fault isolation: a malformed \
         frame, an oversized request, a router failure, an injected fault \
         or an expired deadline degrades only that request — the daemon \
         keeps serving.  Admission is bounded (typed 'overloaded' rejects), \
         disconnected clients cancel their in-flight work, and \
         SIGTERM/SIGINT drains gracefully: stop accepting, finish what is \
         running, flush the panel cache, exit 0.";
      `P
        "The client subcommands speak the gsino-serve-v1 framed protocol; \
         $(b,route) mirrors $(b,gsino_lint)'s flags and output, with the \
         flow executed by the daemon against its warm shared panel cache.";
    ]
  in
  Cmd.group (Cmd.info "gsino_serve" ~version:"1.0.0" ~doc ~man)
    [ daemon_cmd; route_cmd; ping_cmd; stats_cmd ]

let () = exit (Cmd.eval' cmd)
