(* gsino_lint — static analysis of routing solutions.

   Runs one or more flows (on a generated benchmark or a saved netlist
   file) and audits every result with the Eda_check invariant rules,
   printing coded GSL diagnostics.  Exit status: 0 when no
   Error-severity finding fired, 1 otherwise — so CI can gate on it. *)
open Cmdliner
open Gsino
module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Diag = Eda_check.Diag
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log

let circuit_arg =
  let doc = "Benchmark circuit (ibm01..ibm06)." in
  Arg.(value & opt string "ibm01" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Instance scale in (0,1]." in
  Arg.(value & opt float 0.02 & info [ "s"; "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Random seed for placement, sensitivity and heuristics." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Sensitivity rate." in
  Arg.(value & opt float 0.30 & info [ "r"; "rate" ] ~docv:"R" ~doc)

let router_arg =
  let doc = "Global router: 'id' or 'nc'." in
  Arg.(value
     & opt (enum [ ("id", Flow.Iterative_deletion); ("nc", Flow.Negotiated) ])
         Flow.Iterative_deletion
     & info [ "router" ] ~docv:"ENGINE" ~doc)

let budgeting_arg =
  let doc = "Crosstalk budgeting: 'uniform' or 'route-aware'." in
  Arg.(value
     & opt (enum [ ("uniform", Flow.Uniform); ("route-aware", Flow.Route_aware) ])
         Flow.Uniform
     & info [ "budgeting" ] ~docv:"MODE" ~doc)

let netlist_file_arg =
  let doc = "Audit FILE (gsino-netlist v1) instead of a generated circuit." in
  Arg.(value & opt (some string) None & info [ "netlist" ] ~docv:"FILE" ~doc)

let kind_arg =
  let doc =
    "Flow to audit: 'id-no', 'isino', 'gsino', or 'all' (runs all three)."
  in
  Arg.(value
     & opt
         (enum
            [
              ("id-no", [ Flow.Id_no ]);
              ("isino", [ Flow.Isino ]);
              ("gsino", [ Flow.Gsino ]);
              ("all", [ Flow.Id_no; Flow.Isino; Flow.Gsino ]);
            ])
         [ Flow.Gsino ]
     & info [ "k"; "kind" ] ~docv:"KIND" ~doc)

let pretty_arg =
  let doc = "Human-readable diagnostics instead of machine one-liners." in
  Arg.(value & flag & info [ "pretty" ] ~doc)

let max_print_arg =
  let doc = "Print at most $(docv) diagnostics per flow (0 = unlimited)." in
  Arg.(value & opt int 50 & info [ "max-print" ] ~docv:"N" ~doc)

let errors_only_arg =
  let doc = "Only print Error-severity diagnostics." in
  Arg.(value & flag & info [ "e"; "errors-only" ] ~doc)

let trace_arg =
  let doc =
    "Record spans of the audited flows and write Chrome-trace JSON to \
     $(docv) (chrome://tracing / Perfetto); '-' writes it to stdout and \
     silences the diagnostics."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (gsino-metrics-v1 JSON) to $(docv); '-' \
     writes it to stdout and silences the diagnostics."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Verbose logging (level debug; overrides GSINO_LOG)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let quiet_arg =
  let doc = "Silence logging entirely (overrides GSINO_LOG and $(b,-v))." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

(* "-" routes an artifact to stdout.  At most one may claim it; when one
   does the diagnostics are silenced (a null formatter) so the artifact
   stays machine-parseable. *)
let claim_stdout sinks =
  match List.filter (fun s -> s = Some "-") sinks with
  | [] -> false
  | [ _ ] -> true
  | _ :: _ :: _ ->
      Format.eprintf
        "gsino_lint: at most one of --trace/--metrics may be '-'@.";
      exit 2

let out_formatter ~claimed =
  if claimed then Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())
  else Format.std_formatter

let lint circuit scale seed rate router budgeting netlist_file kinds pretty
    max_print errors_only trace metrics verbose quiet =
  let claimed = claim_stdout [ trace; metrics ] in
  let out = out_formatter ~claimed in
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug);
  (match trace with Some _ -> Trace.enable () | None -> ());
  let flush_obs () =
    (match trace with
    | Some "-" ->
        print_endline (Eda_obs.Json.to_string (Trace.to_chrome_json ()))
    | Some file -> Trace.write_chrome file
    | None -> ());
    match metrics with
    | Some "-" ->
        print_endline
          (Eda_obs.Json.to_string (Metrics.to_json (Metrics.snapshot ())))
    | Some file -> Metrics.write_json file (Metrics.snapshot ())
    | None -> ()
  in
  Fun.protect ~finally:flush_obs @@ fun () ->
  (* disconnected grid: report through the lint channel, not an uncaught
     exception *)
  (fun body ->
    try body ()
    with Nc_router.Unreachable { net; region } ->
      let d = Nc_router.unreachable_diag ~net ~region in
      if pretty then Format.eprintf "%a@." Diag.pp d
      else prerr_endline (Diag.to_line d);
      exit 2)
  @@ fun () ->
  let tech = Tech.default in
  let netlist =
    match netlist_file with
    | Some file -> (
        try Eda_netlist.Io.load file
        with Sys_error msg | Failure msg | Invalid_argument msg ->
          Format.eprintf "cannot load netlist %s: %s@." file msg;
          exit 2)
    | None -> (
        match Generator.find_ibm circuit with
        | Some p -> Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed p
        | None ->
            Format.eprintf "unknown circuit %s (expected ibm01..ibm06)@." circuit;
            exit 2)
  in
  let grid, base = Flow.prepare ~router tech netlist in
  let sensitivity = Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
  let lint_one kind =
    let r =
      Flow.run tech ~sensitivity ~seed ~router ~budgeting ~grid ~base netlist kind
    in
    let diags = Flow.check ~tech r in
    let shown =
      List.filter
        (fun d -> (not errors_only) || d.Diag.severity = Diag.Error)
        diags
    in
    let n_shown = List.length shown in
    List.iteri
      (fun i d ->
        if max_print <= 0 || i < max_print then
          if pretty then Format.fprintf out "%a@." Diag.pp d
          else Format.fprintf out "%s@." (Diag.to_line d))
      shown;
    if max_print > 0 && n_shown > max_print then
      Format.fprintf out "... %d more diagnostics suppressed (--max-print)@."
        (n_shown - max_print);
    Format.fprintf out "gsino_lint: %s on %s: %a@." (Flow.kind_name kind)
      netlist.Eda_netlist.Netlist.name Diag.pp_summary diags;
    diags
  in
  let all = List.concat_map lint_one kinds in
  if Diag.has_errors all then 1 else 0

let cmd =
  let doc = "Check routing-solution invariants and report coded diagnostics" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a GSINO flow and statically checks the resulting routing \
         solution: routes on-grid, connected and acyclic; track and shield \
         accounting consistent; Phase-I Kth bounds partitioned from the LSK \
         budget; SINO panels covering every occupied region.  Findings are \
         printed one per line as '$(b,GSL)NNNN E|W|I locus message'.";
      `P "Exits 0 when no Error-severity diagnostic fired, 1 otherwise.";
    ]
  in
  Cmd.v
    (Cmd.info "gsino_lint" ~version:"1.0.0" ~doc ~man)
    Term.(
      const lint $ circuit_arg $ scale_arg $ seed_arg $ rate_arg $ router_arg
      $ budgeting_arg $ netlist_file_arg $ kind_arg $ pretty_arg
      $ max_print_arg $ errors_only_arg $ trace_arg $ metrics_arg
      $ verbose_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
