(* gsino_lint — static analysis of routing solutions.

   Runs one or more flows (on a generated benchmark or a saved netlist
   file) and audits every result with the Eda_check invariant rules,
   printing coded GSL diagnostics.  Exit status: 0 when no
   Error-severity finding fired, 1 otherwise — so CI can gate on it.

   Shared flags (--trace/--metrics sinks, -v/-q, --jobs, circuit
   selection) come from Cli_common. *)
open Cmdliner
open Gsino
module Diag = Eda_check.Diag
module Sensitivity = Eda_netlist.Sensitivity
module C = Cli_common

let netlist_file_arg =
  C.netlist_file_arg
    ~doc:"Audit FILE (gsino-netlist v1) instead of a generated circuit."

let kind_arg =
  let doc =
    "Flow to audit: 'id-no', 'isino', 'gsino', or 'all' (runs all three)."
  in
  Arg.(value
     & opt
         (enum
            [
              ("id-no", [ Flow.Id_no ]);
              ("isino", [ Flow.Isino ]);
              ("gsino", [ Flow.Gsino ]);
              ("all", [ Flow.Id_no; Flow.Isino; Flow.Gsino ]);
            ])
         [ Flow.Gsino ]
     & info [ "k"; "kind" ] ~docv:"KIND" ~doc)

let pretty_arg =
  let doc = "Human-readable diagnostics instead of machine one-liners." in
  Arg.(value & flag & info [ "pretty" ] ~doc)

let max_print_arg =
  let doc = "Print at most $(docv) diagnostics per flow (0 = unlimited)." in
  Arg.(value & opt int 50 & info [ "max-print" ] ~docv:"N" ~doc)

let errors_only_arg =
  let doc = "Only print Error-severity diagnostics." in
  Arg.(value & flag & info [ "e"; "errors-only" ] ~doc)

let lint circuit scale seed rate router budgeting jobs deadline netlist_file
    kinds pretty max_print errors_only sinks panel_cache progress verbose quiet
    =
  let claimed = C.claim_stdout ~prog:"gsino_lint" sinks in
  let out = C.out_formatter ~claimed in
  C.with_obs ~pretty ~prog:"gsino_lint" ~progress ~sinks ~verbose ~quiet
  @@ fun () ->
  let tech = Tech.default in
  let netlist = C.netlist_of tech ~circuit ~scale ~seed netlist_file in
  let cache, cache_dir = panel_cache in
  let config kind =
    {
      Flow.Config.default with
      Flow.Config.kind;
      router;
      budgeting;
      seed;
      jobs;
      deadline_ms = deadline;
      cache;
      cache_dir;
    }
  in
  let grid, base = Flow.prepare ~config:(config Flow.Gsino) tech netlist in
  let sensitivity = Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
  let lint_one kind =
    let r = Flow.run ~grid ~base (config kind) tech ~sensitivity netlist in
    let diags = Flow.check ~tech r in
    let shown =
      List.filter
        (fun d -> (not errors_only) || d.Diag.severity = Diag.Error)
        diags
    in
    let n_shown = List.length shown in
    List.iteri
      (fun i d ->
        if max_print <= 0 || i < max_print then
          if pretty then Format.fprintf out "%a@." Diag.pp d
          else Format.fprintf out "%s@." (Diag.to_line d))
      shown;
    if max_print > 0 && n_shown > max_print then
      Format.fprintf out "... %d more diagnostics suppressed (--max-print)@."
        (n_shown - max_print);
    Format.fprintf out "gsino_lint: %s on %s: %a@." (Flow.kind_name kind)
      netlist.Eda_netlist.Netlist.name Diag.pp_summary diags;
    diags
  in
  let all = List.concat_map lint_one kinds in
  if Diag.has_errors all then C.exit_findings else C.exit_ok

let cmd =
  let doc = "Check routing-solution invariants and report coded diagnostics" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a GSINO flow and statically checks the resulting routing \
         solution: routes on-grid, connected and acyclic; track and shield \
         accounting consistent; Phase-I Kth bounds partitioned from the LSK \
         budget; SINO panels covering every occupied region.  Findings are \
         printed one per line as '$(b,GSL)NNNN E|W|I locus message'.";
      `P "Exits 0 when no Error-severity diagnostic fired, 1 otherwise.";
    ]
  in
  Cmd.v
    (Cmd.info "gsino_lint" ~version:"1.0.0" ~doc ~man)
    Term.(
      const lint $ C.circuit_arg $ C.scale_arg ~default:0.02 () $ C.seed_arg
      $ C.rate_arg $ C.router_arg $ C.budgeting_arg $ C.jobs_arg
      $ C.deadline_arg $ netlist_file_arg $ kind_arg $ pretty_arg
      $ max_print_arg $ errors_only_arg
      $ C.Sinks.(term [ Trace; Profile; Metrics; Journal ])
      $ C.panel_cache_term $ C.progress_arg $ C.verbose_arg $ C.quiet_arg)

let () = exit (Cmd.eval' cmd)
