(* gsino_explain — drill into a gsino-journal-v1 attribution journal.

   Folds the dimension-keyed cost events recorded by `--journal` into
   the views the perf work needs: top-K hottest nets / regions / panels
   by time or churn, a per-net provenance chain (budget -> route ->
   panel -> refine touches), and duplicate-panel grouping by canonical
   signature (`--by-signature`) — the measurement that sizes the
   content-addressed panel cache before it is built.  Exit status: 0 on
   success, 2 when the journal cannot be read. *)
open Cmdliner
module Journal = Eda_obs.Journal
module Agg = Journal.Agg
module Log = Eda_obs.Log
module C = Cli_common

let journal_pos =
  let doc = "Journal file (gsino-journal-v1 JSONL); '-' reads stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL" ~doc)

let top_arg =
  let doc = "Rows per top-K view." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)

let net_arg =
  let doc =
    "Print the provenance chain of one net: its budget, route churn, the \
     panels it sat in, and every refinement touch."
  in
  Arg.(value & opt (some int) None & info [ "net" ] ~docv:"N" ~doc)

let by_sig_arg =
  let doc =
    "Group panel events by canonical panel signature and report duplicate \
     recurrence — how much SINO work a content-addressed panel cache \
     would have absorbed."
  in
  Arg.(value & flag & info [ "by-signature" ] ~doc)

let is_ev name e = e.Journal.ev = name
let panel_ev e = is_ev "panel.solve" e || is_ev "panel.resolve" e

(* synthesize a panel identity dimension ("region/dir") so panel.solve
   and panel.resolve aggregate into the same row *)
let with_panel_dim evs =
  List.filter_map
    (fun e ->
      match (Journal.dim_value e "region", Journal.dim_value e "dir") with
      | Some r, Some d ->
          Some { e with Journal.dim = ("panel", r ^ "/" ^ d) :: e.Journal.dim }
      | (Some _ | None), _ -> None)
    evs

let ms row field = Agg.datum row field /. 1e3
let i row field = int_of_float (Agg.datum row field)

let pp_outcomes fmt row =
  match row.Agg.outcomes with
  | [] -> ()
  | l ->
      Format.fprintf fmt " [%s]"
        (String.concat " "
           (List.map (fun (o, n) -> Printf.sprintf "%s:%d" o n) l))

let view_summary evs =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace tally e.Journal.ev
        (1 + Option.value (Hashtbl.find_opt tally e.Journal.ev) ~default:0))
    evs;
  let kinds =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] |> List.sort compare
  in
  Format.printf "%d events:%s@." (List.length evs)
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=%d" k v) kinds))

let view_top_nets ~k evs =
  let rows =
    Agg.top ~by:"reweights" ~k
      (Agg.by_dim "net" (List.filter (is_ev "net.route") evs))
  in
  if rows <> [] then begin
    Format.printf "@.Top %d nets by route churn (reweights):@."
      (List.length rows);
    Format.printf "  %-8s %10s %10s %10s %10s@." "net" "reweights" "pops"
      "deletions" "essential";
    List.iter
      (fun r ->
        Format.printf "  %-8s %10d %10d %10d %10d%a@." r.Agg.key
          (i r "reweights") (i r "pops") (i r "deletions") (i r "essential")
          pp_outcomes r)
      rows
  end

let view_top_refined ~k evs =
  let rows =
    Agg.top ~by:"time_us" ~k
      (Agg.by_dim "net" (List.filter (is_ev "panel.resolve") evs))
  in
  if rows <> [] then begin
    Format.printf "@.Top %d nets by refinement time:@." (List.length rows);
    Format.printf "  %-8s %10s %10s %10s@." "net" "time_ms" "resolves" "moves";
    List.iter
      (fun r ->
        Format.printf "  %-8s %10.2f %10d %10d%a@." r.Agg.key (ms r "time_us")
          r.Agg.count (i r "moves") pp_outcomes r)
      rows
  end

let view_top_regions ~k evs =
  let rows =
    Agg.top ~by:"reweights" ~k
      (Agg.by_dim "region" (List.filter (is_ev "region.reweight") evs))
  in
  if rows <> [] then begin
    Format.printf "@.Top %d regions by reweights:@." (List.length rows);
    Format.printf "  %-8s %10s@." "region" "reweights";
    List.iter
      (fun r -> Format.printf "  %-8s %10d@." r.Agg.key (i r "reweights"))
      rows
  end

let view_top_panels ~k evs =
  let panels = with_panel_dim (List.filter panel_ev evs) in
  let rows = Agg.top ~by:"time_us" ~k (Agg.by_dim "panel" panels) in
  if rows <> [] then begin
    let total =
      List.fold_left
        (fun acc e ->
          acc +. Option.value (Journal.data_value e "time_us") ~default:0.0)
        0.0 panels
    in
    Format.printf "@.Top %d panels by SINO time (total %.2f ms over %d events):@."
      (List.length rows) (total /. 1e3) (List.length panels);
    Format.printf "  %-10s %10s %10s %10s@." "panel" "time_ms" "events"
      "shields";
    List.iter
      (fun r ->
        Format.printf "  %-10s %10.2f %10d %10d%a@." r.Agg.key (ms r "time_us")
          r.Agg.count (i r "shields") pp_outcomes r)
      rows
  end

let view_by_signature ~k evs =
  let panels = List.filter panel_ev evs in
  let rows = Agg.by_dim "sig" panels in
  let total = List.fold_left (fun acc r -> acc + r.Agg.count) 0 rows in
  let unique = List.length rows in
  let dup_events = total - unique in
  let dup_time =
    List.fold_left
      (fun acc r ->
        if r.Agg.count > 1 then
          (* first sight would still be solved; repeats are cacheable *)
          acc
          +. Agg.datum r "time_us"
             *. (float_of_int (r.Agg.count - 1) /. float_of_int r.Agg.count)
        else acc)
      0.0 rows
  in
  Format.printf
    "@.Panel signatures: %d events, %d unique, %d duplicates (%.1f%% \
     cacheable, ~%.2f ms of repeat SINO work)@."
    total unique dup_events
    (if total = 0 then 0.0
     else 100.0 *. float_of_int dup_events /. float_of_int total)
    (dup_time /. 1e3);
  let rows = Agg.top ~by:"time_us" ~k (List.filter (fun r -> r.Agg.count > 1) rows) in
  if rows <> [] then begin
    Format.printf "  %-18s %8s %10s %8s@." "signature" "events" "time_ms"
      "nets";
    List.iter
      (fun r ->
        Format.printf "  %-18s %8d %10.2f %8d%a@." r.Agg.key r.Agg.count
          (ms r "time_us")
          (i r "nets" / max 1 r.Agg.count)
          pp_outcomes r)
      rows
  end

let member_of net e =
  match Journal.dim_value e "members" with
  | None -> false
  | Some m -> List.mem (string_of_int net) (String.split_on_char ',' m)

let pp_chain_event fmt e =
  let dim k = Journal.dim_value e k in
  let datum k =
    match Journal.data_value e k with
    | None -> ""
    | Some v ->
        if Float.is_integer v then Printf.sprintf " %s=%.0f" k v
        else Printf.sprintf " %s=%g" k v
  in
  let where =
    match (dim "region", dim "dir") with
    | Some r, Some d -> Printf.sprintf " region %s/%s" r d
    | (Some _ | None), _ -> ""
  in
  let pass = match dim "pass" with Some p -> " " ^ p | None -> "" in
  let sg = match dim "sig" with Some s -> " sig " ^ s | None -> "" in
  let outcome =
    match e.Journal.outcome with Some o -> " -> " ^ o | None -> ""
  in
  Format.fprintf fmt "  %-14s%s%s%s%s%s" e.Journal.ev pass where sg
    (String.concat ""
       (List.map (fun (k, _) -> datum k) e.Journal.data))
    outcome

let view_net net evs =
  let mine =
    List.filter
      (fun e ->
        Journal.dim_value e "net" = Some (string_of_int net)
        || (is_ev "panel.solve" e && member_of net e))
      evs
  in
  if mine = [] then Format.printf "net %d: no journal events@." net
  else begin
    Format.printf "@.Provenance of net %d (%d events):@." net
      (List.length mine);
    (* budget -> route -> panels solved around it -> refine touches *)
    let order e =
      match e.Journal.ev with
      | "net.budget" -> 0
      | "net.route" -> 1
      | "panel.solve" -> 2
      | "panel.resolve" -> 3
      | "net.refine" -> 4
      | _ -> 5
    in
    List.stable_sort (fun a b -> compare (order a) (order b)) mine
    |> List.iter (fun e -> Format.printf "%a@." pp_chain_event e)
  end

let run top net by_sig verbose quiet file =
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug);
  C.guard_exceptions @@ fun () ->
  match Journal.load file with
  | Error msg ->
      Format.eprintf "gsino_explain: %s@." msg;
      exit C.exit_usage
  | Ok evs ->
      let k = max 1 top in
      view_summary evs;
      (match net with
      | Some n -> view_net n evs
      | None ->
          view_top_nets ~k evs;
          view_top_refined ~k evs;
          view_top_regions ~k evs;
          view_top_panels ~k evs);
      if by_sig || net = None then view_by_signature ~k evs;
      C.exit_ok

let cmd =
  let doc = "Explain where a routing run spent its work" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Folds a gsino-journal-v1 attribution journal (from $(b,gsino_run \
         --journal)) into drill-down views: the hottest nets by route \
         churn, the nets refinement spent the most SINO time on, the \
         regions with the most edge reweights, the most expensive panels, \
         and — with $(b,--by-signature) — duplicate-panel recurrence by \
         canonical signature, the sizing measurement for the \
         content-addressed panel cache.";
      `P
        "With $(b,--net) the drill-down becomes one net's provenance \
         chain: budget, route churn, the panels it sat in and every \
         refinement touch, in flow order.";
      `P "Exits 0 on success, 2 when the journal cannot be read.";
    ]
  in
  Cmd.v
    (Cmd.info "gsino_explain" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ top_arg $ net_arg $ by_sig_arg $ C.verbose_arg
          $ C.quiet_arg $ journal_pos)

let () = exit (Cmd.eval' cmd)
