(* cli_common — flags, exit codes and observability plumbing shared by
   the gsino_* command-line drivers.

   Every binary exposes the same conventions:
   --trace/--metrics/--profile/--journal/--report accept '-' for stdout,
   at most one sink may claim it (two claims are a GSL0029 usage error),
   and a claimed stdout silences the human-readable output so the
   artifact stays machine-parseable.  Exit codes are uniform across the drivers and
   mirror Eda_guard.Error.exit_code: 0 success (possibly degraded),
   1 findings/regression breach, 2 usage or input error, 3 infeasible
   (under the Fail policy), 4 deadline with nothing to degrade to,
   5 internal error (singular matrix, worker crash, non-finite value),
   6 server overloaded (serve backpressure), 7 peer/stream i/o failure.
   Every failure leaves through one funnel (guard_exceptions) as a coded
   GSL diagnostic — no uncaught exception reaches the user. *)
open Cmdliner
open Gsino
module Generator = Eda_netlist.Generator
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log
module Diag = Eda_check.Diag
module Error = Eda_guard.Error
module Fault = Eda_guard.Fault

(* ---------------- exit codes ---------------- *)

let exit_ok = 0
let exit_findings = 1
let exit_usage = 2
let exit_infeasible = 3
let exit_deadline = 4
let exit_internal = 5
let exit_overload = 6
let exit_io = 7

(* referenced here so the constants stay in sync with the taxonomy by
   inspection; Error.exit_code is the authoritative mapping *)
let _ = (exit_infeasible, exit_deadline, exit_internal, exit_overload, exit_io)

(* A closed stdout/stderr/socket must surface as a typed Io error (exit
   7) through the funnel below, not kill the process: without this a
   pager quitting mid-report delivers SIGPIPE and the run dies with no
   diagnostic.  Unix writes then fail with EPIPE (mapped by
   Error.of_exn); stdio channels raise the equivalent Sys_error. *)
let () =
  if Sys.os_type = "Unix" then
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)

(* ---------------- shared flags ---------------- *)

let circuit_arg =
  let doc = "Benchmark circuit (ibm01..ibm06)." in
  Arg.(value & opt string "ibm01" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let scale_arg ?(default = 0.05) () =
  let doc =
    "Instance scale in (0,1]: net count scales linearly, region count \
     proportionally; chip dimensions and physical net lengths stay at the \
     published values."
  in
  Arg.(value & opt float default & info [ "s"; "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Random seed for placement, sensitivity and heuristics." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Sensitivity rate (fraction of net pairs sensitive to each other)." in
  Arg.(value & opt float 0.30 & info [ "r"; "rate" ] ~docv:"R" ~doc)

let router_arg =
  let doc =
    "Global router: 'id' (the paper's iterative deletion) or 'nc' \
     (negotiated congestion)."
  in
  Arg.(value
     & opt (enum [ ("id", Flow.Iterative_deletion); ("nc", Flow.Negotiated) ])
         Flow.Iterative_deletion
     & info [ "router" ] ~docv:"ENGINE" ~doc)

let budgeting_arg =
  let doc =
    "Crosstalk budgeting: 'uniform' (the paper's Manhattan split) or \
     'route-aware'."
  in
  Arg.(value
     & opt (enum [ ("uniform", Flow.Uniform); ("route-aware", Flow.Route_aware) ])
         Flow.Uniform
     & info [ "budgeting" ] ~docv:"MODE" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock budget for the whole flow, in milliseconds (0 = none).  On \
     expiry each phase keeps its best-so-far result — routes stay \
     connected, accounting stays consistent — and the run completes \
     $(i,degraded) (exit 0, GSL0019 warning in the lint output) instead of \
     being killed."
  in
  Arg.(value & opt int 0 & info [ "deadline" ] ~docv:"MS" ~doc)

let audit_arg =
  let doc =
    "Run the pre-route static audit (Eda_analyze) before each flow.  \
     Provable infeasibilities are logged as GSL0024+/GSL0026 diagnostics; \
     under the default Degrade policy the flow then proceeds anyway.  Use \
     the $(b,gsino_audit) driver to audit without routing."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel flow sections (Phase II panels, Phase \
     III noise scans, per-net candidate preparation).  1 runs fully \
     sequentially; any value yields identical routing results (see \
     DESIGN.md).  Defaults to the machine's recommended domain count, \
     capped at 8."
  in
  Arg.(value
     & opt int (Eda_exec.default_jobs ())
     & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let netlist_file_arg ~doc =
  Arg.(value & opt (some string) None & info [ "netlist" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Emit a live progress heartbeat on stderr (at most one line per \
     second): current flow phase, items done, elapsed time and — when \
     $(b,--deadline) is set — remaining budget."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let verbose_arg =
  let doc = "Verbose logging (level debug; overrides GSINO_LOG)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let quiet_arg =
  let doc = "Silence logging entirely (overrides GSINO_LOG and $(b,-v))." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

(* ---------------- output sinks ---------------- *)

(* Each driver exposes a subset of the artifact sinks below.  One
   declarative spec per sink — flag name, doc — is the single source of
   truth: the cmdliner terms, the GSL0029 stdout arbitration and the
   with_obs flush order all consume it, so adding a sink (or a driver)
   cannot desynchronize the flag set from the checks. *)
module Sinks = struct
  type kind = Trace | Profile | Metrics | Journal | Report

  let all = [ Trace; Profile; Metrics; Journal; Report ]

  (* flag name + doc; '-' means stdout for every sink *)
  let spec = function
    | Trace ->
        ( "trace",
          "Record spans of the whole run and write a Chrome-trace JSON file \
           to $(docv) on exit (load it in chrome://tracing or \
           ui.perfetto.dev); '-' writes it to stdout and silences the \
           human-readable output." )
    | Profile ->
        ( "profile",
          "Fold the recorded spans into a per-span self-time profile \
           (gsino-profile-v1 JSON: calls, total, self, p95, max per span \
           name) and write it to $(docv) on exit.  Implies span recording \
           even without $(b,--trace).  '-' prints the human-readable top-10 \
           table to stdout instead and silences the normal output.  The \
           profile is also exported as $(b,prof.*) gauges in the \
           $(b,--metrics) artifact." )
    | Metrics ->
        ( "metrics",
          "Write the metrics registry (gsino-metrics-v1 JSON: per-phase \
           counters, gauges and histograms) to $(docv) on exit; '-' writes \
           it to stdout and silences the human-readable output." )
    | Journal ->
        ( "journal",
          "Record the attribution journal — dimension-keyed cost events \
           (per-net route churn, per-region reweights, per-panel SINO \
           time/moves/outcome with canonical panel signatures and cache \
           hit/miss/stored dispositions) — and write it as gsino-journal-v1 \
           JSONL to $(docv) on exit; '-' writes it to stdout and silences \
           the human-readable output.  Drill down with $(b,gsino_explain)." )
    | Report ->
        ( "report",
          "Write a self-contained HTML run report for the GSINO flow \
           (congestion and shield heatmaps, noise-margin audit, phase \
           timings, metric charts) to $(docv); '-' prints the plain-text \
           report to stdout instead." )

  type t = {
    trace : string option;
    profile : string option;
    metrics : string option;
    journal : string option;
    report : string option;
  }

  let none =
    { trace = None; profile = None; metrics = None; journal = None; report = None }

  let get t = function
    | Trace -> t.trace
    | Profile -> t.profile
    | Metrics -> t.metrics
    | Journal -> t.journal
    | Report -> t.report

  (* every sink as (flag, value), spec order — what GSL0029 arbitrates *)
  let pairs t = List.map (fun k -> (fst (spec k), get t k)) all

  let arg kind =
    let name, doc = spec kind in
    Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

  (* [term kinds] — the sink flags this driver exposes; kinds not listed
     parse as absent so downstream plumbing is uniform *)
  let term kinds =
    let mk kind = if List.mem kind kinds then arg kind else Term.const None in
    Term.(
      const (fun trace profile metrics journal report ->
          { trace; profile; metrics; journal; report })
      $ mk Trace $ mk Profile $ mk Metrics $ mk Journal $ mk Report)
end

(* ---------------- panel cache ---------------- *)

(* (enabled, directory): what Flow.Config.{cache, cache_dir} consume.
   The cache never changes a byte of output (DESIGN §10), so both flags
   are pure performance knobs. *)
let panel_cache_term =
  let dir_arg =
    let doc =
      "Persist the content-addressed SINO panel cache in $(docv): solved \
       panels are loaded before Phase II and saved back after refinement, \
       so later runs (any circuit, any driver) skip re-solving identical \
       panels.  Cached solutions are byte-identical to fresh ones.  A \
       missing or corrupt store is treated as empty, never an error."
    in
    let env =
      Cmd.Env.info "GSINO_PANEL_CACHE"
        ~doc:"Default directory for $(b,--panel-cache)."
    in
    Arg.(value & opt (some string) None & info [ "panel-cache" ] ~docv:"DIR" ~env ~doc)
  in
  let off_arg =
    let doc =
      "Disable the in-process SINO panel cache (and ignore \
       $(b,--panel-cache) / $(b,GSINO_PANEL_CACHE)).  Solutions are \
       unchanged — this only stops repeat panels from being memoized; \
       useful for measuring the cache's effect."
    in
    Arg.(value & flag & info [ "no-panel-cache" ] ~doc)
  in
  Term.(
    const (fun dir off -> (not off, if off then None else dir))
    $ dir_arg $ off_arg)

(* ---------------- stdout arbitration ---------------- *)

(* "-" routes an artifact to stdout.  At most one artifact may claim
   stdout; when one does the human-readable output is silenced (a null
   formatter) so the artifact stays machine-parseable.  Two sinks both
   set to '-' would interleave JSON on one stream, so that is rejected
   up front as a coded usage error (GSL0029, exit 2) naming the
   offending flags.  Driven by the Sinks spec table, the check covers
   every sink pair of every driver uniformly. *)
let claim_stdout ~prog sinks =
  match List.filter (fun (_, v) -> v = Some "-") (Sinks.pairs sinks) with
  | [] -> false
  | [ _ ] -> true
  | clash ->
      let flags =
        String.concat " and " (List.map (fun (f, _) -> "--" ^ f) clash)
      in
      let d =
        Diag.makef ~code:29 Diag.Error
          "%s: %s each claim stdout ('-'); at most one artifact may write \
           to stdout per invocation"
          prog flags
      in
      prerr_endline (Diag.to_line d);
      exit exit_usage

let out_formatter ~claimed =
  if claimed then Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())
  else Format.std_formatter

(* ---------------- failure funnel ---------------- *)

(* The one rendering of a typed failure: its GSL code, a locus when the
   payload names one, and the class message. *)
let diag_of_error e =
  let locus =
    match e with
    | Error.Unreachable { net; _ } -> Some (Diag.Net net)
    | Error.Infeasible { region; dir; _ } ->
        Some
          (Diag.Region
             (region, if dir = "V" then Eda_grid.Dir.V else Eda_grid.Dir.H))
    | Error.Parse _ | Error.Singular_matrix _ | Error.Deadline _
    | Error.Worker_crash _ | Error.Nonfinite _ | Error.Frame _
    | Error.Overload _ | Error.Io _ ->
        None
  in
  Diag.make ~code:(Error.gsl_code e) Diag.Error ?locus (Error.to_string e)

let report_error ~pretty e =
  let d = diag_of_error e in
  if pretty then Format.eprintf "%a@." Diag.pp d
  else prerr_endline (Diag.to_line d);
  exit (Error.exit_code e)

(* Install faults requested via GSINO_FAULTS before any worker domain
   exists; a malformed spec is a usage error. *)
let init_faults ~prog () =
  match Fault.init_from_env () with
  | Ok () ->
      if Fault.active () then
        Log.warn
          ~fields:[ ("sites", String.concat "," (Fault.sites ())) ]
          "fault injection active (%s)" Fault.env_var
  | Error msg ->
      Format.eprintf "%s: invalid %s: %s@." prog Fault.env_var msg;
      exit exit_usage

(* Catch everything a run can throw and leave through the documented
   exit codes: typed guard errors directly, foreign exceptions with a
   known mapping (Matrix.Singular, router Unreachable) folded in, and
   anything else as an internal worker-crash (GSL0022, exit 5). *)
let guard_exceptions ?(pretty = false) f =
  try f () with
  | Error.Error e -> report_error ~pretty e
  | Nc_router.Unreachable { net; region } ->
      report_error ~pretty (Error.Unreachable { net; region })
  | exn -> (
      match Error.of_exn exn with
      | Some e -> report_error ~pretty e
      | None ->
          report_error ~pretty
            (Error.Worker_crash
               { site = "cli"; msg = Printexc.to_string exn }))

(* ---------------- observability lifecycle ---------------- *)

let write_trace = function
  | None -> ()
  | Some "-" -> print_endline (Eda_obs.Json.to_string (Trace.to_chrome_json ()))
  | Some file -> Trace.write_chrome file

let write_metrics = function
  | None -> ()
  | Some "-" ->
      print_endline
        (Eda_obs.Json.to_string (Metrics.to_json (Metrics.snapshot ())))
  | Some file -> Metrics.write_json file (Metrics.snapshot ())

let write_journal = function
  | None -> ()
  | Some sink -> (
      let evs = Eda_obs.Journal.events () in
      match sink with
      | "-" -> Eda_obs.Journal.output stdout evs
      | file -> Eda_obs.Journal.write_file file evs)

let write_profile = function
  | None -> ()
  | Some sink ->
      let rows = Eda_obs.Prof.current () in
      (* publish prof.* gauges before write_metrics snapshots, so the
         metrics artifact carries the profile series too *)
      Eda_obs.Prof.export_metrics rows;
      (match sink with
      | "-" -> print_string (Eda_obs.Prof.to_text rows)
      | file -> Eda_obs.Prof.write_json file rows)

(* Apply -v/-q, configure fault injection, enable tracing (--trace, or
   --profile which needs the same spans) and the --progress heartbeat
   when requested, run [f] inside the {!guard_exceptions} funnel, then
   flush the trace/profile/metrics artifacts even if [f] raises or exits
   — so a fault-injected or deadline-killed run still leaves its
   observability artifacts behind ([pretty] switches diagnostics to the
   human-readable renderer).  Flush order matters: the profile folds the
   trace ring and publishes prof.* gauges, so it runs after the trace
   export and before the metrics snapshot.  The report sink stays a
   per-driver concern (it needs the flow result); everything else flushes
   here. *)
let with_obs ?(pretty = false) ?(prog = "gsino") ?(progress = false) ~sinks
    ~verbose ~quiet f =
  let { Sinks.trace; profile; metrics; journal; report = _ } = sinks in
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug);
  init_faults ~prog ();
  (match (trace, profile) with
  | Some _, _ | _, Some _ -> Trace.enable ()
  | None, None -> ());
  (* before any worker domain exists, so workers see the flag *)
  (match journal with Some _ -> Eda_obs.Journal.enable () | None -> ());
  if progress then Eda_obs.Progress.enable ();
  (* idempotent and registered with at_exit: report_error leaves through
     Stdlib.exit, which does not unwind Fun.protect, yet a failed run
     must still drop its artifacts for triage *)
  let flushed = ref false in
  let finish () =
    if not !flushed then begin
      flushed := true;
      Eda_obs.Progress.disable ();
      write_trace trace;
      write_profile profile;
      (* before the metrics snapshot: journal.events is already counted,
         and the journal write must not disturb the registry *)
      write_journal journal;
      write_metrics metrics
    end
  in
  at_exit finish;
  Fun.protect ~finally:finish (fun () -> guard_exceptions ~pretty f)

(* ---------------- netlist acquisition ---------------- *)

let profile_of_name name =
  match Generator.find_ibm name with
  | Some p -> p
  | None ->
      Format.eprintf "unknown circuit %s (expected ibm01..ibm06)@." name;
      exit exit_usage

let netlist_of tech ~circuit ~scale ~seed = function
  | Some file -> (
      try Eda_netlist.Io.load file with
      | Error.Error (Error.Parse _ as e) ->
          (* typed loader failure: render through the funnel so the line
             number and offending token reach the user with the GSL0020
             code and the documented exit status *)
          report_error ~pretty:false e
      | Sys_error msg | Failure msg | Invalid_argument msg ->
          Format.eprintf "cannot load netlist %s: %s@." file msg;
          exit exit_usage)
  | None ->
      Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed
        (profile_of_name circuit)
