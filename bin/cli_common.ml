(* cli_common — flags, exit codes and observability plumbing shared by
   the gsino_* command-line drivers.

   Every binary exposes the same conventions: --trace/--metrics/--report
   accept '-' for stdout, at most one sink may claim it, and a claimed
   stdout silences the human-readable output so the artifact stays
   machine-parseable.  Exit codes are uniform across the drivers:
   0 success, 1 findings/regression breach, 2 usage or environment
   error. *)
open Cmdliner
open Gsino
module Generator = Eda_netlist.Generator
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log
module Diag = Eda_check.Diag

(* ---------------- exit codes ---------------- *)

let exit_ok = 0
let exit_findings = 1
let exit_usage = 2

(* ---------------- shared flags ---------------- *)

let circuit_arg =
  let doc = "Benchmark circuit (ibm01..ibm06)." in
  Arg.(value & opt string "ibm01" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let scale_arg ?(default = 0.05) () =
  let doc =
    "Instance scale in (0,1]: net count scales linearly, region count \
     proportionally; chip dimensions and physical net lengths stay at the \
     published values."
  in
  Arg.(value & opt float default & info [ "s"; "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Random seed for placement, sensitivity and heuristics." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Sensitivity rate (fraction of net pairs sensitive to each other)." in
  Arg.(value & opt float 0.30 & info [ "r"; "rate" ] ~docv:"R" ~doc)

let router_arg =
  let doc =
    "Global router: 'id' (the paper's iterative deletion) or 'nc' \
     (negotiated congestion)."
  in
  Arg.(value
     & opt (enum [ ("id", Flow.Iterative_deletion); ("nc", Flow.Negotiated) ])
         Flow.Iterative_deletion
     & info [ "router" ] ~docv:"ENGINE" ~doc)

let budgeting_arg =
  let doc =
    "Crosstalk budgeting: 'uniform' (the paper's Manhattan split) or \
     'route-aware'."
  in
  Arg.(value
     & opt (enum [ ("uniform", Flow.Uniform); ("route-aware", Flow.Route_aware) ])
         Flow.Uniform
     & info [ "budgeting" ] ~docv:"MODE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel flow sections (Phase II panels, Phase \
     III noise scans, per-net candidate preparation).  1 runs fully \
     sequentially; any value yields identical routing results (see \
     DESIGN.md).  Defaults to the machine's recommended domain count, \
     capped at 8."
  in
  Arg.(value
     & opt int (Eda_exec.default_jobs ())
     & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let netlist_file_arg ~doc =
  Arg.(value & opt (some string) None & info [ "netlist" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record spans of the whole run and write a Chrome-trace JSON file to \
     $(docv) on exit (load it in chrome://tracing or ui.perfetto.dev); \
     '-' writes it to stdout and silences the human-readable output."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (gsino-metrics-v1 JSON: per-phase counters, \
     gauges and histograms) to $(docv) on exit; '-' writes it to stdout \
     and silences the human-readable output."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let report_arg =
  let doc =
    "Write a self-contained HTML run report for the GSINO flow (congestion \
     and shield heatmaps, noise-margin audit, phase timings, metric charts) \
     to $(docv); '-' prints the plain-text report to stdout instead."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Verbose logging (level debug; overrides GSINO_LOG)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let quiet_arg =
  let doc = "Silence logging entirely (overrides GSINO_LOG and $(b,-v))." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

(* ---------------- stdout arbitration ---------------- *)

(* "-" routes an artifact to stdout.  At most one artifact may claim
   stdout; when one does the human-readable output is silenced (a null
   formatter) so the artifact stays machine-parseable. *)
let claim_stdout ~prog sinks =
  match List.filter (fun s -> s = Some "-") sinks with
  | [] -> false
  | [ _ ] -> true
  | _ :: _ :: _ ->
      Format.eprintf
        "%s: at most one of --trace/--metrics/--report may be '-'@." prog;
      exit exit_usage

let out_formatter ~claimed =
  if claimed then Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())
  else Format.std_formatter

(* ---------------- observability lifecycle ---------------- *)

let write_trace = function
  | None -> ()
  | Some "-" -> print_endline (Eda_obs.Json.to_string (Trace.to_chrome_json ()))
  | Some file -> Trace.write_chrome file

let write_metrics = function
  | None -> ()
  | Some "-" ->
      print_endline
        (Eda_obs.Json.to_string (Metrics.to_json (Metrics.snapshot ())))
  | Some file -> Metrics.write_json file (Metrics.snapshot ())

(* Apply -v/-q, enable tracing when requested, run [f], then flush the
   trace/metrics artifacts even if [f] raises.  A disconnected-grid
   failure from the negotiated router surfaces as a GSL0017 diagnostic
   and exit code 2 instead of an uncaught exception ([pretty] switches
   that diagnostic to the human-readable renderer). *)
let with_obs ?(pretty = false) ~trace ~metrics ~verbose ~quiet f =
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug);
  (match trace with Some _ -> Trace.enable () | None -> ());
  let finish () =
    write_trace trace;
    write_metrics metrics
  in
  Fun.protect ~finally:finish (fun () ->
      try f ()
      with Nc_router.Unreachable { net; region } ->
        let d = Nc_router.unreachable_diag ~net ~region in
        if pretty then Format.eprintf "%a@." Diag.pp d
        else prerr_endline (Diag.to_line d);
        exit exit_usage)

(* ---------------- netlist acquisition ---------------- *)

let profile_of_name name =
  match Generator.find_ibm name with
  | Some p -> p
  | None ->
      Format.eprintf "unknown circuit %s (expected ibm01..ibm06)@." name;
      exit exit_usage

let netlist_of tech ~circuit ~scale ~seed = function
  | Some file -> (
      try Eda_netlist.Io.load file
      with Sys_error msg | Failure msg | Invalid_argument msg ->
        Format.eprintf "cannot load netlist %s: %s@." file msg;
        exit exit_usage)
  | None ->
      Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed
        (profile_of_name circuit)
