(* gsino_run — command-line driver for the GSINO reproduction.

   Subcommands:
     run    — one circuit, one rate, all three flows
     suite  — the paper's full evaluation (Tables 1-3)
     table  — dump the LSK -> noise lookup table
     bounds — show the crosstalk budget statistics for a circuit

   The flags shared with the other drivers
   (--trace/--metrics/--profile/--journal/--report sinks, -v/-q, --jobs,
   circuit selection) live in Cli_common. *)
open Cmdliner
open Gsino
module Metrics = Eda_obs.Metrics
module C = Cli_common

let netlist_file_arg =
  C.netlist_file_arg
    ~doc:
      "Load the netlist from FILE (gsino-netlist v1) instead of generating \
       one."

let run_cmd =
  let run circuit scale seed rate router budgeting jobs deadline audit
      netlist_file sinks panel_cache progress verbose quiet =
    let claimed = C.claim_stdout ~prog:"gsino_run" sinks in
    let out = C.out_formatter ~claimed in
    C.with_obs ~prog:"gsino_run" ~progress ~sinks ~verbose ~quiet
    @@ fun () ->
    let tech = Tech.default in
    let netlist = C.netlist_of tech ~circuit ~scale ~seed netlist_file in
    Format.fprintf out "%a@." Eda_netlist.Netlist.pp_summary netlist;
    let cache, cache_dir = panel_cache in
    let config kind =
      {
        Flow.Config.default with
        Flow.Config.kind;
        router;
        budgeting;
        seed;
        jobs;
        deadline_ms = deadline;
        audit;
        cache;
        cache_dir;
      }
    in
    let grid, base = Flow.prepare ~config:(config Flow.Id_no) tech netlist in
    Format.fprintf out "%a@.@." Eda_grid.Grid.pp grid;
    let sensitivity = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
    let flows =
      [
        Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity netlist;
        Flow.run ~grid ~base (config Flow.Isino) tech ~sensitivity netlist;
        Flow.run ~grid (config Flow.Gsino) tech ~sensitivity netlist;
      ]
    in
    List.iter (fun r -> Format.fprintf out "%a@." Flow.pp_summary r) flows;
    List.iter
      (fun r ->
        match r.Flow.refine_stats with
        | Some s ->
            Format.fprintf out "%s %a@." (Flow.kind_name r.Flow.kind) Refine.pp_stats s
        | None -> ())
      flows;
    (* self-audit: every flow run is checked against the GSL invariant
       rules; errors are printed in full, the rest summarized *)
    List.iter
      (fun r ->
        let diags = Flow.check ~tech r in
        Format.fprintf out "%s lint: %a@." (Flow.kind_name r.Flow.kind)
          Eda_check.Diag.pp_summary diags;
        List.iter
          (fun d ->
            if d.Eda_check.Diag.severity = Eda_check.Diag.Error then
              Format.fprintf out "  %s@." (Eda_check.Diag.to_line d))
          diags)
      flows;
    Format.fprintf out "@.%a" Report.metrics_summary (Metrics.snapshot ());
    match sinks.C.Sinks.report with
    | None -> ()
    | Some dest -> (
        let gsino_r = List.find (fun r -> r.Flow.kind = Flow.Gsino) flows in
        let snapshot = Metrics.snapshot () in
        let title =
          Printf.sprintf "GSINO run report: %s"
            netlist.Eda_netlist.Netlist.name
        in
        match dest with
        | "-" ->
            print_string
              (Eda_reportviz.Run_report.text ~tech ~snapshot gsino_r)
        | file ->
            Eda_reportviz.Run_report.write_html ~tech ~title ~snapshot file
              gsino_r;
            Format.fprintf out "wrote run report to %s@." file)
  in
  let doc = "Run ID+NO, iSINO and GSINO on one circuit at one sensitivity rate." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ C.circuit_arg $ C.scale_arg () $ C.seed_arg $ C.rate_arg
          $ C.router_arg $ C.budgeting_arg $ C.jobs_arg $ C.deadline_arg
          $ C.audit_arg $ netlist_file_arg $ C.Sinks.term C.Sinks.all
          $ C.panel_cache_term $ C.progress_arg $ C.verbose_arg $ C.quiet_arg)

let map_cmd =
  let run circuit scale seed rate jobs netlist_file panel_cache =
    let tech = Tech.default in
    let netlist = C.netlist_of tech ~circuit ~scale ~seed netlist_file in
    let cache, cache_dir = panel_cache in
    let config kind =
      { Flow.Config.default with Flow.Config.kind; seed; jobs; cache; cache_dir }
    in
    let grid, base = Flow.prepare ~config:(config Flow.Id_no) tech netlist in
    let sensitivity = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
    let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity netlist in
    let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity netlist in
    Format.printf "%a@.@." Eda_netlist.Netlist.pp_summary netlist;
    Format.printf "conventional routing (nets only):@.%a@." Congestion_map.render
      idno.Flow.usage;
    Format.printf "GSINO (nets + shields):@.%a@." Congestion_map.render
      gsino.Flow.usage
  in
  let doc = "Print ASCII congestion maps before and after GSINO." in
  Cmd.v (Cmd.info "map" ~doc)
    Term.(const run $ C.circuit_arg $ C.scale_arg () $ C.seed_arg $ C.rate_arg
          $ C.jobs_arg $ netlist_file_arg $ C.panel_cache_term)

let gen_cmd =
  let run circuit scale seed out =
    let tech = Tech.default in
    let netlist =
      Eda_netlist.Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed
        (C.profile_of_name circuit)
    in
    Eda_netlist.Io.save out netlist;
    Format.printf "wrote %a to %s@." Eda_netlist.Netlist.pp_summary netlist out
  in
  let out_arg =
    let doc = "Output file." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc = "Generate a synthetic benchmark netlist and save it." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ C.circuit_arg $ C.scale_arg () $ C.seed_arg $ out_arg)

let suite_cmd =
  let run scale seed jobs circuits sinks panel_cache progress verbose quiet =
    let claimed = C.claim_stdout ~prog:"gsino_run" sinks in
    let out = C.out_formatter ~claimed in
    C.with_obs ~prog:"gsino_run" ~progress ~sinks ~verbose ~quiet
    @@ fun () ->
    let profiles =
      match circuits with
      | [] -> Eda_netlist.Generator.all_ibm
      | names -> List.map C.profile_of_name names
    in
    let cache, cache_dir = panel_cache in
    let suite = Report.run_suite ~profiles ~jobs ~cache ?cache_dir ~scale ~seed () in
    Format.fprintf out "%a@.%a@.%a@.%a@.%a@.%a@.%a@." Report.table1 suite
      Report.table2 suite Report.table3 suite Report.violations_summary suite
      Report.timing_summary suite Report.lint_summary suite
      Report.metrics_summary (Metrics.snapshot ())
  in
  let circuits_arg =
    let doc = "Circuits to include (default: all six)." in
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let doc = "Reproduce the paper's Tables 1-3 (both sensitivity rates)." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(const run $ C.scale_arg () $ C.seed_arg $ C.jobs_arg $ circuits_arg
          $ C.Sinks.(term [ Trace; Profile; Metrics; Journal ])
          $ C.panel_cache_term $ C.progress_arg $ C.verbose_arg $ C.quiet_arg)

let table_cmd =
  let run () =
    let model = Tech.lsk_model Tech.default in
    Format.printf "%a@.# LSK(um*K)\tnoise(V)@.%a@." Eda_lsk.Lsk.pp model
      Eda_util.Lintable.pp model.Eda_lsk.Lsk.table
  in
  let doc = "Build (via circuit simulation) and dump the LSK lookup table." in
  Cmd.v (Cmd.info "table" ~doc) Term.(const run $ const ())

let bounds_cmd =
  let run circuit scale seed =
    let tech = Tech.default in
    let profile = C.profile_of_name circuit in
    let netlist =
      Eda_netlist.Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed
        profile
    in
    let budget =
      Budget.uniform ~lsk:(Tech.lsk_model tech) ~noise_v:tech.Tech.noise_bound_v
        ~gcell_um:netlist.Eda_netlist.Netlist.gcell_um netlist
    in
    Format.printf "%a@.%a@." Eda_netlist.Netlist.pp_summary netlist Budget.pp budget
  in
  let doc = "Show the Phase-I crosstalk budget statistics for a circuit." in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ C.circuit_arg $ C.scale_arg () $ C.seed_arg)

let () =
  let doc = "Global routing with RLC crosstalk constraints (Ma & He, DAC 2002)" in
  let info = Cmd.info "gsino_run" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; suite_cmd; table_cmd; bounds_cmd; map_cmd; gen_cmd ]))
