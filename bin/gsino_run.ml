(* gsino_run — command-line driver for the GSINO reproduction.

   Subcommands:
     run    — one circuit, one rate, all three flows
     suite  — the paper's full evaluation (Tables 1-3)
     table  — dump the LSK -> noise lookup table
     bounds — show the crosstalk budget statistics for a circuit *)
open Cmdliner
open Gsino
module Generator = Eda_netlist.Generator
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log

(* ---------------- observability plumbing (shared by subcommands) ----- *)

let trace_arg =
  let doc =
    "Record spans of the whole run and write a Chrome-trace JSON file to \
     $(docv) on exit (load it in chrome://tracing or ui.perfetto.dev); \
     '-' writes it to stdout and silences the human-readable output."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (gsino-metrics-v1 JSON: per-phase counters, \
     gauges and histograms) to $(docv) on exit; '-' writes it to stdout \
     and silences the human-readable output."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Verbose logging (level debug; overrides GSINO_LOG)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let quiet_arg =
  let doc = "Silence logging entirely (overrides GSINO_LOG and $(b,-v))." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

(* "-" routes an artifact to stdout.  At most one artifact may claim
   stdout; when one does the human-readable output is silenced (a null
   formatter) so the artifact stays machine-parseable. *)
let claim_stdout sinks =
  match List.filter (fun s -> s = Some "-") sinks with
  | [] -> false
  | [ _ ] -> true
  | _ :: _ :: _ ->
      Format.eprintf
        "gsino_run: at most one of --trace/--metrics/--report may be '-'@.";
      exit 2

let out_formatter ~claimed =
  if claimed then Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())
  else Format.std_formatter

let write_trace = function
  | None -> ()
  | Some "-" -> print_endline (Eda_obs.Json.to_string (Trace.to_chrome_json ()))
  | Some file -> Trace.write_chrome file

let write_metrics = function
  | None -> ()
  | Some "-" ->
      print_endline
        (Eda_obs.Json.to_string (Metrics.to_json (Metrics.snapshot ())))
  | Some file -> Metrics.write_json file (Metrics.snapshot ())

(* Apply -v/-q, enable tracing when requested, run [f], then flush the
   trace/metrics artifacts even if [f] raises.  A disconnected-grid
   failure from the negotiated router surfaces as a GSL0017 diagnostic
   and exit code 2 instead of an uncaught exception. *)
let with_obs ~trace ~metrics ~verbose ~quiet f =
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug);
  (match trace with Some _ -> Trace.enable () | None -> ());
  let finish () =
    write_trace trace;
    write_metrics metrics
  in
  Fun.protect ~finally:finish (fun () ->
      try f ()
      with Nc_router.Unreachable { net; region } ->
        prerr_endline
          (Eda_check.Diag.to_line (Nc_router.unreachable_diag ~net ~region));
        exit 2)

let circuit_arg =
  let doc = "Benchmark circuit (ibm01..ibm06)." in
  Arg.(value & opt string "ibm01" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc =
    "Instance scale in (0,1]: net count scales linearly, region count \
     proportionally; chip dimensions and physical net lengths stay at the \
     published values."
  in
  Arg.(value & opt float 0.05 & info [ "s"; "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Random seed for placement, sensitivity and heuristics." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Sensitivity rate (fraction of net pairs sensitive to each other)." in
  Arg.(value & opt float 0.30 & info [ "r"; "rate" ] ~docv:"R" ~doc)

let router_arg =
  let doc = "Global router: 'id' (the paper's iterative deletion) or 'nc' \
             (negotiated congestion)." in
  Arg.(value & opt (enum [ ("id", Flow.Iterative_deletion); ("nc", Flow.Negotiated) ])
         Flow.Iterative_deletion
     & info [ "router" ] ~docv:"ENGINE" ~doc)

let budgeting_arg =
  let doc = "Crosstalk budgeting: 'uniform' (the paper's Manhattan split) or \
             'route-aware'." in
  Arg.(value & opt (enum [ ("uniform", Flow.Uniform); ("route-aware", Flow.Route_aware) ])
         Flow.Uniform
     & info [ "budgeting" ] ~docv:"MODE" ~doc)

let netlist_file_arg =
  let doc = "Load the netlist from FILE (gsino-netlist v1) instead of \
             generating one." in
  Arg.(value & opt (some string) None & info [ "netlist" ] ~docv:"FILE" ~doc)

let profile_of_name name =
  match Generator.find_ibm name with
  | Some p -> p
  | None ->
      Format.eprintf "unknown circuit %s (expected ibm01..ibm06)@." name;
      exit 2

let netlist_of tech circuit scale seed = function
  | Some file -> Eda_netlist.Io.load file
  | None ->
      Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed
        (profile_of_name circuit)

let report_arg =
  let doc =
    "Write a self-contained HTML run report for the GSINO flow (congestion \
     and shield heatmaps, noise-margin audit, phase timings, metric charts) \
     to $(docv); '-' prints the plain-text report to stdout instead."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run circuit scale seed rate router budgeting netlist_file trace metrics
      report verbose quiet =
    let claimed = claim_stdout [ trace; metrics; report ] in
    let out = out_formatter ~claimed in
    with_obs ~trace ~metrics ~verbose ~quiet @@ fun () ->
    let tech = Tech.default in
    let netlist = netlist_of tech circuit scale seed netlist_file in
    Format.fprintf out "%a@." Eda_netlist.Netlist.pp_summary netlist;
    let grid, base = Flow.prepare ~router tech netlist in
    Format.fprintf out "%a@.@." Eda_grid.Grid.pp grid;
    let sensitivity = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
    let flows =
      [
        Flow.run tech ~sensitivity ~seed ~router ~budgeting ~grid ~base netlist Flow.Id_no;
        Flow.run tech ~sensitivity ~seed ~router ~budgeting ~grid ~base netlist Flow.Isino;
        Flow.run tech ~sensitivity ~seed ~router ~budgeting ~grid netlist Flow.Gsino;
      ]
    in
    List.iter (fun r -> Format.fprintf out "%a@." Flow.pp_summary r) flows;
    List.iter
      (fun r ->
        match r.Flow.refine_stats with
        | Some s ->
            Format.fprintf out "%s %a@." (Flow.kind_name r.Flow.kind) Refine.pp_stats s
        | None -> ())
      flows;
    (* self-audit: every flow run is checked against the GSL invariant
       rules; errors are printed in full, the rest summarized *)
    List.iter
      (fun r ->
        let diags = Flow.check ~tech r in
        Format.fprintf out "%s lint: %a@." (Flow.kind_name r.Flow.kind)
          Eda_check.Diag.pp_summary diags;
        List.iter
          (fun d ->
            if d.Eda_check.Diag.severity = Eda_check.Diag.Error then
              Format.fprintf out "  %s@." (Eda_check.Diag.to_line d))
          diags)
      flows;
    Format.fprintf out "@.%a" Report.metrics_summary (Metrics.snapshot ());
    match report with
    | None -> ()
    | Some dest -> (
        let gsino_r = List.find (fun r -> r.Flow.kind = Flow.Gsino) flows in
        let snapshot = Metrics.snapshot () in
        let title =
          Printf.sprintf "GSINO run report: %s"
            netlist.Eda_netlist.Netlist.name
        in
        match dest with
        | "-" ->
            print_string
              (Eda_reportviz.Run_report.text ~tech ~snapshot gsino_r)
        | file ->
            Eda_reportviz.Run_report.write_html ~tech ~title ~snapshot file
              gsino_r;
            Format.fprintf out "wrote run report to %s@." file)
  in
  let doc = "Run ID+NO, iSINO and GSINO on one circuit at one sensitivity rate." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ circuit_arg $ scale_arg $ seed_arg $ rate_arg $ router_arg
          $ budgeting_arg $ netlist_file_arg $ trace_arg $ metrics_arg
          $ report_arg $ verbose_arg $ quiet_arg)

let map_cmd =
  let run circuit scale seed rate netlist_file =
    let tech = Tech.default in
    let netlist = netlist_of tech circuit scale seed netlist_file in
    let grid, base = Flow.prepare tech netlist in
    let sensitivity = Eda_netlist.Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
    let idno = Flow.run tech ~sensitivity ~seed ~grid ~base netlist Flow.Id_no in
    let gsino = Flow.run tech ~sensitivity ~seed ~grid netlist Flow.Gsino in
    Format.printf "%a@.@." Eda_netlist.Netlist.pp_summary netlist;
    Format.printf "conventional routing (nets only):@.%a@." Congestion_map.render
      idno.Flow.usage;
    Format.printf "GSINO (nets + shields):@.%a@." Congestion_map.render
      gsino.Flow.usage
  in
  let doc = "Print ASCII congestion maps before and after GSINO." in
  Cmd.v (Cmd.info "map" ~doc)
    Term.(const run $ circuit_arg $ scale_arg $ seed_arg $ rate_arg $ netlist_file_arg)

let gen_cmd =
  let run circuit scale seed out =
    let tech = Tech.default in
    let netlist =
      Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed
        (profile_of_name circuit)
    in
    Eda_netlist.Io.save out netlist;
    Format.printf "wrote %a to %s@." Eda_netlist.Netlist.pp_summary netlist out
  in
  let out_arg =
    let doc = "Output file." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc = "Generate a synthetic benchmark netlist and save it." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ circuit_arg $ scale_arg $ seed_arg $ out_arg)

let suite_cmd =
  let run scale seed circuits trace metrics verbose quiet =
    let claimed = claim_stdout [ trace; metrics ] in
    let out = out_formatter ~claimed in
    with_obs ~trace ~metrics ~verbose ~quiet @@ fun () ->
    let profiles =
      match circuits with
      | [] -> Generator.all_ibm
      | names -> List.map profile_of_name names
    in
    let suite = Report.run_suite ~profiles ~scale ~seed () in
    Format.fprintf out "%a@.%a@.%a@.%a@.%a@.%a@.%a@." Report.table1 suite
      Report.table2 suite Report.table3 suite Report.violations_summary suite
      Report.timing_summary suite Report.lint_summary suite
      Report.metrics_summary (Metrics.snapshot ())
  in
  let circuits_arg =
    let doc = "Circuits to include (default: all six)." in
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let doc = "Reproduce the paper's Tables 1-3 (both sensitivity rates)." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(const run $ scale_arg $ seed_arg $ circuits_arg $ trace_arg
          $ metrics_arg $ verbose_arg $ quiet_arg)

let table_cmd =
  let run () =
    let model = Tech.lsk_model Tech.default in
    Format.printf "%a@.# LSK(um*K)\tnoise(V)@.%a@." Eda_lsk.Lsk.pp model
      Eda_util.Lintable.pp model.Eda_lsk.Lsk.table
  in
  let doc = "Build (via circuit simulation) and dump the LSK lookup table." in
  Cmd.v (Cmd.info "table" ~doc) Term.(const run $ const ())

let bounds_cmd =
  let run circuit scale seed =
    let tech = Tech.default in
    let profile = profile_of_name circuit in
    let netlist =
      Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed profile
    in
    let budget =
      Budget.uniform ~lsk:(Tech.lsk_model tech) ~noise_v:tech.Tech.noise_bound_v
        ~gcell_um:netlist.Eda_netlist.Netlist.gcell_um netlist
    in
    Format.printf "%a@.%a@." Eda_netlist.Netlist.pp_summary netlist Budget.pp budget
  in
  let doc = "Show the Phase-I crosstalk budget statistics for a circuit." in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ circuit_arg $ scale_arg $ seed_arg)

let () =
  let doc = "Global routing with RLC crosstalk constraints (Ma & He, DAC 2002)" in
  let info = Cmd.info "gsino_run" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; suite_cmd; table_cmd; bounds_cmd; map_cmd; gen_cmd ]))
