(* gsino_diff — compare two gsino-metrics-v1 snapshots.

   Aligns the series of BASELINE and CURRENT by (name, labels), prints
   the added/removed/changed series with absolute and relative deltas,
   and — when --policy is given — gates the guarded metrics against
   per-metric tolerances.  Exit status: 0 when within policy (or no
   policy), 1 on a policy breach, 2 on unreadable inputs. *)
open Cmdliner
module Metrics = Eda_obs.Metrics
module Diff = Eda_obs.Diff
module Log = Eda_obs.Log
module C = Cli_common

(* plain strings, not Arg.file: a missing path must leave through our
   documented exit 2 with a readable message, not cmdliner's 124.
   Positional snapshots are optional at the cmdliner layer because
   --history needs neither; their presence is enforced in [run]. *)
let baseline_arg =
  let doc = "Baseline metrics snapshot (gsino-metrics-v1 JSON)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"BASELINE" ~doc)

let current_arg =
  let doc = "Current metrics snapshot (gsino-metrics-v1 JSON)." in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"CURRENT" ~doc)

let history_arg =
  let doc =
    "Summarize metric trends across a bench history file (JSONL, one \
     gsino-bench-history-v1 object per bench run — see \
     $(b,BENCH_HISTORY.jsonl)): one row per metric name with first/last \
     values, relative drift and the min/max envelope.  With $(b,--history) \
     the BASELINE/CURRENT snapshots are optional; a $(b,--policy) exclude \
     list still filters the rows."
  in
  Arg.(value & opt (some string) None & info [ "history" ] ~docv:"FILE" ~doc)

let policy_arg =
  let doc =
    "Regression policy (gsino-diff-policy-v1 JSON).  Each tolerance names \
     a guarded metric, the drift direction it guards, and the allowed \
     max_abs/max_rel drift; any breach makes the exit status 1."
  in
  Arg.(value & opt (some string) None & info [ "policy" ] ~docv:"FILE" ~doc)

let all_arg =
  let doc = "Print unchanged series too, not just the drifted ones." in
  Arg.(value & flag & info [ "a"; "all" ] ~doc)

let load path =
  match Metrics.read_json path with
  | Ok s -> s
  | Error msg ->
      Format.eprintf "gsino_diff: %s@." msg;
      exit C.exit_usage

let count f entries = List.length (List.filter f entries)

let is_added e =
  match e.Diff.change with
  | Diff.Added _ -> true
  | Diff.Removed _ | Diff.Changed _ | Diff.Unchanged _ -> false

let is_removed e =
  match e.Diff.change with
  | Diff.Removed _ -> true
  | Diff.Added _ | Diff.Changed _ | Diff.Unchanged _ -> false

let is_changed e =
  match e.Diff.change with
  | Diff.Changed _ -> true
  | Diff.Added _ | Diff.Removed _ | Diff.Unchanged _ -> false

let show_history pol file =
  match Diff.History.load file with
  | Error msg ->
      Format.eprintf "gsino_diff: %s@." msg;
      exit C.exit_usage
  | Ok [] -> Format.printf "history %s: no snapshots@." file
  | Ok entries ->
      let span =
        match (entries, List.rev entries) with
        | first :: _, last :: _ -> last.Diff.History.ts -. first.Diff.History.ts
        | [], _ | _, [] -> 0.0
      in
      Format.printf "history %s: %d snapshot(s) spanning %.1f h@." file
        (List.length entries)
        (span /. 3600.0);
      (match entries with
      | e :: _ when e.Diff.History.meta <> [] ->
          Format.printf "  first run: %s@."
            (String.concat ", "
               (List.map
                  (fun (k, v) -> k ^ "=" ^ v)
                  e.Diff.History.meta))
      | _ -> ());
      Format.printf "  %-44s %3s %14s %14s %7s %14s %14s@." "series" "n"
        "first" "last" "drift" "min" "max";
      List.iter
        (fun t ->
          let keep =
            match pol with
            | Some p -> not (Diff.excluded p t.Diff.History.name)
            | None -> true
          in
          if keep then Format.printf "  %a@." Diff.History.pp_trend t)
        (Diff.History.trends entries)

let run policy all history verbose quiet baseline current =
  if quiet then Log.set_level Log.Quiet
  else if verbose then Log.set_level (Log.Level Log.Debug);
  C.guard_exceptions @@ fun () ->
  let pol =
    match policy with
    | None -> None
    | Some file -> (
        match Diff.load_policy file with
        | Error msg ->
            Format.eprintf "gsino_diff: %s@." msg;
            exit C.exit_usage
        | Ok p -> Some p)
  in
  (match history with Some file -> show_history pol file | None -> ());
  match (baseline, current) with
  | None, None when history <> None -> C.exit_ok
  | None, _ | _, None ->
      Format.eprintf
        "gsino_diff: BASELINE and CURRENT snapshots are required (unless \
         --history alone is wanted)@.";
      exit C.exit_usage
  | Some baseline, Some current ->
  let entries = Diff.diff (load baseline) (load current) in
  let entries =
    match pol with Some p -> Diff.apply_exclude p entries | None -> entries
  in
  let shown = List.filter (fun e -> all || Diff.changed e) entries in
  if shown = [] then print_endline "no metric drift"
  else begin
    Format.printf "  %-44s %-9s %14s %14s %14s %s@." "series" "kind" "before"
      "after" "delta" "rel";
    List.iter (fun e -> Format.printf "%a@." Diff.pp_entry e) shown;
    Format.printf "%d series: %d added, %d removed, %d changed@."
      (List.length entries) (count is_added entries) (count is_removed entries)
      (count is_changed entries)
  end;
  match pol with
  | None -> C.exit_ok
  | Some p -> (
      match Diff.check p entries with
      | [] ->
          Format.printf "regression gate: OK (%d guarded metrics)@."
            (List.length p.Diff.tolerances);
          C.exit_ok
      | breaches ->
          Format.printf "regression gate: %d breach(es)@."
            (List.length breaches);
          List.iter
            (fun b -> Format.printf "  BREACH %a@." Diff.pp_breach b)
            breaches;
          C.exit_findings)

let cmd =
  let doc = "Diff two gsino-metrics-v1 snapshots and gate on a policy" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compares the metric series of two exported snapshots (from \
         $(b,gsino_run --metrics)).  Without $(b,--policy) this is purely \
         informational.  With a policy, guarded metrics may drift only in \
         the allowed direction and within the per-metric max_abs/max_rel \
         tolerances; an added, removed or over-tolerance guarded series \
         is a breach.";
      `P
        "Exits 0 when within policy, 1 on a breach, 2 when a snapshot or \
         the policy cannot be read.";
    ]
  in
  Cmd.v
    (Cmd.info "gsino_diff" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ policy_arg $ all_arg $ history_arg $ C.verbose_arg
          $ C.quiet_arg $ baseline_arg $ current_arg)

let () = exit (Cmd.eval' cmd)
