(* gsino_audit — pre-route static analysis of a routing instance.

   Runs the Eda_analyze audit on a netlist (generated benchmark or
   gsino-netlist v1 file) without routing anything: provable cut
   overflows (GSL0024), clique shield pressure (GSL0025), Kth/LSK
   satisfiability (GSL0026) and the Formula-3 Nss cross-check
   (GSL0027), plus the RUDY congestion prediction and sensitivity-graph
   structure in the summary line.  Exit status follows the shared
   funnel: 0 clean (warnings allowed), 1 when an Error-severity finding
   proves the instance infeasible, 2 on usage or input errors.

   Shared flags (--trace/--metrics sinks with '-', -v/-q, circuit
   selection) come from Cli_common. *)
open Cmdliner
open Gsino
module Diag = Eda_check.Diag
module Analyze = Eda_analyze.Analyze
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Sensitivity = Eda_netlist.Sensitivity
module C = Cli_common

let netlist_file_arg =
  C.netlist_file_arg
    ~doc:"Audit FILE (gsino-netlist v1) instead of a generated circuit."

let hcap_arg =
  let doc =
    "Horizontal track capacity per region (0 = auto-provision like the \
     flow's grid).  Explicit capacities let the audit answer 'does this \
     instance fit THIS placement' rather than one sized to fit."
  in
  Arg.(value & opt int 0 & info [ "hcap" ] ~docv:"N" ~doc)

let vcap_arg =
  let doc = "Vertical track capacity per region (0 = auto-provision)." in
  Arg.(value & opt int 0 & info [ "vcap" ] ~docv:"N" ~doc)

let pretty_arg =
  let doc = "Human-readable diagnostics instead of machine one-liners." in
  Arg.(value & flag & info [ "pretty" ] ~doc)

let max_print_arg =
  let doc = "Print at most $(docv) diagnostics (0 = unlimited)." in
  Arg.(value & opt int 50 & info [ "max-print" ] ~docv:"N" ~doc)

let errors_only_arg =
  let doc = "Only print Error-severity diagnostics." in
  Arg.(value & flag & info [ "e"; "errors-only" ] ~doc)

let grid_of tech netlist ~hcap ~vcap =
  let auto = Tech.grid_for tech netlist in
  if hcap <= 0 && vcap <= 0 then auto
  else begin
    let auto_cap dir =
      if Grid.num_regions auto = 0 then 0
      else Grid.cap auto (Grid.region_pt auto 0) dir
    in
    Grid.make ~w:(Grid.width auto) ~h:(Grid.height auto)
      ~hcap:(if hcap > 0 then hcap else auto_cap Dir.H)
      ~vcap:(if vcap > 0 then vcap else auto_cap Dir.V)
  end

let audit circuit scale seed rate hcap vcap netlist_file pretty max_print
    errors_only sinks progress verbose quiet =
  let claimed = C.claim_stdout ~prog:"gsino_audit" sinks in
  let out = C.out_formatter ~claimed in
  C.with_obs ~pretty ~prog:"gsino_audit" ~progress ~sinks ~verbose ~quiet
  @@ fun () ->
  let tech = Tech.default in
  let netlist = C.netlist_of tech ~circuit ~scale ~seed netlist_file in
  let grid = grid_of tech netlist ~hcap ~vcap in
  let sensitivity = Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
  let t = Analyze.run (Flow.analyze_config tech) ~grid ~sensitivity netlist in
  let shown =
    List.filter
      (fun d -> (not errors_only) || d.Diag.severity = Diag.Error)
      t.Analyze.findings
  in
  let n_shown = List.length shown in
  List.iteri
    (fun i d ->
      if max_print <= 0 || i < max_print then
        if pretty then Format.fprintf out "%a@." Diag.pp d
        else Format.fprintf out "%s@." (Diag.to_line d))
    shown;
  if max_print > 0 && n_shown > max_print then
    Format.fprintf out "... %d more diagnostics suppressed (--max-print)@."
      (n_shown - max_print);
  Format.fprintf out "%a@." Analyze.pp_summary t;
  if Analyze.has_errors t then C.exit_findings else C.exit_ok

let cmd =
  let doc = "Prove routing-instance infeasibility before routing anything" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Statically audits a routing instance — netlist, grid capacities, \
         sensitivity model and LSK budget — without running a router.  \
         Reports provable cut-capacity overflows ($(b,GSL0024)), sensitivity \
         cliques whose shield lower bound exceeds a region's tracks \
         ($(b,GSL0025)), Kth/LSK bounds unmeetable even fully shielded \
         ($(b,GSL0026)) and Formula-3 Nss estimates provably below the \
         clique bound ($(b,GSL0027)).  Findings are printed one per line as \
         '$(b,GSL)NNNN E|W|I locus message'.";
      `P
        "Exits 0 when no Error-severity finding fired (the instance may \
         still be hard — the audit is sound, not complete), 1 when the \
         instance is provably infeasible, 2 on usage or input errors.";
    ]
  in
  Cmd.v
    (Cmd.info "gsino_audit" ~version:"1.0.0" ~doc ~man)
    Term.(
      const audit $ C.circuit_arg $ C.scale_arg ~default:0.02 () $ C.seed_arg
      $ C.rate_arg $ hcap_arg $ vcap_arg $ netlist_file_arg $ pretty_arg
      $ max_print_arg $ errors_only_arg
      $ C.Sinks.(term [ Trace; Profile; Metrics; Journal ])
      $ C.progress_arg $ C.verbose_arg $ C.quiet_arg)

let () = exit (Cmd.eval' cmd)
