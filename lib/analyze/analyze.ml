module Point = Eda_geom.Point
module Rect = Eda_geom.Rect
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Keff = Eda_sino.Keff
module Instance = Eda_sino.Instance
module Bound = Eda_sino.Bound
module Estimate = Eda_sino.Estimate
module Lsk = Eda_lsk.Lsk
module Diag = Eda_check.Diag
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace

type config = {
  keff : Keff.params;
  lsk : Lsk.t;
  noise_bound_v : float;
  estimate : Estimate.coeffs;
}

type cut = { dir : Dir.t; index : int; forced : int; capacity : int }

type panel = {
  region : int;
  dir : Dir.t;
  nets : int array;
  clique : int array;
  shield_lb : int;
  nss_estimate : float;
}

type graph = {
  nodes : int;
  edges : int;
  components : int;
  degree_hist : int array;
  max_degree : int;
  max_clique : int;
}

type t = {
  netlist : Netlist.t;
  grid : Grid.t;
  demand_h : float array;
  demand_v : float array;
  cuts : cut list;
  graph : graph;
  panels : panel list;
  lsk_budget : float;
  kth : float array;
  findings : Diag.t list;
}

(* All analyze.* series are deterministic functions of the instance (no
   wall-clock), so the CI jobs=1/jobs=4 determinism gate covers them. *)
let m_runs = Metrics.counter "analyze.runs"
let m_cut_overflows = Metrics.counter "analyze.cut_overflows"
let g_components = Metrics.gauge "analyze.components"
let g_max_clique = Metrics.gauge "analyze.max_clique"
let g_shield_lb = Metrics.gauge "analyze.shield_lb"
let g_peak_demand = Metrics.gauge "analyze.peak_demand_pct"
let m_errors = Metrics.counter ~labels:[ ("severity", "error") ] "analyze.findings"
let m_warnings =
  Metrics.counter ~labels:[ ("severity", "warning") ] "analyze.findings"

let err ~code ?locus fmt = Diag.makef ~code Diag.Error ?locus fmt
let warn ~code ?locus fmt = Diag.makef ~code Diag.Warning ?locus fmt

(* ------------------------- capacity / RUDY -------------------------- *)

(* Expected track demand per region: a net spanning dx+1 columns needs a
   horizontal track in each of them, in some row of its bounding box —
   spread uniformly over the rows (the RUDY estimate; exact where the
   box is one region tall).  Filled through a 2-D difference array so
   the cost is O(nets + regions), not O(sum of box areas). *)
let demand_map grid netlist dir =
  let w = Grid.width grid and h = Grid.height grid in
  let diff = Array.make ((w + 1) * (h + 1)) 0.0 in
  let add x0 y0 x1 y1 v =
    let at x y = (y * (w + 1)) + x in
    diff.(at x0 y0) <- diff.(at x0 y0) +. v;
    diff.(at (x1 + 1) y0) <- diff.(at (x1 + 1) y0) -. v;
    diff.(at x0 (y1 + 1)) <- diff.(at x0 (y1 + 1)) -. v;
    diff.(at (x1 + 1) (y1 + 1)) <- diff.(at (x1 + 1) (y1 + 1)) +. v
  in
  Array.iter
    (fun net ->
      let b = Net.bbox net in
      match dir with
      | Dir.H ->
          if b.Rect.x1 > b.Rect.x0 then
            add b.Rect.x0 b.Rect.y0 b.Rect.x1 b.Rect.y1
              (1.0 /. float_of_int (Rect.height b))
      | Dir.V ->
          if b.Rect.y1 > b.Rect.y0 then
            add b.Rect.x0 b.Rect.y0 b.Rect.x1 b.Rect.y1
              (1.0 /. float_of_int (Rect.width b)))
    netlist.Netlist.nets;
  let out = Array.make (Grid.num_regions grid) 0.0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v =
        diff.((y * (w + 1)) + x)
        +. (if x > 0 then out.(Grid.region_id grid (Point.make (x - 1) y)) else 0.0)
        +. (if y > 0 then out.(Grid.region_id grid (Point.make x (y - 1))) else 0.0)
        -.
        if x > 0 && y > 0 then
          out.(Grid.region_id grid (Point.make (x - 1) (y - 1)))
        else 0.0
      in
      out.(Grid.region_id grid (Point.make x y)) <- v
    done
  done;
  out

(* Forced crossings per cut: a net whose pins span columns x0..x1 must
   cross every vertical grid-line in between, each crossing occupying a
   distinct track in both adjacent region columns.  Cut capacity is the
   smaller of the two columns' track totals. *)
let cuts_of grid netlist =
  let w = Grid.width grid and h = Grid.height grid in
  let col_cap c =
    let acc = ref 0 in
    for y = 0 to h - 1 do
      acc := !acc + Grid.cap grid (Point.make c y) Dir.H
    done;
    !acc
  in
  let row_cap r =
    let acc = ref 0 in
    for x = 0 to w - 1 do
      acc := !acc + Grid.cap grid (Point.make x r) Dir.V
    done;
    !acc
  in
  let forced_h = Array.make (max 0 (w - 1)) 0 in
  let forced_v = Array.make (max 0 (h - 1)) 0 in
  Array.iter
    (fun net ->
      let b = Net.bbox net in
      for c = b.Rect.x0 to b.Rect.x1 - 1 do
        forced_h.(c) <- forced_h.(c) + 1
      done;
      for r = b.Rect.y0 to b.Rect.y1 - 1 do
        forced_v.(r) <- forced_v.(r) + 1
      done)
    netlist.Netlist.nets;
  let h_cuts =
    List.init (max 0 (w - 1)) (fun c ->
        {
          dir = Dir.H;
          index = c;
          forced = forced_h.(c);
          capacity = min (col_cap c) (col_cap (c + 1));
        })
  in
  let v_cuts =
    List.init (max 0 (h - 1)) (fun r ->
        {
          dir = Dir.V;
          index = r;
          forced = forced_v.(r);
          capacity = min (row_cap r) (row_cap (r + 1));
        })
  in
  h_cuts @ v_cuts

(* --------------------- sensitivity-graph shape ---------------------- *)

(* Edges join mutually-sensitive nets whose bounding boxes overlap: the
   pairs that can share a panel without one of them detouring off its
   box.  The screen is O(n^2) cheap integer compares; the hash-based
   sensitivity predicate only runs on overlapping pairs. *)
let graph_of sensitivity netlist =
  let nets = netlist.Netlist.nets in
  let n = Array.length nets in
  let boxes = Array.map Net.bbox nets in
  let adj = Array.make n [] in
  let degree = Array.make n 0 in
  let edges = ref 0 in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let overlaps a b =
    a.Rect.x0 <= b.Rect.x1 && b.Rect.x0 <= a.Rect.x1 && a.Rect.y0 <= b.Rect.y1
    && b.Rect.y0 <= a.Rect.y1
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if overlaps boxes.(i) boxes.(j) && Sensitivity.sensitive sensitivity i j
      then begin
        incr edges;
        degree.(i) <- degree.(i) + 1;
        degree.(j) <- degree.(j) + 1;
        adj.(i) <- j :: adj.(i);
        adj.(j) <- i :: adj.(j);
        union i j
      end
    done
  done;
  let components =
    let roots = Hashtbl.create 16 in
    for i = 0 to n - 1 do
      Hashtbl.replace roots (find i) ()
    done;
    Hashtbl.length roots
  in
  let max_degree = Array.fold_left max 0 degree in
  let degree_hist = Array.make (max_degree + 1) 0 in
  Array.iter (fun d -> degree_hist.(d) <- degree_hist.(d) + 1) degree;
  (* greedy clique on the explicit adjacency, highest degree first *)
  let max_clique =
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        if degree.(a) <> degree.(b) then compare degree.(b) degree.(a)
        else compare a b)
      order;
    (* [ok.(v)] counts accepted clique members adjacent to [v]; [v] may
       join exactly when it is adjacent to all of them.  Same greedy
       visit order (hence same result) as the naive all-pairs membership
       test, but O(deg) per accepted member instead of O(clique * deg)
       per candidate. *)
    let ok = Array.make n 0 in
    let best = ref 0 in
    Array.iter
      (fun seed ->
        if degree.(seed) + 1 > !best then begin
          Array.fill ok 0 n 0;
          List.iter (fun u -> ok.(u) <- 1) adj.(seed);
          let size = ref 1 in
          Array.iter
            (fun v ->
              if v <> seed && ok.(v) = !size then begin
                incr size;
                List.iter (fun u -> ok.(u) <- ok.(u) + 1) adj.(v)
              end)
            order;
          best := max !best !size
        end)
      order;
    !best
  in
  { nodes = n; edges = !edges; components; degree_hist; max_degree; max_clique }

(* ----------------------- prospective panels ------------------------- *)

(* Provable co-location needs the cut's cross dimension to be a single
   region: on a 1-row grid every net spanning column c occupies an H
   track in region (c, 0) — there is nowhere else to cross. *)
let panels_of config grid netlist sensitivity kth =
  let w = Grid.width grid and h = Grid.height grid in
  let sens = Sensitivity.sensitive sensitivity in
  let mk region dir members =
    let nets = Array.of_list (List.rev members) in
    Array.sort compare nets;
    let inst =
      Instance.make ~nets ~kth:(Array.map (fun i -> kth.(i)) nets) ~sensitive:sens
    in
    let clique = Array.map (Instance.net_id inst) (Bound.greedy_clique inst) in
    {
      region;
      dir;
      nets;
      clique;
      shield_lb = Bound.shield_lower_bound ~params:config.keff inst;
      nss_estimate =
        Estimate.predict config.estimate ~nns:(Array.length nets)
          ~s:(Instance.sensitivities inst);
    }
  in
  let along dir len pick =
    List.filter_map
      (fun c ->
        let members = ref [] in
        Array.iteri
          (fun i net ->
            let b = Net.bbox net in
            let lo, hi = pick b in
            if lo <= c && c <= hi && hi > lo then members := i :: !members)
          netlist.Netlist.nets;
        if List.length !members >= 2 then
          Some
            (mk
               (Grid.region_id grid
                  (match dir with
                  | Dir.H -> Point.make c 0
                  | Dir.V -> Point.make 0 c))
               dir !members)
        else None)
      (List.init len Fun.id)
  in
  (if h = 1 && w > 1 then along Dir.H w (fun b -> (b.Rect.x0, b.Rect.x1)) else [])
  @ if w = 1 && h > 1 then along Dir.V h (fun b -> (b.Rect.y0, b.Rect.y1)) else []

(* ---------------------------- findings ------------------------------ *)

let cut_findings cuts =
  List.filter_map
    (fun c ->
      if c.forced > c.capacity then
        Some
          (err ~code:24
             "%s cut %d|%d: %d nets must cross but only %d tracks exist on a \
              side (provable overflow, any routing)"
             (Dir.to_string c.dir) c.index (c.index + 1) c.forced c.capacity)
      else None)
    cuts

let panel_findings config grid sens kth panels =
  let p_keff = config.keff in
  List.concat_map
    (fun p ->
      let cap = Grid.cap grid (Grid.region_pt grid p.region) p.dir in
      let m = Array.length p.nets in
      let locus = Diag.Region (p.region, p.dir) in
      let pressure =
        if p.shield_lb > 0 && m + p.shield_lb > cap then
          [
            warn ~code:25 ~locus
              "clique of %d mutually-sensitive nets forces >= %d shields: %d \
               net + %d shield tracks exceed capacity %d (region stretches)"
              (Array.length p.clique) p.shield_lb m p.shield_lb cap;
          ]
        else []
      in
      (* Fully-shielded floor: with one shield in every gap (the guard's
         conservative fallback layout), net i's nearest sensitive
         aggressor sits at rank distance at most R = m - s_i in every
         ordering, contributing at least k1^(2R) * sb^R to K_i.  A Kth
         below that is unmeetable even fully shielded. *)
      let unmeetable =
        List.filter_map
          (fun i ->
            let s_i =
              Array.fold_left
                (fun acc j -> if j <> i && sens i j then acc + 1 else acc)
                0 p.nets
            in
            if s_i = 0 then None
            else begin
              let r = m - s_i in
              if 2 * r > p_keff.Keff.window then None
              else begin
                let floor_k =
                  (p_keff.Keff.k1 ** float_of_int (2 * r))
                  *. (p_keff.Keff.shield_block ** float_of_int r)
                in
                if kth.(i) +. 1e-12 < floor_k then
                  Some
                    (err ~code:26 ~locus:(Diag.Net i)
                       "Kth %.4g unmeetable even fully shielded: %d sensitive \
                        neighbours in region %d/%s leave a coupling floor of \
                        %.4g (one-shield threshold %.4g)"
                       kth.(i) s_i p.region (Dir.to_string p.dir) floor_k
                       (Bound.one_shield_threshold p_keff))
                else None
              end
            end)
          (Array.to_list p.nets)
      in
      let nss =
        if p.shield_lb > 0 && p.nss_estimate +. 1e-9 < float_of_int p.shield_lb
        then
          [
            warn ~code:27 ~locus
              "Formula-3 Nss estimate %.2f is provably below the clique shield \
               lower bound %d (%d nets, clique %d)"
              p.nss_estimate p.shield_lb m (Array.length p.clique);
          ]
        else []
      in
      pressure @ unmeetable @ nss)
    panels

(* Uniform Phase-I partition, mirroring Budget.uniform but returning a
   diagnostic instead of raising when the noise bound is unsatisfiable
   (Budget lives above this library in the dependency order). *)
let budget_of config netlist =
  let budget = Lsk.lsk_bound config.lsk ~noise:config.noise_bound_v in
  if (not (Float.is_finite budget)) || budget <= 0.0 then (budget, [||])
  else
    ( budget,
      Array.map
        (fun net ->
          let far =
            Array.fold_left
              (fun acc sink -> max acc (Point.manhattan net.Net.source sink))
              1 net.Net.sinks
          in
          budget /. (float_of_int far *. netlist.Netlist.gcell_um))
        netlist.Netlist.nets )

let demand t dir = match dir with Dir.H -> t.demand_h | Dir.V -> t.demand_v

let peak_demand_pct t =
  let peak = ref 0.0 in
  let scan dir dem =
    Array.iteri
      (fun r d ->
        let cap = Grid.cap t.grid (Grid.region_pt t.grid r) dir in
        if cap > 0 then peak := Float.max !peak (100.0 *. d /. float_of_int cap))
      dem
  in
  scan Dir.H t.demand_h;
  scan Dir.V t.demand_v;
  !peak

let shield_lb_total t =
  List.fold_left (fun acc p -> acc + p.shield_lb) 0 t.panels

let run config ~grid ~sensitivity netlist =
  Trace.span "analyze.run" @@ fun () ->
  Metrics.incr m_runs;
  let demand_h = Trace.span "analyze.demand" (fun () -> demand_map grid netlist Dir.H) in
  let demand_v = Trace.span "analyze.demand" (fun () -> demand_map grid netlist Dir.V) in
  let cuts = Trace.span "analyze.cuts" (fun () -> cuts_of grid netlist) in
  let graph = Trace.span "analyze.graph" (fun () -> graph_of sensitivity netlist) in
  let lsk_budget, kth = Trace.span "analyze.budget" (fun () -> budget_of config netlist) in
  let sens = Sensitivity.sensitive sensitivity in
  let budget_findings =
    if Array.length kth > 0 then
      List.filter_map
        (fun i ->
          if (not (Float.is_finite kth.(i))) || kth.(i) <= 0.0 then
            Some
              (err ~code:26 ~locus:(Diag.Net i)
                 "Kth bound %g is not positive finite" kth.(i))
          else None)
        (List.init (Array.length kth) Fun.id)
    else if Netlist.num_nets netlist = 0 then []
    else
      [
        err ~code:26
          "noise bound %.4g V is at or below the LSK table floor: no positive \
           crosstalk budget exists (LSK bound %g)"
          config.noise_bound_v lsk_budget;
      ]
  in
  let panels =
    if Array.length kth = 0 then []
    else
      Trace.span "analyze.panels" (fun () ->
          panels_of config grid netlist sensitivity kth)
  in
  let findings =
    Diag.sort
      (cut_findings cuts
      @ budget_findings
      @ panel_findings config grid sens kth panels)
  in
  let t =
    {
      netlist;
      grid;
      demand_h;
      demand_v;
      cuts;
      graph;
      panels;
      lsk_budget;
      kth;
      findings;
    }
  in
  List.iter
    (fun c -> if c.forced > c.capacity then Metrics.incr m_cut_overflows)
    cuts;
  Metrics.set g_components (float_of_int graph.components);
  Metrics.set g_max_clique (float_of_int graph.max_clique);
  Metrics.set g_shield_lb (float_of_int (shield_lb_total t));
  Metrics.set g_peak_demand (peak_demand_pct t);
  Metrics.add m_errors (Diag.count Diag.Error findings);
  Metrics.add m_warnings (Diag.count Diag.Warning findings);
  t

let has_errors t = Diag.has_errors t.findings

let pp_summary fmt t =
  let over = List.length (List.filter (fun c -> c.forced > c.capacity) t.cuts) in
  Format.fprintf fmt
    "audit %s: %d nets on %dx%d; %d/%d cuts over capacity, peak predicted \
     demand %.0f%% of tracks; sensitivity graph: %d edges, %d components, max \
     degree %d, greedy clique %d; %d prospective panels, shield lower bound \
     %d; %a"
    t.netlist.Netlist.name (Netlist.num_nets t.netlist) (Grid.width t.grid)
    (Grid.height t.grid) over (List.length t.cuts) (peak_demand_pct t)
    t.graph.edges t.graph.components t.graph.max_degree t.graph.max_clique
    (List.length t.panels) (shield_lb_total t) Diag.pp_summary t.findings
