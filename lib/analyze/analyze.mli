(** Pre-route static analysis of a routing instance.

    Everything here is computed from the netlist, the grid capacities
    and the sensitivity model alone — no router runs.  Four analyses
    (paper context in DESIGN.md section 8):

    + {b Capacity feasibility}: every net must cross every grid-line
      between the columns (rows) of its bounding box, and each crossing
      occupies a distinct track in the two adjacent region columns
      (rows).  Counting crossings against the summed track capacity of a
      cut proves overflow before Phase I — for {e any} routing, not just
      the one a router happens to produce.  A RUDY-style expected-demand
      map (each net's track spread uniformly over its bounding box)
      feeds the predicted-congestion heatmap of the run report.
    + {b Sensitivity-graph structure}: connected components, the degree
      histogram and a greedy max clique of the graph whose edges join
      mutually-sensitive nets with overlapping bounding boxes.
    + {b Kth/LSK satisfiability}: the LSK budget must be positive under
      the noise bound, and no net may need less coupling than even the
      conservative fully-shielded fallback layout can deliver.
    + {b Nss cross-check}: where co-location is provable, Formula (3)'s
      shield estimate is compared against the clique lower bound of
      {!Eda_sino.Bound}.

    Findings are coded {!Eda_check.Diag.t} diagnostics:

    - [GSL0024] (error) — cut demand exceeds track capacity;
    - [GSL0025] (warning) — a sensitivity clique forces a shield lower
      bound that pushes a prospective panel past its capacity;
    - [GSL0026] (error) — Kth/LSK bound unsatisfiable: no positive LSK
      budget exists, a Kth bound is not positive finite, or a net's
      bound is unmeetable even fully shielded;
    - [GSL0027] (warning) — the Formula-3 Nss estimate is provably
      below the clique shield lower bound.

    (Codes 0020–0023 were already released to the [Eda_guard] failure
    classes, so the analyzer catalog starts at the next free code.)

    Prospective panels — provable pre-route co-location of nets in one
    (region, direction) — exist where the cut's cross dimension is a
    single region (single-row grids for H, single-column for V); on
    general grids the panel-level findings are simply absent and the
    clique bound is enforced post-route by checker rule GSL0028. *)

module Diag = Eda_check.Diag

type config = {
  keff : Eda_sino.Keff.params;
  lsk : Eda_lsk.Lsk.t;
  noise_bound_v : float;
  estimate : Eda_sino.Estimate.coeffs;
}

(** One grid-line between adjacent region columns (H) or rows (V). *)
type cut = {
  dir : Eda_grid.Dir.t;
  index : int;  (** between column/row [index] and [index + 1] *)
  forced : int;  (** nets whose bounding box spans the cut *)
  capacity : int;  (** min of the two adjacent column/row track totals *)
}

(** Provable pre-route co-location of nets in one (region, direction). *)
type panel = {
  region : int;
  dir : Eda_grid.Dir.t;
  nets : int array;  (** global ids, sorted *)
  clique : int array;  (** greedy max clique among them, global ids *)
  shield_lb : int;  (** {!Eda_sino.Bound.shield_lower_bound} *)
  nss_estimate : float;  (** Formula (3) prediction for this panel *)
}

(** Structure of the sensitivity graph restricted to nets whose
    bounding boxes overlap (the pairs that can plausibly share a
    panel). *)
type graph = {
  nodes : int;
  edges : int;
  components : int;  (** of the nodes with degree >= 1, plus isolated *)
  degree_hist : int array;  (** [degree_hist.(d)] nets have degree [d] *)
  max_degree : int;
  max_clique : int;  (** greedy bound, netlist-level *)
}

type t = {
  netlist : Eda_netlist.Netlist.t;
  grid : Eda_grid.Grid.t;
  demand_h : float array;  (** expected H-track demand per region *)
  demand_v : float array;
  cuts : cut list;
  graph : graph;
  panels : panel list;
  lsk_budget : float;  (** <= 0 when the noise bound is unsatisfiable *)
  kth : float array;  (** uniform Phase-I bounds the audit assumed *)
  findings : Diag.t list;  (** sorted, errors first *)
}

(** [run config ~grid ~sensitivity netlist] — all four analyses.  Cost
    is O(nets^2) pair screening plus O(regions); the bench asserts it
    stays below 5 % of the route phase.  Records the [analyze.*]
    metrics (all deterministic — no wall-clock series). *)
val run :
  config ->
  grid:Eda_grid.Grid.t ->
  sensitivity:Eda_netlist.Sensitivity.t ->
  Eda_netlist.Netlist.t ->
  t

(** Expected track demand per region for one direction (the RUDY map —
    shared with the report's predicted-congestion heatmap). *)
val demand : t -> Eda_grid.Dir.t -> float array

(** Peak predicted utilization over all regions and directions, in
    percent of capacity (0 on an empty grid). *)
val peak_demand_pct : t -> float

(** Total shield lower bound over the prospective panels. *)
val shield_lb_total : t -> int

val has_errors : t -> bool

(** One-paragraph human summary (counts, graph shape, worst cut). *)
val pp_summary : Format.formatter -> t -> unit
