(** A SINO problem instance: the net segments sharing one routing region
    and direction, their pairwise sensitivities, and the inductive bound
    [Kth] each segment must satisfy (paper Formulation 1, restricted to a
    region — the sub-problem Phase II solves). *)

type t

(** [make ~nets ~kth ~sensitive] — [nets] are global net ids, [kth.(i)] is
    the bound of [nets.(i)], and [sensitive gi gj] is the global
    sensitivity predicate (its restriction to the instance is precomputed
    and symmetrized). *)
val make : nets:int array -> kth:float array -> sensitive:(int -> int -> bool) -> t

(** Number of net segments. *)
val size : t -> int

(** Global id of local net [i]. *)
val net_id : t -> int -> int

(** [kth t i] — the local net's coupling bound. *)
val kth : t -> int -> float

(** [with_kth t i v] — functional update of one bound (Phase III tightens
    and relaxes bounds region-locally). *)
val with_kth : t -> int -> float -> t

(** [sens t i j] — local sensitivity, [false] on the diagonal. *)
val sens : t -> int -> int -> bool

(** [sensitivity t i] — the paper's S_i: the fraction of the other
    segments in the region sensitive to [i] (0 when alone). *)
val sensitivity : t -> int -> float

(** [sensitivities t] — all S_i. *)
val sensitivities : t -> float array

(** [signature t] — canonical content signature (16 hex chars): net
    count + sensitivity matrix up to permutation + Kth bounds bucketed in
    ~10% steps.  Net-permuted instances share a signature; an edge flip
    or a >~10% bound change produces a different one.  This is the
    ROADMAP panel-cache key; the journal stamps it on every panel event
    so duplicate-panel recurrence is measurable before the cache exists. *)
val signature : t -> string

val pp : Format.formatter -> t -> unit
