(** A SINO problem instance: the net segments sharing one routing region
    and direction, their pairwise sensitivities, and the inductive bound
    [Kth] each segment must satisfy (paper Formulation 1, restricted to a
    region — the sub-problem Phase II solves). *)

type t

(** [make ~nets ~kth ~sensitive] — [nets] are global net ids, [kth.(i)] is
    the bound of [nets.(i)], and [sensitive gi gj] is the global
    sensitivity predicate (its restriction to the instance is precomputed
    and symmetrized). *)
val make : nets:int array -> kth:float array -> sensitive:(int -> int -> bool) -> t

(** Number of net segments. *)
val size : t -> int

(** Global id of local net [i]. *)
val net_id : t -> int -> int

(** [kth t i] — the local net's coupling bound. *)
val kth : t -> int -> float

(** [with_kth t i v] — functional update of one bound (Phase III tightens
    and relaxes bounds region-locally). *)
val with_kth : t -> int -> float -> t

(** [sens t i j] — local sensitivity, [false] on the diagonal. *)
val sens : t -> int -> int -> bool

(** [sensitivity t i] — the paper's S_i: the fraction of the other
    segments in the region sensitive to [i] (0 when alone). *)
val sensitivity : t -> int -> float

(** [sensitivities t] — all S_i. *)
val sensitivities : t -> float array

(** [signature t] — canonical content signature (16 hex chars): net
    count + sensitivity matrix up to permutation + Kth bounds bucketed in
    ~10% steps.  Net-permuted instances share a signature; an edge flip
    or a >~10% bound change produces a different one.  This is the
    ROADMAP panel-cache key; the journal stamps it on every panel event
    so duplicate-panel recurrence is measurable before the cache exists. *)
val signature : t -> string

(** A canonical representative of the instance's content class: the nets
    relabeled [0..n-1] by sorted (WL colour, exact Kth bits), with the
    witnessing permutation and the {!signature} (computed from the same
    WL pass, so asking for both costs one refinement). *)
type canon = {
  inst : t;  (** canonical relabeling; its net ids are [0..n-1] *)
  perm : int array;
      (** [perm.(c)] = original local index at canonical position [c] *)
  signature : string;
}

(** [canonicalize t] — permutation-equivalent instances with
    discriminating WL colours (in particular, all exact duplicates)
    canonicalize to content-equal instances; solving the canonical form
    and mapping local indices through [perm] turns the solver into a
    function of panel {e content}, which is what the panel cache and the
    cross-run determinism argument rest on (DESIGN §10). *)
val canonicalize : t -> canon

(** [equal_content a b] — same size, bit-exact [kth] and identical
    sensitivity matrix; global net ids are ignored.  The cache's on-hit
    verification: [signature] collisions cannot pass this. *)
val equal_content : t -> t -> bool

val pp : Format.formatter -> t -> unit
