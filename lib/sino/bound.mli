(** Provable lower bounds on SINO solutions.

    A set of pairwise-sensitive nets (a clique in the instance's
    sensitivity graph) constrains every feasible layout of the panel:

    - capacitive crosstalk forbids two sensitive nets on adjacent
      tracks, so the k clique members delimit k-1 non-empty gaps whose
      tracks are shields or non-clique nets;
    - the inductive bound K_i <= Kth_i forces a minimum width on any
      shield-free gap, because the nearest clique neighbour alone
      contributes k1^(d) to K_i.

    Counting tracks yields a lower bound on the number of shields that
    holds for {e every} feasible layout — independent of the heuristic
    that produced it.  The checker compares solved panels against this
    bound (rule GSL0028) and [Eda_analyze] applies it pre-route to
    prospective panels; the soundness argument is spelled out in
    DESIGN.md. *)

(** [greedy_clique ?keep inst] — local indices of a maximal
    pairwise-sensitive clique, grown greedily from each vertex in
    degree order (a lower bound on the maximum clique; exact max clique
    is NP-hard).  [keep] filters the candidate vertices (default: all).
    Result is sorted; empty when no vertex qualifies. *)
val greedy_clique : ?keep:(int -> bool) -> Instance.t -> int array

(** [shield_lower_bound ?params inst] — a number of shields that every
    layout satisfying the capacitive constraint and the K_i <= Kth_i
    bounds must contain; 0 when nothing is forced.  Sound for any
    feasible layout of exactly the instance's nets (panels never hold
    more tracks than nets + shields). *)
val shield_lower_bound : ?params:Keff.params -> Instance.t -> int

(** [one_shield_threshold params] = k1^2 * shield_block — the coupling a
    net receives from a sensitive aggressor two tracks away behind a
    single shield.  A net whose Kth is below this cannot be rescued by
    one shield alone; a whole clique of such nets makes the
    conservative fully-shielded fallback layout provably infeasible
    (diagnostic GSL0026 in [Eda_analyze]). *)
val one_shield_threshold : Keff.params -> float
