module Rng = Eda_util.Rng
module Metrics = Eda_obs.Metrics
module Deadline = Eda_guard.Deadline

(* SINO solver telemetry: shields placed/dropped by the heuristic and the
   annealer's move acceptance *)
let m_instances = Metrics.counter "sino.instances"
let m_inserted = Metrics.counter "sino.shields_inserted"
let m_removed = Metrics.counter "sino.shields_removed"
let m_accepted = Metrics.counter "sino.moves_accepted"
let m_rejected = Metrics.counter "sino.moves_rejected"
let m_swaps = Metrics.counter "sino.swap_improvements"
let m_repairs = Metrics.counter "sino.repairs"

(* Internal working form: slots as an int array, net index >= 0, shield as
   [-1].  All hot-loop deltas are computed locally on this form; the
   result is wrapped in a Layout only at the end. *)
let shield = -1

let to_layout inst slots =
  Layout.make inst
    (Array.map (fun s -> if s = shield then Layout.Shield else Layout.Net s) slots)

let k_at inst p slots t =
  let n = Array.length slots in
  let i = slots.(t) in
  let total = ref 0.0 in
  let walk step =
    let shields = ref 0 and dist = ref 1 and q = ref (t + step) in
    while !q >= 0 && !q < n && !dist <= p.Keff.window do
      let s = slots.(!q) in
      if s = shield then incr shields
      else if Instance.sens inst i s then
        total := !total +. Keff.pair_coupling p ~dist:!dist ~shields_between:!shields;
      q := !q + step;
      incr dist
    done
  in
  walk 1;
  walk (-1);
  !total

let cap_violations_raw inst slots =
  let cnt = ref 0 in
  for t = 0 to Array.length slots - 2 do
    let a = slots.(t) and b = slots.(t + 1) in
    if a >= 0 && b >= 0 && Instance.sens inst a b then incr cnt
  done;
  !cnt

(* Greedy sequencing: start from the most-constrained (highest sensitive
   degree) net, then repeatedly append a net not sensitive to the last one,
   preferring high remaining degree so flexible nets stay available for the
   end of the sequence. *)
let greedy_order rng inst =
  let n = Instance.size inst in
  if n = 0 then [||]
  else begin
    let degree i =
      let d = ref 0 in
      for j = 0 to n - 1 do
        if Instance.sens inst i j then incr d
      done;
      !d
    in
    let deg = Array.init n degree in
    let remaining = Array.init n (fun i -> i) in
    Rng.shuffle rng remaining;
    let used = Array.make n false in
    let order = Array.make n 0 in
    let start =
      Array.fold_left
        (fun best i -> if deg.(i) > deg.(best) then i else best)
        remaining.(0) remaining
    in
    order.(0) <- start;
    used.(start) <- true;
    for k = 1 to n - 1 do
      let last = order.(k - 1) in
      let best = ref (-1) and best_key = ref min_int in
      Array.iter
        (fun i ->
          if not used.(i) then begin
            (* primary: avoid sensitivity to the last slot; secondary:
               place high-degree nets while there is still freedom *)
            let key = (if Instance.sens inst last i then -10000 else 0) + deg.(i) in
            if key > !best_key then begin
              best_key := key;
              best := i
            end
          end)
        remaining;
      order.(k) <- !best;
      used.(!best) <- true
    done;
    order
  end

(* Change in adjacent-sensitive-pair count if tracks a and b are swapped. *)
let swap_cap_delta inst slots a b =
  let n = Array.length slots in
  let bad x y =
    x >= 0 && x < n && y >= 0 && y < n
    && slots.(x) >= 0 && slots.(y) >= 0
    && Instance.sens inst slots.(x) slots.(y)
  in
  let pairs =
    [ (a - 1, a); (a, a + 1); (b - 1, b); (b, b + 1) ]
    |> List.sort_uniq compare
    |> List.filter (fun (x, y) -> x >= 0 && y < n)
  in
  let before = List.length (List.filter (fun (x, y) -> bad x y) pairs) in
  let tmp = slots.(a) in
  slots.(a) <- slots.(b);
  slots.(b) <- tmp;
  let after = List.length (List.filter (fun (x, y) -> bad x y) pairs) in
  let tmp = slots.(a) in
  slots.(a) <- slots.(b);
  slots.(b) <- tmp;
  after - before

let swap_improve ?(deadline = Deadline.none) inst slots ~passes =
  let n = Array.length slots in
  let improved = ref true and pass = ref 0 in
  (* checkpoint: each pass leaves a valid permutation, so stopping between
     passes only costs quality *)
  while !improved && !pass < passes && not (Deadline.expired deadline) do
    improved := false;
    incr pass;
    for a = 0 to n - 2 do
      for b = a + 1 to n - 1 do
        if swap_cap_delta inst slots a b < 0 then begin
          let tmp = slots.(a) in
          slots.(a) <- slots.(b);
          slots.(b) <- tmp;
          Metrics.incr m_swaps;
          improved := true
        end
      done
    done
  done

let order_only rng inst =
  Metrics.incr m_instances;
  let slots = greedy_order rng inst in
  swap_improve inst slots ~passes:4;
  to_layout inst slots

(* --- min-area SINO ------------------------------------------------- *)

let insert_at slots pos =
  let n = Array.length slots in
  Array.init (n + 1) (fun q ->
      if q < pos then slots.(q) else if q = pos then shield else slots.(q - 1))

(* Sum of K-bound violations for nets within [window] tracks of [center]. *)
let local_violation inst p slots center =
  let n = Array.length slots in
  let lo = max 0 (center - p.Keff.window - 1) in
  let hi = min (n - 1) (center + p.Keff.window + 1) in
  let s = ref 0.0 in
  for t = lo to hi do
    if slots.(t) >= 0 then begin
      let excess = k_at inst p slots t -. Instance.kth inst slots.(t) in
      if excess > 0.0 then s := !s +. excess
    end
  done;
  !s

let worst_violator inst p slots =
  let n = Array.length slots in
  let best = ref (-1) and worst = ref 1e-9 in
  for t = 0 to n - 1 do
    if slots.(t) >= 0 then begin
      let excess = k_at inst p slots t -. Instance.kth inst slots.(t) in
      if excess > !worst then begin
        worst := excess;
        best := t
      end
    end
  done;
  !best

(* Capacitive repair: a shield between every remaining adjacent sensitive
   pair. *)
let cap_fix inst slots =
  let rec go s =
    let len = Array.length s in
    let rec find t =
      if t >= len - 1 then None
      else if s.(t) >= 0 && s.(t + 1) >= 0 && Instance.sens inst s.(t) s.(t + 1)
      then Some (t + 1)
      else find (t + 1)
    in
    match find 0 with
    | Some pos ->
        Metrics.incr m_inserted;
        go (insert_at s pos)
    | None -> s
  in
  go slots

(* Inductive repair: shields strictly reduce the coupling of every pair
   that spans them, so the total violation is non-increasing and reaches
   zero; place each shield at the locally best gap near the worst
   violator. *)
let inductive_fix ?(deadline = Deadline.none) inst params slots max_passes =
  let slots = ref slots in
  let iter = ref 0 in
  let continue_ = ref true in
  (* checkpoint: every iteration inserts one shield and strictly shrinks
     the violation sum, so the partial result is the best-so-far repair *)
  while !continue_ && !iter < max_passes && not (Deadline.expired deadline) do
    incr iter;
    let s = !slots in
    match worst_violator inst params s with
    | -1 -> continue_ := false
    | tv ->
        let len = Array.length s in
        (* candidate gaps: near the violator is where a shield pays off;
           +/-5 tracks covers the bulk of k1^d coupling *)
        let reach = min 5 params.Keff.window in
        let lo = max 0 (tv - reach) in
        let hi = min len (tv + reach + 1) in
        let best_pos = ref tv and best_score = ref infinity in
        for g = lo to hi do
          let trial = insert_at s g in
          (* score around the violator's (shifted) position so every
             candidate is judged on the same neighbourhood — scoring
             around g itself lets edge candidates hide the violator
             cluster outside their window and win with a no-op *)
          let center = if g <= tv then tv + 1 else tv in
          let score = local_violation inst params trial center in
          if score < !best_score then begin
            best_score := score;
            best_pos := g
          end
        done;
        Metrics.incr m_inserted;
        slots := insert_at s !best_pos
  done;
  !slots

(* Clean-up: drop any shield whose removal keeps feasibility. *)
let shield_cleanup ?(deadline = Deadline.none) inst params slots =
  let slots = ref slots in
  let removed = ref true in
  (* checkpoint: cleanup only drops redundant shields — skipping the rest
     of it is conservative (more shields, same feasibility) *)
  while !removed && not (Deadline.expired deadline) do
    removed := false;
    let s = !slots in
    let len = Array.length s in
    let t = ref (len - 1) in
    while !t >= 0 do
      if s.(!t) = shield then begin
        let trial =
          Array.init (len - 1) (fun q -> if q < !t then s.(q) else s.(q + 1))
        in
        let ok =
          cap_violations_raw inst trial = 0
          && local_violation inst params trial !t = 0.0
        in
        if ok then begin
          slots := trial;
          Metrics.incr m_removed;
          removed := true;
          t := -1 (* restart scan on the shorter array *)
        end
        else decr t
      end
      else decr t
    done
  done;
  !slots

let min_area ?(params = Keff.default) ?max_passes ?(deadline = Deadline.none)
    rng inst =
  Metrics.incr m_instances;
  let n = Instance.size inst in
  if n = 0 then to_layout inst [||]
  else begin
    let max_passes = Option.value max_passes ~default:(10 * n) in
    (* greedy_order and cap_fix always run (they are cheap and establish
       a valid, capacitively clean layout); the improvement stages check
       the deadline at their own pass boundaries *)
    let slots = greedy_order rng inst in
    swap_improve ~deadline inst slots ~passes:4;
    let slots = cap_fix inst slots in
    let slots = inductive_fix ~deadline inst params slots max_passes in
    let slots = shield_cleanup ~deadline inst params slots in
    to_layout inst slots
  end

let repair ?(params = Keff.default) ?max_passes ?(deadline = Deadline.none)
    inst layout =
  Metrics.incr m_repairs;
  let n = Instance.size inst in
  if n = 0 then to_layout inst [||]
  else begin
    let max_passes = Option.value max_passes ~default:(10 * n) in
    let slots =
      Array.map
        (function Layout.Shield -> shield | Layout.Net i -> i)
        (Layout.slots layout)
    in
    let slots = cap_fix inst slots in
    let slots = inductive_fix ~deadline inst params slots max_passes in
    let slots = shield_cleanup ~deadline inst params slots in
    to_layout inst slots
  end

(* ---------------- simulated-annealing improvement ------------------ *)

let violation_cost inst params slots =
  let s = ref 0.0 in
  for t = 0 to Array.length slots - 1 do
    if slots.(t) >= 0 then begin
      let excess = k_at inst params slots t -. Instance.kth inst slots.(t) in
      if excess > 0.0 then s := !s +. excess
    end
  done;
  float_of_int (100 * cap_violations_raw inst slots) +. (100.0 *. !s)

let cost inst params slots =
  let shields = Array.fold_left (fun acc v -> if v = shield then acc + 1 else acc) 0 slots in
  float_of_int shields +. violation_cost inst params slots

module Anneal = struct
  type cooling = Linear | Geometric

  type schedule = { moves : int; t0 : float; t_end : float; cooling : cooling }

  let default = { moves = 4000; t0 = 1.5; t_end = 1e-3; cooling = Linear }

  let temp { moves; t0; t_end; cooling } step =
    let frac = float_of_int step /. float_of_int moves in
    match cooling with
    | Linear -> (t0 *. (1.0 -. frac)) +. t_end
    | Geometric -> t0 *. ((t_end /. t0) ** frac)
end

let g_accept_ratio = Metrics.gauge "sino.acceptance_ratio"

let anneal ?(params = Keff.default) ?(schedule = Anneal.default)
    ?(deadline = Deadline.none) rng inst layout =
  let n = Instance.size inst in
  if n <= 1 then layout
  else begin
    let moves = schedule.Anneal.moves in
    let accepted = ref 0 and rejected = ref 0 in
    let slots =
      ref
        (Array.map
           (function Layout.Shield -> shield | Layout.Net i -> i)
           (Layout.slots layout))
    in
    let input_feasible = violation_cost inst params !slots = 0.0 in
    (* a feasible input must yield a feasible output: only feasible states
       are eligible as "best" in that case *)
    let eligible t = (not input_feasible) || violation_cost inst params t = 0.0 in
    let best = ref (Array.copy !slots) in
    let cur_cost = ref (cost inst params !slots) in
    let best_cost = ref !cur_cost in
    (* checkpoint: the deadline is polled every 256 moves; the annealer
       tracks best-so-far, so an early stop returns a valid improvement *)
    let step_ref = ref 0 in
    while
      !step_ref < moves
      && ((!step_ref land 255 <> 0) || not (Deadline.expired deadline))
    do
      let step = !step_ref in
      incr step_ref;
      let temp = Anneal.temp schedule step in
      let s = !slots in
      let len = Array.length s in
      (* propose: 0 = swap two tracks, 1 = remove a shield, 2 = move a
         shield to a random gap *)
      let proposal =
        match Rng.int rng 3 with
        | 0 when len >= 2 ->
            let a = Rng.int rng len and b = Rng.int rng len in
            if a = b then None
            else begin
              let t = Array.copy s in
              let tmp = t.(a) in
              t.(a) <- t.(b);
              t.(b) <- tmp;
              Some t
            end
        | 1 ->
            let shield_positions =
              Array.to_list (Array.mapi (fun i v -> (i, v)) s)
              |> List.filter (fun (_, v) -> v = shield)
              |> List.map fst
            in
            if shield_positions = [] then None
            else begin
              let pos = List.nth shield_positions (Rng.int rng (List.length shield_positions)) in
              Some (Array.init (len - 1) (fun q -> if q < pos then s.(q) else s.(q + 1)))
            end
        | _ ->
            let shield_positions =
              Array.to_list (Array.mapi (fun i v -> (i, v)) s)
              |> List.filter (fun (_, v) -> v = shield)
              |> List.map fst
            in
            if shield_positions = [] then None
            else begin
              let pos = List.nth shield_positions (Rng.int rng (List.length shield_positions)) in
              let without =
                Array.init (len - 1) (fun q -> if q < pos then s.(q) else s.(q + 1))
              in
              Some (insert_at without (Rng.int rng len))
            end
      in
      match proposal with
      | None -> ()
      | Some t ->
          let c = cost inst params t in
          let accept =
            c <= !cur_cost || Rng.float rng 1.0 < exp ((!cur_cost -. c) /. temp)
          in
          if accept then begin
            Metrics.incr m_accepted;
            incr accepted;
            slots := t;
            cur_cost := c;
            if c < !best_cost && eligible t then begin
              best_cost := c;
              best := Array.copy t
            end
          end
          else begin
            Metrics.incr m_rejected;
            incr rejected
          end
    done;
    (let total = !accepted + !rejected in
     if total > 0 then
       Metrics.set g_accept_ratio (float_of_int !accepted /. float_of_int total));
    (* never return something worse than the input *)
    let input_cost =
      cost inst params
        (Array.map
           (function Layout.Shield -> shield | Layout.Net i -> i)
           (Layout.slots layout))
    in
    if !best_cost < input_cost then to_layout inst !best else layout
  end

let shields_needed ?params rng inst = Layout.num_shields (min_area ?params rng inst)

(* ---------------- the solve choke point ----------------------------- *)

type mode = Order_only | Min_area

type request = {
  mode : mode;
  params : Keff.params;
  seed : int;
  retries : int;
  max_passes : int option;
  deadline : Deadline.t;
  fault_site : string option;
}

let request ?(mode = Min_area) ?(params = Keff.default) ?(retries = 2)
    ?max_passes ?(deadline = Deadline.none) ?fault_site ~seed () =
  { mode; params; seed; retries; max_passes; deadline; fault_site }

type disposition = Hit | Miss | Stored

type solution = {
  layout : Layout.t;
  acceptable : bool;
  degraded : bool;
  attempts : int;
  cache : disposition option;
  signature : string;
}

(* guard.retries is looked up at the event so clean runs export a
   byte-identical metrics set (see Phase2's matching counters) *)
let c_retries () = Metrics.counter "guard.retries"

(* Solver-effort accounting around the kernel call: the whole solve runs
   on one domain, so the deltas of this domain's counter cells are
   exactly this solve's work.  The deltas are stored with the cache
   entry and replayed on every hit, which keeps the cumulative sino.*
   series equal to a cache-off run's for any hit/miss schedule. *)
type effort_mark = { i0 : int; ins0 : int; rem0 : int; sw0 : int; rep0 : int }

let effort_mark () =
  {
    i0 = Metrics.counter_value m_instances;
    ins0 = Metrics.counter_value m_inserted;
    rem0 = Metrics.counter_value m_removed;
    sw0 = Metrics.counter_value m_swaps;
    rep0 = Metrics.counter_value m_repairs;
  }

let effort_since mark ~retries =
  {
    Cache.instances = Metrics.counter_value m_instances - mark.i0;
    inserted = Metrics.counter_value m_inserted - mark.ins0;
    removed = Metrics.counter_value m_removed - mark.rem0;
    swaps = Metrics.counter_value m_swaps - mark.sw0;
    repairs = Metrics.counter_value m_repairs - mark.rep0;
    retries;
  }

let replay_effort (e : Cache.effort) =
  Metrics.add m_instances e.Cache.instances;
  Metrics.add m_inserted e.Cache.inserted;
  Metrics.add m_removed e.Cache.removed;
  Metrics.add m_swaps e.Cache.swaps;
  Metrics.add m_repairs e.Cache.repairs;
  if e.Cache.retries > 0 then Metrics.add (c_retries ()) e.Cache.retries

let slots_of_layout layout =
  Array.map
    (function Layout.Shield -> shield | Layout.Net i -> i)
    (Layout.slots layout)

(* canonical slot ints -> layout on the original labeling *)
let layout_on orig canon slots =
  let perm = canon.Instance.perm in
  Layout.make orig
    (Array.map
       (fun s -> if s = shield then Layout.Shield else Layout.Net perm.(s))
       slots)

(* 64-bit FNV-1a over ints — digests the warm slots into the cache key *)
let fnv_ints a =
  let h = ref 0xcbf29ce484222325L in
  Array.iter
    (fun v ->
      let x = ref (Int64.of_int v) in
      for _ = 1 to 8 do
        let b = Int64.logand !x 0xFFL in
        h := Int64.mul (Int64.logxor !h b) 0x100000001b3L;
        x := Int64.shift_right_logical !x 8
      done)
    a;
  Printf.sprintf "%016Lx" !h

(* The key covers every input the solution depends on — except the retry
   budget: the first-feasible attempt index is itself content-determined
   (streams depend only on signature, seed, attempt), so one entry
   serves every budget that reaches its recorded depth (the [admit]
   check at lookup). *)
let key_of req ~signature ~warm_digest =
  let p = req.params in
  Printf.sprintf "%s|%s|k1=%h;sb=%h;w=%d|s=%d|mp=%s%s" signature
    (match req.mode with Order_only -> "oo" | Min_area -> "ma")
    p.Keff.k1 p.Keff.shield_block p.Keff.window req.seed
    (match req.max_passes with None -> "-" | Some m -> string_of_int m)
    (match warm_digest with None -> "" | Some d -> "|w=" ^ d)

let solve ?cache ?warm req inst =
  let canon = Instance.canonicalize inst in
  let cinst = canon.Instance.inst in
  let signature = canon.Instance.signature in
  (* inverse of perm: original local index -> canonical position *)
  let inv =
    let p = canon.Instance.perm in
    let a = Array.make (Array.length p) 0 in
    Array.iteri (fun c orig -> a.(orig) <- c) p;
    a
  in
  let canon_warm =
    Option.map
      (fun l ->
        Array.map
          (fun s -> if s = shield then shield else inv.(s))
          (slots_of_layout l))
      warm
  in
  let warm_digest = Option.map fnv_ints canon_warm in
  let key = key_of req ~signature ~warm_digest in
  let cacheable = req.mode = Min_area && cache <> None in
  let cached =
    if cacheable then
      Option.bind cache (fun c ->
          Cache.find c ~params:req.params ~key ~inst:cinst ?warm:canon_warm
            ~admit:(fun v -> v.Cache.effort.Cache.retries <= req.retries)
            ())
    else None
  in
  match cached with
  | Some v ->
      replay_effort v.Cache.effort;
      {
        layout = layout_on inst canon v.Cache.slots;
        acceptable = true;
        degraded = false;
        attempts = 0;
        cache = Some Hit;
        signature;
      }
  | None -> (
      let mark = effort_mark () in
      let fault () = Option.iter Eda_guard.Fault.point req.fault_site in
      let acceptable l =
        match req.mode with
        | Order_only -> true
        | Min_area -> Layout.feasible l req.params
      in
      let finish ~acceptable:ok ~degraded ~attempts ~retries ~crashed clayout =
        let cslots = slots_of_layout clayout in
        let store_ok =
          cacheable && ok && (not degraded) && (not crashed)
          && not (Deadline.expired req.deadline)
        in
        if store_ok then
          Option.iter
            (fun c ->
              Cache.store c ~key ~inst:cinst ?warm:canon_warm
                { Cache.slots = cslots; effort = effort_since mark ~retries })
            cache;
        {
          layout = layout_on inst canon cslots;
          acceptable = ok;
          degraded;
          attempts;
          cache =
            (if not cacheable then None
             else if store_ok then Some Stored
             else Some Miss);
          signature;
        }
      in
      match warm with
      | Some _ ->
          (* Phase3 re-solve: deterministic positional repair from the
             warm layout — no RNG, no ladder.  Repair commutes with
             relabeling, so running it on the canonical form changes
             nothing except making the result content-addressed. *)
          fault ();
          let cl =
            repair ~params:req.params ?max_passes:req.max_passes
              ~deadline:req.deadline cinst
              (Layout.make cinst
                 (Array.map
                    (fun s ->
                      if s = shield then Layout.Shield else Layout.Net s)
                    (Option.get canon_warm)))
          in
          finish
            ~acceptable:(acceptable cl)
            ~degraded:false ~attempts:1 ~retries:0 ~crashed:false cl
      | None ->
          let attempt i =
            (* content-derived stream: identical panels get identical
               solutions wherever (and in whichever run) they appear *)
            let rng = Rng.create (Hashtbl.hash (signature, req.seed, i)) in
            fault ();
            match req.mode with
            | Order_only -> order_only rng cinst
            | Min_area ->
                min_area ~params:req.params ?max_passes:req.max_passes
                  ~deadline:req.deadline rng cinst
          in
          let rec run i ~crashed =
            match attempt i with
            | l when acceptable l ->
                finish ~acceptable:true ~degraded:false ~attempts:(i + 1)
                  ~retries:i ~crashed l
            | l ->
                if Deadline.expired req.deadline then
                  (* out of time: keep the best-so-far, tagged degraded *)
                  finish ~acceptable:false ~degraded:true ~attempts:(i + 1)
                    ~retries:i ~crashed l
                else if i < req.retries then begin
                  Metrics.incr (c_retries ());
                  run (i + 1) ~crashed
                end
                else
                  (* exhausted: the caller applies its policy *)
                  finish ~acceptable:false ~degraded:false ~attempts:(i + 1)
                    ~retries:i ~crashed l
            | exception
                Eda_guard.Error.Error (Eda_guard.Error.Worker_crash _)
              when i < req.retries ->
                Metrics.incr (c_retries ());
                run (i + 1) ~crashed:true
          in
          run 0 ~crashed:false)

