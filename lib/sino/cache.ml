module Metrics = Eda_obs.Metrics
module Log = Eda_obs.Log

let m_hits = Metrics.counter "sino.cache_hits"
let m_misses = Metrics.counter "sino.cache_misses"
let m_stores = Metrics.counter "sino.cache_stores"
let m_evictions = Metrics.counter "sino.cache_evictions"
let m_bound_rejects = Metrics.counter "sino.cache_bound_rejects"

type effort = {
  instances : int;
  inserted : int;
  removed : int;
  swaps : int;
  repairs : int;
  retries : int;
}

type value = { slots : int array; effort : effort }

type node = {
  key : string;
  inst : Instance.t;
  warm : int array option;
  mutable value : value;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mu : Mutex.t;
  capacity : int;
  tbl : (string, node list ref) Hashtbl.t;  (** collision bucket per key *)
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;
  mutable size : int;
}

let create ?(capacity = 16384) () =
  {
    mu = Mutex.create ();
    capacity = max 1 capacity;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    size = 0;
  }

let length t = Mutex.protect t.mu (fun () -> t.size)

(* ---------------- intrusive LRU list (under t.mu) ------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let bucket_remove t n =
  match Hashtbl.find_opt t.tbl n.key with
  | None -> ()
  | Some b -> (
      b := List.filter (fun m -> m != n) !b;
      match !b with [] -> Hashtbl.remove t.tbl n.key | _ :: _ -> ())

let drop t n =
  unlink t n;
  bucket_remove t n;
  t.size <- t.size - 1

let same_warm a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x = y
  | Some _, None | None, Some _ -> false

let matches ~key ~inst ~warm n =
  String.equal n.key key && same_warm n.warm warm
  && Instance.equal_content n.inst inst

let locate t ~key ~inst ~warm =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some b -> List.find_opt (matches ~key ~inst ~warm) !b

let num_shields slots =
  Array.fold_left (fun acc s -> if s < 0 then acc + 1 else acc) 0 slots

(* a node is still on the LRU list iff it has a predecessor or is the
   head ([Some n == t.head] would compare a fresh allocation) *)
let linked t n =
  n.prev <> None || (match t.head with Some h -> h == n | None -> false)

let find t ~params ~key ~inst ?warm ?(admit = fun _ -> true) () =
  let candidate =
    Mutex.protect t.mu (fun () -> locate t ~key ~inst ~warm)
  in
  match candidate with
  | None ->
      Metrics.incr m_misses;
      None
  | Some n when not (admit n.value) ->
      (* valid entry, but not reachable under this request (e.g. found
         beyond the requester's retry budget): miss, keep the entry *)
      Metrics.incr m_misses;
      None
  | Some n ->
      (* cross-check outside the lock: a clique bound every feasible
         layout must satisfy.  An entry beating it is provably not a
         solution of this instance (hash collision that slipped past the
         content check, or a corrupt store) — drop it and re-solve. *)
      let lb = Bound.shield_lower_bound ~params inst in
      if num_shields n.value.slots >= lb then begin
        Mutex.protect t.mu (fun () ->
            if linked t n then begin
              unlink t n;
              push_front t n
            end);
        Metrics.incr m_hits;
        Some n.value
      end
      else begin
        Mutex.protect t.mu (fun () -> if linked t n then drop t n);
        Log.warn
          ~fields:[ ("key", key) ]
          "panel cache entry beats the shield lower bound (%d < %d); dropped"
          (num_shields n.value.slots) lb;
        Metrics.incr m_bound_rejects;
        Metrics.incr m_misses;
        None
      end

(* [insert] is the raw mutation; [store] is the public entry that also
   counts.  [load] below re-inserts persisted entries through [insert]
   so sino.cache_stores only counts solves stored this process. *)
let insert t ~key ~inst ~warm value =
  Mutex.protect t.mu (fun () ->
      match locate t ~key ~inst ~warm with
      | Some n ->
          (* racing domains compute identical canonical solutions, so a
             refresh only promotes recency *)
          n.value <- value;
          unlink t n;
          push_front t n
      | None ->
          let n = { key; inst; warm; value; prev = None; next = None } in
          push_front t n;
          (match Hashtbl.find_opt t.tbl key with
          | Some b -> b := n :: !b
          | None -> Hashtbl.add t.tbl key (ref [ n ]));
          t.size <- t.size + 1;
          while t.size > t.capacity do
            match t.tail with
            | None -> t.size <- t.capacity (* unreachable *)
            | Some last ->
                drop t last;
                Metrics.incr m_evictions
          done)

let store t ~key ~inst ?warm value =
  Metrics.incr m_stores;
  insert t ~key ~inst ~warm value

(* ---------------- on-disk store (gsino-panelcache-v1) --------------- *)

let magic = "gsino-panelcache-v1"
let file_of dir = Filename.concat dir "panels.v1"

exception Corrupt of string

let entry_lines n =
  let inst = n.inst in
  let sz = Instance.size inst in
  let ints a = String.concat " " (Array.to_list (Array.map string_of_int a)) in
  let kth =
    String.concat " "
      (List.init sz (fun i ->
           Printf.sprintf "%Lx" (Int64.bits_of_float (Instance.kth inst i))))
  in
  let sens =
    String.concat " "
      (List.init sz (fun i ->
           String.init sz (fun j -> if Instance.sens inst i j then '1' else '0')))
  in
  let e = n.value.effort in
  [
    "key " ^ n.key;
    Printf.sprintf "n %d" sz;
    String.trim ("kth " ^ kth);
    String.trim ("sens " ^ sens);
    String.trim ("slots " ^ ints n.value.slots);
  ]
  @ (match n.warm with Some w -> [ String.trim ("warm " ^ ints w) ] | None -> [])
  @ [
      Printf.sprintf "effort %d %d %d %d %d %d" e.instances e.inserted e.removed
        e.swaps e.repairs e.retries;
      "end";
    ]

(* Writers may race on one store directory: the serve daemon flushing at
   drain while a batch CLI sharing GSINO_PANEL_CACHE saves after refine.
   Each writer therefore stages into its own tmp file — pid plus an
   in-process sequence number, so two saves from one process (daemon
   drain racing a programmatic save) cannot collide either — and
   publishes with an atomic rename.  Rename is last-writer-wins at the
   whole-file level, so readers only ever observe some complete,
   well-formed store, never an interleaving; [load] of either version is
   valid (the stores are caches, not logs).  Counting is unaffected:
   [save] touches no metric and [load] re-inserts through [insert], so a
   concurrent save/load race cannot double-count sino.cache_stores. *)
let save_seq = Atomic.make 0

let save t dir =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let nodes =
    (* oldest first, so sequential re-insertion on load restores recency *)
    Mutex.protect t.mu (fun () ->
        let acc = ref [] in
        let cur = ref t.head in
        (while !cur <> None do
           match !cur with
           | Some n ->
               acc := n :: !acc;
               cur := n.next
           | None -> ()
         done);
        !acc)
  in
  let file = file_of dir in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ())
      (Atomic.fetch_and_add save_seq 1)
  in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (magic ^ "\n");
         List.iter
           (fun n ->
             List.iter (fun l -> output_string oc (l ^ "\n")) (entry_lines n))
           nodes);
     Sys.rename tmp file
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let split_fields line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let expect_tag tag line =
  match String.index_opt line ' ' with
  | _ when line = tag -> ""
  | Some i when String.sub line 0 i = tag ->
      String.sub line (i + 1) (String.length line - i - 1)
  | Some _ | None -> raise (Corrupt (Printf.sprintf "expected '%s' line" tag))

let parse_entry t lines =
  match lines with
  | [] -> []
  | key_line :: rest ->
      let key = expect_tag "key" key_line in
      let take tag rest =
        match rest with
        | l :: rest -> (expect_tag tag l, rest)
        | [] -> raise (Corrupt ("truncated entry: missing " ^ tag))
      in
      let n_str, rest = take "n" rest in
      let sz =
        match int_of_string_opt n_str with
        | Some v when v >= 0 -> v
        | Some _ | None -> raise (Corrupt "bad size")
      in
      let kth_str, rest = take "kth" rest in
      let kth_fields = Array.of_list (split_fields kth_str) in
      if Array.length kth_fields <> sz then raise (Corrupt "kth arity");
      let kth =
        Array.map
          (fun s ->
            match Int64.of_string_opt ("0x" ^ s) with
            | Some b -> Int64.float_of_bits b
            | None -> raise (Corrupt "bad kth bits"))
          kth_fields
      in
      let sens_str, rest = take "sens" rest in
      let rows = Array.of_list (split_fields sens_str) in
      if Array.length rows <> sz then raise (Corrupt "sens arity");
      Array.iter
        (fun r -> if String.length r <> sz then raise (Corrupt "sens row length"))
        rows;
      let ints s =
        Array.of_list
          (List.map
             (fun f ->
               match int_of_string_opt f with
               | Some v -> v
               | None -> raise (Corrupt "bad int field"))
             (split_fields s))
      in
      let slots_str, rest = take "slots" rest in
      let slots = ints slots_str in
      let warm, rest =
        match rest with
        | l :: more when l = "warm" || String.length l > 5 && String.sub l 0 5 = "warm "
          ->
            (Some (ints (expect_tag "warm" l)), more)
        | _ -> (None, rest)
      in
      let eff_str, rest = take "effort" rest in
      let effort =
        match Array.to_list (ints eff_str) with
        | [ instances; inserted; removed; swaps; repairs; retries ] ->
            { instances; inserted; removed; swaps; repairs; retries }
        | _ -> raise (Corrupt "effort arity")
      in
      let rest =
        match rest with
        | "end" :: rest -> rest
        | _ -> raise (Corrupt "missing end marker")
      in
      (* rebuild the canonical instance: ids are 0..n-1 by construction *)
      let inst =
        Instance.make
          ~nets:(Array.init sz (fun i -> i))
          ~kth
          ~sensitive:(fun i j -> rows.(i).[j] = '1')
      in
      (* a solution must place each local net exactly once *)
      let seen = Array.make sz false in
      Array.iter
        (fun s ->
          if s >= 0 then
            if s >= sz || seen.(s) then raise (Corrupt "bad slot permutation")
            else seen.(s) <- true)
        slots;
      if not (Array.for_all Fun.id seen) then raise (Corrupt "missing net in slots");
      insert t ~key ~inst ~warm { slots; effort };
      rest

let load ?capacity dir =
  let t = create ?capacity () in
  let file = file_of dir in
  if not (Sys.file_exists file) then t
  else begin
    let lines =
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref [] in
          (try
             while true do
               acc := input_line ic :: !acc
             done
           with End_of_file -> ());
          List.rev !acc)
    in
    match lines with
    | first :: rest when first = magic -> (
        try
          let rec go = function [] -> () | ls -> go (parse_entry t ls) in
          go rest;
          t
        with Corrupt msg ->
          Log.warn
            ~fields:[ ("file", file) ]
            "corrupt panel cache store (%s); starting empty" msg;
          create ?capacity ())
    | _ :: _ | [] ->
        Log.warn
          ~fields:[ ("file", file) ]
          "unrecognized panel cache store header; starting empty";
        create ?capacity ()
  end
