type t = { nets : int array; kth : float array; sens : bool array array }

let make ~nets ~kth ~sensitive =
  let n = Array.length nets in
  if Array.length kth <> n then invalid_arg "Instance.make: kth length mismatch";
  let sens =
    Array.init n (fun i ->
        Array.init n (fun j -> i <> j && sensitive nets.(i) nets.(j)))
  in
  (* enforce symmetry defensively: model sensitivity is mutual (§2.1) *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = sens.(i).(j) || sens.(j).(i) in
      sens.(i).(j) <- v;
      sens.(j).(i) <- v
    done
  done;
  { nets; kth; sens }

let size t = Array.length t.nets

let net_id t i = t.nets.(i)
let kth t i = t.kth.(i)

let with_kth t i v =
  if v <= 0.0 then invalid_arg "Instance.with_kth: bound must be positive";
  let kth = Array.copy t.kth in
  kth.(i) <- v;
  { t with kth }

let sens t i j = t.sens.(i).(j)

let sensitivity t i =
  let n = size t in
  if n <= 1 then 0.0
  else begin
    let cnt = ref 0 in
    for j = 0 to n - 1 do
      if t.sens.(i).(j) then incr cnt
    done;
    float_of_int !cnt /. float_of_int (n - 1)
  end

let sensitivities t = Array.init (size t) (sensitivity t)

(* ---------------------- canonical panel signature ---------------------
   The content-address the ROADMAP panel cache will be keyed by: net
   count + sensitivity matrix up to permutation + bucketed Kth bounds.
   Canonicalisation is one-dimensional Weisfeiler-Leman colour
   refinement — initial colours are (Kth bucket, degree), refined by the
   sorted multiset of neighbour colours — and the digest folds the size,
   the sorted final colours and the sorted edge colour pairs, all
   permutation-invariant.  WL is not a perfect graph canonical form, but
   a collision needs WL-indistinguishable non-isomorphic panels AND an
   FNV clash; a cache would verify on hit anyway. *)

(* FNV-1a, 64-bit: self-contained and stable across OCaml versions
   (Hashtbl.hash is ~30-bit — useless at 100k-panel scale). *)
let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_int h x =
  let h = ref h and x = ref (Int64.of_int x) in
  for _ = 1 to 8 do
    let b = Int64.logand !x 0xFFL in
    h := Int64.mul (Int64.logxor !h b) fnv_prime;
    x := Int64.shift_right_logical !x 8
  done;
  !h

let to_color h = Int64.to_int h land max_int

(* ~7 buckets per 2x: a tightened bound moves buckets, a float wobble
   below ~5% does not — matching how Phase III steps bounds *)
let kth_bucket v =
  if (not (Float.is_finite v)) || v <= 0.0 then min_int / 2
  else int_of_float (Float.round (log v /. log 1.1))

let wl_colors t =
  let n = size t in
  let color =
    Array.init n (fun i ->
        let deg = ref 0 in
        for j = 0 to n - 1 do
          if t.sens.(i).(j) then incr deg
        done;
        to_color (fnv_int (fnv_int fnv_basis (kth_bucket t.kth.(i))) !deg))
  in
  let next = Array.make n 0 in
  for _ = 1 to min 8 n do
    for i = 0 to n - 1 do
      let neigh = ref [] in
      for j = 0 to n - 1 do
        if t.sens.(i).(j) then neigh := color.(j) :: !neigh
      done;
      next.(i) <-
        to_color
          (List.fold_left fnv_int
             (fnv_int fnv_basis color.(i))
             (List.sort compare !neigh))
    done;
    Array.blit next 0 color 0 n
  done;
  color

let signature_of_colors t color =
  let n = size t in
  let sorted_colors = Array.copy color in
  Array.sort compare sorted_colors;
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if t.sens.(i).(j) then
        edges :=
          (min color.(i) color.(j), max color.(i) color.(j)) :: !edges
    done
  done;
  let h = fnv_int fnv_basis n in
  let h = Array.fold_left fnv_int h sorted_colors in
  let h =
    List.fold_left
      (fun h (a, b) -> fnv_int (fnv_int h a) b)
      h
      (List.sort compare !edges)
  in
  Printf.sprintf "%016Lx" h

let signature t = signature_of_colors t (wl_colors t)

(* ---------------------- canonical relabeling --------------------------
   The cache (and the content-determined solver seeding) need more than a
   permutation-invariant digest: an actual canonical representative.  Net
   labels are reassigned by sorting on (final WL colour, exact Kth bits),
   ties broken by the original index.  For automorphic ties any pick
   yields content-identical canonical forms; for the rare
   WL-indistinguishable non-automorphic ties two permuted instances may
   canonicalise differently — the cache's equality check then simply
   misses, which costs a re-solve, never correctness. *)

type canon = {
  inst : t;  (** canonical relabeling; its net ids are [0..n-1] *)
  perm : int array;
      (** [perm.(c)] = original local index at canonical position [c] *)
  signature : string;
}

let canonicalize t =
  let n = size t in
  let color = wl_colors t in
  let perm = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare color.(a) color.(b) with
      | 0 -> (
          match
            compare (Int64.bits_of_float t.kth.(a)) (Int64.bits_of_float t.kth.(b))
          with
          | 0 -> compare a b
          | c -> c)
      | c -> c)
    perm;
  let inst =
    {
      nets = Array.init n (fun c -> c);
      kth = Array.init n (fun c -> t.kth.(perm.(c)));
      sens = Array.init n (fun c -> Array.init n (fun d -> t.sens.(perm.(c)).(perm.(d))));
    }
  in
  { inst; perm; signature = signature_of_colors t color }

(* Content equality up to net identity: exact Kth bits (the signature
   only buckets them) and the sensitivity matrix.  Global net ids are
   deliberately ignored — that is what makes cross-panel sharing work. *)
let equal_content a b =
  size a = size b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a.kth b.kth
  && Array.for_all2 (fun ra rb -> ra = rb) a.sens b.sens

let pp fmt t =
  Format.fprintf fmt "sino-instance(%d nets, mean S=%.2f)" (size t)
    (if size t = 0 then 0.0
     else
       Array.fold_left ( +. ) 0.0 (sensitivities t) /. float_of_int (size t))
