type slot = Net of int | Shield

type t = { inst : Instance.t; slots : slot array; pos : int array }

let positions inst slots =
  let n = Instance.size inst in
  let pos = Array.make n (-1) in
  Array.iteri
    (fun track slot ->
      match slot with
      | Shield -> ()
      | Net i ->
          if i < 0 || i >= n then invalid_arg "Layout.make: unknown net index";
          if pos.(i) >= 0 then invalid_arg "Layout.make: duplicate net";
          pos.(i) <- track)
    slots;
  Array.iteri
    (fun i p -> if p < 0 then invalid_arg (Printf.sprintf "Layout.make: net %d missing" i))
    pos;
  pos

let make inst slots = { inst; slots = Array.copy slots; pos = positions inst slots }

let instance t = t.inst
let slots t = Array.copy t.slots
let num_tracks t = Array.length t.slots

let num_shields t =
  Array.fold_left (fun acc s -> match s with Shield -> acc + 1 | Net _ -> acc) 0 t.slots

let position t i =
  if i < 0 || i >= Instance.size t.inst then invalid_arg "Layout.position";
  t.pos.(i)

(* K_i: walk outwards from the net's track in both directions, counting
   intervening shields; stop at the Keff window. *)
let k_of t p i =
  let track = position t i in
  let n = num_tracks t in
  let total = ref 0.0 in
  let walk step =
    let shields = ref 0 in
    let q = ref (track + step) in
    let dist = ref 1 in
    while !q >= 0 && !q < n && !dist <= p.Keff.window do
      (match t.slots.(!q) with
      | Shield -> incr shields
      | Net j ->
          if Instance.sens t.inst i j then
            total :=
              !total +. Keff.pair_coupling p ~dist:!dist ~shields_between:!shields);
      q := !q + step;
      incr dist
    done
  in
  walk 1;
  walk (-1);
  !total

let k_all t p = Array.init (Instance.size t.inst) (k_of t p)

let cap_violations t =
  let n = num_tracks t in
  let cnt = ref 0 in
  for q = 0 to n - 2 do
    match (t.slots.(q), t.slots.(q + 1)) with
    | Net i, Net j when Instance.sens t.inst i j -> incr cnt
    | (Net _ | Shield), (Net _ | Shield) -> ()
  done;
  !cnt

let k_violations t p =
  let out = ref [] in
  for i = Instance.size t.inst - 1 downto 0 do
    if k_of t p i > Instance.kth t.inst i +. 1e-12 then out := i :: !out
  done;
  !out

let feasible t p = cap_violations t = 0 && k_violations t p = []

let insert_shield t pos =
  let n = num_tracks t in
  if pos < 0 || pos > n then invalid_arg "Layout.insert_shield: bad position";
  let slots =
    Array.init (n + 1) (fun q ->
        if q < pos then t.slots.(q) else if q = pos then Shield else t.slots.(q - 1))
  in
  make t.inst slots

let remove_shield t pos =
  let n = num_tracks t in
  if pos < 0 || pos >= n then invalid_arg "Layout.remove_shield: bad position";
  (match t.slots.(pos) with
  | Shield -> ()
  | Net _ -> invalid_arg "Layout.remove_shield: track holds a net");
  let slots = Array.init (n - 1) (fun q -> if q < pos then t.slots.(q) else t.slots.(q + 1)) in
  make t.inst slots

let swap t a b =
  let n = num_tracks t in
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Layout.swap: bad track";
  let slots = Array.copy t.slots in
  let tmp = slots.(a) in
  slots.(a) <- slots.(b);
  slots.(b) <- tmp;
  make t.inst slots

let pp fmt t =
  Array.iter
    (function
      | Shield -> Format.pp_print_string fmt "|S|"
      | Net i -> Format.fprintf fmt "|%d|" (Instance.net_id t.inst i))
    t.slots
