(** Content-addressed panel cache (ROADMAP: the foundation for
    [gsino_serve] and incremental ECO reroute).

    Entries are keyed by a string the solver builds from the canonical
    panel {!Instance.signature} plus every input that influences the
    solution (Keff parameters, flow seed, retry ladder, solve mode, and
    for warm re-solves a digest of the warm layout).  Because the WL
    signature is not a perfect canonical form, every hit is verified with
    {!Instance.equal_content} against the stored canonical instance (and
    the stored warm slots, when present) — a colliding key can cost a
    re-solve, never a wrong answer.  On top of that the solver
    cross-checks each hit against {!Bound.shield_lower_bound}; an entry
    beating a sound lower bound is provably corrupt and is dropped
    (counted in [sino.cache_bound_rejects]).

    The in-process store is a mutex-protected LRU safe to share across
    worker domains.  [save]/[load] persist it as a versioned
    [gsino-panelcache-v1] text file inside a directory (the CLI's
    [--panel-cache DIR] / [GSINO_PANEL_CACHE]); a missing, truncated or
    corrupt store file loads as an empty cache with a warning — it is a
    cache, losing it is never an error.

    Counters: [sino.cache_hits] / [sino.cache_misses] /
    [sino.cache_stores] / [sino.cache_evictions] /
    [sino.cache_bound_rejects].  Hit/miss counts depend on which domain
    touches a duplicate panel first, so they are excluded from the
    jobs=1 ≡ jobs=4 comparisons; the solutions themselves are
    content-determined and schedule-independent (DESIGN §10). *)

type t

(** Solver-effort counter deltas recorded at solve time and replayed on
    every hit, so the cumulative [sino.*] effort series stay independent
    of the hit/miss schedule (a hit accounts for exactly the work the
    miss it replaces performed). *)
type effort = {
  instances : int;
  inserted : int;
  removed : int;
  swaps : int;
  repairs : int;
  retries : int;
}

type value = {
  slots : int array;
      (** canonical slot form of the solution: local net index, or [-1]
          for a shield *)
  effort : effort;
}

(** [create ?capacity ()] — empty cache; [capacity] (default 16384)
    bounds the entry count, evicting least-recently-used entries. *)
val create : ?capacity:int -> unit -> t

val length : t -> int

(** [find t ~params ~key ~inst ?warm ?admit ()] — verified lookup: the
    stored entry must match [key], be content-equal to the canonical
    [inst], carry the same [warm] slots, satisfy [admit] (the solver
    admits an entry only when its recorded retry depth fits the
    request's budget, so retry count need not split the key space) and
    survive the {!Bound.shield_lower_bound} cross-check under
    [params]. *)
val find :
  t ->
  params:Keff.params ->
  key:string ->
  inst:Instance.t ->
  ?warm:int array ->
  ?admit:(value -> bool) ->
  unit ->
  value option

(** [store t ~key ~inst ?warm value] — insert (or refresh) an entry at
    the most-recently-used position. *)
val store : t -> key:string -> inst:Instance.t -> ?warm:int array -> value -> unit

(** [load ?capacity dir] — read [dir]'s store file; a missing file is an
    empty cache, a malformed one is an empty cache plus a warning. *)
val load : ?capacity:int -> string -> t

(** [save t dir] — atomically write the store file (unique per-writer
    temp file + rename), creating [dir] if needed, least-recently-used
    entries first so a later [load] reconstructs the recency order.
    Safe under concurrent writers sharing [dir] (a draining daemon racing
    a batch CLI): each writer stages privately and the rename is
    last-writer-wins on a complete file, so concurrent [save]/[load]
    never observes a torn store and never double-counts
    [sino.cache_stores] ([save] records no metric; [load] re-inserts
    without counting). *)
val save : t -> string -> unit
