(** Heuristic solvers for the per-region problems:

    - {!order_only} is the NO baseline (used by ID+NO): permute the nets on
      the existing tracks to remove as much capacitive coupling (adjacent
      sensitive pairs) as possible — no shields, inductive bounds ignored.
    - {!min_area} is the min-area SINO heuristic (Phase II of GSINO and the
      per-region step of iSINO): find an ordering plus shield insertion
      that is capacitive-crosstalk free and meets every K_i ≤ Kth_i, with
      as few shields as possible.  SINO is NP-hard [4]; this is a greedy
      construct-then-repair heuristic with a shield-removal clean-up
      pass. *)

(** [order_only rng inst] — greedy ordering plus adjacent-swap improvement.
    The layout has exactly [size inst] tracks and no shields. *)
val order_only : Eda_util.Rng.t -> Instance.t -> Layout.t

(** [min_area ?params ?max_passes ?deadline rng inst] — feasible layout
    unless the instance is pathologically tight, in which case the best
    effort is returned (check {!Layout.feasible}; [Gsino.Phase2] counts
    and retries these).  [max_passes] bounds the repair loop (default
    6 · size).  An expired [deadline] skips the improvement stages at
    their pass boundaries — the result is always a valid layout, just
    less optimized (greedy order + capacitive fix still run). *)
val min_area :
  ?params:Keff.params ->
  ?max_passes:int ->
  ?deadline:Eda_guard.Deadline.t ->
  Eda_util.Rng.t ->
  Instance.t ->
  Layout.t

(** [repair ?params ?max_passes inst layout] — re-establish feasibility for
    an instance whose bounds changed (Phase III tightens/relaxes one net at
    a time), starting from the existing layout: keep the net ordering,
    add shields where bounds are now violated, then drop shields the new
    bounds no longer need.  Much cheaper than {!min_area} from scratch and
    minimally disturbs the other nets' couplings.  [layout] must belong to
    an instance with the same nets in the same order. *)
val repair :
  ?params:Keff.params ->
  ?max_passes:int ->
  ?deadline:Eda_guard.Deadline.t ->
  Instance.t ->
  Layout.t ->
  Layout.t

(** [anneal ?params ?moves ?t0 rng inst layout] — simulated-annealing
    improvement of a feasible layout: random adjacent swaps, shield
    removals and shield moves, accepted by the Metropolis rule on the cost
    [#shields + big · violations].  SINO is NP-hard; this quantifies how
    far the greedy {!min_area} heuristic is from a slower, stronger
    optimizer (the bench's solver ablation).  Returns a layout no worse
    than the input.  [deadline] is polled every 256 moves; on expiry the
    best-so-far layout is returned. *)
val anneal :
  ?params:Keff.params ->
  ?moves:int ->
  ?t0:float ->
  ?deadline:Eda_guard.Deadline.t ->
  Eda_util.Rng.t ->
  Instance.t ->
  Layout.t ->
  Layout.t

(** [shields_needed ?params rng inst] = number of shields in the
    {!min_area} solution — the quantity Formula (3) estimates. *)
val shields_needed : ?params:Keff.params -> Eda_util.Rng.t -> Instance.t -> int
