(** Heuristic solvers for the per-region problems.

    {!solve} is the single entry point the flows use (Phase2 per-panel
    solves and Phase3 re-solves both route through it): it carries the
    RNG seed, the retry ladder, the deadline and the solve mode in one
    {!request}, canonicalizes the instance ({!Instance.canonicalize}),
    derives the RNG stream from the panel's {e content} (signature +
    seed + attempt), solves the canonical form and maps the result back.
    That makes the solution a pure function of panel content — identical
    panels anywhere in a flow (or across runs) get identical layouts —
    which is what lets the content-addressed {!Cache} short-circuit
    repeat work without changing a single byte of output (DESIGN §10).

    The low-level kernels remain available for benchmarks and studies:

    - {!order_only} is the NO baseline (used by ID+NO): permute the nets on
      the existing tracks to remove as much capacitive coupling (adjacent
      sensitive pairs) as possible — no shields, inductive bounds ignored.
    - {!min_area} is the min-area SINO heuristic (Phase II of GSINO and the
      per-region step of iSINO): find an ordering plus shield insertion
      that is capacitive-crosstalk free and meets every K_i ≤ Kth_i, with
      as few shields as possible.  SINO is NP-hard [4]; this is a greedy
      construct-then-repair heuristic with a shield-removal clean-up
      pass. *)

(** Simulated-annealing temperature schedule (see {!anneal}). *)
module Anneal : sig
  type cooling =
    | Linear  (** T(s) = t0·(1 − s/moves) + t_end *)
    | Geometric  (** T(s) = t0·(t_end/t0)^(s/moves) *)

  type schedule = { moves : int; t0 : float; t_end : float; cooling : cooling }

  (** 4000 moves, t0 = 1.5, t_end = 1e-3, [Linear] — the historical
      schedule.  Its low floor is why [sino.moves_rejected] runs an
      order of magnitude above accepted on integer-ish cost surfaces;
      read [sino.acceptance_ratio] after a run to calibrate. *)
  val default : schedule
end

type mode = Order_only | Min_area

(** Everything one panel solve is parameterized on.  [seed] is the
    flow-level seed; the per-panel stream is derived from it and the
    canonical signature, never from the panel's grid position.
    [retries] reseeded re-attempts are made when a [Min_area] solve
    comes back infeasible (and when a worker crash is injected at
    [fault_site]); policy on exhaustion stays with the caller, which
    owns the panel context. *)
type request = {
  mode : mode;
  params : Keff.params;
  seed : int;
  retries : int;
  max_passes : int option;  (** repair-loop bound; default 10·size *)
  deadline : Eda_guard.Deadline.t;
  fault_site : string option;
      (** fault-injection point name pulled per attempt, e.g.
          ["phase2.solve"]; [None] disables the site *)
}

val request :
  ?mode:mode ->
  ?params:Keff.params ->
  ?retries:int ->
  ?max_passes:int ->
  ?deadline:Eda_guard.Deadline.t ->
  ?fault_site:string ->
  seed:int ->
  unit ->
  request
(** Defaults: [Min_area], {!Keff.default}, 2 retries, no [max_passes]
    override, no deadline, no fault site. *)

(** How the cache participated in a solve; [panel.solve] journal events
    carry it as the ["cache"] dimension. *)
type disposition = Hit | Miss | Stored

type solution = {
  layout : Layout.t;  (** on the {e original} instance's labeling *)
  acceptable : bool;
      (** mode-aware: [Order_only] always; [Min_area] = feasible under
          [params].  The caller applies its infeasibility policy when
          [false]. *)
  degraded : bool;
      (** the deadline expired before an acceptable layout was reached;
          [layout] is the best effort *)
  attempts : int;  (** ladder attempts consumed (0 on a cache hit) *)
  cache : disposition option;  (** [None] when no cache was supplied *)
  signature : string;  (** canonical signature, for journaling *)
}

(** [solve ?cache ?warm request inst] — the choke point.  With [warm]
    (Phase3's re-solve of the same net set under changed bounds) the
    deterministic {!repair} kernel runs from the warm layout; otherwise
    the {!min_area} / {!order_only} ladder runs with content-derived
    reseeding.  With [cache], [Min_area] results are memoized under a
    key covering signature, Keff parameters, seed, retries, max_passes
    and (for warm solves) a digest of the warm slots; hits are verified
    by content equality plus the {!Bound.shield_lower_bound} cross-check
    and replay the recorded solver-effort counters, so cumulative
    [sino.*] series match a cache-off run exactly.  Degraded, crashed or
    unacceptable results are never stored.

    Raises [Eda_guard.Error.Error (Worker_crash _)] when the fault site
    crashes the final attempt — the caller decides between failing and
    falling back, as it did before the redesign. *)
val solve : ?cache:Cache.t -> ?warm:Layout.t -> request -> Instance.t -> solution

(** [order_only rng inst] — greedy ordering plus adjacent-swap improvement.
    The layout has exactly [size inst] tracks and no shields. *)
val order_only : Eda_util.Rng.t -> Instance.t -> Layout.t

(** [min_area ?params ?max_passes ?deadline rng inst] — feasible layout
    unless the instance is pathologically tight, in which case the best
    effort is returned (check {!Layout.feasible}; {!solve} counts and
    retries these).  [max_passes] bounds the repair loop (default
    10 · size).  An expired [deadline] skips the improvement stages at
    their pass boundaries — the result is always a valid layout, just
    less optimized (greedy order + capacitive fix still run). *)
val min_area :
  ?params:Keff.params ->
  ?max_passes:int ->
  ?deadline:Eda_guard.Deadline.t ->
  Eda_util.Rng.t ->
  Instance.t ->
  Layout.t

(** [repair ?params ?max_passes inst layout] — re-establish feasibility for
    an instance whose bounds changed (Phase III tightens/relaxes one net at
    a time), starting from the existing layout: keep the net ordering,
    add shields where bounds are now violated, then drop shields the new
    bounds no longer need.  Much cheaper than {!min_area} from scratch and
    minimally disturbs the other nets' couplings.  [layout] must belong to
    an instance with the same nets in the same order.  Deterministic (no
    RNG) and positional, so it commutes with net relabeling — which is
    why {!solve} may run it on the canonical form and map back. *)
val repair :
  ?params:Keff.params ->
  ?max_passes:int ->
  ?deadline:Eda_guard.Deadline.t ->
  Instance.t ->
  Layout.t ->
  Layout.t

(** [anneal ?params ?schedule rng inst layout] — simulated-annealing
    improvement of a feasible layout: random adjacent swaps, shield
    removals and shield moves, accepted by the Metropolis rule on the cost
    [#shields + big · violations] under [schedule]'s temperature curve
    (default {!Anneal.default}).  SINO is NP-hard; this quantifies how
    far the greedy {!min_area} heuristic is from a slower, stronger
    optimizer (the bench's solver ablation).  Returns a layout no worse
    than the input.  [deadline] is polled every 256 moves; on expiry the
    best-so-far layout is returned.  Each call publishes this run's
    accepted/(accepted+rejected) as the [sino.acceptance_ratio] gauge. *)
val anneal :
  ?params:Keff.params ->
  ?schedule:Anneal.schedule ->
  ?deadline:Eda_guard.Deadline.t ->
  Eda_util.Rng.t ->
  Instance.t ->
  Layout.t ->
  Layout.t

(** [shields_needed ?params rng inst] = number of shields in the
    {!min_area} solution — the quantity Formula (3) estimates. *)
val shields_needed : ?params:Keff.params -> Eda_util.Rng.t -> Instance.t -> int
