(* Provable shield lower bounds from sensitivity cliques.  The argument
   (DESIGN.md section 8):

   Let C be a clique of k pairwise-sensitive nets in a panel of m nets
   and s shields (every track holds a net or a shield; there are no
   empty tracks).  Order C by track position; the k-1 gaps between
   consecutive clique members are disjoint track intervals.

   1. Capacitive: a sensitive pair may not sit on adjacent tracks, so
      every gap holds >= 1 track, each a shield or a non-clique net.
   2. Inductive: in a gap with g tracks and no shield, the two clique
      members at its ends are at distance g+1 with zero shields between,
      so each receives at least k1^(g+1) from the other (contributions
      are non-negative and additive, and the pair is within the Keff
      window unless g+1 > window).  Feasibility hence needs
      k1^(g+1) <= max Kth over C, or g >= window: a shield-free gap has
      at least q tracks, with q the smallest such g.

   Only m - k non-clique nets exist, so at most (m-k)/q gaps can be
   shield-free; the remaining gaps each contain a shield, and gaps are
   disjoint, so s >= (k-1) - (m-k)/q.  Every step holds for any
   feasible layout, so the bound is sound for any solver. *)

let one_shield_threshold p =
  p.Keff.k1 *. p.Keff.k1 *. p.Keff.shield_block

let greedy_clique ?keep inst =
  let n = Instance.size inst in
  let keep = match keep with Some f -> f | None -> fun _ -> true in
  let cand = Array.of_list (List.filter keep (List.init n Fun.id)) in
  let deg i =
    Array.fold_left
      (fun acc j -> if j <> i && Instance.sens inst i j then acc + 1 else acc)
      0 cand
  in
  (* candidate vertices by degree (desc), index breaking ties *)
  let keyed = Array.map (fun i -> (i, deg i)) cand in
  Array.sort
    (fun (a, da) (b, db) -> if da <> db then compare db da else compare a b)
    keyed;
  let best = ref [||] in
  Array.iter
    (fun (seed, _) ->
      let clique = ref [ seed ] in
      Array.iter
        (fun (v, _) ->
          if v <> seed && List.for_all (fun c -> Instance.sens inst v c) !clique
          then clique := v :: !clique)
        keyed;
      if List.length !clique > Array.length !best then
        best := Array.of_list !clique)
    keyed;
  Array.sort compare !best;
  !best

(* Shield-free gap width forced by the clique's loosest bound; matches
   Layout.k_violations' 1e-12 comparison tolerance so the bound never
   exceeds what the feasibility predicate itself would accept. *)
let free_gap_width p ~kmax =
  let rec go g =
    if g >= p.Keff.window then p.Keff.window
    else if p.Keff.k1 ** float_of_int (g + 1) <= kmax +. 1e-12 then g
    else go (g + 1)
  in
  go 1

let bound_for p inst clique =
  let k = Array.length clique in
  if k < 2 then 0
  else begin
    let m = Instance.size inst in
    let kmax =
      Array.fold_left
        (fun acc i -> Float.max acc (Instance.kth inst i))
        neg_infinity clique
    in
    let q = free_gap_width p ~kmax in
    max 0 (k - 1 - ((m - k) / q))
  end

let shield_lower_bound ?(params = Keff.default) inst =
  (* two candidate cliques: the largest we can find (capacitive-dominated
     bound) and the largest among tight nets, whose small Kth widens the
     forced shield-free gaps (inductive-dominated bound) *)
  let all = greedy_clique inst in
  let tight =
    greedy_clique
      ~keep:(fun i -> Instance.kth inst i < params.Keff.k1 *. params.Keff.k1)
      inst
  in
  max (bound_for params inst all) (bound_for params inst tight)
