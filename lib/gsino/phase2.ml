module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Instance = Eda_sino.Instance
module Layout = Eda_sino.Layout
module Solver = Eda_sino.Solver
module Keff = Eda_sino.Keff
module Rng = Eda_util.Rng
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace

(* Phase II telemetry: one panel per occupied (region, direction) *)
let m_panels_h = Metrics.counter ~labels:[ ("dir", "H") ] "phase2.panels"
let m_panels_v = Metrics.counter ~labels:[ ("dir", "V") ] "phase2.panels"
let h_panel_nets = Metrics.histogram "phase2.panel_nets"
let m_shields = Metrics.counter "phase2.shields_inserted"
let m_resolves = Metrics.counter "phase2.resolves"

type key = int * Dir.t

type soln = {
  inst : Instance.t;
  layout : Layout.t;
  k : (int, float) Hashtbl.t;
}

type mode = Order_only | Min_area

type t = {
  grid : Grid.t;
  keff : Keff.params;
  table : (key, soln) Hashtbl.t;
  net_regions : (int, key list) Hashtbl.t;
}

let grid t = t.grid
let keff t = t.keff

let soln_of_layout ~keff inst layout =
  let k = Hashtbl.create (Instance.size inst) in
  Array.iteri
    (fun i ki -> Hashtbl.replace k (Instance.net_id inst i) ki)
    (Layout.k_all layout keff);
  { inst; layout; k }

let solve ~grid ~netlist ~routes ~kth ~sensitivity ~keff ~mode ~seed ?pool () =
  Trace.span "phase2.solve" @@ fun () ->
  let members : (key, int list) Hashtbl.t = Hashtbl.create 256 in
  let net_regions : (int, key list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun route ->
      let net = Route.net route in
      List.iter
        (fun ((r, d) as key) ->
          ignore r;
          ignore d;
          Hashtbl.replace members key
            (net :: Option.value (Hashtbl.find_opt members key) ~default:[]);
          Hashtbl.replace net_regions net
            (key :: Option.value (Hashtbl.find_opt net_regions net) ~default:[]))
        (Route.occupied grid route))
    routes;
  ignore netlist;
  (* Each panel is an independent SINO instance with a panel-keyed RNG
     seed, so panels can be solved in any order (or concurrently) with
     identical results.  Key-sort for a stable worklist, fan out, then
     fill the table in index order. *)
  let panels =
    Hashtbl.fold (fun key nets acc -> (key, nets) :: acc) members []
    |> List.sort compare |> Array.of_list
  in
  let solve_panel (((r, d) as _key), nets) =
    let nets = Array.of_list (List.sort_uniq compare nets) in
    let kth_arr = Array.map kth nets in
    let inst =
      Instance.make ~nets ~kth:kth_arr ~sensitive:(Sensitivity.sensitive sensitivity)
    in
    let rng = Rng.create (Hashtbl.hash (seed, r, Dir.to_string d)) in
    let layout =
      match mode with
      | Order_only -> Solver.order_only rng inst
      | Min_area -> Solver.min_area ~params:keff rng inst
    in
    Metrics.incr (match d with Dir.H -> m_panels_h | Dir.V -> m_panels_v);
    Metrics.observe h_panel_nets (float_of_int (Array.length nets));
    Metrics.add m_shields (Layout.num_shields layout);
    soln_of_layout ~keff inst layout
  in
  let solns = Eda_exec.map_array ?pool solve_panel panels in
  let table = Hashtbl.create (Array.length panels) in
  Array.iteri (fun i soln -> Hashtbl.replace table (fst panels.(i)) soln) solns;
  { grid; keff; table; net_regions }

let find t key = Hashtbl.find_opt t.table key

let k_of t ~net key =
  match find t key with
  | None -> 0.0
  | Some s -> Option.value (Hashtbl.find_opt s.k net) ~default:0.0

let shields t key =
  match find t key with None -> 0 | Some s -> Layout.num_shields s.layout

let total_shields t =
  Hashtbl.fold (fun _ s acc -> acc + Layout.num_shields s.layout) t.table 0

let replace t key soln = Hashtbl.replace t.table key soln

let resolve t key inst rng =
  Metrics.incr m_resolves;
  (* warm-start from the current layout when the instance is the same net
     set with changed bounds (the Phase III case): keeps the ordering and
     the other nets' couplings stable, and is much cheaper *)
  let same_nets s =
    Instance.size s.inst = Instance.size inst
    && Array.for_all
         (fun i -> Instance.net_id s.inst i = Instance.net_id inst i)
         (Array.init (Instance.size inst) (fun i -> i))
  in
  let layout =
    match find t key with
    | Some s when same_nets s -> Solver.repair ~params:t.keff inst s.layout
    | Some _ | None -> Solver.min_area ~params:t.keff rng inst
  in
  soln_of_layout ~keff:t.keff inst layout

let apply_shields usage t =
  Hashtbl.iter
    (fun (r, d) s -> Usage.set_shields usage r d (Layout.num_shields s.layout))
    t.table

let iter t f = Hashtbl.iter f t.table

let regions_of_net t net =
  Option.value (Hashtbl.find_opt t.net_regions net) ~default:[]
