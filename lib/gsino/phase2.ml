module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Instance = Eda_sino.Instance
module Layout = Eda_sino.Layout
module Solver = Eda_sino.Solver
module Keff = Eda_sino.Keff
module Rng = Eda_util.Rng
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Journal = Eda_obs.Journal
module Clock = Eda_obs.Clock

(* Phase II telemetry: one panel per occupied (region, direction) *)
let m_panels_h = Metrics.counter ~labels:[ ("dir", "H") ] "phase2.panels"
let m_panels_v = Metrics.counter ~labels:[ ("dir", "V") ] "phase2.panels"
let h_panel_nets = Metrics.histogram "phase2.panel_nets"
let m_shields = Metrics.counter "phase2.shields_inserted"
let m_resolves = Metrics.counter "phase2.resolves"

(* Guard counters are looked up at the event (registration is idempotent
   and mutex-guarded, so this is safe from worker domains) and therefore
   only exist in runs that actually retried / fell back / found an
   infeasible panel — clean runs export a byte-identical metrics set.
   The retry counter itself moved into Solver.solve with the ladder. *)
let c_fallbacks () = Metrics.counter "guard.fallbacks"
let c_infeasible () = Metrics.counter "phase2.infeasible_panels"

(* Panel-signature recurrence — sizes the ROADMAP content-addressed panel
   cache before it exists.  Every SINO instance this module solves or
   re-solves is fingerprinted with Instance.signature; the per-flow seen
   set (scoped to [t], guarded for worker domains) splits them into
   first-sights and repeats.  The split is a set property, so the counts
   are identical for any jobs value. *)
let m_sig_unique () = Metrics.counter "sino.panel_sig_unique"
let m_sig_dups () = Metrics.counter "sino.panel_sig_dups"
let c_moves_acc () = Metrics.counter "sino.moves_accepted"
let c_moves_rej () = Metrics.counter "sino.moves_rejected"

(* The cache disposition is journaled as its own dimension, not folded
   into the outcome: the outcome describes the solution (identical for
   any schedule), while hit/miss depends on which domain touches a
   duplicate panel first under jobs>1.  The determinism compares strip
   the "cache" dimension and the sino.cache_* series. *)
let cache_dim = function
  | None -> []
  | Some Solver.Hit -> [ ("cache", "hit") ]
  | Some Solver.Miss -> [ ("cache", "miss") ]
  | Some Solver.Stored -> [ ("cache", "stored") ]

let note_signature ~sigs ~mu sg =
  let seen =
    Mutex.protect mu (fun () ->
        Hashtbl.mem sigs sg
        || (Hashtbl.add sigs sg ();
            false))
  in
  Metrics.incr (if seen then m_sig_dups () else m_sig_unique ())

type key = int * Dir.t

type soln = {
  inst : Instance.t;
  layout : Layout.t;
  k : (int, float) Hashtbl.t;
  feasible : bool;
  degraded : bool;
}

type mode = Order_only | Min_area

type t = {
  grid : Grid.t;
  keff : Keff.params;
  table : (key, soln) Hashtbl.t;
  net_regions : (int, key list) Hashtbl.t;
  sigs : (string, unit) Hashtbl.t;  (** signatures seen this flow *)
  sig_mu : Mutex.t;
  cache : Eda_sino.Cache.t option;  (** shared with Phase III re-solves *)
  seed : int;  (** flow seed — re-solve cache keys must match solve keys *)
}

let grid t = t.grid
let keff t = t.keff

let soln_of_layout ~keff ?(degraded = false) inst layout =
  let k = Hashtbl.create (Instance.size inst) in
  Array.iteri
    (fun i ki -> Hashtbl.replace k (Instance.net_id inst i) ki)
    (Layout.k_all layout keff);
  { inst; layout; k; feasible = Layout.feasible layout keff; degraded }

(* Conservative fallback when the solver cannot reach feasibility: keep
   the instance's own track order and, in Min_area mode, interleave a
   shield between every adjacent pair (zero capacitive coupling, maximal
   inductive isolation short of more exotic layouts). *)
let fallback_layout mode inst =
  let n = Instance.size inst in
  let slots =
    match mode with
    | _ when n = 0 -> [||]
    | Order_only -> Array.init n (fun q -> Layout.Net q)
    | Min_area ->
        Array.init
          ((2 * n) - 1)
          (fun q -> if q land 1 = 1 then Layout.Shield else Layout.Net (q / 2))
  in
  Layout.make inst slots

let solve ~grid ~netlist ~routes ~kth ~sensitivity ~keff ~mode ~seed
    ?(deadline = Eda_guard.Deadline.none) ?(retries = 2)
    ?(on_infeasible = Eda_guard.Error.Degrade) ?cache ?pool () =
  Trace.span "phase2.solve" @@ fun () ->
  let members : (key, int list) Hashtbl.t = Hashtbl.create 256 in
  let net_regions : (int, key list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun route ->
      let net = Route.net route in
      List.iter
        (fun ((r, d) as key) ->
          ignore r;
          ignore d;
          Hashtbl.replace members key
            (net :: Option.value (Hashtbl.find_opt members key) ~default:[]);
          Hashtbl.replace net_regions net
            (key :: Option.value (Hashtbl.find_opt net_regions net) ~default:[]))
        (Route.occupied grid route))
    routes;
  ignore netlist;
  (* Each panel is an independent SINO instance with a panel-keyed RNG
     seed, so panels can be solved in any order (or concurrently) with
     identical results.  Key-sort for a stable worklist, fan out, then
     fill the table in index order. *)
  let panels =
    Hashtbl.fold (fun key nets acc -> (key, nets) :: acc) members []
    |> List.sort compare |> Array.of_list
  in
  let sigs : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let sig_mu = Mutex.create () in
  let req =
    Solver.request
      ~mode:(match mode with Order_only -> Solver.Order_only | Min_area -> Solver.Min_area)
      ~params:keff ~retries ~deadline ~fault_site:"phase2.solve" ~seed ()
  in
  let solve_panel (((r, d) as _key), nets) =
    let t0 = Clock.now_ns () in
    let acc0 = Metrics.counter_value (c_moves_acc ())
    and rej0 = Metrics.counter_value (c_moves_rej ()) in
    let nets = Array.of_list (List.sort_uniq compare nets) in
    let kth_arr = Array.map kth nets in
    let inst =
      Instance.make ~nets ~kth:kth_arr ~sensitive:(Sensitivity.sensitive sensitivity)
    in
    let fallback best =
      Metrics.incr (c_fallbacks ());
      let fb = fallback_layout mode inst in
      match best with
      | Some l when not (Layout.feasible fb keff) -> l
      | Some _ | None -> fb
    in
    (* Order_only is the shield-free NO baseline: it ignores inductive
       bounds by design, so infeasibility is expected there and solve
       always accepts; only Min_area panels go through the retry ladder
       (inside Solver.solve).  Policy on exhaustion stays here, where
       the panel's grid context lives. *)
    let layout, degraded, cache_note, sg =
      match mode with
      | Min_area when Eda_guard.Deadline.expired deadline ->
          (* the budget was gone before this panel was even attempted:
             take the conservative all-shield fallback immediately so
             degradation latency stays bounded by the panel count, not
             by full solves that would be thrown away anyway *)
          (fallback None, true, None, Instance.signature inst)
      | Min_area | Order_only -> (
          match Solver.solve ?cache req inst with
          | { Solver.acceptable = true; layout; degraded; cache = cn; signature; _ }
            ->
              (layout, degraded, cn, signature)
          | { Solver.degraded = true; layout; cache = cn; signature; _ } ->
              (* the deadline ran out mid-ladder: best-so-far *)
              (layout, true, cn, signature)
          | { Solver.layout; cache = cn; signature; _ } -> (
              match on_infeasible with
              | Eda_guard.Error.Fail ->
                  Eda_guard.Error.raise_
                    (Eda_guard.Error.Infeasible
                       {
                         region = r;
                         dir = Dir.to_string d;
                         nets = Array.length nets;
                         retries;
                       })
              | Eda_guard.Error.Degrade ->
                  (fallback (Some layout), true, cn, signature))
          | exception
              Eda_guard.Error.Error (Eda_guard.Error.Worker_crash _ as e) -> (
              match on_infeasible with
              | Eda_guard.Error.Fail -> Eda_guard.Error.raise_ e
              | Eda_guard.Error.Degrade ->
                  (fallback None, true, None, Instance.signature inst)))
    in
    Metrics.incr (match d with Dir.H -> m_panels_h | Dir.V -> m_panels_v);
    Metrics.observe h_panel_nets (float_of_int (Array.length nets));
    Metrics.add m_shields (Layout.num_shields layout);
    note_signature ~sigs ~mu:sig_mu sg;
    let soln = soln_of_layout ~keff ~degraded inst layout in
    if Journal.enabled () then begin
      (* the whole panel solve ran on this domain, so the move deltas of
         this domain's sino.* counter cells are exactly this panel's *)
      let time_us = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e3 in
      let acc = Metrics.counter_value (c_moves_acc ()) - acc0
      and rej = Metrics.counter_value (c_moves_rej ()) - rej0 in
      Journal.record "panel.solve"
        ([
           ("region", string_of_int r);
           ("dir", Dir.to_string d);
           ("sig", sg);
           ( "members",
             String.concat "," (Array.to_list (Array.map string_of_int nets)) );
         ]
        @ cache_dim cache_note)
        ~data:
          [
            ("nets", float_of_int (Array.length nets));
            ("time_us", time_us);
            ("moves_accepted", float_of_int acc);
            ("moves_rejected", float_of_int rej);
            ("shields", float_of_int (Layout.num_shields layout));
          ]
        ~outcome:
          (if not soln.feasible then "infeasible"
           else if degraded then "degraded"
           else "feasible")
    end;
    soln
  in
  (* all domains bump the shared done-counter; only the coordinator's
     ticks reach the heartbeat (Progress is single-writer), so the line
     reflects total panels finished, not just its own *)
  let done_ = Atomic.make 0 in
  let solve_panel p =
    let s = solve_panel p in
    Atomic.incr done_;
    Eda_obs.Progress.tick ~items_total:(Array.length panels)
      ~items_done:(Atomic.get done_) ();
    s
  in
  (* a tight span around just the panel fan-out: the journal's summed
     panel.solve time_us must reconcile with this span (the enclosing
     phase2.solve span also carries worklist construction) *)
  let solns =
    Trace.span "phase2.panels" @@ fun () ->
    Eda_exec.map_array ?pool ~name:"phase2.panels" solve_panel panels
  in
  let table = Hashtbl.create (Array.length panels) in
  Array.iteri (fun i soln -> Hashtbl.replace table (fst panels.(i)) soln) solns;
  (if Eda_guard.Deadline.expired deadline then
     Eda_guard.Deadline.mark deadline ~phase:"sino");
  (match mode with
  | Min_area ->
      let n =
        Hashtbl.fold (fun _ s acc -> if s.feasible then acc else acc + 1) table 0
      in
      if n > 0 then Metrics.add (c_infeasible ()) n
  | Order_only -> ());
  { grid; keff; table; net_regions; sigs; sig_mu; cache; seed }

let find t key = Hashtbl.find_opt t.table key

let k_of t ~net key =
  match find t key with
  | None -> 0.0
  | Some s -> Option.value (Hashtbl.find_opt s.k net) ~default:0.0

let shields t key =
  match find t key with None -> 0 | Some s -> Layout.num_shields s.layout

let total_shields t =
  Hashtbl.fold (fun _ s acc -> acc + Layout.num_shields s.layout) t.table 0

let replace t key soln = Hashtbl.replace t.table key soln

let resolve ?(deadline = Eda_guard.Deadline.none) ?net ?pass t key inst =
  let t0 = Clock.now_ns () in
  let acc0 = Metrics.counter_value (c_moves_acc ())
  and rej0 = Metrics.counter_value (c_moves_rej ()) in
  Metrics.incr m_resolves;
  Eda_guard.Fault.point "refine.resolve";
  (* warm-start from the current layout when the instance is the same net
     set with changed bounds (the Phase III case): Solver.solve runs the
     deterministic repair kernel then, keeping the ordering and the other
     nets' couplings stable.  Either way the solve goes through the choke
     point with the flow seed, so a re-solve whose content matches any
     earlier solve — here or in Phase II — is a cache hit. *)
  let same_nets s =
    Instance.size s.inst = Instance.size inst
    && Array.for_all
         (fun i -> Instance.net_id s.inst i = Instance.net_id inst i)
         (Array.init (Instance.size inst) (fun i -> i))
  in
  let warm =
    match find t key with
    | Some s when same_nets s -> Some s.layout
    | Some _ | None -> None
  in
  let req =
    Solver.request ~mode:Solver.Min_area ~params:t.keff ~retries:0 ~deadline
      ~seed:t.seed ()
  in
  let result = Solver.solve ?cache:t.cache ?warm req inst in
  let layout = result.Solver.layout in
  let sg = result.Solver.signature in
  note_signature ~sigs:t.sigs ~mu:t.sig_mu sg;
  let soln = soln_of_layout ~keff:t.keff inst layout in
  if Journal.enabled () then begin
    let r, d = key in
    let time_us = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e3 in
    let moves =
      Metrics.counter_value (c_moves_acc ())
      - acc0
      + (Metrics.counter_value (c_moves_rej ()) - rej0)
    in
    Journal.record "panel.resolve"
      ([
         ("region", string_of_int r);
         ("dir", Dir.to_string d);
         ("sig", sg);
       ]
      @ cache_dim result.Solver.cache
      @ (match net with
        | Some n -> [ ("net", string_of_int n) ]
        | None -> [])
      @ match pass with Some p -> [ ("pass", p) ] | None -> [])
      ~data:
        [
          ("time_us", time_us);
          ("moves", float_of_int moves);
          ("shields", float_of_int (Layout.num_shields layout));
        ]
      ~outcome:(if soln.feasible then "feasible" else "infeasible")
  end;
  soln

let feasible t key =
  match find t key with None -> true | Some s -> s.feasible

let infeasible_panels t =
  Hashtbl.fold (fun key s acc -> if s.feasible then acc else key :: acc) t.table []
  |> List.sort compare

let degraded_panels t =
  Hashtbl.fold (fun key s acc -> if s.degraded then key :: acc else acc) t.table []
  |> List.sort compare

let apply_shields usage t =
  Hashtbl.iter
    (fun (r, d) s -> Usage.set_shields usage r d (Layout.num_shields s.layout))
    t.table

let iter t f = Hashtbl.iter f t.table

let regions_of_net t net =
  Option.value (Hashtbl.find_opt t.net_regions net) ~default:[]
