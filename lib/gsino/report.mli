(** Regeneration of the paper's evaluation (§4, Tables 1–3) on the
    synthetic IBM circuits, with the published numbers alongside for
    comparison.  See EXPERIMENTS.md for the recorded paper-vs-measured
    discussion. *)

(** All three flows on one circuit at one sensitivity rate. *)
type circuit_run = {
  profile : Eda_netlist.Generator.profile;
  rate : float;
  idno : Flow.result;
  isino : Flow.result;
  gsino : Flow.result;
}

type suite = { scale : float; seed : int; runs : circuit_run list }

(** Paper reference values (ibm01–ibm06). *)
module Paper : sig
  (** [violations name rate] — Table 1 percentage (e.g. 14.60). *)
  val violations : string -> float -> float option

  (** [avg_wl name] — Table 2 ID+NO average wire length, µm. *)
  val avg_wl : string -> float option

  (** [wl_overhead name rate] — Table 2 GSINO increase, %. *)
  val wl_overhead : string -> float -> float option

  (** [area_overhead name rate flow] — Table 3 increase, %;
      [flow] is [`Isino] or [`Gsino]. *)
  val area_overhead : string -> float -> [ `Isino | `Gsino ] -> float option
end

(** [run_circuit ?tech ?jobs ~scale ~seed profile rates] — prepare the
    circuit once (shared grid and conventional base routes) and run the
    three flows at each rate, on a [jobs]-domain pool (default 1).
    [cache]/[cache_dir] mirror {!Flow.Config} (panel-cache enable and
    persistence directory). *)
val run_circuit :
  ?tech:Tech.t ->
  ?jobs:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  scale:float ->
  seed:int ->
  Eda_netlist.Generator.profile ->
  float list ->
  circuit_run list

(** [run_suite ?tech ?profiles ?rates ?jobs ~scale ~seed ()] — the full
    evaluation (default: all six circuits, rates 0.3 and 0.5). *)
val run_suite :
  ?tech:Tech.t ->
  ?profiles:Eda_netlist.Generator.profile list ->
  ?rates:float list ->
  ?jobs:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  scale:float ->
  seed:int ->
  unit ->
  suite

(** The three tables, formatted like the paper's, with paper values in
    brackets. *)
val table1 : Format.formatter -> suite -> unit

val table2 : Format.formatter -> suite -> unit
val table3 : Format.formatter -> suite -> unit

(** Residual crosstalk violations of iSINO/GSINO (the paper's claim is
    zero for both) and Phase III statistics. *)
val violations_summary : Format.formatter -> suite -> unit

(** Self-audit: run {!Flow.check} on every flow of every run and print
    the error/warning counts, so the suite output always carries the
    static-analysis verdict alongside the paper tables. *)
val lint_summary : Format.formatter -> suite -> unit

(** Per-phase wall-clock time; the paper notes ID routing dominates (§5). *)
val timing_summary : Format.formatter -> suite -> unit

(** [metrics_summary fmt snap] — the per-phase observability table: every
    registered {!Eda_obs.Metrics} instrument, grouped by the flow phase
    its name prefix instruments (Phase I [budget]/[id_router]/[nc_router],
    Phase II [phase2]/[sino], Phase III [refine], plus the [flow] phase
    timers).  Printed next to {!lint_summary} by [gsino_run] and the
    bench so every evaluation carries its measurement substrate. *)
val metrics_summary : Format.formatter -> Eda_obs.Metrics.snapshot -> unit
