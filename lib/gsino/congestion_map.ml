module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage

type cell = {
  x : int;
  y : int;
  cap : int;
  nets : int;
  shields : int;
  util : float;
}

let cell usage dir x y =
  let grid = Usage.grid usage in
  let p = Eda_geom.Point.make x y in
  let r = Grid.region_id grid p in
  {
    x;
    y;
    cap = Grid.cap grid p dir;
    nets = Usage.nns usage r dir;
    shields = Usage.nss usage r dir;
    util = Usage.utilization usage r dir;
  }

let cells usage dir =
  let grid = Usage.grid usage in
  List.concat
    (List.init (Grid.height grid) (fun y ->
         List.init (Grid.width grid) (fun x -> cell usage dir x y)))

let over_capacity c = c.util > 1.0 +. 1e-9

let ramp = " .:-=+*#%@"

let glyph u =
  if u > 1.0 +. 1e-9 then '!'
  else begin
    let n = String.length ramp in
    let i = int_of_float (Float.round (u *. float_of_int (n - 1))) in
    ramp.[max 0 (min (n - 1) i)]
  end

let render_dir fmt usage dir =
  let grid = Usage.grid usage in
  Format.fprintf fmt "%s tracks (utilization; '!' = over capacity):@\n"
    (Dir.to_string dir);
  for y = Grid.height grid - 1 downto 0 do
    Format.fprintf fmt "  ";
    for x = 0 to Grid.width grid - 1 do
      Format.fprintf fmt "%c" (glyph (cell usage dir x y).util)
    done;
    Format.fprintf fmt "@\n"
  done

let render fmt usage =
  List.iter (render_dir fmt usage) Dir.all
