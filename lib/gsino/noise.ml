module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist

let sink_lsk ~grid ~gcell_um ~phase2 route ~source ~sink =
  let edges = Route.path_edges grid route ~source ~sink in
  List.fold_left
    (fun acc e ->
      let d = Grid.edge_dir grid e in
      let a, b = Grid.edge_ends grid e in
      let half p =
        let r = Grid.region_id grid p in
        0.5 *. gcell_um *. Phase2.k_of phase2 ~net:(Route.net route) (r, d)
      in
      acc +. half a +. half b)
    0.0 edges

let worst_sink ~grid ~gcell_um ~phase2 ~lsk_model ~net route =
  let worst = ref (net.Net.sinks.(0), 0.0, -1.0) in
  Array.iter
    (fun sink ->
      let lsk =
        try sink_lsk ~grid ~gcell_um ~phase2 route ~source:net.Net.source ~sink
        with Not_found -> invalid_arg "Noise.worst_sink: route does not reach sink"
      in
      let v = Eda_lsk.Lsk.noise lsk_model ~lsk in
      let _, _, wv = !worst in
      if v > wv then worst := (sink, lsk, v))
    net.Net.sinks;
  !worst

let net_worst ~grid ~gcell_um ~phase2 ~lsk_model ~net route =
  let _, lsk, v = worst_sink ~grid ~gcell_um ~phase2 ~lsk_model ~net route in
  (lsk, v)

type audit_entry = {
  net : int;
  lsk : float;
  noise_v : float;
  margin_v : float;
  violating : bool;
}

let audit ?pool ~grid ~gcell_um ~phase2 ~lsk_model ~netlist ~routes ~bound_v () =
  let nets = netlist.Netlist.nets in
  let entry i =
    let net = nets.(i) in
    let lsk, v = net_worst ~grid ~gcell_um ~phase2 ~lsk_model ~net routes.(i) in
    {
      net = i;
      lsk;
      noise_v = v;
      margin_v = bound_v -. v;
      violating = v > bound_v +. 1e-12;
    }
  in
  (* per-net noise walks are read-only over phase2/routes — fan out, then
     rebuild the historical descending-net-id list so the stable sort
     breaks noise ties exactly as the sequential code always has *)
  let entries =
    Eda_exec.parallel_map ?pool ~name:"noise.scan" (Array.length nets) entry
  in
  let out = Array.fold_left (fun acc e -> e :: acc) [] entries in
  List.sort (fun a b -> compare b.noise_v a.noise_v) out

let violations ?pool ~grid ~gcell_um ~phase2 ~lsk_model ~netlist ~routes ~bound_v () =
  audit ?pool ~grid ~gcell_um ~phase2 ~lsk_model ~netlist ~routes ~bound_v ()
  |> List.filter_map (fun e -> if e.violating then Some (e.net, e.noise_v) else None)
