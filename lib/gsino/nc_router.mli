(** Negotiated-congestion global router — the "more efficient global
    router ... integrated into the GSINO framework" the paper's §5 calls
    for.

    PathFinder-style: every net is decomposed into two-pin connections
    along its rectilinear MST and routed by Dijkstra over the region
    graph; congested (region, direction) track pools price themselves up
    (present-overuse and history terms), and overusing nets are ripped up
    and re-routed until the solution is overflow-free or the iteration
    budget runs out.

    The same shield models as {!Id_router} apply: with [Per_net], a
    region's predicted shield demand is added to its track usage, so the
    router reserves shielding area exactly as GSINO's Phase I does — only
    one to two orders of magnitude faster than iterative deletion on
    large instances (see the bench's router ablation). *)

(** Raised when a terminal of [net] sits in a [region] the Dijkstra
    search cannot reach from the net's partially-built tree — i.e. the
    region graph is disconnected.  Carries the offending net and region
    so callers can report a coded diagnostic ({!unreachable_diag})
    instead of dying on an opaque string. *)
exception Unreachable of { net : int; region : int }

(** The GSL0017 rendering of an {!Unreachable} failure, for CLIs that
    catch it and report through the lint channel. *)
val unreachable_diag : net:int -> region:int -> Eda_check.Diag.t

(** [route ~grid ~netlist ()] returns one route per net.

    @raise Unreachable when the grid's region graph is disconnected.

    @param shield_model as in {!Id_router} (default [No_shields])
    @param max_iters rip-up and re-route rounds (default 12)
    @param history_gain price added per round of sustained overuse
    (default 0.4)
    @param seed tie-breaking determinism (default 0)
    @param deadline checked between negotiation rounds (the initial
    routing always completes); expiry keeps the complete — possibly
    congested — routing and marks a ["route"] deadline hit *)
val route :
  grid:Eda_grid.Grid.t ->
  netlist:Eda_netlist.Netlist.t ->
  ?shield_model:Id_router.shield_model ->
  ?max_iters:int ->
  ?history_gain:float ->
  ?seed:int ->
  ?deadline:Eda_guard.Deadline.t ->
  unit ->
  Eda_grid.Route.t array
