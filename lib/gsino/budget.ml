module Rng = Eda_util.Rng
module Metrics = Eda_obs.Metrics
open Eda_netlist

type t = { lsk_budget : float; kth : float array }

(* Phase-I partition statistics: the Kth distribution is the paper's
   Formula (1)/(2) input, so record it per budgeting call *)
let m_partitions = Metrics.counter "budget.partitions"
let g_lsk = Metrics.gauge "budget.lsk_um_k"
let h_kth = Metrics.histogram "budget.kth"

let record t =
  Metrics.incr m_partitions;
  Metrics.set g_lsk t.lsk_budget;
  Array.iter (fun k -> Metrics.observe h_kth k) t.kth;
  if Eda_obs.Journal.enabled () then
    Array.iteri
      (fun i k ->
        Eda_obs.Journal.record "net.budget"
          [ ("net", string_of_int i) ]
          ~data:[ ("kth", k) ])
      t.kth;
  t

let uniform ~lsk ~noise_v ~gcell_um netlist =
  let budget = Eda_lsk.Lsk.lsk_bound lsk ~noise:noise_v in
  if budget <= 0.0 then invalid_arg "Budget.uniform: noise bound below table range";
  let kth =
    Array.map
      (fun net ->
        let far =
          Array.fold_left
            (fun acc sink -> max acc (Eda_geom.Point.manhattan net.Net.source sink))
            1 net.Net.sinks
        in
        budget /. (float_of_int far *. gcell_um))
      netlist.Netlist.nets
  in
  record { lsk_budget = budget; kth }

let route_aware ~lsk ~noise_v ~gcell_um ~grid ~routes netlist =
  let budget = Eda_lsk.Lsk.lsk_bound lsk ~noise:noise_v in
  if budget <= 0.0 then invalid_arg "Budget.route_aware: noise bound below table range";
  if Array.length routes <> Array.length netlist.Netlist.nets then
    invalid_arg "Budget.route_aware: route/net count mismatch";
  let kth =
    Array.mapi
      (fun i net ->
        let far =
          Array.fold_left
            (fun acc sink ->
              let l =
                try
                  Eda_grid.Route.path_length grid routes.(i)
                    ~source:net.Net.source ~sink
                with Not_found ->
                  invalid_arg "Budget.route_aware: route does not reach a sink"
              in
              max acc l)
            1 net.Net.sinks
        in
        budget /. (float_of_int far *. gcell_um))
      netlist.Netlist.nets
  in
  record { lsk_budget = budget; kth }

let kth t net =
  if net < 0 || net >= Array.length t.kth then invalid_arg "Budget.kth: bad net";
  t.kth.(net)

let sample_kth t rng = t.kth.(Rng.int rng (Array.length t.kth))

let pp fmt t =
  let sorted = Array.copy t.kth in
  Array.sort compare sorted;
  let n = Array.length sorted in
  Format.fprintf fmt "budget(LSK<=%.0f, Kth median %.2f, p10 %.2f, p90 %.2f)"
    t.lsk_budget
    sorted.(n / 2)
    sorted.(n / 10)
    sorted.(9 * n / 10)
