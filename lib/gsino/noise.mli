(** Post-layout RLC noise evaluation: the LSK sum of Equation (1) walked
    over a net's routed tree and the per-region SINO/NO layouts, mapped to
    volts through the LSK table — how crosstalk violations are counted in
    Tables 1 and how Phase III decides who to fix. *)

(** [sink_lsk ~grid ~gcell_um ~phase2 route ~source ~sink] — LSK along the
    tree path from source to sink: each path edge contributes half a gcell
    of length in each of its two regions, at that region's achieved
    K_i^j. *)
val sink_lsk :
  grid:Eda_grid.Grid.t ->
  gcell_um:float ->
  phase2:Phase2.t ->
  Eda_grid.Route.t ->
  source:Eda_geom.Point.t ->
  sink:Eda_geom.Point.t ->
  float

(** [net_worst ~grid ~gcell_um ~phase2 ~net route] — the worst sink's
    [(lsk, noise_v)] under the model [lsk_model]. *)
val net_worst :
  grid:Eda_grid.Grid.t ->
  gcell_um:float ->
  phase2:Phase2.t ->
  lsk_model:Eda_lsk.Lsk.t ->
  net:Eda_netlist.Net.t ->
  Eda_grid.Route.t ->
  float * float

(** [worst_sink ~grid ~gcell_um ~phase2 ~lsk_model ~net route] — the sink
    with the highest predicted noise, with its LSK and noise; Phase III
    tightens along the tree path to this sink. *)
val worst_sink :
  grid:Eda_grid.Grid.t ->
  gcell_um:float ->
  phase2:Phase2.t ->
  lsk_model:Eda_lsk.Lsk.t ->
  net:Eda_netlist.Net.t ->
  Eda_grid.Route.t ->
  Eda_geom.Point.t * float * float

(** One net's entry in the noise-margin audit: worst-sink LSK, its mapped
    noise, and the margin to the bound (negative when violating). *)
type audit_entry = {
  net : int;
  lsk : float;
  noise_v : float;
  margin_v : float;  (** [bound_v -. noise_v] *)
  violating : bool;
}

(** [audit ~netlist ~routes ... ~bound_v ()] — every net's worst-sink
    noise against the bound, sorted worst (highest noise) first.  The run
    report's noise table; {!violations} is the violating prefix.  Per-net
    evaluation is read-only, so [?pool] fans it out with an order-
    preserving (index-ordered) reduction — same list for any job count. *)
val audit :
  ?pool:Eda_exec.t ->
  grid:Eda_grid.Grid.t ->
  gcell_um:float ->
  phase2:Phase2.t ->
  lsk_model:Eda_lsk.Lsk.t ->
  netlist:Eda_netlist.Netlist.t ->
  routes:Eda_grid.Route.t array ->
  bound_v:float ->
  unit ->
  audit_entry list

(** [violations ~netlist ~routes ... ()] — ids of nets whose worst sink
    noise exceeds [bound_v], with their noise, sorted worst first. *)
val violations :
  ?pool:Eda_exec.t ->
  grid:Eda_grid.Grid.t ->
  gcell_um:float ->
  phase2:Phase2.t ->
  lsk_model:Eda_lsk.Lsk.t ->
  netlist:Eda_netlist.Netlist.t ->
  routes:Eda_grid.Route.t array ->
  bound_v:float ->
  unit ->
  (int * float) list
