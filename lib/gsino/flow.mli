(** End-to-end flows — the three approaches compared in §4:

    - [Id_no]  : conventional ID global routing (wire length + congestion
                 only) followed by net ordering per region.  No shields.
                 This baseline is *not* crosstalk-aware; its violations are
                 what Table 1 counts.
    - [Isino]  : the same conventional routing, followed by min-area SINO
                 per region (and local refinement to clear detour-induced
                 violations).  Shields appear wherever the router happened
                 to pack sensitive nets — the area blow-up of Table 3.
    - [Gsino]  : the paper's three-phase algorithm: crosstalk budgeting +
                 shield-aware ID routing (Formula 2 with the Formula-3
                 [Nss] term), SINO per region, and two-pass local
                 refinement.

    ID+NO and iSINO share the identical base routing (the paper runs both
    "without Nss in HU" for fairness); use {!base_routes} once and pass it
    to both runs. *)

type kind = Id_no | Isino | Gsino

val kind_name : kind -> string

(** Global-routing engine: the paper's iterative deletion, or the
    negotiated-congestion router of {!Nc_router} (§5's faster
    alternative).  Both accept the same shield models. *)
type router = Iterative_deletion | Negotiated

(** Crosstalk-budget partitioning for Phases II/III: the paper's uniform
    Manhattan split, or the route-aware variant of {!Budget.route_aware}
    (§5's "alternative budgeting approaches"). *)
type budgeting = Uniform | Route_aware

(** Everything a flow invocation is parameterized on, in one record —
    build one with [{ Config.default with kind = ...; jobs = ... }]
    instead of threading optional arguments through every layer.  Output
    sinks (trace/metrics/report files) stay CLI concerns and are not part
    of the flow configuration. *)
module Config : sig
  type t = {
    kind : kind;
    router : router;
    budgeting : budgeting;
    jobs : int;
        (** domains for the parallel sections (Phase II panels, Phase III
            noise scans, per-net candidate evaluation); [1] = fully
            sequential, byte-identical to the pre-parallel code.  Results
            are deterministic for any value — see DESIGN.md. *)
    seed : int;
        (** flow-level heuristic seed.  Per-panel RNG streams are derived
            from it together with the panel's canonical content signature
            (never its grid position), so identical panels get identical
            layouts — the property the panel cache relies on. *)
    cap_quantile : float;
        (** {!prepare}'s capacity clamp quantile (default 0.90) *)
    deadline_ms : int;
        (** wall-clock budget for the whole run; [<= 0] disables the
            deadline.  On expiry each phase keeps its best-so-far result
            (valid but less optimized) and is recorded in
            [result.deadline_hits] — the run completes degraded instead
            of raising. *)
    max_region_retries : int;
        (** reseeded re-solves of an infeasible min-area SINO panel
            before [on_infeasible] applies (default 2) *)
    on_infeasible : Eda_guard.Error.policy;
        (** what to do when a panel stays infeasible after the retries:
            [Degrade] (default) installs a conservative all-shield
            fallback and tags the panel; [Fail] raises
            [Eda_guard.Error.Error (Infeasible _)] *)
    audit : bool;
        (** run the {!Eda_analyze} static audit before routing (default
            [false]).  When the audit proves the instance infeasible
            (error-severity findings), [on_infeasible] decides: [Fail]
            raises a typed [Infeasible] before any routing work;
            [Degrade] logs the findings and proceeds.  Timing is recorded
            as [flow.phase_seconds{phase="audit"}]. *)
    cache : bool;
        (** memoize panel solves in a content-addressed
            {!Eda_sino.Cache} (default [true]).  Solutions are
            byte-identical with the cache on or off (DESIGN §10); turn it
            off only to measure its effect. *)
    cache_dir : string option;
        (** persist the panel cache in this directory (loaded before
            Phase II, saved after refinement), sharing solved panels
            across runs — the CLI's [--panel-cache DIR] /
            [GSINO_PANEL_CACHE].  [None] (default) keeps the cache
            in-process only.  Ignored when [cache] is [false]. *)
  }

  (** [Gsino], iterative deletion, uniform budgeting, [jobs = 1],
      [seed = 7], [cap_quantile = 0.90], no deadline, 2 region retries,
      [Degrade] on infeasibility, no audit pre-pass, in-process panel
      cache enabled with no persistence directory. *)
  val default : t
end

type result = {
  kind : kind;
  netlist : Eda_netlist.Netlist.t;
  grid : Eda_grid.Grid.t;
  sensitivity : Eda_netlist.Sensitivity.t;
  routes : Eda_grid.Route.t array;
  budget : Budget.t;
  phase2 : Phase2.t;
  usage : Eda_grid.Usage.t;
  refine_stats : Refine.stats option;
  violations : (int * float) list;  (** nets over the noise bound, worst first *)
  avg_wl_um : float;
  total_wl_um : float;
  area : float * float * float;  (** max row, max col, product (µm, µm, µm²) *)
  shields : int;
  route_s : float;  (** wall-clock seconds in global routing *)
  sino_s : float;  (** wall-clock seconds in Phase II *)
  refine_s : float;  (** wall-clock seconds in Phase III *)
  deadline_hits : string list;
      (** phases the deadline truncated (["route"] / ["sino"] /
          ["refine"]), in first-hit order; [[]] when the run completed
          inside its budget (or had none) *)
}

(** [base_routes ?router tech grid netlist] — conventional routing, no
    shield term; shared by ID+NO and iSINO. *)
val base_routes :
  ?router:router ->
  ?pool:Eda_exec.t ->
  ?deadline:Eda_guard.Deadline.t ->
  Tech.t ->
  Eda_grid.Grid.t ->
  Eda_netlist.Netlist.t ->
  Eda_grid.Route.t array

(** [demand_quantile usage grid q dir] — the [q]-quantile ([0..1]) of
    per-region net-track demand in direction [dir]; 0 on a grid with no
    regions.  {!prepare} clamps capacities at this value. *)
val demand_quantile :
  Eda_grid.Usage.t -> Eda_grid.Grid.t -> float -> Eda_grid.Dir.t -> int

(** [prepare ?config tech netlist] — the shared experimental setup: route
    the conventional (no-shield) flow on auto-provisioned capacities,
    then tighten every region's per-direction capacity to that routing's
    peak demand.  This mirrors the paper's setting where the placement
    exactly accommodates conventional routing (ID+NO area = placement
    area in Table 3) and all of iSINO's/GSINO's area overhead comes from
    shields.  Uses [config]'s [router], [cap_quantile] and [jobs]
    (default {!Config.default}); [pool] reuses a caller-owned domain pool
    instead of spawning one. *)
val prepare :
  ?config:Config.t ->
  ?pool:Eda_exec.t ->
  Tech.t ->
  Eda_netlist.Netlist.t ->
  Eda_grid.Grid.t * Eda_grid.Route.t array

(** [run ?grid ?base config tech ~sensitivity netlist] executes the flow
    described by [config].  Pass the [grid] and [base] from {!prepare} so
    the three approaches share one setup ([base] is ignored by [Gsino],
    which re-routes shield-aware).  A [config.jobs]-domain pool lives for
    the duration of the call.

    The remaining optionals make the flow reentrant for a long-lived
    server, which owns these resources across many runs:
    - [pool] reuses a caller-owned {!Eda_exec} pool ([config.jobs] is
      then ignored for pool sizing);
    - [cache] uses a caller-owned panel cache, staying warm across runs;
      its load/save lifecycle belongs to the caller ([config.cache_dir]
      is not read or written; [config.cache = false] still disables
      memoization for the run);
    - [deadline] supplies an externally armed (possibly cancellable)
      deadline instead of starting one from [config.deadline_ms] —
      cancellation degrades the run at the next checkpoint exactly like
      time expiry. *)
val run :
  ?grid:Eda_grid.Grid.t ->
  ?base:Eda_grid.Route.t array ->
  ?pool:Eda_exec.t ->
  ?cache:Eda_sino.Cache.t ->
  ?deadline:Eda_guard.Deadline.t ->
  Config.t ->
  Tech.t ->
  sensitivity:Eda_netlist.Sensitivity.t ->
  Eda_netlist.Netlist.t ->
  result

(** [degraded r] — did resilience machinery alter this result?  True when
    the deadline truncated a phase or any SINO panel took the fallback
    path.  A degraded result is still structurally valid (routes
    connected, accounting consistent) — the lint rules GSL0018/GSL0019
    describe what was given up. *)
val degraded : result -> bool

(** [check ?tech r] — static analysis of the finished flow: run every
    {!Eda_check.Checker} invariant rule against the solution and return
    the coded findings, sorted errors-first.  [tech] (default
    {!Tech.default}) supplies the LSK table and noise bound the run used.
    A healthy refined flow yields no [Error]-severity findings; the
    [gsino_lint] binary turns that into an exit code. *)
val check : ?tech:Tech.t -> result -> Eda_check.Diag.t list

(** [analyze_config tech] — the {!Eda_analyze.Analyze.config} matching a
    flow run under [tech]: its coupling model, LSK table, noise bound and
    the default Formula-3 coefficients.  Shared by the audit pre-pass and
    the [gsino_audit] CLI so both judge the instance the flow will see. *)
val analyze_config : Tech.t -> Eda_analyze.Analyze.config

(** [violation_count r] / [violation_pct r] — Table 1's metrics. *)
val violation_count : result -> int

val violation_pct : result -> float

val pp_summary : Format.formatter -> result -> unit
