module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Instance = Eda_sino.Instance
module Layout = Eda_sino.Layout
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace

(* Phase III telemetry — the paper's claim that refinement touches few
   nets is checkable from these counters *)
let m_ripup_rounds = Metrics.counter "refine.ripup_rounds"
let m_p1_fixed = Metrics.counter "refine.pass1_nets_fixed"
let m_p2_removed = Metrics.counter "refine.pass2_shields_removed"
let m_resolves = Metrics.counter "refine.sino_resolves"
let m_reordered = Metrics.counter "refine.nets_reordered"
let g_residual = Metrics.gauge "refine.residual_violations"

type stats = {
  pass1_nets_fixed : int;
  pass1_resolves : int;
  pass2_shields_removed : int;
  pass2_resolves : int;
  residual_violations : int;
}

let local_index inst net =
  let rec find i =
    if i >= Instance.size inst then None
    else if Instance.net_id inst i = net then Some i
    else find (i + 1)
  in
  find 0

let sync_shields usage key soln =
  let r, d = key in
  Usage.set_shields usage r d (Layout.num_shields soln.Phase2.layout)

(* Length of a net's segment in a given (region, dir), µm. *)
let segment_length ~grid ~gcell_um route (r, d) =
  match List.assoc_opt r (Route.segments grid route d) with
  | Some l -> l *. gcell_um
  | None -> 0.0

let net_noise ~grid ~gcell_um ~phase2 ~lsk_model net route =
  snd (Noise.net_worst ~grid ~gcell_um ~phase2 ~lsk_model ~net route)

(* ---------------- Pass 1: eliminate violations --------------------- *)

let pass1 ?pool ?(deadline = Eda_guard.Deadline.none) ~grid ~netlist ~routes
    ~phase2 ~usage ~lsk_model ~bound_v () =
  let gcell_um = Usage.gcell_um usage in
  let fixes = ref 0 and resolves = ref 0 in
  let rounds = ref 0 in
  let given_up : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let continue_outer = ref true in
  (* checkpoint: each round rip-ups exactly one net and re-solves its
     regions through Phase2.replace, so the table is consistent between
     rounds; stopping early just leaves more residual violations *)
  while !continue_outer && not (Eda_guard.Deadline.check deadline ~phase:"refine")
  do
    Metrics.incr m_ripup_rounds;
    incr rounds;
    Eda_obs.Progress.tick ~items_done:!rounds ();
    (* the full-netlist violation scan each round is the expensive part
       of this pass; it is read-only, so it fans out over the pool while
       the tighten-and-resolve below stays sequential *)
    let violating =
      Noise.violations ?pool ~grid ~gcell_um ~phase2 ~lsk_model ~netlist ~routes
        ~bound_v ()
      |> List.filter (fun (i, _) -> not (Hashtbl.mem given_up i))
    in
    match violating with
    | [] -> continue_outer := false
    | (i, _) :: _ ->
        let net = netlist.Netlist.nets.(i) in
        let route = routes.(i) in
        let resolves0 = !resolves in
        let lsk_budget = Eda_lsk.Lsk.lsk_bound lsk_model ~noise:bound_v in
        let n_keys = List.length (Phase2.regions_of_net phase2 i) in
        let inner_guard = ref (4 * max 10 n_keys) in
        let fixed = ref false and exhausted = ref false in
        while
          (not !fixed) && (not !exhausted) && !inner_guard > 0
          && not (Eda_guard.Deadline.expired deadline)
        do
          decr inner_guard;
          (* least congested region on the net's route whose bound for
             this net still has room to tighten.  The Kth reduction is
             sized from the net's remaining LSK excess (the continuous
             counterpart of the paper's one-shield-at-a-time Formula-(3)
             step; see DESIGN.md). *)
          let sink, lsk_now, _ =
            Noise.worst_sink ~grid ~gcell_um ~phase2 ~lsk_model ~net route
          in
          let excess = lsk_now -. lsk_budget in
          if excess <= 0.0 then fixed := true
          else begin
            (* only the regions on the path to the worst sink contribute
               to its LSK; tightening elsewhere cannot help *)
            let keys =
              Route.path_edges grid route ~source:net.Net.source ~sink
              |> List.concat_map (fun e ->
                     let d = Grid.edge_dir grid e in
                     let a, b = Grid.edge_ends grid e in
                     [ (Grid.region_id grid a, d); (Grid.region_id grid b, d) ])
              |> List.sort_uniq compare
              |> List.sort (fun ((ra, da) as ka) ((rb, db) as kb) ->
                     match
                       compare
                         (Usage.utilization usage ra da)
                         (Usage.utilization usage rb db)
                     with
                     | 0 -> compare ka kb
                     | c -> c)
            in
            let rec try_keys = function
              | [] -> exhausted := true
              | key :: rest -> (
                  match Phase2.find phase2 key with
                  | None -> try_keys rest
                  | Some soln -> (
                      match local_index soln.Phase2.inst i with
                      | None -> try_keys rest
                      | Some li ->
                          let k_now =
                            Layout.k_of soln.Phase2.layout (Phase2.keff phase2) li
                          in
                          let len = segment_length ~grid ~gcell_um routes.(i) key in
                          if len <= 0.0 || k_now < 0.025 then try_keys rest
                          else begin
                            (* reduce by what the net still needs, but at
                               most one shield's worth per step (a shield
                               damps residual coupling by shield_block) *)
                            let dk = 1.15 *. excess /. len in
                            let one_shield =
                              k_now *. (1.0 -. (Phase2.keff phase2).Eda_sino.Keff.shield_block)
                            in
                            let target =
                              Float.max 0.02 (k_now -. Float.min dk one_shield)
                            in
                            let inst' = Instance.with_kth soln.Phase2.inst li target in
                            let soln' =
                              Phase2.resolve ~deadline ~net:i ~pass:"pass1"
                                phase2 key inst'
                            in
                            incr resolves;
                            Metrics.incr m_resolves;
                            Metrics.add m_reordered (Instance.size inst');
                            Phase2.replace phase2 key soln';
                            sync_shields usage key soln';
                            if
                              net_noise ~grid ~gcell_um ~phase2 ~lsk_model net route
                              <= bound_v +. 1e-12
                            then fixed := true
                          end))
            in
            try_keys keys
          end
        done;
        let ok =
          net_noise ~grid ~gcell_um ~phase2 ~lsk_model net route
          <= bound_v +. 1e-12
        in
        if ok then incr fixes else Hashtbl.replace given_up i ();
        Eda_obs.Journal.record "net.refine"
          [ ("net", string_of_int i); ("pass", "pass1") ]
          ~data:[ ("resolves", float_of_int (!resolves - resolves0)) ]
          ~outcome:(if ok then "fixed" else "gave_up")
  done;
  (!fixes, !resolves)

(* ---------------- Pass 2: reduce congestion ------------------------ *)

let pass2 ?pool ?(deadline = Eda_guard.Deadline.none) ~grid ~netlist ~routes
    ~phase2 ~usage ~lsk_model ~bound_v () =
  let gcell_um = Usage.gcell_um usage in
  let removed = ref 0 and resolves = ref 0 in
  let lsk_budget = Eda_lsk.Lsk.lsk_bound lsk_model ~noise:bound_v in
  let attempted : (Phase2.key, unit) Hashtbl.t = Hashtbl.create 64 in
  let keys_by_congestion () =
    let acc = ref [] in
    Phase2.iter phase2 (fun key soln ->
        if Layout.num_shields soln.Phase2.layout > 0 && not (Hashtbl.mem attempted key)
        then acc := key :: !acc);
    (* [acc] comes out of a hash table, so break utilization ties on the
       key itself — the pick must not depend on table insertion order *)
    List.sort
      (fun ((ra, da) as ka) ((rb, db) as kb) ->
        match
          compare (Usage.utilization usage rb db) (Usage.utilization usage ra da)
        with
        | 0 -> compare ka kb
        | c -> c)
      !acc
  in
  let n_keys = ref 0 in
  Phase2.iter phase2 (fun _ _ -> incr n_keys);
  let resolve_budget = 25 * max 1 !n_keys in
  let progress = ref true in
  (* checkpoint: pass 2 is pure optimisation (shield removal with a
     revert-on-violation guard), so any round boundary is a safe stop *)
  while
    !progress && !resolves < resolve_budget
    && not (Eda_guard.Deadline.check deadline ~phase:"refine")
  do
    progress := false;
    match keys_by_congestion () with
    | [] -> ()
    | key :: _ -> (
        Hashtbl.replace attempted key ();
        match Phase2.find phase2 key with
        | None -> ()
        | Some soln ->
            let inst = soln.Phase2.inst in
            let n = Instance.size inst in
            (* per-net LSK slack, converted into a K allowance here *)
            let slack li =
              let gid = Instance.net_id inst li in
              let net = netlist.Netlist.nets.(gid) in
              let lsk_worst, _ =
                Noise.net_worst ~grid ~gcell_um ~phase2 ~lsk_model ~net
                  routes.(gid)
              in
              let len = segment_length ~grid ~gcell_um routes.(gid) key in
              if len <= 0.0 then 0.0
              else Float.max 0.0 ((lsk_budget -. lsk_worst) /. len)
            in
            let order =
              List.sort
                (fun (_, a) (_, b) -> compare b a)
                (List.init n (fun li -> (li, slack li)))
            in
            let shields_before = Layout.num_shields soln.Phase2.layout in
            (* relax bounds cumulatively, largest slack first, re-running
               SINO after each grant until a shield disappears *)
            let rec relax inst_cur = function
              | [] -> None
              | (li, s) :: rest ->
                  if s <= 1e-9 then None
                  else begin
                    let k_now =
                      Layout.k_of soln.Phase2.layout (Phase2.keff phase2) li
                    in
                    let new_kth =
                      Float.max (Instance.kth inst_cur li) (k_now +. (0.9 *. s))
                    in
                    let inst' = Instance.with_kth inst_cur li new_kth in
                    let soln' =
                      Phase2.resolve ~deadline
                        ~net:(Instance.net_id inst_cur li)
                        ~pass:"pass2" phase2 key inst'
                    in
                    incr resolves;
                    Metrics.incr m_resolves;
                    Metrics.add m_reordered (Instance.size inst');
                    if Layout.num_shields soln'.Phase2.layout < shields_before then
                      Some (inst', soln')
                    else relax inst' rest
                  end
            in
            (match relax inst order with
            | None -> ()
            | Some (_, soln') ->
                (* accept only if no net in this region starts violating *)
                let old = soln in
                Phase2.replace phase2 key soln';
                sync_shields usage key soln';
                let ok =
                  Eda_exec.parallel_map ?pool ~name:"refine.region_check" n
                    (fun li ->
                      let gid = Instance.net_id inst li in
                      net_noise ~grid ~gcell_um ~phase2 ~lsk_model
                        netlist.Netlist.nets.(gid) routes.(gid)
                      <= bound_v +. 1e-12)
                  |> Array.for_all (fun b -> b)
                in
                if ok then begin
                  removed :=
                    !removed
                    + (shields_before - Layout.num_shields soln'.Phase2.layout);
                  progress := true;
                  Hashtbl.remove attempted key
                end
                else begin
                  Phase2.replace phase2 key old;
                  sync_shields usage key old
                end);
            (* even without an accept, other regions may still improve *)
            if keys_by_congestion () <> [] then progress := true)
  done;
  (!removed, !resolves)

let run ~grid ~netlist ~routes ~phase2 ~usage ~lsk_model ~bound_v
    ?(deadline = Eda_guard.Deadline.none) ?pool () =
  let gcell_um = Usage.gcell_um usage in
  let p1_fixed, p1_res =
    Trace.span "refine.pass1" (fun () ->
        pass1 ?pool ~deadline ~grid ~netlist ~routes ~phase2 ~usage ~lsk_model
          ~bound_v ())
  in
  let p2_removed, p2_res =
    Trace.span "refine.pass2" (fun () ->
        pass2 ?pool ~deadline ~grid ~netlist ~routes ~phase2 ~usage ~lsk_model
          ~bound_v ())
  in
  let residual =
    List.length
      (Noise.violations ?pool ~grid ~gcell_um ~phase2 ~lsk_model ~netlist ~routes
         ~bound_v ())
  in
  Metrics.add m_p1_fixed p1_fixed;
  Metrics.add m_p2_removed p2_removed;
  Metrics.set g_residual (float_of_int residual);
  {
    pass1_nets_fixed = p1_fixed;
    pass1_resolves = p1_res;
    pass2_shields_removed = p2_removed;
    pass2_resolves = p2_res;
    residual_violations = residual;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "phase3: pass1 fixed %d nets (%d SINO re-runs); pass2 removed %d shields (%d re-runs); residual violations %d"
    s.pass1_nets_fixed s.pass1_resolves s.pass2_shields_removed s.pass2_resolves
    s.residual_violations
