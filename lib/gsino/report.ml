module Generator = Eda_netlist.Generator
module Sensitivity = Eda_netlist.Sensitivity
module Netlist = Eda_netlist.Netlist

type circuit_run = {
  profile : Generator.profile;
  rate : float;
  idno : Flow.result;
  isino : Flow.result;
  gsino : Flow.result;
}

type suite = { scale : float; seed : int; runs : circuit_run list }

module Paper = struct
  (* Table 1: percentages of crosstalk-violating nets in ID+NO. *)
  let violations_tbl =
    [
      ("ibm01", (14.60, 19.78));
      ("ibm02", (16.87, 22.16));
      ("ibm03", (18.85, 23.20));
      ("ibm04", (16.42, 18.92));
      ("ibm05", (14.71, 24.07));
      ("ibm06", (13.96, 19.11));
    ]

  (* Table 2: ID+NO average wire length (µm) and GSINO increase (%). *)
  let wl_tbl =
    [
      ("ibm01", (639., 6.89, 10.49));
      ("ibm02", (724., 9.94, 14.50));
      ("ibm03", (647., 10.82, 16.38));
      ("ibm04", (748., 8.96, 16.04));
      ("ibm05", (695., 6.62, 12.81));
      ("ibm06", (769., 7.54, 11.83));
    ]

  (* Table 3: area increases (%) over ID+NO. *)
  let area_tbl =
    [
      ("ibm01", ((17.04, 6.04), (25.53, 6.51)));
      ("ibm02", ((17.99, 5.74), (25.39, 9.54)));
      ("ibm03", ((17.18, 6.00), (23.82, 9.77)));
      ("ibm04", ((16.78, 7.31), (22.47, 7.67)));
      ("ibm05", ((19.73, 8.74), (23.00, 7.75)));
      ("ibm06", ((17.09, 8.26), (22.46, 11.00)));
    ]

  let is30 rate = Float.abs (rate -. 0.30) < 0.01
  let is50 rate = Float.abs (rate -. 0.50) < 0.01

  let violations name rate =
    match (List.assoc_opt name violations_tbl, is30 rate, is50 rate) with
    | Some (v, _), true, _ -> Some v
    | Some (_, v), _, true -> Some v
    | _ -> None

  let avg_wl name = Option.map (fun (w, _, _) -> w) (List.assoc_opt name wl_tbl)

  let wl_overhead name rate =
    match (List.assoc_opt name wl_tbl, is30 rate, is50 rate) with
    | Some (_, v, _), true, _ -> Some v
    | Some (_, _, v), _, true -> Some v
    | _ -> None

  let area_overhead name rate flow =
    match (List.assoc_opt name area_tbl, is30 rate, is50 rate) with
    | Some ((i, g), _), true, _ -> Some (match flow with `Isino -> i | `Gsino -> g)
    | Some (_, (i, g)), _, true -> Some (match flow with `Isino -> i | `Gsino -> g)
    | _ -> None
end

let run_circuit ?(tech = Tech.default) ?(jobs = 1)
    ?(cache = Flow.Config.default.Flow.Config.cache) ?cache_dir ~scale ~seed
    profile rates =
  let netlist =
    Generator.generate ~gcell_um:tech.Tech.gcell_um ~scale ~seed profile
  in
  let config kind =
    { Flow.Config.default with Flow.Config.kind; seed; jobs; cache; cache_dir }
  in
  let grid, base = Flow.prepare ~config:(config Flow.Id_no) tech netlist in
  List.map
    (fun rate ->
      let sensitivity =
        Sensitivity.make ~seed:(seed lxor Hashtbl.hash (profile.Generator.name, rate)) ~rate
      in
      let idno = Flow.run ~grid ~base (config Flow.Id_no) tech ~sensitivity netlist in
      let isino = Flow.run ~grid ~base (config Flow.Isino) tech ~sensitivity netlist in
      let gsino = Flow.run ~grid (config Flow.Gsino) tech ~sensitivity netlist in
      { profile; rate; idno; isino; gsino })
    rates

let run_suite ?(tech = Tech.default) ?(profiles = Generator.all_ibm)
    ?(rates = [ 0.30; 0.50 ]) ?(jobs = 1)
    ?(cache = Flow.Config.default.Flow.Config.cache) ?cache_dir ~scale ~seed ()
    =
  let runs =
    List.concat_map
      (fun p -> run_circuit ~tech ~jobs ~cache ?cache_dir ~scale ~seed p rates)
      profiles
  in
  { scale; seed; runs }

let by_rate suite rate =
  List.filter (fun r -> Float.abs (r.rate -. rate) < 0.01) suite.runs

let rates_of suite =
  List.sort_uniq compare (List.map (fun r -> r.rate) suite.runs)

let pct_paper = function
  | Some v -> Printf.sprintf "[paper %5.2f%%]" v
  | None -> "[paper   n/a ]"

let table1 fmt suite =
  Format.fprintf fmt
    "Table 1: crosstalk-violating nets in ID+NO solutions (scale %.2f)@\n"
    suite.scale;
  List.iter
    (fun rate ->
      Format.fprintf fmt "  sensitivity rate = %.0f%%@\n" (rate *. 100.);
      List.iter
        (fun r ->
          Format.fprintf fmt "    %-6s %6d (%5.2f%%)  %s@\n"
            r.profile.Generator.name
            (Flow.violation_count r.idno)
            (Flow.violation_pct r.idno)
            (pct_paper (Paper.violations r.profile.Generator.name rate)))
        (by_rate suite rate))
    (rates_of suite)

let table2 fmt suite =
  Format.fprintf fmt
    "Table 2: average wire lengths (um) of ID+NO and GSINO (scale %.2f)@\n"
    suite.scale;
  List.iter
    (fun rate ->
      Format.fprintf fmt "  sensitivity rate = %.0f%%@\n" (rate *. 100.);
      List.iter
        (fun r ->
          let base = r.idno.Flow.avg_wl_um in
          let gs = r.gsino.Flow.avg_wl_um in
          let over = if base > 0. then (gs -. base) /. base *. 100. else 0. in
          Format.fprintf fmt
            "    %-6s ID+NO %4.0f [paper %4.0f]   GSINO %4.0f (%+5.2f%%) %s@\n"
            r.profile.Generator.name base
            (Option.value (Paper.avg_wl r.profile.Generator.name) ~default:0.)
            gs over
            (pct_paper (Paper.wl_overhead r.profile.Generator.name rate)))
        (by_rate suite rate))
    (rates_of suite)

let table3 fmt suite =
  Format.fprintf fmt
    "Table 3: routing areas (um x um) of ID+NO, iSINO and GSINO (scale %.2f)@\n"
    suite.scale;
  List.iter
    (fun rate ->
      Format.fprintf fmt "  sensitivity rate = %.0f%%@\n" (rate *. 100.);
      List.iter
        (fun r ->
          let dims res =
            let row, col, _ = res.Flow.area in
            Printf.sprintf "%.0fx%.0f" row col
          in
          let over res =
            let _, _, a0 = r.idno.Flow.area in
            let _, _, a = res.Flow.area in
            (a -. a0) /. a0 *. 100.
          in
          Format.fprintf fmt
            "    %-6s ID+NO %-11s iSINO %-11s (%+6.2f%%) %s  GSINO %-11s (%+6.2f%%) %s@\n"
            r.profile.Generator.name (dims r.idno) (dims r.isino) (over r.isino)
            (pct_paper (Paper.area_overhead r.profile.Generator.name rate `Isino))
            (dims r.gsino) (over r.gsino)
            (pct_paper (Paper.area_overhead r.profile.Generator.name rate `Gsino)))
        (by_rate suite rate))
    (rates_of suite)

let violations_summary fmt suite =
  Format.fprintf fmt
    "Residual violations after SINO + refinement (paper: 0 for both)@\n";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-6s rate %.0f%%: iSINO %d, GSINO %d"
        r.profile.Generator.name (r.rate *. 100.)
        (Flow.violation_count r.isino) (Flow.violation_count r.gsino);
      (match r.gsino.Flow.refine_stats with
      | Some s ->
          Format.fprintf fmt
            "  (GSINO phase3: %d nets fixed, %d shields removed)"
            s.Refine.pass1_nets_fixed s.Refine.pass2_shields_removed
      | None -> ());
      Format.fprintf fmt "@\n")
    suite.runs

let lint_summary fmt suite =
  Format.fprintf fmt
    "Lint: coded diagnostics per flow (Eda_check rules GSL0001-..)@\n";
  List.iter
    (fun r ->
      let cell res =
        let diags = Flow.check res in
        Printf.sprintf "%dE/%dW"
          (Eda_check.Diag.count Eda_check.Diag.Error diags)
          (Eda_check.Diag.count Eda_check.Diag.Warning diags)
      in
      Format.fprintf fmt "  %-6s rate %.0f%%: ID+NO %s  iSINO %s  GSINO %s@\n"
        r.profile.Generator.name (r.rate *. 100.) (cell r.idno) (cell r.isino)
        (cell r.gsino))
    suite.runs

let timing_summary fmt suite =
  Format.fprintf fmt
    "Wall-clock time per phase, seconds (paper: ID routing dominates)@\n";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %-6s rate %.0f%%: GSINO route %.1f | sino %.1f | refine %.1f@\n"
        r.profile.Generator.name (r.rate *. 100.) r.gsino.Flow.route_s
        r.gsino.Flow.sino_s r.gsino.Flow.refine_s)
    suite.runs

let metrics_summary fmt snap =
  let module M = Eda_obs.Metrics in
  (* metric name prefixes grouped by the flow phase they instrument *)
  let groups =
    [
      ("phase I: routing + budgeting", [ "budget"; "id_router"; "nc_router" ]);
      ("phase II: SINO", [ "phase2"; "sino" ]);
      ("phase III: refinement", [ "refine" ]);
      ("flow", [ "flow" ]);
      ("resilience", [ "guard" ]);
    ]
  in
  let prefix name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let render_labels = function
    | [] -> ""
    | l ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
        ^ "}"
  in
  Format.fprintf fmt "Per-phase metrics (Eda_obs registry)@\n";
  let entries = M.entries snap in
  let known = List.concat_map snd groups in
  let groups =
    groups
    @ [
        ( "other",
          List.sort_uniq compare
            (List.filter_map
               (fun (n, _, _) ->
                 let p = prefix n in
                 if List.mem p known then None else Some p)
               entries) );
      ]
  in
  List.iter
    (fun (title, prefixes) ->
      let es =
        List.filter (fun (n, _, _) -> List.mem (prefix n) prefixes) entries
      in
      if es <> [] then begin
        Format.fprintf fmt "  [%s]@\n" title;
        List.iter
          (fun (n, labels, v) ->
            let name = n ^ render_labels labels in
            match v with
            | M.Counter c -> Format.fprintf fmt "    %-36s %d@\n" name c
            | M.Gauge g -> Format.fprintf fmt "    %-36s %.3f@\n" name g
            | M.Histogram h ->
                (* approximate quantiles from the log2 buckets — the
                   shape of the distribution, not its raw bucket dump *)
                Format.fprintf fmt
                  "    %-36s n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f@\n"
                  name h.M.count (M.histogram_mean h) (M.quantile h 0.50)
                  (M.quantile h 0.95) (M.quantile h 0.99)
                  (if h.M.count = 0 then 0.0 else h.M.max))
          es
      end)
    groups
