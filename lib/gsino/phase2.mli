(** Phase II: solve SINO (or plain net ordering for the ID+NO baseline)
    inside every routing region and direction, under the partitioned Kth
    bounds.  The result stores, per (region, direction), the instance, its
    layout, and each net's achieved coupling K_i^j — the ingredients of the
    LSK sum and of Phase III's refinements. *)

type key = int * Eda_grid.Dir.t

type soln = {
  inst : Eda_sino.Instance.t;
  layout : Eda_sino.Layout.t;
  k : (int, float) Hashtbl.t;  (** global net id → K_i in this region *)
  feasible : bool;
      (** [Layout.feasible layout keff] — computed once at construction
          so callers (and the checker) need not remember to ask *)
  degraded : bool;
      (** the solver could not reach feasibility (retries exhausted →
          fallback layout, or the deadline expired mid-solve) *)
}

type t

type mode = Order_only | Min_area

(** [solve ~grid ~netlist ~routes ~kth ~sensitivity ~keff ~mode ~seed ()]
    builds and solves every non-empty region instance.  [kth net] supplies
    the per-net bound from Phase I budgeting.  Every panel goes through
    the {!Eda_sino.Solver.solve} choke point, which derives its RNG
    stream from the panel's canonical signature (+ flow seed + attempt),
    never from the panel's grid position — identical panels anywhere in
    the grid get identical layouts, and with [?pool] panels solve in
    parallel with results identical to the sequential order.

    [?cache] memoizes [Min_area] solves across panels (and, via
    [--panel-cache], across runs); cached results are byte-identical to
    re-solved ones (DESIGN §10), and every [panel.solve] journal event
    carries the outcome as its ["cache"] dimension.

    A [Min_area] panel that comes back infeasible is retried up to
    [retries] times with fresh content-derived RNG streams inside the
    solver; if still infeasible, [on_infeasible] decides: [Fail] raises
    [Eda_guard.Error.Error (Infeasible _)], [Degrade] installs a
    conservative all-shield fallback and tags the panel degraded
    (bumping [guard.retries] / [guard.fallbacks] /
    [phase2.infeasible_panels]).  An expired [deadline] stops both the
    per-panel improvement stages and the retry ladder, keeping
    best-so-far results.  [phase2.solve] is a fault-injection site. *)
val solve :
  grid:Eda_grid.Grid.t ->
  netlist:Eda_netlist.Netlist.t ->
  routes:Eda_grid.Route.t array ->
  kth:(int -> float) ->
  sensitivity:Eda_netlist.Sensitivity.t ->
  keff:Eda_sino.Keff.params ->
  mode:mode ->
  seed:int ->
  ?deadline:Eda_guard.Deadline.t ->
  ?retries:int ->
  ?on_infeasible:Eda_guard.Error.policy ->
  ?cache:Eda_sino.Cache.t ->
  ?pool:Eda_exec.t ->
  unit ->
  t

val grid : t -> Eda_grid.Grid.t
val keff : t -> Eda_sino.Keff.params

(** [find t key] — the solved region, if any net crosses it. *)
val find : t -> key -> soln option

(** [k_of t ~net key] — K of [net] in that region, 0. if the net does not
    cross it. *)
val k_of : t -> net:int -> key -> float

(** [shields t key] — shield tracks used there. *)
val shields : t -> key -> int

val total_shields : t -> int

(** [replace t key soln] — Phase III substitutes refined solutions. *)
val replace : t -> key -> soln -> unit

(** [resolve t key inst] — re-run min-area SINO on a (possibly
    re-bounded) instance and build the [soln] record.  When the stored
    panel covers the same net set, its layout warm-starts the solver's
    deterministic repair kernel; either way the result is a pure
    function of the instance content and the flow seed, so refinement
    needs no RNG of its own (and benefits from the panel cache when one
    was given to {!solve}).  [refine.resolve] is a fault-injection site;
    an expired [deadline] degrades to the cheap repair stages only.
    [?net] and [?pass] attribute the resulting [panel.resolve] journal
    event to the net and refinement pass that asked for the re-solve. *)
val resolve :
  ?deadline:Eda_guard.Deadline.t ->
  ?net:int ->
  ?pass:string ->
  t ->
  key ->
  Eda_sino.Instance.t ->
  soln

(** [feasible t key] — the stored panel's feasibility; [true] for regions
    no net crosses. *)
val feasible : t -> key -> bool

(** Keys whose stored solution violates its bounds (sorted).  For the
    [Order_only] baseline this is expected and merely descriptive. *)
val infeasible_panels : t -> key list

(** Keys that took the degraded path (fallback layout or deadline
    truncation), sorted. *)
val degraded_panels : t -> key list

(** [apply_shields u t] — write every region's shield count into the
    usage accounting (for congestion and area metrics). *)
val apply_shields : Eda_grid.Usage.t -> t -> unit

val iter : t -> (key -> soln -> unit) -> unit

(** Keys of the regions a net crosses, from the stored membership. *)
val regions_of_net : t -> int -> key list
