(** Phase II: solve SINO (or plain net ordering for the ID+NO baseline)
    inside every routing region and direction, under the partitioned Kth
    bounds.  The result stores, per (region, direction), the instance, its
    layout, and each net's achieved coupling K_i^j — the ingredients of the
    LSK sum and of Phase III's refinements. *)

type key = int * Eda_grid.Dir.t

type soln = {
  inst : Eda_sino.Instance.t;
  layout : Eda_sino.Layout.t;
  k : (int, float) Hashtbl.t;  (** global net id → K_i in this region *)
}

type t

type mode = Order_only | Min_area

(** [solve ~grid ~netlist ~routes ~kth ~sensitivity ~keff ~mode ~seed ()]
    builds and solves every non-empty region instance.  [kth net] supplies
    the per-net bound from Phase I budgeting.  Panels are independent
    (each has its own panel-keyed RNG seed): with [?pool] they are solved
    in parallel with results identical to the sequential order. *)
val solve :
  grid:Eda_grid.Grid.t ->
  netlist:Eda_netlist.Netlist.t ->
  routes:Eda_grid.Route.t array ->
  kth:(int -> float) ->
  sensitivity:Eda_netlist.Sensitivity.t ->
  keff:Eda_sino.Keff.params ->
  mode:mode ->
  seed:int ->
  ?pool:Eda_exec.t ->
  unit ->
  t

val grid : t -> Eda_grid.Grid.t
val keff : t -> Eda_sino.Keff.params

(** [find t key] — the solved region, if any net crosses it. *)
val find : t -> key -> soln option

(** [k_of t ~net key] — K of [net] in that region, 0. if the net does not
    cross it. *)
val k_of : t -> net:int -> key -> float

(** [shields t key] — shield tracks used there. *)
val shields : t -> key -> int

val total_shields : t -> int

(** [replace t key soln] — Phase III substitutes refined solutions. *)
val replace : t -> key -> soln -> unit

(** [resolve t key inst rng] — re-run min-area SINO on a (possibly
    re-bounded) instance and build the [soln] record. *)
val resolve : t -> key -> Eda_sino.Instance.t -> Eda_util.Rng.t -> soln

(** [apply_shields u t] — write every region's shield count into the
    usage accounting (for congestion and area metrics). *)
val apply_shields : Eda_grid.Usage.t -> t -> unit

val iter : t -> (key -> soln -> unit) -> unit

(** Keys of the regions a net crosses, from the stored membership. *)
val regions_of_net : t -> int -> key list
