module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Usage = Eda_grid.Usage
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Estimate = Eda_sino.Estimate
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log
module Gcstat = Eda_obs.Gcstat
module Progress = Eda_obs.Progress

(* Every timed flow phase goes through this: one span for the profiler,
   one cumulative flow.phase_seconds sample, one gc.* delta set, one
   progress heartbeat at entry.  Keeping the four probes in a single
   combinator keeps the phase list in [run] readable and guarantees no
   phase is missing a probe. *)
let timed_phase name f =
  Progress.phase name;
  let v, s =
    Trace.timed_span ("phase:" ^ name) (fun () -> Gcstat.phase name f)
  in
  Metrics.accum (Metrics.gauge ~labels:[ ("phase", name) ] "flow.phase_seconds") s;
  (v, s)

type kind = Id_no | Isino | Gsino

let kind_name = function Id_no -> "ID+NO" | Isino -> "iSINO" | Gsino -> "GSINO"

type router = Iterative_deletion | Negotiated

type budgeting = Uniform | Route_aware

module Config = struct
  type t = {
    kind : kind;
    router : router;
    budgeting : budgeting;
    jobs : int;
    seed : int;
    cap_quantile : float;
    deadline_ms : int;
    max_region_retries : int;
    on_infeasible : Eda_guard.Error.policy;
    audit : bool;
    cache : bool;
    cache_dir : string option;
  }

  let default =
    {
      kind = Gsino;
      router = Iterative_deletion;
      budgeting = Uniform;
      jobs = 1;
      seed = 7;
      cap_quantile = 0.90;
      deadline_ms = 0;
      max_region_retries = 2;
      on_infeasible = Eda_guard.Error.Degrade;
      audit = false;
      cache = true;
      cache_dir = None;
    }
end

type result = {
  kind : kind;
  netlist : Netlist.t;
  grid : Grid.t;
  sensitivity : Sensitivity.t;
  routes : Route.t array;
  budget : Budget.t;
  phase2 : Phase2.t;
  usage : Usage.t;
  refine_stats : Refine.stats option;
  violations : (int * float) list;
  avg_wl_um : float;
  total_wl_um : float;
  area : float * float * float;
  shields : int;
  route_s : float;
  sino_s : float;
  refine_s : float;
  deadline_hits : string list;
}

(* flow.phase_seconds (inside timed_phase) is cumulative wall-clock per
   phase across every run of the process, so a suite/bench sees one
   per-phase total in the metrics snapshot *)
let m_runs = Metrics.counter "flow.runs"

let analyze_config tech =
  {
    Eda_analyze.Analyze.keff = tech.Tech.keff;
    lsk = Tech.lsk_model tech;
    noise_bound_v = tech.Tech.noise_bound_v;
    estimate = Lazy.force Estimate.default;
  }

(* Pre-route audit: if the static analyzer can prove the instance
   infeasible, there is no point running the router.  Under [Fail] the
   first provable finding becomes a typed Infeasible error; under
   [Degrade] the findings are logged and the flow proceeds (the checker
   and the SINO fallbacks will cope downstream). *)
let audit_prepass config tech grid ~sensitivity netlist =
  let audit, _audit_s =
    timed_phase "audit" (fun () ->
        Eda_analyze.Analyze.run (analyze_config tech) ~grid ~sensitivity netlist)
  in
  let module Analyze = Eda_analyze.Analyze in
  let module Diag = Eda_check.Diag in
  if Analyze.has_errors audit then begin
    let errors =
      List.filter (fun d -> d.Diag.severity = Diag.Error) audit.Analyze.findings
    in
    List.iter
      (fun d ->
        Log.warn
          ~fields:[ ("circuit", netlist.Netlist.name) ]
          "audit: %s" (Diag.to_line d))
      errors;
    match config.Config.on_infeasible with
    | Eda_guard.Error.Fail ->
        let region, dir =
          List.fold_left
            (fun acc d ->
              if Option.is_some acc then acc
              else
                match d.Diag.locus with
                | Diag.Region (r, dr) -> Some (r, Eda_grid.Dir.to_string dr)
                | Diag.Global | Diag.Net _ -> None)
            None errors
          |> Option.value ~default:(0, "audit")
        in
        raise
          (Eda_guard.Error.Error
             (Eda_guard.Error.Infeasible
                { region; dir; nets = List.length errors; retries = 0 }))
    | Eda_guard.Error.Degrade ->
        Log.warn
          ~fields:[ ("circuit", netlist.Netlist.name) ]
          "audit proved %d infeasibilities; continuing degraded (policy)"
          (List.length errors)
  end

let route_with ?pool ?deadline router tech grid netlist shield_model =
  match router with
  | Iterative_deletion ->
      Id_router.route ~grid ~netlist
        ~weights:
          {
            Id_router.alpha = tech.Tech.alpha;
            beta = tech.Tech.beta;
            gamma = tech.Tech.gamma;
          }
        ~shield_model ?deadline ?pool ()
  | Negotiated -> Nc_router.route ~grid ~netlist ~shield_model ?deadline ()

let base_routes ?(router = Iterative_deletion) ?pool ?deadline tech grid netlist
    =
  route_with ?pool ?deadline router tech grid netlist Id_router.No_shields

let demand_quantile usage grid q dir =
  (* Stats.quantile_int returns 0 on an empty sample, so a zero-region
     grid yields capacity 0 instead of indexing a.(-1). *)
  Eda_util.Stats.quantile_int
    (Array.init (Grid.num_regions grid) (fun r -> Usage.nns usage r dir))
    q

(* A caller-supplied pool (the serve daemon's per-worker pool) outlives
   the call; otherwise a [config.jobs]-domain pool lives for its
   duration. *)
let with_pool_opt ~jobs ext f =
  match ext with Some pool -> f pool | None -> Eda_exec.with_pool ~jobs f

let prepare ?(config = Config.default) ?pool tech netlist =
  Trace.span_args "flow:prepare"
    [ ("circuit", netlist.Netlist.name) ]
  @@ fun () ->
  let { Config.router; cap_quantile; jobs; _ } = config in
  with_pool_opt ~jobs pool @@ fun pool ->
  (* Pass 1: route with loose auto-capacities to observe regional demand.
     Pass 2: clamp the capacities near the top of that demand and
     re-route, so the conventional router is balancing right at the edge
     of capacity — the regime the paper's circuits are in (ID+NO fits the
     placement; every further track, i.e. every shield, risks expanding
     it). *)
  let grid0 = Tech.grid_for tech netlist in
  let base0 = base_routes ~router ~pool tech grid0 netlist in
  let usage0 =
    Usage.of_routes grid0 ~gcell_um:netlist.Netlist.gcell_um (Array.to_list base0)
  in
  let cap dir = max 4 (demand_quantile usage0 grid0 cap_quantile dir) in
  let grid =
    Grid.make ~w:(Grid.width grid0) ~h:(Grid.height grid0)
      ~hcap:(cap Eda_grid.Dir.H) ~vcap:(cap Eda_grid.Dir.V)
  in
  let base = base_routes ~router ~pool tech grid netlist in
  (grid, base)

let run ?grid ?base ?pool ?cache:ext_cache ?deadline config tech ~sensitivity
    netlist =
  let {
    Config.kind;
    router;
    budgeting;
    jobs;
    seed;
    cap_quantile = _;
    deadline_ms;
    max_region_retries;
    on_infeasible;
    audit;
    cache = cache_on;
    cache_dir;
  } =
    config
  in
  let deadline =
    match deadline with
    | Some d -> d
    | None -> Eda_guard.Deadline.start ~budget_ms:deadline_ms
  in
  Progress.set_deadline (fun () -> Eda_guard.Deadline.remaining_ms deadline);
  Metrics.incr m_runs;
  Trace.span_args "flow:run"
    [
      ("kind", kind_name kind);
      ("circuit", netlist.Netlist.name);
      ("jobs", string_of_int jobs);
    ]
  @@ fun () ->
  with_pool_opt ~jobs pool @@ fun pool ->
  let grid = match grid with Some g -> g | None -> Tech.grid_for tech netlist in
  if audit then audit_prepass config tech grid ~sensitivity netlist;
  let lsk_model = Tech.lsk_model tech in
  let gcell_um = netlist.Netlist.gcell_um in
  let budget =
    Budget.uniform ~lsk:lsk_model ~noise_v:tech.Tech.noise_bound_v ~gcell_um netlist
  in
  let routes, route_s =
    match kind with
    | Id_no | Isino -> (
        match base with
        | Some r -> (r, 0.0)
        | None ->
            timed_phase "route" (fun () ->
                base_routes ~router ~pool ~deadline tech grid netlist))
    | Gsino ->
        timed_phase "route" (fun () ->
            route_with ~pool ~deadline router tech grid netlist
              (Id_router.Per_net
                 {
                   keff = tech.Tech.keff;
                   rate = Sensitivity.rate sensitivity;
                   kth = Budget.kth budget;
                 }))
  in
  (* route-aware budgeting re-partitions the bounds from the realized
     path lengths now that the routes exist (Phase I's router weight
     already used the uniform budget above) *)
  let budget =
    match budgeting with
    | Uniform -> budget
    | Route_aware ->
        Budget.route_aware ~lsk:lsk_model ~noise_v:tech.Tech.noise_bound_v
          ~gcell_um ~grid ~routes netlist
  in
  let mode =
    match kind with Id_no -> Phase2.Order_only | Isino | Gsino -> Phase2.Min_area
  in
  (* The panel cache is per-run unless [cache_dir] makes it persistent,
     or the caller supplies one (the serve daemon's shared warm cache,
     whose lifecycle — load at startup, save at drain — the caller then
     owns).  Solutions are content-determined either way, so enabling it
     never changes a byte of output (DESIGN §10) — it only skips repeat
     work. *)
  let cache, owns_cache =
    match ext_cache with
    | Some c -> ((if cache_on then Some c else None), false)
    | None ->
        ( (if not cache_on then None
           else
             match cache_dir with
             | Some dir -> Some (Eda_sino.Cache.load dir)
             | None -> Some (Eda_sino.Cache.create ())),
          true )
  in
  let phase2, sino_s =
    timed_phase "sino" (fun () ->
        Phase2.solve ~grid ~netlist ~routes ~kth:(Budget.kth budget) ~sensitivity
          ~keff:tech.Tech.keff ~mode ~seed ~deadline
          ~retries:max_region_retries ~on_infeasible ?cache ~pool ())
  in
  let usage = Usage.of_routes grid ~gcell_um (Array.to_list routes) in
  Phase2.apply_shields usage phase2;
  let refine_stats, refine_s =
    match kind with
    | Id_no -> (None, 0.0)
    | Isino | Gsino ->
        let stats, s =
          timed_phase "refine" (fun () ->
              Refine.run ~grid ~netlist ~routes ~phase2 ~usage ~lsk_model
                ~bound_v:tech.Tech.noise_bound_v ~deadline ~pool ())
        in
        (Some stats, s)
  in
  (match (cache, cache_dir) with
  | Some c, Some dir when owns_cache -> Eda_sino.Cache.save c dir
  | _ -> ());
  Log.debug
    ~fields:[ ("kind", kind_name kind); ("circuit", netlist.Netlist.name) ]
    "flow phases done: route %.2fs, sino %.2fs, refine %.2fs" route_s sino_s
    refine_s;
  let violations =
    Noise.violations ~pool ~grid ~gcell_um ~phase2 ~lsk_model ~netlist ~routes
      ~bound_v:tech.Tech.noise_bound_v ()
  in
  let lengths = Array.map (fun r -> Route.length_um r ~gcell_um) routes in
  let total_wl_um = Array.fold_left ( +. ) 0.0 lengths in
  let avg_wl_um =
    if Array.length lengths = 0 then 0.0
    else total_wl_um /. float_of_int (Array.length lengths)
  in
  let shields = Phase2.total_shields phase2 in
  (* per-kind outcome metrics, cumulative across the runs of the process
     like flow.phase_seconds — the series gsino_diff guards in CI *)
  let kl = [ ("kind", kind_name kind) ] in
  Metrics.add (Metrics.counter ~labels:kl "flow.violations") (List.length violations);
  Metrics.add (Metrics.counter ~labels:kl "flow.shields") shields;
  Metrics.accum (Metrics.gauge ~labels:kl "flow.total_wl_um") total_wl_um;
  {
    kind;
    netlist;
    grid;
    sensitivity;
    routes;
    budget;
    phase2;
    usage;
    refine_stats;
    violations;
    avg_wl_um;
    total_wl_um;
    area = Usage.expanded_area usage;
    shields;
    route_s;
    sino_s;
    refine_s;
    deadline_hits = Eda_guard.Deadline.hits deadline;
  }

let degraded r =
  r.deadline_hits <> [] || Phase2.degraded_panels r.phase2 <> []

let check ?(tech = Tech.default) r =
  let module Checker = Eda_check.Checker in
  let panels = ref [] in
  Phase2.iter r.phase2 (fun (region, dir) s ->
      let nets = Array.of_seq (Hashtbl.to_seq_keys s.Phase2.k) in
      Array.sort compare nets;
      panels :=
        {
          Checker.region;
          dir;
          shields = Eda_sino.Layout.num_shields s.Phase2.layout;
          nets;
          feasible = s.Phase2.feasible;
          degraded = s.Phase2.degraded;
        }
        :: !panels);
  let row, col, area = r.area in
  Checker.run
    {
      Checker.netlist = r.netlist;
      grid = r.grid;
      routes = r.routes;
      lsk_budget = r.budget.Budget.lsk_budget;
      kth = r.budget.Budget.kth;
      lsk_table = (Tech.lsk_model tech).Eda_lsk.Lsk.table;
      sensitive = Sensitivity.sensitive r.sensitivity;
      usage = r.usage;
      panels = !panels;
      total_shields = r.shields;
      violations = r.violations;
      bound_v = tech.Tech.noise_bound_v;
      metrics =
        [
          ("avg_wl_um", r.avg_wl_um);
          ("total_wl_um", r.total_wl_um);
          ("area_row_um", row);
          ("area_col_um", col);
          ("area_um2", area);
        ];
      deadline_phases = r.deadline_hits;
      keff = tech.Tech.keff;
    }

let violation_count r = List.length r.violations

let violation_pct r =
  100.0 *. float_of_int (violation_count r)
  /. float_of_int (max 1 (Netlist.num_nets r.netlist))

let pp_summary fmt r =
  let row, col, area = r.area in
  Format.fprintf fmt
    "%s on %s: %d violations (%.2f%%), avg WL %.0fum, area %.0fx%.0f=%.3e, %d shields (route %.1fs, sino %.1fs, refine %.1fs)"
    (kind_name r.kind) r.netlist.Netlist.name (violation_count r)
    (violation_pct r) r.avg_wl_um row col area r.shields r.route_s r.sino_s
    r.refine_s;
  (match Phase2.degraded_panels r.phase2 with
  | [] -> ()
  | ps -> Format.fprintf fmt " DEGRADED[%d panels]" (List.length ps));
  match r.deadline_hits with
  | [] -> ()
  | phases ->
      Format.fprintf fmt " DEADLINE[%s]" (String.concat "," phases)
