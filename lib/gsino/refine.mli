(** Phase III: two passes of greedy iterative local refinement (Figure 2).

    Pass 1 — eliminate crosstalk violations.  Budgeting used Manhattan
    distances; detours make the realized LSK exceed the budget for a few
    nets.  For the worst-violating net, repeatedly pick the least congested
    region on its route, tighten the net's Kth there (trading one more
    shield's worth of coupling, per Formula (3)'s reading), and re-run
    SINO in that region, until the net meets its noise bound.

    Pass 2 — reduce routing congestion.  In the most congested region,
    grant nets their remaining LSK slack (largest slack first, one net at
    a time) and re-run SINO; accept the new solution only if it uses fewer
    shields and introduces no violation.

    Both passes mutate the {!Phase2} store and the shield counts in the
    usage accounting in place.  The mutating tighten/relax steps are
    inherently sequential; [?pool] parallelizes only the read-only noise
    scans between them (the per-round violation sweep, pass 2's
    acceptance check, the residual count), so results are identical for
    any job count.  Refinement carries no RNG of its own: every re-solve
    goes through {!Phase2.resolve}, whose result is a pure function of
    the re-bounded instance content and the flow seed. *)

type stats = {
  pass1_nets_fixed : int;  (** violating nets repaired *)
  pass1_resolves : int;  (** SINO re-runs in pass 1 *)
  pass2_shields_removed : int;
  pass2_resolves : int;
  residual_violations : int;  (** should be 0 *)
}

(** [deadline] is checked between pass-1 rip-up rounds and pass-2 relax
    rounds (both leave the Phase2 store consistent); expiry stops the
    pass with its work so far and marks a ["refine"] deadline hit. *)
val run :
  grid:Eda_grid.Grid.t ->
  netlist:Eda_netlist.Netlist.t ->
  routes:Eda_grid.Route.t array ->
  phase2:Phase2.t ->
  usage:Eda_grid.Usage.t ->
  lsk_model:Eda_lsk.Lsk.t ->
  bound_v:float ->
  ?deadline:Eda_guard.Deadline.t ->
  ?pool:Eda_exec.t ->
  unit ->
  stats

val pp_stats : Format.formatter -> stats -> unit
