open Eda_geom
module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Dir = Eda_grid.Dir
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Heap = Eda_util.Heap
module Rsmt = Eda_steiner.Rsmt
module Estimate = Eda_sino.Estimate
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace

(* deletion-loop telemetry (§5: ID routing dominates runtime; these let a
   profile see why for a given instance) *)
let m_iterations = Metrics.counter "id_router.iterations"
let m_deletions = Metrics.counter "id_router.edge_deletions"
let m_essential = Metrics.counter "id_router.essential_edges"
let m_reweights = Metrics.counter "id_router.reweights"
let m_direct_nets = Metrics.counter "id_router.direct_nets"
let m_overflowed = Metrics.counter "id_router.overflowed_regions"
let h_candidates = Metrics.histogram "id_router.candidate_edges"

module Journal = Eda_obs.Journal

type weights = { alpha : float; beta : float; gamma : float }

let default_weights = { alpha = 2.0; beta = 1.0; gamma = 50.0 }

type shield_model =
  | No_shields
  | Estimated of { coeffs : Estimate.coeffs; rate : float }
  | Per_net of { keff : Eda_sino.Keff.params; rate : float; kth : int -> float }

let shield_demand ~keff ~rate kth =
  if kth <= 0.0 then invalid_arg "Id_router.shield_demand: non-positive kth";
  (* expected total coupling of an unshielded segment at this rate *)
  let kbar = rate *. Eda_sino.Keff.max_feasible_k keff in
  if kth >= kbar then 0.0
  else begin
    let layers =
      Float.ceil (log (kth /. kbar) /. log keff.Eda_sino.Keff.shield_block)
    in
    (* price one full track per predicted layer: reservation must outbid
       the cost of packing another net into the region *)
    Float.min 6.0 layers
  end

(* ------------------------------------------------------------------ *)
(* Direct RSMT embedding, used for single-region nets' trivial routes
   and as the big-net guard. *)

let l_path grid p q =
  (* horizontal leg at p.y, then vertical leg at q.x *)
  let edges = ref [] in
  let x0 = min p.Point.x q.Point.x and x1 = max p.Point.x q.Point.x in
  for x = x0 to x1 - 1 do
    edges := Grid.edge_id grid (Point.make x p.Point.y) Dir.H :: !edges
  done;
  let y0 = min p.Point.y q.Point.y and y1 = max p.Point.y q.Point.y in
  for y = y0 to y1 - 1 do
    edges := Grid.edge_id grid (Point.make q.Point.x y) Dir.V :: !edges
  done;
  !edges

let steiner_route grid net =
  let pins = Array.of_list (Net.pins net) in
  let tree = Rsmt.rectilinear_edges pins in
  let edges = List.concat_map (fun (p, q) -> l_path grid p q) tree in
  Route.of_edges grid ~net:net.Net.id edges

(* ------------------------------------------------------------------ *)
(* Per-net connection-graph state. *)

type net_state = {
  idx : int;
  pin_regions : int array;  (** deduplicated *)
  alive : (int, bool ref) Hashtbl.t;  (** edge -> essential? *)
  incident : (int, int list) Hashtbl.t;  (** region -> static incident edges *)
  f_wl : (int, float) Hashtbl.t;  (** edge -> static detour factor *)
  mem : (int, int) Hashtbl.t;
      (** (2·region + dir) -> live incident edges: region membership for
          the per-net shield-demand accounting *)
}

let region_dist grid r1 r2 =
  Point.manhattan (Grid.region_pt grid r1) (Grid.region_pt grid r2)

let build_state grid net rsmt_len edges =
  let pin_regions =
    Net.pins net
    |> List.map (Grid.region_id grid)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let alive = Hashtbl.create (List.length edges) in
  let incident = Hashtbl.create 64 in
  let f_wl = Hashtbl.create (List.length edges) in
  let add_incident r e =
    Hashtbl.replace incident r (e :: Option.value (Hashtbl.find_opt incident r) ~default:[])
  in
  let rsmt = float_of_int (max 1 rsmt_len) in
  List.iter
    (fun e ->
      Hashtbl.replace alive e (ref false);
      let a, b = Grid.edge_ends grid e in
      let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
      add_incident ra e;
      add_incident rb e;
      (* detour factor: cheapest pin-to-pin connection forced through e,
         relative to the RSMT estimate *)
      let best = ref max_int in
      Array.iter
        (fun rp ->
          Array.iter
            (fun rq ->
              let via1 = region_dist grid rp ra + 1 + region_dist grid rb rq in
              let via2 = region_dist grid rp rb + 1 + region_dist grid ra rq in
              best := min !best (min via1 via2))
            pin_regions)
        pin_regions;
      let f = Float.max 0.0 ((float_of_int !best -. rsmt) /. rsmt) in
      Hashtbl.replace f_wl e f)
    edges;
  {
    idx = net.Net.id;
    pin_regions;
    alive;
    incident;
    f_wl;
    mem = Hashtbl.create 32;
  }

(* Are all pins still connected if [skip] is ignored?  BFS over alive
   edges, marks in a stamped scratch array to avoid re-allocation. *)
let connected_without grid st ~mark ~stamp ~skip =
  let npins = Array.length st.pin_regions in
  if npins <= 1 then true
  else begin
    let start = st.pin_regions.(0) in
    let q = Queue.create () in
    mark.(start) <- stamp;
    Queue.add start q;
    let seen_pins = ref 1 in
    let is_pin r = Array.exists (fun p -> p = r) st.pin_regions in
    (try
       while not (Queue.is_empty q) do
         let r = Queue.take q in
         List.iter
           (fun e ->
             if e <> skip && Hashtbl.mem st.alive e then begin
               let a, b = Grid.edge_ends grid e in
               let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
               let other = if ra = r then rb else ra in
               if mark.(other) <> stamp then begin
                 mark.(other) <- stamp;
                 if is_pin other then begin
                   incr seen_pins;
                   if !seen_pins = npins then raise Exit
                 end;
                 Queue.add other q
               end
             end)
           (Option.value (Hashtbl.find_opt st.incident r) ~default:[])
       done
     with Exit -> ());
    !seen_pins = npins
  end

(* Prune to the minimal Steiner tree: repeatedly drop degree-1 regions
   that are not pins. *)
let prune_tree grid st =
  let deg = Hashtbl.create 32 in
  let bump r d =
    Hashtbl.replace deg r (d + Option.value (Hashtbl.find_opt deg r) ~default:0)
  in
  let edge_list () = List.of_seq (Hashtbl.to_seq_keys st.alive) in
  List.iter
    (fun e ->
      let a, b = Grid.edge_ends grid e in
      bump (Grid.region_id grid a) 1;
      bump (Grid.region_id grid b) 1)
    (edge_list ());
  let is_pin r = Array.exists (fun p -> p = r) st.pin_regions in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        if Hashtbl.mem st.alive e then begin
          let a, b = Grid.edge_ends grid e in
          let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
          let leaf r =
            Option.value (Hashtbl.find_opt deg r) ~default:0 = 1 && not (is_pin r)
          in
          if leaf ra || leaf rb then begin
            Hashtbl.remove st.alive e;
            bump ra (-1);
            bump rb (-1);
            changed := true
          end
        end)
      (edge_list ())
  done

(* ------------------------------------------------------------------ *)

(* Per-net preparation outcome: everything computable without touching
   the shared occupancy arrays, so the prep fans out over a pool. *)
type prep =
  | P_direct of Route.t  (** big net: direct RSMT embedding *)
  | P_state of net_state * int list  (** connection graph + candidate edges *)
  | P_empty  (** single-region net *)

let route ~grid ~netlist ?(weights = default_weights)
    ?(shield_model = No_shields) ?(big_net_threshold = 5000) ?(bbox_expand = 1)
    ?(deadline = Eda_guard.Deadline.none) ?pool () =
  Trace.span_args "id_router.route"
    [ ("nets", string_of_int (Array.length netlist.Netlist.nets)) ]
  @@ fun () ->
  let nets = netlist.Netlist.nets in
  let n_edges = Grid.num_edges grid in
  let n_regions = Grid.num_regions grid in
  (* global live-occupancy: per-edge net count, and its per-region,
     per-direction incidence sums (HU(R) = incidence/2) *)
  let occ = Array.make n_edges 0 in
  let inc_h = Array.make n_regions 0 in
  let inc_v = Array.make n_regions 0 in
  let inc_of dir = match dir with Dir.H -> inc_h | Dir.V -> inc_v in
  (* per-region predicted shield tracks (Per_net model) *)
  let nss_h = Array.make n_regions 0.0 in
  let nss_v = Array.make n_regions 0.0 in
  let nss_arr dir = match dir with Dir.H -> nss_h | Dir.V -> nss_v in
  let sdemand =
    match shield_model with
    | Per_net { keff; rate; kth } ->
        Array.map (fun n -> shield_demand ~keff ~rate (kth n.Net.id)) nets
    | No_shields | Estimated _ -> [||]
  in
  let account e delta =
    occ.(e) <- occ.(e) + delta;
    let a, b = Grid.edge_ends grid e in
    let inc = inc_of (Grid.edge_dir grid e) in
    inc.(Grid.region_id grid a) <- inc.(Grid.region_id grid a) + delta;
    inc.(Grid.region_id grid b) <- inc.(Grid.region_id grid b) + delta
  in
  (* membership maintenance: a net contributes its shield demand to every
     (region, dir) where it still has a live incident edge *)
  let dir_idx = function Dir.H -> 0 | Dir.V -> 1 in
  let member_bump st e delta =
    if Array.length sdemand > 0 then begin
      let dir = Grid.edge_dir grid e in
      let a, b = Grid.edge_ends grid e in
      List.iter
        (fun p ->
          let r = Grid.region_id grid p in
          let key = (2 * r) + dir_idx dir in
          let old = Option.value (Hashtbl.find_opt st.mem key) ~default:0 in
          let now = old + delta in
          Hashtbl.replace st.mem key now;
          let nss = nss_arr dir in
          if old = 0 && now = 1 then nss.(r) <- nss.(r) +. sdemand.(st.idx)
          else if old = 1 && now = 0 then nss.(r) <- nss.(r) -. sdemand.(st.idx))
        [ a; b ]
    end
  in
  let nss_of r dir nns =
    match shield_model with
    | No_shields -> 0.0
    | Estimated { coeffs; rate } ->
        if nns <= 0 then 0.0 else Estimate.predict_uniform coeffs ~nns ~rate
    | Per_net _ -> (nss_arr dir).(r)
  in
  let weight_of st e =
    let dir = Grid.edge_dir grid e in
    let a, b = Grid.edge_ends grid e in
    let hd = ref 0.0 and ofr = ref 0.0 in
    List.iter
      (fun p ->
        let r = Grid.region_id grid p in
        let nns = (inc_of dir).(r) / 2 in
        let hu = float_of_int nns +. nss_of r dir nns in
        let cap = float_of_int (Grid.cap grid p dir) in
        hd := Float.max !hd (hu /. cap);
        ofr := Float.max !ofr (Float.max 0.0 ((hu -. cap) /. cap)))
      [ a; b ];
    (weights.alpha *. Hashtbl.find st.f_wl e)
    +. (weights.beta *. !hd) +. (weights.gamma *. !ofr)
  in
  (* Build per-net states; big or trivial nets take direct routes.  The
     candidate evaluation (bbox clip, candidate edge sweep, per-edge
     detour factors — the O(pins² · edges) part) only reads the grid and
     the net, so it fans out over the pool; the shared occupancy
     accounting is then replayed sequentially in net order, making the
     initial demand state identical to the single-domain code. *)
  (* Journal attribution: the deletion loop runs millions of iterations,
     so per-entity counts accumulate in flat arrays (two increments per
     event when enabled, nothing when not) and fold into one net.route /
     region.reweight event per entity after the loop — never one journal
     event per reweight. *)
  let jnl = Journal.enabled () in
  let n_nets = Array.length nets in
  let net_pops = if jnl then Array.make n_nets 0 else [||] in
  let net_deletions = if jnl then Array.make n_nets 0 else [||] in
  let net_reweights = if jnl then Array.make n_nets 0 else [||] in
  let net_essential = if jnl then Array.make n_nets 0 else [||] in
  let region_rw_h = if jnl then Array.make n_regions 0 else [||] in
  let region_rw_v = if jnl then Array.make n_regions 0 else [||] in
  let direct = Hashtbl.create 16 in
  let preps =
    Eda_exec.map_array ?pool ~name:"route.candidates"
      (fun net ->
        let bounds = Rect.make 0 0 (Grid.width grid - 1) (Grid.height grid - 1) in
        let bbox = Rect.clip (Rect.expand (Net.bbox net) bbox_expand) ~within:bounds in
        if Rect.cells bbox > big_net_threshold then begin
          Metrics.incr m_direct_nets;
          P_direct (steiner_route grid net)
        end
        else begin
          match Grid.edges_within grid bbox with
          | [] -> P_empty (* single-region net: empty route *)
          | edges ->
              Metrics.observe h_candidates (float_of_int (List.length edges));
              let pins = Array.of_list (Net.pins net) in
              P_state (build_state grid net (Rsmt.length pins) edges, edges)
        end)
      nets
  in
  let states =
    Array.mapi
      (fun i prep ->
        let net = nets.(i) in
        match prep with
        | P_direct r ->
            Hashtbl.replace direct net.Net.id r;
            Array.iter (fun e -> account e 1) (Route.edges r);
            if Array.length sdemand > 0 then
              List.iter
                (fun (reg, d) ->
                  let nss = nss_arr d in
                  nss.(reg) <- nss.(reg) +. sdemand.(net.Net.id))
                (Route.occupied grid r);
            None
        | P_empty -> None
        | P_state (st, edges) ->
            List.iter
              (fun e ->
                account e 1;
                member_bump st e 1)
              edges;
            Some st)
      preps
  in
  (* Seed the heap with every (net, edge) pair. *)
  let heap = Heap.create () in
  Array.iter
    (function
      | None -> ()
      | Some st ->
          Hashtbl.iter (fun e _ -> Heap.push heap (weight_of st e) (st.idx, e)) st.alive)
    states;
  let mark = Array.make n_regions 0 in
  let stamp = ref 0 in
  let iters = ref 0 in
  (* checkpoint: every pop leaves all nets connected (deletion is the
     only mutation and is connectivity-checked), so stopping mid-heap
     yields valid, merely less-deleted trees; prune_tree below still
     runs *)
  while
    (not (Heap.is_empty heap))
    && not (Eda_guard.Deadline.check deadline ~phase:"route")
  do
    Metrics.incr m_iterations;
    incr iters;
    (* total is unknowable up front (reweighed edges re-enter the heap),
       so the heartbeat reports a bare iteration count *)
    Eda_obs.Progress.tick ~items_done:!iters ();
    let w_old, (i, e) = Heap.pop_max heap in
    if jnl then net_pops.(i) <- net_pops.(i) + 1;
    match states.(i) with
    | None -> ()
    | Some st -> (
        match Hashtbl.find_opt st.alive e with
        | None -> () (* already deleted *)
        | Some essential when !essential -> ()
        | Some essential ->
            let w_cur = weight_of st e in
            if w_cur < w_old -. 1e-9 then begin
              Metrics.incr m_reweights;
              if jnl then begin
                net_reweights.(i) <- net_reweights.(i) + 1;
                let rw =
                  match Grid.edge_dir grid e with
                  | Dir.H -> region_rw_h
                  | Dir.V -> region_rw_v
                in
                let a, b = Grid.edge_ends grid e in
                let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
                rw.(ra) <- rw.(ra) + 1;
                if rb <> ra then rw.(rb) <- rw.(rb) + 1
              end;
              Heap.push heap w_cur (i, e)
            end
            else begin
              incr stamp;
              if connected_without grid st ~mark ~stamp:!stamp ~skip:e then begin
                Metrics.incr m_deletions;
                if jnl then net_deletions.(i) <- net_deletions.(i) + 1;
                Hashtbl.remove st.alive e;
                account e (-1);
                member_bump st e (-1)
              end
              else begin
                Metrics.incr m_essential;
                if jnl then net_essential.(i) <- net_essential.(i) + 1;
                essential := true
              end
            end)
  done;
  (* post-routing overflow census: regions whose demand (nets + predicted
     shields) exceeds capacity in some direction *)
  List.iter
    (fun dir ->
      let inc = inc_of dir and nss = nss_arr dir in
      for r = 0 to n_regions - 1 do
        let hu = float_of_int (inc.(r) / 2) +. nss.(r) in
        let cap = float_of_int (Grid.cap grid (Grid.region_pt grid r) dir) in
        if hu > cap then Metrics.incr m_overflowed
      done)
    Dir.all;
  if jnl then begin
    Array.iteri
      (fun i net ->
        let outcome =
          if Hashtbl.mem direct net.Net.id then "direct"
          else match states.(i) with None -> "empty" | Some _ -> "routed"
        in
        Journal.record "net.route"
          [ ("net", string_of_int net.Net.id) ]
          ~data:
            [
              ("pops", float_of_int net_pops.(i));
              ("deletions", float_of_int net_deletions.(i));
              ("reweights", float_of_int net_reweights.(i));
              ("essential", float_of_int net_essential.(i));
            ]
          ~outcome)
      nets;
    List.iter
      (fun dir ->
        let rw =
          match dir with Dir.H -> region_rw_h | Dir.V -> region_rw_v
        in
        Array.iteri
          (fun r n ->
            if n > 0 then
              Journal.record "region.reweight"
                [ ("region", string_of_int r); ("dir", Dir.to_string dir) ]
                ~data:[ ("reweights", float_of_int n) ])
          rw)
      Dir.all
  end;
  (* Safety prune (the deletion loop already leaves a Steiner tree; this
     guards against floating-point ties) and route construction. *)
  Array.mapi
    (fun i net ->
      match states.(i) with
      | None -> (
          match Hashtbl.find_opt direct i with
          | Some r -> r
          | None -> Route.of_edges grid ~net:net.Net.id [])
      | Some st ->
          prune_tree grid st;
          Route.of_edges grid ~net:net.Net.id (List.of_seq (Hashtbl.to_seq_keys st.alive)))
    nets
