(** Congestion heat-map data and the ASCII renderer — the quick visual
    check of where track demand (and shield demand) concentrates.  One
    cell per region and direction; the same cells feed the inline-SVG
    heatmaps of [Eda_reportviz.Heatmap]. *)

(** One region's track accounting in one direction. *)
type cell = {
  x : int;
  y : int;
  cap : int;  (** track capacity *)
  nets : int;  (** tracks taken by net segments *)
  shields : int;  (** tracks taken by shields *)
  util : float;  (** (nets + shields) / cap *)
}

(** [cell usage dir x y] — a single region's accounting. *)
val cell : Eda_grid.Usage.t -> Eda_grid.Dir.t -> int -> int -> cell

(** [cells usage dir] — every region, row-major with [y] ascending (the
    southernmost row first). *)
val cells : Eda_grid.Usage.t -> Eda_grid.Dir.t -> cell list

val over_capacity : cell -> bool

(** [render fmt usage] draws one ASCII map per direction.  The glyph ramp
    is [" .:-=+*#%@"], linear in utilization up to 1.0; regions above
    capacity show as ['!'].  Rows are printed north to south. *)
val render : Format.formatter -> Eda_grid.Usage.t -> unit

(** [render_dir fmt usage dir] draws a single direction's map. *)
val render_dir : Format.formatter -> Eda_grid.Usage.t -> Eda_grid.Dir.t -> unit
