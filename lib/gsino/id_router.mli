(** Iterative-deletion (ID) global routing (Cong/Preas [10], as extended
    by the paper's Phase I).

    Every net starts with its full bounding-box region subgraph as its
    connection graph G_i; the globally heaviest edge (Formula 2) is deleted
    repeatedly — unless deleting it would disconnect that net's pins, in
    which case it is essential forever (removing other edges can only turn
    more edges into bridges, never fewer) — until only essential edges
    remain, which is exactly a Steiner tree per net.

    Edge weight, Formula (2):

      w(e) = α·f(WL) + β·HD(R) + γ·HOFR(R)

    - [f(WL)]: detour factor of routing the net through [e], normalized to
      the net's RSMT estimate (static per net/edge);
    - [HD(R)]: track density [HU/HC] of the regions flanking [e], where
      [HU = Nns + Nss]: the live net-segment count plus — this is GSINO's
      shield-aware extension — the Formula (3) estimate of the shields the
      region will need.  The baselines (ID+NO, iSINO) drop the [Nss] term;
    - [HOFR(R)]: relative overflow, with γ ≫ α, β so overflow is all but
      forbidden.

    Densities only decrease during deletion, so a lazy max-heap with
    recompute-on-pop pops edges in exact weight order. *)

type weights = { alpha : float; beta : float; gamma : float }

val default_weights : weights

(** How the router accounts for shielding area. *)
type shield_model =
  | No_shields  (** conventional routing: HU = Nns *)
  | Estimated of { coeffs : Eda_sino.Estimate.coeffs; rate : float }
      (** HU = Nns + Formula-3 estimate at the given sensitivity rate *)
  | Per_net of { keff : Eda_sino.Keff.params; rate : float; kth : int -> float }
      (** HU = Nns + Σ over member nets of that net's expected per-region
          shield demand given its Kth bound — the sharper, Kth-aware
          reading of the Formula-3 reservation (see DESIGN.md): tight nets
          (Kth ≪ unshielded coupling) are the ones that force shields, so
          regions about to host several of them price themselves up and
          the router spreads those nets apart. *)

(** [shield_demand ~keff ~rate kth] — expected shield tracks one net
    segment with bound [kth] adds to its region: the number of shield
    layers needed to damp the expected unshielded coupling
    K̄ = 2·rate·Σ k1^d down to [kth], halved because neighbouring nets
    share shields. *)
val shield_demand : keff:Eda_sino.Keff.params -> rate:float -> float -> float

(** [route ~grid ~netlist ()] routes every net, returning one route per
    net (indexed by net id).

    @param weights Formula (2) constants (default α=2, β=1, γ=50)
    @param shield_model default [No_shields]
    @param big_net_threshold nets whose bounding box exceeds this many
    regions bypass iterative deletion and take their RSMT route directly
    (engineering guard for chip-spanning nets; default 5000)
    @param bbox_expand regions of slack added around each net's pin
    bounding box (detour freedom; default 1)
    @param pool parallelizes the per-net candidate evaluation (connection
    graphs and detour factors); the deletion loop itself is sequential,
    so routes are identical for any job count
    @param deadline checked at every deletion-loop pop — every pop leaves
    all nets connected, so expiry stops deleting and returns the valid
    (less optimized) trees, marked as a ["route"] deadline hit *)
val route :
  grid:Eda_grid.Grid.t ->
  netlist:Eda_netlist.Netlist.t ->
  ?weights:weights ->
  ?shield_model:shield_model ->
  ?big_net_threshold:int ->
  ?bbox_expand:int ->
  ?deadline:Eda_guard.Deadline.t ->
  ?pool:Eda_exec.t ->
  unit ->
  Eda_grid.Route.t array

(** [steiner_route grid net] — the direct RSMT route (L-shaped embedding
    of the Steiner tree edges); also used for the big-net guard. *)
val steiner_route : Eda_grid.Grid.t -> Eda_netlist.Net.t -> Eda_grid.Route.t
