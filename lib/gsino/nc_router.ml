module Grid = Eda_grid.Grid
module Route = Eda_grid.Route
module Dir = Eda_grid.Dir
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Rmst = Eda_steiner.Rmst
module Estimate = Eda_sino.Estimate
module Heap = Eda_util.Heap
module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Diag = Eda_check.Diag

exception Unreachable of { net : int; region : int }

let () =
  Printexc.register_printer (function
    | Unreachable { net; region } ->
        Some
          (Printf.sprintf
             "Nc_router.Unreachable(net %d, terminal region %d not reachable)"
             net region)
    | _ -> None)

let unreachable_diag ~net ~region =
  Diag.makef ~code:17 Diag.Error ~locus:(Diag.Net net)
    "negotiated router: terminal region %d is unreachable from the net's \
     routed tree (disconnected grid)"
    region

(* negotiation telemetry: present/history price evolution per iteration *)
let m_iterations = Metrics.counter "nc_router.iterations"
let m_reroutes = Metrics.counter "nc_router.reroutes"
let m_searches = Metrics.counter "nc_router.searches"
let h_overused = Metrics.histogram "nc_router.overused_slots"
let g_pres_fac = Metrics.gauge "nc_router.pres_fac"
let g_history = Metrics.gauge "nc_router.history_total"

(* per-(region, direction) track-pool state *)
type pools = {
  use_h : int array;  (** tracks taken by committed routes *)
  use_v : int array;
  nss_h : float array;  (** predicted shield tracks (Per_net model) *)
  nss_v : float array;
  hist_h : float array;  (** PathFinder history price *)
  hist_v : float array;
}

let use_of p = function Dir.H -> p.use_h | Dir.V -> p.use_v
let nss_of p = function Dir.H -> p.nss_h | Dir.V -> p.nss_v
let hist_of p = function Dir.H -> p.hist_h | Dir.V -> p.hist_v

let route ~grid ~netlist ?(shield_model = Id_router.No_shields) ?(max_iters = 12)
    ?(history_gain = 0.4) ?(seed = 0) ?(deadline = Eda_guard.Deadline.none) () =
  ignore seed;
  Trace.span_args "nc_router.route"
    [ ("nets", string_of_int (Array.length netlist.Netlist.nets)) ]
  @@ fun () ->
  let nets = netlist.Netlist.nets in
  let n_regions = Grid.num_regions grid in
  let pools =
    {
      use_h = Array.make n_regions 0;
      use_v = Array.make n_regions 0;
      nss_h = Array.make n_regions 0.0;
      nss_v = Array.make n_regions 0.0;
      hist_h = Array.make n_regions 0.0;
      hist_v = Array.make n_regions 0.0;
    }
  in
  let sdemand =
    match shield_model with
    | Id_router.Per_net { keff; rate; kth } ->
        Array.map (fun n -> Id_router.shield_demand ~keff ~rate (kth n.Net.id)) nets
    | Id_router.No_shields | Id_router.Estimated _ -> [||]
  in
  let formula_nss r dir =
    match shield_model with
    | Id_router.Estimated { coeffs; rate } ->
        let nns = (use_of pools dir).(r) in
        if nns <= 0 then 0.0 else Estimate.predict_uniform coeffs ~nns ~rate
    | Id_router.No_shields | Id_router.Per_net _ -> (nss_of pools dir).(r)
  in
  let load r dir = float_of_int (use_of pools dir).(r) +. formula_nss r dir in
  let cap r dir = float_of_int (Grid.cap grid (Grid.region_pt grid r) dir) in
  (* PathFinder pricing: base wirelength + present overuse + history *)
  let pres_fac = ref 0.6 in
  let slot_price r dir =
    let over = load r dir +. 1.0 -. cap r dir in
    (if over > 0.0 then !pres_fac *. over else 0.0) +. (hist_of pools dir).(r)
  in
  let commit route delta =
    let net = Route.net route in
    List.iter
      (fun (r, dir) ->
        let use = use_of pools dir in
        use.(r) <- use.(r) + delta;
        if Array.length sdemand > 0 then begin
          let nss = nss_of pools dir in
          nss.(r) <- nss.(r) +. (float_of_int delta *. sdemand.(net))
        end)
      (Route.occupied grid route)
  in
  (* Dijkstra from the current tree (multi-source) to [target] region;
     returns the new path's edges. *)
  let dist = Array.make n_regions infinity in
  let via = Array.make n_regions (-1) in
  let search ~net sources target =
    Metrics.incr m_searches;
    Array.fill dist 0 n_regions infinity;
    Array.fill via 0 n_regions (-1);
    let heap = Heap.create () in
    List.iter
      (fun r ->
        dist.(r) <- 0.0;
        Heap.push heap 0.0 r)
      sources;
    let finished = ref false in
    while (not !finished) && not (Heap.is_empty heap) do
      let negd, r = Heap.pop_max heap in
      let d = -.negd in
      if d <= dist.(r) +. 1e-12 then begin
        if r = target then finished := true
        else
          List.iter
            (fun e ->
              let a, b = Grid.edge_ends grid e in
              let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
              let other = if ra = r then rb else ra in
              let dir = Grid.edge_dir grid e in
              let step = 1.0 +. slot_price r dir +. slot_price other dir in
              let nd = d +. step in
              if nd < dist.(other) -. 1e-12 then begin
                dist.(other) <- nd;
                via.(other) <- e;
                Heap.push heap (-.nd) other
              end)
            (Grid.incident_edges grid (Grid.region_pt grid r))
      end
    done;
    if dist.(target) = infinity then raise (Unreachable { net; region = target });
    (* walk back to any source *)
    let rec back r acc =
      if via.(r) = -1 then acc
      else begin
        let e = via.(r) in
        let a, b = Grid.edge_ends grid e in
        let ra = Grid.region_id grid a and rb = Grid.region_id grid b in
        let prev = if ra = r then rb else ra in
        back prev (e :: acc)
      end
    in
    back target []
  in
  let route_net net =
    let pin_regions =
      Net.pins net |> List.map (Grid.region_id grid) |> List.sort_uniq compare
    in
    match pin_regions with
    | [] | [ _ ] -> Route.of_edges grid ~net:net.Net.id []
    | first :: rest ->
        (* connect pins in MST order so each search targets a near pin *)
        let pts = Array.of_list (List.map (Grid.region_pt grid) (first :: rest)) in
        let order =
          Rmst.tree pts
          |> List.map (fun (i, j) -> (Grid.region_id grid pts.(i), Grid.region_id grid pts.(j)))
        in
        let tree_regions = Hashtbl.create 16 in
        Hashtbl.replace tree_regions first ();
        let edges = ref [] in
        List.iter
          (fun (_, target) ->
            if not (Hashtbl.mem tree_regions target) then begin
              let sources = List.of_seq (Hashtbl.to_seq_keys tree_regions) in
              let path = search ~net:net.Net.id sources target in
              List.iter
                (fun e ->
                  let a, b = Grid.edge_ends grid e in
                  Hashtbl.replace tree_regions (Grid.region_id grid a) ();
                  Hashtbl.replace tree_regions (Grid.region_id grid b) ())
                path;
              edges := path @ !edges
            end)
          order;
        Route.of_edges grid ~net:net.Net.id !edges
  in
  (* initial routing *)
  let routes = Array.map route_net nets in
  Array.iter (fun r -> commit r 1) routes;
  (* negotiation rounds *)
  let overused () =
    let acc = ref [] in
    for r = 0 to n_regions - 1 do
      List.iter
        (fun dir -> if load r dir > cap r dir +. 1e-9 then acc := (r, dir) :: !acc)
        Dir.all
    done;
    !acc
  in
  let iter = ref 0 in
  let continue_ = ref true in
  let history_total () =
    let s = ref 0.0 in
    for r = 0 to n_regions - 1 do
      s := !s +. pools.hist_h.(r) +. pools.hist_v.(r)
    done;
    !s
  in
  (* checkpoint: the initial routing above always completes (it is what
     makes every net connected); negotiation rounds only re-price and
     re-route whole nets, so stopping between rounds leaves a complete —
     possibly congested — routing *)
  while
    !continue_ && !iter < max_iters
    && not (Eda_guard.Deadline.check deadline ~phase:"route")
  do
    incr iter;
    Metrics.incr m_iterations;
    match overused () with
    | [] -> continue_ := false
    | over ->
        let bad = Hashtbl.create 64 in
        List.iter (fun slot -> Hashtbl.replace bad slot ()) over;
        (* punish sustained congestion, raise the present-price pressure *)
        List.iter
          (fun (r, dir) -> (hist_of pools dir).(r) <- (hist_of pools dir).(r) +. history_gain)
          over;
        pres_fac := Float.min 64.0 (!pres_fac *. 1.7);
        Metrics.observe h_overused (float_of_int (List.length over));
        Metrics.set g_pres_fac !pres_fac;
        Metrics.set g_history (history_total ());
        Trace.instant
          ~args:
            [
              ("iter", string_of_int !iter);
              ("overused", string_of_int (List.length over));
              ("pres_fac", Printf.sprintf "%.3f" !pres_fac);
              ("history_total", Printf.sprintf "%.3f" (history_total ()));
            ]
          "nc_router.iteration";
        Array.iteri
          (fun i route ->
            let guilty =
              List.exists (fun slot -> Hashtbl.mem bad slot) (Route.occupied grid route)
            in
            if guilty then begin
              Metrics.incr m_reroutes;
              commit route (-1);
              let fresh = route_net nets.(i) in
              routes.(i) <- fresh;
              commit fresh 1
            end)
          routes
  done;
  routes
