let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let sum a =
  (* Kahan summation: benchmark aggregates add ~1e5 terms. *)
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    a;
  !s

let mean a =
  check_nonempty "Stats.mean" a;
  sum a /. float_of_int (Array.length a)

let stdev a =
  check_nonempty "Stats.stdev" a;
  let m = mean a in
  let acc = Array.map (fun x -> (x -. m) *. (x -. m)) a in
  sqrt (sum acc /. float_of_int (Array.length a))

let minimum a =
  check_nonempty "Stats.minimum" a;
  Array.fold_left min a.(0) a

let maximum a =
  check_nonempty "Stats.maximum" a;
  Array.fold_left max a.(0) a

let percentile a p =
  check_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  s.(lo) +. (frac *. (s.(hi) -. s.(lo)))

let quantile_int a q =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let s = Array.copy a in
    Array.sort compare s;
    s.(max 0 (min (n - 1) (int_of_float (Float.round (q *. float_of_int (n - 1))))))
  end

let mean_int a =
  check_nonempty "Stats.mean_int" a;
  float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)

let ratio_pct x base =
  if base = 0.0 then invalid_arg "Stats.ratio_pct: zero base";
  (x -. base) /. base *. 100.0

let r_squared ~actual ~predicted =
  if Array.length actual <> Array.length predicted then
    invalid_arg "Stats.r_squared: length mismatch";
  check_nonempty "Stats.r_squared" actual;
  let m = mean actual in
  let ss_tot = sum (Array.map (fun x -> (x -. m) ** 2.0) actual) in
  let ss_res =
    sum (Array.mapi (fun i x -> (x -. predicted.(i)) ** 2.0) actual)
  in
  if ss_tot = 0.0 then if ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (ss_res /. ss_tot)

let max_rel_err ?(eps = 1e-12) ~actual predicted =
  if Array.length actual <> Array.length predicted then
    invalid_arg "Stats.max_rel_err: length mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      if Float.abs x >= eps then
        worst := Float.max !worst (Float.abs (predicted.(i) -. x) /. Float.abs x))
    actual;
  !worst
