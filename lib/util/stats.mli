(** Small descriptive-statistics helpers used by the benchmark reports. *)

(** [mean a] is the arithmetic mean of a non-empty array. *)
val mean : float array -> float

(** [stdev a] is the (population) standard deviation. *)
val stdev : float array -> float

(** [minimum a] / [maximum a] over a non-empty array. *)
val minimum : float array -> float

val maximum : float array -> float

(** [sum a] with Kahan compensation. *)
val sum : float array -> float

(** [percentile a p] is the [p]-th percentile ([0. <= p <= 100.]) by linear
    interpolation of the sorted data. *)
val percentile : float array -> float -> float

(** [mean_int a] is the mean of an integer array as a float. *)
val mean_int : int array -> float

(** [quantile_int a q] is the [q]-quantile ([0. <= q <= 1.]) of an integer
    sample by nearest rank on the sorted data; 0 on an empty array (unlike
    {!percentile}, which raises — callers use this on per-region demand
    histograms that may legitimately be empty). *)
val quantile_int : int array -> float -> int

(** [ratio_pct x base] is [(x - base) / base * 100.]; the overhead
    percentage format used in the paper's Tables 2 and 3. *)
val ratio_pct : float -> float -> float

(** [r_squared ~actual ~predicted] is the coefficient of determination. *)
val r_squared : actual:float array -> predicted:float array -> float

(** [max_rel_err ~actual predicted] is max_i |pred_i - act_i| / |act_i|,
    skipping entries with |act_i| < eps. *)
val max_rel_err : ?eps:float -> actual:float array -> float array -> float
