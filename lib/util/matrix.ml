type t = { r : int; c : int; d : float array }

exception Singular of { n : int; column : int; pivot : float }

let () =
  Printexc.register_printer (function
    | Singular { n; column; pivot } ->
        Some
          (Printf.sprintf
             "Matrix.lu_factor: singular matrix (n=%d, best |pivot| %.3e in \
              column %d)"
             n pivot column)
    | _ -> None)

let create r c =
  if r <= 0 || c <= 0 then invalid_arg "Matrix.create: non-positive dims";
  { r; c; d = Array.make (r * c) 0.0 }

let rows m = m.r
let cols m = m.c

let get m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Matrix.get: index out of bounds";
  m.d.((i * m.c) + j)

let set m i j v =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Matrix.set: index out of bounds";
  m.d.((i * m.c) + j) <- v

let add_to m i j v = set m i j (get m i j +. v)

let of_rows a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Matrix.of_rows: no rows";
  let c = Array.length a.(0) in
  let m = create r c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Matrix.of_rows: ragged rows";
      Array.iteri (fun j v -> set m i j v) row)
    a;
  m

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let copy m = { m with d = Array.copy m.d }

let transpose m =
  let t = create m.c m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      set t j i (get m i j)
    done
  done;
  t

let mul a b =
  if a.c <> b.r then invalid_arg "Matrix.mul: dimension mismatch";
  let p = create a.r b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.c - 1 do
          p.d.((i * p.c) + j) <- p.d.((i * p.c) + j) +. (aik *. get b k j)
        done
    done
  done;
  p

let mulv a x =
  if a.c <> Array.length x then invalid_arg "Matrix.mulv: dimension mismatch";
  Array.init a.r (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.c - 1 do
        s := !s +. (a.d.((i * a.c) + j) *. x.(j))
      done;
      !s)

type lu = { n : int; f : float array; perm : int array }

let lu_factor a =
  if a.r <> a.c then invalid_arg "Matrix.lu_factor: not square";
  let n = a.r in
  let f = Array.copy a.d in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* partial pivot *)
    let piv = ref k and best = ref (Float.abs f.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs f.((i * n) + k) in
      if v > !best then begin
        best := v;
        piv := i
      end
    done;
    if !best < 1e-13 then raise (Singular { n; column = k; pivot = !best });
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let tmp = f.((k * n) + j) in
        f.((k * n) + j) <- f.((!piv * n) + j);
        f.((!piv * n) + j) <- tmp
      done;
      let tp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tp
    end;
    let pivot = f.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let l = f.((i * n) + k) /. pivot in
      f.((i * n) + k) <- l;
      if l <> 0.0 then
        for j = k + 1 to n - 1 do
          f.((i * n) + j) <- f.((i * n) + j) -. (l *. f.((k * n) + j))
        done
    done
  done;
  { n; f; perm }

let lu_solve { n; f; perm } b =
  if Array.length b <> n then invalid_arg "Matrix.lu_solve: bad RHS length";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution (unit lower) *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (f.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (f.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. f.((i * n) + i)
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let least_squares a b =
  if a.r < a.c then invalid_arg "Matrix.least_squares: underdetermined";
  if Array.length b <> a.r then
    invalid_arg "Matrix.least_squares: bad RHS length";
  let at = transpose a in
  let ata = mul at a in
  (* Tikhonov whisper keeps the normal equations well-posed when features
     are nearly collinear (e.g. Formula 3 with constant sensitivities). *)
  for i = 0 to ata.r - 1 do
    add_to ata i i 1e-9
  done;
  let atb = mulv at b in
  solve ata atb

let cholesky a =
  if a.r <> a.c then invalid_arg "Matrix.cholesky: not square";
  let n = a.r in
  let l = create n n in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to i do
         let s = ref (get a i j) in
         for k = 0 to j - 1 do
           s := !s -. (get l i k *. get l j k)
         done;
         if i = j then begin
           if !s <= 0.0 then raise Exit;
           set l i i (sqrt !s)
         end
         else set l i j (!s /. get l j j)
       done
     done
   with Exit -> ok := false);
  if !ok then Some l else None

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.c - 1 do
      Format.fprintf fmt "%s%10.4g" (if j > 0 then " " else "") (get m i j)
    done;
    Format.fprintf fmt "]@\n"
  done
