(** Dense linear algebra: the small kernel the circuit simulator (MNA) and
    the Formula-(3) least-squares fit need.  Row-major flat storage. *)

type t

(** Raised by [lu_factor] (and everything built on it) when the matrix is
    singular to working precision: [n] is the matrix order, [column] the
    elimination column and [pivot] the best |pivot| found there.  A printer
    is registered, so an uncaught one still renders the classic
    "Matrix.lu_factor: singular matrix (...)" message. *)
exception Singular of { n : int; column : int; pivot : float }

(** [create rows cols] is a zero matrix. *)
val create : int -> int -> t

(** [of_rows a] builds a matrix from an array of equal-length rows. *)
val of_rows : float array array -> t

(** [identity n] is the n-by-n identity. *)
val identity : int -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

(** [add_to m i j v] adds [v] to entry (i,j) — the MNA "stamp" primitive. *)
val add_to : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

(** [mul a b] is the matrix product. *)
val mul : t -> t -> t

(** [mulv a x] is the matrix–vector product. *)
val mulv : t -> float array -> float array

(** LU factorization with partial pivoting, reusable across many solves
    (the transient simulator factors once per timestep size). *)
type lu

(** [lu_factor a] factors a square matrix.  Raises [Singular] if singular
    to working precision. *)
val lu_factor : t -> lu

(** [lu_solve lu b] solves [A x = b] for the factored [A]; [b] is not
    modified. *)
val lu_solve : lu -> float array -> float array

(** [solve a b] is [lu_solve (lu_factor a) b]. *)
val solve : t -> float array -> float array

(** [least_squares a b] minimizes ||A x - b||_2 via the normal equations
    (A is m-by-n with m >= n); returns the n coefficients. *)
val least_squares : t -> float array -> float array

(** [cholesky a] is the lower-triangular Cholesky factor of a symmetric
    positive-definite matrix; [None] if not positive definite.  Used to
    validate inductance matrices. *)
val cholesky : t -> t option

val pp : Format.formatter -> t -> unit
