module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Usage = Eda_grid.Usage
module Cmap = Gsino.Congestion_map

type mode = Utilization | Shields

(* Sequential ramps, light -> dark.  Blue carries track utilization (the
   report's primary magnitude); orange carries shield counts (the second
   sequential context, a distinct hue so the two maps are never confused).
   Red is reserved for the over-capacity *status* and is never the ramp:
   over cells additionally get a dark stroke and a spelled-out tooltip, so
   the state is not encoded by color alone. *)
let blue_ramp =
  [|
    "#cde2fb"; "#b7d3f6"; "#9ec5f4"; "#86b6ef"; "#6da7ec"; "#5598e7";
    "#3987e5"; "#2a78d6"; "#256abf"; "#1c5cab"; "#184f95"; "#104281";
    "#0d366b";
  |]

let orange_ramp =
  [|
    "#fbe3c5"; "#f8d3a6"; "#f4c288"; "#eeb06c"; "#e79f52"; "#de8d3b";
    "#d37d27"; "#c76e17"; "#b8600c"; "#a75406"; "#954a04"; "#834003";
    "#713702";
  |]

let over_fill = "#e34948"
let over_stroke = "#7f1d1d"
let ink_muted = "#57534e"

let clamp01 t = if t < 0.0 then 0.0 else if t > 1.0 then 1.0 else t

let ramp_color ramp t =
  let n = Array.length ramp in
  let i = int_of_float (Float.round (clamp01 t *. float_of_int (n - 1))) in
  ramp.(max 0 (min (n - 1) i))

let label_attrs =
  [
    ("font-size", "11");
    ("font-family", "system-ui, sans-serif");
    ("fill", ink_muted);
  ]

let swatch ~x ~y ?(attrs = []) fill =
  Svg.rect ~x ~y ~w:14.0 ~h:14.0
    ~attrs:([ ("fill", fill); ("rx", "2") ] @ attrs)
    ()

let legend ~mode ~y ~max_shields =
  let txt x s = Svg.text ~x ~y:(y +. 11.0) ~attrs:label_attrs s in
  let stops = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let ramp = match mode with Utilization -> blue_ramp | Shields -> orange_ramp in
  let x0 = 30.0 in
  let swatches =
    List.mapi
      (fun i t -> swatch ~x:(x0 +. (float_of_int i *. 16.0)) ~y (ramp_color ramp t))
      stops
  in
  let x_end = x0 +. (float_of_int (List.length stops) *. 16.0) +. 4.0 in
  match mode with
  | Utilization ->
      (txt 0.0 "0%" :: swatches)
      @ [
          txt x_end "100%";
          swatch ~x:(x_end +. 44.0) ~y
            ~attrs:[ ("stroke", over_stroke); ("stroke-width", "1.5") ]
            over_fill;
          txt (x_end +. 62.0) "over capacity (util > 100%)";
        ]
  | Shields ->
      (txt 0.0 "0" :: swatches)
      @ [ txt x_end (Printf.sprintf "%d shields" max_shields) ]

(* Cells are ~14px squares with a 2px surface gap; row y = height-1 (the
   north edge of the grid) renders at the top. *)
let render ?(cell_px = 14) ?(gap_px = 2) ~mode usage dir =
  let grid = Usage.grid usage in
  let w = Grid.width grid and h = Grid.height grid in
  let cells = Cmap.cells usage dir in
  let max_shields =
    List.fold_left (fun m c -> max m c.Cmap.shields) 1 cells
  in
  let step = cell_px + gap_px in
  let plot_w = (w * step) - gap_px in
  let plot_h = (h * step) - gap_px in
  let rects =
    List.map
      (fun c ->
        let x = float_of_int (c.Cmap.x * step) in
        let y = float_of_int ((h - 1 - c.Cmap.y) * step) in
        let over = Cmap.over_capacity c in
        let fill, extra =
          match mode with
          | Utilization ->
              if over then
                (over_fill, [ ("stroke", over_stroke); ("stroke-width", "1.5") ])
              else (ramp_color blue_ramp c.Cmap.util, [])
          | Shields ->
              ( ramp_color orange_ramp
                  (float_of_int c.Cmap.shields /. float_of_int max_shields),
                [] )
        in
        let tooltip =
          Printf.sprintf
            "(%d,%d) %s: %d nets, %d shields, cap %d, util %.0f%%%s" c.Cmap.x
            c.Cmap.y (Dir.to_string dir) c.Cmap.nets c.Cmap.shields c.Cmap.cap
            (100.0 *. c.Cmap.util)
            (if over then " - OVER CAPACITY" else "")
        in
        Svg.rect ~x ~y ~w:(float_of_int cell_px) ~h:(float_of_int cell_px)
          ~attrs:(("fill", fill) :: ("rx", "2") :: extra)
          ~tooltip ())
      cells
  in
  let legend_y = float_of_int (plot_h + 10) in
  let svg_w = max plot_w 420 in
  let svg_h = plot_h + 10 + 14 + 4 in
  Svg.svg ~w:svg_w ~h:svg_h
    (rects @ legend ~mode ~y:legend_y ~max_shields)

(* The analyzer's RUDY expected-demand map on the utilization encoding:
   same ramp, same over-capacity status, so prediction and realization
   read identically side by side. *)
let render_predicted ?(cell_px = 14) ?(gap_px = 2) grid demand dir =
  let w = Grid.width grid and h = Grid.height grid in
  let step = cell_px + gap_px in
  let plot_w = (w * step) - gap_px in
  let plot_h = (h * step) - gap_px in
  let rects =
    List.init (Grid.num_regions grid) (fun r ->
        let pt = Grid.region_pt grid r in
        let cap = Grid.cap grid pt dir in
        let d = demand.(r) in
        let util = if cap > 0 then d /. float_of_int cap else 0.0 in
        let over = util > 1.0 in
        let x = float_of_int (pt.Eda_geom.Point.x * step) in
        let y = float_of_int ((h - 1 - pt.Eda_geom.Point.y) * step) in
        let fill, extra =
          if over then
            (over_fill, [ ("stroke", over_stroke); ("stroke-width", "1.5") ])
          else (ramp_color blue_ramp util, [])
        in
        let tooltip =
          Printf.sprintf
            "(%d,%d) %s: expected demand %.1f tracks, cap %d, predicted util \
             %.0f%%%s"
            pt.Eda_geom.Point.x pt.Eda_geom.Point.y (Dir.to_string dir) d cap
            (100.0 *. util)
            (if over then " - PREDICTED OVER CAPACITY" else "")
        in
        Svg.rect ~x ~y ~w:(float_of_int cell_px) ~h:(float_of_int cell_px)
          ~attrs:(("fill", fill) :: ("rx", "2") :: extra)
          ~tooltip ())
  in
  let legend_y = float_of_int (plot_h + 10) in
  Svg.svg ~w:(max plot_w 420)
    ~h:(plot_h + 10 + 14 + 4)
    (rects @ legend ~mode:Utilization ~y:legend_y ~max_shields:1)
