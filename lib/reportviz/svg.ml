let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&#39;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type attr = string * string

let render_attrs attrs =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)

let el tag attrs children =
  Printf.sprintf "<%s%s>%s</%s>" tag (render_attrs attrs)
    (String.concat "" children)
    tag

let leaf tag attrs = Printf.sprintf "<%s%s/>" tag (render_attrs attrs)

let f x = Printf.sprintf "%g" x
let i = string_of_int

let text ~x ~y ?(attrs = []) s =
  el "text" ([ ("x", f x); ("y", f y) ] @ attrs) [ escape s ]

let rect ~x ~y ~w ~h ?(attrs = []) ?(tooltip = "") () =
  let a = [ ("x", f x); ("y", f y); ("width", f w); ("height", f h) ] @ attrs in
  if tooltip = "" then leaf "rect" a else el "rect" a [ el "title" [] [ escape tooltip ] ]

let svg ~w ~h children =
  el "svg"
    [
      ("xmlns", "http://www.w3.org/2000/svg");
      ("viewBox", Printf.sprintf "0 0 %d %d" w h);
      ("width", i w);
      ("height", i h);
      ("role", "img");
    ]
    children
