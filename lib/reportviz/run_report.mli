(** Self-contained run reports over a finished {!Gsino.Flow.result} and a
    metrics {!Eda_obs.Metrics.snapshot}.

    The HTML report is a single file with inline CSS and inline SVG — no
    external assets, scripts or network references — containing headline
    stat tiles, a per-phase timing table (this run plus the
    process-cumulative [flow.phase_seconds] gauges), per-region
    utilization and shield heatmaps for both routing directions, the
    per-net noise-margin audit (worst first, against the technology's
    sink noise bound), the Phase I Kth-budget distribution, charts of
    every histogram instrument, and the plain-text metrics summary as an
    appendix.

    The text report carries the same story for terminals and logs:
    {!Gsino.Flow.pp_summary}, the ASCII congestion map, the worst noise
    margins and {!Gsino.Report.metrics_summary}. *)

(** [html ~snapshot result] — the full report as an HTML string.  [tech]
    (default {!Gsino.Tech.default}) must be the technology the flow ran
    with: it supplies the LSK table and noise bound for the audit. *)
val html :
  ?tech:Gsino.Tech.t ->
  ?title:string ->
  snapshot:Eda_obs.Metrics.snapshot ->
  Gsino.Flow.result ->
  string

(** [text ~snapshot result] — the plain-text report. *)
val text :
  ?tech:Gsino.Tech.t ->
  snapshot:Eda_obs.Metrics.snapshot ->
  Gsino.Flow.result ->
  string

(** [write_html ~snapshot path result] — {!html} to a file. *)
val write_html :
  ?tech:Gsino.Tech.t ->
  ?title:string ->
  snapshot:Eda_obs.Metrics.snapshot ->
  string ->
  Gsino.Flow.result ->
  unit
