(** Per-region heatmaps over {!Gsino.Congestion_map.cells}, rendered as
    inline SVG for the run report.

    Two sequential encodings, one per {!mode}: track utilization on a
    light-to-dark blue ramp, shield counts on an orange ramp (normalised
    to the grid's maximum).  Over-capacity regions are flagged with the
    reserved status red plus a dark stroke and a spelled-out tooltip —
    never color alone.  Every cell carries an SVG [<title>] tooltip with
    its coordinates, net/shield counts, capacity and utilization; a
    legend strip sits under the grid. *)

type mode = Utilization | Shields

(** [render ~mode usage dir] — a self-contained [<svg>] fragment for one
    routing direction; grid row [height-1] (north) is drawn at the top.
    [cell_px]/[gap_px] default to 14px cells with a 2px surface gap. *)
val render :
  ?cell_px:int ->
  ?gap_px:int ->
  mode:mode ->
  Eda_grid.Usage.t ->
  Eda_grid.Dir.t ->
  string

(** [render_predicted grid demand dir] — the pre-route RUDY expected
    demand ({!Eda_analyze.Analyze.demand}) on the utilization encoding,
    so the report can show the analyzer's prediction side by side with
    the realized congestion of {!render}.  [demand.(r)] is the expected
    track demand of region [r]; cells where it exceeds capacity get the
    same red over-capacity status. *)
val render_predicted :
  ?cell_px:int ->
  ?gap_px:int ->
  Eda_grid.Grid.t ->
  float array ->
  Eda_grid.Dir.t ->
  string
