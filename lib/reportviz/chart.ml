let bar_color = "#2a78d6"
let ink = "#1c1917"
let ink_muted = "#57534e"

let label_attrs anchor =
  [
    ("font-size", "11");
    ("font-family", "system-ui, sans-serif");
    ("fill", ink_muted);
    ("text-anchor", anchor);
  ]

let value_attrs =
  [ ("font-size", "11"); ("font-family", "system-ui, sans-serif"); ("fill", ink) ]

(* Horizontal bars: label column on the left, thin rounded bars scaled to
   the maximum value, a direct value label at each bar's end (so no axis
   is needed) and a tooltip per bar. *)
let bars ?(width = 560) ?(color = bar_color) ?(fmt = Printf.sprintf "%g") rows =
  let row_h = 22 in
  let label_w = 170.0 in
  let value_w = 70.0 in
  let bar_max = float_of_int width -. label_w -. value_w in
  let maxv = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 rows in
  let items =
    List.concat
      (List.mapi
         (fun i (label, v) ->
           let v = Float.max 0.0 v in
           let y = float_of_int (i * row_h) in
           let bw =
             if maxv > 0.0 then Float.max 2.0 (v /. maxv *. bar_max) else 2.0
           in
           [
             Svg.text ~x:(label_w -. 8.0) ~y:(y +. 14.0)
               ~attrs:(label_attrs "end") label;
             Svg.rect ~x:label_w ~y:(y +. 3.0) ~w:bw ~h:14.0
               ~attrs:[ ("fill", color); ("rx", "2") ]
               ~tooltip:(label ^ ": " ^ fmt v) ();
             Svg.text ~x:(label_w +. bw +. 6.0) ~y:(y +. 14.0)
               ~attrs:value_attrs (fmt v);
           ])
         rows)
  in
  Svg.svg ~w:width ~h:((List.length rows * row_h) + 4) items

(* A metrics histogram as bars, one per occupied log2 bucket, labelled
   with the bucket's [2^(i-16), 2^(i-15)) value range. *)
let histogram ?width ?color (h : Eda_obs.Metrics.histogram_summary) =
  let rows =
    List.map
      (fun (i, c) ->
        ( Printf.sprintf "[%.4g, %.4g)"
            (Float.ldexp 1.0 (i - 16))
            (Float.ldexp 1.0 (i - 15)),
          float_of_int c ))
      h.Eda_obs.Metrics.buckets
  in
  bars ?width ?color ~fmt:(Printf.sprintf "%.0f") rows

(* Linear binning for the Kth-budget distribution (log2 buckets would
   lump most nets together: Kth values span less than a decade). *)
let linear_bins ?(bins = 10) values =
  match values with
  | [||] -> []
  | a ->
      let lo = Array.fold_left Float.min a.(0) a in
      let hi = Array.fold_left Float.max a.(0) a in
      let w = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
      let counts = Array.make bins 0 in
      Array.iter
        (fun v ->
          let i = min (bins - 1) (int_of_float ((v -. lo) /. w)) in
          counts.(max 0 i) <- counts.(max 0 i) + 1)
        a;
      List.init bins (fun i ->
          ( Printf.sprintf "[%.3g, %.3g)"
              (lo +. (float_of_int i *. w))
              (lo +. (float_of_int (i + 1) *. w)),
            float_of_int counts.(i) ))
