(** Minimal inline-SVG builder for the run report.

    Strings in, strings out: elements are rendered eagerly so the report
    generator can concatenate fragments without an intermediate tree.
    All attribute values and text content are XML-escaped. *)

(** Escape the five XML special characters (ampersand, angle brackets,
    quote, apostrophe) for use in attribute values or text nodes. *)
val escape : string -> string

type attr = string * string

(** [el tag attrs children] — ["<tag a=\"v\">children</tag>"]. *)
val el : string -> attr list -> string list -> string

(** [leaf tag attrs] — self-closing ["<tag a=\"v\"/>"]. *)
val leaf : string -> attr list -> string

(** Float / int attribute formatting ([%g] / decimal). *)
val f : float -> string

val i : int -> string

(** [text ~x ~y s] — a text node at (x, y), content escaped. *)
val text : x:float -> y:float -> ?attrs:attr list -> string -> string

(** [rect ~x ~y ~w ~h ()] — a rectangle; [?tooltip] adds a child
    [<title>] element (the SVG-native hover tooltip). *)
val rect :
  x:float ->
  y:float ->
  w:float ->
  h:float ->
  ?attrs:attr list ->
  ?tooltip:string ->
  unit ->
  string

(** [svg ~w ~h children] — root element with viewBox [0 0 w h] and the
    xmlns required for standalone rendering. *)
val svg : w:int -> h:int -> string list -> string
