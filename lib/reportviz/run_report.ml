module Flow = Gsino.Flow
module Tech = Gsino.Tech
module Budget = Gsino.Budget
module Noise = Gsino.Noise
module Cmap = Gsino.Congestion_map
module Report = Gsino.Report
module Metrics = Eda_obs.Metrics
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Netlist = Eda_netlist.Netlist

let esc = Svg.escape

(* Light-only surface (#fcfcfb), recessive borders, reserved status
   colors for the violation badges.  Everything inline: the report must
   open as a single file with no external assets. *)
let css =
  {|:root { color-scheme: light; }
body { background: #fcfcfb; color: #1c1917; font-family: system-ui, -apple-system, "Segoe UI", sans-serif; margin: 2rem auto; max-width: 980px; padding: 0 1rem; line-height: 1.45; }
h1 { font-size: 1.4rem; margin-bottom: .2rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid #e7e5e4; padding-bottom: .3rem; }
h3 { font-size: 1rem; margin-bottom: .3rem; }
p.sub { color: #57534e; margin-top: 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 1rem 0; }
.tile { border: 1px solid #e7e5e4; border-radius: 8px; padding: 10px 16px; background: #ffffff; min-width: 110px; }
.tile .v { font-size: 1.25rem; font-weight: 600; }
.tile .k { font-size: .72rem; color: #57534e; text-transform: uppercase; letter-spacing: .04em; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border-bottom: 1px solid #e7e5e4; padding: 6px 12px; text-align: right; }
th { color: #57534e; font-weight: 600; }
td.l, th.l { text-align: left; }
.bad { color: #7f1d1d; background: #fdecec; border-radius: 4px; padding: 2px 6px; font-weight: 600; }
.ok { color: #14532d; background: #e9f6ee; border-radius: 4px; padding: 2px 6px; }
pre { background: #f5f5f4; border: 1px solid #e7e5e4; border-radius: 8px; padding: 12px; overflow-x: auto; font-size: .8rem; }
figure { margin: 1rem 0; }
figcaption { font-size: .8rem; color: #57534e; margin-bottom: .4rem; }
details { margin: .5rem 0; }
summary { cursor: pointer; color: #57534e; font-size: .9rem; }
|}

let render_labels = function
  | [] -> ""
  | l ->
      "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"

let gauge_of snap ?labels name =
  match Metrics.find snap ?labels name with
  | Some (Metrics.Gauge g) -> g
  | Some (Metrics.Counter _) | Some (Metrics.Histogram _) | None -> 0.0

let audit_of ~tech (r : Flow.result) =
  Noise.audit ~grid:r.Flow.grid ~gcell_um:r.Flow.netlist.Netlist.gcell_um
    ~phase2:r.Flow.phase2
    ~lsk_model:(Tech.lsk_model tech)
    ~netlist:r.Flow.netlist ~routes:r.Flow.routes
    ~bound_v:tech.Tech.noise_bound_v ()

let phase_rows (r : Flow.result) =
  [
    ("route", r.Flow.route_s);
    ("sino", r.Flow.sino_s);
    ("refine", r.Flow.refine_s);
  ]

let html ?(tech = Tech.default) ?(title = "GSINO run report") ~snapshot
    (r : Flow.result) =
  let b = Buffer.create 16384 in
  let add = Buffer.add_string b in
  let addf fmt = Printf.ksprintf add fmt in
  let tile k v =
    addf "<div class=\"tile\"><div class=\"v\">%s</div><div class=\"k\">%s</div></div>\n"
      (esc v) (esc k)
  in
  add "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n";
  addf "<title>%s</title>\n" (esc title);
  add "<style>";
  add css;
  add "</style>\n</head>\n<body>\n";
  addf "<h1>%s</h1>\n" (esc title);
  addf "<p class=\"sub\">%s flow on <strong>%s</strong> &mdash; %d nets, %d&times;%d regions, gcell %.0f µm</p>\n"
    (esc (Flow.kind_name r.Flow.kind))
    (esc r.Flow.netlist.Netlist.name)
    (Netlist.num_nets r.Flow.netlist)
    (Grid.width r.Flow.grid) (Grid.height r.Flow.grid)
    r.Flow.netlist.Netlist.gcell_um;

  (* headline stat tiles *)
  let arow, acol, aum2 = r.Flow.area in
  add "<div class=\"tiles\">\n";
  tile "violations" (string_of_int (Flow.violation_count r));
  tile "violation rate" (Printf.sprintf "%.2f%%" (Flow.violation_pct r));
  tile "shields" (string_of_int r.Flow.shields);
  tile "avg WL (µm)" (Printf.sprintf "%.0f" r.Flow.avg_wl_um);
  tile "total WL (µm)" (Printf.sprintf "%.3e" r.Flow.total_wl_um);
  tile "area (µm²)" (Printf.sprintf "%.3e" aum2);
  add "</div>\n";
  addf "<p class=\"sub\">routing area %.0f &times; %.0f µm</p>\n" arow acol;

  (* per-phase wall-clock: this run plus the process-cumulative gauges *)
  add "<h2>Phase timings</h2>\n";
  add "<table>\n<thead><tr><th class=\"l\">phase</th><th>this run (s)</th><th>process total (s)</th></tr></thead>\n<tbody>\n";
  List.iter
    (fun (phase, s) ->
      addf "<tr><td class=\"l\">%s</td><td>%.2f</td><td>%.2f</td></tr>\n"
        (esc phase) s
        (gauge_of snapshot ~labels:[ ("phase", phase) ] "flow.phase_seconds"))
    (phase_rows r);
  add "</tbody>\n</table>\n";
  addf "<p class=\"sub\">%d flow run(s) recorded in this process</p>\n"
    (Metrics.counter_total snapshot "flow.runs");
  add
    (Chart.bars
       ~fmt:(Printf.sprintf "%.2f s")
       (List.map (fun (p, s) -> ("phase " ^ p, s)) (phase_rows r)));

  (* span self-time profile, present only when tracing was on — the
     report is written at the end of the run, so the ring holds the
     whole flow *)
  (match Eda_obs.Prof.current () with
  | [] -> ()
  | rows ->
      let all_self = List.fold_left (fun s p -> s +. p.Eda_obs.Prof.self_us) 0.0 rows in
      add "<h2>Profile</h2>\n";
      addf
        "<p class=\"sub\">top %d of %d span names by self time (total self \
         %.2f s); %d span(s) lost to trace-ring wraparound</p>\n"
        (min 10 (List.length rows))
        (List.length rows) (all_self /. 1e6)
        (Eda_obs.Trace.dropped_spans ());
      add
        "<table>\n<thead><tr><th class=\"l\">span</th><th>calls</th><th>total \
         (ms)</th><th>self (ms)</th><th>self %</th><th>p95 (ms)</th><th>max \
         (ms)</th></tr></thead>\n<tbody>\n";
      List.iteri
        (fun i p ->
          if i < 10 then
            addf
              "<tr><td class=\"l\">%s</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.1f</td><td>%.3f</td><td>%.3f</td></tr>\n"
              (esc p.Eda_obs.Prof.name) p.Eda_obs.Prof.calls
              (p.Eda_obs.Prof.total_us /. 1e3)
              (p.Eda_obs.Prof.self_us /. 1e3)
              (if all_self > 0.0 then 100.0 *. p.Eda_obs.Prof.self_us /. all_self
               else 0.0)
              (p.Eda_obs.Prof.p95_us /. 1e3)
              (p.Eda_obs.Prof.max_us /. 1e3))
        rows;
      add "</tbody>\n</table>\n");

  (* attribution drill-down, present only when --journal was on — the
     same folds gsino_explain performs, inlined for the report *)
  (match Eda_obs.Journal.events () with
  | [] -> ()
  | evs ->
      let module J = Eda_obs.Journal in
      let top_k = 5 in
      add "<h2>Top offenders</h2>\n";
      let dups = Metrics.counter_total snapshot "sino.panel_sig_dups"
      and uniq = Metrics.counter_total snapshot "sino.panel_sig_unique" in
      addf
        "<p class=\"sub\">%d journal events; panel signatures: %d unique, %d \
         duplicate solve(s) (%.1f%% cacheable)</p>\n"
        (List.length evs) uniq dups
        (if dups + uniq > 0 then
           100.0 *. float_of_int dups /. float_of_int (dups + uniq)
         else 0.0);
      let nets =
        J.Agg.top ~by:"reweights" ~k:top_k
          (J.Agg.by_dim "net"
             (List.filter (fun (e : J.event) -> e.J.ev = "net.route") evs))
      in
      if nets <> [] then begin
        add "<h3>Nets by route churn</h3>\n";
        add
          "<table>\n<thead><tr><th class=\"l\">net</th><th>reweights</th><th>pops</th><th>deletions</th></tr></thead>\n<tbody>\n";
        List.iter
          (fun row ->
            addf
              "<tr><td class=\"l\">%s</td><td>%.0f</td><td>%.0f</td><td>%.0f</td></tr>\n"
              (esc row.J.Agg.key)
              (J.Agg.datum row "reweights")
              (J.Agg.datum row "pops")
              (J.Agg.datum row "deletions"))
          nets;
        add "</tbody>\n</table>\n"
      end;
      let panels =
        List.filter_map
          (fun (e : J.event) ->
            if e.J.ev = "panel.solve" || e.J.ev = "panel.resolve" then
              match (J.dim_value e "region", J.dim_value e "dir") with
              | Some rg, Some d ->
                  Some { e with J.dim = ("panel", rg ^ "/" ^ d) :: e.J.dim }
              | (Some _ | None), _ -> None
            else None)
          evs
      in
      let hot = J.Agg.top ~by:"time_us" ~k:top_k (J.Agg.by_dim "panel" panels) in
      if hot <> [] then begin
        add "<h3>Panels by SINO time</h3>\n";
        add
          "<table>\n<thead><tr><th class=\"l\">panel (region/dir)</th><th>time \
           (ms)</th><th>events</th><th>shields</th></tr></thead>\n<tbody>\n";
        List.iter
          (fun row ->
            addf
              "<tr><td class=\"l\">%s</td><td>%.2f</td><td>%d</td><td>%.0f</td></tr>\n"
              (esc row.J.Agg.key)
              (J.Agg.datum row "time_us" /. 1e3)
              row.J.Agg.count
              (J.Agg.datum row "shields"))
          hot;
        add "</tbody>\n</table>\n"
      end);

  (* congestion + shield heatmaps, one pair per routing direction,
     preceded by the pre-route predicted demand so prediction quality is
     visible at a glance *)
  add "<h2>Congestion and shields</h2>\n";
  let analysis =
    Eda_analyze.Analyze.run (Flow.analyze_config tech) ~grid:r.Flow.grid
      ~sensitivity:r.Flow.sensitivity r.Flow.netlist
  in
  List.iter
    (fun dir ->
      let d = Dir.to_string dir in
      addf "<h3>%s tracks</h3>\n" (esc d);
      addf
        "<figure><figcaption>Predicted track demand per region (%s, pre-route \
         RUDY); red cells predicted over capacity</figcaption>\n%s\n</figure>\n"
        (esc d)
        (Heatmap.render_predicted r.Flow.grid
           (Eda_analyze.Analyze.demand analysis dir)
           dir);
      addf
        "<figure><figcaption>Track utilization per region (%s); red cells exceed capacity</figcaption>\n%s\n</figure>\n"
        (esc d)
        (Heatmap.render ~mode:Heatmap.Utilization r.Flow.usage dir);
      addf
        "<figure><figcaption>Shield tracks per region (%s)</figcaption>\n%s\n</figure>\n"
        (esc d)
        (Heatmap.render ~mode:Heatmap.Shields r.Flow.usage dir))
    Dir.all;

  (* per-net noise margins against the paper's 0.15 V sink bound *)
  let audit = audit_of ~tech r in
  let shown = 20 in
  addf "<h2>Noise margin audit</h2>\n";
  addf
    "<p class=\"sub\">worst %d of %d nets; bound %.3f V at every sink</p>\n"
    (min shown (List.length audit))
    (List.length audit) tech.Tech.noise_bound_v;
  add
    "<table>\n<thead><tr><th class=\"l\">net</th><th>LSK</th><th>noise (V)</th><th>margin (V)</th><th class=\"l\">status</th></tr></thead>\n<tbody>\n";
  List.iteri
    (fun i e ->
      if i < shown then
        addf
          "<tr><td class=\"l\">%d</td><td>%.2f</td><td>%.4f</td><td>%+.4f</td><td class=\"l\">%s</td></tr>\n"
          e.Noise.net e.Noise.lsk e.Noise.noise_v e.Noise.margin_v
          (if e.Noise.violating then "<span class=\"bad\">&#10007; violation</span>"
           else "<span class=\"ok\">&#10003; ok</span>"))
    audit;
  add "</tbody>\n</table>\n";

  (* Phase I budget: the LSK bound and the Kth spread it induces *)
  add "<h2>Crosstalk budget (Phase I)</h2>\n";
  add "<div class=\"tiles\">\n";
  tile "LSK budget" (Printf.sprintf "%.2f" r.Flow.budget.Budget.lsk_budget);
  tile "nets budgeted"
    (string_of_int (Array.length r.Flow.budget.Budget.kth));
  add "</div>\n";
  (match Chart.linear_bins r.Flow.budget.Budget.kth with
  | [] -> add "<p class=\"sub\">no nets to bin</p>\n"
  | rows ->
      add "<figure><figcaption>Kth bound distribution across nets</figcaption>\n";
      add (Chart.bars ~fmt:(Printf.sprintf "%.0f") rows);
      add "\n</figure>\n");

  (* every histogram instrument in the snapshot, collapsed by default *)
  let hists =
    List.filter_map
      (fun (name, labels, v) ->
        match v with
        | Metrics.Histogram h -> Some (name ^ render_labels labels, h)
        | Metrics.Counter _ | Metrics.Gauge _ -> None)
      (Metrics.entries snapshot)
  in
  if hists <> [] then begin
    add "<h2>Metric distributions</h2>\n";
    List.iter
      (fun (name, h) ->
        addf
          "<details><summary>%s (n=%d, mean %.2f, p50 %.2f, p95 %.2f, p99 %.2f)</summary>\n%s\n</details>\n"
          (esc name) h.Metrics.count (Metrics.histogram_mean h)
          (Metrics.quantile h 0.50) (Metrics.quantile h 0.95)
          (Metrics.quantile h 0.99) (Chart.histogram h))
      hists
  end;

  (* the full registry, as the text report prints it *)
  add "<h2>Metrics appendix</h2>\n<pre>";
  add (esc (Format.asprintf "%a" Report.metrics_summary snapshot));
  add "</pre>\n</body>\n</html>\n";
  Buffer.contents b

let text ?(tech = Tech.default) ~snapshot (r : Flow.result) =
  let b = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer b in
  Format.fprintf fmt "%a@\n@\n" Flow.pp_summary r;
  Cmap.render fmt r.Flow.usage;
  let audit = audit_of ~tech r in
  Format.fprintf fmt
    "@\nNoise margin audit (worst 10 of %d nets, bound %.3f V):@\n"
    (List.length audit) tech.Tech.noise_bound_v;
  List.iteri
    (fun i e ->
      if i < 10 then
        Format.fprintf fmt
          "  net %4d  lsk %8.2f  noise %.4f V  margin %+.4f V  %s@\n"
          e.Noise.net e.Noise.lsk e.Noise.noise_v e.Noise.margin_v
          (if e.Noise.violating then "VIOLATION" else "ok"))
    audit;
  Format.fprintf fmt "@\n";
  Report.metrics_summary fmt snapshot;
  Format.pp_print_flush fmt ();
  Buffer.contents b

let write_html ?tech ?title ~snapshot path r =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (html ?tech ?title ~snapshot r))
