(** Small inline-SVG charts for the run report: horizontal bar charts
    with direct value labels (no axes to read), plus helpers to turn a
    metrics histogram or a raw value array into chart rows. *)

(** [bars rows] — one thin horizontal bar per [(label, value)] row,
    scaled to the maximum value; each bar carries a tooltip and a direct
    value label formatted with [fmt] (default ["%g"]).  Negative values
    are clamped to zero.  [color] defaults to the report's series blue. *)
val bars :
  ?width:int ->
  ?color:string ->
  ?fmt:(float -> string) ->
  (string * float) list ->
  string

(** [histogram h] — {!bars} over the occupied log2 buckets of a metrics
    histogram, labelled with each bucket's value range. *)
val histogram :
  ?width:int -> ?color:string -> Eda_obs.Metrics.histogram_summary -> string

(** [linear_bins ?bins values] — equal-width bins over the value range,
    as [(range label, count)] rows ready for {!bars}; empty input gives
    an empty list. *)
val linear_bins : ?bins:int -> float array -> (string * float) list
