(* Instruments are registered lazily per phase name: a process that
   never routes exports no gc.* series, and repeated phases reuse the
   same cells through the registry's idempotent registration. *)
let g_minor phase = Metrics.gauge ~labels:[ ("phase", phase) ] "gc.minor_words"
let g_promoted phase = Metrics.gauge ~labels:[ ("phase", phase) ] "gc.promoted_words"
let g_major phase = Metrics.gauge ~labels:[ ("phase", phase) ] "gc.major_words"
let g_heap phase = Metrics.gauge ~labels:[ ("phase", phase) ] "gc.heap_words"
let c_minor phase = Metrics.counter ~labels:[ ("phase", phase) ] "gc.minor_collections"
let c_major phase = Metrics.counter ~labels:[ ("phase", phase) ] "gc.major_collections"
let c_compact phase = Metrics.counter ~labels:[ ("phase", phase) ] "gc.compactions"

(* minor_words comes from [Gc.minor_words ()], not the [Gc.stat] field:
   quick_stat's counter is only folded in at minor collections, so a
   phase that fits inside one minor heap would report zero allocation. *)
let record name ~minor0 ~minor1 (before : Gc.stat) (after : Gc.stat) =
  Metrics.accum (g_minor name) (minor1 -. minor0);
  Metrics.accum (g_promoted name)
    (after.Gc.promoted_words -. before.Gc.promoted_words);
  Metrics.accum (g_major name) (after.Gc.major_words -. before.Gc.major_words);
  Metrics.set (g_heap name) (float_of_int after.Gc.heap_words);
  Metrics.add (c_minor name)
    (max 0 (after.Gc.minor_collections - before.Gc.minor_collections));
  Metrics.add (c_major name)
    (max 0 (after.Gc.major_collections - before.Gc.major_collections));
  Metrics.add (c_compact name) (max 0 (after.Gc.compactions - before.Gc.compactions))

let phase name f =
  let before = Gc.quick_stat () in
  let minor0 = Gc.minor_words () in
  Fun.protect
    ~finally:(fun () ->
      record name ~minor0 ~minor1:(Gc.minor_words ()) before (Gc.quick_stat ()))
    f
