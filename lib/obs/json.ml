type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* shortest representation that round-trips *)
        let s = Printf.sprintf "%.17g" f in
        let short = Printf.sprintf "%.12g" f in
        Buffer.add_string b (if float_of_string short = f then short else s)
      else Buffer.add_string b "null"
  | Str s -> escape_to b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  to_buffer b j;
  Buffer.contents b

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 4096 in
      to_buffer b j;
      Buffer.add_char b '\n';
      Buffer.output_buffer oc b)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

(* ------------------------------ parser ------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %c, got %c" c d)
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    (* [!pos] is on the 'u' of a \u escape: consume it and exactly four
       hex digits (strict — '_' and the other int_of_string liberties are
       rejected), returning the code unit. *)
    let hex4 () =
      advance ();
      if !pos + 4 > n then fail "short \\u escape";
      let code = ref 0 in
      for _ = 1 to 4 do
        let d =
          match s.[!pos] with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | c -> fail (Printf.sprintf "bad \\u escape digit %c" c)
        in
        code := (!code lsl 4) lor d;
        advance ()
      done;
      !code
    in
    let add_utf8 code =
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xf0 lor (code lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
      end
    in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' ->
                   Buffer.add_char b '"';
                   advance ()
               | '\\' ->
                   Buffer.add_char b '\\';
                   advance ()
               | '/' ->
                   Buffer.add_char b '/';
                   advance ()
               | 'n' ->
                   Buffer.add_char b '\n';
                   advance ()
               | 'r' ->
                   Buffer.add_char b '\r';
                   advance ()
               | 't' ->
                   Buffer.add_char b '\t';
                   advance ()
               | 'b' ->
                   Buffer.add_char b '\b';
                   advance ()
               | 'f' ->
                   Buffer.add_char b '\012';
                   advance ()
               | 'u' ->
                   let code = hex4 () in
                   let code =
                     (* a high surrogate followed by \uDC00..\uDFFF is an
                        astral pair; a lone surrogate keeps its WTF-8
                        3-byte form *)
                     if
                       code >= 0xd800 && code <= 0xdbff
                       && !pos + 1 < n
                       && s.[!pos] = '\\'
                       && s.[!pos + 1] = 'u'
                     then begin
                       let save = !pos in
                       advance ();
                       let lo = hex4 () in
                       if lo >= 0xdc00 && lo <= 0xdfff then
                         0x10000 + ((code - 0xd800) lsl 10) + (lo - 0xdc00)
                       else begin
                         pos := save;
                         code
                       end
                     end
                     else code
                   in
                   add_utf8 code
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f when Float.is_finite f -> Float f
        | Some _ | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                field ()
            | Some '}' -> advance ()
            | Some c -> fail (Printf.sprintf "expected , or } in object, got %c" c)
            | None -> fail "unterminated object"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | Some c -> fail (Printf.sprintf "expected , or ] in array, got %c" c)
            | None -> fail "unterminated array"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg
