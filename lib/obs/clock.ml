external now_ns : unit -> int64 = "gsino_clock_monotonic_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s t0 = now_s () -. t0
