(** Per-phase GC telemetry.

    {!phase} samples [Gc.quick_stat] around a phase body and publishes
    the deltas as [gc.*] series labeled [("phase", name)], making
    allocation pressure per flow phase visible in every exported
    metrics snapshot:

    - [gc.minor_words], [gc.promoted_words], [gc.major_words] — gauges,
      {e accumulated} across the runs of the process (like
      [flow.phase_seconds]), in words.
    - [gc.minor_collections], [gc.major_collections], [gc.compactions]
      — counters, likewise cumulative.
    - [gc.heap_words] — gauge, {e set} to the major-heap size when the
      phase ended (last-run value).

    [Gc.quick_stat] does not trigger a collection and costs
    nanoseconds, so the probe is always on.  On OCaml 5 the counters
    are the {e calling domain's} view: allocation done by [Eda_exec]
    worker domains inside a parallel section is not attributed here —
    per-domain work shows up in the [exec.*] series instead.  A
    sequential seeded run allocates deterministically, so the word
    deltas are reproducible; across [--jobs] values they are not, and
    the CI determinism gate excludes the [gc.] prefix. *)

(** [phase name f] — run [f], charging GC deltas to [name].  Nesting is
    legal; an inner phase's allocation is charged to both (the probe
    reads global counters, it does not build a tree).  Re-raises
    whatever [f] raises after recording the deltas. *)
val phase : string -> (unit -> 'a) -> 'a
