type args = (string * string) list

type phase = B | E | I

type event = { name : string; ph : phase; ts_us : float; args : args }

type state = {
  buf : event array;
  capacity : int;
  mutable next : int;  (** total events ever recorded *)
  mutable t0 : float;  (** wall-clock origin, seconds *)
  mutable last_us : float;  (** monotonic clamp *)
  mutable depth : int;
  mutable stack : string list;  (** open span names, innermost first *)
}

let dummy_event = { name = ""; ph = I; ts_us = 0.0; args = [] }

let state : state option ref = ref None

(* The ring buffer is single-writer: only the domain that called [enable]
   (the flow coordinator) records.  Worker domains spawned by Eda_exec
   still run traced functions, but their span bookkeeping is a no-op —
   per-domain work is accounted in the sharded [exec.*] metrics instead. *)
let owner = ref (-1)

let on_owner () = (Domain.self () :> int) = !owner

let active () = match !state with Some s when on_owner () -> Some s | Some _ | None -> None

let enabled () = !state <> None

(* Ring overwrites surface in the metrics registry too, so an exported
   gsino-metrics-v1 snapshot carries the evidence that the trace is (or
   is not) complete; CI asserts this counter is zero.  Registered at
   [enable] so instrumented runs always export it, even at zero. *)
let m_dropped = lazy (Metrics.counter "trace.dropped_spans")

let enable ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.enable: non-positive capacity";
  ignore (Lazy.force m_dropped);
  owner := (Domain.self () :> int);
  state :=
    Some
      {
        buf = Array.make capacity dummy_event;
        capacity;
        next = 0;
        t0 = Unix.gettimeofday ();
        last_us = 0.0;
        depth = 0;
        stack = [];
      }

let disable () = state := None

let clear () = match !state with None -> () | Some s -> enable ~capacity:s.capacity ()

let now_us s =
  let t = (Unix.gettimeofday () -. s.t0) *. 1e6 in
  let t = if t > s.last_us then t else s.last_us in
  s.last_us <- t;
  t

let record s ev =
  if s.next >= s.capacity then Metrics.incr (Lazy.force m_dropped);
  s.buf.(s.next mod s.capacity) <- ev;
  s.next <- s.next + 1

let begin_span s name args =
  record s { name; ph = B; ts_us = now_us s; args };
  s.depth <- s.depth + 1;
  s.stack <- name :: s.stack

let end_span s =
  match s.stack with
  | [] -> () (* already balanced; nothing to close *)
  | name :: rest ->
      s.stack <- rest;
      s.depth <- s.depth - 1;
      record s { name; ph = E; ts_us = now_us s; args = [] }

let span_args name args f =
  match active () with
  | None -> f ()
  | Some s ->
      begin_span s name args;
      Fun.protect ~finally:(fun () -> end_span s) f

let span name f =
  match active () with None -> f () | Some _ -> span_args name [] f

let timed_span name f =
  let t0 = Unix.gettimeofday () in
  let v = span name f in
  (v, Unix.gettimeofday () -. t0)

let instant ?(args = []) name =
  match active () with
  | None -> ()
  | Some s -> record s { name; ph = I; ts_us = now_us s; args }

let depth () = match active () with None -> 0 | Some s -> s.depth

let dropped () =
  match !state with None -> 0 | Some s -> max 0 (s.next - s.capacity)

let events () =
  match !state with
  | None -> []
  | Some s ->
      let n = min s.next s.capacity in
      let first = s.next - n in
      List.init n (fun i -> s.buf.((first + i) mod s.capacity))

let ph_string = function B -> "B" | E -> "E" | I -> "i"

let event_json ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("ph", Json.Str (ph_string ev.ph));
      ("ts", Json.Float ev.ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let base = match ev.ph with I -> base @ [ ("s", Json.Str "t") ] | B | E -> base in
  match ev.args with
  | [] -> Json.Obj base
  | args ->
      Json.Obj
        (base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ])

let to_chrome_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (events ())));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("tool", Json.Str "gsino");
            ("droppedEvents", Json.Int (dropped ()));
          ] );
    ]

let write_chrome path = Json.write_file path (to_chrome_json ())
