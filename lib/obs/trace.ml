type args = (string * string) list

type phase = B | E | I

type event = { name : string; ph : phase; ts_us : float; args : args }

type state = {
  buf : event array;
  capacity : int;
  m_dropped : Metrics.counter;
  mutable next : int;  (** total events ever recorded *)
  mutable t0_ns : int64;  (** monotonic origin (Clock.now_ns at enable) *)
  mutable last_us : float;  (** non-decreasing clamp *)
  mutable depth : int;
  mutable stack : string list;  (** open span names, innermost first *)
  mutable dropped_spans : int;  (** B events evicted by ring wrap *)
}

let dummy_event = { name = ""; ph = I; ts_us = 0.0; args = [] }

(* The ring buffer is domain-local: only a domain that called [enable]
   records, into its own ring.  Worker domains spawned by Eda_exec never
   enable, so their span bookkeeping stays a no-op — per-domain work is
   accounted in the sharded [exec.*] metrics instead.  The serve daemon's
   request workers each enable/disable their own ring, giving every
   request an isolated trace context. *)
let state_key : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () = Domain.DLS.get state_key

let active () = !(state ())

let enabled () = active () <> None

let enable ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.enable: non-positive capacity";
  (* Ring overwrites surface in the metrics registry too, so an exported
     gsino-metrics-v1 snapshot carries the evidence that the trace is (or
     is not) complete; CI asserts this counter is zero.  The counter
     counts dropped *spans* (evicted begin events) — the unit the name
     promises — matching [dropped_spans ()]; [dropped ()] counts raw
     evicted events of any phase.  Registered at [enable] so instrumented
     runs always export it, even at zero (registration is idempotent). *)
  state ()
  := Some
       {
         buf = Array.make capacity dummy_event;
         capacity;
         m_dropped = Metrics.counter "trace.dropped_spans";
         next = 0;
         t0_ns = Clock.now_ns ();
         last_us = 0.0;
         depth = 0;
         stack = [];
         dropped_spans = 0;
       }

let disable () = state () := None

let clear () =
  match active () with None -> () | Some s -> enable ~capacity:s.capacity ()

(* Microseconds since [enable] on the monotonic clock, clamped
   non-decreasing (the clamp is belt-and-braces: CLOCK_MONOTONIC already
   never steps backwards, but the gettimeofday fallback can). *)
let now_us s =
  let t = Int64.to_float (Int64.sub (Clock.now_ns ()) s.t0_ns) /. 1e3 in
  let t = if t > s.last_us then t else s.last_us in
  s.last_us <- t;
  t

let record s ev =
  (if s.next >= s.capacity then begin
     (* the ring wrapped: this write evicts the oldest buffered event.
        An evicted B orphans its E — that is one whole span lost from the
        export, and what the dropped_spans accounting counts. *)
     let evicted = s.buf.(s.next mod s.capacity) in
     match evicted.ph with
     | B ->
         s.dropped_spans <- s.dropped_spans + 1;
         Metrics.incr s.m_dropped
     | E | I -> ()
   end);
  s.buf.(s.next mod s.capacity) <- ev;
  s.next <- s.next + 1

let begin_span s name args =
  record s { name; ph = B; ts_us = now_us s; args };
  s.depth <- s.depth + 1;
  s.stack <- name :: s.stack

let end_span s =
  match s.stack with
  | [] -> () (* already balanced; nothing to close *)
  | name :: rest ->
      s.stack <- rest;
      s.depth <- s.depth - 1;
      record s { name; ph = E; ts_us = now_us s; args = [] }

let span_args name args f =
  match active () with
  | None -> f ()
  | Some s ->
      begin_span s name args;
      Fun.protect ~finally:(fun () -> end_span s) f

let span name f =
  match active () with None -> f () | Some _ -> span_args name [] f

(* Durations come from the monotonic clock: these feed
   flow.phase_seconds and the bench stage tables, where an NTP step
   through a wall-clock interval would fabricate a regression. *)
let timed_span name f =
  let t0 = Clock.now_s () in
  let v = span name f in
  (v, Clock.elapsed_s t0)

let instant ?(args = []) name =
  match active () with
  | None -> ()
  | Some s -> record s { name; ph = I; ts_us = now_us s; args }

let depth () = match active () with None -> 0 | Some s -> s.depth

let dropped () =
  match active () with None -> 0 | Some s -> max 0 (s.next - s.capacity)

let dropped_spans () =
  match active () with None -> 0 | Some s -> s.dropped_spans

let events () =
  match active () with
  | None -> []
  | Some s ->
      let n = min s.next s.capacity in
      let first = s.next - n in
      List.init n (fun i -> s.buf.((first + i) mod s.capacity))

(* Pair-safe view of the buffer: when the ring wrapped, a span's B event
   may have been evicted while its E survived.  Such an orphaned E —
   recognisable as an end event arriving at nesting depth 0 within the
   window — would corrupt the stack-based B/E pairing every trace viewer
   performs, so it is removed here.  Unclosed B events (spans still open,
   or whose E is yet to come) are kept: viewers render them as running
   spans, which is accurate. *)
let paired_events () =
  let depth = ref 0 in
  List.filter
    (fun ev ->
      match ev.ph with
      | B ->
          incr depth;
          true
      | E ->
          if !depth > 0 then begin
            decr depth;
            true
          end
          else false (* orphan: begin event evicted by the ring *)
      | I -> true)
    (events ())

let ph_string = function B -> "B" | E -> "E" | I -> "i"

let event_json ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("ph", Json.Str (ph_string ev.ph));
      ("ts", Json.Float ev.ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let base = match ev.ph with I -> base @ [ ("s", Json.Str "t") ] | B | E -> base in
  match ev.args with
  | [] -> Json.Obj base
  | args ->
      Json.Obj
        (base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ])

let to_chrome_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (paired_events ())));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("tool", Json.Str "gsino");
            ("droppedEvents", Json.Int (dropped ()));
            ("droppedSpans", Json.Int (dropped_spans ()));
          ] );
    ]

let write_chrome path = Json.write_file path (to_chrome_json ())
