/* Monotonic clock for the observability layer.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and manual clock changes, so
 * durations derived from it (flow.phase_seconds, deadlines, the trace
 * timebase, exec.domain_busy_ns) cannot go negative or jump.  Falls back
 * to gettimeofday only where no monotonic source exists. */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value gsino_clock_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000 +
                           (int64_t)tv.tv_usec * 1000);
  }
}
