(** Span tracing with Chrome-trace export.

    Nestable spans over the monotonic {!Clock} (microseconds since
    {!enable}; immune to NTP steps), recorded into a fixed-capacity ring
    buffer of begin/end/instant events.  Disabled by default: until {!enable} is called, {!span} is a
    bool test plus a direct call of its thunk — no event, no timestamp,
    no allocation — so leaving instrumentation in the hot paths costs
    nothing in production runs ({!timed_span} additionally reads the
    clock twice, because its callers need the duration regardless).

    {!write_chrome} / {!to_chrome_json} render the buffer in the Chrome
    Trace Event format (JSON object with a ["traceEvents"] array of
    ["B"]/["E"]/["i"] events, timestamps in µs), loadable by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.

    Domain-local: the ring (and the enabled flag) lives in domain-local
    storage, so each domain that calls {!enable} records into — and
    exports from — its own buffer.  On a domain that never enabled (an
    [Eda_exec] worker) {!span}/{!instant} still run their thunk but
    record nothing, so traced code can be fanned out without racing any
    buffer; per-domain work shows up in the sharded [exec.*] metrics
    instead.  A long-lived server gives each request an isolated trace
    context by enabling/disabling on the domain serving it. *)

type args = (string * string) list

type phase = B | E | I

type event = {
  name : string;
  ph : phase;
  ts_us : float;  (** relative to {!enable}; non-decreasing *)
  args : args;
}

(** [enable ?capacity ()] — start recording (clears any previous buffer).
    When more than [capacity] (default 65536) events are recorded the
    oldest are overwritten; see {!dropped}. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [span name f] — run [f] inside a [name] span.  The closing event is
    emitted even when [f] raises.  When disabled this is exactly [f ()]. *)
val span : string -> (unit -> 'a) -> 'a

(** [span_args name args f] — as {!span}, with begin-event arguments. *)
val span_args : string -> args -> (unit -> 'a) -> 'a

(** [timed_span name f] — [span], plus the monotonic-clock seconds [f]
    took.  The duration is measured (and returned) even when tracing is
    disabled. *)
val timed_span : string -> (unit -> 'a) -> 'a * float

(** A zero-duration marker event. *)
val instant : ?args:args -> string -> unit

(** Current span nesting depth (0 at top level). *)
val depth : unit -> int

(** Buffered events, oldest first.  Begin/end events balance unless the
    ring wrapped (check {!dropped}) or spans are still open. *)
val events : unit -> event list

(** {!events} with orphaned end events removed: when the ring wraps, a
    span's begin event can be evicted while its end event survives, and
    such an unmatched ["E"] corrupts the stack-based pairing every trace
    viewer performs.  This is the view {!to_chrome_json} exports and
    {!Prof} folds; begin events whose end is still pending are kept
    (viewers render them as running spans). *)
val paired_events : unit -> event list

(** Events of any phase overwritten since {!enable}. *)
val dropped : unit -> int

(** Spans lost to ring wraparound since {!enable} — begin events that
    were overwritten, orphaning their end events.  Mirrored by the
    [trace.dropped_spans] {!Metrics} counter (registered by {!enable},
    cumulative across the process), so exported metrics snapshots record
    whether the trace ring ever lost a span. *)
val dropped_spans : unit -> int

val clear : unit -> unit

val to_chrome_json : unit -> Json.t

(** [write_chrome path] — write the Chrome-trace JSON file. *)
val write_chrome : string -> unit
