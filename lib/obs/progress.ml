type state = {
  owner : int;  (** Domain.self of the enabling domain, as int *)
  interval_ms : int;
  emit : string -> unit;
  t_start : float;  (** monotonic seconds at enable *)
  mutable deadline : (unit -> int option) option;
  mutable phase : string;
  mutable items_done : int;
  mutable items_total : int;  (** 0 = unknown *)
  mutable last_emit : float;
  mutable countdown : int;
      (** ticks left before the next clock read — keeps the enabled-path
          cost of {!tick} at a few loads for all but 1-in-[stride] calls *)
}

let stride = 64

let default_emit line =
  prerr_string line;
  prerr_newline ()

let current : state option ref = ref None

let enable ?(interval_ms = 1000) ?(emit = default_emit) () =
  current :=
    Some
      {
        owner = (Domain.self () :> int);
        interval_ms = max 1 interval_ms;
        emit;
        t_start = Clock.now_s ();
        deadline = None;
        phase = "";
        items_done = 0;
        items_total = 0;
        last_emit = neg_infinity;
        countdown = 0;
      }

let disable () = current := None
let enabled () = !current <> None

let on_owner s = (Domain.self () :> int) = s.owner

let set_deadline f =
  match !current with
  | Some s when on_owner s -> s.deadline <- Some f
  | _ -> ()

let line s now =
  let b = Buffer.create 96 in
  Buffer.add_string b "[gsino] phase=";
  Buffer.add_string b (if s.phase = "" then "-" else s.phase);
  if s.items_done > 0 || s.items_total > 0 then begin
    Printf.bprintf b " items=%d" s.items_done;
    if s.items_total > 0 then
      Printf.bprintf b "/%d (%d%%)" s.items_total
        (int_of_float (100.0 *. float_of_int s.items_done
                       /. float_of_int s.items_total))
  end;
  Printf.bprintf b " elapsed=%.1fs" (now -. s.t_start);
  (match s.deadline with
  | Some f -> (
      match f () with
      | Some ms -> Printf.bprintf b " left=%.1fs" (float_of_int ms /. 1e3)
      | None -> ())
  | None -> ());
  Buffer.contents b

let emit_now s =
  let now = Clock.now_s () in
  s.last_emit <- now;
  s.emit (line s now)

let phase name =
  match !current with
  | Some s when on_owner s ->
      s.phase <- name;
      s.items_done <- 0;
      s.items_total <- 0;
      s.countdown <- 0;
      emit_now s
  | _ -> ()

let tick ?items_total ~items_done () =
  match !current with
  | None -> ()
  | Some s ->
      if on_owner s then begin
        s.items_done <- items_done;
        (match items_total with Some t -> s.items_total <- t | None -> ());
        if s.countdown <= 0 then begin
          s.countdown <- stride;
          let now = Clock.now_s () in
          if (now -. s.last_emit) *. 1000.0 >= float_of_int s.interval_ms then begin
            s.last_emit <- now;
            s.emit (line s now)
          end
        end
        else s.countdown <- s.countdown - 1
      end
