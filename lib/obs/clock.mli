(** Monotonic time source shared by the observability and guard layers.

    Wall clocks ([Unix.gettimeofday]) are stepped by NTP and manual
    adjustment, which can make an interval measured across a step
    negative or wildly long.  Every duration this codebase reports or
    acts on — [flow.phase_seconds], {!Eda_guard.Deadline} budgets, the
    {!Trace} timebase, [exec.domain_busy_ns] — therefore reads this
    clock instead: [CLOCK_MONOTONIC] via a C stub, falling back to
    [gettimeofday] only on platforms without one.

    The epoch is arbitrary (typically boot time): only differences of
    two readings are meaningful. *)

(** Nanoseconds from an arbitrary fixed origin; never decreases. *)
val now_ns : unit -> int64

(** {!now_ns} in seconds, as a float ([now_ns / 1e9]). *)
val now_s : unit -> float

(** [elapsed_s t0] — seconds since the reading [t0] (from {!now_s}). *)
val elapsed_s : float -> float
