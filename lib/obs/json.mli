(** Minimal JSON tree, printer and parser.

    Just enough for the observability exports ({!Metrics.to_json},
    {!Trace.to_chrome_json}) and for tests to round-trip them without
    pulling a JSON dependency into the build.  The printer always emits
    valid JSON (strings are escaped, non-finite floats are rendered as
    [null], as Chrome's trace importer expects); the parser accepts the
    full JSON grammar minus exotic number forms ([1e999] overflows to
    [inf] and is rejected). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [to_buffer b j] — append the rendering of [j] to [b]. *)
val to_buffer : Buffer.t -> t -> unit

(** [write_file path j] — write [j] followed by a newline. *)
val write_file : string -> t -> unit

(** [of_string s] — parse one JSON value; [Error msg] names the offending
    byte offset.  Trailing whitespace is allowed, trailing garbage is
    not.  [\uXXXX] escapes must be exactly four hex digits; surrogate
    pairs combine into one astral code point (a lone surrogate keeps its
    3-byte encoding). *)
val of_string : string -> (t, string) result

(** [read_file path] — {!of_string} on the file's whole contents;
    [Error] on I/O failure too. *)
val read_file : string -> (t, string) result

(** Object field lookup; [None] on non-objects or missing keys. *)
val member : string -> t -> t option
