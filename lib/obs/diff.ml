type scalar = { kind : string; value : float }

let scalar_of = function
  | Metrics.Counter c -> { kind = "counter"; value = float_of_int c }
  | Metrics.Gauge g -> { kind = "gauge"; value = g }
  | Metrics.Histogram h -> { kind = "histogram"; value = float_of_int h.Metrics.count }

type change =
  | Added of scalar
  | Removed of scalar
  | Changed of { kind : string; before : float; after : float }
  | Unchanged of scalar

type entry = { name : string; labels : Metrics.labels; change : change }

let delta = function
  | Added s -> s.value
  | Removed s -> -.s.value
  | Changed { before; after; _ } -> after -. before
  | Unchanged _ -> 0.0

let rel_delta = function
  | Added _ | Removed _ -> None
  | Unchanged _ -> Some 0.0
  | Changed { before; after; _ } ->
      if before = 0.0 then None else Some ((after -. before) /. Float.abs before)

let changed e = match e.change with Unchanged _ -> false | Added _ | Removed _ | Changed _ -> true

(* Merge-join on the sorted (name, labels) keys of the two snapshots. *)
let diff before after =
  let key (n, l, _) = (n, l) in
  let rec go acc before after =
    match (before, after) with
    | [], [] -> List.rev acc
    | ((n, l, v) :: rest), [] ->
        go ({ name = n; labels = l; change = Removed (scalar_of v) } :: acc) rest []
    | [], ((n, l, v) :: rest) ->
        go ({ name = n; labels = l; change = Added (scalar_of v) } :: acc) [] rest
    | (((bn, bl, bv) as b) :: brest), (((an, al, av) as a) :: arest) ->
        let c = compare (key b) (key a) in
        if c < 0 then
          go ({ name = bn; labels = bl; change = Removed (scalar_of bv) } :: acc) brest after
        else if c > 0 then
          go ({ name = an; labels = al; change = Added (scalar_of av) } :: acc) before arest
        else begin
          let sb = scalar_of bv and sa = scalar_of av in
          let kind = if sb.kind = sa.kind then sb.kind else sb.kind ^ "->" ^ sa.kind in
          let change =
            if sb.kind = sa.kind && sb.value = sa.value then Unchanged sa
            else Changed { kind; before = sb.value; after = sa.value }
          in
          go ({ name = an; labels = al; change } :: acc) brest arest
        end
  in
  go [] (Metrics.entries before) (Metrics.entries after)

(* ------------------------------ policy ------------------------------ *)

type direction = Up | Down | Any_change

type tolerance = {
  metric : string;
  max_abs : float option;
  max_rel : float option;
  direction : direction;
}

type policy = { tolerances : tolerance list; exclude : string list }

(* [exclude] prefixes drop whole metric families (prof., gc., exec.)
   from both the rendered diff and the gate: these series are wall-clock
   or scheduling shaped, so their drift is noise, and hiding them keeps
   the CI diff output signal-only. *)
let excluded policy name =
  List.exists (fun p -> String.starts_with ~prefix:p name) policy.exclude

let apply_exclude policy entries =
  List.filter (fun e -> not (excluded policy e.name)) entries

let policy_of_json j =
  let fail msg = Error msg in
  let exclude_of () =
    match Json.member "exclude" j with
    | None -> Ok []
    | Some (Json.List l) ->
        List.fold_left
          (fun acc x ->
            match (acc, x) with
            | Ok ps, Json.Str p -> Ok (p :: ps)
            | ( Ok _,
                ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
                | Json.List _ | Json.Obj _ ) ) ->
                Error "policy: exclude entries must be strings"
            | (Error _ as e), _ -> e)
          (Ok []) l
        |> Result.map List.rev
    | Some
        ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
        | Json.Obj _ ) ->
        fail "policy: exclude must be a list of name prefixes"
  in
  match Json.member "schema" j with
  | Some (Json.Str "gsino-diff-policy-v1") -> (
      match Json.member "tolerances" j with
      | Some (Json.List ts) -> (
          let tol_of t =
            match Json.member "metric" t with
            | Some (Json.Str metric) -> (
                let num key =
                  match Json.member key t with
                  | Some (Json.Int i) -> Ok (Some (float_of_int i))
                  | Some (Json.Float f) -> Ok (Some f)
                  | None -> Ok None
                  | Some
                      ( Json.Null | Json.Bool _ | Json.Str _ | Json.List _
                      | Json.Obj _ ) ->
                      Error (metric ^ ": " ^ key ^ " must be a number")
                in
                let dir =
                  match Json.member "direction" t with
                  | Some (Json.Str "up") | None -> Ok Up
                  | Some (Json.Str "down") -> Ok Down
                  | Some (Json.Str "both") -> Ok Any_change
                  | Some
                      ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
                      | Json.Str _ | Json.List _ | Json.Obj _ ) ->
                      Error (metric ^ ": direction must be up|down|both")
                in
                match (num "max_abs", num "max_rel", dir) with
                | Ok max_abs, Ok max_rel, Ok direction ->
                    Ok { metric; max_abs; max_rel; direction }
                | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
            | Some
                ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
                | Json.List _ | Json.Obj _ )
            | None ->
                Error "tolerance entry: missing string field 'metric'"
          in
          match
            List.fold_left
              (fun acc t ->
                match (acc, tol_of t) with
                | Ok l, Ok tol -> Ok (tol :: l)
                | (Error _ as e), _ | _, (Error _ as e) -> e)
              (Ok []) ts
          with
          | Ok l -> (
              match exclude_of () with
              | Ok exclude -> Ok { tolerances = List.rev l; exclude }
              | Error e -> Error e)
          | Error e -> Error e)
      | Some
          ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
          | Json.Obj _ )
      | None ->
          fail "policy: missing 'tolerances' list")
  | Some (Json.Str s) -> fail ("unsupported policy schema " ^ s)
  | Some
      ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
      | Json.Obj _ )
  | None ->
      fail "policy: missing schema (want gsino-diff-policy-v1)"

let load_policy path =
  match Json.read_file path with
  | Error msg -> Error (path ^ ": " ^ msg)
  | Ok j -> (
      match policy_of_json j with
      | Ok p -> Ok p
      | Error msg -> Error (path ^ ": " ^ msg))

type breach = { entry : entry option; tolerance : tolerance; reason : string }

let check policy entries =
  let check_one tol =
    let matching = List.filter (fun e -> e.name = tol.metric) entries in
    if matching = [] then
      [
        {
          entry = None;
          tolerance = tol;
          reason = "guarded metric absent from both snapshots";
        };
      ]
    else
      List.filter_map
        (fun e ->
          match e.change with
          | Unchanged _ -> None
          | Added _ ->
              Some
                { entry = Some e; tolerance = tol; reason = "series only in current" }
          | Removed _ ->
              Some
                {
                  entry = Some e;
                  tolerance = tol;
                  reason = "series missing from current";
                }
          | Changed { before; after; _ } ->
              let d = after -. before in
              let in_guarded_direction =
                match tol.direction with
                | Up -> d > 0.0
                | Down -> d < 0.0
                | Any_change -> true
              in
              if not in_guarded_direction then None
              else begin
                let abs_ok =
                  match tol.max_abs with
                  | Some m -> Float.abs d <= m
                  | None -> false
                in
                let rel_ok =
                  match tol.max_rel with
                  | Some m -> before <> 0.0 && Float.abs (d /. before) <= m
                  | None -> false
                in
                if abs_ok || rel_ok then None
                else begin
                  let describe =
                    match (tol.max_abs, tol.max_rel) with
                    | None, None -> "no drift allowed"
                    | Some a, None -> Printf.sprintf "max_abs %g exceeded" a
                    | None, Some r ->
                        Printf.sprintf "max_rel %g%% exceeded" (100.0 *. r)
                    | Some a, Some r ->
                        Printf.sprintf "max_abs %g and max_rel %g%% exceeded" a
                          (100.0 *. r)
                  in
                  Some
                    {
                      entry = Some e;
                      tolerance = tol;
                      reason =
                        Printf.sprintf "%+g (%s -> %s): %s" d
                          (Printf.sprintf "%g" before)
                          (Printf.sprintf "%g" after)
                          describe;
                    }
                end
              end)
        matching
  in
  List.concat_map check_one policy.tolerances

(* ---------------------------- rendering ----------------------------- *)

let series_name name labels =
  match labels with
  | [] -> name
  | l ->
      name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"

let pp_entry fmt e =
  let id = series_name e.name e.labels in
  match e.change with
  | Added s -> Format.fprintf fmt "+ %-44s %-9s %14s %14g" id s.kind "-" s.value
  | Removed s -> Format.fprintf fmt "- %-44s %-9s %14g %14s" id s.kind s.value "-"
  | Unchanged s ->
      Format.fprintf fmt "  %-44s %-9s %14g %14g" id s.kind s.value s.value
  | Changed { kind; before; after } ->
      let rel =
        if before = 0.0 then "    n/a"
        else Printf.sprintf "%+6.1f%%" (100.0 *. ((after -. before) /. Float.abs before))
      in
      Format.fprintf fmt "~ %-44s %-9s %14g %14g %+14g %s" id kind before after
        (after -. before) rel

let pp_breach fmt b =
  match b.entry with
  | None -> Format.fprintf fmt "%s: %s" b.tolerance.metric b.reason
  | Some e -> Format.fprintf fmt "%s: %s" (series_name e.name e.labels) b.reason

(* ------------------------------ history ----------------------------- *)

module History = struct
  type entry = {
    ts : float;
    meta : (string * string) list;
    snapshot : Metrics.snapshot;
  }

  let meta_string = function
    | Json.Str s -> s
    | Json.Int i -> string_of_int i
    | Json.Float f -> Printf.sprintf "%g" f
    | Json.Bool b -> string_of_bool b
    | Json.Null | Json.List _ | Json.Obj _ -> "?"

  let entry_of_json j =
    let ts =
      match Json.member "ts" j with
      | Some (Json.Int i) -> Ok (float_of_int i)
      | Some (Json.Float f) -> Ok f
      | Some
          ( Json.Null | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _ )
      | None ->
          Error "history entry: missing numeric 'ts'"
    in
    let meta =
      match j with
      | Json.Obj fields ->
          List.filter_map
            (fun (k, v) ->
              match k with
              | "schema" | "ts" | "snapshot" -> None
              | _ -> Some (k, meta_string v))
            fields
      | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
      | Json.List _ ->
          []
    in
    match (ts, Json.member "snapshot" j) with
    | Error e, _ -> Error e
    | Ok _, None -> Error "history entry: missing 'snapshot'"
    | Ok ts, Some s -> (
        match Metrics.of_json s with
        | Ok snapshot -> Ok { ts; meta; snapshot }
        | Error e -> Error e)

  (* JSONL, one snapshot per line, oldest first (bench appends). *)
  let load path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents ->
        let lines = String.split_on_char '\n' contents in
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
              let line = String.trim line in
              if line = "" then go (i + 1) acc rest
              else begin
                match Json.of_string line with
                | Error e ->
                    Error (Printf.sprintf "%s:%d: %s" path i e)
                | Ok j -> (
                    match entry_of_json j with
                    | Error e ->
                        Error (Printf.sprintf "%s:%d: %s" path i e)
                    | Ok entry -> go (i + 1) (entry :: acc) rest)
              end
        in
        go 1 [] lines

  type trend = {
    name : string;
    n : int;  (** snapshots the series appears in *)
    first : float;
    last : float;
    lo : float;
    hi : float;
  }

  (* One scalar per (snapshot, name): series summed across label sets,
     so e.g. flow.phase_seconds trends as total flow time. *)
  let scalar_by_name snap =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (name, _labels, v) ->
        let s = (scalar_of v).value in
        Hashtbl.replace tbl name
          (s +. Option.value ~default:0.0 (Hashtbl.find_opt tbl name)))
      (Metrics.entries snap);
    tbl

  let trends entries =
    let acc : (string, trend) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun e ->
        Hashtbl.iter
          (fun name v ->
            match Hashtbl.find_opt acc name with
            | None ->
                Hashtbl.replace acc name
                  { name; n = 1; first = v; last = v; lo = v; hi = v }
            | Some t ->
                Hashtbl.replace acc name
                  {
                    t with
                    n = t.n + 1;
                    last = v;
                    lo = Float.min t.lo v;
                    hi = Float.max t.hi v;
                  })
          (scalar_by_name e.snapshot))
      entries;
    Hashtbl.fold (fun _ t l -> t :: l) acc []
    |> List.sort (fun a b -> compare a.name b.name)

  let pp_trend fmt t =
    (* drift needs two snapshots and a finite, non-zero start: a
       single-snapshot history (bench's first run) or a NaN/inf series
       must render "n/a", never NaN% or a division by zero *)
    let rel =
      if t.n < 2 || t.first = 0.0 || not (Float.is_finite t.first) then
        "    n/a"
      else
        let pct = 100.0 *. ((t.last -. t.first) /. Float.abs t.first) in
        if Float.is_finite pct then Printf.sprintf "%+6.1f%%" pct
        else "    n/a"
    in
    Format.fprintf fmt "%-44s %3d %14g %14g %s %14g %14g" t.name t.n t.first
      t.last rel t.lo t.hi
end
