(** Leveled structured logging.

    A single process-wide logger with four levels and two sink formats:

    - human: [gsino: [info] message key=value ...] on a formatter
      (default stderr);
    - JSONL: one [{"level": ..., "msg": ..., "fields": {...}}] object per
      line on an output channel.

    The initial level comes from the [GSINO_LOG] environment variable
    ([debug] | [info] | [warn] | [error] | [quiet]; default [warn]), and
    [GSINO_LOG=json] / [GSINO_LOG=json:LEVEL] selects the JSONL sink —
    so library code can log unconditionally and deployments choose.  The
    CLIs' [-v]/[-q] flags override the level with {!set_level}.

    Messages below the current level are discarded after one integer
    comparison; the format arguments are never rendered. *)

type level = Debug | Info | Warn | Error

(** [Quiet] disables everything, including errors. *)
type threshold = Level of level | Quiet

val set_level : threshold -> unit
val current_level : unit -> threshold

(** [level_of_string "debug"] etc.; [Error msg] on unknown names. *)
val level_of_string : string -> (threshold, string) result

val level_name : level -> string

(** [would_log lvl] — true when a message at [lvl] would be emitted. *)
val would_log : level -> bool

type sink = Human of Format.formatter | Jsonl of out_channel

val set_sink : sink -> unit

(** [logf lvl ?fields fmt ...] — emit at [lvl] with structured
    [fields]. *)
val logf :
  level -> ?fields:(string * string) list -> ('a, Format.formatter, unit) format -> 'a

val debug : ?fields:(string * string) list -> ('a, Format.formatter, unit) format -> 'a
val info : ?fields:(string * string) list -> ('a, Format.formatter, unit) format -> 'a
val warn : ?fields:(string * string) list -> ('a, Format.formatter, unit) format -> 'a
val error : ?fields:(string * string) list -> ('a, Format.formatter, unit) format -> 'a
