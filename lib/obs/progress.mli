(** Live progress heartbeat ([--progress]).

    Long runs are silent by default; with progress enabled the flow
    emits a rate-limited one-line heartbeat
    ([[gsino] phase=route items=1234/5600 (22%) elapsed=12.3s left=47.2s])
    so an operator watching a multi-minute route knows which phase is
    running, how far along it is, and how much deadline budget remains.

    {!tick} is designed for inner loops: disabled it is one ref read,
    enabled it reads the monotonic clock only every few dozen calls and
    emits at most one line per [interval_ms].  Like {!Trace}, the
    emitter is single-writer — ticks from [Eda_exec] worker domains are
    ignored, so instrumented code can be fanned out freely.

    Lines go to [stderr] (never stdout, which report sinks like
    [--out -] may own); override [emit] to capture them in tests. *)

(** [enable ?interval_ms ?emit ()] — start heartbeating on the calling
    domain (at most one line per [interval_ms], default 1000).  [emit]
    defaults to writing [stderr] with a flush. *)
val enable : ?interval_ms:int -> ?emit:(string -> unit) -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [set_deadline f] — install the deadline-remaining provider (e.g.
    [fun () -> Eda_guard.Deadline.remaining_ms dl]); [None] omits the
    [left=] column.  Cleared by {!enable}/{!disable}. *)
val set_deadline : (unit -> int option) -> unit

(** [phase name] — enter phase [name]: resets the item counters and
    emits a heartbeat line immediately (phase transitions are the
    events an operator must not miss, rate limit notwithstanding). *)
val phase : string -> unit

(** [tick ~items_done ()] — report progress inside the current phase.
    [items_total] (sticky once given) adds the [/total (pct%)] form.
    Rate-limited; near-free when disabled or off-domain. *)
val tick : ?items_total:int -> items_done:int -> unit -> unit
