(** Process-global metrics registry.

    Named counters, gauges and log-scale histograms, optionally
    distinguished by a small static label set (e.g. [("phase", "route")]
    or [("dir", "H")]).  Instruments register once (typically at module
    initialisation or lazily at first use) and then mutate a single heap
    cell per event, so recording is an increment — cheap enough for the
    routers' inner loops.  Registration is idempotent: asking for an
    existing (name, labels) pair returns the same instrument; asking for
    the same pair with a different kind is a programming error
    ([Invalid_argument]).

    The registry is snapshot-based: {!snapshot} captures every
    instrument's current state immutably, {!merge} combines snapshots
    (counters and histograms add; gauges take the right-hand value), and
    {!to_json} renders the [gsino-metrics-v1] schema consumed by CI and
    the bench trajectory files.

    {2 Sharding contract (multicore)}

    Instrument cells are sharded per domain: a handle names one metric,
    but each domain that records through it writes a private
    domain-local cell, so recording is still a plain (unsynchronised)
    increment and never races.  The rules:

    - Registration is process-global and mutex-guarded: any domain may
      create any instrument at any time; (name, labels) pairs resolve to
      the same handle everywhere, and kind mismatches raise
      [Invalid_argument] as before.
    - {!snapshot} and {!reset} see {e only the calling domain's shard}.
      A worker domain finishing a batch takes [snapshot ()] of its own
      cells, [reset ()]s them, and hands the snapshot to the
      coordinator.
    - The coordinator folds worker shards into its own shard with
      {!absorb}, one at a time, in a deterministic (worker-index) order.
      [absorb] mutates only the calling domain's cells, so coordinators
      on distinct domains (the serve daemon's request workers) may absorb
      concurrently; re-entering [absorb] on the {e same} domain (two
      sys-threads sharing a shard) raises [Invalid_argument] — misuse
      fails loudly instead of silently corrupting counts.  [Eda_exec]
      does all of this automatically.
    - A long-lived process serving many requests on one domain gives each
      request a fresh context with {!rebase}: zero the shard {e and}
      shrink it back to a fixed baseline instrument set (captured with
      {!registered} at startup), so a snapshot at end of request [N] is
      byte-identical to one from a fresh process — instruments a previous
      request registered lazily do not leak into the next export.

    Everything below the snapshot layer ({!merge}, JSON, {!quantile}) is
    pure and safe anywhere. *)

(** Sorted, duplicate-free at registration; order given does not matter. *)
type labels = (string * string) list

type counter
type gauge
type histogram

(** {1 Registration} *)

val counter : ?labels:labels -> string -> counter
val gauge : ?labels:labels -> string -> gauge
val histogram : ?labels:labels -> string -> histogram

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit

(** [accum g v] — add [v]; gauges double as float accumulators (phase
    seconds across a suite). *)
val accum : gauge -> float -> unit

val gauge_value : gauge -> float

(** [observe h v] — record a sample.  Buckets are powers of two:
    bucket [i] counts samples in [[2^(i-16), 2^(i-15))]; values [<= 0]
    land in the underflow bucket, huge values in the overflow bucket. *)
val observe : histogram -> float -> unit

type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  buckets : (int * int) list;  (** (bucket index, count), sparse, sorted *)
}

val histogram_summary : histogram -> histogram_summary

(** Mean of observed samples; 0 when empty. *)
val histogram_mean : histogram_summary -> float

(** [quantile s q] — approximate [q]-quantile ([0..1], clamped) from the
    log2 buckets: the bucket holding the rank-[q*count] sample,
    interpolated linearly inside its [[2^(i-16), 2^(i-15))] range and
    clamped to the observed min/max (so p0 = min, p100 = max exactly; the
    interior is within a factor of 2).  0 when empty. *)
val quantile : histogram_summary -> float -> float

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

type snapshot

val snapshot : unit -> snapshot

(** All (name, labels, value) triples, sorted by name then labels. *)
val entries : snapshot -> (string * labels * value) list

(** [find snap ?labels name] — exact (name, labels) lookup. *)
val find : ?labels:labels -> snapshot -> string -> value option

(** [counter_total snap name] — sum of all counters called [name] across
    label sets; 0 when absent. *)
val counter_total : snapshot -> string -> int

(** Counters and histograms add; for a gauge the right-hand side wins
    (last-writer semantics). *)
val merge : snapshot -> snapshot -> snapshot

(** [gsino-metrics-v1]: [{"schema": ..., "metrics": [{"name", "kind",
    "labels", ...}]}]. *)
val to_json : snapshot -> Json.t

val write_json : string -> snapshot -> unit

(** [of_json j] — parse a [gsino-metrics-v1] document (the {!to_json}
    schema) back into a snapshot; [to_json] then [of_json] is the
    identity.  Used by [gsino_diff] to align two exported runs. *)
val of_json : Json.t -> (snapshot, string) result

(** [read_json path] — {!of_json} on a JSON file; errors are prefixed
    with the path. *)
val read_json : string -> (snapshot, string) result

(** Zero every instrument cell of the calling domain's shard
    (registrations survive). *)
val reset : unit -> unit

(** Every (name, labels) pair registered process-wide so far, sorted.
    The serve daemon captures this at startup as the per-request baseline
    for {!rebase}. *)
val registered : unit -> (string * labels) list

(** [rebase keys] — make the calling domain's shard consist of exactly
    the registered instruments in [keys], all zeroed: cells for keys not
    listed are dropped from this domain's snapshots (they reappear, from
    zero, if re-touched), listed keys are materialised eagerly so they
    export at zero even if the request never bumps them.  Keys never
    registered are ignored.  See the sharding contract above. *)
val rebase : (string * labels) list -> unit

(** [absorb shard] — fold a worker shard into the calling domain's live
    cells: counters and histogram buckets add, gauges accumulate (add —
    worker gauges are treated as contributions, not last-writer
    overrides).  Instruments absent locally are registered on the fly;
    zero-valued entries (counter 0, gauge 0.0, empty histogram) are
    skipped entirely — they contribute nothing, and skipping them keeps
    instruments a previous request materialised on a long-lived pool
    worker from leaking into a later request's shard.  Safe from any
    domain concurrently; re-entry on one domain's shard raises
    [Invalid_argument] (see the sharding contract above). *)
val absorb : snapshot -> unit
