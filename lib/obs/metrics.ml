type labels = (string * string) list

let n_buckets = 64

(* bucket i covers [2^(i-16), 2^(i-15)); <=0 underflows to 0 *)
let bucket_of v =
  if v <= 0.0 || not (Float.is_finite v) then if v > 0.0 then n_buckets - 1 else 0
  else begin
    let _, e = Float.frexp v in
    (* v in [2^(e-1), 2^e) *)
    min (n_buckets - 1) (max 0 (e + 15))
  end

type counter_cell = { mutable c : int }
type gauge_cell = { mutable g : float }

type histogram_cell = {
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array;
}

type instrument = C of counter_cell | G of gauge_cell | H of histogram_cell

(* Sharding: every domain owns a private registry of cells, reached
   through domain-local storage, so recording never shares a mutable cell
   across domains.  An instrument handle is the DLS key of its cell; the
   first touch from a domain materialises (and registers) that domain's
   cell.  [snapshot]/[reset] act on the calling domain's shard only, and
   worker shards are folded back with {!absorb} (see the .mli for the
   contract). *)
let registry_key : (string * labels, instrument) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key

(* Every cell this domain has ever materialised, including ones [rebase]
   dropped from the visible registry.  Needed so rebasing can zero cells
   that are currently invisible — otherwise a value recorded by request
   N would bleed into request N+2's export when the instrument is
   re-registered. *)
let materialized_key : (string * labels, instrument) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let materialized () = Domain.DLS.get materialized_key

type counter = counter_cell Domain.DLS.key
type gauge = gauge_cell Domain.DLS.key
type histogram = histogram_cell Domain.DLS.key

type handle = KC of counter | KG of gauge | KH of histogram

(* Process-global (name, labels) -> handle table, so registration stays
   idempotent across domains: each pair has exactly one DLS key.  The
   mutex guards registration only — recording goes straight to the
   domain-local cell and never takes it. *)
let handles : (string * labels, handle) Hashtbl.t = Hashtbl.create 64
let handles_mu = Mutex.create ()

let norm_labels labels =
  let l = List.sort_uniq compare labels in
  if List.length l <> List.length (List.sort_uniq (fun (a, _) (b, _) -> compare a b) l)
  then invalid_arg "Metrics: duplicate label key";
  l

let register key find make =
  Mutex.protect handles_mu (fun () ->
      match Hashtbl.find_opt handles key with
      | Some existing -> find existing
      | None ->
          let h = make key in
          Hashtbl.replace handles key h;
          find h)

let new_cell_key key wrap cell_of =
  Domain.DLS.new_key (fun () ->
      let cell = cell_of () in
      Hashtbl.replace (registry ()) key (wrap cell);
      Hashtbl.replace (materialized ()) key (wrap cell);
      cell)

(* (Re-)install this domain's cell in the visible registry.  The DLS
   initialiser above only runs on first materialisation; after a
   [rebase] dropped the key, the next registration call must make the
   existing cell visible again or later bumps would never export. *)
let reinstall key inst =
  let reg = registry () in
  if not (Hashtbl.mem reg key) then Hashtbl.replace reg key inst

let metric_key ?(labels = []) name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  (name, norm_labels labels)

let counter ?labels name =
  let key = metric_key ?labels name in
  let k =
    register key
      (function
        | KC c -> c
        | KG _ | KH _ ->
            invalid_arg
              ("Metrics.counter: " ^ name ^ " registered with another kind"))
      (fun key -> KC (new_cell_key key (fun c -> C c) (fun () -> { c = 0 })))
  in
  (* materialise this domain's cell eagerly so the instrument shows up in
     snapshots at value zero even if never bumped *)
  reinstall key (C (Domain.DLS.get k));
  k

let gauge ?labels name =
  let key = metric_key ?labels name in
  let k =
    register key
      (function
        | KG g -> g
        | KC _ | KH _ ->
            invalid_arg
              ("Metrics.gauge: " ^ name ^ " registered with another kind"))
      (fun key -> KG (new_cell_key key (fun g -> G g) (fun () -> { g = 0.0 })))
  in
  reinstall key (G (Domain.DLS.get k));
  k

let histogram ?labels name =
  let key = metric_key ?labels name in
  let k =
    register key
      (function
        | KH h -> h
        | KC _ | KG _ ->
            invalid_arg
              ("Metrics.histogram: " ^ name ^ " registered with another kind"))
      (fun key ->
        KH
          (new_cell_key key
             (fun h -> H h)
             (fun () ->
               {
                 count = 0;
                 sum = 0.0;
                 mn = infinity;
                 mx = neg_infinity;
                 buckets = Array.make n_buckets 0;
               })))
  in
  reinstall key (H (Domain.DLS.get k));
  k

let incr k =
  let c = Domain.DLS.get k in
  c.c <- c.c + 1

let add k n =
  let c = Domain.DLS.get k in
  c.c <- c.c + n

let counter_value k = (Domain.DLS.get k).c

let set k v =
  let g = Domain.DLS.get k in
  g.g <- v

let accum k v =
  let g = Domain.DLS.get k in
  g.g <- g.g +. v

let gauge_value k = (Domain.DLS.get k).g

let observe k v =
  let h = Domain.DLS.get k in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (int * int) list;
}

let summary_of_cell (h : histogram_cell) =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  { count = h.count; sum = h.sum; min = h.mn; max = h.mx; buckets = !buckets }

let histogram_summary (k : histogram) = summary_of_cell (Domain.DLS.get k)

let histogram_mean s =
  if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

(* bucket i covers [2^(i-16), 2^(i-15)) — see bucket_of *)
let bucket_lo i = Float.ldexp 1.0 (i - 16)
let bucket_hi i = Float.ldexp 1.0 (i - 15)

let quantile s q =
  if s.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int s.count in
    let rec go cum = function
      | [] -> s.max
      | (i, c) :: rest ->
          let cum' = cum +. float_of_int c in
          if cum' >= rank || rest = [] then begin
            let lo = bucket_lo i and hi = bucket_hi i in
            let frac =
              if c = 0 then 0.0
              else Float.max 0.0 (Float.min 1.0 ((rank -. cum) /. float_of_int c))
            in
            Float.max s.min (Float.min s.max (lo +. ((hi -. lo) *. frac)))
          end
          else go cum' rest
    in
    go 0.0 s.buckets
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

type snapshot = (string * labels * value) list

let snapshot () =
  Hashtbl.fold
    (fun (name, labels) inst acc ->
      let v =
        match inst with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h -> Histogram (summary_of_cell h)
      in
      (name, labels, v) :: acc)
    (registry ()) []
  |> List.sort compare

let entries s = s

let find ?(labels = []) s name =
  let labels = norm_labels labels in
  List.find_map
    (fun (n, l, v) -> if n = name && l = labels then Some v else None)
    s

let counter_total s name =
  List.fold_left
    (fun acc (n, _, v) ->
      match v with Counter c when n = name -> acc + c | Counter _ | Gauge _ | Histogram _ -> acc)
    0 s

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram x, Histogram y ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (i, c) ->
          Hashtbl.replace tbl i (c + Option.value (Hashtbl.find_opt tbl i) ~default:0))
        (x.buckets @ y.buckets);
      let buckets =
        Hashtbl.fold (fun i c acc -> (i, c) :: acc) tbl [] |> List.sort compare
      in
      Histogram
        {
          count = x.count + y.count;
          sum = x.sum +. y.sum;
          min = Float.min x.min y.min;
          max = Float.max x.max y.max;
          buckets;
        }
  | (Counter _ | Gauge _ | Histogram _), _ ->
      invalid_arg "Metrics.merge: metric kind mismatch"

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, l, v) -> Hashtbl.replace tbl (n, l) v) a;
  List.iter
    (fun (n, l, v) ->
      match Hashtbl.find_opt tbl (n, l) with
      | None -> Hashtbl.replace tbl (n, l) v
      | Some prev -> Hashtbl.replace tbl (n, l) (merge_value prev v))
    b;
  Hashtbl.fold (fun (n, l) v acc -> (n, l, v) :: acc) tbl [] |> List.sort compare

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let value_fields = function
  | Counter c -> [ ("kind", Json.Str "counter"); ("value", Json.Int c) ]
  | Gauge g -> [ ("kind", Json.Str "gauge"); ("value", Json.Float g) ]
  | Histogram h ->
      [
        ("kind", Json.Str "histogram");
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", if h.count = 0 then Json.Null else Json.Float h.min);
        ("max", if h.count = 0 then Json.Null else Json.Float h.max);
        ( "buckets",
          Json.List
            (List.map
               (fun (i, c) ->
                 Json.Obj
                   [
                     (* upper bound of the bucket, for Prometheus-style "le" *)
                     ("le", Json.Float (bucket_hi i));
                     ("count", Json.Int c);
                   ])
               h.buckets) );
      ]

let to_json s =
  Json.Obj
    [
      ("schema", Json.Str "gsino-metrics-v1");
      ( "metrics",
        Json.List
          (List.map
             (fun (name, labels, v) ->
               Json.Obj
                 (("name", Json.Str name)
                 :: ("labels", labels_json labels)
                 :: value_fields v))
             s) );
    ]

let write_json path s = Json.write_file path (to_json s)

(* ------------------------- snapshot loading ------------------------- *)

exception Bad of string

let of_json j =
  let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
  let str what = function
    | Json.Str s -> s
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
    | Json.Obj _ ->
        fail "%s: expected a string" what
  in
  let num what = function
    | Json.Int i -> float_of_int i
    | Json.Float f -> f
    | Json.Null | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _ ->
        fail "%s: expected a number" what
  in
  let int what = function
    | Json.Int i -> i
    | Json.Null | Json.Bool _ | Json.Float _ | Json.Str _ | Json.List _
    | Json.Obj _ ->
        fail "%s: expected an integer" what
  in
  let field what o key =
    match Json.member key o with
    | Some v -> v
    | None -> fail "%s: missing field %s" what key
  in
  (* invert the "le" upper bound back to the log2 bucket index *)
  let bucket_of_le le =
    if le <= 0.0 || not (Float.is_finite le) then fail "bucket le %g out of range" le;
    let i = int_of_float (Float.round (Float.log le /. Float.log 2.0)) + 15 in
    if i < 0 || i >= n_buckets || Float.abs (bucket_hi i -. le) > 1e-9 *. le then
      fail "bucket le %g is not a power of two in range" le;
    i
  in
  let labels_of what = function
    | Json.Obj fields ->
        norm_labels (List.map (fun (k, v) -> (k, str (what ^ ".labels") v)) fields)
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
    | Json.List _ ->
        fail "%s: labels must be an object" what
  in
  let entry_of j =
    let name = str "metric name" (field "metric" j "name") in
    let labels = labels_of name (field name j "labels") in
    let v =
      match str (name ^ ".kind") (field name j "kind") with
      | "counter" -> Counter (int (name ^ ".value") (field name j "value"))
      | "gauge" -> Gauge (num (name ^ ".value") (field name j "value"))
      | "histogram" ->
          let count = int (name ^ ".count") (field name j "count") in
          let sum = num (name ^ ".sum") (field name j "sum") in
          let bound what default =
            match field name j what with
            | Json.Null -> default
            | (Json.Int _ | Json.Float _) as v -> num (name ^ "." ^ what) v
            | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _ ->
                fail "%s.%s: expected number or null" name what
          in
          let buckets =
            match field name j "buckets" with
            | Json.List bs ->
                List.map
                  (fun b ->
                    ( bucket_of_le (num (name ^ ".le") (field name b "le")),
                      int (name ^ ".bucket count") (field name b "count") ))
                  bs
                |> List.sort compare
            | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
            | Json.Obj _ ->
                fail "%s.buckets: expected a list" name
          in
          Histogram
            {
              count;
              sum;
              min = bound "min" infinity;
              max = bound "max" neg_infinity;
              buckets;
            }
      | kind -> fail "%s: unknown metric kind %s" name kind
    in
    (name, labels, v)
  in
  match
    (match str "schema" (field "snapshot" j "schema") with
    | "gsino-metrics-v1" -> ()
    | schema -> fail "unsupported schema %s (want gsino-metrics-v1)" schema);
    match field "snapshot" j "metrics" with
    | Json.List ms -> List.sort compare (List.map entry_of ms)
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
    | Json.Obj _ ->
        fail "metrics: expected a list"
  with
  | entries -> Ok entries
  | exception Bad msg -> Error msg

let read_json path =
  match Json.read_file path with
  | Error msg -> Error (path ^ ": " ^ msg)
  | Ok j -> (
      match of_json j with
      | Ok s -> Ok s
      | Error msg -> Error (path ^ ": " ^ msg))

let reset () =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
          h.count <- 0;
          h.sum <- 0.0;
          h.mn <- infinity;
          h.mx <- neg_infinity;
          Array.fill h.buckets 0 n_buckets 0)
    (registry ())

(* --------------------- request-scoped rebasing ----------------------- *)

let registered () =
  Mutex.protect handles_mu (fun () ->
      Hashtbl.fold (fun key _ acc -> key :: acc) handles [])
  |> List.sort compare

let zero_cell = function
  | C c -> c.c <- 0
  | G g -> g.g <- 0.0
  | H h ->
      h.count <- 0;
      h.sum <- 0.0;
      h.mn <- infinity;
      h.mx <- neg_infinity;
      Array.fill h.buckets 0 n_buckets 0

let rebase keys =
  let reg = registry () in
  Hashtbl.reset reg;
  (* zero every cell this domain ever materialised — including cells a
     previous rebase made invisible — so no prior request's value can
     bleed into this one when an instrument is lazily re-registered *)
  Hashtbl.iter (fun _ inst -> zero_cell inst) (materialized ());
  List.iter
    (fun key ->
      let handle =
        Mutex.protect handles_mu (fun () -> Hashtbl.find_opt handles key)
      in
      match handle with
      | None -> () (* unregistered key: nothing to materialise *)
      | Some h ->
          (* DLS cells are per-domain singletons: re-getting returns the
             same cell this domain always writes through, so after
             re-registering it here every later bump lands in a cell the
             next snapshot sees *)
          let inst =
            match h with
            | KC k -> C (Domain.DLS.get k)
            | KG k -> G (Domain.DLS.get k)
            | KH k -> H (Domain.DLS.get k)
          in
          zero_cell inst;
          Hashtbl.replace reg key inst)
    keys

(* ------------------------- shard absorption ------------------------- *)

(* Absorption mutates only the calling domain's DLS cells, so absorbs on
   distinct domains never share state and may run concurrently (the serve
   daemon's request workers each coordinate their own pool).  The hazard
   is two absorbs interleaving on the *same* shard — two sys-threads of
   one domain — which this per-domain flag rejects loudly. *)
let absorbing_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let absorb (s : snapshot) =
  let busy = Domain.DLS.get absorbing_key in
  if !busy then
    invalid_arg "Metrics.absorb: concurrent merge (sharding contract violated)";
  busy := true;
  Fun.protect
    ~finally:(fun () -> busy := false)
    (fun () ->
      List.iter
        (fun (name, labels, v) ->
          (* a zero-valued contribution is numerically a no-op; skipping
             it also skips the registration side effect, so an instrument
             a *previous* request materialised on a pool worker does not
             reappear (at zero) in a later request's export *)
          match v with
          | Counter 0 -> ()
          | Counter n -> add (counter ~labels name) n
          | Gauge 0.0 -> ()
          | Gauge g -> accum (gauge ~labels name) g
          | Histogram { count = 0; _ } -> ()
          | Histogram hs ->
              let cell = Domain.DLS.get (histogram ~labels name) in
              cell.count <- cell.count + hs.count;
              cell.sum <- cell.sum +. hs.sum;
              if hs.min < cell.mn then cell.mn <- hs.min;
              if hs.max > cell.mx then cell.mx <- hs.max;
              List.iter
                (fun (i, c) -> cell.buckets.(i) <- cell.buckets.(i) + c)
                hs.buckets)
        s)
