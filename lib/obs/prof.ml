type row = {
  name : string;
  calls : int;
  total_us : float;
  self_us : float;
  p95_us : float;
  max_us : float;
}

(* One open span while folding: start timestamp plus the inclusive time
   its direct children have consumed so far (for self-time). *)
type frame = { fname : string; t0 : float; mutable child_us : float }

type acc = {
  mutable calls : int;
  mutable total : float;
  mutable self : float;
  mutable durs : float list;  (** per-call inclusive durations, newest first *)
}

let exact_quantile q durs =
  match durs with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list durs in
      Array.sort compare a;
      let n = Array.length a in
      let i = min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1)) in
      a.(i)

let of_events evs =
  let stats : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev.Trace.ph with
      | Trace.B -> stack := { fname = ev.Trace.name; t0 = ev.Trace.ts_us; child_us = 0.0 } :: !stack
      | Trace.E -> (
          match !stack with
          | [] -> () (* orphan: begin evicted by the ring; paired_events drops these *)
          | fr :: rest ->
              stack := rest;
              let dur = Float.max 0.0 (ev.Trace.ts_us -. fr.t0) in
              let self = Float.max 0.0 (dur -. fr.child_us) in
              (match rest with parent :: _ -> parent.child_us <- parent.child_us +. dur | [] -> ());
              let a =
                match Hashtbl.find_opt stats fr.fname with
                | Some a -> a
                | None ->
                    let a = { calls = 0; total = 0.0; self = 0.0; durs = [] } in
                    Hashtbl.add stats fr.fname a;
                    a
              in
              a.calls <- a.calls + 1;
              a.total <- a.total +. dur;
              a.self <- a.self +. self;
              a.durs <- dur :: a.durs)
      | Trace.I -> ())
    evs;
  (* spans still open contribute nothing: their durations are unknown *)
  Hashtbl.fold
    (fun name a rows ->
      {
        name;
        calls = a.calls;
        total_us = a.total;
        self_us = a.self;
        p95_us = exact_quantile 0.95 a.durs;
        max_us = List.fold_left Float.max 0.0 a.durs;
      }
      :: rows)
    stats []
  |> List.sort (fun a b ->
         match compare b.self_us a.self_us with 0 -> compare a.name b.name | c -> c)

let current () = of_events (Trace.paired_events ())

let total_self rows = List.fold_left (fun s r -> s +. r.self_us) 0.0 rows

let top_share n rows =
  let all = total_self rows in
  if all <= 0.0 then 1.0
  else begin
    let top =
      List.filteri (fun i _ -> i < n) rows
      |> List.fold_left (fun s r -> s +. r.self_us) 0.0
    in
    top /. all
  end

let to_text ?(top = 10) rows =
  let b = Buffer.create 1024 in
  let all_self = total_self rows in
  Printf.bprintf b
    "Span profile (self-time, top %d of %d spans; traced self total %.2f s)\n"
    (min top (List.length rows))
    (List.length rows) (all_self /. 1e6);
  Printf.bprintf b "  %-32s %8s %12s %12s %6s %11s %11s\n" "span" "calls"
    "total(ms)" "self(ms)" "self%" "p95(ms)" "max(ms)";
  List.iteri
    (fun i r ->
      if top <= 0 || i < top then
        Printf.bprintf b "  %-32s %8d %12.2f %12.2f %5.1f%% %11.3f %11.3f\n"
          r.name r.calls (r.total_us /. 1e3) (r.self_us /. 1e3)
          (if all_self > 0.0 then 100.0 *. r.self_us /. all_self else 0.0)
          (r.p95_us /. 1e3) (r.max_us /. 1e3))
    rows;
  if top > 0 && List.length rows > top then
    Printf.bprintf b "  ... %d more spans (%.1f%% of self time shown)\n"
      (List.length rows - top)
      (100.0 *. top_share top rows);
  Buffer.contents b

let to_json rows =
  Json.Obj
    [
      ("schema", Json.Str "gsino-profile-v1");
      ("total_us", Json.Float (total_self rows));
      ( "spans",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.Str r.name);
                   ("calls", Json.Int r.calls);
                   ("total_us", Json.Float r.total_us);
                   ("self_us", Json.Float r.self_us);
                   ("p95_us", Json.Float r.p95_us);
                   ("max_us", Json.Float r.max_us);
                 ])
             rows) );
    ]

let write_json path rows = Json.write_file path (to_json rows)

let export_metrics rows =
  List.iter
    (fun r ->
      let labels = [ ("span", r.name) ] in
      Metrics.set (Metrics.gauge ~labels "prof.calls") (float_of_int r.calls);
      Metrics.set (Metrics.gauge ~labels "prof.total_us") r.total_us;
      Metrics.set (Metrics.gauge ~labels "prof.self_us") r.self_us)
    rows
