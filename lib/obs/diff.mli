(** Run-to-run comparison of metrics snapshots, and the policy gate that
    turns a comparison into a CI verdict.

    Two [gsino-metrics-v1] snapshots (typically {!Metrics.read_json} of a
    committed baseline and of the current run) are aligned by
    (name, labels); every series is classified as added, removed, changed
    or unchanged on its scalar summary — a counter's value, a gauge's
    value, a histogram's sample count.  A {!policy} names the guarded
    metrics and their per-metric tolerances; {!check} returns the
    breaches, which [gsino_diff] renders and converts into a non-zero
    exit code.  See bench/regression_policy.json for the live policy. *)

(** Scalar summary of one series: counter value, gauge value, or
    histogram sample count, with the metric kind it came from. *)
type scalar = { kind : string; value : float }

type change =
  | Added of scalar  (** only in the current snapshot *)
  | Removed of scalar  (** only in the baseline *)
  | Changed of { kind : string; before : float; after : float }
  | Unchanged of scalar

type entry = { name : string; labels : Metrics.labels; change : change }

(** [diff baseline current] — one entry per series of either snapshot,
    sorted by name then labels. *)
val diff : Metrics.snapshot -> Metrics.snapshot -> entry list

(** Signed scalar delta (added = +value, removed = -value). *)
val delta : change -> float

(** Relative delta (fraction of the baseline magnitude); [None] for
    added/removed series and zero baselines. *)
val rel_delta : change -> float option

val changed : entry -> bool

(** {1 Policy} *)

(** Which drift direction counts as a regression: [Up] guards increases
    only (a drop in violations is an improvement, not a breach), [Down]
    decreases only, [Any_change] both. *)
type direction = Up | Down | Any_change

(** A drift in the guarded direction is allowed if it is within [max_abs]
    {e or} within [max_rel] (fraction, 0.02 = 2%); with neither bound the
    metric must not drift at all.  Matches every label set of [metric];
    added/removed series of a guarded metric always breach, as does a
    guarded metric absent from both snapshots (stale policy). *)
type tolerance = {
  metric : string;
  max_abs : float option;
  max_rel : float option;
  direction : direction;
}

(** [exclude] is a list of series-name {e prefixes} (e.g. ["prof."],
    ["gc."], ["exec."]) whose series are volatile by nature — wall-clock
    profiles, GC deltas, pool scheduling — and are dropped from both the
    rendered diff and the gate. *)
type policy = { tolerances : tolerance list; exclude : string list }

(** Does the policy's exclude list cover this series name? *)
val excluded : policy -> string -> bool

(** Drop the entries whose name matches an [exclude] prefix. *)
val apply_exclude : policy -> entry list -> entry list

(** [gsino-diff-policy-v1]: [{"schema": ..., "exclude"?: [prefix, ...],
    "tolerances": [{"metric", "max_abs"?, "max_rel"?, "direction"?}]}];
    direction is "up" (default) | "down" | "both". *)
val policy_of_json : Json.t -> (policy, string) result

val load_policy : string -> (policy, string) result

type breach = {
  entry : entry option;  (** [None]: guarded metric found in neither snapshot *)
  tolerance : tolerance;
  reason : string;
}

val check : policy -> entry list -> breach list

(** {1 Rendering} *)

(** ["name{k=v,...}"] — the series identifier used in reports. *)
val series_name : string -> Metrics.labels -> string

(** One fixed-width delta-table row: marker (+/-/~/space), series, kind,
    before, after, delta, relative delta. *)
val pp_entry : Format.formatter -> entry -> unit

val pp_breach : Format.formatter -> breach -> unit

(** {1 Bench history}

    The bench harness appends one JSON object per run to
    [BENCH_HISTORY.jsonl] — [{"schema": "gsino-bench-history-v1", "ts":
    epoch_seconds, ..., "snapshot": <gsino-metrics-v1>}] — so metric
    trajectories survive across commits.  [gsino_diff --history] loads
    the file and prints one trend row per metric name. *)
module History : sig
  type entry = {
    ts : float;  (** epoch seconds the snapshot was taken *)
    meta : (string * string) list;
        (** the entry's other top-level scalars (scale, seed, ...) *)
    snapshot : Metrics.snapshot;
  }

  (** [load path] — parse a JSONL history file, oldest first; blank
      lines are skipped, a malformed line fails with its line number. *)
  val load : string -> (entry list, string) result

  type trend = {
    name : string;
    n : int;  (** snapshots the series appears in *)
    first : float;
    last : float;
    lo : float;
    hi : float;
  }

  (** Per-name trajectory across the entries (chronological order).
      Each snapshot contributes one scalar per name: the sum of the
      series' scalar summaries across label sets. *)
  val trends : entry list -> trend list

  (** Fixed-width trend row: name, n, first, last, rel drift, min, max. *)
  val pp_trend : Format.formatter -> trend -> unit
end
