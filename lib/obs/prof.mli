(** Span self-time profiler.

    Folds the {!Trace} ring buffer into an aggregated per-span-name
    profile: how often each span ran, its inclusive (total) time, its
    {e self} time — total minus the time spent in child spans — and the
    p95/max of its per-call durations.  Self time is what a flame graph's
    widest leaf shows: the span where the cycles were actually burnt,
    with the enclosing phases' umbrella spans deflated by exactly the
    time their children account for.

    The fold consumes {!Trace.paired_events}, so a wrapped ring degrades
    gracefully: spans whose begin event was evicted simply do not
    contribute (check [trace.dropped_spans]), and spans still open when
    the profile is taken are ignored.  Nothing here records anything —
    profiling a run costs only the tracing already enabled for it, and
    with tracing disabled every function returns the empty profile. *)

type row = {
  name : string;
  calls : int;
  total_us : float;  (** sum of per-call inclusive durations *)
  self_us : float;  (** total minus time attributed to child spans *)
  p95_us : float;  (** 95th percentile of per-call inclusive durations *)
  max_us : float;
}

(** [of_events evs] — fold a begin/end event stream (oldest first) into
    rows, sorted by self time, largest first.  Orphaned end events and
    unclosed begin events contribute nothing. *)
val of_events : Trace.event list -> row list

(** The profile of the current trace buffer
    ([of_events (Trace.paired_events ())]); [[]] when tracing is
    disabled. *)
val current : unit -> row list

(** Share of the summed self time covered by the top [n] rows, in
    [0..1]; 1 when the profile is empty.  The CI acceptance check for
    instrumentation coverage. *)
val top_share : int -> row list -> float

(** [to_text ?top rows] — fixed-width table of the [top] (default 10)
    rows by self time: calls, total, self, self%%, p95, max. *)
val to_text : ?top:int -> row list -> string

(** [gsino-profile-v1]: [{"schema", "total_us", "spans": [{"name",
    "calls", "total_us", "self_us", "p95_us", "max_us"}]}]. *)
val to_json : row list -> Json.t

val write_json : string -> row list -> unit

(** Publish the profile into the {!Metrics} registry as [prof.calls],
    [prof.total_us] and [prof.self_us] gauges labeled
    [("span", name)] (set, not accumulated — re-exporting replaces).
    These series are volatile wall-clock data; the CI regression policy
    excludes the [prof.] prefix from gating. *)
val export_metrics : row list -> unit
