type event = {
  ev : string;
  dim : (string * string) list;
  data : (string * float) list;
  outcome : string option;
}

(* Recording must stay near-free when the journal is off: a run without
   --journal pays one atomic load per call site.  The flag is process-
   global (workers inherit it; it is set on the coordinator before the
   pool spawns). *)
let on = Atomic.make false
let enabled () = Atomic.get on

(* Per-domain shard, mirroring Metrics: every domain buffers privately,
   so recording never shares a mutable cell across domains. *)
let shard_key : event list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let shard () = Domain.DLS.get shard_key

(* The journal observes itself: journal.events counts recorded events.
   Registered on [enable] (coordinator, before workers exist) so binaries
   that never journal don't grow an always-zero series. *)
let h_events : Metrics.counter option ref = ref None

let enable () =
  if !h_events = None then h_events := Some (Metrics.counter "journal.events");
  Atomic.set on true

let clear () = shard () := []

let disable () =
  Atomic.set on false;
  clear ()

let norm_keys what l =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> a = b || dup rest
    | [ _ ] | [] -> false
  in
  if dup sorted then invalid_arg ("Journal: duplicate " ^ what ^ " key");
  sorted

let record ?(data = []) ?outcome ev dim =
  if Atomic.get on then begin
    if ev = "" then invalid_arg "Journal.record: empty event kind";
    let e =
      { ev; dim = norm_keys "dim" dim; data = norm_keys "data" data; outcome }
    in
    let s = shard () in
    s := e :: !s;
    match !h_events with Some h -> Metrics.incr h | None -> ()
  end

(* ------------------------------ sharding ----------------------------- *)

let drain () =
  let s = shard () in
  let evs = List.rev !s in
  s := [];
  evs

let absorb evs =
  let s = shard () in
  s := List.rev_append evs !s

(* ------------------------------- export ------------------------------ *)

let events () =
  (* stable sort: same-key events keep their (deterministic, sequential)
     emission order; cross-domain interleaving is normalised away because
     parallel-phase events are unique per (ev, dim) *)
  List.stable_sort
    (fun a b ->
      match compare a.ev b.ev with 0 -> compare a.dim b.dim | c -> c)
    (List.rev !(shard ()))

let schema = "gsino-journal-v1"

let event_json e =
  let strs l = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) l) in
  let nums l = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) l) in
  Json.Obj
    (("ev", Json.Str e.ev)
    :: ("dim", strs e.dim)
    :: ("data", nums e.data)
    ::
    (match e.outcome with
    | Some o -> [ ("outcome", Json.Str o) ]
    | None -> []))

let to_string evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Json.to_string (Json.Obj [ ("schema", Json.Str schema) ]));
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (event_json e));
      Buffer.add_char b '\n')
    evs;
  Buffer.contents b

let output oc evs = output_string oc (to_string evs)

let write_file path evs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc evs)

(* ------------------------------ loading ------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let event_of_json line j =
  let str what = function
    | Json.Str s -> s
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
    | Json.Obj _ ->
        fail "line %d: %s: expected a string" line what
  in
  let strs what = function
    | Json.Obj fields ->
        List.map (fun (k, v) -> (k, str (what ^ "." ^ k) v)) fields
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
    | Json.List _ ->
        fail "line %d: %s: expected an object" line what
  in
  let nums what = function
    | Json.Obj fields ->
        List.map
          (fun (k, v) ->
            match v with
            | Json.Int i -> (k, float_of_int i)
            | Json.Float f -> (k, f)
            | Json.Null | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _
              ->
                fail "line %d: %s.%s: expected a number" line what k)
          fields
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
    | Json.List _ ->
        fail "line %d: %s: expected an object" line what
  in
  let ev =
    match Json.member "ev" j with
    | Some v -> str "ev" v
    | None -> fail "line %d: missing field ev" line
  in
  let field f decode =
    match Json.member f j with Some v -> decode f v | None -> []
  in
  {
    ev;
    dim = norm_keys "dim" (field "dim" strs);
    data = norm_keys "data" (field "data" nums);
    outcome = Option.map (str "outcome") (Json.member "outcome" j);
  }

let read_channel ic =
  let parse line_no line =
    match Json.of_string line with
    | Error msg -> fail "line %d: %s" line_no msg
    | Ok j -> j
  in
  match
    let header =
      match input_line ic with
      | line -> parse 1 line
      | exception End_of_file -> fail "empty journal"
    in
    (match Json.member "schema" header with
    | Some (Json.Str s) when s = schema -> ()
    | Some (Json.Str s) -> fail "unsupported schema %s (want %s)" s schema
    | Some
        ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
        | Json.Obj _ )
    | None ->
        fail "missing schema header (want %s)" schema);
    let evs = ref [] in
    let line_no = ref 1 in
    (try
       while true do
         let line = input_line ic in
         incr line_no;
         if String.trim line <> "" then
           evs := event_of_json !line_no (parse !line_no line) :: !evs
       done
     with End_of_file -> ());
    List.rev !evs
  with
  | evs -> Ok evs
  | exception Bad msg -> Error msg

let load path =
  if path = "-" then read_channel stdin
  else
    match open_in path with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            match read_channel ic with
            | Ok evs -> Ok evs
            | Error msg -> Error (path ^ ": " ^ msg))
    | exception Sys_error msg -> Error msg

(* ------------------------------ folding ------------------------------ *)

let dim_value e k = List.assoc_opt k e.dim
let data_value e k = List.assoc_opt k e.data

let filter_dim ~key ~value evs =
  List.filter (fun e -> dim_value e key = Some value) evs

module Agg = struct
  type row = {
    key : string;
    count : int;
    data : (string * float) list;
    outcomes : (string * int) list;
  }

  let bump tbl k f init =
    Hashtbl.replace tbl k
      (f (Option.value (Hashtbl.find_opt tbl k) ~default:init))

  let by_dim key evs =
    let groups : (string, event list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun e ->
        match dim_value e key with
        | None -> ()
        | Some v -> (
            match Hashtbl.find_opt groups v with
            | Some r -> r := e :: !r
            | None -> Hashtbl.add groups v (ref [ e ])))
      evs;
    Hashtbl.fold
      (fun k evs acc ->
        let data = Hashtbl.create 8 and outcomes = Hashtbl.create 4 in
        List.iter
          (fun (e : event) ->
            List.iter (fun (f, v) -> bump data f (fun a -> a +. v) 0.0) e.data;
            match e.outcome with
            | Some o -> bump outcomes o (fun a -> a + 1) 0
            | None -> ())
          !evs;
        {
          key = k;
          count = List.length !evs;
          data =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) data []
            |> List.sort compare;
          outcomes =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes []
            |> List.sort compare;
        }
        :: acc)
      groups []
    |> List.sort (fun a b -> compare a.key b.key)

  let datum row name = Option.value (List.assoc_opt name row.data) ~default:0.0

  let top ~by ~k rows =
    let sorted =
      List.sort
        (fun a b ->
          match compare (datum b by) (datum a by) with
          | 0 -> compare a.key b.key
          | c -> c)
        rows
    in
    List.filteri (fun i _ -> i < k) sorted
end
