(** Attribution journal: a low-overhead, domain-safe structured event log
    that records dimension-keyed cost events — which nets, regions and
    panels the flow spent its work on ([gsino-journal-v1] JSONL).

    Events are aggregates (one per net / region / panel), never per-inner-
    loop-step; recording when the journal is disabled is a single atomic
    load.  Like {!Metrics}, the journal is sharded per domain: each domain
    buffers its own events, worker shards are {!drain}ed inside the pool
    job and folded back by the coordinator with {!absorb} in slot order,
    and the export applies a canonical stable sort by [(ev, dim)] — so a
    [--jobs N] run produces the same journal as [--jobs 1] (modulo the
    [_us] timing payloads).

    Event vocabulary (see DESIGN §9):
    - [net.budget]     dim [net]; data [kth]
    - [net.route]      dim [net]; data [pops deletions reweights essential]
    - [region.reweight] dim [region dir]; data [reweights]
    - [panel.solve]    dim [region dir sig members]; data
                       [nets time_us moves_accepted moves_rejected shields];
                       outcome [feasible|degraded|infeasible]
    - [panel.resolve]  dim [region dir sig net pass]; data
                       [time_us shields moves]; outcome as above
    - [net.refine]     dim [net pass]; data [resolves]; outcome
                       [fixed|gave_up|relaxed] *)

type event = {
  ev : string;  (** event kind, e.g. ["panel.solve"] *)
  dim : (string * string) list;  (** identity labels, sorted by key *)
  data : (string * float) list;  (** numeric payload, sorted by key *)
  outcome : string option;
}

(** {1 Recording} *)

(** Start buffering events (and register the [journal.events] counter).
    Call on the coordinator before any worker domain is spawned. *)
val enable : unit -> unit

(** Stop recording and discard the calling domain's buffer. *)
val disable : unit -> unit

val enabled : unit -> bool

(** [record ev dim ~data ~outcome] — append one event to the calling
    domain's shard.  A no-op (one atomic load) when disabled.  [dim] keys
    must be unique; both key lists are normalised to sorted order. *)
val record :
  ?data:(string * float) list -> ?outcome:string ->
  string -> (string * string) list -> unit

(** {1 Sharding} — same contract as {!Metrics.absorb}: workers [drain]
    after finishing a stolen section, the coordinator [absorb]s the shards
    one at a time in slot order. *)

(** Take and clear the calling domain's buffered events, emission order. *)
val drain : unit -> event list

(** Append a drained worker shard to the calling domain's buffer. *)
val absorb : event list -> unit

(** Clear the calling domain's buffer. *)
val clear : unit -> unit

(** {1 Export} *)

(** Canonical view of the calling domain's buffer: stable-sorted by
    [(ev, dim)], so per-key emission order survives but cross-domain
    interleaving does not. *)
val events : unit -> event list

(** Events as [gsino-journal-v1] JSONL: a schema header line, then one
    JSON object per event (what {!output}/{!write_file} emit; the serve
    daemon frames this string into responses). *)
val to_string : event list -> string

(** Write events as [gsino-journal-v1] JSONL: a schema header line, then
    one JSON object per event. *)
val output : out_channel -> event list -> unit

val write_file : string -> event list -> unit

(** {1 Loading} *)

val read_channel : in_channel -> (event list, string) result

(** [load path] — read a journal file ([-] reads stdin). *)
val load : string -> (event list, string) result

(** {1 Folding} — the aggregation [gsino_explain] and the HTML report
    drill down with. *)

val dim_value : event -> string -> string option
val data_value : event -> string -> float option

(** [filter_dim ~key ~value evs] — events whose [dim] binds [key] to
    [value]. *)
val filter_dim : key:string -> value:string -> event list -> event list

module Agg : sig
  type row = {
    key : string;  (** the grouped dimension value *)
    count : int;  (** events in the group *)
    data : (string * float) list;  (** pointwise sums, sorted by key *)
    outcomes : (string * int) list;  (** outcome tallies, sorted by key *)
  }

  (** [by_dim key evs] — group events carrying dimension [key] by its
      value and sum their payloads; rows sorted by [key]. *)
  val by_dim : string -> event list -> row list

  (** [datum row name] — summed payload field, 0 when absent. *)
  val datum : row -> string -> float

  (** [top ~by ~k rows] — the [k] largest rows by the summed field [by]
      (ties broken by key for determinism). *)
  val top : by:string -> k:int -> row list -> row list
end
