type level = Debug | Info | Warn | Error

type threshold = Level of level | Quiet

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok (Level Debug)
  | "info" -> Ok (Level Info)
  | "warn" | "warning" -> Ok (Level Warn)
  | "error" -> Ok (Level Error)
  | "quiet" | "off" | "none" -> Ok Quiet
  | other -> Error (Printf.sprintf "unknown log level %S" other)

type sink = Human of Format.formatter | Jsonl of out_channel

(* GSINO_LOG=LEVEL, =json, or =json:LEVEL *)
let env_config () =
  match Sys.getenv_opt "GSINO_LOG" with
  | None -> (Level Warn, None)
  | Some v -> (
      let v = String.trim v in
      let json, lvl_str =
        if v = "json" then (true, "")
        else
          match String.index_opt v ':' with
          | Some i when String.lowercase_ascii (String.sub v 0 i) = "json" ->
              (true, String.sub v (i + 1) (String.length v - i - 1))
          | Some _ | None -> (false, v)
      in
      let sink = if json then Some (Jsonl stderr) else None in
      match if lvl_str = "" then Ok (Level Info) else level_of_string lvl_str with
      | Ok t -> (t, sink)
      | Error _ -> (Level Warn, sink))

let threshold, initial_sink = env_config ()
let threshold = ref threshold

let sink = ref (Option.value initial_sink ~default:(Human Format.err_formatter))

let set_level t = threshold := t
let current_level () = !threshold
let set_sink s = sink := s

let would_log lvl =
  match !threshold with Quiet -> false | Level t -> rank lvl >= rank t

let emit lvl fields msg =
  match !sink with
  | Human fmt ->
      Format.fprintf fmt "gsino: [%s] %s" (level_name lvl) msg;
      List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) fields;
      Format.fprintf fmt "@."
  | Jsonl oc ->
      let j =
        Json.Obj
          (("level", Json.Str (level_name lvl))
          :: ("msg", Json.Str msg)
          ::
          (match fields with
          | [] -> []
          | f -> [ ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) f)) ]))
      in
      output_string oc (Json.to_string j);
      output_char oc '\n';
      flush oc

let logf lvl ?(fields = []) fmt =
  if would_log lvl then Format.kasprintf (fun msg -> emit lvl fields msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let debug ?fields fmt = logf Debug ?fields fmt
let info ?fields fmt = logf Info ?fields fmt
let warn ?fields fmt = logf Warn ?fields fmt
let error ?fields fmt = logf Error ?fields fmt
