(** Coded diagnostics for routing-solution static analysis.

    Every finding carries a stable numeric code (rendered ["GSL0005"]), a
    severity, a locus (which net or region it concerns), and a message.
    Codes are append-only: a code never changes meaning once released, so
    scripts and CI greps can match on them (cf. OpenROAD's [GRT NNNN]
    catalog).  The catalog itself lives in {!Checker.rules} and is
    documented in the README. *)

type severity = Error | Warning | Info

(** Where the finding applies. *)
type locus =
  | Global  (** the whole solution *)
  | Net of int  (** one signal net *)
  | Region of int * Eda_grid.Dir.t  (** one routing region and direction *)

type t = { code : int; severity : severity; locus : locus; message : string }

(** [make ~code severity ?locus msg] — [locus] defaults to [Global]. *)
val make : code:int -> severity -> ?locus:locus -> string -> t

(** [makef ~code severity ?locus fmt ...] — formatted constructor. *)
val makef :
  code:int ->
  severity ->
  ?locus:locus ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** ["GSL0005"] — the stable rendering of code 5. *)
val code_string : int -> string

val severity_string : severity -> string

(** Severity comparison: [Error] is most severe. *)
val compare_severity : severity -> severity -> int

(** Machine-readable one-line form:
    [GSL0005 W region=17/H over capacity: used 9 of 8 tracks].
    Locus renders as [-] (global), [net=12], or [region=17/H]; the message
    never contains a newline, so one diagnostic is always one line. *)
val to_line : t -> string

(** Human pretty form: [warning[GSL0005] region 17/H: over capacity ...]. *)
val pp : Format.formatter -> t -> unit

(** [count sev diags] — how many findings at exactly [sev]. *)
val count : severity -> t list -> int

val has_errors : t list -> bool

(** Sort by severity (errors first), then code, then locus. *)
val sort : t list -> t list

(** ["3 errors, 1 warning, 0 info"]. *)
val pp_summary : Format.formatter -> t list -> unit
