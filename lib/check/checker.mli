(** Static analysis over a complete routing solution.

    The checker re-derives every internal invariant the GSINO flow is
    supposed to maintain — routes on-grid, connected and acyclic; track
    accounting consistent with the routes and the SINO shield counts;
    Phase-I [Kth] bounds actually partitioned from the LSK budget
    (Formula 1/2 consistency); SINO panels covering every occupied
    region — and reports violations as coded {!Diag.t} findings.

    The input {!solution} record is deliberately expressed in the lower
    layers' vocabulary ([Netlist]/[Grid]/[Route]/[Usage] plus plain data
    for the Phase-II panels), so the checker sits below the flow library
    and [Flow.check] can adapt a flow result into it.

    Rule catalog (stable codes; severity in brackets):
    - [GSL0001 [E]] route uses an edge id outside the grid
    - [GSL0002 [E]] route does not connect all of its net's pins
    - [GSL0003 [E]] route edge set is not a tree (contains a cycle)
    - [GSL0004 [E]] net/route mismatch: wrong array length or
      [routes.(i)] not belonging to net [i] (a net must be routed
      exactly once)
    - [GSL0005 [W]] region over capacity after shield insertion
      ([nns + nss > cap]; a warning because the area model of Table 3
      absorbs overflow by stretching the region)
    - [GSL0006 [E]] usage net-track accounting disagrees with the routes
    - [GSL0007 [E]] shield accounting mismatch between usage and the
      SINO panels (per region or in total)
    - [GSL0008 [E]] per-net [Kth] does not recover the LSK budget:
      [Kth_i * L_i * gcell_um] matches neither the Manhattan nor the
      routed source–sink distance partition within tolerance
    - [GSL0009 [E]] non-positive or non-finite [Kth] bound
    - [GSL0010 [E]] sensitivity relation asymmetric or self-sensitive
    - [GSL0011 [E]] LSK lookup table not monotone
    - [GSL0012 [E]] non-finite or negative solution metric
    - [GSL0013 [E]] occupied region without a SINO panel covering the net
    - [GSL0014 [W]] SINO panel layout infeasible under its [Kth] bounds
      (expected for the ID+NO baseline; refined flows should be clean)
    - [GSL0015 [W]] residual crosstalk violation: a sink's predicted
      noise exceeds the bound
    - [GSL0016 [E]] malformed netlist (pin off-grid, id mismatch, grid
      dimensions disagreeing with the netlist)
    - [GSL0018 [W]] SINO panel degraded: the solver exhausted its retry
      budget (or hit the deadline) and fell back to a conservative or
      best-so-far layout
    - [GSL0019 [W]] deadline expired during the run: the named phases
      returned best-so-far results
    - [GSL0028 [E]] feasible SINO panel carries fewer shields than the
      clique lower bound of {!Eda_sino.Bound} proves necessary (codes
      0020–0023 belong to the [Eda_guard] failure classes and 0024–0027
      to the [Eda_analyze] pre-route audit) *)

(** One solved Phase-II region panel, flattened to plain data. *)
type panel = {
  region : int;
  dir : Eda_grid.Dir.t;
  shields : int;  (** shield tracks the SINO layout inserted there *)
  nets : int array;  (** global ids of the nets in the panel *)
  feasible : bool;  (** SINO layout feasible under the [Kth] bounds *)
  degraded : bool;  (** layout came from the retry/fallback path *)
}

type solution = {
  netlist : Eda_netlist.Netlist.t;
  grid : Eda_grid.Grid.t;
  routes : Eda_grid.Route.t array;
  lsk_budget : float;  (** Phase-I LSK budget from the noise bound *)
  kth : float array;  (** per-net partitioned inductive bound *)
  lsk_table : Eda_util.Lintable.t;  (** LSK → noise lookup *)
  sensitive : int -> int -> bool;
      (** the sensitivity relation (e.g. [Sensitivity.sensitive s]); taken
          as a plain function so corrupted relations are constructible in
          tests *)
  usage : Eda_grid.Usage.t;
  panels : panel list;
  total_shields : int;  (** as reported by the flow (Phase2.total_shields) *)
  violations : (int * float) list;  (** nets over the bound, with noise (V) *)
  bound_v : float;  (** the per-sink noise constraint *)
  metrics : (string * float) list;
      (** named scalar metrics (wire lengths, areas) checked finite and
          non-negative *)
  deadline_phases : string list;
      (** phases truncated by the run's deadline ([[]] when none) *)
  keff : Eda_sino.Keff.params;
      (** coupling model the run used; rule GSL0028 evaluates the clique
          shield lower bound under it *)
}

(** The rule registry: [(code, name, rule)].  One rule owns one code;
    running a rule yields the findings for that code only. *)
val rules : (int * string * (solution -> Diag.t list)) list

(** [run solution] — every rule, findings sorted with {!Diag.sort}. *)
val run : solution -> Diag.t list
