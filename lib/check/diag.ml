module Dir = Eda_grid.Dir

type severity = Error | Warning | Info

type locus =
  | Global
  | Net of int
  | Region of int * Dir.t

type t = { code : int; severity : severity; locus : locus; message : string }

let sanitize msg =
  String.map (function '\n' | '\r' -> ' ' | c -> c) msg

let make ~code severity ?(locus = Global) message =
  if code < 1 || code > 9999 then invalid_arg "Diag.make: code out of range";
  { code; severity; locus; message = sanitize message }

let makef ~code severity ?locus fmt =
  Format.kasprintf (fun message -> make ~code severity ?locus message) fmt

let code_string code = Printf.sprintf "GSL%04d" code

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_letter = function Error -> 'E' | Warning -> 'W' | Info -> 'I'

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

let locus_string = function
  | Global -> "-"
  | Net n -> Printf.sprintf "net=%d" n
  | Region (r, d) -> Printf.sprintf "region=%d/%s" r (Dir.to_string d)

let to_line t =
  Printf.sprintf "%s %c %s %s" (code_string t.code)
    (severity_letter t.severity) (locus_string t.locus) t.message

let pp fmt t =
  let locus =
    match t.locus with
    | Global -> ""
    | Net n -> Printf.sprintf " net %d:" n
    | Region (r, d) -> Printf.sprintf " region %d/%s:" r (Dir.to_string d)
  in
  Format.fprintf fmt "%s[%s]%s %s" (severity_string t.severity)
    (code_string t.code) locus t.message

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let locus_key = function
  | Global -> (0, 0, 0)
  | Net n -> (1, n, 0)
  | Region (r, d) -> (2, r, match d with Dir.H -> 0 | Dir.V -> 1)

let sort diags =
  List.stable_sort
    (fun a b ->
      let c = compare_severity a.severity b.severity in
      if c <> 0 then c
      else
        let c = compare a.code b.code in
        if c <> 0 then c else compare (locus_key a.locus) (locus_key b.locus))
    diags

let plural n = if n = 1 then "" else "s"

let pp_summary fmt diags =
  let e = count Error diags and w = count Warning diags and i = count Info diags in
  Format.fprintf fmt "%d error%s, %d warning%s, %d info" e (plural e) w
    (plural w) i
