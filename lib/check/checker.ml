module Point = Eda_geom.Point
module Net = Eda_netlist.Net
module Netlist = Eda_netlist.Netlist
module Sensitivity = Eda_netlist.Sensitivity
module Grid = Eda_grid.Grid
module Dir = Eda_grid.Dir
module Route = Eda_grid.Route
module Usage = Eda_grid.Usage
module Lintable = Eda_util.Lintable

type panel = {
  region : int;
  dir : Dir.t;
  shields : int;
  nets : int array;
  feasible : bool;
  degraded : bool;
}

type solution = {
  netlist : Netlist.t;
  grid : Grid.t;
  routes : Route.t array;
  lsk_budget : float;
  kth : float array;
  lsk_table : Lintable.t;
  sensitive : int -> int -> bool;
  usage : Usage.t;
  panels : panel list;
  total_shields : int;
  violations : (int * float) list;
  bound_v : float;
  metrics : (string * float) list;
  deadline_phases : string list;
  keff : Eda_sino.Keff.params;
}

let err ~code ?locus fmt = Diag.makef ~code Diag.Error ?locus fmt
let warn ~code ?locus fmt = Diag.makef ~code Diag.Warning ?locus fmt

(* ------------------------------ helpers ----------------------------- *)

let route_on_grid grid route =
  Array.for_all (fun e -> e >= 0 && e < Grid.num_edges grid) (Route.edges route)

let pins_on_grid grid net = List.for_all (Grid.in_bounds grid) (Net.pins net)

(* Per-net checks only make sense where net [i] exists in all three
   parallel arrays; structural mismatches are rule 4/9's findings. *)
let checked_nets sol =
  min (Array.length sol.netlist.Netlist.nets) (Array.length sol.routes)

(* Usage is indexed by its own grid; if that disagrees with the
   solution's grid every per-region lookup is meaningless (and would
   raise), so the accounting rules bail out after reporting. *)
let usage_grid_matches sol =
  let ug = Usage.grid sol.usage in
  Grid.width ug = Grid.width sol.grid && Grid.height ug = Grid.height sol.grid

let region_dirs grid =
  List.concat_map
    (fun d -> List.init (Grid.num_regions grid) (fun r -> (r, d)))
    Dir.all

let panel_key_tbl sol =
  (* (region, dir) -> (summed shields, merged net set); panels referencing
     regions outside the grid are skipped here and reported by rule 7. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if p.region >= 0 && p.region < Grid.num_regions sol.grid then begin
        let shields0, nets0 =
          Option.value
            (Hashtbl.find_opt tbl (p.region, p.dir))
            ~default:(0, Hashtbl.create 8)
        in
        Array.iter (fun n -> Hashtbl.replace nets0 n ()) p.nets;
        Hashtbl.replace tbl (p.region, p.dir) (shields0 + p.shields, nets0)
      end)
    sol.panels;
  tbl

(* ------------------------------- rules ------------------------------ *)

(* GSL0001: every route edge id must exist on the grid. *)
let rule_on_grid sol =
  let acc = ref [] in
  Array.iteri
    (fun i r ->
      Array.iter
        (fun e ->
          if e < 0 || e >= Grid.num_edges sol.grid then
            acc :=
              err ~code:1 ~locus:(Diag.Net i)
                "route edge id %d outside grid (%d edges)" e
                (Grid.num_edges sol.grid)
              :: !acc)
        (Route.edges r))
    sol.routes;
  !acc

(* GSL0002: the route must connect all of the net's pins. *)
let rule_connected sol =
  let acc = ref [] in
  for i = 0 to checked_nets sol - 1 do
    let net = sol.netlist.Netlist.nets.(i) in
    if route_on_grid sol.grid sol.routes.(i) && pins_on_grid sol.grid net then
      if not (Route.connects sol.grid sol.routes.(i) (Net.pins net)) then
        acc :=
          err ~code:2 ~locus:(Diag.Net i)
            "route does not connect all %d pins" (Net.num_pins net)
          :: !acc
  done;
  !acc

(* GSL0003: the edge set must be acyclic. *)
let rule_tree sol =
  let acc = ref [] in
  Array.iteri
    (fun i r ->
      if route_on_grid sol.grid r && not (Route.is_tree sol.grid r) then
        acc :=
          err ~code:3 ~locus:(Diag.Net i)
            "route edge set contains a cycle (%d edges)" (Route.num_edges r)
          :: !acc)
    sol.routes;
  !acc

(* GSL0004: every net routed exactly once, in slot order. *)
let rule_routed_once sol =
  let n_nets = Array.length sol.netlist.Netlist.nets in
  let n_routes = Array.length sol.routes in
  let acc = ref [] in
  if n_routes <> n_nets then
    acc :=
      err ~code:4 "%d routes for %d nets (every net must be routed exactly once)"
        n_routes n_nets
      :: !acc;
  for i = 0 to checked_nets sol - 1 do
    let owner = Route.net sol.routes.(i) in
    if owner <> i then
      acc :=
        err ~code:4 ~locus:(Diag.Net i) "route slot %d belongs to net %d" i owner
        :: !acc
  done;
  !acc

(* GSL0005: track usage vs. capacity after shield insertion. *)
let rule_capacity sol =
  if not (usage_grid_matches sol) then []
  else
    List.filter_map
      (fun (r, d) ->
        let over = Usage.overflow sol.usage r d in
        if over > 0 then
          Some
            (warn ~code:5 ~locus:(Diag.Region (r, d))
               "over capacity: %d net + %d shield tracks for %d (region stretches %+d)"
               (Usage.nns sol.usage r d) (Usage.nss sol.usage r d)
               (Grid.cap sol.grid (Grid.region_pt sol.grid r) d)
               over)
        else None)
      (region_dirs sol.grid)

(* GSL0006: net-track accounting must equal a recount from the routes. *)
let rule_usage_matches sol =
  if not (usage_grid_matches sol) then
    [ err ~code:6 "usage accounting was built on a %dx%d grid, solution grid is %dx%d"
        (Grid.width (Usage.grid sol.usage))
        (Grid.height (Usage.grid sol.usage))
        (Grid.width sol.grid) (Grid.height sol.grid) ]
  else if not (Array.for_all (route_on_grid sol.grid) sol.routes) then
    [] (* rule 1 already fired; a recount would raise *)
  else begin
    let fresh =
      Usage.of_routes sol.grid ~gcell_um:(Usage.gcell_um sol.usage)
        (Array.to_list sol.routes)
    in
    List.filter_map
      (fun (r, d) ->
        let expect = Usage.nns fresh r d and got = Usage.nns sol.usage r d in
        if expect <> got then
          Some
            (err ~code:6 ~locus:(Diag.Region (r, d))
               "usage says %d net tracks, routes occupy %d" got expect)
        else None)
      (region_dirs sol.grid)
  end

(* GSL0007: shield accounting consistent between usage and the panels. *)
let rule_shields sol =
  let acc = ref [] in
  List.iter
    (fun p ->
      if p.region < 0 || p.region >= Grid.num_regions sol.grid then
        acc :=
          err ~code:7 "panel references region %d outside the %d-region grid"
            p.region (Grid.num_regions sol.grid)
          :: !acc;
      if p.shields < 0 then
        acc :=
          err ~code:7 ~locus:(Diag.Region (max 0 p.region, p.dir))
            "panel reports negative shield count %d" p.shields
          :: !acc)
    sol.panels;
  if usage_grid_matches sol then begin
    let tbl = panel_key_tbl sol in
    List.iter
      (fun ((r, d) as key) ->
        let expect =
          match Hashtbl.find_opt tbl key with Some (s, _) -> s | None -> 0
        in
        let got = Usage.nss sol.usage r d in
        if expect <> got then
          acc :=
            err ~code:7 ~locus:(Diag.Region (r, d))
              "usage says %d shield tracks, SINO panel inserted %d" got expect
            :: !acc)
      (region_dirs sol.grid);
    let usage_total = Usage.total_shields sol.usage in
    if usage_total <> sol.total_shields then
      acc :=
        err ~code:7 "usage holds %d shield tracks in total, flow reported %d"
          usage_total sol.total_shields
        :: !acc
  end;
  !acc

(* GSL0008: Kth * source–sink distance must recover the LSK budget
   (Formula 2 partitioning of the Formula 1 budget).  Both supported
   partition denominators are accepted: the Manhattan estimate (uniform
   budgeting) and the realized routed path length (route-aware). *)
let rule_budget_partition sol =
  if not (Float.is_finite sol.lsk_budget) || sol.lsk_budget <= 0.0 then
    [ err ~code:8 "LSK budget %g is not a positive finite value" sol.lsk_budget ]
  else begin
    let gcell = sol.netlist.Netlist.gcell_um in
    let tol = 1e-6 *. Float.max 1.0 sol.lsk_budget in
    let acc = ref [] in
    for i = 0 to min (checked_nets sol) (Array.length sol.kth) - 1 do
      let net = sol.netlist.Netlist.nets.(i) in
      let kth = sol.kth.(i) in
      if Float.is_finite kth && kth > 0.0 && Float.is_finite gcell && gcell > 0.0
      then begin
        let manhattan =
          Array.fold_left
            (fun a s -> max a (Point.manhattan net.Net.source s))
            1 net.Net.sinks
        in
        let routed =
          if route_on_grid sol.grid sol.routes.(i) && pins_on_grid sol.grid net
          then
            try
              Some
                (Array.fold_left
                   (fun a s ->
                     max a
                       (Route.path_length sol.grid sol.routes.(i)
                          ~source:net.Net.source ~sink:s))
                   1 net.Net.sinks)
            with Not_found -> None
          else None
        in
        let recovers d =
          Float.abs ((kth *. float_of_int d *. gcell) -. sol.lsk_budget) <= tol
        in
        let ok =
          recovers manhattan
          || match routed with Some d -> recovers d | None -> false
        in
        if not ok then
          acc :=
            err ~code:8 ~locus:(Diag.Net i)
              "Kth %.4g * %d gcells * %.0fum = %.4g does not recover LSK budget %.4g"
              kth manhattan gcell
              (kth *. float_of_int manhattan *. gcell)
              sol.lsk_budget
            :: !acc
      end
    done;
    !acc
  end

(* GSL0009: Kth bounds well-formed. *)
let rule_kth_positive sol =
  let n_nets = Array.length sol.netlist.Netlist.nets in
  let acc = ref [] in
  if Array.length sol.kth <> n_nets then
    acc :=
      err ~code:9 "%d Kth bounds for %d nets" (Array.length sol.kth) n_nets
      :: !acc;
  Array.iteri
    (fun i k ->
      if (not (Float.is_finite k)) || k <= 0.0 then
        acc :=
          err ~code:9 ~locus:(Diag.Net i) "Kth bound %g is not positive finite" k
          :: !acc)
    sol.kth;
  !acc

(* GSL0010: sensitivity must be symmetric with a zero diagonal. *)
let rule_sensitivity sol =
  let n = Array.length sol.netlist.Netlist.nets in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if sol.sensitive i i then
      acc :=
        err ~code:10 ~locus:(Diag.Net i) "net is marked sensitive to itself"
        :: !acc
  done;
  let check_pair i j =
    if i <> j && sol.sensitive i j <> sol.sensitive j i then
      acc :=
        err ~code:10 ~locus:(Diag.Net i)
          "sensitivity to net %d is not symmetric" j
        :: !acc
  in
  if n <= 160 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        check_pair i j
      done
    done
  else begin
    (* deterministic LCG sample: full n^2 is too big, but asymmetry in a
       hash-derived relation would be systematic, not localized *)
    let state = ref 12345 in
    let next bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    for _ = 1 to 20_000 do
      check_pair (next n) (next n)
    done
  end;
  !acc

(* GSL0011: the LSK lookup table must be monotone. *)
let rule_lsk_monotone sol =
  let entries = Lintable.entries sol.lsk_table in
  let acc = ref [] in
  Array.iteri
    (fun k (x, y) ->
      if not (Float.is_finite x && Float.is_finite y) then
        acc :=
          err ~code:11 "LSK table entry %d is not finite (%g, %g)" k x y :: !acc;
      if k > 0 then begin
        let px, py = entries.(k - 1) in
        if x <= px then
          acc :=
            err ~code:11 "LSK table abscissae not increasing at entry %d (%g <= %g)"
              k x px
            :: !acc;
        if y < py -. 1e-12 then
          acc :=
            err ~code:11 "LSK table not monotone at entry %d (noise %g < %g)" k y
              py
            :: !acc
      end)
    entries;
  !acc

(* GSL0012: scalar metrics must be finite and non-negative. *)
let rule_finite_metrics sol =
  let bad = ref [] in
  List.iter
    (fun (name, v) ->
      if (not (Float.is_finite v)) || v < 0.0 then
        bad := err ~code:12 "metric %s = %g (must be finite and >= 0)" name v :: !bad)
    sol.metrics;
  List.iter
    (fun (i, noise) ->
      if (not (Float.is_finite noise)) || noise < 0.0 then
        bad :=
          err ~code:12 ~locus:(Diag.Net i)
            "violation noise %g V (must be finite and >= 0)" noise
          :: !bad)
    sol.violations;
  !bad

(* GSL0013: every occupied (region, dir) needs a panel holding the net. *)
let rule_panel_coverage sol =
  let tbl = panel_key_tbl sol in
  let acc = ref [] in
  Array.iteri
    (fun i r ->
      if route_on_grid sol.grid r then
        List.iter
          (fun ((reg, d) as key) ->
            match Hashtbl.find_opt tbl key with
            | None ->
                acc :=
                  err ~code:13 ~locus:(Diag.Region (reg, d))
                    "occupied by net %d but no SINO panel was solved there" i
                  :: !acc
            | Some (_, nets) ->
                if not (Hashtbl.mem nets i) then
                  acc :=
                    err ~code:13 ~locus:(Diag.Region (reg, d))
                      "SINO panel does not include crossing net %d" i
                    :: !acc)
          (Route.occupied sol.grid r))
    sol.routes;
  !acc

(* GSL0014: panels should be feasible under their Kth bounds. *)
let rule_panel_feasible sol =
  List.filter_map
    (fun p ->
      if not p.feasible then
        Some
          (warn ~code:14 ~locus:(Diag.Region (p.region, p.dir))
             "SINO layout infeasible under its Kth bounds (%d nets, %d shields)"
             (Array.length p.nets) p.shields)
      else None)
    sol.panels

(* GSL0018: panels that took the resilience fallback path. *)
let rule_panel_degraded sol =
  List.filter_map
    (fun p ->
      if p.degraded then
        Some
          (warn ~code:18 ~locus:(Diag.Region (p.region, p.dir))
             "SINO panel degraded: solver fell back after retries (%d nets, %d shields)"
             (Array.length p.nets) p.shields)
      else None)
    sol.panels

(* GSL0019: phases truncated by the run's deadline. *)
let rule_deadline sol =
  match sol.deadline_phases with
  | [] -> []
  | phases ->
      [
        warn ~code:19
          "deadline expired: phase%s %s returned best-so-far results"
          (if List.length phases > 1 then "s" else "")
          (String.concat ", " phases);
      ]

(* GSL0028: a feasible panel must carry at least as many shields as the
   clique lower bound of Eda_sino.Bound, which holds for every feasible
   layout of its nets.  Fewer shields means the layout cannot actually
   satisfy the capacitive + inductive constraints it claims to. *)
let rule_shield_lb sol =
  let n = Array.length sol.kth in
  List.filter_map
    (fun p ->
      if
        p.feasible
        && Array.length p.nets >= 2
        && Array.for_all (fun i -> i >= 0 && i < n) p.nets
      then begin
        let inst =
          Eda_sino.Instance.make ~nets:p.nets
            ~kth:(Array.map (fun i -> sol.kth.(i)) p.nets)
            ~sensitive:sol.sensitive
        in
        let lb = Eda_sino.Bound.shield_lower_bound ~params:sol.keff inst in
        if p.shields < lb then
          Some
            (err ~code:28 ~locus:(Diag.Region (p.region, p.dir))
               "feasible panel has %d shields but the sensitivity clique \
                forces at least %d (%d nets)"
               p.shields lb (Array.length p.nets))
        else None
      end
      else None)
    sol.panels

(* GSL0015: residual crosstalk violations. *)
let rule_residual_violations sol =
  List.map
    (fun (i, noise) ->
      warn ~code:15 ~locus:(Diag.Net i)
        "predicted sink noise %.4g V exceeds the %.4g V bound" noise sol.bound_v)
    sol.violations

(* GSL0016: the netlist itself must be well-formed and match the grid. *)
let rule_netlist sol =
  let nl = sol.netlist in
  let acc = ref [] in
  if nl.Netlist.grid_w < 1 || nl.Netlist.grid_h < 1 then
    acc :=
      err ~code:16 "netlist grid %dx%d is empty" nl.Netlist.grid_w
        nl.Netlist.grid_h
      :: !acc;
  if (not (Float.is_finite nl.Netlist.gcell_um)) || nl.Netlist.gcell_um <= 0.0
  then
    acc :=
      err ~code:16 "gcell pitch %g um is not positive finite" nl.Netlist.gcell_um
      :: !acc;
  if
    Grid.width sol.grid <> nl.Netlist.grid_w
    || Grid.height sol.grid <> nl.Netlist.grid_h
  then
    acc :=
      err ~code:16 "solution grid %dx%d disagrees with netlist grid %dx%d"
        (Grid.width sol.grid) (Grid.height sol.grid) nl.Netlist.grid_w
        nl.Netlist.grid_h
      :: !acc;
  Array.iteri
    (fun i net ->
      if net.Net.id <> i then
        acc :=
          err ~code:16 ~locus:(Diag.Net i) "net id %d at netlist index %d"
            net.Net.id i
          :: !acc;
      if Array.length net.Net.sinks = 0 then
        acc := err ~code:16 ~locus:(Diag.Net i) "net has no sinks" :: !acc;
      List.iter
        (fun (pin : Point.t) ->
          if
            pin.Point.x < 0
            || pin.Point.x >= nl.Netlist.grid_w
            || pin.Point.y < 0
            || pin.Point.y >= nl.Netlist.grid_h
          then
            acc :=
              err ~code:16 ~locus:(Diag.Net i) "pin (%d,%d) outside %dx%d grid"
                pin.Point.x pin.Point.y nl.Netlist.grid_w nl.Netlist.grid_h
              :: !acc)
        (Net.pins net))
    nl.Netlist.nets;
  !acc

let rules =
  [
    (1, "route-on-grid", rule_on_grid);
    (2, "route-connected", rule_connected);
    (3, "route-is-tree", rule_tree);
    (4, "net-routed-once", rule_routed_once);
    (5, "region-capacity", rule_capacity);
    (6, "usage-matches-routes", rule_usage_matches);
    (7, "shield-accounting", rule_shields);
    (8, "budget-partition", rule_budget_partition);
    (9, "kth-positive", rule_kth_positive);
    (10, "sensitivity-symmetric", rule_sensitivity);
    (11, "lsk-table-monotone", rule_lsk_monotone);
    (12, "finite-metrics", rule_finite_metrics);
    (13, "panel-coverage", rule_panel_coverage);
    (14, "panel-feasible", rule_panel_feasible);
    (15, "residual-violations", rule_residual_violations);
    (16, "netlist-well-formed", rule_netlist);
    (18, "panel-degraded", rule_panel_degraded);
    (19, "deadline-degraded", rule_deadline);
    (28, "shield-lower-bound", rule_shield_lb);
  ]

let run sol = Diag.sort (List.concat_map (fun (_, _, rule) -> rule sol) rules)
