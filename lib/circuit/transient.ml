module M = Eda_util.Matrix

type result = { times : float array; data : float array array }

(* Unknown ordering: node voltages 1..N (ground dropped), then inductor
   currents, then source currents. *)
let run c ~dt ~t_end ~probes =
  if dt <= 0.0 || t_end <= dt then invalid_arg "Transient.run: bad time range";
  if probes = [] then invalid_arg "Transient.run: no probes";
  let elems = Mna.elements c in
  List.iter
    (function
      | Mna.V (_, _, w, _) ->
          if Float.abs (Waveform.initial w) > 1e-12 then
            invalid_arg "Transient.run: sources must start at 0"
      | Mna.R _ | Mna.C _ | Mna.L _ | Mna.K _ -> ())
    elems;
  let n_nodes = Mna.num_nodes c in
  let n_l = Mna.num_inductors c in
  let n_v = Mna.num_vsources c in
  let size = n_nodes + n_l + n_v in
  if size = 0 then invalid_arg "Transient.run: empty circuit";
  let vrow n = n - 1 in
  let lrow i = n_nodes + i in
  let srow i = n_nodes + n_l + i in
  let a = M.create size size in
  let stamp_g n1 n2 g =
    if n1 > 0 then M.add_to a (vrow n1) (vrow n1) g;
    if n2 > 0 then M.add_to a (vrow n2) (vrow n2) g;
    if n1 > 0 && n2 > 0 then begin
      M.add_to a (vrow n1) (vrow n2) (-.g);
      M.add_to a (vrow n2) (vrow n1) (-.g)
    end
  in
  let lmat = Mna.inductance_matrix c in
  let two_over_h = 2.0 /. dt in
  (* capacitor bookkeeping for companion-model state *)
  let caps =
    List.filter_map
      (function
        | Mna.C (x, y, v) -> Some (x, y, v)
        | Mna.R _ | Mna.L _ | Mna.K _ | Mna.V _ -> None)
      elems
  in
  let n_c = List.length caps in
  let cap_arr = Array.of_list caps in
  List.iter
    (function
      | Mna.R (x, y, r) -> stamp_g x y (1.0 /. r)
      | Mna.C (x, y, cv) -> stamp_g x y (two_over_h *. cv)
      | Mna.L (x, y, _, i) ->
          (* branch current in KCL *)
          if x > 0 then M.add_to a (vrow x) (lrow i) 1.0;
          if y > 0 then M.add_to a (vrow y) (lrow i) (-1.0);
          (* branch voltage equation *)
          if x > 0 then M.add_to a (lrow i) (vrow x) 1.0;
          if y > 0 then M.add_to a (lrow i) (vrow y) (-1.0);
          for k = 0 to n_l - 1 do
            let lik = M.get lmat i k in
            if lik <> 0.0 then M.add_to a (lrow i) (lrow k) (-.two_over_h *. lik)
          done
      | Mna.K _ -> ()
      | Mna.V (x, y, _, i) ->
          if x > 0 then M.add_to a (vrow x) (srow i) 1.0;
          if y > 0 then M.add_to a (vrow y) (srow i) (-1.0);
          if x > 0 then M.add_to a (srow i) (vrow x) 1.0;
          if y > 0 then M.add_to a (srow i) (vrow y) (-1.0))
    elems;
  Eda_guard.Fault.point "matrix.lu";
  let lu = M.lu_factor a in
  let steps = int_of_float (Float.ceil (t_end /. dt)) in
  let x = Array.make size 0.0 in
  let cap_i = Array.make n_c 0.0 in
  let node_v st n = if n = 0 then 0.0 else st.(vrow n) in
  let probe_arr = Array.of_list probes in
  let times = Array.make (steps + 1) 0.0 in
  let data = Array.map (fun _ -> Array.make (steps + 1) 0.0) probe_arr in
  Array.iteri (fun p n -> data.(p).(0) <- node_v x n) probe_arr;
  let rhs = Array.make size 0.0 in
  for step = 1 to steps do
    let t = float_of_int step *. dt in
    Array.fill rhs 0 size 0.0;
    (* capacitor companion sources from previous state *)
    Array.iteri
      (fun ci (nx, ny, cv) ->
        let geq = two_over_h *. cv in
        let v_prev = node_v x nx -. node_v x ny in
        let ieq = (geq *. v_prev) +. cap_i.(ci) in
        if nx > 0 then rhs.(vrow nx) <- rhs.(vrow nx) +. ieq;
        if ny > 0 then rhs.(vrow ny) <- rhs.(vrow ny) -. ieq)
      cap_arr;
    (* inductor branch equations *)
    List.iter
      (function
        | Mna.L (nx, ny, _, i) ->
            let v_prev = node_v x nx -. node_v x ny in
            let flux = ref 0.0 in
            for k = 0 to n_l - 1 do
              flux := !flux +. (M.get lmat i k *. x.(lrow k))
            done;
            rhs.(lrow i) <- -.v_prev -. (two_over_h *. !flux)
        | Mna.V (_, _, w, i) -> rhs.(srow i) <- Waveform.value w t
        | Mna.R _ | Mna.C _ | Mna.K _ -> ())
      elems;
    let x' = M.lu_solve lu rhs in
    x'.(0) <- Eda_guard.Fault.corrupt "matrix.lu" x'.(0);
    (* A NaN/Inf here would otherwise propagate through the companion
       state and surface downstream as a garbage noise figure; fail at
       the source with the step that produced it. *)
    Array.iteri
      (fun i v ->
        if not (Float.is_finite v) then
          Eda_guard.Error.raise_
            (Eda_guard.Error.Nonfinite
               {
                 site = "matrix.lu";
                 what = Printf.sprintf "unknown %d at t=%.4e s" i t;
               }))
      x';
    (* update capacitor currents: i_n = Geq v_n - Ieq(prev) *)
    Array.iteri
      (fun ci (nx, ny, cv) ->
        let geq = two_over_h *. cv in
        let v_prev = node_v x nx -. node_v x ny in
        let ieq = (geq *. v_prev) +. cap_i.(ci) in
        let v_now = node_v x' nx -. node_v x' ny in
        cap_i.(ci) <- (geq *. v_now) -. ieq)
      cap_arr;
    Array.blit x' 0 x 0 size;
    times.(step) <- t;
    Array.iteri (fun p n -> data.(p).(step) <- node_v x n) probe_arr
  done;
  { times; data }

let peak_abs r p =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 r.data.(p)

let value_at r p t =
  let n = Array.length r.times in
  if t <= r.times.(0) then r.data.(p).(0)
  else if t >= r.times.(n - 1) then r.data.(p).(n - 1)
  else begin
    let i = ref 0 in
    while r.times.(!i + 1) < t do
      incr i
    done;
    let t0 = r.times.(!i) and t1 = r.times.(!i + 1) in
    let y0 = r.data.(p).(!i) and y1 = r.data.(p).(!i + 1) in
    y0 +. ((t -. t0) /. (t1 -. t0) *. (y1 -. y0))
  end

let crossing_time r p ~level =
  let n = Array.length r.times in
  let rec go i =
    if i >= n then None
    else if r.data.(p).(i) >= level then
      if i = 0 then Some r.times.(0)
      else begin
        let y0 = r.data.(p).(i - 1) and y1 = r.data.(p).(i) in
        let t0 = r.times.(i - 1) and t1 = r.times.(i) in
        if y1 = y0 then Some t1
        else Some (t0 +. ((level -. y0) /. (y1 -. y0) *. (t1 -. t0)))
      end
    else go (i + 1)
  in
  go 0

let num_steps r = Array.length r.times - 1
