type node = int

let ground = 0

type element =
  | R of node * node * float
  | C of node * node * float
  | L of node * node * float * int
  | K of int * int * float
  | V of node * node * Waveform.t * int

type t = {
  mutable next_node : int;
  mutable n_l : int;
  mutable n_v : int;
  mutable elems : element list; (* reversed *)
}

let create () = { next_node = 1; n_l = 0; n_v = 0; elems = [] }

let node c =
  let n = c.next_node in
  c.next_node <- n + 1;
  n

let num_nodes c = c.next_node - 1
let num_inductors c = c.n_l
let num_vsources c = c.n_v

let check_node c n name =
  if n < 0 || n >= c.next_node then invalid_arg ("Mna." ^ name ^ ": unknown node")

let resistor c a b r =
  check_node c a "resistor";
  check_node c b "resistor";
  if r <= 0.0 then invalid_arg "Mna.resistor: non-positive resistance";
  c.elems <- R (a, b, r) :: c.elems

let capacitor c a b cap =
  check_node c a "capacitor";
  check_node c b "capacitor";
  if cap <= 0.0 then invalid_arg "Mna.capacitor: non-positive capacitance";
  c.elems <- C (a, b, cap) :: c.elems

let inductor c a b l =
  check_node c a "inductor";
  check_node c b "inductor";
  if l <= 0.0 then invalid_arg "Mna.inductor: non-positive inductance";
  let idx = c.n_l in
  c.n_l <- idx + 1;
  c.elems <- L (a, b, l, idx) :: c.elems;
  idx

let mutual c i j k =
  if i < 0 || i >= c.n_l || j < 0 || j >= c.n_l || i = j then
    invalid_arg "Mna.mutual: bad inductor indices";
  if Float.abs k >= 1.0 then invalid_arg "Mna.mutual: |k| must be < 1";
  c.elems <- K (i, j, k) :: c.elems

let vsource c a b w =
  check_node c a "vsource";
  check_node c b "vsource";
  let idx = c.n_v in
  c.n_v <- idx + 1;
  c.elems <- V (a, b, w, idx) :: c.elems;
  idx

let elements c = List.rev c.elems

let inductance_matrix c =
  let module M = Eda_util.Matrix in
  let n = max 1 c.n_l in
  let m = M.create n n in
  let self = Array.make n 0.0 in
  List.iter
    (function
      | L (_, _, l, i) -> self.(i) <- l
      | R _ | C _ | K _ | V _ -> ())
    (elements c);
  List.iter
    (function
      | L (_, _, l, i) -> M.set m i i l
      | K (i, j, k) ->
          let mij = k *. sqrt (self.(i) *. self.(j)) in
          M.set m i j mij;
          M.set m j i mij
      | R _ | C _ | V _ -> ())
    (elements c);
  m
