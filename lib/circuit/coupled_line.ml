type wire_role = Victim | Aggressor | Opposing | Quiet | Shield

type spec = {
  length_m : float;
  segments : int;
  r_per_m : float;
  l_per_m : float;
  c_per_m : float;
  cc_per_m : float;
  k_adjacent : float;
}

type drive = {
  rd : float;
  cl : float;
  vdd : float;
  t_delay : float;
  t_rise : float;
}

let via_resistance = 0.5 (* shield-to-P/G connection *)

let build spec drive roles =
  let n = Array.length roles in
  if n = 0 then invalid_arg "Coupled_line.build: no wires";
  if spec.segments < 1 then invalid_arg "Coupled_line.build: segments >= 1";
  if spec.k_adjacent < 0.0 || spec.k_adjacent >= 1.0 then
    invalid_arg "Coupled_line.build: k_adjacent in [0,1)";
  let m = spec.segments in
  let c = Mna.create () in
  let seg_len = spec.length_m /. float_of_int m in
  let r_seg = spec.r_per_m *. seg_len in
  let l_seg = spec.l_per_m *. seg_len in
  let c_seg = spec.c_per_m *. seg_len in
  let cc_seg = spec.cc_per_m *. seg_len in
  (* junction nodes: nodes.(w).(s), s = 0..m *)
  let nodes = Array.init n (fun _ -> Array.init (m + 1) (fun _ -> Mna.node c)) in
  (* inductor index per (wire, segment) for mutual coupling *)
  let inds = Array.make_matrix n m (-1) in
  Array.iteri
    (fun w wire_nodes ->
      for s = 0 to m - 1 do
        let mid = Mna.node c in
        Mna.resistor c wire_nodes.(s) mid r_seg;
        inds.(w).(s) <- Mna.inductor c mid wire_nodes.(s + 1) l_seg
      done)
    nodes;
  (* ground capacitance: pi model, half at each segment end *)
  let node_cap = Array.make_matrix n (m + 1) 0.0 in
  for w = 0 to n - 1 do
    for s = 0 to m - 1 do
      node_cap.(w).(s) <- node_cap.(w).(s) +. (c_seg /. 2.0);
      node_cap.(w).(s + 1) <- node_cap.(w).(s + 1) +. (c_seg /. 2.0)
    done
  done;
  for w = 0 to n - 1 do
    for s = 0 to m do
      if node_cap.(w).(s) > 0.0 then
        Mna.capacitor c nodes.(w).(s) Mna.ground node_cap.(w).(s)
    done
  done;
  (* nearest-neighbour coupling capacitance, same pi weighting *)
  for w = 0 to n - 2 do
    for s = 0 to m do
      let weight = if s = 0 || s = m then 0.5 else 1.0 in
      Mna.capacitor c nodes.(w).(s) nodes.(w + 1).(s) (cc_seg *. weight)
    done
  done;
  (* inductive coupling: k(d) = k_adjacent^d between same-index segments *)
  if spec.k_adjacent > 0.0 then
    for w = 0 to n - 1 do
      for w' = w + 1 to n - 1 do
        let k = spec.k_adjacent ** float_of_int (w' - w) in
        if k > 1e-4 then
          for s = 0 to m - 1 do
            Mna.mutual c inds.(w).(s) inds.(w').(s) k
          done
      done
    done;
  (* terminations *)
  Array.iteri
    (fun w role ->
      let near = nodes.(w).(0) and far = nodes.(w).(m) in
      match role with
      | Aggressor | Opposing ->
          let v1 = if role = Opposing then -.drive.vdd else drive.vdd in
          let d = Mna.node c in
          ignore
            (Mna.vsource c d Mna.ground
               (Waveform.Ramp
                  { v0 = 0.0; v1; t_delay = drive.t_delay; t_rise = drive.t_rise }));
          Mna.resistor c d near drive.rd;
          Mna.capacitor c far Mna.ground drive.cl
      | Victim | Quiet ->
          Mna.resistor c near Mna.ground drive.rd;
          Mna.capacitor c far Mna.ground drive.cl
      | Shield ->
          Mna.resistor c near Mna.ground via_resistance;
          Mna.resistor c far Mna.ground via_resistance)
    roles;
  (c, Array.init n (fun w -> nodes.(w).(m)))

let victim_noise ?dt ?t_end spec drive roles =
  let dt = Option.value dt ~default:(drive.t_rise /. 10.0) in
  let t_end = Option.value t_end ~default:(drive.t_delay +. (20.0 *. drive.t_rise)) in
  let c, far = build spec drive roles in
  let victims =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun (i, r) -> if r = Victim then Some i else None)
            (Array.to_seq (Array.mapi (fun i r -> (i, r)) roles))))
  in
  if victims = [] then invalid_arg "Coupled_line.victim_noise: no victim wire";
  let probes = List.map (fun i -> far.(i)) victims in
  let res = Transient.run c ~dt ~t_end ~probes in
  List.mapi (fun p i -> (i, Transient.peak_abs res p)) victims

let worst_victim_noise ?dt ?t_end spec drive roles =
  List.fold_left
    (fun acc (_, v) -> Float.max acc v)
    0.0
    (victim_noise ?dt ?t_end spec drive roles)

let differential_noise ?dt ?t_end spec drive roles ~plus ~minus =
  let n = Array.length roles in
  let is_victim i = i >= 0 && i < n && roles.(i) = Victim in
  if (not (is_victim plus)) || not (is_victim minus) || plus = minus then
    invalid_arg "Coupled_line.differential_noise: plus/minus must be distinct victims";
  let dt = Option.value dt ~default:(drive.t_rise /. 10.0) in
  let t_end = Option.value t_end ~default:(drive.t_delay +. (20.0 *. drive.t_rise)) in
  let c, far = build spec drive roles in
  let res = Transient.run c ~dt ~t_end ~probes:[ far.(plus); far.(minus) ] in
  let worst = ref 0.0 in
  for k = 0 to Transient.num_steps res do
    worst := Float.max !worst (Float.abs (res.Transient.data.(0).(k) -. res.Transient.data.(1).(k)))
  done;
  !worst

let rise_delay ?dt ?t_end spec drive roles ~wire =
  if wire < 0 || wire >= Array.length roles || roles.(wire) <> Aggressor then
    invalid_arg "Coupled_line.rise_delay: wire must be a rising Aggressor";
  let dt = Option.value dt ~default:(drive.t_rise /. 10.0) in
  let t_end = Option.value t_end ~default:(drive.t_delay +. (40.0 *. drive.t_rise)) in
  let c, far = build spec drive roles in
  let res = Transient.run c ~dt ~t_end ~probes:[ far.(wire) ] in
  Option.map
    (fun t -> t -. drive.t_delay)
    (Transient.crossing_time res 0 ~level:(0.5 *. drive.vdd))
