(** Reusable domain pool for data-parallel loops.

    The paper's hot loops — Phase II solves an independent min-area SINO
    instance per routing region, Phase III re-audits noise per net, and
    Phase I evaluates candidate edge sets per net — are embarrassingly
    parallel.  This module fans an index range [0..n-1] out over a pool
    of persistent worker domains with chunked work-stealing, while
    keeping results {e deterministic}:

    - {b Ordered reduction.}  [parallel_map] writes result [i] into slot
      [i] of the output array regardless of which domain computed it or
      when it finished, so the merged result is identical to the
      sequential one.
    - {b Sharded metrics and journal.}  Workers record into their own
      {!Eda_obs.Metrics} and {!Eda_obs.Journal} domain shards; at the end
      of each parallel section the shards are folded back into the
      coordinator's registry with [Metrics.absorb] / [Journal.absorb], in
      worker-index order.  Counter and histogram series — and the
      canonically-sorted journal — therefore come out the same for any
      [jobs] value (only the [exec.*] per-domain series and the [_us]
      journal timings vary).
    - {b Sequential bypass.}  With no pool, or a pool created with
      [jobs = 1], no domain is ever spawned and no [exec.*] metric or
      span is emitted: the call degenerates to a plain loop, so
      [jobs = 1] behavior is byte-identical to the pre-parallel code.

    Exceptions raised by the loop body are caught in the workers,
    the section drains early, and the recorded exception (the one with
    the lowest starting chunk index) is re-raised with its backtrace on
    the caller's domain after all workers have quiesced — the pool stays
    usable afterwards.

    Instrumentation (parallel sections only): an [exec.parallel] trace
    span with [section]/[items]/[jobs]/[chunk] args on the coordinator;
    the [exec.sections] counter, per-section-name [exec.section_items]
    histograms (labeled [("section", name)]), and
    [exec.imbalance] histogram (max busy / mean busy across a section's
    domains — 1.0 is perfect balance); and per-domain counters labeled
    [("domain", "<slot>")] (slot 0 is the coordinator, which also
    steals): [exec.chunks], [exec.items], [exec.steals] (chunks taken
    beyond the domain's first in a section) and [exec.domain_busy_ns]
    (monotonic-clock time spent inside the steal loop).  The per-domain
    series necessarily vary with [jobs] and with scheduling, so the CI
    determinism gate and the bench regression policy exclude the
    [exec.] prefix. *)

type t
(** A pool of [jobs - 1] persistent worker domains (plus the calling
    domain, which participates in every section). *)

val default_jobs : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1, cap\]]
    (default cap 8) — the default for the CLIs' [--jobs]. *)

val create : jobs:int -> t
(** [create ~jobs] — spawn the pool.  [jobs] is clamped to at least 1;
    [jobs = 1] spawns no domains.  Call {!shutdown} when done (or use
    {!with_pool}). *)

val jobs : t -> int

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Must not be called while a
    parallel section is running. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] — {!create}, run [f], {!shutdown} (also on
    exception). *)

val parallel_iter :
  ?pool:t -> ?name:string -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_iter ?pool ?name ?chunk n body] — run [body i] for
    [i = 0..n-1].  Without a pool (or with [jobs pool = 1]) this is a
    plain ascending loop on the calling domain.  With a pool, indices
    are handed out in chunks of [chunk] (default [ceil (n / (jobs * 8))])
    through an atomic cursor that idle domains steal from.  [name]
    (default ["section"]) labels the section's [exec.section_items]
    series and trace span.  [body] must not mutate state shared across
    iterations — writes must go to per-index slots or domain-local
    (e.g. Metrics / Journal) cells.

    Nested sections, and sections entered from a domain other than the
    pool's creator, run sequentially rather than deadlocking. *)

val parallel_map :
  ?pool:t -> ?name:string -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_map ?pool ?name ?chunk n f] — [[| f 0; ...; f (n-1) |]]
    with the work distributed as in {!parallel_iter} and results placed
    in index order (deterministic ordered reduction). *)

val map_array :
  ?pool:t -> ?name:string -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ?pool f arr] — {!parallel_map} over [arr]'s indices. *)
