module Metrics = Eda_obs.Metrics
module Trace = Eda_obs.Trace
module Journal = Eda_obs.Journal

let default_jobs ?(cap = 8) () =
  max 1 (min (max 1 cap) (Domain.recommended_domain_count ()))

(* One parallel section.  Indices [Atomic.fetch_and_add cursor chunk]
   hand out left-to-right; every domain (workers and the coordinator)
   steals until the cursor passes [hi].  Failures drain the cursor so the
   section ends early; the failure starting at the lowest index wins. *)
type job = {
  hi : int;
  chunk : int;
  cursor : int Atomic.t;
  body : int -> unit;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
  mutable remaining : int;  (** workers yet to finish this section *)
  mutable shards : (int * Metrics.snapshot * Journal.event list) list;
  busy_ns : int64 array;
      (** per-slot busy time this section; each slot is written only by
          its own domain, read by the coordinator after the barrier *)
}

type t = {
  n_jobs : int;
  owner : int;  (** Domain.self of the creator; sections run from there *)
  mu : Mutex.t;
  work : Condition.t;  (** new section posted, or pool closing *)
  idle : Condition.t;  (** a worker finished the current section *)
  mutable job : job option;
  mutable generation : int;
  mutable closing : bool;
  mutable busy : bool;  (** a section is live — nested calls go sequential *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs

(* Registered lazily so purely sequential runs export no exec.* series
   at all — jobs=1 output stays byte-identical to the pre-parallel code. *)
let m_sections = lazy (Metrics.counter "exec.sections")

(* one exec.section_items series per section name, so a speedup
   investigation can attribute granularity per phase *)
let m_section_items name =
  Metrics.histogram ~labels:[ ("section", name) ] "exec.section_items"

(* max busy / mean busy across the slots of one section: 1.0 is a
   perfectly balanced section, large values mean one domain dragged *)
let m_imbalance = lazy (Metrics.histogram "exec.imbalance")

type dctrs = {
  chunks : Metrics.counter;
  items : Metrics.counter;
  steals : Metrics.counter;  (** chunks beyond the domain's first per section *)
  busy : Metrics.counter;  (** exec.domain_busy_ns *)
}

let domain_counters slot =
  let labels = [ ("domain", string_of_int slot) ] in
  {
    chunks = Metrics.counter ~labels "exec.chunks";
    items = Metrics.counter ~labels "exec.items";
    steals = Metrics.counter ~labels "exec.steals";
    busy = Metrics.counter ~labels "exec.domain_busy_ns";
  }

let record_failure pool job start e bt =
  Mutex.lock pool.mu;
  (match job.failed with
  | Some (s0, _, _) when s0 <= start -> ()
  | Some _ | None -> job.failed <- Some (start, e, bt));
  Mutex.unlock pool.mu;
  (* stop handing out work; in-flight chunks still finish *)
  Atomic.set job.cursor job.hi

let steal pool job ~slot ~ctrs =
  let t0 = Eda_obs.Clock.now_ns () in
  let taken = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let start = Atomic.fetch_and_add job.cursor job.chunk in
    if start >= job.hi then continue_ := false
    else begin
      let stop = min job.hi (start + job.chunk) in
      incr taken;
      Metrics.incr ctrs.chunks;
      if !taken > 1 then Metrics.incr ctrs.steals;
      Metrics.add ctrs.items (stop - start);
      try
        (* fault site: an injected crash here exercises the same drain +
           typed-reraise path as a real worker failure *)
        Eda_guard.Fault.point "exec.worker";
        for i = start to stop - 1 do
          job.body i
        done
      with e -> record_failure pool job start e (Printexc.get_raw_backtrace ())
    end
  done;
  let busy = Int64.sub (Eda_obs.Clock.now_ns ()) t0 in
  job.busy_ns.(slot) <- busy;
  Metrics.add ctrs.busy (Int64.to_int busy)

let worker pool slot () =
  let ctrs = domain_counters slot in
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mu;
    while (not pool.closing) && pool.generation = !seen do
      Condition.wait pool.work pool.mu
    done;
    if pool.closing then begin
      running := false;
      Mutex.unlock pool.mu
    end
    else begin
      seen := pool.generation;
      let job = Option.get pool.job in
      Mutex.unlock pool.mu;
      steal pool job ~slot ~ctrs;
      (* ship this domain's metric + journal deltas for the ordered merge *)
      let shard = Metrics.snapshot () in
      Metrics.reset ();
      let jshard = Journal.drain () in
      Mutex.lock pool.mu;
      job.shards <- (slot, shard, jshard) :: job.shards;
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast pool.idle;
      Mutex.unlock pool.mu
    end
  done

let create ~jobs:n =
  let n = max 1 n in
  let pool =
    {
      n_jobs = n;
      owner = (Domain.self () :> int);
      mu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      generation = 0;
      closing = false;
      busy = false;
      domains = [];
    }
  in
  if n > 1 then
    pool.domains <- List.init (n - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mu;
  pool.closing <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mu;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let sequential n body =
  for i = 0 to n - 1 do
    body i
  done

let default_chunk ~jobs n = max 1 ((n + (jobs * 8) - 1) / (jobs * 8))

let run_range pool ?(name = "section") ?chunk n body =
  if n <= 0 then ()
  else if
    pool.n_jobs = 1 || pool.busy || (Domain.self () :> int) <> pool.owner
  then sequential n body
  else begin
    pool.busy <- true;
    Fun.protect ~finally:(fun () -> pool.busy <- false) @@ fun () ->
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~jobs:pool.n_jobs n
    in
    Metrics.incr (Lazy.force m_sections);
    Metrics.observe (m_section_items name) (float_of_int n);
    Trace.span_args "exec.parallel"
      [
        ("section", name);
        ("items", string_of_int n);
        ("jobs", string_of_int pool.n_jobs);
        ("chunk", string_of_int chunk);
      ]
    @@ fun () ->
    let job =
      {
        hi = n;
        chunk;
        cursor = Atomic.make 0;
        body;
        failed = None;
        remaining = pool.n_jobs - 1;
        shards = [];
        busy_ns = Array.make pool.n_jobs 0L;
      }
    in
    let ctrs = domain_counters 0 in
    Mutex.lock pool.mu;
    pool.job <- Some job;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mu;
    (* the coordinator is domain slot 0 and steals like everyone else *)
    steal pool job ~slot:0 ~ctrs;
    Mutex.lock pool.mu;
    while job.remaining > 0 do
      Condition.wait pool.idle pool.mu
    done;
    pool.job <- None;
    Mutex.unlock pool.mu;
    (* deterministic ordered reduction: shards fold back in slot order,
       not completion order *)
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) job.shards
    |> List.iter (fun (_, shard, jshard) ->
           Metrics.absorb shard;
           Journal.absorb jshard);
    (let sum =
       Array.fold_left (fun s b -> s +. Int64.to_float b) 0.0 job.busy_ns
     in
     let mx = Array.fold_left (fun m b -> Float.max m (Int64.to_float b)) 0.0 job.busy_ns in
     let mean = sum /. float_of_int pool.n_jobs in
     if mean > 0.0 then Metrics.observe (Lazy.force m_imbalance) (mx /. mean));
    match job.failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_iter ?pool ?name ?chunk n body =
  match pool with
  | None -> sequential n body
  | Some p -> run_range p ?name ?chunk n body

let parallel_map ?pool ?name ?chunk n f =
  match pool with
  | None -> Array.init n f
  | Some p when p.n_jobs = 1 -> Array.init n f
  | Some p ->
      if n <= 0 then [||]
      else begin
        let out = Array.make n None in
        run_range p ?name ?chunk n (fun i -> out.(i) <- Some (f i));
        Array.map
          (function
            | Some v -> v
            | None ->
                (* only reachable if a failure drained the range, and then
                   run_range re-raised before we got here *)
                assert false)
          out
      end

let map_array ?pool ?name ?chunk f arr =
  parallel_map ?pool ?name ?chunk (Array.length arr) (fun i -> f arr.(i))
