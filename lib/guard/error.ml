type policy = Fail | Degrade

type t =
  | Parse of { file : string option; line : int; token : string; msg : string }
  | Unreachable of { net : int; region : int }
  | Infeasible of { region : int; dir : string; nets : int; retries : int }
  | Singular_matrix of { n : int; column : int; pivot : float }
  | Deadline of { phase : string; budget_ms : int }
  | Worker_crash of { site : string; msg : string }
  | Nonfinite of { site : string; what : string }
  | Frame of { what : string; detail : string }
  | Overload of { reason : string; depth : int }
  | Io of { site : string; msg : string }

exception Error of t

let class_name = function
  | Parse _ -> "parse-error"
  | Unreachable _ -> "unreachable-grid"
  | Infeasible _ -> "infeasible-region"
  | Singular_matrix _ -> "singular-matrix"
  | Deadline _ -> "deadline-exceeded"
  | Worker_crash _ -> "worker-crash"
  | Nonfinite _ -> "nonfinite-value"
  | Frame _ -> "bad-frame"
  | Overload _ -> "overloaded"
  | Io _ -> "io-error"

(* The single error-class -> GSL diagnostic code mapping (README table).
   Codes 1..16 belong to the Eda_check invariant rules and 17..19 to the
   runtime findings they can also report; 20..23 are error-only;
   30..32 belong to the serve protocol layer. *)
let gsl_code = function
  | Unreachable _ -> 17
  | Infeasible _ -> 18
  | Deadline _ -> 19
  | Parse _ -> 20
  | Singular_matrix _ -> 21
  | Worker_crash _ -> 22
  | Nonfinite _ -> 23
  | Frame _ -> 30
  | Overload _ -> 31
  | Io _ -> 32

(* The single error-class -> process exit code mapping.  0 = success
   (possibly degraded), 1 = lint findings / regression breach, then: *)
let exit_code = function
  | Parse _ | Unreachable _ | Frame _ -> 2 (* usage / malformed input *)
  | Infeasible _ -> 3 (* infeasible under Fail policy *)
  | Deadline _ -> 4 (* budget exhausted, no degradable state *)
  | Singular_matrix _ | Worker_crash _ | Nonfinite _ -> 5 (* internal *)
  | Overload _ -> 6 (* server refused admission *)
  | Io _ -> 7 (* peer/stream I/O failure *)

let to_string = function
  | Parse { file; line; token; msg } ->
      Printf.sprintf "%sline %d: %s%s"
        (match file with Some f -> f ^ ": " | None -> "")
        line msg
        (if token = "" then "" else Printf.sprintf " (at %S)" token)
  | Unreachable { net; region } ->
      Printf.sprintf
        "net %d: terminal region %d unreachable (disconnected grid)" net region
  | Infeasible { region; dir; nets; retries } ->
      Printf.sprintf
        "region %d/%s: SINO infeasible for %d nets after %d reseeded retries"
        region dir nets retries
  | Singular_matrix { n; column; pivot } ->
      Printf.sprintf "singular matrix (n=%d, best |pivot| %.3e in column %d)" n
        pivot column
  | Deadline { phase; budget_ms } ->
      Printf.sprintf "deadline of %d ms exhausted in phase %s" budget_ms phase
  | Worker_crash { site; msg } ->
      Printf.sprintf "worker crash at %s: %s" site msg
  | Nonfinite { site; what } ->
      Printf.sprintf "non-finite value at %s: %s" site what
  | Frame { what; detail } -> Printf.sprintf "bad frame (%s): %s" what detail
  | Overload { reason; depth } ->
      Printf.sprintf "request rejected (%s) at queue depth %d" reason depth
  | Io { site; msg } -> Printf.sprintf "i/o failure at %s: %s" site msg

let raise_ e = raise (Error e)

(* [Sys_error] carries no errno; the runtime renders EPIPE on stdio
   channels as this exact message suffix. *)
let sys_error_is_pipe msg =
  let suffix = "Broken pipe" in
  let n = String.length msg and k = String.length suffix in
  n >= k && String.sub msg (n - k) k = suffix

(* Known foreign exceptions folded into the taxonomy; the CLIs call this
   so no bare [Failure] reaches the user. *)
let of_exn = function
  | Error e -> Some e
  | Eda_util.Matrix.Singular { n; column; pivot } ->
      Some (Singular_matrix { n; column; pivot })
  | Unix.Unix_error (err, fn, _)
    when err = Unix.EPIPE || err = Unix.ECONNRESET || err = Unix.ESHUTDOWN ->
      Some (Io { site = fn; msg = Unix.error_message err })
  | Sys_error msg when sys_error_is_pipe msg ->
      Some (Io { site = "stdio"; msg })
  | _ -> None

let () =
  Printexc.register_printer (function
    | Error e ->
        Some (Printf.sprintf "Eda_guard.Error(%s: %s)" (class_name e) (to_string e))
    | _ -> None)
