(** Typed failure taxonomy for the whole flow.

    Every way the pipeline can fail — malformed input, a disconnected
    routing grid, an infeasible SINO region, a singular MNA matrix, an
    exhausted time budget, a crashed (or fault-injected) worker, a
    non-finite simulation value — is one constructor of {!t}, and the
    taxonomy owns the {e single} mapping from failure class to GSL
    diagnostic code ({!gsl_code}) and to process exit code
    ({!exit_code}).  Libraries raise {!Error}; the CLIs catch it once in
    [Cli_common] and render/exit uniformly, so no bare [Failure] ever
    reaches the user.

    This module deliberately depends only on [eda_util]: payloads are
    plain ints/strings (a panel direction travels as ["H"]/["V"]) so the
    netlist loader, the linear-algebra kernel and the routers can all
    raise it without dependency cycles through [eda_check]. *)

(** What to do when a region stays infeasible after all retries:
    [Fail] raises [Error (Infeasible _)]; [Degrade] installs a
    conservative all-shield fallback layout and tags the panel degraded. *)
type policy = Fail | Degrade

type t =
  | Parse of { file : string option; line : int; token : string; msg : string }
      (** Malformed netlist text: [line] is 1-based, [token] the offending
          lexeme (may be [""] for structural errors). *)
  | Unreachable of { net : int; region : int }
      (** A net terminal sits in a region the router cannot reach. *)
  | Infeasible of { region : int; dir : string; nets : int; retries : int }
      (** A SINO panel stayed infeasible after [retries] reseeded solves
          (only raised under the [Fail] policy). *)
  | Singular_matrix of { n : int; column : int; pivot : float }
      (** [Matrix.lu_factor] hit a zero pivot (see
          {!Eda_util.Matrix.Singular}). *)
  | Deadline of { phase : string; budget_ms : int }
      (** The time budget expired with no best-so-far state to degrade
          to. *)
  | Worker_crash of { site : string; msg : string }
      (** A worker (or fault-injection site) raised; [site] names the
          injection point or execution context. *)
  | Nonfinite of { site : string; what : string }
      (** A NaN/Inf escaped a numeric kernel. *)
  | Frame of { what : string; detail : string }
      (** A serve-protocol frame the daemon refuses to process: [what]
          names the violation (["oversized"], ["bad-json"], ["truncated"],
          ["bad-schema"], ...), [detail] elaborates. *)
  | Overload of { reason : string; depth : int }
      (** The daemon refused admission: [reason] is ["queue-full"] or
          ["draining"], [depth] the queue depth at rejection time. *)
  | Io of { site : string; msg : string }
      (** A peer or stream I/O failure (broken pipe, connection reset,
          refused connection): [site] names the syscall or stream. *)

exception Error of t

(** Stable kebab-case class name (["parse-error"], ["deadline-exceeded"],
    ...), used in logs and the README table. *)
val class_name : t -> string

(** GSL diagnostic code for the class: 17 unreachable, 18 infeasible,
    19 deadline, 20 parse, 21 singular, 22 worker crash, 23 non-finite,
    30 bad frame, 31 overloaded, 32 i/o. *)
val gsl_code : t -> int

(** Process exit code for the class: 2 usage/input (parse, unreachable,
    bad frame), 3 infeasible, 4 deadline, 5 internal (singular, crash,
    non-finite), 6 overloaded, 7 i/o.  0 is success — possibly
    degraded — and 1 is lint findings/regression. *)
val exit_code : t -> int

(** Human-oriented one-line rendering (no class prefix). *)
val to_string : t -> string

(** [raise_ e] raises [Error e]. *)
val raise_ : t -> 'a

(** Fold a foreign exception into the taxonomy when a mapping exists
    ([Error] itself, [Matrix.Singular], pipe/reset [Unix_error]s and the
    [Sys_error] the runtime raises for EPIPE on stdio channels — both
    become {!Io}); [None] for anything else. *)
val of_exn : exn -> t option
