type mode = Raise | Delay of int | Corrupt

type spec = { site : string; mode : mode; prob : float; seed : int }

type slot = {
  spec : spec;
  rng : Eda_util.Rng.t;
  mu : Mutex.t;
  injected : Eda_obs.Metrics.counter;
}

let env_var = "GSINO_FAULTS"

(* [enabled] is the fast path: with no faults configured, [point] is one
   atomic load and a branch.  The table itself is written only by [set] /
   [clear] (coordinator, before workers exist) and read afterwards. *)
let enabled = Atomic.make false
let slots : (string, slot) Hashtbl.t = Hashtbl.create 7

let default_seed site = Hashtbl.hash ("gsino-fault", site)

let parse_one raw =
  let s = String.trim raw in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s '=' with
  | None -> err "fault spec %S: expected site=mode[@prob][#seed]" s
  | Some eq -> (
      let site = String.sub s 0 eq in
      let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
      if site = "" then err "fault spec %S: empty site" s
      else
        let rest, seed =
          match String.index_opt rest '#' with
          | None -> (rest, default_seed site)
          | Some h -> (
              let v = String.sub rest (h + 1) (String.length rest - h - 1) in
              match int_of_string_opt v with
              | Some n -> (String.sub rest 0 h, n)
              | None -> (rest, min_int) (* flagged below *))
        in
        let rest, prob =
          match String.index_opt rest '@' with
          | None -> (rest, 1.0)
          | Some a -> (
              let v = String.sub rest (a + 1) (String.length rest - a - 1) in
              match float_of_string_opt v with
              | Some p -> (String.sub rest 0 a, p)
              | None -> (rest, nan) (* flagged below *))
        in
        if seed = min_int then err "fault spec %S: bad seed" s
        else if Float.is_nan prob || prob < 0.0 || prob > 1.0 then
          err "fault spec %S: probability must be in [0,1]" s
        else
          match rest with
          | "raise" -> Ok { site; mode = Raise; prob; seed }
          | "nan" -> Ok { site; mode = Corrupt; prob; seed }
          | _ when String.length rest > 6 && String.sub rest 0 6 = "delay:" -> (
              let v = String.sub rest 6 (String.length rest - 6) in
              match int_of_string_opt v with
              | Some ms when ms >= 0 -> Ok { site; mode = Delay ms; prob; seed }
              | Some _ | None -> err "fault spec %S: bad delay %S" s v)
          | m -> err "fault spec %S: unknown mode %S (raise|nan|delay:MS)" s m)

let parse str =
  let parts =
    String.split_on_char ',' str
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: tl -> (
        match parse_one p with Ok sp -> go (sp :: acc) tl | Error _ as e -> e)
  in
  go [] parts

let clear () =
  Atomic.set enabled false;
  Hashtbl.reset slots

let set specs =
  clear ();
  List.iter
    (fun spec ->
      Hashtbl.replace slots spec.site
        {
          spec;
          rng = Eda_util.Rng.create spec.seed;
          mu = Mutex.create ();
          injected =
            (* Registered here (fault runs only): clean runs keep a
               byte-identical metrics export. *)
            Eda_obs.Metrics.counter
              ~labels:[ ("site", spec.site) ]
              "guard.injected";
        })
    specs;
  Atomic.set enabled (Hashtbl.length slots > 0)

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" ->
      clear ();
      Ok ()
  | Some str -> (
      match parse str with
      | Ok specs ->
          set specs;
          Ok ()
      | Error _ as e -> e)

let active () = Atomic.get enabled

let sites () =
  Hashtbl.fold (fun site _ acc -> site :: acc) slots []
  |> List.sort String.compare

(* Each site draws from its own seeded stream under a mutex, so a
   sequential (jobs=1) run injects at a reproducible event sequence. *)
let fire slot =
  Mutex.protect slot.mu (fun () ->
      slot.spec.prob >= 1.0 || Eda_util.Rng.float slot.rng 1.0 < slot.spec.prob)

let point site =
  if Atomic.get enabled then
    match Hashtbl.find_opt slots site with
    | None -> ()
    | Some slot -> (
        match slot.spec.mode with
        | Corrupt -> () (* corruption happens at [corrupt] call sites *)
        | Raise ->
            if fire slot then begin
              Eda_obs.Metrics.incr slot.injected;
              Error.raise_ (Error.Worker_crash { site; msg = "injected fault" })
            end
        | Delay ms ->
            if fire slot then begin
              Eda_obs.Metrics.incr slot.injected;
              Unix.sleepf (float_of_int ms /. 1000.0)
            end)

let corrupt site v =
  if not (Atomic.get enabled) then v
  else
    match Hashtbl.find_opt slots site with
    | Some slot -> (
        match slot.spec.mode with
        | Corrupt ->
            if fire slot then begin
              Eda_obs.Metrics.incr slot.injected;
              Float.nan
            end
            else v
        | Raise | Delay _ -> v)
    | None -> v
