(** Deterministic fault-injection harness.

    Production code is sprinkled with cheap named {e sites} —
    [point "phase2.solve"], [corrupt "matrix.lu" v] — that are inert
    (one atomic load) unless a matching fault spec is installed, either
    programmatically ({!set}) or from the [GSINO_FAULTS] environment
    variable ({!init_from_env}).  An active site then probabilistically
    raises a typed {!Error.Worker_crash}, sleeps, or corrupts a value to
    NaN, drawing from a per-site seeded RNG so sequential runs replay the
    exact same injection sequence.

    Spec syntax (comma-separated): [site=mode[@prob][#seed]] where mode
    is [raise], [nan] or [delay:MS]; [prob] defaults to [1.0], [seed] to
    a site-derived constant.  Example:
    [GSINO_FAULTS="phase2.solve=raise@0.5#42,matrix.lu=nan"].

    Registered sites: [io.load], [phase2.solve], [refine.resolve],
    [matrix.lu], [exec.worker], and [serve.request] (fires inside the
    daemon's per-request guard, proving request isolation: the request
    gets a framed GSL0022 error, the daemon keeps serving).
    [raise]/[delay] act at
    {!point} sites, [nan] only where a {!corrupt} call wraps a value
    ([matrix.lu]); a mode installed at a site that never performs the
    matching action simply stays silent.

    Installation is coordinator-only and must happen before worker
    domains start (the CLIs do it at startup); firing is safe from any
    domain.  Every injection bumps [guard.injected{site}]. *)

type mode =
  | Raise  (** raise [Error (Worker_crash {site; _})] *)
  | Delay of int  (** sleep this many milliseconds *)
  | Corrupt  (** turn the wrapped value into NaN *)

type spec = { site : string; mode : mode; prob : float; seed : int }

(** ["GSINO_FAULTS"]. *)
val env_var : string

(** Parse a comma-separated spec string; [Error msg] on the first bad
    entry. *)
val parse : string -> (spec list, string) result

(** Install specs (replacing any previous configuration). *)
val set : spec list -> unit

(** Remove all faults; sites become inert again. *)
val clear : unit -> unit

(** Configure from [GSINO_FAULTS]; unset/empty clears and succeeds. *)
val init_from_env : unit -> (unit, string) result

(** Any faults installed? *)
val active : unit -> bool

(** Sites with an installed spec, sorted. *)
val sites : unit -> string list

(** Execution-point site: may raise or delay per the installed spec. *)
val point : string -> unit

(** Value site: [corrupt site v] is [v], or NaN when a [nan] fault
    fires. *)
val corrupt : string -> float -> float
